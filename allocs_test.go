package asyncagree

import "testing"

// TestApplyWindowAllocs is the allocation-regression guard for the window
// hot loop: after warmup, one full acceptable window of the core algorithm
// under full delivery must stay within a small per-window allocation budget.
// The remaining allocations are the one boxed Vote payload per broadcasting
// processor (n per window) plus occasional map-churn in the per-round vote
// bookkeeping; the seed implementation spent ~36n allocations per window.
func TestApplyWindowAllocs(t *testing.T) {
	const n = 24
	cfg := Config{Algorithm: AlgorithmCore, N: n, T: n / 8, Inputs: SplitInputs(n), Seed: 1}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	adv := FullDelivery()
	for i := 0; i < 32; i++ { // warm up scratch buffers, pools, and arenas
		if err := s.ApplyWindowWith(adv); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := s.ApplyWindowWith(adv); err != nil {
			t.Fatal(err)
		}
	})
	// Budget: n payload boxes + slack for amortized map growth. The seed
	// implementation measured ~855 allocs/window at n=24.
	if allocs > float64(2*n) {
		t.Fatalf("ApplyWindow allocates %.1f per window at n=%d, budget %d", allocs, n, 2*n)
	}
}

// TestWindowResetsAllocFree guards the reset path of the window pipeline
// (duplicate detection used to build a map per window).
func TestWindowResetsAllocFree(t *testing.T) {
	const n = 16
	cfg := Config{Algorithm: AlgorithmCore, N: n, T: 2, Inputs: SplitInputs(n), Seed: 1}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	resets := []ProcID{3, 11}
	allocs := testing.AllocsPerRun(100, func() {
		if err := s.WindowResets(resets); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("WindowResets allocates %.1f per call, want 0", allocs)
	}
}
