package asyncagree

import (
	"testing"

	"asyncagree/internal/registry"
)

// TestApplyWindowAllocs is the allocation-regression guard for the window
// hot loop: after warmup, one full acceptable window of the core algorithm
// under full delivery must allocate NOTHING — the vote payload boxes (the
// last remaining per-window source, n boxes per window) are now pooled and
// reclaimed by the System at window end. The seed implementation spent
// ~36n allocations per window; PR 1 cut that to ~n; this pins zero — on
// both the columnar vote-tally kernel (the default for core) and the legacy
// message-at-a-time path.
func TestApplyWindowAllocs(t *testing.T) {
	for _, mode := range []struct {
		name     string
		columnar bool
	}{{"columnar", true}, {"message", false}} {
		t.Run(mode.name, func(t *testing.T) {
			const n = 24
			cfg := Config{Algorithm: AlgorithmCore, N: n, T: n / 8,
				Inputs: SplitInputs(n), Seed: 1, DisableColumnar: !mode.columnar}
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			adv := FullDelivery()
			for i := 0; i < 32; i++ { // warm up scratch buffers, pools, and arenas
				if err := s.ApplyWindowWith(adv); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(200, func() {
				if err := s.ApplyWindowWith(adv); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > 0 {
				t.Fatalf("ApplyWindow (%s) allocates %.1f per window at n=%d, want 0",
					mode.name, allocs, n)
			}
		})
	}
}

// TestBrachaWindowAllocs pins the Bracha window loop's allocation tail at
// zero: the residue the benchmark used to report (25 allocs / 2.6 KB per
// window) came from straggler accepts recreating released accumulator maps,
// map-based RBC sender sets growing from empty on pool misses, and a fresh
// label string minted per round. Stale-round accepts are now dropped, sender
// sets are pooled fixed-size bitsets, and tags carry (round, step) as
// structured integers, so the steady-state window allocates nothing.
func TestBrachaWindowAllocs(t *testing.T) {
	const n = 13
	cfg := Config{Algorithm: AlgorithmBracha, N: n, T: (n - 1) / 3,
		Inputs: SplitInputs(n), Seed: 1}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	adv := FullDelivery()
	// The warm-up must cover several protocol rounds: pools reach their
	// high-water mark only after the straggler-recreation cycle of a few
	// completed rounds.
	for i := 0; i < 200; i++ {
		if err := s.ApplyWindowWith(adv); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(300, func() {
		if err := s.ApplyWindowWith(adv); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("Bracha window allocates %.1f per window at n=%d, want 0", allocs, n)
	}
}

// TestRecycledTrialAllocFree is the allocation-regression guard for the
// pooled trial engine: once the scenario pool is warm, a complete recycled
// trial — acquire, System.Recycle, full windows-to-decision run, release —
// of the core algorithm under full delivery must allocate NOTHING. This
// pins the tentpole property that steady-state sweep execution reuses the
// system, processes, payload boxes, and adversary state wholesale.
func TestRecycledTrialAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race builds randomize sync.Pool retention; the scenario pool cannot stay warm")
	}
	p := registry.Params{N: 12, T: 1, Inputs: SplitInputs(12), Seed: 7}
	run := func() {
		res, err := registry.RunPooledTrial("core", "full", "adversary", p, 500)
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllDecided {
			t.Fatal("trial did not decide")
		}
	}
	for i := 0; i < 16; i++ { // warm the scenario pool, payload boxes, arenas
		run()
	}
	allocs := testing.AllocsPerRun(200, run)
	if allocs > 0 {
		t.Fatalf("recycled core+full trial allocates %.1f per trial, want 0", allocs)
	}
}

// TestRecycledSplitVoteTrialAllocs pins the recycled steady state of the
// sweep engine's heaviest standard cell, Ben-Or under the split-vote
// stalling adversary: pooled tallies, payload boxes, and the adversary's
// planning scratch hold per-trial allocations to (near) zero.
func TestRecycledSplitVoteTrialAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race builds randomize sync.Pool retention; the scenario pool cannot stay warm")
	}
	p := registry.Params{N: 12, T: 1, Inputs: SplitInputs(12), Seed: 5}
	run := func() {
		res, err := registry.RunPooledTrial("benor", "splitvote", "adversary", p, 2000)
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllDecided {
			t.Fatal("trial did not decide")
		}
	}
	for i := 0; i < 16; i++ {
		run()
	}
	allocs := testing.AllocsPerRun(100, run)
	if allocs > 2 { // slack for amortized map growth in round bookkeeping
		t.Fatalf("recycled benor+splitvote trial allocates %.1f per trial, budget 2", allocs)
	}
}

// TestRecycledPaxosTrialAllocFree pins Paxos — the last algorithm moved onto
// the pooled path — at zero steady-state allocations per recycled trial:
// payload boxes cycle through the per-processor free lists (reclaimed at
// window end, with final-window outbox residue swept back on Recycle), and
// the quorum maps clear in place. The pre-pool implementation spent 92
// allocations / 7.6 KB per decision.
func TestRecycledPaxosTrialAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race builds randomize sync.Pool retention; the scenario pool cannot stay warm")
	}
	p := registry.Params{N: 5, T: 2, Inputs: SplitInputs(5), Seed: 7}
	run := func() {
		res, err := registry.RunPooledTrial("paxos", "full", "adversary", p, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllDecided {
			t.Fatal("trial did not decide")
		}
	}
	for i := 0; i < 16; i++ { // warm the scenario pool, box pools, arenas
		run()
	}
	allocs := testing.AllocsPerRun(200, run)
	if allocs > 0 {
		t.Fatalf("recycled paxos+full trial allocates %.1f per trial, want 0", allocs)
	}
}

// TestShardedApplyWindowAllocFree pins the zero-steady-state-allocation
// property of the sharded window core: once the worker pool, per-shard
// scratch, and order buffers are warm, a sharded window allocates nothing —
// phases are dispatched through a reused enum/channel protocol, never
// closures.
func TestShardedApplyWindowAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("the race runtime instruments channel wakes with allocating shadow state")
	}
	const n = 48
	cfg := Config{Algorithm: AlgorithmCore, N: n, T: n / 8,
		Inputs: SplitInputs(n), Seed: 1, ShardWorkers: 4}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	adv := FullDelivery()
	for i := 0; i < 32; i++ { // warm up pool, shard scratch, and order buffers
		if err := s.ApplyWindowWith(adv); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := s.ApplyWindowWith(adv); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("sharded ApplyWindow allocates %.1f per window at n=%d, want 0", allocs, n)
	}
}

// TestWindowResetsAllocFree guards the reset path of the window pipeline
// (duplicate detection used to build a map per window).
func TestWindowResetsAllocFree(t *testing.T) {
	const n = 16
	cfg := Config{Algorithm: AlgorithmCore, N: n, T: 2, Inputs: SplitInputs(n), Seed: 1}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	resets := []ProcID{3, 11}
	allocs := testing.AllocsPerRun(100, func() {
		if err := s.WindowResets(resets); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("WindowResets allocates %.1f per call, want 0", allocs)
	}
}
