//go:build race

package asyncagree

// raceEnabled reports whether this test binary was built with the race
// detector. Allocation-regression tests that depend on sync.Pool retention
// skip under race: the runtime deliberately randomizes pool behavior there
// (dropping items to widen race coverage), so pooled trials reconstruct
// state and the zero-allocation steady state cannot hold.
const raceEnabled = true
