// Package asyncagree is a Go reproduction of Lewko & Lewko, "On the
// Complexity of Asynchronous Agreement Against Powerful Adversaries"
// (PODC 2013): a deterministic asynchronous message-passing simulator with
// full-information adversaries (including the paper's strongly adaptive
// resetting adversary), the paper's reset-tolerant threshold agreement
// algorithm, the Ben-Or / Bracha / committee / Paxos baselines, and the
// Talagrand-inequality lower-bound machinery of Section 4.
//
// This package is the stable facade over the internal packages. Typical use:
//
//	cfg := asyncagree.Config{
//		Algorithm: asyncagree.AlgorithmCore,
//		N:         24,
//		T:         3,
//		Inputs:    asyncagree.SplitInputs(24),
//		Seed:      1,
//	}
//	sys, err := asyncagree.New(cfg)
//	...
//	adv, err := asyncagree.SplitVoteAdversary(cfg)
//	res, err := sys.RunWindows(adv, 100000)
//	fmt.Println(res.Windows, res.Agreement, res.Validity)
//
// See DESIGN.md for the system inventory (and §2 for the allocation-free
// window pipeline) and EXPERIMENTS.md for the reproduction results;
// `go run ./cmd/experiments` regenerates them and
// `go run ./cmd/bench -out BENCH_baseline.json` records the substrate
// performance baseline.
package asyncagree

import (
	"fmt"

	"asyncagree/internal/adversary"
	"asyncagree/internal/benor"
	"asyncagree/internal/bracha"
	"asyncagree/internal/committee"
	"asyncagree/internal/core"
	"asyncagree/internal/paxos"
	"asyncagree/internal/sim"
)

// Core simulator types, re-exported.
type (
	// Bit is a binary protocol value.
	Bit = sim.Bit
	// ProcID identifies a processor (0..n-1).
	ProcID = sim.ProcID
	// System is a configured simulation (see sim.System).
	System = sim.System
	// RunResult summarizes an execution.
	RunResult = sim.RunResult
	// Message is a point-to-point protocol message.
	Message = sim.Message
	// Window describes one acceptable window (Definition 1 of the paper).
	Window = sim.Window
	// WindowAdversary plans acceptable windows with full information.
	WindowAdversary = sim.WindowAdversary
	// StepAdversary drives raw fine-grained steps (Section 5 crash model).
	StepAdversary = sim.StepAdversary
	// Thresholds are the core algorithm's T1 >= T2 >= T3.
	Thresholds = core.Thresholds
	// Event is a simulator trace event (install a handler via
	// System.OnEvent).
	Event = sim.Event
	// EventKind discriminates trace events.
	EventKind = sim.EventKind
)

// Trace event kinds, re-exported.
const (
	EvWindow  = sim.EvWindow
	EvSend    = sim.EvSend
	EvDeliver = sim.EvDeliver
	EvReset   = sim.EvReset
	EvCrash   = sim.EvCrash
	EvDecide  = sim.EvDecide
)

// Algorithm selects one of the implemented agreement protocols.
type Algorithm string

// Implemented algorithms.
const (
	// AlgorithmCore is the paper's Section 3 reset-tolerant threshold
	// protocol (measure-one correct and terminating against the strongly
	// adaptive adversary for t < n/6; Theorem 4).
	AlgorithmCore Algorithm = "core"
	// AlgorithmBenOr is Ben-Or 1983 (crash model, t < n/2).
	AlgorithmBenOr Algorithm = "benor"
	// AlgorithmBracha is Bracha 1984 over reliable broadcast (Byzantine,
	// t < n/3).
	AlgorithmBracha Algorithm = "bracha"
	// AlgorithmCommittee is the Kapron et al.-style committee election
	// (fast, non-adaptive-only, non-zero error probability).
	AlgorithmCommittee Algorithm = "committee"
	// AlgorithmPaxos is single-decree Paxos (deterministic; terminates only
	// under benign scheduling).
	AlgorithmPaxos Algorithm = "paxos"
)

// Algorithms lists the implemented algorithms.
func Algorithms() []Algorithm {
	return []Algorithm{AlgorithmCore, AlgorithmBenOr, AlgorithmBracha, AlgorithmCommittee, AlgorithmPaxos}
}

// Config describes a simulation to construct.
type Config struct {
	// Algorithm selects the protocol every processor runs.
	Algorithm Algorithm
	// N is the processor count, T the fault budget (its meaning is
	// algorithm- and adversary-dependent: resets per acceptable window for
	// the strongly adaptive adversary, total crashes/corruptions
	// otherwise).
	N, T int
	// Inputs are the n input bits (see UnanimousInputs, SplitInputs).
	Inputs []Bit
	// Seed makes the execution reproducible.
	Seed uint64
	// CoreThresholds optionally overrides the Theorem 4 defaults for
	// AlgorithmCore.
	CoreThresholds *Thresholds
	// Proposers optionally selects the Paxos proposers (default {0}).
	Proposers []ProcID
}

// New constructs a simulation.
func New(cfg Config) (*System, error) {
	factory, err := factoryFor(cfg)
	if err != nil {
		return nil, err
	}
	return sim.New(sim.Config{
		N: cfg.N, T: cfg.T, Seed: cfg.Seed, Inputs: cfg.Inputs,
		NewProcess: factory,
	})
}

func factoryFor(cfg Config) (func(ProcID, Bit) sim.Process, error) {
	switch cfg.Algorithm {
	case AlgorithmCore:
		th := cfg.CoreThresholds
		if th == nil {
			def, err := core.DefaultThresholds(cfg.N, cfg.T)
			if err != nil {
				return nil, err
			}
			th = &def
		}
		if err := th.Validate(cfg.N, cfg.T); err != nil {
			return nil, err
		}
		return core.NewFactory(cfg.N, cfg.T, *th), nil
	case AlgorithmBenOr:
		if cfg.T < 0 || 2*cfg.T >= cfg.N {
			return nil, fmt.Errorf("asyncagree: benor needs t < n/2, got n=%d t=%d", cfg.N, cfg.T)
		}
		return benor.NewFactory(cfg.N, cfg.T), nil
	case AlgorithmBracha:
		if cfg.T < 0 || cfg.N <= 3*cfg.T {
			return nil, fmt.Errorf("asyncagree: bracha needs n > 3t, got n=%d t=%d", cfg.N, cfg.T)
		}
		return bracha.NewFactory(cfg.N, cfg.T), nil
	case AlgorithmCommittee:
		params := committee.DefaultParams(cfg.N)
		if err := params.Validate(); err != nil {
			return nil, err
		}
		return committee.NewFactory(params), nil
	case AlgorithmPaxos:
		proposers := cfg.Proposers
		if proposers == nil {
			proposers = []ProcID{0}
		}
		return paxos.NewFactory(paxos.Params{N: cfg.N, Proposers: proposers}), nil
	default:
		return nil, fmt.Errorf("asyncagree: unknown algorithm %q", cfg.Algorithm)
	}
}

// DefaultThresholds returns Theorem 4's default thresholds T1 = T2 = n-2t,
// T3 = n-3t, which exist exactly when t < n/6.
func DefaultThresholds(n, t int) (Thresholds, error) {
	return core.DefaultThresholds(n, t)
}

// UnanimousInputs returns n copies of v.
func UnanimousInputs(n int, v Bit) []Bit {
	in := make([]Bit, n)
	for i := range in {
		in[i] = v
	}
	return in
}

// SplitInputs returns the alternating 0/1 input assignment — the adversarial
// input setting of the paper's slowness arguments.
func SplitInputs(n int) []Bit {
	in := make([]Bit, n)
	for i := range in {
		in[i] = Bit(i % 2)
	}
	return in
}

// FullDelivery returns the benign adversary: deliver everything, reset
// nobody.
func FullDelivery() WindowAdversary { return adversary.FullDelivery{} }

// RandomAdversary returns a chaos adversary delivering random (n-t)-subsets
// and resetting up to maxResets processors with probability resetProb per
// window.
func RandomAdversary(seed uint64, resetProb float64, maxResets int) WindowAdversary {
	return adversary.NewRandomWindows(seed, resetProb, maxResets)
}

// ResetStorm returns the adversary that resets a rotating set of t
// processors every window.
func ResetStorm() WindowAdversary { return &adversary.ResetStorm{} }

// Silence returns the adversary that never delivers messages from the given
// processors (at most t of them).
func Silence(silent ...ProcID) WindowAdversary {
	return adversary.FixedSilence{Silent: silent}
}

// Lockstep returns the fair step-mode scheduler for the Section 5 crash
// model.
func Lockstep() StepAdversary { return adversary.NewLockstep() }

// DuelingPaxos returns the dueling-proposers schedule that livelocks Paxos.
func DuelingPaxos() StepAdversary { return paxos.NewDuelScheduler() }

// SplitVoteAdversary returns the paper's Section 3 stalling strategy tuned
// to cfg's algorithm: it shows every processor an approximate split of the
// protocol's value-bearing messages, forcing fresh coin flips each round.
// Supported for AlgorithmCore and AlgorithmBenOr.
func SplitVoteAdversary(cfg Config) (WindowAdversary, error) {
	switch cfg.Algorithm {
	case AlgorithmCore:
		th := cfg.CoreThresholds
		if th == nil {
			def, err := core.DefaultThresholds(cfg.N, cfg.T)
			if err != nil {
				return nil, err
			}
			th = &def
		}
		return &adversary.SplitVote{
			Classify: func(m Message) adversary.VoteInfo {
				if _, v, ok := core.ExtractVote(m); ok {
					return adversary.VoteInfo{HasValue: true, Value: v}
				}
				return adversary.VoteInfo{}
			},
			Cap: th.T3 - 1,
		}, nil
	case AlgorithmBenOr:
		return &adversary.SplitVote{
			Classify: func(m Message) adversary.VoteInfo {
				if _, _, v, ok := benor.ExtractVote(m); ok {
					return adversary.VoteInfo{HasValue: true, Value: v}
				}
				return adversary.VoteInfo{}
			},
			Cap: cfg.N / 2,
		}, nil
	default:
		return nil, fmt.Errorf("asyncagree: split-vote adversary not defined for %q", cfg.Algorithm)
	}
}

// Run constructs the system, runs it under adv for at most maxWindows
// acceptable windows, and returns the summary.
func Run(cfg Config, adv WindowAdversary, maxWindows int) (RunResult, error) {
	s, err := New(cfg)
	if err != nil {
		return RunResult{}, err
	}
	return s.RunWindows(adv, maxWindows)
}
