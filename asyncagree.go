// Package asyncagree is a Go reproduction of Lewko & Lewko, "On the
// Complexity of Asynchronous Agreement Against Powerful Adversaries"
// (PODC 2013): a deterministic asynchronous message-passing simulator with
// full-information adversaries (including the paper's strongly adaptive
// resetting adversary), the paper's reset-tolerant threshold agreement
// algorithm, the Ben-Or / Bracha / committee / Paxos baselines, and the
// Talagrand-inequality lower-bound machinery of Section 4.
//
// This package is the stable facade over the internal packages. The
// algorithm, adversary, and delivery-scheduler inventory lives in
// internal/registry — a single set of self-describing descriptors shared by
// this facade, the experiment drivers, and the CLIs — so New, NewAdversary,
// and NewScheduler accept any registered name. Typical use:
//
//	cfg := asyncagree.Config{
//		Algorithm: asyncagree.AlgorithmCore,
//		N:         24,
//		T:         3,
//		Inputs:    asyncagree.SplitInputs(24),
//		Seed:      1,
//	}
//	sys, err := asyncagree.New(cfg)
//	...
//	adv, err := asyncagree.NewAdversary("splitvote", cfg)
//	res, err := sys.RunWindows(adv, 100000)
//	fmt.Println(res.Windows, res.Agreement, res.Validity)
//
// See DESIGN.md for the system inventory (§2 for the allocation-free
// window pipeline, §3 for the parallel sweep engine, §3a for the pluggable
// delivery schedulers) and EXPERIMENTS.md
// for the reproduction results; `go run ./cmd/experiments` regenerates
// them, `go run ./cmd/sweep` runs the full algorithm × adversary scenario
// matrix, and `go run ./cmd/bench -out BENCH_baseline.json` records the
// substrate performance baseline.
package asyncagree

import (
	"asyncagree/internal/adversary"
	"asyncagree/internal/core"
	"asyncagree/internal/paxos"
	"asyncagree/internal/registry"
	"asyncagree/internal/sched"
	"asyncagree/internal/sim"
)

// Core simulator types, re-exported.
type (
	// Bit is a binary protocol value.
	Bit = sim.Bit
	// ProcID identifies a processor (0..n-1).
	ProcID = sim.ProcID
	// System is a configured simulation (see sim.System).
	System = sim.System
	// RunResult summarizes an execution.
	RunResult = sim.RunResult
	// Message is a point-to-point protocol message.
	Message = sim.Message
	// Window describes one acceptable window (Definition 1 of the paper).
	Window = sim.Window
	// WindowAdversary plans acceptable windows with full information.
	WindowAdversary = sim.WindowAdversary
	// StepAdversary drives raw fine-grained steps (Section 5 crash model).
	StepAdversary = sim.StepAdversary
	// Scheduler chooses which >= n-t senders each receiver admits per
	// acceptable window (the delivery-discipline axis; see NewScheduler
	// and Schedule).
	Scheduler = sched.Scheduler
	// Thresholds are the core algorithm's T1 >= T2 >= T3.
	Thresholds = core.Thresholds
	// Event is a simulator trace event (install a handler via
	// System.OnEvent).
	Event = sim.Event
	// EventKind discriminates trace events.
	EventKind = sim.EventKind
	// Matrix describes a scenario sweep over the registered algorithm ×
	// adversary × size × input × seed cross-product (see Sweep).
	Matrix = registry.Matrix
	// SweepSize is one (n, t) system shape of a Matrix.
	SweepSize = registry.Size
	// SweepResult is the aggregated output of a sweep.
	SweepResult = registry.Sweep
)

// Trace event kinds, re-exported.
const (
	EvWindow  = sim.EvWindow
	EvSend    = sim.EvSend
	EvDeliver = sim.EvDeliver
	EvReset   = sim.EvReset
	EvCrash   = sim.EvCrash
	EvDecide  = sim.EvDecide
)

// Algorithm selects one of the implemented agreement protocols.
type Algorithm string

// Implemented algorithms (the registry keys; see Algorithms for the full
// live list).
const (
	// AlgorithmCore is the paper's Section 3 reset-tolerant threshold
	// protocol (measure-one correct and terminating against the strongly
	// adaptive adversary for t < n/6; Theorem 4).
	AlgorithmCore Algorithm = "core"
	// AlgorithmBenOr is Ben-Or 1983 (crash model, t < n/2).
	AlgorithmBenOr Algorithm = "benor"
	// AlgorithmBracha is Bracha 1984 over reliable broadcast (Byzantine,
	// t < n/3).
	AlgorithmBracha Algorithm = "bracha"
	// AlgorithmCommittee is the Kapron et al.-style committee election
	// (fast, non-adaptive-only, non-zero error probability).
	AlgorithmCommittee Algorithm = "committee"
	// AlgorithmPaxos is single-decree Paxos (deterministic; terminates only
	// under benign scheduling).
	AlgorithmPaxos Algorithm = "paxos"
)

// Algorithms lists the registered algorithms.
func Algorithms() []Algorithm {
	names := registry.AlgorithmNames()
	algs := make([]Algorithm, len(names))
	for i, name := range names {
		algs[i] = Algorithm(name)
	}
	return algs
}

// Adversaries lists the registered window-adversary names accepted by
// NewAdversary.
func Adversaries() []string { return registry.AdversaryNames() }

// Schedulers lists the registered delivery-scheduler names accepted by
// NewScheduler.
func Schedulers() []string { return registry.SchedulerNames() }

// InputPatterns lists the registered input pattern names accepted by
// PatternInputs.
func InputPatterns() []string { return registry.InputPatternNames() }

// Config describes a simulation to construct.
type Config struct {
	// Algorithm selects the protocol every processor runs.
	Algorithm Algorithm
	// N is the processor count, T the fault budget (its meaning is
	// algorithm- and adversary-dependent: resets per acceptable window for
	// the strongly adaptive adversary, total crashes/corruptions
	// otherwise).
	N, T int
	// Inputs are the n input bits (see UnanimousInputs, SplitInputs).
	Inputs []Bit
	// Seed makes the execution reproducible.
	Seed uint64
	// CoreThresholds optionally overrides the Theorem 4 defaults for
	// AlgorithmCore.
	CoreThresholds *Thresholds
	// Proposers optionally selects the Paxos proposers (default {0}).
	Proposers []ProcID
	// ShardWorkers sets intra-trial parallelism: window delivery (and
	// sending, where the algorithm declares it safe) runs across this many
	// goroutines. <= 1 runs serial. Execution output is byte-identical at
	// every setting; this only changes wall-clock at large N.
	ShardWorkers int
	// DisableColumnar opts out of the columnar vote-tally fast path for
	// algorithms that support it (core and Ben-Or). Like ShardWorkers this
	// is a pure performance knob: execution output is byte-identical either
	// way. The zero value keeps the fast path on.
	DisableColumnar bool
}

// params converts the facade config to registry construction parameters.
func (cfg Config) params() registry.Params {
	return registry.Params{
		N: cfg.N, T: cfg.T, Inputs: cfg.Inputs, Seed: cfg.Seed,
		CoreThresholds: cfg.CoreThresholds, Proposers: cfg.Proposers,
		ShardWorkers: cfg.ShardWorkers, DisableColumnar: cfg.DisableColumnar,
	}
}

// New constructs a simulation from the registered algorithm descriptor.
func New(cfg Config) (*System, error) {
	return registry.NewSystem(string(cfg.Algorithm), cfg.params())
}

// DefaultThresholds returns Theorem 4's default thresholds T1 = T2 = n-2t,
// T3 = n-3t, which exist exactly when t < n/6.
func DefaultThresholds(n, t int) (Thresholds, error) {
	return core.DefaultThresholds(n, t)
}

// UnanimousInputs returns n copies of v.
func UnanimousInputs(n int, v Bit) []Bit { return registry.UnanimousInputs(n, v) }

// SplitInputs returns the alternating 0/1 input assignment — the adversarial
// input setting of the paper's slowness arguments.
func SplitInputs(n int) []Bit { return registry.SplitInputs(n) }

// PatternInputs generates the n input bits of a registered named pattern
// ("split", "zeros", "ones", "blocks"); seed only matters to
// seed-dependent patterns.
func PatternInputs(pattern string, n int, seed uint64) ([]Bit, error) {
	return registry.Inputs(pattern, n, seed)
}

// NewAdversary constructs fresh per-trial state for any registered window
// adversary, tuned to cfg's algorithm (the split-vote adversary, for
// example, needs the algorithm's vote classifier and threshold cap).
func NewAdversary(name string, cfg Config) (WindowAdversary, error) {
	return registry.NewAdversary(name, string(cfg.Algorithm), cfg.params())
}

// NewScheduler constructs fresh per-trial state for any registered delivery
// scheduler ("adversary", "full", "ascmin", "seeded", "laggard",
// "alternate"); seed-dependent schedulers derive their stream from cfg.Seed.
func NewScheduler(name string, cfg Config) (Scheduler, error) {
	return registry.NewScheduler(name, cfg.params())
}

// Schedule wraps adv so that the delivery discipline comes from sch while
// the adversary keeps planning resets and crashes. The "adversary"
// scheduler (or a nil sch) returns adv unchanged.
func Schedule(adv WindowAdversary, sch Scheduler) WindowAdversary {
	return sched.Compose(adv, sch)
}

// FullDelivery returns the benign adversary: deliver everything, reset
// nobody.
func FullDelivery() WindowAdversary { return adversary.FullDelivery{} }

// RandomAdversary returns a chaos adversary delivering random (n-t)-subsets
// and resetting up to maxResets processors with probability resetProb per
// window.
func RandomAdversary(seed uint64, resetProb float64, maxResets int) WindowAdversary {
	return adversary.NewRandomWindows(seed, resetProb, maxResets)
}

// ResetStorm returns a fresh adversary that resets a rotating set of t
// processors every window.
func ResetStorm() WindowAdversary { return adversary.NewResetStorm() }

// Silence returns the adversary that never delivers messages from the given
// processors. The set is validated against cfg up front: at most cfg.T
// distinct processors, every ID in [0, cfg.N).
func Silence(cfg Config, silent ...ProcID) (WindowAdversary, error) {
	return adversary.NewFixedSilence(cfg.N, cfg.T, silent)
}

// Lockstep returns the fair step-mode scheduler for the Section 5 crash
// model.
func Lockstep() StepAdversary { return adversary.NewLockstep() }

// DuelingPaxos returns the dueling-proposers schedule that livelocks Paxos.
func DuelingPaxos() StepAdversary { return paxos.NewDuelScheduler() }

// SplitVoteAdversary returns the paper's Section 3 stalling strategy tuned
// to cfg's algorithm: it shows every processor an approximate split of the
// protocol's value-bearing messages, forcing fresh coin flips each round.
// Supported for the algorithms whose registry descriptor provides a vote
// classifier (core and Ben-Or).
func SplitVoteAdversary(cfg Config) (WindowAdversary, error) {
	return NewAdversary("splitvote", cfg)
}

// Run constructs the system, runs it under adv for at most maxWindows
// acceptable windows, and returns the summary.
func Run(cfg Config, adv WindowAdversary, maxWindows int) (RunResult, error) {
	s, err := New(cfg)
	if err != nil {
		return RunResult{}, err
	}
	return s.RunWindows(adv, maxWindows)
}

// Sweep expands the matrix over the registered algorithm × adversary ×
// scheduler × size × input × seed cross-product (skipping incompatible
// combinations and invalid sizes; an empty Schedulers axis expands every
// registered delivery scheduler) and fans the trials across the
// deterministic worker pool. The aggregated result is byte-identical to a
// serial run of the same matrix; render it with SweepResult.Table.
func Sweep(m Matrix) (*SweepResult, error) { return m.Run() }
