package faultinject

import (
	"errors"
	"strings"
	"testing"
)

func TestParseTrialSetExplicit(t *testing.T) {
	set, err := ParseTrialSet("3, 7,9-11")
	if err != nil {
		t.Fatal(err)
	}
	set.materialize(100)
	for _, want := range []int{3, 7, 9, 10, 11} {
		if !set.Contains(want) {
			t.Fatalf("missing %d", want)
		}
	}
	for _, not := range []int{0, 4, 8, 12} {
		if set.Contains(not) {
			t.Fatalf("unexpected member %d", not)
		}
	}
}

func TestParseTrialSetErrors(t *testing.T) {
	for _, bad := range []string{"x", "-3", "5-2", "rand:0@7", "rand:3", "rand:a@b", ","} {
		if _, err := ParseTrialSet(bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
	if set, err := ParseTrialSet(""); set != nil || err != nil {
		t.Fatalf("empty string should be a nil set, got %v, %v", set, err)
	}
}

func TestSeededTrialSetDeterministicAndSized(t *testing.T) {
	a, err := ParseTrialSet("rand:5@42")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := ParseTrialSet("rand:5@42")
	c, _ := ParseTrialSet("rand:5@43")
	a.materialize(64)
	b.materialize(64)
	c.materialize(64)
	ai, bi, ci := a.Indices(), b.Indices(), c.Indices()
	if len(ai) != 5 {
		t.Fatalf("selected %d trials, want 5", len(ai))
	}
	for i := range ai {
		if ai[i] != bi[i] {
			t.Fatalf("same seed diverged: %v vs %v", ai, bi)
		}
		if ai[i] < 0 || ai[i] >= 64 {
			t.Fatalf("index %d out of range", ai[i])
		}
	}
	same := len(ci) == len(ai)
	if same {
		for i := range ai {
			if ai[i] != ci[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatalf("different seeds selected the same set %v", ai)
	}
}

func TestSeededTrialSetClampsToTotal(t *testing.T) {
	s, _ := ParseTrialSet("rand:10@1")
	s.materialize(4)
	if got := len(s.Indices()); got != 4 {
		t.Fatalf("selected %d of 4 trials, want all 4", got)
	}
}

func TestPlanKnobs(t *testing.T) {
	p := &Plan{}
	panics, _ := ParseTrialSet("2")
	stalls, _ := ParseTrialSet("5")
	p.Panic, p.Stall = panics, stalls
	p.Materialize(10)
	if !p.ShouldPanic(2) || p.ShouldPanic(5) {
		t.Fatal("panic selection wrong")
	}
	if w, ok := p.ShouldStall(5); !ok || w != DefaultStallWindow {
		t.Fatalf("stall selection = (%d, %v)", w, ok)
	}
	p.StallWindow = 7
	if w, _ := p.ShouldStall(5); w != 7 {
		t.Fatalf("explicit stall window ignored: %d", w)
	}
	if (*Plan)(nil).ShouldPanic(0) {
		t.Fatal("nil plan injected a panic")
	}
	if !(*Plan)(nil).Empty() || !p.Empty() == true && false {
		t.Fatal("nil plan must be empty")
	}
	if p.Empty() {
		t.Fatal("populated plan reported empty")
	}
}

func TestWriteFailuresSchedule(t *testing.T) {
	wf, err := ParseWriteFailures("2x2,6+")
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{false, true, true, false, false, true, true, true}
	for i, w := range want {
		if got := wf.next(); got != w {
			t.Fatalf("op %d: fail = %v, want %v", i+1, got, w)
		}
	}
}

func TestParseWriteFailuresErrors(t *testing.T) {
	for _, bad := range []string{"0+", "x2", "3x0", "3xq", "-1", ","} {
		if _, err := ParseWriteFailures(bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
	if wf, err := ParseWriteFailures(""); wf != nil || err != nil {
		t.Fatalf("empty schedule should be nil, got %v, %v", wf, err)
	}
}

func TestFailingWriterAtomicFailures(t *testing.T) {
	wf, _ := ParseWriteFailures("1x1")
	var sb strings.Builder
	w := wf.Writer(&sb)
	if _, err := w.Write([]byte("a")); err == nil {
		t.Fatal("scheduled failure did not fire")
	}
	if sb.Len() != 0 {
		t.Fatalf("failed write leaked bytes: %q", sb.String())
	}
	if n, err := w.Write([]byte("b")); err != nil || n != 1 {
		t.Fatalf("write after schedule = (%d, %v)", n, err)
	}
	if sb.String() != "b" {
		t.Fatalf("got %q", sb.String())
	}
	var plain strings.Builder
	if got := (*WriteFailures)(nil).Writer(&plain); got != &plain {
		t.Fatal("nil schedule should return the writer unchanged")
	}
}

func TestFailingWriterErrorIsIdentifiable(t *testing.T) {
	wf, _ := ParseWriteFailures("1+")
	_, err := wf.Writer(&strings.Builder{}).Write([]byte("x"))
	if err == nil || !strings.Contains(err.Error(), "faultinject") {
		t.Fatalf("err = %v", err)
	}
	var sentinel error = err
	if errors.Is(sentinel, nil) {
		t.Fatal("impossible")
	}
}
