// Package faultinject is the deterministic fault-injection harness behind
// cmd/sweep's -inject flags: it makes chosen trials panic, chosen trials
// stall past the watchdog deadline, and chosen sink/checkpoint writes fail,
// all reproducibly.
//
// The paper's whole point is that adversarial schedules force arbitrarily
// long executions, so the adversary-search sweeps this repository is growing
// toward will hit runaway trials, pathological cells, and multi-hour runs
// where any crash or failed write is expensive. The hardened trial pipeline
// (recover-and-quarantine in internal/registry, the stall watchdog in
// internal/sim, bounded retry in internal/retry) exists to absorb those
// faults — and this package exists to prove it: every knob is a pure
// function of the plan (explicit index sets, or seeded pseudo-random
// selections), so a chaos run can be replayed bit-for-bit and its surviving
// records diffed against a clean run's.
package faultinject

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Plan describes one run's injected faults. The zero value (and nil)
// injects nothing. Plans are registry-visible: registry.RunOptions carries
// one so the trial executor can consult it on the run path.
type Plan struct {
	// Panic selects trials whose execution panics mid-run.
	Panic *TrialSet
	// Stall selects trials whose watchdog deadline fires (cooperatively, at
	// window StallWindow) regardless of wall-clock time.
	Stall *TrialSet
	// StallWindow is the window index at which injected stalls fire;
	// values below 1 behave as DefaultStallWindow.
	StallWindow int
}

// DefaultStallWindow is the window at which an injected stall fires when
// the plan does not say otherwise: late enough that the trial demonstrably
// ran, early enough that chaos runs stay fast.
const DefaultStallWindow = 3

// ShouldPanic reports whether trial i must panic.
func (p *Plan) ShouldPanic(i int) bool {
	return p != nil && p.Panic.Contains(i)
}

// ShouldStall reports whether trial i must stall, and at which window.
func (p *Plan) ShouldStall(i int) (window int, ok bool) {
	if p == nil || !p.Stall.Contains(i) {
		return 0, false
	}
	if p.StallWindow >= 1 {
		return p.StallWindow, true
	}
	return DefaultStallWindow, true
}

// Empty reports whether the plan injects nothing into the trial path.
func (p *Plan) Empty() bool {
	return p == nil || (p.Panic.empty() && p.Stall.empty())
}

// Materialize resolves seeded selections against the run's total trial
// count. It must be called once before the first Contains query; explicit
// sets pass through unchanged.
func (p *Plan) Materialize(total int) {
	if p == nil {
		return
	}
	p.Panic.materialize(total)
	p.Stall.materialize(total)
}

// TrialSet is a deterministic set of trial indices: explicit entries and
// ranges ("3,7,9-12"), or a seeded pseudo-random selection of k trials
// ("rand:5@42" — 5 trials chosen by seed 42 once the total is known).
type TrialSet struct {
	explicit map[int]bool
	randK    int
	randSeed uint64
}

// ParseTrialSet parses the -inject trial-selection syntax. An empty string
// yields nil (no trials).
func ParseTrialSet(s string) (*TrialSet, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	if rest, ok := strings.CutPrefix(s, "rand:"); ok {
		kStr, seedStr, found := strings.Cut(rest, "@")
		if !found {
			return nil, fmt.Errorf("faultinject: bad seeded set %q (want rand:K@seed)", s)
		}
		k, err := strconv.Atoi(kStr)
		if err != nil || k < 1 {
			return nil, fmt.Errorf("faultinject: bad seeded set %q: count must be a positive integer", s)
		}
		seed, err := strconv.ParseUint(seedStr, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("faultinject: bad seeded set %q: %v", s, err)
		}
		return &TrialSet{randK: k, randSeed: seed}, nil
	}
	set := &TrialSet{explicit: map[int]bool{}}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		lo, hi, isRange := strings.Cut(part, "-")
		a, err := strconv.Atoi(lo)
		if err != nil || a < 0 {
			return nil, fmt.Errorf("faultinject: bad trial index %q (want non-negative integers, ranges, or rand:K@seed)", part)
		}
		b := a
		if isRange {
			if b, err = strconv.Atoi(hi); err != nil || b < a {
				return nil, fmt.Errorf("faultinject: bad trial range %q", part)
			}
		}
		// i == b terminates the walk (not i <= b): with b == MaxInt the
		// increment would wrap and the condition would never go false.
		for i := a; ; i++ {
			set.explicit[i] = true
			if i == b {
				break
			}
		}
	}
	if len(set.explicit) == 0 {
		return nil, fmt.Errorf("faultinject: empty trial set %q", s)
	}
	return set, nil
}

// Contains reports membership. Seeded sets must be materialized first.
func (s *TrialSet) Contains(i int) bool {
	return s != nil && s.explicit[i]
}

// Indices returns the materialized members in ascending order (reporting).
func (s *TrialSet) Indices() []int {
	if s == nil {
		return nil
	}
	out := make([]int, 0, len(s.explicit))
	for i := range s.explicit {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

func (s *TrialSet) empty() bool { return s == nil || len(s.explicit) == 0 && s.randK == 0 }

// materialize resolves a seeded selection: a partial Fisher-Yates shuffle
// of [0, total) driven by splitmix64, so the chosen set is a pure function
// of (seed, k, total).
func (s *TrialSet) materialize(total int) {
	if s == nil || s.randK == 0 || s.explicit != nil {
		return
	}
	k := s.randK
	if k > total {
		k = total
	}
	idx := make([]int, total)
	for i := range idx {
		idx[i] = i
	}
	state := s.randSeed
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	s.explicit = make(map[int]bool, k)
	for i := 0; i < k; i++ {
		j := i + int(next()%uint64(total-i))
		idx[i], idx[j] = idx[j], idx[i]
		s.explicit[idx[i]] = true
	}
}

// WriteFailures is a deterministic failure schedule over a writer's write
// operations, counted from 1 in call order: "3x2" fails writes 3 and 4,
// "9+" fails every write from 9 on (a permanent failure that exhausts any
// retry budget), and schedules compose with commas ("3x2,9+").
type WriteFailures struct {
	spans []failSpan
	seq   int
}

type failSpan struct {
	from, count int // count < 0 = forever
}

// ParseWriteFailures parses the write-failure schedule syntax. An empty
// string yields nil (no failures).
func ParseWriteFailures(s string) (*WriteFailures, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	wf := &WriteFailures{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if fromStr, ok := strings.CutSuffix(part, "+"); ok {
			from, err := strconv.Atoi(fromStr)
			if err != nil || from < 1 {
				return nil, fmt.Errorf("faultinject: bad write-failure span %q (want N+ with N >= 1)", part)
			}
			wf.spans = append(wf.spans, failSpan{from: from, count: -1})
			continue
		}
		fromStr, countStr, hasCount := strings.Cut(part, "x")
		from, err := strconv.Atoi(fromStr)
		if err != nil || from < 1 {
			return nil, fmt.Errorf("faultinject: bad write-failure span %q (want N, NxK, or N+)", part)
		}
		count := 1
		if hasCount {
			if count, err = strconv.Atoi(countStr); err != nil || count < 1 {
				return nil, fmt.Errorf("faultinject: bad write-failure count in %q", part)
			}
		}
		wf.spans = append(wf.spans, failSpan{from: from, count: count})
	}
	if len(wf.spans) == 0 {
		return nil, fmt.Errorf("faultinject: empty write-failure schedule %q", s)
	}
	return wf, nil
}

// next advances the operation counter and reports whether this write fails.
func (wf *WriteFailures) next() bool {
	wf.seq++
	for _, sp := range wf.spans {
		if wf.seq >= sp.from && (sp.count < 0 || wf.seq < sp.from+sp.count) {
			return true
		}
	}
	return false
}

// Writer wraps w so writes fail according to the schedule. A scheduled
// failure is atomic — nothing is written and an error is returned — which
// is exactly the shape a retrying writer above can absorb (each retry
// attempt advances the schedule, so "NxK" under an Attempts > K policy is
// a transient fault and "N+" a permanent one). A nil WriteFailures returns
// w unchanged.
func (wf *WriteFailures) Writer(w io.Writer) io.Writer {
	if wf == nil {
		return w
	}
	return &failingWriter{wf: wf, w: w}
}

type failingWriter struct {
	wf *WriteFailures
	w  io.Writer
}

func (f *failingWriter) Write(b []byte) (int, error) {
	if f.wf.next() {
		return 0, fmt.Errorf("faultinject: injected write failure (op %d)", f.wf.seq)
	}
	return f.w.Write(b)
}
