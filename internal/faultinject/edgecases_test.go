package faultinject

import (
	"reflect"
	"testing"
)

// TestParseTrialSetEdgeCases tables the spec-parsing boundary conditions —
// empty spec, single trial, reversed and overlapping ranges, degenerate
// seeded selections, max-int bounds — asserting the exact one-line error
// message where parsing must fail, and the materialized members where it
// must not.
func TestParseTrialSetEdgeCases(t *testing.T) {
	const maxInt = "9223372036854775807"
	cases := []struct {
		name, spec string
		want       []int  // materialized members (total 10^6), nil with wantNil
		wantNil    bool   // empty spec: nil set, nil error
		wantErr    string // exact error message, "" = parse succeeds
	}{
		{name: "empty spec", spec: "", wantNil: true},
		{name: "blank spec", spec: "   ", wantNil: true},
		{name: "single trial", spec: "5", want: []int{5}},
		{name: "single trial zero", spec: "0", want: []int{0}},
		{name: "degenerate range", spec: "4-4", want: []int{4}},
		{name: "reversed range", spec: "9-3",
			wantErr: `faultinject: bad trial range "9-3"`},
		{name: "overlapping ranges union", spec: "3-5,4-6", want: []int{3, 4, 5, 6}},
		{name: "duplicate entries union", spec: "7,7,7", want: []int{7}},
		{name: "whitespace tolerated", spec: " 1 , 3 ", want: []int{1, 3}},
		{name: "trailing comma tolerated", spec: "2,", want: []int{2}},
		{name: "comma only", spec: ",",
			wantErr: `faultinject: empty trial set ","`},
		{name: "negative index", spec: "-3",
			wantErr: `faultinject: bad trial index "-3" (want non-negative integers, ranges, or rand:K@seed)`},
		{name: "non-numeric", spec: "x",
			wantErr: `faultinject: bad trial index "x" (want non-negative integers, ranges, or rand:K@seed)`},
		{name: "seeded zero count", spec: "rand:0@5",
			wantErr: `faultinject: bad seeded set "rand:0@5": count must be a positive integer`},
		{name: "seeded negative count", spec: "rand:-2@5",
			wantErr: `faultinject: bad seeded set "rand:-2@5": count must be a positive integer`},
		{name: "seeded missing seed", spec: "rand:3",
			wantErr: `faultinject: bad seeded set "rand:3" (want rand:K@seed)`},
		{name: "max-int single trial", spec: maxInt, want: []int{1<<63 - 1}},
		{name: "int overflow", spec: "9223372036854775808",
			wantErr: `faultinject: bad trial index "9223372036854775808" (want non-negative integers, ranges, or rand:K@seed)`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			set, err := ParseTrialSet(c.spec)
			if c.wantErr != "" {
				if err == nil || err.Error() != c.wantErr {
					t.Fatalf("error = %v, want %q", err, c.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if c.wantNil {
				if set != nil {
					t.Fatalf("want nil set, got %v", set.Indices())
				}
				return
			}
			set.materialize(1_000_000)
			if got := set.Indices(); !reflect.DeepEqual(got, c.want) {
				t.Fatalf("members = %v, want %v", got, c.want)
			}
		})
	}
}

// TestParseTrialSetNegativeRangeBound pins the reversed-bound diagnosis on
// a range whose upper bound is negative: the range error, not the index one.
func TestParseTrialSetNegativeRangeBound(t *testing.T) {
	_, err := ParseTrialSet("3--1")
	if err == nil || err.Error() != `faultinject: bad trial range "3--1"` {
		t.Fatalf("error = %v", err)
	}
}

// TestSeededTrialSetMaxSeed drives the seed through its uint64 extremes.
func TestSeededTrialSetMaxSeed(t *testing.T) {
	set, err := ParseTrialSet("rand:1@18446744073709551615")
	if err != nil {
		t.Fatal(err)
	}
	set.materialize(8)
	if got := set.Indices(); len(got) != 1 || got[0] < 0 || got[0] >= 8 {
		t.Fatalf("members = %v, want one index in [0, 8)", got)
	}
	if _, err := ParseTrialSet("rand:1@18446744073709551616"); err == nil {
		t.Fatal("seed overflowing uint64 accepted")
	}
}

// TestParseWriteFailuresEdgeCases tables the write-failure schedule
// boundary conditions with exact one-line error assertions.
func TestParseWriteFailuresEdgeCases(t *testing.T) {
	cases := []struct {
		name, spec string
		wantNil    bool
		wantErr    string
		fails      []int // 1-based ops that must fail among ops 1..10
	}{
		{name: "empty spec", spec: "", wantNil: true},
		{name: "single failure", spec: "3", fails: []int{3}},
		{name: "span", spec: "2x3", fails: []int{2, 3, 4}},
		{name: "permanent", spec: "8+", fails: []int{8, 9, 10}},
		{name: "composed overlapping", spec: "2x3,3x4", fails: []int{2, 3, 4, 5, 6}},
		{name: "comma only", spec: ",",
			wantErr: `faultinject: empty write-failure schedule ","`},
		{name: "zero op", spec: "0",
			wantErr: `faultinject: bad write-failure span "0" (want N, NxK, or N+)`},
		{name: "zero count", spec: "3x0",
			wantErr: `faultinject: bad write-failure count in "3x0"`},
		{name: "zero permanent", spec: "0+",
			wantErr: `faultinject: bad write-failure span "0+" (want N+ with N >= 1)`},
		{name: "non-numeric", spec: "x",
			wantErr: `faultinject: bad write-failure span "x" (want N, NxK, or N+)`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			wf, err := ParseWriteFailures(c.spec)
			if c.wantErr != "" {
				if err == nil || err.Error() != c.wantErr {
					t.Fatalf("error = %v, want %q", err, c.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if c.wantNil {
				if wf != nil {
					t.Fatal("want nil schedule")
				}
				return
			}
			var got []int
			for op := 1; op <= 10; op++ {
				if wf.next() {
					got = append(got, op)
				}
			}
			if !reflect.DeepEqual(got, c.fails) {
				t.Fatalf("failing ops = %v, want %v", got, c.fails)
			}
		})
	}
}
