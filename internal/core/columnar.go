package core

import (
	"math"
	"math/bits"

	"asyncagree/internal/sim"
)

// This file is the core algorithm's port onto the columnar vote-tally
// kernel (sim/columnar.go): SendColumnar publishes the pending broadcasts
// as (round, value) columns, and DeliverTally replays the window's
// per-message delivery as a word-by-word bitset scan that is byte-identical
// to n-t individual Deliver calls — same tallies, same threshold-crossing
// points, same rng draws, same final state.
//
// Why a scan and not a plain popcount: the legacy path evaluates a round at
// the exact message that brings its tally to T1, and the coin flip (or
// adoption) at that point consumes randomness before any later message of
// the window is tallied — later messages may then be stale (the round
// advanced past them) or feed the next round. A whole-window popcount
// would tally them first and diverge. The scan therefore walks sender
// words in ascending order (delivery order is ascending sender, and within
// a sender ascending record order = ascending round), bulk-applying votes
// between threshold crossings — sound because tallying is commutative and
// evaluation only ever fires on the current round's tally — and handling
// each crossing bit-exactly.
//
// The frontier (fb, fk) tracks progress inside the current word after a
// crossing: senders below bit fb are fully delivered, and sender fb is
// delivered through round fk (its higher-round records come after the
// crossing record it just delivered). The remaining mask of a column with
// round k is therefore MaskFrom(fb+1) for k <= fk and MaskFrom(fb)
// otherwise.

var _ sim.VoteBroadcaster = (*Proc)(nil)
var _ sim.TallyReceiver = (*Proc)(nil)

// SendColumnar implements sim.VoteBroadcaster: it publishes the pending
// broadcasts (class 0, value-bearing) instead of materializing Messages.
// Pending rounds strictly ascend, satisfying the publish-order contract.
func (p *Proc) SendColumnar(pub sim.VotePublisher) {
	for i := range p.pending {
		pub.Publish(p.pending[i].R, 0, uint8(p.pending[i].X))
	}
	p.pending = p.pending[:0]
}

// remMask returns the still-undelivered sender mask of a round-key column
// given the in-word frontier.
func remMask(fb, fk, key int) uint64 {
	if key <= fk {
		return sim.MaskFrom(fb + 1)
	}
	return sim.MaskFrom(fb)
}

// DeliverTally implements sim.TallyReceiver.
func (p *Proc) DeliverTally(t *sim.WindowTally, r sim.RandSource) {
	cols := t.Columns()
	if len(cols) == 0 {
		return
	}
	words := t.Words()
	for w := 0; w < words; w++ {
		allow := t.AllowWord(w)
		if allow == 0 {
			continue
		}
		fb, fk := 0, math.MinInt
		for {
			var done bool
			if p.syncing {
				done = p.syncWord(cols, w, allow, &fb, &fk, r)
			} else {
				done = p.normalWord(cols, w, allow, &fb, &fk, r)
			}
			if done {
				break
			}
		}
	}
}

// normalWord processes (part of) one sender word in normal operation. It
// either finds the next evaluation event — applies the exact delivery
// prefix, runs the legacy cascade, returns false so the caller re-enters
// with the updated round/mode — or proves no event fires in this word,
// bulk-applies the remainder, and returns true.
func (p *Proc) normalWord(cols []sim.VoteColumn, w int, allow uint64, fb, fk *int, r sim.RandSource) bool {
	needed := p.th.T1
	var votedCur uint64
	if cur := p.got[p.round]; cur != nil {
		needed -= cur.seen
		votedCur = cur.bits[0][w] | cur.bits[1][w]
	}
	if needed <= 0 {
		return p.pendingEvalWord(cols, w, allow, fb, fk, r)
	}
	var newAll uint64
	remCur := remMask(*fb, *fk, p.round)
	for ci := range cols {
		c := &cols[ci]
		if c.Round == p.round {
			newAll |= c.Word(w) & allow & remCur &^ votedCur
		}
	}
	if bits.OnesCount64(newAll) < needed {
		// No crossing in this word: every remaining non-stale vote can be
		// applied in bulk — no evaluation fires in between, and tallying is
		// commutative under the dedup mask. Stale rounds are dropped exactly
		// like the per-message path.
		for ci := range cols {
			c := &cols[ci]
			if c.Round < p.round {
				continue
			}
			p.applyBits(c.Round, c.Val, w, c.Word(w)&allow&remMask(*fb, *fk, c.Round))
		}
		return true
	}
	// The needed-th new current-round vote (ascending sender order) is the
	// crossing message. Deliver everything strictly before it plus the
	// crossing vote itself: current-round bits <= b, and other (higher)
	// rounds' bits < b — the crossing sender's higher-round records follow
	// its current-round record, so they are not yet delivered.
	b := sim.NthSetBit(newAll, needed)
	curRound := p.round
	through := ^sim.MaskFrom(b + 1)
	below := ^sim.MaskFrom(b)
	for ci := range cols {
		c := &cols[ci]
		if c.Round < curRound {
			continue
		}
		cut := below
		if c.Round == curRound {
			cut = through
		}
		p.applyBits(c.Round, c.Val, w, c.Word(w)&allow&remMask(*fb, *fk, c.Round)&cut)
	}
	*fb, *fk = b, curRound
	p.cascade(r)
	return false
}

// pendingEvalWord handles the carried-over complete current round a sync
// adoption leaves behind (the legacy syncing branch evaluates once and
// returns without cascading): the next applied — non-stale, non-duplicate,
// allowed — vote of any round fires the cascade, so find the earliest one
// in delivery order ((bit, round) lexicographic), apply just it, cascade,
// and resume the normal scan behind it.
func (p *Proc) pendingEvalWord(cols []sim.VoteColumn, w int, allow uint64, fb, fk *int, r sim.RandSource) bool {
	bestBit, bestKey := 64, 0
	var bestVal uint8
	for ci := range cols {
		c := &cols[ci]
		if c.Round < p.round {
			continue
		}
		m := c.Word(w) & allow & remMask(*fb, *fk, c.Round) &^ p.votedWord(c.Round, w)
		if m == 0 {
			continue
		}
		b := bits.TrailingZeros64(m)
		if b < bestBit || (b == bestBit && c.Round < bestKey) {
			bestBit, bestKey, bestVal = b, c.Round, c.Val
		}
	}
	if bestBit >= 64 {
		return true // nothing applicable anywhere in this word
	}
	p.applyBits(bestKey, bestVal, w, uint64(1)<<uint(bestBit))
	*fb, *fk = bestBit, bestKey
	p.cascade(r)
	return false
}

// syncWord processes (part of) one sender word in the post-reset
// resynchronization state: no staleness, and the event is the first
// message (in delivery order) that brings any round's tally to T1 — the
// adoption point. Ties at one sender bit resolve to the smallest round,
// matching the sender's ascending record order.
func (p *Proc) syncWord(cols []sim.VoteColumn, w int, allow uint64, fb, fk *int, r sim.RandSource) bool {
	bestBit, bestKey := 64, 0
	for ci := 0; ci < len(cols); {
		round := cols[ci].Round
		var m uint64
		for ; ci < len(cols) && cols[ci].Round == round; ci++ {
			m |= cols[ci].Word(w)
		}
		m &= allow & remMask(*fb, *fk, round) &^ p.votedWord(round, w)
		if m == 0 {
			continue
		}
		needed := p.th.T1
		if rv := p.got[round]; rv != nil {
			needed -= rv.seen
		}
		if bits.OnesCount64(m) < needed {
			continue
		}
		b := sim.NthSetBit(m, needed)
		if b < bestBit || (b == bestBit && round < bestKey) {
			bestBit, bestKey = b, round
		}
	}
	if bestBit >= 64 {
		// No round completes in this word: tally everything.
		for ci := range cols {
			c := &cols[ci]
			p.applyBits(c.Round, c.Val, w, c.Word(w)&allow&remMask(*fb, *fk, c.Round))
		}
		return true
	}
	// Deliver the prefix through the adopting message: rounds <= bestKey of
	// sender bestBit precede it, higher rounds follow. No other round can
	// complete at an earlier-or-equal position — it would have won the
	// candidate selection above.
	through := ^sim.MaskFrom(bestBit + 1)
	below := ^sim.MaskFrom(bestBit)
	for ci := range cols {
		c := &cols[ci]
		cut := below
		if c.Round <= bestKey {
			cut = through
		}
		p.applyBits(c.Round, c.Val, w, c.Word(w)&allow&remMask(*fb, *fk, c.Round)&cut)
	}
	// Adopt exactly like the legacy syncing branch: evaluate once, no
	// cascade — a complete buffered next round stays pending until the next
	// applied vote (pendingEvalWord).
	p.round = bestKey
	p.syncing = false
	p.evaluate(r)
	*fb, *fk = bestBit, bestKey
	return false
}

// votedWord returns the already-voted sender mask of a round's tally.
func (p *Proc) votedWord(round, w int) uint64 {
	if rv := p.got[round]; rv != nil {
		return rv.bits[0][w] | rv.bits[1][w]
	}
	return 0
}

// applyBits tallies a whole word's worth of one column's votes, deduping
// against already-recorded senders. Lazy tally creation matches the legacy
// path: an entry exists iff at least one non-stale vote for the round was
// delivered (a duplicate presupposes an existing entry, so creating before
// the dedup mask is the same behavior).
func (p *Proc) applyBits(round int, val uint8, w int, mask uint64) {
	if mask == 0 {
		return
	}
	rv := p.got[round]
	if rv == nil {
		rv = p.takeRound()
		p.got[round] = rv
	}
	mask &^= rv.bits[0][w] | rv.bits[1][w]
	if mask == 0 {
		return
	}
	rv.bits[val][w] |= mask
	c := bits.OnesCount64(mask)
	rv.seen += c
	rv.count[val] += c
}

// cascade is the legacy post-tally evaluation loop: evaluate while the
// current round's tally is complete.
func (p *Proc) cascade(r sim.RandSource) {
	for !p.syncing {
		cur := p.got[p.round]
		if cur == nil || cur.seen < p.th.T1 {
			return
		}
		p.evaluate(r)
	}
}
