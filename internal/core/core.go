// Package core implements the paper's Section 3 agreement algorithm: the
// Ben-Or/Bracha-style threshold protocol that achieves measure-one
// correctness and termination against the strongly adaptive (resetting)
// adversary for t < n/6 (Theorem 4).
//
// Per processor p the algorithm keeps a round number r_p (starting at 1) and
// a current value x_p (starting at the input bit) and loops:
//
//	step 1: send (r_p, x_p) to all processors.
//	step 2: wait for T1 messages (r_q, x_q) with r_q = r_p.
//	step 3: if >= T2 of them carry the same bit v, write v to the output bit
//	        (if unwritten). If >= T3 carry the same bit v, set x_p = v;
//	        otherwise set x_p to a fresh uniformly random bit.
//	step 4: r_p += 1; goto step 1.
//
// Reset handling: a processor that detects it was reset refrains from
// sending, waits for T1 messages sharing a common round value r, adopts that
// round, and re-enters at step 3.
//
// Theorem 4 requires n-2t >= T1 >= T2 >= T3+t and 2*T3 > n, achievable for
// t < n/6 with the defaults T1 = T2 = n-2t, T3 = n-3t.
package core

import (
	"fmt"
	"strconv"
	"strings"

	"asyncagree/internal/sim"
)

// Thresholds holds the three protocol thresholds T1 >= T2 >= T3.
type Thresholds struct {
	T1, T2, T3 int
}

// DefaultThresholds returns the Theorem 4 defaults T1 = T2 = n-2t,
// T3 = n-3t, which satisfy the constraints exactly when t < n/6.
func DefaultThresholds(n, t int) (Thresholds, error) {
	th := Thresholds{T1: n - 2*t, T2: n - 2*t, T3: n - 3*t}
	if err := th.Validate(n, t); err != nil {
		return Thresholds{}, err
	}
	return th, nil
}

// Validate checks the Theorem 4 constraints:
// n-2t >= T1 >= T2 >= T3+t and 2*T3 > n (which also gives 2*T2 > n).
func (th Thresholds) Validate(n, t int) error {
	switch {
	case t < 0 || t >= n:
		return fmt.Errorf("core: need 0 <= t < n, got t=%d n=%d", t, n)
	case th.T1 > n-2*t:
		return fmt.Errorf("core: T1=%d > n-2t=%d", th.T1, n-2*t)
	case th.T1 < th.T2:
		return fmt.Errorf("core: T1=%d < T2=%d", th.T1, th.T2)
	case th.T2 < th.T3+t:
		return fmt.Errorf("core: T2=%d < T3+t=%d", th.T2, th.T3+t)
	case 2*th.T3 <= n:
		return fmt.Errorf("core: 2*T3=%d <= n=%d", 2*th.T3, n)
	case th.T1 <= 0:
		return fmt.Errorf("core: T1=%d must be positive", th.T1)
	}
	return nil
}

// Feasible reports whether any thresholds satisfying Theorem 4 exist for
// (n, t). The binding constraints force T3 > n/2 and T1 <= n-2t with
// T1 >= T3 + t, so feasibility is equivalent to n-2t >= floor(n/2)+1+t,
// i.e. t < n/6 up to rounding.
func Feasible(n, t int) bool {
	_, err := DefaultThresholds(n, t)
	return err == nil
}

// Vote is the (r, x) message payload of the protocol.
type Vote struct {
	// R is the sender's round number, X its current value.
	R int
	X sim.Bit
}

// ExtractVote exposes the round/value content of a core message to
// algorithm-agnostic adversaries (notably the split-vote adversary). It
// accepts both the pooled *Vote boxes the protocol sends and plain Vote
// values (hand-built messages in tests and external drivers).
func ExtractVote(m sim.Message) (round int, value sim.Bit, ok bool) {
	switch v := m.Payload.(type) {
	case *Vote:
		return v.R, v.X, true
	case Vote:
		return v.R, v.X, true
	}
	return 0, 0, false
}

// Proc is one processor running the Section 3 algorithm. It implements
// sim.Process.
type Proc struct {
	id   sim.ProcID
	n, t int
	// words is the sender-bitset width (n+63)/64 shared by every tally.
	words int
	th    Thresholds

	input sim.Bit

	// Write-once output.
	out     sim.Bit
	decided bool

	// round is the current round r_p; syncing marks the post-reset state in
	// which the round is unknown (the paper's "blank r value").
	round   int
	syncing bool
	x       sim.Bit

	// got[r] tallies the votes received for round r. Each round's threshold
	// evaluation happens exactly when the T1-th distinct sender for the
	// current round arrives. Tallies are recycled through pool so the
	// steady-state window loop performs no per-round allocation.
	got  map[int]*roundVotes
	pool []*roundVotes

	// resetCounter implements the paper's reset-detection bookkeeping: it
	// survives resets and increments on each one.
	resetCounter int

	// pending queues broadcast records cheaply (one Vote per queueBroadcast
	// call); Send materializes them into outbox Messages lazily, and the
	// columnar SendColumnar publishes them as columns instead, so queueing
	// costs O(1) either way. Within a window, pending entries strictly
	// ascend in round (evaluate queues exactly one record per round advance
	// and Reset truncates before re-queueing), the publish-order invariant
	// sim.VotePublisher requires.
	pending []Vote
	outbox  []sim.Message

	// votePool recycles the heap-boxed *Vote payloads of past broadcasts.
	// The System hands a window's batch payloads back through ReclaimPayload
	// once the window completes (window mode only; in step mode the pool
	// simply stays empty and every broadcast boxes a fresh Vote), so the
	// steady-state window loop allocates no vote boxes.
	votePool []*Vote
}

// roundVotes tallies one round's votes as per-value sender bitsets: bit q
// of bits[v] is set iff sender q's round vote carried v; seen counts the
// distinct senders recorded and count the per-value totals the step-3
// thresholds are checked against. The bitset representation serves both
// delivery paths: the per-message Deliver sets one bit at a time, and the
// columnar DeliverTally (columnar.go) ORs whole words, so the two produce
// identical state by construction.
type roundVotes struct {
	bits  [2][]uint64
	seen  int
	count [2]int
}

func (rv *roundVotes) clear() {
	clear(rv.bits[0])
	clear(rv.bits[1])
	rv.seen = 0
	rv.count = [2]int{}
}

// voted reports whether sender q's vote is already recorded.
func (rv *roundVotes) voted(q sim.ProcID) bool {
	bit := uint64(1) << (uint(q) & 63)
	return (rv.bits[0][int(q)>>6]|rv.bits[1][int(q)>>6])&bit != 0
}

// takeRound fetches a cleared tally from the pool (or allocates one).
func (p *Proc) takeRound() *roundVotes {
	if n := len(p.pool); n > 0 {
		rv := p.pool[n-1]
		p.pool = p.pool[:n-1]
		return rv
	}
	backing := make([]uint64, 2*p.words)
	return &roundVotes{bits: [2][]uint64{backing[:p.words], backing[p.words:]}}
}

// releaseRound clears a tally and returns it to the pool.
func (p *Proc) releaseRound(rv *roundVotes) {
	rv.clear()
	p.pool = append(p.pool, rv)
}

var _ sim.Process = (*Proc)(nil)

// New constructs a processor with the given thresholds. It returns an error
// if the thresholds violate Theorem 4's constraints.
func New(id sim.ProcID, n, t int, th Thresholds, input sim.Bit) (*Proc, error) {
	if err := th.Validate(n, t); err != nil {
		return nil, err
	}
	p := &Proc{
		id:    id,
		n:     n,
		t:     t,
		words: (n + 63) / 64,
		th:    th,
		input: input,
		round: 1,
		x:     input,
		got:   make(map[int]*roundVotes),
	}
	p.queueBroadcast()
	return p, nil
}

// NewFactory returns a sim.Config-compatible constructor; it panics only on
// invalid thresholds, which callers should have validated.
func NewFactory(n, t int, th Thresholds) func(sim.ProcID, sim.Bit) sim.Process {
	if err := th.Validate(n, t); err != nil {
		panic("core: invalid thresholds passed to NewFactory: " + err.Error())
	}
	return func(id sim.ProcID, input sim.Bit) sim.Process {
		p, err := New(id, n, t, th, input)
		if err != nil {
			panic("core: " + err.Error()) // unreachable: thresholds validated above
		}
		return p
	}
}

// ID implements sim.Process.
func (p *Proc) ID() sim.ProcID { return p.id }

// Input implements sim.Process.
func (p *Proc) Input() sim.Bit { return p.input }

// Output implements sim.Process.
func (p *Proc) Output() (sim.Bit, bool) { return p.out, p.decided }

// Round returns the current round number (for adversaries and tests); the
// second result is false while the processor is resynchronizing after a
// reset.
func (p *Proc) Round() (int, bool) { return p.round, !p.syncing }

// Value returns the current value x_p (full-information adversaries may
// read it).
func (p *Proc) Value() sim.Bit { return p.x }

// Resets returns the reset counter.
func (p *Proc) Resets() int { return p.resetCounter }

// queueBroadcast queues (round, x) to all n processors as one pending
// record; the n Message copies (sharing one pooled *Vote box, so the window
// hot loop allocates no payload) materialize lazily in Send, and never
// materialize at all on the columnar path.
func (p *Proc) queueBroadcast() {
	p.pending = append(p.pending, Vote{R: p.round, X: p.x})
}

// takeVote fetches a payload box from the pool (or allocates one).
func (p *Proc) takeVote() *Vote {
	if n := len(p.votePool); n > 0 {
		v := p.votePool[n-1]
		p.votePool = p.votePool[:n-1]
		return v
	}
	return new(Vote)
}

// ReclaimPayload implements sim.PayloadReclaimer: the System returns the
// payload boxes of a completed window's batch, one call per box.
func (p *Proc) ReclaimPayload(payload any) {
	if v, ok := payload.(*Vote); ok {
		p.votePool = append(p.votePool, v)
	}
}

// Send implements sim.Process: it materializes and flushes the pending
// broadcasts. A reset processor has nothing pending until it
// resynchronizes, implementing "a newly reset processor refrains from
// sending messages until it resumes normal operation". The returned slice
// is valid only until the next Deliver/Reset (the outbox capacity is
// recycled), per the sim.Process contract.
func (p *Proc) Send() []sim.Message {
	out := p.outbox[:0]
	for i := range p.pending {
		box := p.takeVote()
		box.R, box.X = p.pending[i].R, p.pending[i].X
		var payload any = box
		for q := 0; q < p.n; q++ {
			out = append(out, sim.Message{From: p.id, To: sim.ProcID(q), Payload: payload})
		}
	}
	p.pending = p.pending[:0]
	p.outbox = out[:0]
	return out
}

// Deliver implements sim.Process.
func (p *Proc) Deliver(m sim.Message, r sim.RandSource) {
	var v Vote
	switch pl := m.Payload.(type) {
	case *Vote:
		v = *pl
	case Vote:
		v = pl
	default:
		return // foreign or corrupted payload: ignore
	}
	if !p.syncing && v.R < p.round {
		return // stale round, irrelevant
	}
	if m.From < 0 || int(m.From) >= p.n {
		return // unauthenticated sender; cannot occur through sim
	}
	byRound := p.got[v.R]
	if byRound == nil {
		byRound = p.takeRound()
		p.got[v.R] = byRound
	}
	if byRound.voted(m.From) {
		return // at most one vote per (sender, round)
	}
	byRound.bits[v.X][int(m.From)>>6] |= uint64(1) << (uint(m.From) & 63)
	byRound.seen++
	byRound.count[v.X]++

	if p.syncing {
		// Post-reset: wait for T1 messages sharing a common round value,
		// adopt it, and re-enter at step 3.
		if byRound.seen >= p.th.T1 {
			p.round = v.R
			p.syncing = false
			p.evaluate(r)
		}
		return
	}
	// Normal operation: evaluate the moment the current round completes.
	// Advancing may complete the next round from already-buffered votes, so
	// cascade.
	for !p.syncing {
		cur := p.got[p.round]
		if cur == nil || cur.seen < p.th.T1 {
			return
		}
		p.evaluate(r)
	}
}

// evaluate performs step 3 and step 4 for the current round, which has
// gathered at least T1 votes.
func (p *Proc) evaluate(r sim.RandSource) {
	count := p.got[p.round].count
	// step 3: decide at T2, adopt at T3, otherwise flip the local coin.
	for v := sim.Bit(0); v <= 1; v++ {
		if count[v] >= p.th.T2 && !p.decided {
			p.out = v
			p.decided = true
		}
	}
	switch {
	case count[0] >= p.th.T3:
		p.x = 0
	case count[1] >= p.th.T3:
		p.x = 1
	default:
		p.x = sim.Bit(r.Bit())
	}
	// step 4: advance and broadcast; discard old-round bookkeeping.
	p.releaseRound(p.got[p.round])
	delete(p.got, p.round)
	p.round++
	p.queueBroadcast()
	p.dropStale()
}

// dropStale discards buffered votes for rounds below the current one.
func (p *Proc) dropStale() {
	for r, rv := range p.got {
		if r < p.round {
			p.releaseRound(rv)
			delete(p.got, r)
		}
	}
}

// Recycle implements sim.Recycler: it rewinds the processor to the state
// New would produce for the given input, keeping the pooled round tallies,
// vote boxes, outbox capacity, and round map so a recycled trial allocates
// nothing here.
func (p *Proc) Recycle(input sim.Bit) {
	p.input = input
	p.out, p.decided = 0, false
	p.round = 1
	p.syncing = false
	p.x = input
	for r, rv := range p.got {
		p.releaseRound(rv)
		delete(p.got, r)
	}
	p.resetCounter = 0
	p.reclaimOutbox()
	p.queueBroadcast()
}

// reclaimOutbox discards queued-but-unsent broadcasts. Pending records are
// plain values (boxes are only taken at Send time), so discarding is a
// truncation.
func (p *Proc) reclaimOutbox() {
	p.pending = p.pending[:0]
}

// Reset implements sim.Process: it erases everything except the input bit,
// output bit, identity, and the reset counter.
func (p *Proc) Reset() {
	p.resetCounter++
	p.round = 0
	p.syncing = true
	p.x = p.input // placeholder; x is re-derived at step 3 on rejoin
	for r, rv := range p.got {
		p.releaseRound(rv)
		delete(p.got, r)
	}
	p.reclaimOutbox()
}

// Snapshot implements sim.Process. The encoding is
// "r=<round|sync> x=<x> out=<bit|_> rc=<resets>".
func (p *Proc) Snapshot() string {
	var b strings.Builder
	b.WriteString("r=")
	if p.syncing {
		b.WriteString("sync")
	} else {
		b.WriteString(strconv.Itoa(p.round))
	}
	b.WriteString(" x=")
	b.WriteByte('0' + byte(p.x))
	b.WriteString(" out=")
	if p.decided {
		b.WriteByte('0' + byte(p.out))
	} else {
		b.WriteByte('_')
	}
	b.WriteString(" rc=")
	b.WriteString(strconv.Itoa(p.resetCounter))
	return b.String()
}

// ProjectedSnapshot returns the round-free projection (x, out) used by the
// lower-bound machinery: Hamming distance between decision sets is measured
// over the decision-relevant part of the state.
func (p *Proc) ProjectedSnapshot() string {
	out := "_"
	if p.decided {
		out = string('0' + byte(p.out))
	}
	return string('0'+byte(p.x)) + out
}
