package core

import (
	"testing"
	"testing/quick"

	"asyncagree/internal/adversary"
	"asyncagree/internal/sim"
)

func mustThresholds(t *testing.T, n, tt int) Thresholds {
	t.Helper()
	th, err := DefaultThresholds(n, tt)
	if err != nil {
		t.Fatalf("DefaultThresholds(%d, %d): %v", n, tt, err)
	}
	return th
}

func newSystem(t *testing.T, n, tt int, inputs []sim.Bit, seed uint64) *sim.System {
	t.Helper()
	th := mustThresholds(t, n, tt)
	s, err := sim.New(sim.Config{
		N: n, T: tt, Seed: seed, Inputs: inputs,
		NewProcess: NewFactory(n, tt, th),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func splitInputs(n int) []sim.Bit {
	in := make([]sim.Bit, n)
	for i := range in {
		in[i] = sim.Bit(i % 2)
	}
	return in
}

func unanimousInputs(n int, v sim.Bit) []sim.Bit {
	in := make([]sim.Bit, n)
	for i := range in {
		in[i] = v
	}
	return in
}

func classifyVote(m sim.Message) adversary.VoteInfo {
	if _, v, ok := ExtractVote(m); ok {
		return adversary.VoteInfo{HasValue: true, Value: v}
	}
	return adversary.VoteInfo{}
}

func TestThresholdValidation(t *testing.T) {
	cases := []struct {
		name    string
		n, t    int
		th      Thresholds
		wantErr bool
	}{
		{"theorem 4 defaults n=12 t=1", 12, 1, Thresholds{T1: 10, T2: 10, T3: 9}, false},
		{"T1 too large", 12, 1, Thresholds{T1: 11, T2: 10, T3: 9}, true},
		{"T2 above T1", 12, 1, Thresholds{T1: 10, T2: 11, T3: 9}, true},
		{"T2 below T3+t", 12, 1, Thresholds{T1: 10, T2: 9, T3: 9}, true},
		{"2*T3 <= n", 12, 1, Thresholds{T1: 10, T2: 10, T3: 6}, true},
		{"negative t", 12, -1, Thresholds{T1: 10, T2: 10, T3: 9}, true},
		{"t = n", 12, 12, Thresholds{T1: 10, T2: 10, T3: 9}, true},
		{"smaller T2 legal when t allows", 24, 2, Thresholds{T1: 20, T2: 19, T3: 17}, false},
		{"nonpositive T1", 3, 1, Thresholds{T1: 0, T2: 0, T3: -1}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.th.Validate(c.n, c.t)
			if (err != nil) != c.wantErr {
				t.Fatalf("Validate = %v, wantErr = %v", err, c.wantErr)
			}
		})
	}
}

func TestDefaultThresholdsFeasibleIffSmallT(t *testing.T) {
	// Theorem 4: achievable whenever t < n/6 (with the stated defaults
	// T1 = T2 = n-2t, T3 = n-3t).
	for n := 6; n <= 60; n += 6 {
		for tt := 0; tt < n; tt++ {
			got := Feasible(n, tt)
			want := 6*tt < n
			if got != want {
				t.Fatalf("Feasible(%d, %d) = %v, want %v", n, tt, got, want)
			}
		}
	}
}

func TestUnanimousDecidesInFirstWindow(t *testing.T) {
	// "if all inputs are equal to a common value v, then all processors
	// will decide v in the first acceptable window."
	for _, v := range []sim.Bit{0, 1} {
		s := newSystem(t, 12, 1, unanimousInputs(12, v), 7)
		res, err := s.RunWindows(adversary.FullDelivery{}, 10)
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllDecided {
			t.Fatal("not all decided")
		}
		if res.FirstDecision != 0 {
			t.Fatalf("first decision in window %d, want 0", res.FirstDecision)
		}
		if res.Decision != v {
			t.Fatalf("decision = %d, want %d", res.Decision, v)
		}
		if !res.Agreement || !res.Validity {
			t.Fatal("agreement/validity violated")
		}
	}
}

func TestUnanimousUnderAdversaries(t *testing.T) {
	advs := map[string]func() sim.WindowAdversary{
		"full":    func() sim.WindowAdversary { return adversary.FullDelivery{} },
		"random":  func() sim.WindowAdversary { return adversary.NewRandomWindows(3, 0.5, 2) },
		"storm":   func() sim.WindowAdversary { return &adversary.ResetStorm{} },
		"silence": func() sim.WindowAdversary { return adversary.FixedSilence{Silent: []sim.ProcID{0, 1}} },
	}
	for name, mk := range advs {
		t.Run(name, func(t *testing.T) {
			s := newSystem(t, 18, 2, unanimousInputs(18, 1), 11)
			res, err := s.RunWindows(mk(), 50)
			if err != nil {
				t.Fatal(err)
			}
			if !res.AllDecided || !res.Agreement || !res.Validity || res.Decision != 1 {
				t.Fatalf("res = %+v", res)
			}
		})
	}
}

func TestSplitInputsTerminateUnderChaos(t *testing.T) {
	// Measure-one termination: under non-worst-case adversaries a split
	// input configuration still decides reasonably fast for small n.
	for seed := uint64(1); seed <= 5; seed++ {
		s := newSystem(t, 12, 1, splitInputs(12), seed)
		res, err := s.RunWindows(adversary.NewRandomWindows(seed, 0.3, 1), 5000)
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllDecided {
			t.Fatalf("seed %d: not decided within 5000 windows", seed)
		}
		if !res.Agreement || !res.Validity {
			t.Fatalf("seed %d: safety violated: %+v", seed, res)
		}
	}
}

func TestAgreementNeverViolatedProperty(t *testing.T) {
	// Property (Theorem 4 safety): across random seeds, adversary mixes and
	// input patterns, no reachable configuration ever contains conflicting
	// outputs or an invalid output.
	check := func(seed uint64, pattern uint8, advPick uint8) bool {
		const n, tt = 12, 1
		inputs := make([]sim.Bit, n)
		for i := range inputs {
			inputs[i] = sim.Bit((pattern >> (i % 8)) & 1)
		}
		th, err := DefaultThresholds(n, tt)
		if err != nil {
			return false
		}
		s, err := sim.New(sim.Config{
			N: n, T: tt, Seed: seed, Inputs: inputs,
			NewProcess: NewFactory(n, tt, th),
		})
		if err != nil {
			return false
		}
		var adv sim.WindowAdversary
		switch advPick % 4 {
		case 0:
			adv = adversary.FullDelivery{}
		case 1:
			adv = adversary.NewRandomWindows(seed, 0.5, tt)
		case 2:
			adv = &adversary.ResetStorm{}
		case 3:
			adv = &adversary.SplitVote{Classify: classifyVote, Cap: th.T3 - 1}
		}
		res, err := s.RunWindows(adv, 300)
		if err != nil {
			return false
		}
		return res.Agreement && res.Validity
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestResetRejoin(t *testing.T) {
	// A processor reset in window 0 must resynchronize and still decide.
	// Split inputs keep window 0 undecided (counts 6/6 are below T3=9), so
	// the reset processor genuinely has to rejoin the protocol.
	s := newSystem(t, 12, 1, splitInputs(12), 3)
	// Window 0: full delivery then reset processor 5.
	batch := s.WindowSend()
	if err := s.WindowDeliver(batch, make([][]sim.ProcID, 12)); err != nil {
		t.Fatal(err)
	}
	if err := s.WindowResets([]sim.ProcID{5}); err != nil {
		t.Fatal(err)
	}
	p5 := s.Proc(5).(*Proc)
	if _, ok := p5.Round(); ok {
		t.Fatal("processor 5 should be resynchronizing after reset")
	}
	if p5.Resets() != 1 {
		t.Fatalf("reset counter = %d, want 1", p5.Resets())
	}
	// The reset processor must refrain from sending while syncing.
	if msgs := p5.Send(); len(msgs) != 0 {
		t.Fatalf("syncing processor sent %d messages", len(msgs))
	}
	// Next window: everyone else sends round-2 votes; p5 adopts the round
	// from the T1 common-round messages and re-enters at step 3.
	res, err := s.RunWindows(adversary.FullDelivery{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreement || !res.Validity {
		t.Fatalf("after reset rejoin: %+v", res)
	}
	if r, ok := p5.Round(); !ok || r < 2 {
		t.Fatalf("processor 5 did not resynchronize: round=%d ok=%v", r, ok)
	}
}

func TestResetErasesMemoryButKeepsContract(t *testing.T) {
	th := mustThresholds(t, 12, 1)
	p, err := New(3, 12, 1, th, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Input() != 1 || p.ID() != 3 {
		t.Fatal("identity/input wrong")
	}
	p.Reset()
	if p.Input() != 1 || p.ID() != 3 {
		t.Fatal("reset erased input or identity")
	}
	if p.Resets() != 1 {
		t.Fatal("reset counter not incremented")
	}
	if _, ok := p.Output(); ok {
		t.Fatal("output appeared from nowhere")
	}
}

func TestDecidedOutputSurvivesReset(t *testing.T) {
	s := newSystem(t, 12, 1, unanimousInputs(12, 1), 9)
	batch := s.WindowSend()
	if err := s.WindowDeliver(batch, make([][]sim.ProcID, 12)); err != nil {
		t.Fatal(err)
	}
	p0 := s.Proc(0).(*Proc)
	if _, ok := p0.Output(); !ok {
		t.Fatal("processor 0 should have decided in window 1 with unanimous inputs")
	}
	p0.Reset()
	v, ok := p0.Output()
	if !ok || v != 1 {
		t.Fatalf("output after reset = (%d, %v), want (1, true)", v, ok)
	}
}

func TestSplitVoteStallsProgress(t *testing.T) {
	// The Section 3 closing argument: the split-vote adversary prevents
	// decisions for a long time on split inputs by showing every processor
	// an approximate split. Individual seeds vary (the stall length is
	// roughly geometric), so assert on the mean over a fixed seed set; the
	// whole computation is deterministic.
	const n, tt, trials = 18, 2, 10
	th := mustThresholds(t, n, tt)
	total := 0
	for seed := uint64(1); seed <= trials; seed++ {
		s := newSystem(t, n, tt, splitInputs(n), seed)
		adv := &adversary.SplitVote{Classify: classifyVote, Cap: th.T3 - 1}
		res, err := s.RunWindows(adv, 100000)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Agreement || !res.Validity {
			t.Fatalf("seed %d: safety violated: %+v", seed, res)
		}
		if res.FirstDecision < 0 {
			t.Fatalf("seed %d: no decision within 100000 windows", seed)
		}
		total += res.FirstDecision
	}
	if mean := total / trials; mean < 15 {
		t.Fatalf("mean stall = %d windows, want >= 15 (split-vote too weak)", mean)
	}
}

func TestSplitVoteEventuallyLoses(t *testing.T) {
	// Measure-one termination: even against split-vote the execution
	// decides in finite time (exponentially distributed; n=8, t=1 is small
	// enough to finish fast).
	th := mustThresholds(t, 8, 1)
	s := newSystem(t, 8, 1, splitInputs(8), 21)
	adv := &adversary.SplitVote{Classify: classifyVote, Cap: th.T3 - 1}
	res, err := s.RunWindows(adv, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDecided {
		t.Fatalf("did not terminate within 200000 windows (decided %d/8)", s.DecidedCount())
	}
	if !res.Agreement || !res.Validity {
		t.Fatalf("safety violated: %+v", res)
	}
}

func TestNoConflictingDeterministicAdoption(t *testing.T) {
	// Proof of measure-one termination: "no two processors p and q can fix
	// x_p and x_q deterministically to conflicting values" in one window,
	// because 2*T3 > n. Verify over adversarial executions by observing
	// values after each window: the set of processors that adopted
	// deterministically must be unanimous. We detect deterministic adoption
	// by replaying threshold counts per window via an event observer on
	// delivered votes.
	th := mustThresholds(t, 12, 1)
	s := newSystem(t, 12, 1, splitInputs(12), 13)
	counts := make(map[sim.ProcID]*[2]int)
	conflicts := 0
	s.OnEvent = func(ev sim.Event) {
		switch ev.Kind {
		case sim.EvDeliver:
			if _, v, ok := ExtractVote(ev.Msg); ok {
				c := counts[ev.Proc]
				if c == nil {
					c = new([2]int)
					counts[ev.Proc] = c
				}
				c[v]++
			}
		case sim.EvWindow:
			det := map[sim.Bit]bool{}
			for _, c := range counts {
				for v := 0; v < 2; v++ {
					if c[v] >= th.T3 {
						det[sim.Bit(v)] = true
					}
				}
			}
			if det[0] && det[1] {
				conflicts++
			}
			counts = make(map[sim.ProcID]*[2]int)
		}
	}
	adv := adversary.NewRandomWindows(99, 0.4, 1)
	if _, err := s.RunWindows(adv, 500); err != nil {
		t.Fatal(err)
	}
	if conflicts != 0 {
		t.Fatalf("found %d windows with conflicting deterministic adoptions", conflicts)
	}
}

func TestSnapshotCanonical(t *testing.T) {
	th := mustThresholds(t, 12, 1)
	p, err := New(0, 12, 1, th, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p.Snapshot(), "r=1 x=1 out=_ rc=0"; got != want {
		t.Fatalf("Snapshot = %q, want %q", got, want)
	}
	p.Reset()
	if got, want := p.Snapshot(), "r=sync x=1 out=_ rc=1"; got != want {
		t.Fatalf("Snapshot after reset = %q, want %q", got, want)
	}
	if got, want := p.ProjectedSnapshot(), "1_"; got != want {
		t.Fatalf("ProjectedSnapshot = %q, want %q", got, want)
	}
}

func TestIgnoresForeignAndStaleMessages(t *testing.T) {
	th := mustThresholds(t, 12, 1)
	p, err := New(0, 12, 1, th, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := fakeRand{}
	p.Deliver(sim.Message{From: 1, Payload: "garbage"}, r)
	p.Deliver(sim.Message{From: 1, Payload: Vote{R: 0, X: 1}}, r) // stale round
	if rd, ok := p.Round(); !ok || rd != 1 {
		t.Fatalf("round moved on garbage: %d %v", rd, ok)
	}
	// Duplicate votes from the same sender must count once.
	for i := 0; i < th.T1+3; i++ {
		p.Deliver(sim.Message{From: 1, Payload: Vote{R: 1, X: 1}}, r)
	}
	if rd, _ := p.Round(); rd != 1 {
		t.Fatalf("duplicates advanced the round to %d", rd)
	}
}

// fakeRand is a deterministic RandSource for unit tests.
type fakeRand struct{}

func (fakeRand) Bit() uint8     { return 0 }
func (fakeRand) Intn(n int) int { return 0 }
func (fakeRand) Uint64() uint64 { return 0 }

func TestCascadedRoundCompletion(t *testing.T) {
	// Votes for round r+1 arriving before round r completes must be
	// buffered and applied immediately once round r evaluates.
	th := mustThresholds(t, 12, 1)
	p, err := New(0, 12, 1, th, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := fakeRand{}
	// Deliver T1 round-2 votes first (buffered), then T1 round-1 votes.
	for q := 1; q <= th.T1; q++ {
		p.Deliver(sim.Message{From: sim.ProcID(q), Payload: Vote{R: 2, X: 0}}, r)
	}
	for q := 1; q <= th.T1; q++ {
		p.Deliver(sim.Message{From: sim.ProcID(q), Payload: Vote{R: 1, X: 0}}, r)
	}
	if rd, _ := p.Round(); rd != 3 {
		t.Fatalf("round = %d after cascade, want 3", rd)
	}
	if v, ok := p.Output(); !ok || v != 0 {
		t.Fatalf("output = (%d, %v), want (0, true): T2 unanimous rounds decide", v, ok)
	}
}

func TestNewRejectsBadThresholds(t *testing.T) {
	if _, err := New(0, 12, 1, Thresholds{T1: 11, T2: 10, T3: 9}, 0); err == nil {
		t.Fatal("want error for invalid thresholds")
	}
}

func TestNewFactoryPanicsOnBadThresholds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFactory with invalid thresholds did not panic")
		}
	}()
	NewFactory(12, 5, Thresholds{T1: 2, T2: 2, T3: 2})
}

func TestRoundsStayInLockstep(t *testing.T) {
	// Window-mode invariant behind the Theorem 4 proof's induction: "in
	// window w, at least n-t processors will enter the window with r = w".
	// Across adversaries, all synchronized processors share one round
	// number at every window boundary.
	for _, mk := range []func() sim.WindowAdversary{
		func() sim.WindowAdversary { return adversary.FullDelivery{} },
		func() sim.WindowAdversary { return adversary.NewRandomWindows(4, 0.5, 2) },
		func() sim.WindowAdversary { return &adversary.ResetStorm{} },
	} {
		s := newSystem(t, 18, 2, splitInputs(18), 8)
		adv := mk()
		for w := 0; w < 60 && !s.AllDecided(); w++ {
			if err := s.ApplyWindowWith(adv); err != nil {
				t.Fatal(err)
			}
			rounds := map[int]int{}
			synced := 0
			for i := 0; i < 18; i++ {
				p := s.Proc(sim.ProcID(i)).(*Proc)
				if r, ok := p.Round(); ok {
					rounds[r]++
					synced++
				}
			}
			if len(rounds) > 1 {
				t.Fatalf("window %d: synchronized processors in %d distinct rounds: %v", w, len(rounds), rounds)
			}
			if synced < 18-2 {
				t.Fatalf("window %d: only %d processors synchronized, want >= n-t = 16", w, synced)
			}
		}
	}
}
