package core

import (
	"testing"

	"asyncagree/internal/adversary"
	"asyncagree/internal/sim"
)

// The core algorithm's wait threshold T1 <= n-2t leaves slack for t silent
// processors even after t exclusions, so it also rides out classical
// crashes (Section 5's model) — these integration tests exercise that.

func TestSurvivesCrashesMidExecution(t *testing.T) {
	s := newSystem(t, 18, 2, splitInputs(18), 4)
	adv := &adversary.CrashSchedule{
		Inner:   adversary.FullDelivery{},
		CrashAt: map[int][]sim.ProcID{2: {5}, 7: {11}},
	}
	res, err := s.RunWindows(adv, 50000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDecided || !res.Agreement || !res.Validity {
		t.Fatalf("%+v", res)
	}
	if !s.Crashed(5) || !s.Crashed(11) {
		t.Fatal("crashes did not happen")
	}
}

func TestSurvivesCrashesAndResetsTogether(t *testing.T) {
	// The full gauntlet: crashes, random sub-delivery, and resets at once.
	s := newSystem(t, 24, 3, splitInputs(24), 6)
	adv := &adversary.CrashSchedule{
		Inner:   adversary.NewRandomWindows(9, 0.4, 2),
		CrashAt: map[int][]sim.ProcID{3: {20}},
	}
	res, err := s.RunWindows(adv, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreement || !res.Validity {
		t.Fatalf("safety: %+v", res)
	}
	if !res.AllDecided {
		t.Fatalf("termination: %+v (decided %d/24)", res, s.DecidedCount())
	}
}

func TestStepModeLockstep(t *testing.T) {
	// The core algorithm also runs under raw step scheduling (not just
	// lockstep windows): the round bookkeeping must tolerate interleaving.
	s := newSystem(t, 12, 1, unanimousInputs(12, 1), 2)
	res, err := s.RunSteps(adversary.NewLockstep(), 100000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDecided || res.Decision != 1 || !res.Agreement {
		t.Fatalf("%+v", res)
	}
}

func TestCrashedProcessorsExcludedFromTermination(t *testing.T) {
	s := newSystem(t, 12, 1, unanimousInputs(12, 0), 3)
	if err := s.StepCrash(7); err != nil {
		t.Fatal(err)
	}
	res, err := s.RunWindows(adversary.FullDelivery{}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDecided {
		t.Fatalf("live processors did not all decide: %d/11", s.DecidedCount())
	}
	if _, decided := s.DecisionWindow(7); decided {
		t.Fatal("crashed processor decided")
	}
}
