package sim

import (
	"errors"
	"testing"
)

// scriptAdversary replays a fixed list of steps.
type scriptAdversary struct {
	steps []Step
	i     int
}

func (a *scriptAdversary) NextStep(*System) (Step, bool) {
	if a.i >= len(a.steps) {
		return Step{}, false
	}
	s := a.steps[a.i]
	a.i++
	return s, true
}

func TestRunStepsExecutesScript(t *testing.T) {
	s := newTestSystem(t, 2, 0, "ones", 1)
	adv := &scriptAdversary{steps: []Step{
		{Kind: StepSend, Proc: 0},
		{Kind: StepDeliver, MsgID: 1},
		{Kind: StepDeliver, MsgID: 2},
	}}
	res, err := s.RunSteps(adv, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Windows != 3 {
		t.Fatalf("step count = %d, want 3", res.Windows)
	}
	// echoProc with decideAt=1 decides after its first delivery.
	if s.DecidedCount() != 2 {
		t.Fatalf("decided = %d", s.DecidedCount())
	}
}

func TestRunStepsStopsAtBudget(t *testing.T) {
	s := newTestSystem(t, 2, 0, "split", 0)
	// An adversary that sends forever.
	adv := &loopSend{}
	res, err := s.RunSteps(adv, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Windows != 10 {
		t.Fatalf("executed %d steps, want 10", res.Windows)
	}
}

type loopSend struct{ p int }

func (a *loopSend) NextStep(s *System) (Step, bool) {
	a.p = (a.p + 1) % s.N()
	return Step{Kind: StepSend, Proc: ProcID(a.p)}, true
}

func TestRunStepsStopsWhenAllDecided(t *testing.T) {
	s := newTestSystem(t, 2, 0, "ones", 1)
	adv := &fullStepper{}
	res, err := s.RunSteps(adv, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDecided {
		t.Fatalf("%+v", res)
	}
	if res.Windows >= 1000 {
		t.Fatal("did not stop at decision")
	}
}

// fullStepper sends for all, then delivers whatever exists, repeatedly.
type fullStepper struct {
	phase int
	sends int
	queue []int64
}

func (a *fullStepper) NextStep(s *System) (Step, bool) {
	for {
		if a.phase == 0 {
			if a.sends < s.N() {
				p := a.sends
				a.sends++
				return Step{Kind: StepSend, Proc: ProcID(p)}, true
			}
			a.phase, a.sends = 1, 0
			a.queue = s.Buffer().IDs()
		}
		for len(a.queue) > 0 {
			id := a.queue[0]
			a.queue = a.queue[1:]
			if _, ok := s.Buffer().Get(id); ok {
				return Step{Kind: StepDeliver, MsgID: id}, true
			}
		}
		a.phase = 0
	}
}

func TestRunStepsBadStepKind(t *testing.T) {
	s := newTestSystem(t, 2, 0, "split", 0)
	adv := &scriptAdversary{steps: []Step{{Kind: StepKind(99)}}}
	if _, err := s.RunSteps(adv, 10); err == nil {
		t.Fatal("unknown step kind accepted")
	}
}

func TestStepResetOnCrashedRejected(t *testing.T) {
	s := newTestSystem(t, 3, 1, "split", 0)
	if err := s.StepCrash(1); err != nil {
		t.Fatal(err)
	}
	if err := s.StepReset(1); !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
}

func TestOutputsReturnsCopies(t *testing.T) {
	s := newTestSystem(t, 2, 0, "ones", 1)
	vals, oks := s.Outputs()
	vals[0] = 1
	oks[0] = true
	vals2, oks2 := s.Outputs()
	if vals2[0] == 1 && oks2[0] {
		t.Fatal("Outputs exposed internal state")
	}
}

func TestStepKindString(t *testing.T) {
	cases := map[StepKind]string{
		StepSend:     "send",
		StepDeliver:  "deliver",
		StepReset:    "reset",
		StepCrash:    "crash",
		StepKind(42): "StepKind(42)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestStepSendOutOfRange(t *testing.T) {
	s := newTestSystem(t, 2, 0, "split", 0)
	if _, err := s.StepSend(5); !errors.Is(err, ErrNoSuchProc) {
		t.Fatalf("err = %v, want ErrNoSuchProc", err)
	}
	if err := s.StepReset(-1); !errors.Is(err, ErrNoSuchProc) {
		t.Fatalf("err = %v, want ErrNoSuchProc", err)
	}
	if err := s.StepCrash(2); !errors.Is(err, ErrNoSuchProc) {
		t.Fatalf("err = %v, want ErrNoSuchProc", err)
	}
}

func TestCorruptValidation(t *testing.T) {
	s := newTestSystem(t, 3, 1, "split", 0)
	if err := s.Corrupt(0, nil); err == nil {
		t.Fatal("nil evil process accepted")
	}
	if err := s.Corrupt(9, newEcho(3, 0)(9, 0)); !errors.Is(err, ErrNoSuchProc) {
		t.Fatalf("err = %v, want ErrNoSuchProc", err)
	}
}
