package sim

import "fmt"

// This file implements step mode: the raw fine-grained step interface used
// for the classical asynchronous crash model of Section 5 and for the Paxos
// baseline. The adversary issues one step at a time; the only liveness
// constraint (eventual delivery to non-crashed processors) is the
// responsibility of the adversary/scheduler, as in the paper.

// StepSend executes a sending step for processor id and returns the messages
// placed in the buffer.
func (s *System) StepSend(id ProcID) ([]Message, error) {
	if err := s.checkProc(id); err != nil {
		return nil, err
	}
	if s.crashed[id] {
		return nil, fmt.Errorf("%w: processor %d", ErrCrashed, id)
	}
	return s.stepSend(id), nil
}

// StepDeliver executes a receiving step, delivering buffered message msgID.
func (s *System) StepDeliver(msgID int64) error {
	m, ok := s.buffer.Get(msgID)
	if !ok {
		return fmt.Errorf("%w: id %d", ErrNoSuchMessage, msgID)
	}
	if s.crashed[m.To] {
		return fmt.Errorf("%w: recipient %d", ErrCrashed, m.To)
	}
	m, _ = s.buffer.Take(msgID)
	s.deliver(m)
	if s.violation != nil {
		return s.violation
	}
	return nil
}

// StepReset executes a resetting step for processor id. Step mode enforces
// no per-window budget (windows do); callers running the strongly adaptive
// model should use ApplyWindow instead.
func (s *System) StepReset(id ProcID) error {
	if err := s.checkProc(id); err != nil {
		return err
	}
	if s.crashed[id] {
		return fmt.Errorf("%w: processor %d", ErrCrashed, id)
	}
	s.reset(id)
	if s.violation != nil {
		return s.violation
	}
	return nil
}

// StepCrash permanently halts processor id. At most t crashes are allowed.
func (s *System) StepCrash(id ProcID) error {
	if err := s.checkProc(id); err != nil {
		return err
	}
	if s.crashed[id] {
		return nil // crashing a crashed processor is a no-op
	}
	if s.totalCrashes >= s.t {
		return fmt.Errorf("%w: already %d crashes", ErrFaultBudget, s.totalCrashes)
	}
	s.crashed[id] = true
	s.totalCrashes++
	s.steps++
	// Messages addressed to a crashed processor are never delivered; drop
	// them so schedulers don't spin on them.
	s.buffer.DropWhere(func(m Message) bool { return m.To == id })
	s.emit(Event{Kind: EvCrash, Proc: id})
	return nil
}

// Corrupt replaces processor id's algorithm with an adversary-controlled
// Process (Byzantine corruption). At most t corruptions are allowed; a
// corrupted processor is excluded from agreement/validity/termination
// accounting, matching the standard Byzantine model.
func (s *System) Corrupt(id ProcID, evil Process) error {
	if err := s.checkProc(id); err != nil {
		return err
	}
	if evil == nil {
		return fmt.Errorf("sim: Corrupt(%d) with nil process", id)
	}
	if s.corrupt[id] {
		s.procs[id] = evil
		return nil
	}
	if s.totalCorrupt >= s.t {
		return fmt.Errorf("%w: already %d corruptions", ErrFaultBudget, s.totalCorrupt)
	}
	s.corrupt[id] = true
	s.totalCorrupt++
	s.procs[id] = evil
	return nil
}

// RunSteps executes steps chosen by adv until adv stops, every live honest
// processor decides, or maxSteps fine-grained steps have executed.
func (s *System) RunSteps(adv StepAdversary, maxSteps int64) (RunResult, error) {
	start := s.steps
	for s.steps-start < maxSteps && !s.AllDecided() {
		step, ok := adv.NextStep(s)
		if !ok {
			break
		}
		var err error
		switch step.Kind {
		case StepSend:
			_, err = s.StepSend(step.Proc)
		case StepDeliver:
			err = s.StepDeliver(step.MsgID)
		case StepReset:
			err = s.StepReset(step.Proc)
		case StepCrash:
			err = s.StepCrash(step.Proc)
		default:
			err = fmt.Errorf("sim: unknown step kind %v", step.Kind)
		}
		if err != nil {
			return s.Result(), err
		}
	}
	res := s.Result()
	res.Windows = int(s.steps - start)
	return res, s.violation
}
