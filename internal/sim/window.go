package sim

import (
	"cmp"
	"fmt"
	"slices"
)

// WindowSend executes the sending steps that open an acceptable window: all
// non-crashed processors take a sending step. It returns the just-sent batch.
//
// The returned slice is scratch owned by the System and is overwritten by
// the next WindowSend; adversaries may read it while planning the window but
// must not retain it across windows.
//
// In the strongly adaptive model of Sections 2-4 there are no crashes, so
// all n processors send; the crash-model reuse of windows in Section 5
// (Definition 19) simply has crashed processors contribute nothing.
func (s *System) WindowSend() []Message {
	if s.shardWorkers > 1 && s.parallelSend {
		return s.windowSendSharded()
	}
	batch := s.batchScratch[:0]
	for i := 0; i < s.n; i++ {
		if s.crashed[i] {
			continue
		}
		batch = s.sendInto(ProcID(i), batch)
	}
	s.batchScratch = batch
	return batch
}

// allowedRow returns receiver i's sender bitset row.
func (s *System) allowedRow(i int) []uint64 {
	return s.allowBits[i*s.allowWords : (i+1)*s.allowWords]
}

// WindowDeliver executes the receiving steps of a window: each processor i
// receives, in ascending sender order, the batch messages addressed to it
// whose sender is in senders[i]. Every sender set must contain >= n-t
// distinct senders (duplicate entries are ignored, so a padded set cannot
// smuggle an effective set below Definition 1's bound). A nil senders slice,
// like a nil per-receiver set, means "all senders". Batch messages not
// delivered are dropped (within the window model, a message not delivered in
// its window is never delivered).
func (s *System) WindowDeliver(batch []Message, senders [][]ProcID) error {
	if senders != nil && len(senders) != s.n {
		return fmt.Errorf("%w: got %d sender sets for n=%d", ErrBadWindow, len(senders), s.n)
	}
	// The sharded core handles only the System's own just-sent batch, whose
	// invariants (verbatim stored copies, in-range To, sender-major ascending
	// IDs) its ordering shortcut relies on; hand-built batches stay here.
	if s.shardWorkers > 1 && s.shardedBatch(batch) {
		return s.windowDeliverSharded(batch, senders)
	}
	if err := s.validateSenders(senders); err != nil {
		return err
	}

	// Deliver in (receiver, sender, ID) order for determinism. The sort key
	// is a total order (IDs are unique), so the result is independent of the
	// sorting algorithm.
	ordered := append(s.orderScratch[:0], batch...)
	s.orderScratch = ordered
	slices.SortFunc(ordered, func(a, b Message) int {
		if c := cmp.Compare(a.To, b.To); c != 0 {
			return c
		}
		if c := cmp.Compare(a.From, b.From); c != 0 {
			return c
		}
		return cmp.Compare(a.ID, b.ID)
	})
	for i := range ordered {
		m := &ordered[i]
		if s.crashed[m.To] {
			continue
		}
		if !s.allowAll[m.To] {
			if m.From < 0 || int(m.From) >= s.n {
				continue
			}
			if s.allowedRow(int(m.To))[int(m.From)>>6]&(uint64(1)<<(uint(m.From)&63)) == 0 {
				continue
			}
		}
		if taken, ok := s.buffer.Take(m.ID); ok {
			s.deliver(taken)
		}
	}
	// Undelivered remainder of this window's batch is never delivered.
	for i := range ordered {
		s.buffer.Take(ordered[i].ID)
	}
	s.reclaimBatch(batch)
	return nil
}

// validateSenders validates every sender set into the reusable allow bitset
// before anything is delivered: an illegal window must leave the
// configuration untouched. Shared by the serial message path and the
// columnar kernel. Adversaries commonly hand many receivers the same
// backing slice (the scheduler scratch-sharing pattern), so a set whose
// identity matches the previously validated one copies that row instead of
// re-scanning; a shared invalid set still errors at its first user with
// that user's index, identically on both paths.
func (s *System) validateSenders(senders [][]ProcID) error {
	for i := range s.allowAll {
		s.allowAll[i] = true
	}
	if senders == nil {
		return nil
	}
	var lastSet *ProcID
	lastLen, lastRow := -1, -1
	for i, set := range senders {
		if set == nil {
			continue // nil means all senders
		}
		s.allowAll[i] = false
		row := s.allowedRow(i)
		if lastRow >= 0 && len(set) == lastLen && &set[0] == lastSet {
			copy(row, s.allowedRow(lastRow))
			continue
		}
		clear(row)
		distinct := 0
		for _, p := range set {
			if err := s.checkProc(p); err != nil {
				return err
			}
			w, bit := int(p)>>6, uint64(1)<<(uint(p)&63)
			if row[w]&bit == 0 {
				row[w] |= bit
				distinct++
			}
		}
		if distinct < s.n-s.t {
			return fmt.Errorf("%w: sender set for processor %d has %d distinct senders < n-t=%d",
				ErrBadWindow, i, distinct, s.n-s.t)
		}
		lastSet, lastLen, lastRow = &set[0], len(set), i
	}
	return nil
}

// reclaimBatch hands the completed window's payloads back to senders that
// pool them (PayloadReclaimer). Every batch message is dead at this point —
// delivered or dropped — so its payload box can be reused. The batch is
// sender-major and all copies of one broadcast share one payload, so
// deduplicating consecutive equal payloads reclaims each box exactly once.
// The dedup compare runs before the (pricier) interface assertion: lastFrom
// is only ever a sender already proven to be a reclaimer, whose contract
// requires comparable payloads, so the n copies of a broadcast cost one
// assertion, not n.
func (s *System) reclaimBatch(batch []Message) {
	var last any
	lastFrom := ProcID(-1)
	for i := range batch {
		m := &batch[i]
		if m.From == lastFrom && m.Payload == last {
			continue
		}
		if m.From < 0 || int(m.From) >= s.n {
			last, lastFrom = nil, -1
			continue // hand-built batch with a foreign sender: nothing to reclaim
		}
		r, ok := s.procs[m.From].(PayloadReclaimer)
		if !ok {
			last, lastFrom = nil, -1
			continue
		}
		last, lastFrom = m.Payload, m.From
		r.ReclaimPayload(m.Payload)
	}
}

// WindowResets executes the at most t resetting steps closing a window.
func (s *System) WindowResets(resets []ProcID) error {
	if len(resets) > s.t {
		return fmt.Errorf("%w: %d resets > t=%d", ErrBadWindow, len(resets), s.t)
	}
	for i, p := range resets {
		if err := s.checkProc(p); err != nil {
			return err
		}
		for j := 0; j < i; j++ { // t is small; quadratic beats a map here
			if resets[j] == p {
				return fmt.Errorf("%w: duplicate reset of processor %d", ErrBadWindow, p)
			}
		}
	}
	for _, p := range resets {
		s.reset(p)
	}
	return nil
}

// ApplyWindow runs one full acceptable window described by w.
func (s *System) ApplyWindow(w Window) error {
	batch := s.WindowSend()
	if err := s.WindowDeliver(batch, w.Senders); err != nil {
		return err
	}
	if err := s.WindowResets(w.Resets); err != nil {
		return err
	}
	s.windows++
	s.emit(Event{Kind: EvWindow})
	return nil
}

// RunResult summarizes an execution.
type RunResult struct {
	// Windows is the number of acceptable windows executed (or, in step
	// mode, the number of steps).
	Windows int
	// FirstDecision is the 0-based window of the first decision, or -1.
	FirstDecision int
	// AllDecided reports whether every live, honest processor decided.
	AllDecided bool
	// Agreement and Validity report the safety conditions of Definition 2
	// over the final configuration.
	Agreement, Validity bool
	// Decision is the decided value if at least one processor decided.
	Decision Bit
	// MaxChainDepth is the largest message-chain depth received by any
	// processor (the Section 5 running-time measure).
	MaxChainDepth int
}

// ApplyWindowWith runs one full acceptable window planned by adv, giving it
// full information: it is invoked after the sending steps with the just-sent
// batch. When the columnar kernel is enabled and every guard holds (see
// columnarPlanner), the window instead runs the byte-identical bit-packed
// fast path of columnar.go.
func (s *System) ApplyWindowWith(adv WindowAdversary) error {
	if cp, ok := s.columnarPlanner(adv); ok {
		return s.applyWindowColumnar(cp)
	}
	batch := s.WindowSend()
	w := adv.PlanDelivery(s, batch)
	if err := s.WindowDeliver(batch, w.Senders); err != nil {
		return err
	}
	if err := s.WindowResets(w.Resets); err != nil {
		return err
	}
	s.windows++
	s.emit(Event{Kind: EvWindow})
	return s.violation
}

// RunWindows executes acceptable windows planned by adv until every live,
// honest processor has decided or maxWindows windows have passed. It
// returns the execution summary and the first error (an illegal window or a
// detected safety violation).
func (s *System) RunWindows(adv WindowAdversary, maxWindows int) (RunResult, error) {
	res, _, err := s.RunWindowsUntil(adv, maxWindows, nil)
	return res, err
}

// RunWindowsUntil is RunWindows with a cooperative stall watchdog: expired
// is polled between windows (with the number of completed windows), and a
// true return stops the execution there, reporting stalled = true with the
// partial summary. The check is cooperative on the window boundary — the
// paper's adversaries can stretch a window's length, not wedge one — so a
// runaway trial becomes a recorded non-termination outcome instead of a
// hung worker. A nil expired reproduces RunWindows exactly, and the nil
// fast path costs the happy path nothing but one comparison per window.
func (s *System) RunWindowsUntil(adv WindowAdversary, maxWindows int, expired func(windows int) bool) (res RunResult, stalled bool, err error) {
	for s.windows < maxWindows && !s.AllDecided() {
		if expired != nil && expired(s.windows) {
			return s.Result(), true, s.violation
		}
		if err := s.ApplyWindowWith(adv); err != nil {
			return s.Result(), false, err
		}
	}
	return s.Result(), false, s.violation
}

// Result summarizes the current configuration.
func (s *System) Result() RunResult {
	res := RunResult{
		Windows:       s.windows,
		FirstDecision: s.firstDecision,
		AllDecided:    s.AllDecided(),
		Agreement:     s.AgreementOK(),
		Validity:      s.ValidityOK(),
		MaxChainDepth: s.MaxChainDepth(),
	}
	for i := 0; i < s.n; i++ {
		if s.decidedOK[i] && !s.corrupt[i] {
			res.Decision = s.decidedVal[i]
			break
		}
	}
	return res
}

// AllDecided reports whether every non-crashed, non-corrupted processor has
// written its output bit.
func (s *System) AllDecided() bool {
	for i := 0; i < s.n; i++ {
		if s.crashed[i] || s.corrupt[i] {
			continue
		}
		if !s.decidedOK[i] {
			return false
		}
	}
	return true
}

// DecidedCount returns how many honest processors have decided.
func (s *System) DecidedCount() int {
	c := 0
	for i := 0; i < s.n; i++ {
		if s.decidedOK[i] && !s.corrupt[i] {
			c++
		}
	}
	return c
}

// AgreementOK reports whether the configuration contains only agreeing or
// unwritten honest output bits (Definition 2's first condition).
func (s *System) AgreementOK() bool {
	var v Bit
	have := false
	for i := 0; i < s.n; i++ {
		if !s.decidedOK[i] || s.corrupt[i] {
			continue
		}
		if !have {
			v, have = s.decidedVal[i], true
			continue
		}
		if s.decidedVal[i] != v {
			return false
		}
	}
	return true
}

// ValidityOK reports whether every written honest output equals some input
// (Definition 2's second condition: with binary values this only bites when
// inputs are unanimous).
func (s *System) ValidityOK() bool {
	has := [2]bool{}
	for _, in := range s.inputs {
		has[in] = true
	}
	for i := 0; i < s.n; i++ {
		if s.decidedOK[i] && !s.corrupt[i] && !has[s.decidedVal[i]] {
			return false
		}
	}
	return true
}

// MaxChainDepth returns the maximum message-chain depth received by any
// honest processor.
func (s *System) MaxChainDepth() int {
	max := 0
	for i := 0; i < s.n; i++ {
		if s.corrupt[i] {
			continue
		}
		if s.chainDepth[i] > max {
			max = s.chainDepth[i]
		}
	}
	return max
}

// Outputs returns a copy of the decision state: vals[i] is valid only where
// ok[i] is true.
func (s *System) Outputs() (vals []Bit, ok []bool) {
	return append([]Bit(nil), s.decidedVal...), append([]bool(nil), s.decidedOK...)
}

// ConfigurationSnapshot returns the n-tuple of processor state encodings
// (the configuration sigma in Sigma^n), used by the lower-bound machinery
// for Hamming-distance measurements.
func (s *System) ConfigurationSnapshot() []string {
	out := make([]string, s.n)
	for i := range out {
		out[i] = s.procs[i].Snapshot()
	}
	return out
}
