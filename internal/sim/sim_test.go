package sim

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

// echoProc is a minimal test process: every delivered payload is recorded;
// each window it broadcasts its input; it decides its input after deciding
// threshold deliveries.
type echoProc struct {
	id        ProcID
	n         int
	input     Bit
	out       Bit
	decided   bool
	delivered []Message
	resets    int
	dirty     bool
	decideAt  int // decide after this many deliveries; 0 = never
}

func newEcho(n, decideAt int) func(ProcID, Bit) Process {
	return func(id ProcID, input Bit) Process {
		return &echoProc{id: id, n: n, input: input, dirty: true, decideAt: decideAt}
	}
}

func (p *echoProc) ID() ProcID          { return p.id }
func (p *echoProc) Input() Bit          { return p.input }
func (p *echoProc) Output() (Bit, bool) { return p.out, p.decided }

func (p *echoProc) Send() []Message {
	if !p.dirty {
		return nil
	}
	p.dirty = false
	out := make([]Message, 0, p.n)
	for q := 0; q < p.n; q++ {
		out = append(out, Message{From: p.id, To: ProcID(q), Payload: p.input})
	}
	return out
}

func (p *echoProc) Deliver(m Message, _ RandSource) {
	p.delivered = append(p.delivered, m)
	p.dirty = true
	if p.decideAt > 0 && len(p.delivered) >= p.decideAt && !p.decided {
		p.out = p.input
		p.decided = true
	}
}

func (p *echoProc) Reset() {
	p.resets++
	p.delivered = nil
	p.dirty = false
}

func (p *echoProc) Snapshot() string {
	return fmt.Sprintf("in=%d got=%d resets=%d", p.input, len(p.delivered), p.resets)
}

func mkInputs(n int, pattern string) []Bit {
	in := make([]Bit, n)
	for i := range in {
		if pattern == "split" && i%2 == 1 {
			in[i] = 1
		}
		if pattern == "ones" {
			in[i] = 1
		}
	}
	return in
}

func newTestSystem(t *testing.T, n, tt int, pattern string, decideAt int) *System {
	t.Helper()
	s, err := New(Config{
		N: n, T: tt, Seed: 1,
		Inputs:     mkInputs(n, pattern),
		NewProcess: newEcho(n, decideAt),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"zero n", Config{N: 0, T: 0, Inputs: nil, NewProcess: newEcho(0, 0)}},
		{"negative t", Config{N: 4, T: -1, Inputs: make([]Bit, 4), NewProcess: newEcho(4, 0)}},
		{"t >= n", Config{N: 4, T: 4, Inputs: make([]Bit, 4), NewProcess: newEcho(4, 0)}},
		{"wrong inputs", Config{N: 4, T: 1, Inputs: make([]Bit, 3), NewProcess: newEcho(4, 0)}},
		{"nil factory", Config{N: 4, T: 1, Inputs: make([]Bit, 4)}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := New(c.cfg); err == nil {
				t.Fatal("want error, got nil")
			}
		})
	}
}

func TestWindowSendDeliverAll(t *testing.T) {
	s := newTestSystem(t, 4, 1, "split", 0)
	batch := s.WindowSend()
	if len(batch) != 16 {
		t.Fatalf("batch size = %d, want 16", len(batch))
	}
	if err := s.WindowDeliver(batch, make([][]ProcID, 4)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		ep := s.Proc(ProcID(i)).(*echoProc)
		if len(ep.delivered) != 4 {
			t.Fatalf("processor %d received %d messages, want 4", i, len(ep.delivered))
		}
	}
	if s.Buffer().Len() != 0 {
		t.Fatalf("buffer not drained: %d left", s.Buffer().Len())
	}
}

func TestWindowDeliverRespectsSenderSets(t *testing.T) {
	s := newTestSystem(t, 4, 1, "split", 0)
	batch := s.WindowSend()
	// Exclude sender 0 for every receiver.
	senders := make([][]ProcID, 4)
	for i := range senders {
		senders[i] = []ProcID{1, 2, 3}
	}
	if err := s.WindowDeliver(batch, senders); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		ep := s.Proc(ProcID(i)).(*echoProc)
		for _, m := range ep.delivered {
			if m.From == 0 {
				t.Fatalf("processor %d received message from excluded sender 0", i)
			}
		}
		if len(ep.delivered) != 3 {
			t.Fatalf("processor %d received %d, want 3", i, len(ep.delivered))
		}
	}
	// The undelivered messages from sender 0 must be dropped, not lingering.
	if s.Buffer().Len() != 0 {
		t.Fatalf("undelivered window messages linger: %d", s.Buffer().Len())
	}
}

func TestWindowDeliverRejectsSmallSenderSet(t *testing.T) {
	s := newTestSystem(t, 4, 1, "split", 0)
	batch := s.WindowSend()
	senders := make([][]ProcID, 4)
	senders[2] = []ProcID{1, 3} // size 2 < n-t = 3
	err := s.WindowDeliver(batch, senders)
	if !errors.Is(err, ErrBadWindow) {
		t.Fatalf("err = %v, want ErrBadWindow", err)
	}
}

func TestWindowDeliverRejectsDuplicatePaddedSenderSet(t *testing.T) {
	// Regression: duplicate ProcIDs used to inflate len(set) past the n-t
	// check while the effective sender set stayed smaller, letting an
	// adversary deliver from fewer than n-t distinct senders (a Definition 1
	// violation). The check must count distinct senders.
	s := newTestSystem(t, 4, 1, "split", 0)
	batch := s.WindowSend()
	senders := make([][]ProcID, 4)
	senders[2] = []ProcID{1, 3, 3} // len 3 >= n-t, but only 2 distinct < 3
	err := s.WindowDeliver(batch, senders)
	if !errors.Is(err, ErrBadWindow) {
		t.Fatalf("padded duplicate sender set accepted: err = %v, want ErrBadWindow", err)
	}
}

func TestWindowDeliverAcceptsDuplicateLargeEnoughSet(t *testing.T) {
	// Duplicates are harmless when the distinct count still meets n-t.
	s := newTestSystem(t, 4, 1, "split", 0)
	batch := s.WindowSend()
	senders := make([][]ProcID, 4)
	senders[2] = []ProcID{1, 2, 3, 3, 1}
	if err := s.WindowDeliver(batch, senders); err != nil {
		t.Fatal(err)
	}
	ep := s.Proc(2).(*echoProc)
	if len(ep.delivered) != 3 {
		t.Fatalf("processor 2 received %d messages, want 3 (one per distinct allowed sender)", len(ep.delivered))
	}
}

func TestWindowDeliverNilSendersMeansFullDelivery(t *testing.T) {
	s := newTestSystem(t, 4, 1, "split", 0)
	batch := s.WindowSend()
	if err := s.WindowDeliver(batch, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if got := len(s.Proc(ProcID(i)).(*echoProc).delivered); got != 4 {
			t.Fatalf("processor %d received %d messages, want 4", i, got)
		}
	}
}

func TestWindowDeliverRejectsWrongCount(t *testing.T) {
	s := newTestSystem(t, 4, 1, "split", 0)
	batch := s.WindowSend()
	if err := s.WindowDeliver(batch, make([][]ProcID, 3)); !errors.Is(err, ErrBadWindow) {
		t.Fatalf("err = %v, want ErrBadWindow", err)
	}
}

func TestWindowResetsBudget(t *testing.T) {
	s := newTestSystem(t, 4, 1, "split", 0)
	if err := s.WindowResets([]ProcID{0, 1}); !errors.Is(err, ErrBadWindow) {
		t.Fatalf("two resets with t=1: err = %v, want ErrBadWindow", err)
	}
	if err := s.WindowResets([]ProcID{2}); err != nil {
		t.Fatal(err)
	}
	if s.ResetCount(2) != 1 {
		t.Fatalf("reset count = %d, want 1", s.ResetCount(2))
	}
	if s.Proc(2).(*echoProc).resets != 1 {
		t.Fatal("process Reset not invoked")
	}
}

func TestWindowResetsRejectDuplicates(t *testing.T) {
	s := newTestSystem(t, 8, 2, "split", 0)
	if err := s.WindowResets([]ProcID{3, 3}); !errors.Is(err, ErrBadWindow) {
		t.Fatalf("duplicate resets: err = %v, want ErrBadWindow", err)
	}
}

func TestSendingStepIdempotent(t *testing.T) {
	s := newTestSystem(t, 3, 0, "split", 0)
	first, err := s.StepSend(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 3 {
		t.Fatalf("first send: %d messages, want 3", len(first))
	}
	second, err := s.StepSend(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(second) != 0 {
		t.Fatalf("second sending step with no intervening event sent %d messages, want 0", len(second))
	}
}

func TestAuthenticatedChannels(t *testing.T) {
	// A process that lies about From must be corrected by the system.
	s, err := New(Config{
		N: 2, T: 0, Seed: 1, Inputs: make([]Bit, 2),
		NewProcess: func(id ProcID, input Bit) Process {
			return &forgingProc{echoProc: echoProc{id: id, n: 2, input: input, dirty: true}}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := s.StepSend(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range batch {
		if m.From != 1 {
			t.Fatalf("forged From survived: %v", m.From)
		}
	}
}

type forgingProc struct{ echoProc }

func (p *forgingProc) Send() []Message {
	msgs := p.echoProc.Send()
	for i := range msgs {
		msgs[i].From = 0 // attempt to forge
	}
	return msgs
}

func TestStepCrashBudgetAndSemantics(t *testing.T) {
	s := newTestSystem(t, 4, 1, "split", 0)
	if err := s.StepCrash(0); err != nil {
		t.Fatal(err)
	}
	if !s.Crashed(0) {
		t.Fatal("processor 0 not crashed")
	}
	if err := s.StepCrash(0); err != nil {
		t.Fatalf("re-crash should be a no-op, got %v", err)
	}
	if err := s.StepCrash(1); !errors.Is(err, ErrFaultBudget) {
		t.Fatalf("second crash with t=1: err = %v, want ErrFaultBudget", err)
	}
	if _, err := s.StepSend(0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("send by crashed: err = %v, want ErrCrashed", err)
	}
}

func TestCrashDropsPendingMessages(t *testing.T) {
	s := newTestSystem(t, 3, 1, "split", 0)
	if _, err := s.StepSend(0); err != nil {
		t.Fatal(err)
	}
	before := s.Buffer().Len()
	if before != 3 {
		t.Fatalf("buffered = %d, want 3", before)
	}
	if err := s.StepCrash(1); err != nil {
		t.Fatal(err)
	}
	for _, m := range s.Buffer().Pending() {
		if m.To == 1 {
			t.Fatal("message to crashed processor still buffered")
		}
	}
}

func TestMessageChainDepth(t *testing.T) {
	s := newTestSystem(t, 2, 0, "split", 0)
	// p0 sends (depth 1); deliver to p1; p1 sends (depth 2); deliver to p0.
	batch, err := s.StepSend(0)
	if err != nil {
		t.Fatal(err)
	}
	var to1 Message
	for _, m := range batch {
		if m.To == 1 {
			to1 = m
		}
	}
	if to1.Depth != 1 {
		t.Fatalf("fresh message depth = %d, want 1", to1.Depth)
	}
	if err := s.StepDeliver(to1.ID); err != nil {
		t.Fatal(err)
	}
	if s.ChainDepth(1) != 1 {
		t.Fatalf("chain depth at receiver = %d, want 1", s.ChainDepth(1))
	}
	batch2, err := s.StepSend(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range batch2 {
		if m.Depth != 2 {
			t.Fatalf("second-hop message depth = %d, want 2", m.Depth)
		}
	}
}

func TestDeliverNoSuchMessage(t *testing.T) {
	s := newTestSystem(t, 2, 0, "split", 0)
	if err := s.StepDeliver(999); !errors.Is(err, ErrNoSuchMessage) {
		t.Fatalf("err = %v, want ErrNoSuchMessage", err)
	}
}

func TestAgreementValidityAccounting(t *testing.T) {
	// decideAt=1: each processor decides its own input after 1 delivery, so
	// split inputs yield an agreement violation (on purpose).
	s := newTestSystem(t, 4, 1, "split", 1)
	batch := s.WindowSend()
	if err := s.WindowDeliver(batch, make([][]ProcID, 4)); err != nil {
		t.Fatal(err)
	}
	if s.AgreementOK() {
		t.Fatal("expected detectable disagreement with split inputs and echo deciders")
	}
	if !s.ValidityOK() {
		t.Fatal("validity should hold: every decision equals some input")
	}
	if !s.AllDecided() {
		t.Fatal("all should have decided")
	}
}

func TestValidityViolationDetected(t *testing.T) {
	// All inputs 0 but a rogue process decides 1.
	s, err := New(Config{
		N: 2, T: 0, Seed: 1, Inputs: make([]Bit, 2),
		NewProcess: func(id ProcID, input Bit) Process {
			return &rogueProc{echoProc: echoProc{id: id, n: 2, input: input, dirty: true}}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	batch := s.WindowSend()
	if err := s.WindowDeliver(batch, make([][]ProcID, 2)); err != nil {
		t.Fatal(err)
	}
	if s.ValidityOK() {
		t.Fatal("validity violation not detected")
	}
}

type rogueProc struct{ echoProc }

func (p *rogueProc) Deliver(m Message, r RandSource) {
	p.echoProc.Deliver(m, r)
	p.out, p.decided = 1, true // decide 1 despite all-zero inputs
}

func TestWriteOnceViolationDetected(t *testing.T) {
	s, err := New(Config{
		N: 2, T: 0, Seed: 1, Inputs: make([]Bit, 2),
		NewProcess: func(id ProcID, input Bit) Process {
			return &flipFlopProc{echoProc: echoProc{id: id, n: 2, input: input, dirty: true}}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 3 && s.Violation() == nil; w++ {
		batch := s.WindowSend()
		if err := s.WindowDeliver(batch, make([][]ProcID, 2)); err != nil {
			break
		}
	}
	if !errors.Is(s.Violation(), ErrOutputRewritten) {
		t.Fatalf("violation = %v, want ErrOutputRewritten", s.Violation())
	}
}

type flipFlopProc struct {
	echoProc
	flips int
}

func (p *flipFlopProc) Deliver(m Message, r RandSource) {
	p.echoProc.Deliver(m, r)
	p.flips++
	p.out, p.decided = Bit(p.flips%2), true // rewrites its output
}

func TestOutputSurvivesReset(t *testing.T) {
	s := newTestSystem(t, 4, 1, "ones", 1)
	batch := s.WindowSend()
	if err := s.WindowDeliver(batch, make([][]ProcID, 4)); err != nil {
		t.Fatal(err)
	}
	if err := s.WindowResets([]ProcID{0}); err != nil {
		t.Fatal(err)
	}
	// echoProc keeps out/decided through Reset (the contract); system must
	// still see it decided.
	if s.DecidedCount() != 4 {
		t.Fatalf("decided count after reset = %d, want 4", s.DecidedCount())
	}
}

func TestCorruptBudget(t *testing.T) {
	s := newTestSystem(t, 4, 1, "split", 0)
	evil := newEcho(4, 0)(0, 1)
	if err := s.Corrupt(0, evil); err != nil {
		t.Fatal(err)
	}
	if !s.Corrupted(0) {
		t.Fatal("corruption not recorded")
	}
	if err := s.Corrupt(1, evil); !errors.Is(err, ErrFaultBudget) {
		t.Fatalf("err = %v, want ErrFaultBudget", err)
	}
	// Re-corrupting the same processor is allowed (strategy swap).
	if err := s.Corrupt(0, evil); err != nil {
		t.Fatal(err)
	}
}

func TestUniformWindow(t *testing.T) {
	w := UniformWindow(3, []ProcID{0, 2}, []ProcID{1})
	if len(w.Senders) != 3 {
		t.Fatalf("senders len = %d", len(w.Senders))
	}
	for i, s := range w.Senders {
		if len(s) != 2 || s[0] != 0 || s[1] != 2 {
			t.Fatalf("senders[%d] = %v", i, s)
		}
	}
	if len(w.Resets) != 1 || w.Resets[0] != 1 {
		t.Fatalf("resets = %v", w.Resets)
	}
}

func TestConfigurationSnapshot(t *testing.T) {
	s := newTestSystem(t, 3, 0, "split", 0)
	snap := s.ConfigurationSnapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	for i, st := range snap {
		if !strings.Contains(st, "in=") {
			t.Fatalf("snapshot[%d] = %q not canonical", i, st)
		}
	}
}

func TestEventsEmitted(t *testing.T) {
	s := newTestSystem(t, 2, 0, "ones", 1)
	var kinds []EventKind
	s.OnEvent = func(ev Event) { kinds = append(kinds, ev.Kind) }
	if err := s.ApplyWindow(sim_windowAll(2)); err != nil {
		t.Fatal(err)
	}
	var sends, delivers, decides, windows int
	for _, k := range kinds {
		switch k {
		case EvSend:
			sends++
		case EvDeliver:
			delivers++
		case EvDecide:
			decides++
		case EvWindow:
			windows++
		}
	}
	if sends != 4 || delivers != 4 || decides != 2 || windows != 1 {
		t.Fatalf("events: sends=%d delivers=%d decides=%d windows=%d", sends, delivers, decides, windows)
	}
}

func sim_windowAll(n int) Window {
	return Window{Senders: make([][]ProcID, n)}
}

// Property: for any window shape within constraints, each receiver gets at
// most one message per sender and only from its sender set.
func TestDeliveryPerSenderProperty(t *testing.T) {
	check := func(seed uint64, excludeRaw uint8) bool {
		const n, tt = 6, 2
		s, err := New(Config{
			N: n, T: tt, Seed: seed, Inputs: mkInputs(n, "split"),
			NewProcess: newEcho(n, 0),
		})
		if err != nil {
			return false
		}
		// Exclude up to tt senders derived from excludeRaw.
		ex1 := ProcID(int(excludeRaw) % n)
		ex2 := ProcID(int(excludeRaw/7) % n)
		excluded := map[ProcID]bool{ex1: true}
		if ex2 != ex1 {
			excluded[ex2] = true
		}
		var senders []ProcID
		for i := 0; i < n; i++ {
			if !excluded[ProcID(i)] {
				senders = append(senders, ProcID(i))
			}
		}
		batch := s.WindowSend()
		if err := s.WindowDeliver(batch, UniformWindow(n, senders, nil).Senders); err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			seen := map[ProcID]int{}
			for _, m := range s.Proc(ProcID(i)).(*echoProc).delivered {
				if excluded[m.From] {
					return false
				}
				seen[m.From]++
				if seen[m.From] > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
