package sim

// Buffer is the message buffer of the model: the multiset of sent but not
// yet delivered messages. The adversary chooses delivery order, so the
// buffer supports lookup by ID, by recipient, and by (recipient, sender).
//
// Storage layout (the simulator's innermost data structure):
//
//   - messages live in an arena of slots recycled through a free list, so a
//     steady-state Add/Take cycle performs no allocation;
//   - each slot is linked into an intrusive doubly-linked queue per
//     recipient, so PendingFor/OldestFor cost O(pending for that recipient)
//     instead of O(all messages ever buffered);
//   - IDs are monotone, so the ID -> slot index is a power-of-two ring over
//     the live ID span [idBase, nextID] rather than a map, eliminating the
//     per-Add map churn of the original implementation. The front of the
//     ring advances as the oldest messages are consumed; window mode drains
//     the buffer every window, so the span stays one window wide.
//
// Tradeoff: ring size and whole-buffer scans (Pending, IDs, DropWhere) are
// O(ID span), not O(live messages). A step-mode schedule that buffers a
// message and never consumes it (e.g. a starvation scheduler) pins idBase
// and lets the span grow with every Add. All schedulers in this repository
// either drain the buffer (window mode, Lockstep) or run short bounded
// executions, where the span stays within a constant factor of live.
type Buffer struct {
	nextID int64
	// idBase is the smallest ID that may still be live; ring[(head+k)&mask]
	// holds the arena index of message idBase+k, or -1 once it is gone.
	idBase int64
	head   int
	ring   []int32

	arena []bufSlot
	free  []int32

	// heads/tails index the per-recipient queues (-1 = empty). Grown on
	// demand to max recipient ID + 1.
	heads, tails []int32

	live int
}

// bufSlot is one arena cell: the stored message plus intrusive queue links.
type bufSlot struct {
	msg        Message
	next, prev int32
}

// NewBuffer returns an empty buffer. Recipient queues grow on demand; use
// NewBufferFor when the processor count is known up front.
func NewBuffer() *Buffer {
	return &Buffer{idBase: 1}
}

// NewBufferFor returns an empty buffer with recipient queues preallocated
// for processors 0..n-1.
func NewBufferFor(n int) *Buffer {
	b := NewBuffer()
	b.growQueues(n - 1)
	return b
}

// growQueues ensures the queue arrays cover recipient p.
func (b *Buffer) growQueues(p int) {
	for len(b.heads) <= p {
		b.heads = append(b.heads, -1)
		b.tails = append(b.tails, -1)
	}
}

// slotFor returns the arena index of message id, or -1.
func (b *Buffer) slotFor(id int64) int32 {
	if id < b.idBase || id > b.nextID || len(b.ring) == 0 {
		return -1
	}
	return b.ring[(b.head+int(id-b.idBase))&(len(b.ring)-1)]
}

// ringAppend records arena index si for the ID just assigned (nextID).
func (b *Buffer) ringAppend(si int32) {
	span := int(b.nextID - b.idBase + 1)
	if span > len(b.ring) {
		// Grow to the next power of two and linearize.
		newCap := 64
		for newCap < span {
			newCap *= 2
		}
		grown := make([]int32, newCap)
		for i := 0; i < span-1; i++ {
			grown[i] = b.ring[(b.head+i)&(len(b.ring)-1)]
		}
		for i := span - 1; i < newCap; i++ {
			grown[i] = -1
		}
		b.ring, b.head = grown, 0
	}
	b.ring[(b.head+span-1)&(len(b.ring)-1)] = si
}

// advance pops dead entries off the front of the ring so the ID span tracks
// the oldest live message.
func (b *Buffer) advance() {
	mask := len(b.ring) - 1
	for b.idBase <= b.nextID && b.ring[b.head] < 0 {
		b.head = (b.head + 1) & mask
		b.idBase++
	}
}

// Add assigns the next sequence ID to m, stores it, and returns the stored
// message (with ID populated).
func (b *Buffer) Add(m Message) Message {
	b.nextID++
	m.ID = b.nextID

	var si int32
	if n := len(b.free); n > 0 {
		si = b.free[n-1]
		b.free = b.free[:n-1]
	} else {
		b.arena = append(b.arena, bufSlot{})
		si = int32(len(b.arena) - 1)
	}
	sl := &b.arena[si]
	sl.msg = m
	sl.next, sl.prev = -1, -1

	if p := int(m.To); p >= 0 {
		b.growQueues(p)
		if t := b.tails[p]; t >= 0 {
			b.arena[t].next = si
			sl.prev = t
		} else {
			b.heads[p] = si
		}
		b.tails[p] = si
	}
	b.ringAppend(si)
	b.live++
	return m
}

// unlink removes slot si from its recipient queue and recycles it.
func (b *Buffer) unlink(si int32) {
	sl := &b.arena[si]
	if p := int(sl.msg.To); p >= 0 && p < len(b.heads) {
		if sl.prev >= 0 {
			b.arena[sl.prev].next = sl.next
		} else if b.heads[p] == si {
			b.heads[p] = sl.next
		}
		if sl.next >= 0 {
			b.arena[sl.next].prev = sl.prev
		} else if b.tails[p] == si {
			b.tails[p] = sl.prev
		}
	}
	sl.msg = Message{} // release payload references to the GC
	sl.next, sl.prev = -1, -1
	b.free = append(b.free, si)
}

// Reset rewinds the buffer to its just-constructed state — no messages, ID
// sequence restarted — without freeing the arena, ring, free list, or
// recipient queues, so a recycled trial reuses all of them. Payload
// references in dead slots were already released on Take/unlink; slots still
// live are cleared here.
func (b *Buffer) Reset() {
	for i := range b.arena {
		sl := &b.arena[i]
		sl.msg = Message{}
		sl.next, sl.prev = -1, -1
	}
	b.free = b.free[:0]
	for i := len(b.arena) - 1; i >= 0; i-- {
		b.free = append(b.free, int32(i))
	}
	for i := range b.ring {
		b.ring[i] = -1
	}
	for i := range b.heads {
		b.heads[i] = -1
		b.tails[i] = -1
	}
	b.nextID = 0
	b.idBase = 1
	b.head = 0
	b.live = 0
}

// DrainAll removes every buffered message in one O(arena) sweep. Unlike
// Reset it preserves the ID sequence — nextID keeps counting and idBase
// advances past it — so IDs stay globally monotone across windows. The
// sharded window core uses this to retire a fully-buffered window batch
// without per-ID Take calls; callers must know the buffer holds nothing
// worth keeping.
func (b *Buffer) DrainAll() {
	for i := range b.arena {
		sl := &b.arena[i]
		sl.msg = Message{}
		sl.next, sl.prev = -1, -1
	}
	b.free = b.free[:0]
	for i := len(b.arena) - 1; i >= 0; i-- {
		b.free = append(b.free, int32(i))
	}
	for i := range b.ring {
		b.ring[i] = -1
	}
	for i := range b.heads {
		b.heads[i] = -1
		b.tails[i] = -1
	}
	b.idBase = b.nextID + 1
	b.head = 0
	b.live = 0
}

// Take removes and returns the message with the given ID.
func (b *Buffer) Take(id int64) (Message, bool) {
	si := b.slotFor(id)
	if si < 0 {
		return Message{}, false
	}
	m := b.arena[si].msg
	b.ring[(b.head+int(id-b.idBase))&(len(b.ring)-1)] = -1
	b.unlink(si)
	b.live--
	b.advance()
	return m, true
}

// Get returns the message with the given ID without removing it.
func (b *Buffer) Get(id int64) (Message, bool) {
	si := b.slotFor(id)
	if si < 0 {
		return Message{}, false
	}
	return b.arena[si].msg, true
}

// Len returns the number of buffered messages.
func (b *Buffer) Len() int {
	return b.live
}

// Pending returns all buffered messages in insertion order. The returned
// slice is freshly allocated.
func (b *Buffer) Pending() []Message {
	out := make([]Message, 0, b.live)
	for id := b.idBase; id <= b.nextID; id++ {
		if si := b.slotFor(id); si >= 0 {
			out = append(out, b.arena[si].msg)
		}
	}
	return out
}

// PendingFor returns the buffered messages addressed to p, in insertion
// order.
func (b *Buffer) PendingFor(p ProcID) []Message {
	var out []Message
	if int(p) < 0 || int(p) >= len(b.heads) {
		// Out-of-range recipients have no queue; scan the span (cold path).
		for id := b.idBase; id <= b.nextID; id++ {
			if si := b.slotFor(id); si >= 0 && b.arena[si].msg.To == p {
				out = append(out, b.arena[si].msg)
			}
		}
		return out
	}
	for si := b.heads[p]; si >= 0; si = b.arena[si].next {
		out = append(out, b.arena[si].msg)
	}
	return out
}

// OldestFor returns the oldest buffered message addressed to p.
func (b *Buffer) OldestFor(p ProcID) (Message, bool) {
	if int(p) < 0 || int(p) >= len(b.heads) {
		// Out-of-range recipients have no queue; scan the span (cold path,
		// same fallback as PendingFor).
		for id := b.idBase; id <= b.nextID; id++ {
			if si := b.slotFor(id); si >= 0 && b.arena[si].msg.To == p {
				return b.arena[si].msg, true
			}
		}
		return Message{}, false
	}
	if b.heads[p] < 0 {
		return Message{}, false
	}
	return b.arena[b.heads[p]].msg, true
}

// DropWhere removes every buffered message for which pred returns true and
// reports how many were removed. Window mode uses this to discard the
// undelivered remainder of a window (those messages are never delivered —
// the senders outside S_i are the "faulty for this window" processors).
func (b *Buffer) DropWhere(pred func(Message) bool) int {
	dropped := 0
	for id := b.idBase; id <= b.nextID; id++ {
		if si := b.slotFor(id); si >= 0 && pred(b.arena[si].msg) {
			b.Take(id)
			dropped++
		}
	}
	return dropped
}

// IDs returns the IDs of all buffered messages, ascending.
func (b *Buffer) IDs() []int64 {
	ids := make([]int64, 0, b.live)
	for id := b.idBase; id <= b.nextID; id++ {
		if b.slotFor(id) >= 0 {
			ids = append(ids, id)
		}
	}
	return ids
}
