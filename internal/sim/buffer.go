package sim

import "sort"

// Buffer is the message buffer of the model: the multiset of sent but not
// yet delivered messages. The adversary chooses delivery order, so the
// buffer supports lookup by ID, by recipient, and by (recipient, sender).
type Buffer struct {
	nextID int64
	byID   map[int64]Message
	// order preserves insertion order of live message IDs for deterministic
	// iteration; stale entries (already removed from byID) are skipped and
	// compacted lazily.
	order []int64
}

// NewBuffer returns an empty buffer.
func NewBuffer() *Buffer {
	return &Buffer{byID: make(map[int64]Message)}
}

// Add assigns the next sequence ID to m, stores it, and returns the stored
// message (with ID populated).
func (b *Buffer) Add(m Message) Message {
	b.nextID++
	m.ID = b.nextID
	b.byID[m.ID] = m
	b.order = append(b.order, m.ID)
	return m
}

// Take removes and returns the message with the given ID.
func (b *Buffer) Take(id int64) (Message, bool) {
	m, ok := b.byID[id]
	if !ok {
		return Message{}, false
	}
	delete(b.byID, id)
	return m, true
}

// Get returns the message with the given ID without removing it.
func (b *Buffer) Get(id int64) (Message, bool) {
	m, ok := b.byID[id]
	return m, ok
}

// Len returns the number of buffered messages.
func (b *Buffer) Len() int {
	return len(b.byID)
}

// Pending returns all buffered messages in insertion order. The returned
// slice is freshly allocated.
func (b *Buffer) Pending() []Message {
	out := make([]Message, 0, len(b.byID))
	b.compact()
	for _, id := range b.order {
		if m, ok := b.byID[id]; ok {
			out = append(out, m)
		}
	}
	return out
}

// PendingFor returns the buffered messages addressed to p, in insertion
// order.
func (b *Buffer) PendingFor(p ProcID) []Message {
	var out []Message
	b.compact()
	for _, id := range b.order {
		if m, ok := b.byID[id]; ok && m.To == p {
			out = append(out, m)
		}
	}
	return out
}

// OldestFor returns the oldest buffered message addressed to p.
func (b *Buffer) OldestFor(p ProcID) (Message, bool) {
	b.compact()
	for _, id := range b.order {
		if m, ok := b.byID[id]; ok && m.To == p {
			return m, true
		}
	}
	return Message{}, false
}

// DropWhere removes every buffered message for which pred returns true and
// reports how many were removed. Window mode uses this to discard the
// undelivered remainder of a window (those messages are never delivered —
// the senders outside S_i are the "faulty for this window" processors).
func (b *Buffer) DropWhere(pred func(Message) bool) int {
	dropped := 0
	for id, m := range b.byID {
		if pred(m) {
			delete(b.byID, id)
			dropped++
		}
	}
	return dropped
}

// IDs returns the IDs of all buffered messages, ascending.
func (b *Buffer) IDs() []int64 {
	ids := make([]int64, 0, len(b.byID))
	for id := range b.byID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// compact drops stale entries from the order slice once they dominate it,
// keeping Pending iteration amortized linear.
func (b *Buffer) compact() {
	if len(b.order) < 2*len(b.byID)+16 {
		return
	}
	live := b.order[:0]
	for _, id := range b.order {
		if _, ok := b.byID[id]; ok {
			live = append(live, id)
		}
	}
	b.order = live
}
