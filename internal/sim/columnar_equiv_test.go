package sim_test

import (
	"fmt"
	"testing"

	"asyncagree/internal/adversary"
	"asyncagree/internal/benor"
	"asyncagree/internal/core"
	"asyncagree/internal/sim"
)

// The word-boundary equivalence battery: at n = 63, 64, 65, 127, 128 —
// the sizes where the bitset scan's word loop, cross-word frontiers, and
// partial last words are all exercised — a columnar run must be
// byte-identical (RunResult + final configuration) to the legacy
// message-at-a-time run, for both columnar algorithms under full delivery,
// random lossy windows with resets (core's resynchronization scan), the
// rotating reset storm, and the split-vote adversary (the columnar
// classifier). This is the sim-level complement of the registry-level
// triple sweep in internal/registry/columnar_test.go.

func splitInputs(n int) []sim.Bit {
	in := make([]sim.Bit, n)
	for i := range in {
		in[i] = sim.Bit(i % 2)
	}
	return in
}

// coreClassify is the stock core vote classifier (mirrors the registry
// descriptor, which this package cannot import).
func coreClassify(m sim.Message) adversary.VoteInfo {
	if _, v, ok := core.ExtractVote(m); ok {
		return adversary.VoteInfo{HasValue: true, Value: v}
	}
	return adversary.VoteInfo{}
}

func benorClassify(m sim.Message) adversary.VoteInfo {
	if _, _, v, ok := benor.ExtractVote(m); ok {
		return adversary.VoteInfo{HasValue: true, Value: v}
	}
	return adversary.VoteInfo{}
}

func TestColumnarWordBoundaryEquivalence(t *testing.T) {
	for _, n := range []int{63, 64, 65, 127, 128} {
		n := n
		ft := n/6 - 1 // core's t < n/6 bound; benor tolerates more
		if ft < 1 {
			t.Fatalf("n=%d leaves no fault budget", n)
		}
		th, err := core.DefaultThresholds(n, ft)
		if err != nil {
			t.Fatal(err)
		}
		type algCase struct {
			name    string
			factory func(sim.ProcID, sim.Bit) sim.Process
			cls     func(sim.Message) adversary.VoteInfo
			cap     int
		}
		algs := []algCase{
			{"core", core.NewFactory(n, ft, th), coreClassify, th.T3 - 1},
			{"benor", benor.NewFactory(n, ft), benorClassify, n / 2},
		}
		for _, alg := range algs {
			alg := alg
			advs := []struct {
				name string
				mk   func() sim.WindowAdversary
			}{
				{"full", func() sim.WindowAdversary { return adversary.FullDelivery{} }},
				{"random", func() sim.WindowAdversary { return adversary.NewRandomWindows(7, 0.4, ft) }},
				{"storm", func() sim.WindowAdversary { return adversary.NewResetStorm() }},
				{"splitvote", func() sim.WindowAdversary { return adversary.NewSplitVote(alg.cls, alg.cap) }},
			}
			for _, av := range advs {
				av := av
				if alg.name == "benor" && (av.name == "random" || av.name == "storm") {
					// Ben-Or is not reset-tolerant; the registry never pairs
					// it with resetting adversaries, and a reset storm can
					// genuinely never terminate here. Skip rather than burn
					// the window budget on a known-stalling pairing — the
					// columnar handling of benor resets is still covered by
					// the registry triple sweep's smoke shapes.
					continue
				}
				t.Run(fmt.Sprintf("%s_%s_n%d", alg.name, av.name, n), func(t *testing.T) {
					t.Parallel()
					run := func(columnar bool) (sim.RunResult, []string, error) {
						sys, err := sim.New(sim.Config{
							N: n, T: ft, Seed: 11, Inputs: splitInputs(n),
							NewProcess: alg.factory,
						})
						if err != nil {
							t.Fatal(err)
						}
						sys.SetColumnar(columnar)
						adv := av.mk()
						if columnar && !sys.ColumnarPlanned(adv) {
							t.Fatal("columnar path not planned; the equivalence run would be vacuous")
						}
						res, err := sys.RunWindows(adv, 120)
						return res, sys.ConfigurationSnapshot(), err
					}
					lRes, lSnap, lErr := run(false)
					cRes, cSnap, cErr := run(true)
					if (lErr == nil) != (cErr == nil) || (lErr != nil && lErr.Error() != cErr.Error()) {
						t.Fatalf("errors diverged: legacy %v, columnar %v", lErr, cErr)
					}
					if lRes != cRes {
						t.Fatalf("results diverged:\nlegacy   %+v\ncolumnar %+v", lRes, cRes)
					}
					for i := range lSnap {
						if lSnap[i] != cSnap[i] {
							t.Fatalf("processor %d diverged:\nlegacy   %q\ncolumnar %q", i, lSnap[i], cSnap[i])
						}
					}
				})
			}
		}
	}
}
