package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// shardPool is the persistent per-System worker pool behind the sharded
// window core (shard.go). It exists so that a System recycled across
// thousands of trials (the PR 4 pooled-engine path) pays for goroutine
// creation once, not per window: the pool spawns workers-1 goroutines at
// construction and thereafter a phase costs one buffered channel send per
// woken worker plus atomic shard claims — no allocation, no goroutine churn.
//
// Phase protocol: run() publishes the System, the phase selector, and the
// shard count, then wakes up to workers goroutines through the buffered wake
// channel (the channel send is the happens-before edge making the phase
// fields visible). Workers and the calling goroutine claim shard indices
// from a shared atomic counter until none remain, so an uneven shard (one
// receiver's delivery dominating) never idles the rest of the pool behind a
// static assignment — and because every shard writes only its own scratch
// and merge order is fixed by shard index (shard.go), the claim order is
// free to vary without affecting results. run() returns only after
// done.Wait(), which is the happens-before edge making every shard's
// scratch visible to the serial merge.
//
// Shutdown: SetShardWorkers stops a replaced pool explicitly; a System
// dropped on the floor (e.g. evicted from a sync.Pool of trial engines) has
// its pool reaped by a runtime.AddCleanup hook that closes quit — the pool
// clears its System pointer between phases, so idle workers pin only the
// pool itself, never the System, and the cleanup can fire.
type shardPool struct {
	workers int
	wake    chan struct{}
	quit    chan struct{}
	done    sync.WaitGroup

	// Phase state, written by run() before the wake sends and read by
	// workers after the wake receive.
	sys     *System
	phase   shardPhase
	nshards int32
	next    atomic.Int32
}

// shardPhase selects which per-shard body drain() executes. An enum rather
// than a closure so that publishing a phase allocates nothing.
type shardPhase int

const (
	phaseValidate shardPhase = iota + 1
	phaseDeliver
	phaseSend
	phaseTally // columnar per-receiver tally (columnar.go)
)

// newShardPool spawns a pool of workers goroutines (the calling goroutine
// of each phase participates too, so total parallelism is workers+1).
func newShardPool(workers int) *shardPool {
	p := &shardPool{
		workers: workers,
		wake:    make(chan struct{}, workers),
		quit:    make(chan struct{}),
	}
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// installCleanup arranges for the pool's goroutines to be reaped when owner
// (the System) becomes unreachable. The cleanup closure must not capture
// the pool or the System — either would keep the owner reachable forever —
// so it receives only the quit channel.
func (p *shardPool) installCleanup(owner *System) runtime.Cleanup {
	return runtime.AddCleanup(owner, func(quit chan struct{}) { close(quit) }, p.quit)
}

// stop terminates the worker goroutines. Only called when the pool is idle
// (between windows); the owning System must detach the pool first.
func (p *shardPool) stop() { close(p.quit) }

func (p *shardPool) worker() {
	for {
		select {
		case <-p.quit:
			return
		case <-p.wake:
			p.drain()
			p.done.Done()
		}
	}
}

// drain claims and executes shards until none remain. Shard bodies recover
// their own panics into shard scratch (System.shardRun), so drain never
// unwinds a worker.
func (p *shardPool) drain() {
	sys, phase, n := p.sys, p.phase, p.nshards
	for {
		i := p.next.Add(1) - 1
		if i >= n {
			return
		}
		sys.shardRun(phase, int(i))
	}
}

// run executes one phase across nshards shards and returns when all have
// completed. The calling goroutine participates, so a pool with zero
// workers degenerates to a serial loop.
func (p *shardPool) run(sys *System, phase shardPhase, nshards int) {
	p.sys, p.phase, p.nshards = sys, phase, int32(nshards)
	p.next.Store(0)
	k := p.workers
	if k > nshards-1 {
		k = nshards - 1 // never wake more workers than there are other shards
	}
	p.done.Add(k)
	for i := 0; i < k; i++ {
		p.wake <- struct{}{}
	}
	p.drain()
	p.done.Wait()
	p.sys = nil // idle workers must not pin the System (see installCleanup)
}
