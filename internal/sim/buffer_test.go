package sim

import (
	"testing"
	"testing/quick"
)

func TestBufferAddAssignsSequentialIDs(t *testing.T) {
	b := NewBuffer()
	m1 := b.Add(Message{From: 0, To: 1})
	m2 := b.Add(Message{From: 1, To: 0})
	if m1.ID != 1 || m2.ID != 2 {
		t.Fatalf("ids %d, %d", m1.ID, m2.ID)
	}
	if b.Len() != 2 {
		t.Fatalf("Len = %d", b.Len())
	}
}

func TestBufferTakeRemoves(t *testing.T) {
	b := NewBuffer()
	m := b.Add(Message{From: 0, To: 1})
	got, ok := b.Take(m.ID)
	if !ok || got.From != 0 || got.To != 1 {
		t.Fatalf("Take = %+v, %v", got, ok)
	}
	if _, ok := b.Take(m.ID); ok {
		t.Fatal("double Take succeeded")
	}
	if b.Len() != 0 {
		t.Fatalf("Len = %d after take", b.Len())
	}
}

func TestBufferGetDoesNotRemove(t *testing.T) {
	b := NewBuffer()
	m := b.Add(Message{From: 0, To: 1})
	if _, ok := b.Get(m.ID); !ok {
		t.Fatal("Get failed")
	}
	if b.Len() != 1 {
		t.Fatal("Get removed the message")
	}
}

func TestBufferPendingForOrder(t *testing.T) {
	b := NewBuffer()
	b.Add(Message{From: 0, To: 2})
	b.Add(Message{From: 1, To: 1})
	b.Add(Message{From: 2, To: 2})
	pending := b.PendingFor(2)
	if len(pending) != 2 || pending[0].From != 0 || pending[1].From != 2 {
		t.Fatalf("PendingFor = %+v", pending)
	}
	oldest, ok := b.OldestFor(2)
	if !ok || oldest.From != 0 {
		t.Fatalf("OldestFor = %+v, %v", oldest, ok)
	}
	if _, ok := b.OldestFor(9); ok {
		t.Fatal("OldestFor empty recipient succeeded")
	}
}

func TestBufferDropWhere(t *testing.T) {
	b := NewBuffer()
	for i := 0; i < 10; i++ {
		b.Add(Message{From: ProcID(i % 2), To: 3})
	}
	dropped := b.DropWhere(func(m Message) bool { return m.From == 0 })
	if dropped != 5 || b.Len() != 5 {
		t.Fatalf("dropped %d, len %d", dropped, b.Len())
	}
	for _, m := range b.Pending() {
		if m.From == 0 {
			t.Fatal("dropped message still pending")
		}
	}
}

func TestBufferIDsSorted(t *testing.T) {
	b := NewBuffer()
	for i := 0; i < 20; i++ {
		b.Add(Message{From: 0, To: 1})
	}
	b.DropWhere(func(m Message) bool { return m.ID%3 == 0 })
	ids := b.IDs()
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("IDs not sorted: %v", ids)
		}
	}
}

func TestBufferCompaction(t *testing.T) {
	// Heavy add/take churn must not leak storage: the ring tracks the live
	// ID span (one message here) and the arena recycles slots.
	b := NewBuffer()
	for i := 0; i < 10000; i++ {
		m := b.Add(Message{From: 0, To: 1})
		if _, ok := b.Take(m.ID); !ok {
			t.Fatal("lost message")
		}
		if i%100 == 0 {
			b.Pending()
		}
	}
	if b.Len() != 0 {
		t.Fatalf("Len = %d", b.Len())
	}
	if len(b.ring) > 1000 {
		t.Fatalf("ring leaked: %d entries for empty buffer", len(b.ring))
	}
	if len(b.arena) > 16 {
		t.Fatalf("arena leaked: %d slots for lockstep add/take churn", len(b.arena))
	}
}

func TestBufferAddTakeAllocFree(t *testing.T) {
	// The arena + free list + ring make a steady-state Add/Take cycle
	// allocation-free (the original map-backed buffer churned on every Add).
	b := NewBufferFor(4)
	for i := 0; i < 128; i++ { // warm up ring and arena
		m := b.Add(Message{From: 0, To: 1})
		b.Take(m.ID)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		m := b.Add(Message{From: 0, To: 1, Payload: nil})
		if _, ok := b.Take(m.ID); !ok {
			t.Fatal("lost message")
		}
	})
	if allocs != 0 {
		t.Fatalf("Add+Take allocates %.1f per op, want 0", allocs)
	}
}

func TestBufferWindowCycleAllocFree(t *testing.T) {
	// A full window-shaped cycle — n*n Adds, then PendingFor-ordered Takes —
	// must also be allocation-free once warm.
	const n = 8
	b := NewBufferFor(n)
	cycle := func() {
		for from := 0; from < n; from++ {
			for to := 0; to < n; to++ {
				b.Add(Message{From: ProcID(from), To: ProcID(to)})
			}
		}
		for to := 0; to < n; to++ {
			for {
				m, ok := b.OldestFor(ProcID(to))
				if !ok {
					break
				}
				b.Take(m.ID)
			}
		}
	}
	cycle() // warm up
	if allocs := testing.AllocsPerRun(100, cycle); allocs > 0 {
		t.Fatalf("window cycle allocates %.1f per op, want 0", allocs)
	}
}

func TestBufferPendingMatchesLenProperty(t *testing.T) {
	check := func(ops []uint8) bool {
		b := NewBuffer()
		var live []int64
		for _, op := range ops {
			if op%3 == 0 || len(live) == 0 {
				m := b.Add(Message{From: ProcID(op % 4), To: ProcID(op % 5)})
				live = append(live, m.ID)
			} else {
				idx := int(op) % len(live)
				id := live[idx]
				live = append(live[:idx], live[idx+1:]...)
				if _, ok := b.Take(id); !ok {
					return false
				}
			}
		}
		return b.Len() == len(live) && len(b.Pending()) == len(live)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
