package sim

import (
	"errors"
	"fmt"
	"runtime"

	"asyncagree/internal/rng"
)

// Sentinel errors returned by System step and window operations.
var (
	// ErrBadWindow indicates a window violating Definition 1 (a sender set
	// smaller than n-t, or more than t resets).
	ErrBadWindow = errors.New("sim: window violates acceptable-window constraints")
	// ErrNoSuchProc indicates an out-of-range processor ID.
	ErrNoSuchProc = errors.New("sim: no such processor")
	// ErrNoSuchMessage indicates a delivery of a message not in the buffer.
	ErrNoSuchMessage = errors.New("sim: no such buffered message")
	// ErrCrashed indicates a step by or delivery to a crashed processor.
	ErrCrashed = errors.New("sim: processor has crashed")
	// ErrFaultBudget indicates the adversary exceeded its fault budget t.
	ErrFaultBudget = errors.New("sim: fault budget t exceeded")
	// ErrOutputRewritten indicates a Process violated the write-once output
	// contract. This is an algorithm bug, surfaced loudly.
	ErrOutputRewritten = errors.New("sim: write-once output bit was rewritten")
)

// Config configures a System.
type Config struct {
	// N is the number of processors; T the fault budget (resets per window
	// in window mode, total crashes/corruptions otherwise).
	N, T int
	// Seed seeds all randomness; equal seeds give identical executions
	// under deterministic adversaries.
	Seed uint64
	// Inputs are the n input bits.
	Inputs []Bit
	// NewProcess constructs the algorithm instance for one processor.
	NewProcess func(id ProcID, input Bit) Process
}

// WindowAdversary plans one acceptable window at a time with full
// information: it is invoked after all sending steps of the window, with the
// just-sent batch in hand, and returns the sender sets and resets.
type WindowAdversary interface {
	PlanDelivery(s *System, batch []Message) Window
}

// StepAdversary drives step mode: it returns the next fine-grained step, or
// ok=false to end the execution.
type StepAdversary interface {
	NextStep(s *System) (step Step, ok bool)
}

// EventKind enumerates trace event types.
type EventKind int

// Trace event kinds.
const (
	EvWindow EventKind = iota + 1
	EvSend
	EvDeliver
	EvReset
	EvCrash
	EvDecide
)

// Event is a single trace event, emitted through Config-free observation via
// System.OnEvent.
type Event struct {
	Kind   EventKind
	Window int
	Proc   ProcID
	Msg    Message
	Value  Bit
}

// System holds the full configuration of the n processors plus the message
// buffer, and executes adversary-chosen steps. It is not safe for concurrent
// use; run one System per goroutine.
type System struct {
	n, t int

	procs []Process
	// newProcess is the Config factory, retained so Recycle can rebuild
	// processes that do not implement the Recycler hook (and replace
	// corrupted ones).
	newProcess func(id ProcID, input Bit) Process
	rngs       []*rng.Source
	inputs     []Bit
	crashed    []bool
	// corrupt marks Byzantine-corrupted processors (replaced by adversary
	// processes); they are excluded from agreement/termination checks.
	corrupt []bool

	buffer *Buffer

	resetCounts  []int
	totalCrashes int
	totalCorrupt int

	windows int
	steps   int64

	// chainDepth[i] is the maximum Depth over messages processor i has
	// received; a message sent by i gets Depth = chainDepth[i]+1.
	chainDepth []int

	// decidedVal/decidedOK mirror processor outputs for write-once
	// enforcement; decidedWindow records the window (or step, in step mode)
	// of each decision. firstDecision is -1 until some processor decides.
	decidedVal    []Bit
	decidedOK     []bool
	decidedWindow []int
	firstDecision int

	// OnEvent, when non-nil, observes every step for tracing.
	OnEvent func(Event)

	violation error

	// Scratch state for the allocation-free window pipeline (window.go).
	// batchScratch backs the slice returned by WindowSend; orderScratch
	// holds its sorted copy; allowBits is a receiver-major bitset of
	// permitted senders (allowWords words per receiver) with allowAll
	// flagging receivers whose sender set is nil ("all senders").
	batchScratch []Message
	orderScratch []Message
	allowWords   int
	allowBits    []uint64
	allowAll     []bool

	// Sharded window core state (shard.go, shardpool.go). shardWorkers is
	// the configured parallelism (<= 1 selects the serial facade above);
	// parallelSend additionally shards WindowSend when the algorithm
	// declares its Send concurrency-safe. The pool, per-shard scratch, and
	// order buffers are lazily built on the first sharded window and — like
	// the serial scratch — deliberately survive Recycle, so a pooled trial
	// engine keeps its worker goroutines hot across thousands of trials.
	shardWorkers int
	parallelSend bool
	shardPool    *shardPool
	shardCleanup runtime.Cleanup
	shards       []windowShard
	shardSenders [][]ProcID // phaseValidate input; nil outside that phase
	orderIdx     []int32    // batch indices bucketed by receiver
	orderOff     []int32    // orderIdx bucket offsets, len n+1
	orderPos     []int32    // bucket fill cursors, len n

	// Columnar kernel state (columnar.go). colOff disables the fast path
	// (the zero value keeps it enabled); colCap caches whether every process
	// implements the columnar hooks (+1 yes, -1 no, 0 unknown — sound to
	// cache because it is only consulted while no processor is corrupted and
	// Recycle rebuilds corrupted processors through the same factory, so
	// process types never change under the guard). colSet/colTally/colDepth*
	// are reusable window scratch; colFullMsgs/colFullDepth cache the
	// all-senders tally shared by allowAll receivers, computed serially
	// before any parallel tally phase. Like the sharded scratch, all of it
	// deliberately survives Recycle.
	colOff       bool
	colCap       int8
	colSet       ColumnSet
	colTally     WindowTally
	colDepths    []int
	colDepthRows [][]uint64
	colFullMsgs  int64
	colFullDepth int
}

// New constructs a System, instantiating one Process per processor.
func New(cfg Config) (*System, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("sim: n must be positive, got %d", cfg.N)
	}
	if cfg.T < 0 || cfg.T >= cfg.N {
		return nil, fmt.Errorf("sim: t must satisfy 0 <= t < n, got t=%d n=%d", cfg.T, cfg.N)
	}
	if len(cfg.Inputs) != cfg.N {
		return nil, fmt.Errorf("sim: got %d inputs for n=%d", len(cfg.Inputs), cfg.N)
	}
	if cfg.NewProcess == nil {
		return nil, errors.New("sim: NewProcess must be set")
	}
	root := rng.New(cfg.Seed)
	s := &System{
		n:             cfg.N,
		t:             cfg.T,
		procs:         make([]Process, cfg.N),
		newProcess:    cfg.NewProcess,
		rngs:          make([]*rng.Source, cfg.N),
		inputs:        append([]Bit(nil), cfg.Inputs...),
		crashed:       make([]bool, cfg.N),
		corrupt:       make([]bool, cfg.N),
		buffer:        NewBufferFor(cfg.N),
		resetCounts:   make([]int, cfg.N),
		chainDepth:    make([]int, cfg.N),
		decidedVal:    make([]Bit, cfg.N),
		decidedOK:     make([]bool, cfg.N),
		decidedWindow: make([]int, cfg.N),
		firstDecision: -1,
		allowWords:    (cfg.N + 63) / 64,
	}
	s.allowBits = make([]uint64, cfg.N*s.allowWords)
	s.allowAll = make([]bool, cfg.N)
	for i := 0; i < cfg.N; i++ {
		s.rngs[i] = root.Fork(uint64(i))
		s.procs[i] = cfg.NewProcess(ProcID(i), cfg.Inputs[i])
		if s.procs[i] == nil {
			return nil, fmt.Errorf("sim: NewProcess returned nil for processor %d", i)
		}
	}
	return s, nil
}

// Reseed replaces every processor's randomness source with a fresh stream
// derived from seed. The lower-bound machinery uses this to sample many
// independent continuations of the same partial execution (the probability
// P[window application lands in Z^{k-1}] of Definition 12): future local
// coins are independent of the past, so reseeding at a configuration is
// equivalent to conditioning on it.
func (s *System) Reseed(seed uint64) {
	var root rng.Source
	root.Reseed(seed)
	for i := range s.rngs {
		root.ForkInto(s.rngs[i], uint64(i))
	}
}

// Recycle rewinds the System to the state New would produce for the same
// (n, t) shape with the given seed and inputs, without freeing anything: the
// buffer arena, scratch buffers, per-processor randomness sources, and
// decision bookkeeping are all rewound in place, so a recycled steady-state
// trial allocates (near) nothing. Processes implementing Recycler are
// rewound through that hook; others (and any replaced by Corrupt) are
// rebuilt through the construction factory. The OnEvent observer, if any,
// persists across trials.
func (s *System) Recycle(seed uint64, inputs []Bit) error {
	if len(inputs) != s.n {
		return fmt.Errorf("sim: got %d inputs for n=%d", len(inputs), s.n)
	}
	copy(s.inputs, inputs)
	s.buffer.Reset()
	var root rng.Source
	root.Reseed(seed)
	for i := 0; i < s.n; i++ {
		root.ForkInto(s.rngs[i], uint64(i))
		if r, ok := s.procs[i].(Recycler); ok && !s.corrupt[i] {
			r.Recycle(inputs[i])
		} else {
			s.procs[i] = s.newProcess(ProcID(i), inputs[i])
			if s.procs[i] == nil {
				return fmt.Errorf("sim: NewProcess returned nil for processor %d", i)
			}
		}
		s.crashed[i] = false
		s.corrupt[i] = false
		s.resetCounts[i] = 0
		s.chainDepth[i] = 0
		s.decidedVal[i] = 0
		s.decidedOK[i] = false
		s.decidedWindow[i] = 0
	}
	s.totalCrashes = 0
	s.totalCorrupt = 0
	s.windows = 0
	s.steps = 0
	s.firstDecision = -1
	s.violation = nil
	return nil
}

// N returns the number of processors.
func (s *System) N() int { return s.n }

// T returns the fault budget.
func (s *System) T() int { return s.t }

// Windows returns the number of completed acceptable windows.
func (s *System) Windows() int { return s.windows }

// Steps returns the number of fine-grained steps executed.
func (s *System) Steps() int64 { return s.steps }

// Buffer exposes the message buffer (adversaries have full information).
func (s *System) Buffer() *Buffer { return s.buffer }

// Proc returns the Process at id (adversaries have full information and may
// inspect snapshots; mutating it is a contract violation).
func (s *System) Proc(id ProcID) Process { return s.procs[id] }

// Input returns processor id's input bit.
func (s *System) Input(id ProcID) Bit { return s.inputs[id] }

// Crashed reports whether processor id has crashed.
func (s *System) Crashed(id ProcID) bool { return s.crashed[id] }

// Corrupted reports whether processor id has been Byzantine-corrupted.
func (s *System) Corrupted(id ProcID) bool { return s.corrupt[id] }

// ResetCount returns the number of resets processor id has suffered.
func (s *System) ResetCount(id ProcID) int { return s.resetCounts[id] }

// ChainDepth returns the maximum received message-chain depth at id.
func (s *System) ChainDepth(id ProcID) int { return s.chainDepth[id] }

// FirstDecisionWindow returns the window index (0-based) in which the first
// decision occurred, or -1 if none yet. In step mode the unit is steps.
func (s *System) FirstDecisionWindow() int { return s.firstDecision }

// DecisionWindow returns the window in which processor id decided and
// whether it has decided.
func (s *System) DecisionWindow(id ProcID) (int, bool) {
	return s.decidedWindow[id], s.decidedOK[id]
}

// Violation returns the first detected safety violation (write-once output
// rewritten), or nil. Agreement and validity are checked via AgreementOK and
// ValidityOK.
func (s *System) Violation() error { return s.violation }

func (s *System) checkProc(id ProcID) error {
	if id < 0 || int(id) >= s.n {
		return fmt.Errorf("%w: %d", ErrNoSuchProc, id)
	}
	return nil
}

// emit sends ev to the observer if one is installed.
func (s *System) emit(ev Event) {
	if s.OnEvent != nil {
		ev.Window = s.windows
		s.OnEvent(ev)
	}
}

// recordOutputs refreshes decision bookkeeping for processor id and enforces
// the write-once contract.
func (s *System) recordOutputs(id ProcID) {
	v, ok := s.procs[id].Output()
	if !ok {
		if s.decidedOK[id] && s.violation == nil {
			s.violation = fmt.Errorf("%w: processor %d un-decided", ErrOutputRewritten, id)
		}
		return
	}
	if s.decidedOK[id] {
		if v != s.decidedVal[id] && s.violation == nil {
			s.violation = fmt.Errorf("%w: processor %d changed %d -> %d", ErrOutputRewritten, id, s.decidedVal[id], v)
		}
		return
	}
	s.decidedOK[id] = true
	s.decidedVal[id] = v
	s.decidedWindow[id] = s.windows
	if s.firstDecision < 0 {
		s.firstDecision = s.windows
	}
	s.emit(Event{Kind: EvDecide, Proc: id, Value: v})
}

// sendInto executes a sending step for processor id, appending the messages
// placed into the buffer to dst and returning the extended slice. The window
// pipeline passes its reusable batch scratch as dst so the hot path performs
// no per-step allocation.
func (s *System) sendInto(id ProcID, dst []Message) []Message {
	s.steps++
	batch := s.procs[id].Send()
	for _, m := range batch {
		m.From = id // channels are authenticated: the sender cannot forge From
		if m.To < 0 || int(m.To) >= s.n {
			continue // drop messages to nonexistent processors
		}
		if s.crashed[m.To] {
			continue // a crashed processor never receives anything
		}
		m.Depth = s.chainDepth[id] + 1
		stored := s.buffer.Add(m)
		dst = append(dst, stored)
		s.emit(Event{Kind: EvSend, Proc: id, Msg: stored})
	}
	return dst
}

// stepSend executes a sending step for processor id, returning the messages
// placed into the buffer in a freshly allocated slice (step-mode callers may
// retain it).
func (s *System) stepSend(id ProcID) []Message {
	return s.sendInto(id, nil)
}

// deliver executes a receiving step for message m (already removed from the
// buffer).
func (s *System) deliver(m Message) {
	s.steps++
	if s.chainDepth[m.To] < m.Depth {
		s.chainDepth[m.To] = m.Depth
	}
	s.procs[m.To].Deliver(m, s.rngs[m.To])
	s.emit(Event{Kind: EvDeliver, Proc: m.To, Msg: m})
	s.recordOutputs(m.To)
}

// reset executes a resetting step for processor id.
func (s *System) reset(id ProcID) {
	s.steps++
	s.resetCounts[id]++
	s.procs[id].Reset()
	s.emit(Event{Kind: EvReset, Proc: id})
	s.recordOutputs(id) // output must survive a reset
}
