package sim

import (
	"math/bits"
	"testing"
)

func TestMaskFrom(t *testing.T) {
	cases := []struct {
		b    int
		want uint64
	}{
		{0, ^uint64(0)},
		{1, ^uint64(1)},
		{63, uint64(1) << 63},
		{64, 0},
	}
	for _, c := range cases {
		if got := MaskFrom(c.b); got != c.want {
			t.Errorf("MaskFrom(%d) = %#x, want %#x", c.b, got, c.want)
		}
	}
}

func TestNthSetBit(t *testing.T) {
	cases := []struct {
		x    uint64
		k    int
		want int
	}{
		{1, 1, 0},
		{0b1011, 1, 0},
		{0b1011, 2, 1},
		{0b1011, 3, 3},
		{^uint64(0), 64, 63},
		{uint64(1)<<63 | 1, 2, 63},
	}
	for _, c := range cases {
		if got := NthSetBit(c.x, c.k); got != c.want {
			t.Errorf("NthSetBit(%#x, %d) = %d, want %d", c.x, c.k, got, c.want)
		}
	}
}

// TestColumnSetPublish pins the sorted find-or-insert: columns come out
// ordered by (Round, Class, Val) regardless of publish order, re-publishing
// an existing key reuses its column, and the senders union tracks every
// publisher.
func TestColumnSetPublish(t *testing.T) {
	var cs ColumnSet
	cs.reset(2) // two words: senders up to 128
	pubs := []struct {
		from       ProcID
		round      int
		class, val uint8
	}{
		{70, 2, 1, 0},
		{3, 1, 1, 1},
		{64, 1, 1, 0},
		{5, 1, 2, ValNeutral},
		{3, 2, 1, 0}, // same key as the first: shared column
		{0, 1, 1, 1}, // same key as the second
	}
	for _, p := range pubs {
		cs.publish(p.from, p.round, p.class, p.val)
	}
	cols := cs.Columns()
	want := []struct {
		round      int
		class, val uint8
		bitsOf     []ProcID
	}{
		{1, 1, 0, []ProcID{64}},
		{1, 1, 1, []ProcID{0, 3}},
		{1, 2, ValNeutral, []ProcID{5}},
		{2, 1, 0, []ProcID{3, 70}},
	}
	if len(cols) != len(want) {
		t.Fatalf("got %d columns, want %d", len(cols), len(want))
	}
	for i, w := range want {
		c := &cols[i]
		if c.Round != w.round || c.Class != w.class || c.Val != w.val {
			t.Fatalf("column %d = (%d,%d,%d), want (%d,%d,%d)",
				i, c.Round, c.Class, c.Val, w.round, w.class, w.val)
		}
		var popc int
		for wd := 0; wd < cs.Words(); wd++ {
			popc += bits.OnesCount64(c.Word(wd))
		}
		if popc != len(w.bitsOf) {
			t.Fatalf("column %d has %d senders, want %d", i, popc, len(w.bitsOf))
		}
		for _, q := range w.bitsOf {
			if c.Word(int(q)>>6)&(uint64(1)<<(uint(q)&63)) == 0 {
				t.Fatalf("column %d missing sender %d", i, q)
			}
		}
	}
	for _, q := range []ProcID{0, 3, 5, 64, 70} {
		if cs.SenderWord(int(q)>>6)&(uint64(1)<<(uint(q)&63)) == 0 {
			t.Fatalf("senders union missing %d", q)
		}
	}
}

// TestWindowTallyCounts is the bitset-tally battery at word-boundary sizes:
// for n = 63, 64, 65, 127, 128 the popcount aggregation must agree with a
// per-sender brute-force count, under both an all-senders mask and a
// restricted allow row that straddles word boundaries.
func TestWindowTallyCounts(t *testing.T) {
	for _, n := range []int{63, 64, 65, 127, 128} {
		words := (n + 63) / 64
		var cs ColumnSet
		cs.reset(words)
		// Sender q publishes (round 1, class 1, val q%3): values 0, 1, and
		// neutral all populated, every sender position exercised.
		for q := 0; q < n; q++ {
			val := uint8(q % 3)
			cs.publish(ProcID(q), 1, 1, val)
		}
		allow := make([]uint64, words)
		admitted := func(q int) bool { return q%5 != 0 && q != n-1 }
		for q := 0; q < n; q++ {
			if admitted(q) {
				allow[q>>6] |= uint64(1) << (uint(q) & 63)
			}
		}
		for _, tc := range []struct {
			name     string
			allowAll bool
		}{{"all", true}, {"masked", false}} {
			wt := WindowTally{cs: &cs, allowAll: tc.allowAll, allow: allow}
			got := wt.Tally(1, 1)
			want := Tally{Round: 1, Class: 1}
			for q := 0; q < n; q++ {
				if !tc.allowAll && !admitted(q) {
					continue
				}
				switch q % 3 {
				case 0:
					want.Zeros++
				case 1:
					want.Ones++
				default:
					want.Unvalued++
				}
				want.Total++
			}
			if got != want {
				t.Errorf("n=%d %s: Tally = %+v, want %+v", n, tc.name, got, want)
			}
			if empty := wt.Tally(2, 1); empty.Total != 0 {
				t.Errorf("n=%d %s: absent group tallied %+v", n, tc.name, empty)
			}
		}
	}
}
