package sim

import (
	"fmt"
	"testing"
)

// scriptedSenders is a WindowAdversary replaying a fixed per-window script
// of sender sets (nil entry = all senders for that window).
type scriptedSenders struct {
	script [][][]ProcID
	next   int
}

func (a *scriptedSenders) PlanDelivery(s *System, batch []Message) Window {
	if a.next >= len(a.script) {
		return Window{}
	}
	w := Window{Senders: a.script[a.next]}
	a.next++
	return w
}

// captureEvents installs an observer rendering each event canonically.
func captureEvents(s *System) *[]string {
	events := &[]string{}
	s.OnEvent = func(ev Event) {
		*events = append(*events, fmt.Sprintf("%d w%d p%d %d>%d#%d %v v%d",
			ev.Kind, ev.Window, ev.Proc, ev.Msg.From, ev.Msg.To, ev.Msg.ID, ev.Msg.Payload, ev.Value))
	}
	return events
}

// allBut returns every processor ID except the listed ones — a maximal
// explicit sender set, distinct from the nil "all senders" row.
func allBut(n int, drop ...ProcID) []ProcID {
	out := make([]ProcID, 0, n)
	for i := 0; i < n; i++ {
		skip := false
		for _, d := range drop {
			if ProcID(i) == d {
				skip = true
			}
		}
		if !skip {
			out = append(out, ProcID(i))
		}
	}
	return out
}

// TestShardedDeliverBoundarySenderSets drives the sharded window core over
// sender-set shapes chosen to straddle shard boundaries — for n > 64 the
// shards are uneven (mixed ceil/floor sizes), so receivers at the exact
// partition edges exercise the lo/hi arithmetic — and asserts every trace
// event, result, and snapshot matches the serial facade byte for byte.
// Explicit all-senders rows and nil rows must behave identically.
func TestShardedDeliverBoundarySenderSets(t *testing.T) {
	for _, n := range []int{3, 8, 64, 70, 96} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			tt := n / 8
			if tt == 0 {
				tt = 1
			}
			c := shardCountFor(n)
			// Collect the shard edge receivers: first and last of each shard.
			var edges []ProcID
			for b := 0; b < c; b++ {
				lo, hi := b*n/c, (b+1)*n/c
				if lo < hi {
					edges = append(edges, ProcID(lo), ProcID(hi-1))
				}
			}
			// Window scripts: each entry is one window's sender sets.
			script := [][][]ProcID{
				nil, // all-nil window
			}
			// Explicit all-senders row for every edge receiver, nil elsewhere.
			w := make([][]ProcID, n)
			for _, e := range edges {
				w[e] = allBut(n)
			}
			script = append(script, w)
			// Minimal sets (n-tt distinct senders) exactly at the edges,
			// dropping the receiver's own shard neighbors where possible.
			w2 := make([][]ProcID, n)
			for i, e := range edges {
				drop := make([]ProcID, 0, tt)
				for d := 0; d < tt; d++ {
					drop = append(drop, ProcID((int(e)+i+d)%n))
				}
				w2[e] = allBut(n, drop...)
			}
			script = append(script, w2)
			// Duplicate-padded set at the first edge (duplicates must not
			// smuggle the distinct count below n-t, nor double-deliver).
			w3 := make([][]ProcID, n)
			set := allBut(n, ProcID(n-1))
			set = append(set, set[0], set[1], set[0])
			w3[0] = set
			script = append(script, w3)

			run := func(workers int) ([]string, RunResult, []string, error) {
				s, err := New(Config{
					N: n, T: tt, Seed: 42,
					Inputs:     mkInputs(n, "split"),
					NewProcess: newEcho(n, 3),
				})
				if err != nil {
					t.Fatal(err)
				}
				s.SetShardWorkers(workers)
				s.SetParallelSend(workers > 1)
				events := captureEvents(s)
				res, err := s.RunWindows(&scriptedSenders{script: script}, len(script)+2)
				s.OnEvent = nil
				return *events, res, s.ConfigurationSnapshot(), err
			}

			sEvents, sRes, sSnap, sErr := run(1)
			for _, workers := range []int{2, 4, 7} {
				events, res, snap, err := run(workers)
				if (sErr == nil) != (err == nil) || (sErr != nil && sErr.Error() != err.Error()) {
					t.Fatalf("w=%d: errors diverged: serial %v, sharded %v", workers, sErr, err)
				}
				if res != sRes {
					t.Fatalf("w=%d: results diverged:\nserial  %+v\nsharded %+v", workers, sRes, res)
				}
				if len(events) != len(sEvents) {
					t.Fatalf("w=%d: event counts diverged: serial %d, sharded %d", workers, len(sEvents), len(events))
				}
				for i := range sEvents {
					if events[i] != sEvents[i] {
						t.Fatalf("w=%d: event %d diverged:\nserial  %s\nsharded %s", workers, i, sEvents[i], events[i])
					}
				}
				for i := range sSnap {
					if snap[i] != sSnap[i] {
						t.Fatalf("w=%d: processor %d diverged:\nserial  %q\nsharded %q", workers, i, sSnap[i], snap[i])
					}
				}
			}
		})
	}
}

// TestShardedDeliverValidationErrors asserts that illegal windows fail
// identically on both paths — same error text, and (like the serial
// contract) no delivery happens before the error is raised.
func TestShardedDeliverValidationErrors(t *testing.T) {
	const n, tt = 70, 8
	cases := []struct {
		name string
		mut  func(w [][]ProcID)
	}{
		{"undersized first shard", func(w [][]ProcID) { w[0] = allBut(n)[:n-tt-1] }},
		{"undersized last shard", func(w [][]ProcID) { w[n-1] = allBut(n)[:n-tt-1] }},
		{"undersized mid shard", func(w [][]ProcID) { w[n/2] = allBut(n)[:1] }},
		{"out of range sender", func(w [][]ProcID) { w[n/3] = append(allBut(n), ProcID(n+5)) }},
		{"negative sender", func(w [][]ProcID) { w[2*n/3] = append(allBut(n), ProcID(-1)) }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			run := func(workers int) (string, int64, string) {
				s, err := New(Config{
					N: n, T: tt, Seed: 7,
					Inputs:     mkInputs(n, "split"),
					NewProcess: newEcho(n, 0),
				})
				if err != nil {
					t.Fatal(err)
				}
				s.SetShardWorkers(workers)
				s.SetParallelSend(workers > 1)
				batch := s.WindowSend()
				w := make([][]ProcID, n)
				tc.mut(w)
				dErr := s.WindowDeliver(batch, w)
				if dErr == nil {
					t.Fatal("illegal window accepted")
				}
				return dErr.Error(), s.Steps(), s.ConfigurationSnapshot()[0]
			}
			sMsg, sSteps, sSnap := run(1)
			for _, workers := range []int{2, 4} {
				msg, steps, snap := run(workers)
				if msg != sMsg {
					t.Fatalf("w=%d: error diverged:\nserial  %s\nsharded %s", workers, sMsg, msg)
				}
				if steps != sSteps || snap != sSnap {
					t.Fatalf("w=%d: state after rejected window diverged (steps %d vs %d, snap %q vs %q)",
						workers, sSteps, steps, sSnap, snap)
				}
			}
		})
	}
}

// TestShardedHandBuiltBatchFallsBack pins the facade gate: a batch that is
// not the System's own just-sent scratch (here, a copy) must take the serial
// path and behave exactly as before — the sharded ordering shortcut assumes
// invariants only WindowSend-produced batches carry.
func TestShardedHandBuiltBatchFallsBack(t *testing.T) {
	const n, tt = 8, 1
	s, err := New(Config{
		N: n, T: tt, Seed: 3,
		Inputs:     mkInputs(n, "ones"),
		NewProcess: newEcho(n, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	s.SetShardWorkers(4)
	batch := s.WindowSend()
	copied := append([]Message(nil), batch...)
	if err := s.WindowDeliver(copied, nil); err != nil {
		t.Fatal(err)
	}
	if s.Buffer().Len() != 0 {
		t.Fatalf("buffer holds %d messages after window, want 0", s.Buffer().Len())
	}
	for i := 0; i < n; i++ {
		got := s.Proc(ProcID(i)).(*echoProc).delivered
		if len(got) != n {
			t.Fatalf("processor %d got %d deliveries, want %d", i, len(got), n)
		}
	}
}

// TestBufferDrainAll pins DrainAll's contract: the buffer empties in one
// sweep, the ID sequence keeps counting (unlike Reset), and old IDs are
// gone while new Adds land past the drained span.
func TestBufferDrainAll(t *testing.T) {
	b := NewBufferFor(4)
	var ids []int64
	for i := 0; i < 10; i++ {
		m := b.Add(Message{From: ProcID(i % 4), To: ProcID((i + 1) % 4)})
		ids = append(ids, m.ID)
	}
	if _, ok := b.Take(ids[3]); !ok {
		t.Fatal("take failed")
	}
	b.DrainAll()
	if b.Len() != 0 {
		t.Fatalf("Len = %d after DrainAll, want 0", b.Len())
	}
	for _, id := range ids {
		if _, ok := b.Get(id); ok {
			t.Fatalf("message %d survived DrainAll", id)
		}
	}
	m := b.Add(Message{From: 0, To: 1})
	if m.ID != ids[len(ids)-1]+1 {
		t.Fatalf("post-drain ID = %d, want monotone %d", m.ID, ids[len(ids)-1]+1)
	}
	if got := b.PendingFor(1); len(got) != 1 || got[0].ID != m.ID {
		t.Fatalf("recipient queue broken after DrainAll: %v", got)
	}
}
