// Package sim implements the asynchronous message-passing substrate of
// Lewko & Lewko, "On the Complexity of Asynchronous Agreement Against
// Powerful Adversaries" (PODC 2013), Section 2.
//
// The model: n processors with unique identities 1..n (we use 0..n-1),
// each with an input bit, a write-once output bit, and a private source of
// random bits. Processors communicate over dedicated authenticated channels
// (the recipient always correctly identifies the sender). An execution is a
// sequence of fine-grained steps of three kinds:
//
//   - a sending step lets a processor place a batch of messages into the
//     message buffer, as a complete response to prior events (a second
//     sending step with no intervening receipt or reset is a no-op);
//   - a receiving step delivers one buffered message to its recipient, which
//     then performs local computation — this is the only step that may
//     consume local randomness;
//   - a resetting step erases a processor's memory except for its input bit,
//     output bit, identity, and a reset counter (so resets are internally
//     detectable).
//
// The adversary (package adversary) controls the order and nature of steps
// with full information; the delivery discipline of window mode — which
// ≥ n−t senders each receiver admits — can also be supplied separately by a
// pluggable scheduler (package sched). Two execution modes are provided:
//
//   - window mode (System.RunWindows) structures the execution as adjacent
//     disjoint acceptable windows per Definition 1 of the paper: all n
//     processors send, each processor i receives the just-sent messages from
//     a set S_i of >= n-t senders, then at most t resets occur. Running time
//     is the number of acceptable windows before the first decision.
//   - step mode (System.StepSend / StepDeliver / ...) exposes raw steps for
//     the classical asynchronous crash model of Section 5. Running time is
//     the longest message chain, tracked by per-message depth counters.
package sim

import "fmt"

// ProcID identifies a processor; valid values are 0..n-1.
type ProcID int

// Bit is a binary value (0 or 1). Inputs, outputs and most protocol values
// are bits, matching the binary agreement problem of the paper.
type Bit uint8

const (
	// Zero is the bit 0.
	Zero Bit = 0
	// One is the bit 1.
	One Bit = 1
)

// Message is a single point-to-point message. From/To are authenticated by
// the channel model: a Process can trust Message.From.
type Message struct {
	// ID is a unique, monotonically increasing sequence number assigned by
	// the System when the message enters the buffer.
	ID int64
	// From is the sender, To the recipient.
	From, To ProcID
	// Depth is the message-chain depth: 1 + the maximum depth of any message
	// the sender had received before sending this one. The longest message
	// chain preceding a decision is the Section 5 running-time measure.
	Depth int
	// Payload is the algorithm-specific content.
	Payload any
}

// Process is the paper's notion of an algorithm at one processor: a state
// machine whose only randomized transition is message receipt.
//
// Implementations must maintain an internal outbox: Deliver (and
// construction) queue outgoing messages, Send flushes them. This makes a
// sending step automatically "a complete response to prior events" and
// idempotent, as the model requires.
type Process interface {
	// ID returns the processor identity.
	ID() ProcID
	// Input returns the processor's fixed input bit.
	Input() Bit
	// Output returns the write-once output bit and whether it has been
	// written. Once ok is true the value must never change.
	Output() (Bit, bool)
	// Send returns the messages queued since the last Send, clearing the
	// queue. A second call with no intervening Deliver/Reset returns an
	// empty batch. Implementations may recycle the returned slice's backing
	// array: it is valid only until the next Deliver/Reset, and callers
	// (the System consumes it immediately) must not retain it.
	Send() []Message
	// Deliver processes a received message using local state and the
	// provided randomness source. This is the only randomized transition.
	Deliver(m Message, r RandSource)
	// Reset erases memory except input, output, identity, and an internal
	// reset counter. A reset processor must refrain from sending until it
	// has resynchronized (algorithm-specific).
	Reset()
	// Snapshot returns a canonical string encoding of the local state, used
	// for configuration Hamming distance in the lower-bound machinery and
	// for traces. It must be a pure function of the state.
	Snapshot() string
}

// Recycler is an optional Process extension for trial reuse. Recycle rewinds
// the process to the state a fresh construction with the given input bit
// would produce — round counters, tallies, the outbox, and the write-once
// output must all rewind — while retaining allocated structures (maps,
// pooled tallies, payload boxes) so a recycled trial allocates (near)
// nothing. Identity and sizing parameters (n, t, thresholds) persist: a
// process is only ever recycled into a trial of the same shape.
//
// System.Recycle uses this hook; processes that do not implement it are
// rebuilt through the system's process factory instead.
type Recycler interface {
	Recycle(input Bit)
}

// PayloadReclaimer is an optional Process extension for payload-box reuse in
// window mode. Once an acceptable window completes, every message of its
// just-sent batch is dead — delivered or dropped, never to be read again —
// so the System hands each batch payload back to its sender via
// ReclaimPayload, letting the sender pool heap-boxed payloads instead of
// leaking one allocation per broadcast to the garbage collector.
//
// Contract: implementations must use comparable payloads (typically a
// pointer to a pooled box shared by all copies of one broadcast — the System
// deduplicates consecutive batch entries carrying the same payload, so a
// shared box is reclaimed once). ReclaimPayload must ignore payload types it
// does not own. Step mode never reclaims; a pooling process then simply
// allocates fresh boxes, which is always safe.
type PayloadReclaimer interface {
	ReclaimPayload(payload any)
}

// RandSource is the subset of *rng.Source a Process may use. Defined as an
// interface here so that algorithm packages depend only on sim.
type RandSource interface {
	// Bit returns a uniformly random bit.
	Bit() uint8
	// Intn returns a uniformly random int in [0, n).
	Intn(n int) int
	// Uint64 returns 64 uniformly random bits.
	Uint64() uint64
}

// StepKind enumerates the fine-grained step types of Section 2, plus the
// crash step used by the Section 5 model.
type StepKind int

const (
	// StepSend is a sending step by a processor.
	StepSend StepKind = iota + 1
	// StepDeliver is a receiving step delivering one buffered message.
	StepDeliver
	// StepReset is a resetting step erasing a processor's memory.
	StepReset
	// StepCrash permanently halts a processor (classical crash model).
	StepCrash
)

// String implements fmt.Stringer.
func (k StepKind) String() string {
	switch k {
	case StepSend:
		return "send"
	case StepDeliver:
		return "deliver"
	case StepReset:
		return "reset"
	case StepCrash:
		return "crash"
	default:
		return fmt.Sprintf("StepKind(%d)", int(k))
	}
}

// Step is one fine-grained step chosen by a step-mode adversary.
type Step struct {
	Kind StepKind
	// Proc is the acting processor for send/reset/crash steps.
	Proc ProcID
	// MsgID identifies the buffered message for deliver steps.
	MsgID int64
}

// Window describes one acceptable window (Definition 1): after all n
// processors take sending steps, each processor i receives the just-sent
// messages from the senders in Senders[i] (each of size >= n-t), and then
// the processors in Resets (at most t of them) are reset.
type Window struct {
	// Senders[i] lists the senders whose just-sent messages processor i
	// receives, ascending. A nil entry means "all n senders"; a nil Senders
	// slice means all n senders for every receiver (full delivery).
	Senders [][]ProcID
	// Resets lists the processors reset at the end of the window.
	Resets []ProcID
}

// UniformWindow returns a Window delivering from the same sender set s to
// every one of the n processors — the R, S, S, ..., S shape used throughout
// Section 4 of the paper.
func UniformWindow(n int, senders []ProcID, resets []ProcID) Window {
	ss := make([][]ProcID, n)
	for i := range ss {
		ss[i] = senders
	}
	return Window{Senders: ss, Resets: resets}
}
