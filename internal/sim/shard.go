package sim

import "fmt"

// This file implements the sharded window core: WindowDeliver's validation
// and per-receiver delivery, and WindowSend's per-sender collection, run
// across a persistent worker pool (shardpool.go) with observable behavior
// byte-identical to the serial facade in window.go. See DESIGN.md §2b.
//
// The determinism discipline mirrors parallel.Reduce: receivers are
// partitioned into contiguous shards that are a pure function of n alone
// (never GOMAXPROCS or the worker count), each shard writes only its own
// scratch plus per-receiver state no other shard touches, and shard outputs
// — steps, decisions, violations, buffered trace events, send batches —
// merge in ascending shard order. The worker count decides only which
// goroutine executes a shard, so every setting (including 1) produces the
// same bytes.
//
// The sharded delivery path engages only for a batch that is the System's
// own just-sent WindowSend batch (recognized by slice identity). That batch
// carries the invariants the fast path leans on: every entry is the
// verbatim stored copy of a live buffered message, To is in range, and the
// batch is ordered sender-major with globally ascending IDs — which makes a
// stable counting sort by receiver equal to the serial (To, From, ID) sort.
// Hand-built batches (tests, exotic drivers) fall back to the serial path.

// shardMaxShards bounds the shard count the way reduceMaxBlocks bounds
// parallel.Reduce: enough shards that work-stealing balances uneven
// receivers, few enough that per-shard scratch stays cheap, and — because
// the partition depends only on n — identical results at every worker
// count.
const shardMaxShards = 64

// shardCountFor returns the number of receiver shards for n processors: a
// pure function of n, never of the worker count.
func shardCountFor(n int) int {
	if n < shardMaxShards {
		return n
	}
	return shardMaxShards
}

// windowShard is one shard's private scratch: the receiver range it owns
// and everything its phase bodies produce for the serial merge.
type windowShard struct {
	lo, hi int // receiver (delivery) or sender (send) range [lo, hi)

	steps     int64   // local step count, summed into System.steps
	err       error   // first validation error (ascending receiver order)
	violation error   // first write-once violation (ascending receiver order)
	decided   bool    // some processor newly decided in this shard
	events    []Event // buffered trace events, in serial emission order
	sendMsgs  []Message
	tally     WindowTally // phaseTally scratch (columnar.go)

	panicked bool // a phase body panicked; panicVal re-raised at merge
	panicVal any
}

// SetShardWorkers sets the worker count of the sharded window core.
// k <= 1 selects the serial facade (the historical single-core pipeline);
// k >= 2 runs window validation, per-receiver delivery, and — when enabled
// via SetParallelSend — per-sender collection across k goroutines (k-1 pool
// workers plus the calling goroutine). Observable behavior is byte-identical
// at every setting; only wall-clock changes. The setting survives Recycle,
// so a pooled trial engine configures it once per acquisition.
func (s *System) SetShardWorkers(k int) {
	if k < 1 {
		k = 1
	}
	if k == s.shardWorkers {
		return
	}
	s.shardWorkers = k
	if s.shardPool != nil {
		s.shardCleanup.Stop()
		s.shardPool.stop()
		s.shardPool = nil
	}
}

// ShardWorkers returns the configured worker count (1 = serial facade).
func (s *System) ShardWorkers() int {
	if s.shardWorkers < 1 {
		return 1
	}
	return s.shardWorkers
}

// SetParallelSend declares whether the algorithm's Send is safe to invoke
// on distinct processors concurrently (no shared mutable state), letting
// WindowSend shard its per-sender loop too. Ignored on the serial facade.
// The registry sets this from the algorithm descriptor's ParallelSend flag.
func (s *System) SetParallelSend(on bool) { s.parallelSend = on }

// ensureShardPool lazily creates the worker pool and the per-shard scratch
// on the first sharded window, so serial Systems never pay for either.
func (s *System) ensureShardPool() *shardPool {
	if s.shardPool == nil {
		p := newShardPool(s.shardWorkers - 1)
		s.shardPool = p
		s.shardCleanup = p.installCleanup(s)
	}
	if len(s.shards) == 0 {
		c := shardCountFor(s.n)
		s.shards = make([]windowShard, c)
		for b := range s.shards {
			s.shards[b].lo = b * s.n / c
			s.shards[b].hi = (b + 1) * s.n / c
		}
		s.orderOff = make([]int32, s.n+1)
		s.orderPos = make([]int32, s.n)
	}
	return s.shardPool
}

// resetShards rewinds every shard's merge outputs for a new phase group.
func (s *System) resetShards() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.steps = 0
		sh.err = nil
		sh.violation = nil
		sh.decided = false
		sh.events = sh.events[:0]
		sh.panicked = false
		sh.panicVal = nil
	}
}

// shardRun executes one shard of the current phase, capturing a panic into
// the shard's scratch instead of unwinding the worker: the serial merge
// re-raises the first panic in ascending shard order, so the trial-level
// panic isolation of the sweep pipeline (and its poisoned-engine
// abandonment) sees a normal panicking System.
func (s *System) shardRun(phase shardPhase, i int) {
	sh := &s.shards[i]
	defer func() {
		if r := recover(); r != nil {
			sh.panicked, sh.panicVal = true, r
		}
	}()
	switch phase {
	case phaseValidate:
		s.shardValidate(sh)
	case phaseDeliver:
		s.shardDeliverRange(sh)
	case phaseSend:
		s.shardSendRange(sh)
	case phaseTally:
		s.shardTallyRange(sh)
	}
}

// shardedBatch reports whether batch is the System's own just-sent
// WindowSend batch — the precondition for the sharded delivery path.
func (s *System) shardedBatch(batch []Message) bool {
	return len(batch) > 0 && len(batch) == len(s.batchScratch) &&
		&batch[0] == &s.batchScratch[0]
}

// windowDeliverSharded is the sharded body of WindowDeliver. The caller has
// already checked len(senders); batch passed shardedBatch.
func (s *System) windowDeliverSharded(batch []Message, senders [][]ProcID) error {
	pool := s.ensureShardPool()
	s.resetShards()

	// Phase 1 — validation. Each shard validates its own receivers' sender
	// sets into the shared bitset (disjoint per-receiver rows), recording
	// its first error; merging ascending yields the error the serial scan
	// would have hit first, before anything is delivered.
	for i := range s.allowAll {
		s.allowAll[i] = true
	}
	if senders != nil {
		s.shardSenders = senders
		pool.run(s, phaseValidate, len(s.shards))
		s.shardSenders = nil
		for i := range s.shards {
			sh := &s.shards[i]
			if sh.panicked {
				panic(sh.panicVal)
			}
			if sh.err != nil {
				return sh.err
			}
		}
	}

	// Phase 2 — serial receiver-major ordering. The batch is sender-major
	// with ascending IDs, so a stable counting sort by To reproduces the
	// serial (To, From, ID) sort exactly, in O(batch) with no comparisons.
	s.bucketByReceiver(batch)

	// Phase 3 — parallel delivery, each shard delivering to its own
	// contiguous receiver range.
	pool.run(s, phaseDeliver, len(s.shards))

	// Phase 4 — serial merge in ascending shard order: concatenated shard
	// outputs equal the serial receiver-order pipeline byte for byte.
	anyDecided := false
	for i := range s.shards {
		sh := &s.shards[i]
		s.steps += sh.steps
		if sh.decided {
			anyDecided = true
		}
		if sh.violation != nil && s.violation == nil {
			s.violation = sh.violation
		}
		for _, ev := range sh.events {
			s.emit(ev)
		}
		if sh.panicked {
			// Decisions recorded before the panic (earlier shards and this
			// shard's pre-panic receivers) are merged, like the serial path
			// at its panic point; later shards are poisoned state the
			// abandoned engine never exposes.
			if anyDecided && s.firstDecision < 0 {
				s.firstDecision = s.windows
			}
			panic(sh.panicVal)
		}
	}
	if anyDecided && s.firstDecision < 0 {
		s.firstDecision = s.windows
	}

	// Phase 5 — serial drain and reclaim, same as the serial path.
	s.drainWindow(batch)
	s.reclaimBatch(batch)
	return nil
}

// shardValidate validates the sender sets of the shard's receivers into the
// shared allow bitset. Writes touch only this shard's receivers.
func (s *System) shardValidate(sh *windowShard) {
	senders := s.shardSenders
	for i := sh.lo; i < sh.hi; i++ {
		set := senders[i]
		if set == nil {
			continue // nil means all senders
		}
		s.allowAll[i] = false
		row := s.allowedRow(i)
		clear(row)
		distinct := 0
		for _, p := range set {
			if err := s.checkProc(p); err != nil {
				sh.err = err
				return
			}
			w, bit := int(p)>>6, uint64(1)<<(uint(p)&63)
			if row[w]&bit == 0 {
				row[w] |= bit
				distinct++
			}
		}
		if distinct < s.n-s.t {
			sh.err = fmt.Errorf("%w: sender set for processor %d has %d distinct senders < n-t=%d",
				ErrBadWindow, i, distinct, s.n-s.t)
			return
		}
	}
}

// bucketByReceiver computes, into orderOff/orderIdx, the batch indices
// grouped by receiver in stable batch order: orderIdx[orderOff[r]:
// orderOff[r+1]] are the batch positions addressed to receiver r, in
// (From, ID) ascending order by the WindowSend batch invariant.
func (s *System) bucketByReceiver(batch []Message) {
	n := s.n
	off := s.orderOff[:n+1]
	clear(off)
	for i := range batch {
		off[int(batch[i].To)+1]++
	}
	for r := 0; r < n; r++ {
		off[r+1] += off[r]
	}
	if cap(s.orderIdx) < len(batch) {
		s.orderIdx = make([]int32, len(batch))
	}
	idx := s.orderIdx[:len(batch)]
	pos := s.orderPos[:n]
	copy(pos, off[:n])
	for i := range batch {
		r := int(batch[i].To)
		idx[pos[r]] = int32(i)
		pos[r]++
	}
}

// shardDeliverRange delivers the window's messages to the shard's receiver
// range, in the bucketed serial order. All writes are shard-local or
// per-receiver (chainDepth, decided*, the process, its rng); the buffer is
// only read (Get), never mutated, so concurrent shards never conflict.
func (s *System) shardDeliverRange(sh *windowShard) {
	batch := s.batchScratch
	idx := s.orderIdx[:len(batch)]
	off := s.orderOff[:s.n+1]
	for r := sh.lo; r < sh.hi; r++ {
		if s.crashed[r] {
			continue
		}
		allowAll := s.allowAll[r]
		var row []uint64
		if !allowAll {
			row = s.allowedRow(r)
		}
		for _, j := range idx[off[r]:off[r+1]] {
			m := &batch[j]
			if !allowAll {
				from := int(m.From)
				if from < 0 || from >= s.n {
					continue
				}
				if row[from>>6]&(uint64(1)<<(uint(from)&63)) == 0 {
					continue
				}
			}
			// Deliver the stored message, like the serial Take — an
			// adversary that consumed a buffered message while planning
			// (legal, if eccentric) makes it undeliverable on both paths.
			stored, ok := s.buffer.Get(m.ID)
			if !ok {
				continue
			}
			s.shardDeliverMsg(sh, stored)
		}
	}
}

// shardDeliverMsg is deliver (system.go) with all window-global effects
// routed into shard scratch for the ordered merge.
func (s *System) shardDeliverMsg(sh *windowShard, m Message) {
	sh.steps++
	if s.chainDepth[m.To] < m.Depth {
		s.chainDepth[m.To] = m.Depth
	}
	s.procs[m.To].Deliver(m, s.rngs[m.To])
	if s.OnEvent != nil {
		sh.events = append(sh.events, Event{Kind: EvDeliver, Proc: m.To, Msg: m})
	}
	s.shardRecordOutputs(sh, m.To)
}

// shardRecordOutputs is recordOutputs with write-once violations and the
// first-decision flag deferred to shard scratch; decidedVal/decidedOK/
// decidedWindow are per-receiver and written directly.
func (s *System) shardRecordOutputs(sh *windowShard, id ProcID) {
	v, ok := s.procs[id].Output()
	if !ok {
		if s.decidedOK[id] && sh.violation == nil {
			sh.violation = fmt.Errorf("%w: processor %d un-decided", ErrOutputRewritten, id)
		}
		return
	}
	if s.decidedOK[id] {
		if v != s.decidedVal[id] && sh.violation == nil {
			sh.violation = fmt.Errorf("%w: processor %d changed %d -> %d", ErrOutputRewritten, id, s.decidedVal[id], v)
		}
		return
	}
	s.decidedOK[id] = true
	s.decidedVal[id] = v
	s.decidedWindow[id] = s.windows
	sh.decided = true
	if s.OnEvent != nil {
		sh.events = append(sh.events, Event{Kind: EvDecide, Proc: id, Value: v})
	}
}

// drainWindow removes the completed window's batch from the buffer. The
// common case — the buffer holds exactly the batch, a dense ID span, which
// window mode guarantees — drains the whole buffer in one O(arena) sweep;
// anything else (step-mode residue, adversary-injected messages) falls back
// to the serial per-ID Take loop, which preserves non-batch messages.
func (s *System) drainWindow(batch []Message) {
	if s.buffer.live == len(batch) &&
		batch[0].ID == s.buffer.idBase && batch[len(batch)-1].ID == s.buffer.nextID {
		s.buffer.DrainAll()
		return
	}
	for i := range batch {
		s.buffer.Take(batch[i].ID)
	}
}

// windowSendSharded is the sharded body of WindowSend: shards collect their
// senders' messages into private scratch in parallel, then a serial merge
// in ascending shard order assigns buffer IDs — so IDs, batch order, and
// EvSend events are byte-identical to the serial sender loop.
func (s *System) windowSendSharded() []Message {
	pool := s.ensureShardPool()
	s.resetShards()
	pool.run(s, phaseSend, len(s.shards))
	batch := s.batchScratch[:0]
	for i := range s.shards {
		sh := &s.shards[i]
		s.steps += sh.steps
		for j := range sh.sendMsgs {
			stored := s.buffer.Add(sh.sendMsgs[j])
			batch = append(batch, stored)
			s.emit(Event{Kind: EvSend, Proc: stored.From, Msg: stored})
		}
		if sh.panicked {
			s.batchScratch = batch
			panic(sh.panicVal)
		}
	}
	s.batchScratch = batch
	return batch
}

// shardSendRange runs the sending steps of the shard's sender range,
// collecting accepted messages into shard scratch. chainDepth is read-only
// during the send phase (only delivery mutates it), and each sender reads
// just its own entry.
func (s *System) shardSendRange(sh *windowShard) {
	msgs := sh.sendMsgs[:0]
	for i := sh.lo; i < sh.hi; i++ {
		if s.crashed[i] {
			continue
		}
		sh.steps++
		out := s.procs[i].Send()
		depth := s.chainDepth[i] + 1
		for _, m := range out {
			m.From = ProcID(i) // channels are authenticated
			if m.To < 0 || int(m.To) >= s.n {
				continue
			}
			if s.crashed[m.To] {
				continue
			}
			m.Depth = depth
			msgs = append(msgs, m)
		}
	}
	sh.sendMsgs = msgs
}
