package sim

import (
	"fmt"
	"math/bits"
)

// This file implements the columnar vote-tally kernel: a fast path through
// ApplyWindowWith that collapses the window's O(n²) message-at-a-time
// delivery into O(n²/64) bitset words. Algorithms that broadcast one small
// vote record per step (the paper's setting — every message is a (round,
// value) pair) publish their window's broadcast as (round, class, value)
// sender-bitset columns instead of materializing n boxed payload copies;
// each receiver's delivery then reduces to popcount(allowRow & column) per
// column plus a word-exact scan that reproduces the legacy threshold
// crossings bit for bit. See DESIGN.md §2c.
//
// The path is byte-identical to the message-at-a-time pipeline in RunResult,
// ConfigurationSnapshot, and rng consumption, and engages only when every
// guard holds (columnarPlanner): the kernel is enabled (SetColumnar), no
// event observer is installed (the columnar path materializes no Messages,
// so EvSend/EvDeliver traces require the legacy path), no processor is
// Byzantine-corrupted, every process implements both VoteBroadcaster and
// TallyReceiver, and the adversary implements ColumnarPlanner and currently
// plans without reading the batch. Everything else — hand-built windows
// through ApplyWindow/WindowDeliver, non-columnar algorithms, traced runs —
// takes the untouched existing path, mirroring the sharded core's
// hand-built-batch gate.

// ValNeutral is the smallest neutral (non-value-bearing) column value: a
// published Val < ValNeutral carries the bit Val ∈ {0, 1}, while Val >=
// ValNeutral marks a valueless record (Ben-Or's '?' proposal). Adversaries
// classifying votes by column (the split-vote strategy) skip neutral
// columns, matching the legacy ClassifyVote ok=false contract.
const ValNeutral uint8 = 2

// MaskFrom returns the word mask selecting bit positions >= b, for b in
// [0, 64] (MaskFrom(64) is 0: Go defines over-wide shifts as zero).
func MaskFrom(b int) uint64 { return ^uint64(0) << uint(b) }

// NthSetBit returns the position of the k-th (1-based) set bit of x. The
// caller guarantees x has at least k set bits.
func NthSetBit(x uint64, k int) int {
	for ; k > 1; k-- {
		x &= x - 1 // clear lowest set bit
	}
	return bits.TrailingZeros64(x)
}

// VoteColumn is one published (Round, Class, Val) column: bit q of the
// bitset is set iff processor q broadcast that record this window. Columns
// are maintained sorted by (Round, Class, Val), which — because each
// sender's publishes ascend in (Round, Class) within a window — makes
// column order equal per-sender record order for every consumer that scans
// columns front to back.
type VoteColumn struct {
	// Round is the algorithm round the record belongs to; Class
	// distinguishes record kinds within a round (core votes publish 0;
	// Ben-Or publishes its Phase). (Round, Class) ascends per sender.
	Round int
	Class uint8
	// Val is the carried value: a bit for Val < ValNeutral, neutral
	// otherwise.
	Val uint8

	bits []uint64
}

// Word returns word w of the column's sender bitset.
func (c *VoteColumn) Word(w int) uint64 { return c.bits[w] }

// SetWord overwrites word w of the column's sender bitset. This is the
// corruption hook: a columnar adversary that flips or suppresses votes
// mutates the columns after PlanDeliveryColumnar receives them and before
// tallying, the columnar analogue of rewriting batch payloads.
func (c *VoteColumn) SetWord(w int, v uint64) { c.bits[w] = v }

// ColumnSet holds one window's published columns plus the union of
// publishing senders. It is reusable scratch owned by a System: reset
// recycles the column bitsets through a free list, so the steady-state
// window loop allocates nothing here.
type ColumnSet struct {
	words   int
	cols    []VoteColumn
	free    [][]uint64
	senders []uint64
}

// Words returns the bitset width in 64-bit words ((n+63)/64).
func (cs *ColumnSet) Words() int { return cs.words }

// Columns returns the window's columns, sorted by (Round, Class, Val). The
// slice and the column bitsets are valid until the next window's send.
func (cs *ColumnSet) Columns() []VoteColumn { return cs.cols }

// SenderWord returns word w of the union-of-publishing-senders bitset.
func (cs *ColumnSet) SenderWord(w int) uint64 { return cs.senders[w] }

// reset rewinds the set for a new window of the given word width.
func (cs *ColumnSet) reset(words int) {
	cs.words = words
	for i := range cs.cols {
		cs.free = append(cs.free, cs.cols[i].bits)
		cs.cols[i].bits = nil
	}
	cs.cols = cs.cols[:0]
	if cap(cs.senders) < words {
		cs.senders = make([]uint64, words)
	} else {
		cs.senders = cs.senders[:words]
		clear(cs.senders)
	}
}

// takeRow fetches a cleared bitset row from the free list (or allocates).
func (cs *ColumnSet) takeRow() []uint64 {
	if n := len(cs.free); n > 0 {
		row := cs.free[n-1]
		cs.free = cs.free[:n-1]
		if cap(row) < cs.words {
			return make([]uint64, cs.words)
		}
		row = row[:cs.words]
		clear(row)
		return row
	}
	return make([]uint64, cs.words)
}

// publish records that processor from broadcast (round, class, val) this
// window. Columns are few (one per distinct record in flight), so the
// find-or-insert is a linear scan keeping the sorted order.
func (cs *ColumnSet) publish(from ProcID, round int, class, val uint8) {
	w, bit := int(from)>>6, uint64(1)<<(uint(from)&63)
	cs.senders[w] |= bit
	i := 0
	for ; i < len(cs.cols); i++ {
		c := &cs.cols[i]
		if c.Round == round && c.Class == class && c.Val == val {
			c.bits[w] |= bit
			return
		}
		if c.Round > round || (c.Round == round &&
			(c.Class > class || (c.Class == class && c.Val > val))) {
			break
		}
	}
	row := cs.takeRow()
	row[w] |= bit
	cs.cols = append(cs.cols, VoteColumn{})
	copy(cs.cols[i+1:], cs.cols[i:])
	cs.cols[i] = VoteColumn{Round: round, Class: class, Val: val, bits: row}
}

// VotePublisher is the per-sender publishing handle handed to
// VoteBroadcaster.SendColumnar. It is passed by value and carries the
// authenticated sender identity, the columnar analogue of the System
// stamping Message.From.
type VotePublisher struct {
	cs   *ColumnSet
	from ProcID
}

// Publish records one broadcast-to-all record for this window. Within a
// window a sender must publish at most one record per (round, class), in
// ascending (round, class) order — the invariant the tally scan's
// column-order-equals-delivery-order reasoning rests on. The pending-record
// queues of core and benor satisfy it by construction.
func (p VotePublisher) Publish(round int, class, val uint8) {
	p.cs.publish(p.from, round, class, val)
}

// Tally is the aggregated view of one (round, class) group under a
// receiver's allow row: the paper's "count the votes" primitive.
type Tally struct {
	Round int
	Class uint8
	// Zeros/Ones count value-bearing records carrying that bit; Unvalued
	// counts neutral records; Total is their sum.
	Zeros, Ones, Unvalued, Total int
}

// WindowTally is the per-receiver delivery view handed to
// TallyReceiver.DeliverTally: the window's columns masked by the receiver's
// allowed-sender row. It is System-owned (or shard-owned) scratch, valid
// only for the duration of the DeliverTally call.
type WindowTally struct {
	cs       *ColumnSet
	allowAll bool
	allow    []uint64
}

// Words returns the bitset width in 64-bit words.
func (t *WindowTally) Words() int { return t.cs.words }

// Columns returns the window's columns, sorted by (Round, Class, Val).
func (t *WindowTally) Columns() []VoteColumn { return t.cs.cols }

// AllowWord returns word w of the receiver's allowed-sender mask. When the
// sender set is "all", the mask is all-ones (column bits beyond n-1 are
// never set, so the overshoot is harmless).
func (t *WindowTally) AllowWord(w int) uint64 {
	if t.allowAll {
		return ^uint64(0)
	}
	return t.allow[w]
}

// Tally aggregates the (round, class) group under the allow mask with one
// popcount per column word.
func (t *WindowTally) Tally(round int, class uint8) Tally {
	res := Tally{Round: round, Class: class}
	w := t.cs.words
	for ci := range t.cs.cols {
		c := &t.cs.cols[ci]
		if c.Round != round || c.Class != class {
			continue
		}
		n := 0
		for i := 0; i < w; i++ {
			n += bits.OnesCount64(c.bits[i] & t.AllowWord(i))
		}
		switch c.Val {
		case 0:
			res.Zeros += n
		case 1:
			res.Ones += n
		default:
			res.Unvalued += n
		}
		res.Total += n
	}
	return res
}

// VoteBroadcaster is the opt-in sending hook of the columnar kernel: a
// process that can publish its queued broadcast as columns instead of
// materializing Messages. SendColumnar consumes the same queued records
// Send would, so a process alternates freely between the two paths.
type VoteBroadcaster interface {
	Process
	SendColumnar(pub VotePublisher)
}

// TallyReceiver is the opt-in receiving hook: DeliverTally replaces the
// window's per-message Deliver calls with one call carrying the aggregated
// columns. Implementations must consume randomness and mutate state exactly
// as the equivalent message-at-a-time delivery order would (ascending
// sender, per-sender record order) — the byte-identity contract the
// property tests in internal/registry assert.
type TallyReceiver interface {
	DeliverTally(t *WindowTally, r RandSource)
}

// ColumnarPlanner is the adversary half of the opt-in: a WindowAdversary
// that can plan a window from the published columns, without the batch.
// PlansColumnar reports whether the instance currently supports it (a
// wrapper forwards its inner adversary's capability), and
// PlanDeliveryColumnar is PlanDelivery with the columns in the batch's
// stead. Scheduler.PlanSenders implementations receive a nil batch on this
// path and must not depend on it.
type ColumnarPlanner interface {
	WindowAdversary
	PlansColumnar() bool
	PlanDeliveryColumnar(s *System, cols *ColumnSet) Window
}

// SetColumnar enables or disables the columnar kernel. It is enabled by
// default (the zero System runs columnar whenever the guards allow);
// disabling forces every window onto the message-at-a-time path. Like
// SetShardWorkers, the setting is a pure performance knob — output is
// byte-identical either way — and survives Recycle.
func (s *System) SetColumnar(on bool) { s.colOff = !on }

// Columnar reports whether the columnar kernel is enabled.
func (s *System) Columnar() bool { return !s.colOff }

// columnarPlanner decides whether the next window may take the columnar
// path, returning the capable planner when so. The capability of the
// process set is cached: it is only consulted while no processor is
// corrupted, and Recycle rebuilds corrupted processors through the
// construction factory, so the process types — and hence the answer —
// never change while the guard passes.
func (s *System) columnarPlanner(adv WindowAdversary) (ColumnarPlanner, bool) {
	if s.colOff || s.OnEvent != nil || s.totalCorrupt > 0 {
		return nil, false
	}
	cp, ok := adv.(ColumnarPlanner)
	if !ok || !cp.PlansColumnar() {
		return nil, false
	}
	if s.colCap == 0 {
		s.colCap = 1
		for i := 0; i < s.n; i++ {
			if _, ok := s.procs[i].(VoteBroadcaster); !ok {
				s.colCap = -1
				break
			}
			if _, ok := s.procs[i].(TallyReceiver); !ok {
				s.colCap = -1
				break
			}
		}
	}
	if s.colCap < 0 {
		return nil, false
	}
	return cp, true
}

// ColumnarPlanned reports whether ApplyWindowWith(adv) would currently take
// the columnar fast path — the kernel is enabled, no guard vetoes it, and
// adv plans columnar windows. For CLIs reporting the effective mode and for
// tests asserting the fast path is actually exercised.
func (s *System) ColumnarPlanned(adv WindowAdversary) bool {
	_, ok := s.columnarPlanner(adv)
	return ok
}

// applyWindowColumnar runs one full acceptable window on the columnar path:
// publish columns, plan, tally-deliver, reset. The emit call of the legacy
// path is skipped because the guard guarantees OnEvent is nil.
func (s *System) applyWindowColumnar(cp ColumnarPlanner) error {
	s.columnarSend()
	w := cp.PlanDeliveryColumnar(s, &s.colSet)
	if err := s.columnarDeliver(w.Senders); err != nil {
		return err
	}
	if err := s.WindowResets(w.Resets); err != nil {
		return err
	}
	s.windows++
	return s.violation
}

// columnarSend runs the window's sending steps through SendColumnar and
// builds the per-depth sender buckets the chain-depth accounting needs.
// Exactly like the serial sender loop, every live sender costs one step
// even when it publishes nothing.
func (s *System) columnarSend() {
	s.colSet.reset(s.allowWords)
	for i := 0; i < s.n; i++ {
		if s.crashed[i] {
			continue
		}
		s.steps++
		s.procs[i].(VoteBroadcaster).SendColumnar(VotePublisher{cs: &s.colSet, from: ProcID(i)})
	}
	// Depth buckets: all of a sender's window records share Depth =
	// chainDepth[sender]+1 (chainDepth is pre-window during send), so one
	// bitset row per distinct depth value suffices for the per-receiver
	// max-depth reduction.
	s.colDepths = s.colDepths[:0]
	for i := 0; i < s.n; i++ {
		if s.colSet.senders[i>>6]&(uint64(1)<<(uint(i)&63)) == 0 {
			continue
		}
		s.depthRow(s.chainDepth[i] + 1)[i>>6] |= uint64(1) << (uint(i) & 63)
	}
}

// depthRow returns the (cleared-on-first-use) sender bitset row of depth d,
// creating its bucket if the window hasn't seen d yet. Distinct depth values
// per window are few (senders cluster at the frontier), so a linear scan
// beats a map.
func (s *System) depthRow(d int) []uint64 {
	for j, dd := range s.colDepths {
		if dd == d {
			return s.colDepthRows[j]
		}
	}
	j := len(s.colDepths)
	s.colDepths = append(s.colDepths, d)
	if j < len(s.colDepthRows) {
		row := s.colDepthRows[j]
		if cap(row) < s.allowWords {
			row = make([]uint64, s.allowWords)
		} else {
			row = row[:s.allowWords]
			clear(row)
		}
		s.colDepthRows[j] = row
		return row
	}
	row := make([]uint64, s.allowWords)
	s.colDepthRows = append(s.colDepthRows, row)
	return row
}

// columnarCount returns the message count and maximum chain depth a
// receiver with the given allow row (nil = all senders) observes this
// window: one popcount per column word, exactly the per-receiver delivered
// message count of the legacy path (every (sender, record) pair a receiver
// admits is one delivered message there, stale and duplicate records
// included).
func (s *System) columnarCount(row []uint64) (msgs int64, depth int) {
	w := s.colSet.words
	for ci := range s.colSet.cols {
		cb := s.colSet.cols[ci].bits
		if row == nil {
			for i := 0; i < w; i++ {
				msgs += int64(bits.OnesCount64(cb[i]))
			}
		} else {
			for i := 0; i < w; i++ {
				msgs += int64(bits.OnesCount64(cb[i] & row[i]))
			}
		}
	}
	for j, d := range s.colDepths {
		if d <= depth {
			continue
		}
		db := s.colDepthRows[j]
		for i := 0; i < w; i++ {
			x := db[i]
			if row != nil {
				x &= row[i]
			}
			if x != 0 {
				depth = d
				break
			}
		}
	}
	return msgs, depth
}

// columnarDeliver is the delivery half of the columnar window: validate the
// sender sets into the shared allow bitset, then hand every live receiver
// its masked tally. Receivers that would have received zero messages skip
// the DeliverTally call, matching the legacy path (which never invokes
// Deliver, and hence never refreshes decision bookkeeping, for them).
func (s *System) columnarDeliver(senders [][]ProcID) error {
	if senders != nil && len(senders) != s.n {
		return fmt.Errorf("%w: got %d sender sets for n=%d", ErrBadWindow, len(senders), s.n)
	}
	if s.shardWorkers > 1 {
		return s.columnarDeliverSharded(senders)
	}
	if err := s.validateSenders(senders); err != nil {
		return err
	}
	// The all-senders tally is shared by every allowAll receiver.
	s.colFullMsgs, s.colFullDepth = s.columnarCount(nil)
	wt := &s.colTally
	wt.cs = &s.colSet
	for i := 0; i < s.n; i++ {
		if s.crashed[i] {
			continue
		}
		var msgs int64
		var depth int
		if s.allowAll[i] {
			msgs, depth = s.colFullMsgs, s.colFullDepth
			wt.allowAll, wt.allow = true, nil
		} else {
			row := s.allowedRow(i)
			msgs, depth = s.columnarCount(row)
			wt.allowAll, wt.allow = false, row
		}
		if msgs == 0 {
			continue
		}
		s.steps += msgs
		if s.chainDepth[i] < depth {
			s.chainDepth[i] = depth
		}
		s.procs[i].(TallyReceiver).DeliverTally(wt, s.rngs[i])
		s.recordOutputs(ProcID(i))
	}
	return nil
}

// columnarDeliverSharded runs the tally loop across the shard pool:
// validation and the merge reuse the sharded core's machinery unchanged
// (ascending shard order, first error/violation wins, panics re-raised at
// the merge), and each shard tallies its receiver range against its own
// WindowTally scratch.
func (s *System) columnarDeliverSharded(senders [][]ProcID) error {
	pool := s.ensureShardPool()
	s.resetShards()
	for i := range s.allowAll {
		s.allowAll[i] = true
	}
	if senders != nil {
		s.shardSenders = senders
		pool.run(s, phaseValidate, len(s.shards))
		s.shardSenders = nil
		for i := range s.shards {
			sh := &s.shards[i]
			if sh.panicked {
				panic(sh.panicVal)
			}
			if sh.err != nil {
				return sh.err
			}
		}
	}
	// Precompute the shared all-senders tally serially: the shards read it.
	s.colFullMsgs, s.colFullDepth = s.columnarCount(nil)
	pool.run(s, phaseTally, len(s.shards))
	anyDecided := false
	for i := range s.shards {
		sh := &s.shards[i]
		s.steps += sh.steps
		if sh.decided {
			anyDecided = true
		}
		if sh.violation != nil && s.violation == nil {
			s.violation = sh.violation
		}
		if sh.panicked {
			if anyDecided && s.firstDecision < 0 {
				s.firstDecision = s.windows
			}
			panic(sh.panicVal)
		}
	}
	if anyDecided && s.firstDecision < 0 {
		s.firstDecision = s.windows
	}
	return nil
}

// shardTallyRange is the phaseTally body: the serial tally loop restricted
// to the shard's receiver range, with step counts and decision flags routed
// into shard scratch for the ascending merge. OnEvent is nil on the
// columnar path, so no events are buffered.
func (s *System) shardTallyRange(sh *windowShard) {
	wt := &sh.tally
	wt.cs = &s.colSet
	for i := sh.lo; i < sh.hi; i++ {
		if s.crashed[i] {
			continue
		}
		var msgs int64
		var depth int
		if s.allowAll[i] {
			msgs, depth = s.colFullMsgs, s.colFullDepth
			wt.allowAll, wt.allow = true, nil
		} else {
			row := s.allowedRow(i)
			msgs, depth = s.columnarCount(row)
			wt.allowAll, wt.allow = false, row
		}
		if msgs == 0 {
			continue
		}
		sh.steps += msgs
		if s.chainDepth[i] < depth {
			s.chainDepth[i] = depth
		}
		s.procs[i].(TallyReceiver).DeliverTally(wt, s.rngs[i])
		s.shardRecordOutputs(sh, ProcID(i))
	}
}
