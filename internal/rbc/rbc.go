// Package rbc implements Bracha's asynchronous reliable broadcast primitive
// (PODC 1984), tolerating t < n/3 Byzantine processors.
//
// For each broadcast instance (identified by a Tag: the designated sender
// plus a label), the protocol is:
//
//	sender:   send INIT(v) to all.
//	on INIT(v) from the tag's sender (first one only): send ECHO(v) to all.
//	on ECHO(v) from ceil((n+t+1)/2) distinct processors: send READY(v).
//	on READY(v) from t+1 distinct processors: send READY(v) (if not yet).
//	on READY(v) from 2t+1 distinct processors: accept v.
//
// Guarantees with at most t Byzantine processors: if the sender is honest,
// every honest processor eventually accepts its value (vt); no two honest
// processors accept different values for the same tag (consistency); if any
// honest processor accepts, all honest processors eventually accept
// (totality).
//
// The Engine is a protocol component embedded into a sim.Process: Handle
// consumes incoming messages and reports newly accepted broadcasts; Flush
// drains the outgoing queue into the host's sending step.
package rbc

import (
	"fmt"

	"asyncagree/internal/sim"
)

// Tag identifies a broadcast instance: the designated sender, a
// caller-chosen label, and optional structured (round, step) coordinates.
// Protocols that advance through unboundedly many rounds put the round in
// the integer fields and keep Label as a constant instance prefix — minting
// a fresh label string per round ("r3s1") works too, but costs a string
// allocation per round, which is what kept the Bracha window loop from
// being allocation-free at steady state.
type Tag struct {
	Sender      sim.ProcID
	Label       string
	Round, Step int
}

// Kind enumerates the three message types.
type Kind int

const (
	// KindInit is the sender's initial message.
	KindInit Kind = iota + 1
	// KindEcho is the first-stage amplification.
	KindEcho
	// KindReady is the second-stage amplification.
	KindReady
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindInit:
		return "INIT"
	case KindEcho:
		return "ECHO"
	case KindReady:
		return "READY"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Msg is the wire payload of the reliable broadcast protocol. Value must be
// a comparable type (it is used as a map key to count per-value thresholds).
type Msg struct {
	T     Tag
	Kind  Kind
	Value any
}

// Accepted reports one completed broadcast.
type Accepted struct {
	T     Tag
	Value any
}

// Engine runs all reliable-broadcast instances for one host processor.
//
// An Engine may be scoped to a subset of the system's processors (see
// NewScopedEngine): thresholds are relative to the member count and
// broadcasts go only to members. Scoped engines are how committees run the
// slow protocol internally in the Kapron-style algorithm.
type Engine struct {
	self sim.ProcID
	n, t int

	// members lists the participating processors, ascending; nil means the
	// full system 0..n-1. isMember gates incoming traffic.
	members  []sim.ProcID
	isMember map[sim.ProcID]bool

	instances map[Tag]*instance
	outbox    []sim.Message

	// setWords sizes the sender-set bitsets: enough words to index the
	// highest participating ProcID (member IDs live in the host system's ID
	// space, which for scoped engines is wider than the member count).
	setWords int

	// Recycling pools (see sim.PayloadReclaimer and DESIGN.md §2a): msgPool
	// holds the heap-boxed *Msg payloads of dead broadcasts, instPool and
	// setPool the instance records and per-value sender sets released by
	// Forget/Reset. In step mode the pools stay empty (nothing is reclaimed)
	// and every broadcast boxes fresh, which is always safe.
	msgPool  []*Msg
	instPool []*instance
	setPool  []*senderSet

	// acceptBuf backs Handle's zero-or-one-element result slice, so an
	// acceptance does not allocate on the delivery hot path.
	acceptBuf [1]Accepted
}

// senderSet counts distinct processors as a fixed-size bitset. A pooled set
// never grows after construction (unlike a map, whose buckets re-allocate as
// a fresh set fills), which is what keeps the Bracha window loop
// allocation-free at steady state.
type senderSet struct {
	bits  []uint64
	count int
}

func (s *senderSet) has(q sim.ProcID) bool {
	return s.bits[int(q)>>6]&(uint64(1)<<(uint(q)&63)) != 0
}

func (s *senderSet) add(q sim.ProcID) {
	s.bits[int(q)>>6] |= uint64(1) << (uint(q) & 63)
	s.count++
}

func (s *senderSet) clear() {
	clear(s.bits)
	s.count = 0
}

type instance struct {
	sentEcho  bool
	sentReady bool
	accepted  bool
	// echoes/readys count distinct processors per value.
	echoes map[any]*senderSet
	readys map[any]*senderSet
}

// NewEngine returns an Engine for host processor self in a system of n
// processors tolerating t Byzantine faults. It returns an error unless
// 0 <= t and n > 3t.
func NewEngine(self sim.ProcID, n, t int) (*Engine, error) {
	if t < 0 || n <= 3*t {
		return nil, fmt.Errorf("rbc: need n > 3t, got n=%d t=%d", n, t)
	}
	return &Engine{
		self: self, n: n, t: t,
		setWords:  (n + 63) / 64,
		instances: make(map[Tag]*instance),
	}, nil
}

// NewScopedEngine returns an Engine whose broadcast group is the given
// member list (which must contain self), tolerating t Byzantine members.
// It returns an error unless len(members) > 3t.
func NewScopedEngine(self sim.ProcID, members []sim.ProcID, t int) (*Engine, error) {
	n := len(members)
	if t < 0 || n <= 3*t {
		return nil, fmt.Errorf("rbc: need |members| > 3t, got %d members, t=%d", n, t)
	}
	isMember := make(map[sim.ProcID]bool, n)
	maxID := self
	for _, m := range members {
		isMember[m] = true
		if m > maxID {
			maxID = m
		}
	}
	if !isMember[self] {
		return nil, fmt.Errorf("rbc: self %d not in member list", self)
	}
	return &Engine{
		self:      self,
		n:         n,
		t:         t,
		setWords:  (int(maxID) + 64) / 64,
		members:   append([]sim.ProcID(nil), members...),
		isMember:  isMember,
		instances: make(map[Tag]*instance),
	}, nil
}

// EchoThreshold returns the echo count required to send READY:
// ceil((n+t+1)/2).
func (e *Engine) EchoThreshold() int { return (e.n + e.t + 2) / 2 }

// ReadyAmplify returns the ready count that triggers READY amplification.
func (e *Engine) ReadyAmplify() int { return e.t + 1 }

// AcceptThreshold returns the ready count required to accept.
func (e *Engine) AcceptThreshold() int { return 2*e.t + 1 }

func (e *Engine) inst(t Tag) *instance {
	in := e.instances[t]
	if in == nil {
		if n := len(e.instPool); n > 0 {
			in = e.instPool[n-1]
			e.instPool = e.instPool[:n-1]
		} else {
			in = &instance{
				echoes: make(map[any]*senderSet),
				readys: make(map[any]*senderSet),
			}
		}
		e.instances[t] = in
	}
	return in
}

// releaseInstance returns an instance and its sender sets to the pools.
func (e *Engine) releaseInstance(in *instance) {
	for _, set := range in.echoes {
		set.clear()
		e.setPool = append(e.setPool, set)
	}
	for _, set := range in.readys {
		set.clear()
		e.setPool = append(e.setPool, set)
	}
	clear(in.echoes)
	clear(in.readys)
	in.sentEcho, in.sentReady, in.accepted = false, false, false
	e.instPool = append(e.instPool, in)
}

// takeSet fetches a cleared sender set from the pool (or allocates one).
func (e *Engine) takeSet() *senderSet {
	if n := len(e.setPool); n > 0 {
		set := e.setPool[n-1]
		e.setPool = e.setPool[:n-1]
		return set
	}
	return &senderSet{bits: make([]uint64, e.setWords)}
}

// Broadcast starts a reliable broadcast with this processor as the sender.
func (e *Engine) Broadcast(label string, value any) {
	e.sendAll(Msg{T: Tag{Sender: e.self, Label: label}, Kind: KindInit, Value: value})
}

// BroadcastAt starts a reliable broadcast tagged with structured protocol
// coordinates (see Tag): label names the protocol instance, (round, step)
// the position within it.
func (e *Engine) BroadcastAt(label string, round, step int, value any) {
	e.sendAll(Msg{
		T:     Tag{Sender: e.self, Label: label, Round: round, Step: step},
		Kind:  KindInit,
		Value: value,
	})
}

// sendAll queues m to every member. All copies share one pooled *Msg box
// (boxing the Msg value once per copy was the Bracha benchmark's single
// largest allocation source); the host hands dead boxes back through
// ReclaimPayload.
func (e *Engine) sendAll(m Msg) {
	box := e.takeMsg()
	*box = m
	var payload any = box
	if e.members != nil {
		for _, q := range e.members {
			e.outbox = append(e.outbox, sim.Message{From: e.self, To: q, Payload: payload})
		}
		return
	}
	for q := 0; q < e.n; q++ {
		e.outbox = append(e.outbox, sim.Message{From: e.self, To: sim.ProcID(q), Payload: payload})
	}
}

// takeMsg fetches a payload box from the pool (or allocates one).
func (e *Engine) takeMsg() *Msg {
	if n := len(e.msgPool); n > 0 {
		m := e.msgPool[n-1]
		e.msgPool = e.msgPool[:n-1]
		return m
	}
	return new(Msg)
}

// ReclaimPayload returns a dead broadcast's payload box to the pool. Hosts
// implementing sim.PayloadReclaimer forward the System's callbacks here;
// payload types the engine does not own are ignored, so hosts mixing RBC
// traffic with their own payloads can forward everything.
func (e *Engine) ReclaimPayload(payload any) {
	if m, ok := payload.(*Msg); ok {
		e.msgPool = append(e.msgPool, m)
	}
}

// reclaimOutbox returns the payload boxes of queued-but-unsent messages to
// the pool and truncates the outbox. Those boxes were never exposed outside
// the engine, so reclaiming them immediately is safe. Copies of one
// broadcast are consecutive and share a box, hence the dedup.
func (e *Engine) reclaimOutbox() {
	var last any
	for i := range e.outbox {
		if pl := e.outbox[i].Payload; pl != last {
			last = pl
			if m, ok := pl.(*Msg); ok {
				e.msgPool = append(e.msgPool, m)
			}
		}
	}
	e.outbox = e.outbox[:0]
}

// Flush drains the outgoing message queue; the host's Send step forwards
// these. The returned slice is valid only until the next Handle/Broadcast
// (the outbox capacity is recycled), matching the sim.Process Send contract
// hosts forward it under.
func (e *Engine) Flush() []sim.Message {
	out := e.outbox
	e.outbox = e.outbox[:0]
	return out
}

// PendingOut reports whether messages are queued (hosts use it for their
// dirty-tracking).
func (e *Engine) PendingOut() bool { return len(e.outbox) > 0 }

// Handle processes one incoming message and returns newly accepted
// broadcasts (zero or one — the slice form simplifies hosts; the slice is
// backed by a buffer reused on the next Handle call, so consume it before
// handling another message). Non-RBC
// payloads are ignored. Both payload forms are accepted: the pooled *Msg
// boxes engines send, and plain Msg values (hand-built Byzantine traffic,
// tests); the contents are copied out immediately, so a box may be
// reclaimed and overwritten after the window that delivered it.
func (e *Engine) Handle(m sim.Message) []Accepted {
	var msg Msg
	switch pm := m.Payload.(type) {
	case *Msg:
		msg = *pm
	case Msg:
		msg = pm
	default:
		return nil
	}
	if e.isMember != nil && !e.isMember[m.From] {
		return nil // traffic from outside the scope does not count
	}
	in := e.inst(msg.T)
	switch msg.Kind {
	case KindInit:
		// Only the tag's designated sender may INIT, and only the first
		// INIT counts (a Byzantine sender gains nothing by re-initiating).
		if m.From != msg.T.Sender || in.sentEcho {
			return nil
		}
		in.sentEcho = true
		e.sendAll(Msg{T: msg.T, Kind: KindEcho, Value: msg.Value})
	case KindEcho:
		set := in.echoes[msg.Value]
		if set == nil {
			set = e.takeSet()
			in.echoes[msg.Value] = set
		}
		if set.has(m.From) {
			return nil
		}
		set.add(m.From)
		if set.count >= e.EchoThreshold() && !in.sentReady {
			in.sentReady = true
			e.sendAll(Msg{T: msg.T, Kind: KindReady, Value: msg.Value})
		}
	case KindReady:
		set := in.readys[msg.Value]
		if set == nil {
			set = e.takeSet()
			in.readys[msg.Value] = set
		}
		if set.has(m.From) {
			return nil
		}
		set.add(m.From)
		if set.count >= e.ReadyAmplify() && !in.sentReady {
			in.sentReady = true
			e.sendAll(Msg{T: msg.T, Kind: KindReady, Value: msg.Value})
		}
		if set.count >= e.AcceptThreshold() && !in.accepted {
			in.accepted = true
			e.acceptBuf[0] = Accepted{T: msg.T, Value: msg.Value}
			return e.acceptBuf[:]
		}
	}
	return nil
}

// Reset erases all instance state (for hosts subjected to resetting
// failures and for trial recycling). The instance map and outbox keep their
// capacity, and instances, sender sets, and the payload boxes of
// queued-but-unsent messages return to their pools.
func (e *Engine) Reset() {
	for _, in := range e.instances {
		e.releaseInstance(in)
	}
	clear(e.instances)
	e.reclaimOutbox()
}

// InstanceCount returns the number of live broadcast instances (for memory
// accounting in long executions).
func (e *Engine) InstanceCount() int { return len(e.instances) }

// Forget discards instances whose label matches drop, bounding memory in
// long executions (hosts call it when a round's broadcasts can no longer
// matter).
func (e *Engine) Forget(drop func(Tag) bool) {
	for t, in := range e.instances {
		if drop(t) {
			e.releaseInstance(in)
			delete(e.instances, t)
		}
	}
}
