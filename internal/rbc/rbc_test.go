package rbc

import (
	"testing"
	"testing/quick"

	"asyncagree/internal/sim"
)

// harness wires k engines together directly (no sim.System needed at this
// layer): messages are routed synchronously until quiescence.
type harness struct {
	t       *testing.T
	engines []*Engine
	// drop[from][to] suppresses delivery (models silent/partitioned pairs).
	drop     map[[2]sim.ProcID]bool
	accepted map[sim.ProcID][]Accepted
}

func newHarness(t *testing.T, n, tt int) *harness {
	t.Helper()
	h := &harness{
		t:        t,
		drop:     make(map[[2]sim.ProcID]bool),
		accepted: make(map[sim.ProcID][]Accepted),
	}
	for i := 0; i < n; i++ {
		e, err := NewEngine(sim.ProcID(i), n, tt)
		if err != nil {
			t.Fatal(err)
		}
		h.engines = append(h.engines, e)
	}
	return h
}

// pump routes queued messages until no engine has pending output.
func (h *harness) pump() {
	for {
		var queue []sim.Message
		for _, e := range h.engines {
			queue = append(queue, e.Flush()...)
		}
		if len(queue) == 0 {
			return
		}
		for _, m := range queue {
			if h.drop[[2]sim.ProcID{m.From, m.To}] {
				continue
			}
			for _, a := range h.engines[m.To].Handle(m) {
				h.accepted[m.To] = append(h.accepted[m.To], a)
			}
		}
	}
}

func TestNewEngineValidation(t *testing.T) {
	cases := []struct {
		n, t    int
		wantErr bool
	}{
		{4, 1, false},
		{7, 2, false},
		{3, 1, true}, // n <= 3t
		{6, 2, true},
		{1, 0, false},
		{4, -1, true},
	}
	for _, c := range cases {
		_, err := NewEngine(0, c.n, c.t)
		if (err != nil) != c.wantErr {
			t.Errorf("NewEngine(n=%d, t=%d) err = %v, wantErr %v", c.n, c.t, err, c.wantErr)
		}
	}
}

func TestHonestBroadcastAcceptedByAll(t *testing.T) {
	h := newHarness(t, 4, 1)
	h.engines[0].Broadcast("tag", "hello")
	h.pump()
	for i := 0; i < 4; i++ {
		acc := h.accepted[sim.ProcID(i)]
		if len(acc) != 1 {
			t.Fatalf("processor %d accepted %d broadcasts, want 1", i, len(acc))
		}
		if acc[0].Value != "hello" || acc[0].T.Sender != 0 || acc[0].T.Label != "tag" {
			t.Fatalf("processor %d accepted %+v", i, acc[0])
		}
	}
}

func TestAcceptDespiteSilentFaults(t *testing.T) {
	// With t=1 silent processor (id 3), the remaining 3 >= echo threshold
	// ceil((4+1+1)/2)=3 still accept.
	h := newHarness(t, 4, 1)
	for q := 0; q < 4; q++ {
		h.drop[[2]sim.ProcID{3, sim.ProcID(q)}] = true // 3 sends nothing
	}
	h.engines[0].Broadcast("tag", 42)
	h.pump()
	for i := 0; i < 3; i++ {
		if len(h.accepted[sim.ProcID(i)]) != 1 {
			t.Fatalf("processor %d accepted %d, want 1", i, len(h.accepted[sim.ProcID(i)]))
		}
	}
}

func TestConsistencyUnderEquivocation(t *testing.T) {
	// A Byzantine sender INITs value "a" to half and "b" to the other half.
	// No two honest processors may accept different values.
	for n, tt := 7, 2; n <= 13; n, tt = n+3, tt+1 {
		h := newHarness(t, n, tt)
		tag := Tag{Sender: 0, Label: "eq"}
		for q := 1; q < n; q++ {
			v := "a"
			if q > n/2 {
				v = "b"
			}
			for _, a := range h.engines[q].Handle(sim.Message{
				From: 0, To: sim.ProcID(q), Payload: Msg{T: tag, Kind: KindInit, Value: v},
			}) {
				h.accepted[sim.ProcID(q)] = append(h.accepted[sim.ProcID(q)], a)
			}
		}
		h.pump()
		values := map[any]bool{}
		for i := 1; i < n; i++ {
			for _, a := range h.accepted[sim.ProcID(i)] {
				values[a.Value] = true
			}
		}
		if len(values) > 1 {
			t.Fatalf("n=%d: honest processors accepted conflicting values %v", n, values)
		}
	}
}

func TestNoAcceptWithoutInit(t *testing.T) {
	// t Byzantine processors alone cannot forge an acceptance: 2t+1 READYs
	// are needed but only t processors will lie.
	h := newHarness(t, 7, 2)
	tag := Tag{Sender: 0, Label: "forged"}
	// Byzantine 5 and 6 send READY("evil") to everyone; no INIT ever.
	for _, byz := range []sim.ProcID{5, 6} {
		for q := 0; q < 7; q++ {
			for _, a := range h.engines[q].Handle(sim.Message{
				From: byz, To: sim.ProcID(q), Payload: Msg{T: tag, Kind: KindReady, Value: "evil"},
			}) {
				h.accepted[sim.ProcID(q)] = append(h.accepted[sim.ProcID(q)], a)
			}
		}
	}
	h.pump()
	for i := 0; i < 5; i++ {
		if len(h.accepted[sim.ProcID(i)]) != 0 {
			t.Fatalf("honest processor %d accepted a forged broadcast", i)
		}
	}
}

func TestDuplicateMessagesIgnored(t *testing.T) {
	h := newHarness(t, 4, 1)
	tag := Tag{Sender: 1, Label: "dup"}
	e := h.engines[0]
	// Deliver the same ECHO from the same sender many times: the count must
	// not reach the threshold (3) from one echoing processor.
	for i := 0; i < 10; i++ {
		e.Handle(sim.Message{From: 2, To: 0, Payload: Msg{T: tag, Kind: KindEcho, Value: "v"}})
	}
	if e.PendingOut() {
		t.Fatal("duplicate echoes triggered READY")
	}
}

func TestSecondInitIgnored(t *testing.T) {
	h := newHarness(t, 4, 1)
	tag := Tag{Sender: 1, Label: "x"}
	e := h.engines[0]
	e.Handle(sim.Message{From: 1, To: 0, Payload: Msg{T: tag, Kind: KindInit, Value: "first"}})
	e.Flush()
	e.Handle(sim.Message{From: 1, To: 0, Payload: Msg{T: tag, Kind: KindInit, Value: "second"}})
	if e.PendingOut() {
		t.Fatal("second INIT triggered a second ECHO")
	}
}

func TestInitFromWrongSenderIgnored(t *testing.T) {
	h := newHarness(t, 4, 1)
	tag := Tag{Sender: 1, Label: "x"}
	e := h.engines[0]
	e.Handle(sim.Message{From: 2, To: 0, Payload: Msg{T: tag, Kind: KindInit, Value: "forged"}})
	if e.PendingOut() {
		t.Fatal("INIT from non-designated sender triggered ECHO")
	}
}

func TestReadyAmplification(t *testing.T) {
	// t+1 READYs make an engine send READY even without enough echoes
	// (totality mechanism).
	h := newHarness(t, 7, 2)
	tag := Tag{Sender: 1, Label: "amp"}
	e := h.engines[0]
	for _, from := range []sim.ProcID{2, 3, 4} { // t+1 = 3
		e.Handle(sim.Message{From: from, To: 0, Payload: Msg{T: tag, Kind: KindReady, Value: "v"}})
	}
	out := e.Flush()
	if len(out) != 7 {
		t.Fatalf("amplified READY to %d recipients, want 7", len(out))
	}
	for _, m := range out {
		rm, ok := m.Payload.(*Msg) // engines send pooled payload boxes
		if !ok || rm.Kind != KindReady || rm.Value != "v" {
			t.Fatalf("unexpected amplification output %+v", m.Payload)
		}
	}
}

func TestForget(t *testing.T) {
	h := newHarness(t, 4, 1)
	h.engines[0].Broadcast("keep", 1)
	h.engines[0].Broadcast("drop", 2)
	h.pump()
	e := h.engines[1]
	before := e.InstanceCount()
	if before == 0 {
		t.Fatal("no instances created")
	}
	e.Forget(func(tag Tag) bool { return tag.Label == "drop" })
	if e.InstanceCount() != before-1 {
		t.Fatalf("Forget removed %d instances, want 1", before-e.InstanceCount())
	}
}

func TestThresholds(t *testing.T) {
	e, err := NewEngine(0, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := e.EchoThreshold(), 7; got != want { // ceil((10+3+1)/2)=7
		t.Errorf("EchoThreshold = %d, want %d", got, want)
	}
	if got, want := e.ReadyAmplify(), 4; got != want {
		t.Errorf("ReadyAmplify = %d, want %d", got, want)
	}
	if got, want := e.AcceptThreshold(), 7; got != want {
		t.Errorf("AcceptThreshold = %d, want %d", got, want)
	}
}

func TestConsistencyProperty(t *testing.T) {
	// Property: under arbitrary per-pair message drops of messages from up
	// to t processors, honest acceptances never conflict.
	check := func(dropMask uint16, splitAt uint8) bool {
		const n, tt = 7, 2
		h := newHarness(t, n, tt)
		// Processors 5 and 6 are "faulty": drop an arbitrary subset of
		// their outgoing links (crash/partial-silence behaviours).
		for q := 0; q < n; q++ {
			if dropMask&(1<<q) != 0 {
				h.drop[[2]sim.ProcID{5, sim.ProcID(q)}] = true
			}
			if dropMask&(1<<(q+8)) != 0 {
				h.drop[[2]sim.ProcID{6, sim.ProcID(q)}] = true
			}
		}
		// Byzantine-style split INIT from processor 0 at an arbitrary cut.
		cut := int(splitAt) % n
		tag := Tag{Sender: 0, Label: "p"}
		for q := 1; q < n; q++ {
			v := "a"
			if q > cut {
				v = "b"
			}
			for _, a := range h.engines[q].Handle(sim.Message{
				From: 0, To: sim.ProcID(q), Payload: Msg{T: tag, Kind: KindInit, Value: v},
			}) {
				h.accepted[sim.ProcID(q)] = append(h.accepted[sim.ProcID(q)], a)
			}
		}
		h.pump()
		values := map[any]bool{}
		for i := 1; i < 5; i++ { // honest processors
			for _, a := range h.accepted[sim.ProcID(i)] {
				values[a.Value] = true
			}
		}
		return len(values) <= 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTotalityProperty(t *testing.T) {
	// Totality: if any honest processor accepts a broadcast, every honest
	// processor eventually accepts it — even when the sender goes silent
	// right after a partial INIT wave, because READY amplification carries
	// the value the rest of the way.
	check := func(initMask uint8) bool {
		const n, tt = 7, 2
		h := newHarness(t, n, tt)
		tag := Tag{Sender: 0, Label: "tot"}
		// Sender 0 INITs only to an arbitrary subset, then goes silent.
		for q := 1; q < n; q++ {
			if initMask&(1<<q) == 0 {
				continue
			}
			for _, a := range h.engines[q].Handle(sim.Message{
				From: 0, To: sim.ProcID(q), Payload: Msg{T: tag, Kind: KindInit, Value: "v"},
			}) {
				h.accepted[sim.ProcID(q)] = append(h.accepted[sim.ProcID(q)], a)
			}
		}
		h.pump()
		anyAccepted, allAccepted := false, true
		for q := 1; q < n; q++ {
			if len(h.accepted[sim.ProcID(q)]) > 0 {
				anyAccepted = true
			} else {
				allAccepted = false
			}
		}
		// Totality: any => all (among the honest processors 1..n-1).
		return !anyAccepted || allAccepted
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
