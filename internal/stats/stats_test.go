package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Count != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("%+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2)) > 1e-12 {
		t.Fatalf("Std = %v", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.Count != 0 {
		t.Fatalf("%+v", s)
	}
}

func TestSummarizeInts(t *testing.T) {
	s := SummarizeInts([]int{10, 20})
	if s.Mean != 15 || s.Count != 2 {
		t.Fatalf("%+v", s)
	}
}

// TestSummarizeOffsetVariance is the Welford regression test: the naive
// sumSq/n − mean² formula loses every significant digit of the variance
// when the sample rides a large common offset (here x + 1e9 with unit-scale
// spread — sumSq ≈ 1e18 swamps float64's 15–16 digits), historically
// reporting Std 0 or garbage. Welford's update subtracts the running mean
// before squaring, so the offset cancels exactly.
func TestSummarizeOffsetVariance(t *testing.T) {
	base := []float64{1, 2, 3, 4, 5}
	want := Summarize(base).Std // sqrt(2), well-conditioned either way
	const offset = 1e9
	shifted := make([]float64, len(base))
	for i, x := range base {
		shifted[i] = x + offset
	}
	s := Summarize(shifted)
	if math.Abs(s.Std-want) > 1e-6 {
		t.Fatalf("Std of offset sample = %v, want %v (catastrophic cancellation)", s.Std, want)
	}
	if s.Mean != offset+3 {
		t.Fatalf("Mean = %v", s.Mean)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{0, 10, 20, 30, 40}
	cases := []struct {
		q, want float64
	}{
		{0, 0}, {1, 40}, {0.5, 20}, {0.25, 10}, {0.125, 5},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestFitExponentialRecoversParameters(t *testing.T) {
	// y = 2 * exp(0.3 x), exactly.
	var xs, ys []float64
	for x := 1.0; x <= 10; x++ {
		xs = append(xs, x)
		ys = append(ys, 2*math.Exp(0.3*x))
	}
	fit, ok := FitExponential(xs, ys)
	if !ok {
		t.Fatal("fit failed")
	}
	if math.Abs(fit.Alpha-0.3) > 1e-9 || math.Abs(fit.C-2) > 1e-9 {
		t.Fatalf("fit = %+v", fit)
	}
	if fit.R2 < 0.999999 {
		t.Fatalf("R2 = %v", fit.R2)
	}
}

func TestFitExponentialSkipsNonPositive(t *testing.T) {
	fit, ok := FitExponential([]float64{1, 2, 3, 4}, []float64{0, math.E, math.E * math.E, math.E * math.E * math.E})
	if !ok {
		t.Fatal("fit failed")
	}
	if math.Abs(fit.Alpha-1) > 1e-9 {
		t.Fatalf("Alpha = %v", fit.Alpha)
	}
}

func TestFitExponentialTooFewPoints(t *testing.T) {
	if _, ok := FitExponential([]float64{1}, []float64{2}); ok {
		t.Fatal("fit with one point succeeded")
	}
	if _, ok := FitExponential([]float64{1, 1}, []float64{2, 3}); ok {
		t.Fatal("fit with degenerate x succeeded")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	check := func(raw []float64, q1, q2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		sorted := append([]float64(nil), raw...)
		for i := range sorted {
			sorted[i] = math.Mod(math.Abs(sorted[i]), 1000)
			if math.IsNaN(sorted[i]) {
				sorted[i] = 0
			}
		}
		sortFloats(sorted)
		a := math.Mod(math.Abs(q1), 1)
		b := math.Mod(math.Abs(q2), 1)
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return Quantile(sorted, a) <= Quantile(sorted, b)+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j-1] > xs[j]; j-- {
			xs[j-1], xs[j] = xs[j], xs[j-1]
		}
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("n", "mean", "note")
	tbl.AddRow(8, 123.456, "ok")
	tbl.AddRow(16, 0.000012, "tiny")
	out := tbl.String()
	if !strings.Contains(out, "n") || !strings.Contains(out, "123.456") {
		t.Fatalf("table output missing cells:\n%s", out)
	}
	if !strings.Contains(out, "1.200e-05") {
		t.Fatalf("scientific formatting missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines (header, sep, 2 rows), got %d:\n%s", len(lines), out)
	}
}
