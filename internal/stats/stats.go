// Package stats provides the small statistical toolkit used by the
// experiment harness and the sweep engine:
//
//   - Summarize/SummarizeInts/Quantile: per-batch summaries (mean, median,
//     min/max, quantiles) of trial measurements;
//   - FitExponential: least-squares fits of y ~ C·exp(αx), the shape the
//     Theorem 5/17 running-time experiments (E2, E7, E8) test against the
//     paper's exponential lower bounds;
//   - Table: deterministic aligned text rendering shared by every
//     experiment table in EXPERIMENTS.md and by registry.Sweep.Table.
//
// Everything here is a pure function of its inputs (Table rows render in
// insertion order), keeping experiment output byte-identical run to run.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"asyncagree/internal/stream"
)

// Summary describes a sample of float64 observations.
type Summary struct {
	Count  int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
	P90    float64
}

// Summarize computes a Summary. An empty sample yields a zero Summary.
//
// Mean and Std accumulate online (stream.Summary) in input order: the mean
// is an exact sum-over-count and the variance uses Welford's update rather
// than the catastrophically cancelling sumSq/n − mean² formula, so samples
// with a large common offset (e.g. x + 1e9) keep their full precision.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	var acc stream.Summary
	for _, x := range xs {
		acc.Add(x)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Summary{
		Count:  acc.Count(),
		Mean:   acc.Mean(),
		Std:    acc.Std(),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Median: Quantile(sorted, 0.5),
		P90:    Quantile(sorted, 0.9),
	}
}

// FromStream assembles a Summary from the streaming accumulators of one
// sample: the online Summary for count/mean/std/min/max and the quantile
// sketch for median/P90. It is the bridge the streaming trial reducers use
// to keep rendering the same tables as the batch path; with the sample
// within the sketch capacity and integer-valued observations every field is
// identical to Summarize over the collected slice.
func FromStream(acc *stream.Summary, quantiles *stream.Reservoir) Summary {
	return Summary{
		Count:  acc.Count(),
		Mean:   acc.Mean(),
		Std:    acc.Std(),
		Min:    acc.Min(),
		Max:    acc.Max(),
		Median: quantiles.Quantile(0.5),
		P90:    quantiles.Quantile(0.9),
	}
}

// SummarizeInts converts and summarizes integer observations.
func SummarizeInts(xs []int) Summary {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Summarize(fs)
}

// Quantile returns the q-quantile (0 <= q <= 1) of an ascending-sorted
// sample using linear interpolation.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// ExpFit is the result of fitting y ~ C * exp(alpha * x).
type ExpFit struct {
	// Alpha is the growth exponent, C the prefactor.
	Alpha, C float64
	// R2 is the coefficient of determination of the underlying linear fit
	// of ln(y) against x.
	R2 float64
}

// FitExponential fits y = C*exp(alpha*x) by least squares on (x, ln y).
// Non-positive ys are skipped. It returns ok=false with fewer than two
// usable points.
func FitExponential(xs, ys []float64) (ExpFit, bool) {
	var px, py []float64
	for i := range xs {
		if i < len(ys) && ys[i] > 0 {
			px = append(px, xs[i])
			py = append(py, math.Log(ys[i]))
		}
	}
	slope, intercept, r2, ok := linearFit(px, py)
	if !ok {
		return ExpFit{}, false
	}
	return ExpFit{Alpha: slope, C: math.Exp(intercept), R2: r2}, true
}

// linearFit performs ordinary least squares y = slope*x + intercept.
func linearFit(xs, ys []float64) (slope, intercept, r2 float64, ok bool) {
	n := float64(len(xs))
	if len(xs) < 2 || len(xs) != len(ys) {
		return 0, 0, 0, false
	}
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	det := n*sxx - sx*sx
	if det == 0 {
		return 0, 0, 0, false
	}
	slope = (n*sxy - sx*sy) / det
	intercept = (sy - slope*sx) / n
	ssTot := syy - sy*sy/n
	ssRes := 0.0
	for i := range xs {
		d := ys[i] - (slope*xs[i] + intercept)
		ssRes += d * d
	}
	if ssTot <= 0 {
		r2 = 1
	} else {
		r2 = 1 - ssRes/ssTot
	}
	return slope, intercept, r2, true
}

// Table renders aligned text tables for experiment output.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends a row; cells are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 0.01 && math.Abs(v) < 1e6:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.3e", v)
	}
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) {
				for pad := len(cell); pad < widths[i]; pad++ {
					b.WriteByte(' ')
				}
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
