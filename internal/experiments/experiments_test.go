package experiments

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	exps := All()
	if len(exps) != 16 {
		t.Fatalf("registry has %d experiments, want 16", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if !strings.HasPrefix(e.ID, "E") {
			t.Fatalf("bad id %q", e.ID)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Title == "" {
			t.Fatalf("experiment %q incomplete", e.ID)
		}
	}
}

func TestGet(t *testing.T) {
	e, err := Get("E4")
	if err != nil || e.ID != "E4" {
		t.Fatalf("Get(E4) = %+v, %v", e, err)
	}
	if _, err := Get("E99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

// TestAllExperimentsQuick runs every experiment at quick scale and requires
// the paper's qualitative claims to hold. This is the repository's
// end-to-end reproduction check.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are expensive")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res, err := e.Run(ScaleQuick)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if res.ID != e.ID {
				t.Fatalf("result id %q != %q", res.ID, e.ID)
			}
			if res.Table == nil || res.Table.String() == "" {
				t.Fatalf("%s produced no table", e.ID)
			}
			if !res.Pass {
				t.Fatalf("%s FAILED the paper claim:\n%s\nnotes: %v", e.ID, res.Table, res.Notes)
			}
		})
	}
}
