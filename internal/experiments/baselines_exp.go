package experiments

import (
	"fmt"

	"asyncagree/internal/adversary"
	"asyncagree/internal/bracha"
	"asyncagree/internal/committee"
	"asyncagree/internal/paxos"
	"asyncagree/internal/registry"
	"asyncagree/internal/sim"
	"asyncagree/internal/stats"
	"asyncagree/internal/stream"
)

// runE8 measures message-chain length at decision for Ben-Or (forgetful +
// fully communicative) under the split-vote crash-model adversary —
// Theorem 17's running-time measure.
func runE8(scale Scale) (Result, error) {
	ns := []int{9, 13, 17}
	trials := 10
	maxW := 200000
	if scale == ScaleFull {
		ns = []int{9, 13, 17, 21, 25}
		trials = 30
		maxW = 2000000
	}
	table := stats.NewTable("n", "t", "trials", "mean-chain", "median-chain", "max-chain")
	var xs, ys []float64
	for _, n := range ns {
		t := n / 4
		type e8Acc struct {
			chains    stream.Summary
			quantiles *stream.Reservoir
		}
		acc, err := ReduceTrials(trials,
			func() *e8Acc { return &e8Acc{quantiles: stream.NewReservoir(0)} },
			func(a *e8Acc, trial int) (*e8Acc, error) {
				p := registry.Params{N: n, T: t, Seed: uint64(trial + 1), Inputs: registry.SplitInputs(n)}
				res, err := registry.RunPooledTrial("benor", "splitvote", "adversary", p, maxW)
				if err != nil {
					return a, err
				}
				chain := res.MaxChainDepth
				if res.FirstDecision < 0 {
					chain = maxW // censored
				}
				a.chains.AddInt(chain)
				a.quantiles.AddInt(chain)
				return a, nil
			},
			func(into, from *e8Acc) *e8Acc {
				into.chains.Merge(&from.chains)
				into.quantiles.Merge(from.quantiles)
				return into
			})
		if err != nil {
			return Result{}, err
		}
		sum := stats.FromStream(&acc.chains, acc.quantiles)
		table.AddRow(n, t, trials, sum.Mean, sum.Median, sum.Max)
		xs = append(xs, float64(n))
		ys = append(ys, sum.Mean)
	}
	fit, ok := stats.FitExponential(xs, ys)
	notes := []string{"Ben-Or is forgetful and fully communicative (Definitions 15, 16), so Theorem 17 applies"}
	pass := ok && fit.Alpha > 0 && ys[0] < ys[len(ys)-1]
	if ok {
		notes = append(notes, fmt.Sprintf("fit: mean-chain ~ %.3g * exp(%.4f * n), R^2 = %.3f", fit.C, fit.Alpha, fit.R2))
	}
	notes = append(notes, verdict(pass, "message-chain length at decision grows exponentially in n"))
	return Result{
		ID:    "E8",
		Title: "Theorem 17: exponential message chains for Ben-Or under crashes",
		Table: table,
		Notes: notes,
		Pass:  pass,
	}, nil
}

// runE10 reproduces the introduction's separation: the committee algorithm
// is fast against non-adaptive corruption but collapses against an adaptive
// adversary that corrupts the final committee, while Bracha (slow) shrugs
// both off.
func runE10(scale Scale) (Result, error) {
	trials := 6
	maxW := 6000
	if scale == ScaleFull {
		trials = 30
		maxW = 20000
	}
	const n = 27
	table := stats.NewTable("algorithm", "attack", "trials", "decided", "agree+valid", "mean-windows")
	pass := true

	type outcome struct {
		decided, safe int
		windows       stream.Summary
	}
	run := func(alg, attack string, seed uint64) (bool, bool, int, error) {
		var s *sim.System
		var err error
		tt := 3 // non-adaptive budget; adaptive uses GroupT+1 = 3 as well
		switch alg {
		case "committee":
			s, err = registry.NewSystem("committee", registry.Params{
				N: n, T: tt, Seed: seed, Inputs: registry.UnanimousInputs(n, 1),
			})
		case "bracha":
			s, err = registry.NewSystem("bracha", registry.Params{
				N: n, T: 8, Seed: seed, Inputs: registry.UnanimousInputs(n, 1),
			})
		default:
			return false, false, 0, fmt.Errorf("bad alg %q", alg)
		}
		if err != nil {
			return false, false, 0, err
		}
		switch attack {
		case "none":
		case "non-adaptive":
			// Corrupt tt processors chosen before the execution.
			for i := 0; i < tt; i++ {
				v := sim.ProcID((int(seed)*7 + i*11) % n)
				for s.Corrupted(v) {
					v = (v + 1) % sim.ProcID(n)
				}
				if err := s.Corrupt(v, bracha.NewSilent(v)); err != nil {
					return false, false, 0, err
				}
			}
		}
		adaptiveArmed := attack == "adaptive"
		corrupted := !adaptiveArmed
		for w := 0; w < maxW && !s.AllDecided(); w++ {
			if err := s.ApplyWindowWith(adversary.FullDelivery{}); err != nil {
				return false, false, 0, err
			}
			if corrupted {
				continue
			}
			// Adaptive strike: wait for the final committee, then silence
			// enough of it to break the group tolerance.
			p0, ok := s.Proc(0).(*committee.Proc)
			if !ok {
				corrupted = true // bracha has no committee to strike; attack is vacuous
				continue
			}
			final := p0.FinalCommittee()
			if final == nil {
				continue
			}
			for i := 0; i < 3 && i < len(final); i++ {
				if err := s.Corrupt(final[i], bracha.NewSilent(final[i])); err != nil {
					return false, false, 0, err
				}
			}
			corrupted = true
		}
		res := s.Result()
		return res.AllDecided, res.Agreement && res.Validity && (!res.AllDecided || res.Decision == 1), res.Windows, nil
	}

	for _, alg := range []string{"committee", "bracha"} {
		for _, attack := range []string{"none", "non-adaptive", "adaptive"} {
			if alg == "bracha" && attack == "adaptive" {
				continue // no committee to strike; covered by non-adaptive
			}
			o, err := ReduceTrials(trials,
				func() *outcome { return &outcome{} },
				func(a *outcome, trial int) (*outcome, error) {
					decided, safe, w, err := run(alg, attack, uint64(trial+1))
					if err != nil {
						return a, err
					}
					if decided {
						a.decided++
						a.windows.AddInt(w)
					}
					if safe {
						a.safe++
					}
					return a, nil
				},
				func(into, from *outcome) *outcome {
					into.decided += from.decided
					into.safe += from.safe
					into.windows.Merge(&from.windows)
					return into
				})
			if err != nil {
				return Result{}, err
			}
			table.AddRow(alg, attack, trials,
				fmt.Sprintf("%d/%d", o.decided, trials),
				fmt.Sprintf("%d/%d", o.safe, trials),
				o.windows.Mean())
			switch {
			case alg == "committee" && attack == "adaptive" && o.decided == trials:
				pass = false // the adaptive attack must hurt
			case alg == "committee" && attack == "none" && o.decided < trials:
				pass = false // fault-free committee runs must finish
			case alg == "bracha" && o.decided < trials:
				pass = false // bracha must always finish here
			}
		}
	}
	return Result{
		ID:    "E10",
		Title: "Introduction: committee algorithm vs adaptive adversary",
		Table: table,
		Notes: []string{verdict(pass, "committees survive non-adaptive faults but an adaptive strike on the final committee blocks termination; Bracha is unaffected")},
		Pass:  pass,
	}, nil
}

// runE11 contrasts Paxos under fair scheduling (decides) with the dueling-
// proposers schedule (livelocks), the introduction's FLP workaround remark.
func runE11(scale Scale) (Result, error) {
	trials := 5
	budget := int64(60000)
	if scale == ScaleFull {
		trials = 20
		budget = 300000
	}
	const n = 5
	table := stats.NewTable("schedule", "proposers", "trials", "decided", "agree+valid")
	pass := true
	for _, cfg := range []struct {
		name      string
		proposers []sim.ProcID
		dueling   bool
	}{
		{"fair lockstep", []sim.ProcID{0}, false},
		{"fair lockstep", []sim.ProcID{0, 1}, false},
		{"dueling", []sim.ProcID{0, 1}, true},
	} {
		acc, err := ReduceTrials(trials,
			func() [2]int { return [2]int{} },
			func(a [2]int, trial int) ([2]int, error) {
				s, err := registry.NewSystem("paxos", registry.Params{
					N: n, T: 2, Seed: uint64(trial + 1), Inputs: registry.SplitInputs(n),
					Proposers: cfg.proposers,
				})
				if err != nil {
					return a, err
				}
				var sched sim.StepAdversary
				if cfg.dueling {
					sched = paxos.NewDuelScheduler()
				} else {
					sched = adversary.NewLockstep()
				}
				res, err := s.RunSteps(sched, budget)
				if err != nil {
					return a, err
				}
				if res.AllDecided {
					a[0]++
				}
				if res.Agreement && res.Validity {
					a[1]++
				}
				return a, nil
			},
			func(into, from [2]int) [2]int {
				into[0] += from[0]
				into[1] += from[1]
				return into
			})
		if err != nil {
			return Result{}, err
		}
		decided, safe := acc[0], acc[1]
		table.AddRow(cfg.name, len(cfg.proposers), trials,
			fmt.Sprintf("%d/%d", decided, trials),
			fmt.Sprintf("%d/%d", safe, trials))
		if safe < trials {
			pass = false // safety must be unconditional
		}
		if cfg.dueling && decided > 0 {
			pass = false // the duel must livelock
		}
		if !cfg.dueling && decided < trials {
			pass = false // fair scheduling must decide
		}
	}
	return Result{
		ID:    "E11",
		Title: "Introduction: Paxos terminates only under benign scheduling",
		Table: table,
		Notes: []string{verdict(pass, "fair schedules decide, dueling schedule livelocks, safety never violated")},
		Pass:  pass,
	}, nil
}
