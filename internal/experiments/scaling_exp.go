package experiments

import (
	"fmt"

	"asyncagree/internal/registry"
	"asyncagree/internal/stats"
	"asyncagree/internal/stream"
)

// e15ShardWorkers is the worker count the sharded leg of every E15 trial
// runs at. It is a constant, not runtime.GOMAXPROCS, so the experiment
// exercises the sharded window core on every machine (including single-CPU
// CI) and its table is machine-independent; ShardWorkers is a pure
// performance knob, so records cannot move with it either way.
const e15ShardWorkers = 4

// runE15 traces the simulator's scaling curves as n grows into the
// thousands — the regime the sharded window core exists for. Two axes:
//
//   - Decision latency: under benign full delivery, the two protocols whose
//     windows-to-decision curve is flat in n. The core algorithm on
//     unanimous inputs decides in the first window at every size (the E9
//     fast path: thresholds are fractions of n, one unanimous wave crosses
//     them). Solo-proposer Paxos on split inputs decides in a fixed number
//     of message rounds independent of n (the E11 benign-scheduling claim).
//     Per-window work grows as n^2; the number of windows must not.
//   - Stall behavior: the Section 3 split-vote adversary against the core
//     algorithm. Its survival probability improves with n (E2/E7), so a
//     window budget it survives at n=48 it must also survive at every
//     larger size: zero decisions within budget, safety intact. (Below
//     n~32 the budget is not survivable — E2's curve is the reason — so
//     the stall axis starts where the exponential has taken over.)
//
// Every trial runs three times through the pooled engine — serial
// message-at-a-time (the reference), serial columnar, and sharded columnar
// (ShardWorkers=4) — and all three RunResults must be identical: the
// serial==parallel and message==columnar determinism contracts, checked end
// to end at sizes the property tests cannot afford.
func runE15(scale Scale) (Result, error) {
	type sizeCfg struct {
		n, trials int
	}
	latSizes := []sizeCfg{{16, 4}, {48, 4}, {96, 3}}
	stallSizes := []sizeCfg{{48, 3}}
	stallBudget := 200
	if scale == ScaleFull {
		latSizes = []sizeCfg{{64, 12}, {256, 6}, {1024, 3}, {4096, 2}}
		stallSizes = []sizeCfg{{64, 6}, {256, 3}}
		stallBudget = 400
	}
	// A flat latency curve means: within this fixed budget at EVERY size.
	const latBudget = 16

	type e15Acc struct {
		decided, maxFirst int
		mismatch, unsafe  bool
		windows           stream.Summary
	}
	// runLegs executes one seeded trial on all three execution paths —
	// serial message-at-a-time (the reference), serial columnar, and
	// sharded columnar — and folds the reference result into the
	// accumulator. Any leg diverging from the reference is a mismatch.
	runLegs := func(a *e15Acc, alg, adv, pattern string, n, t, maxW int, seed uint64) error {
		inputs, err := registry.Inputs(pattern, n, seed)
		if err != nil {
			return err
		}
		p := registry.Params{N: n, T: t, Seed: seed, Inputs: inputs,
			ShardWorkers: 1, DisableColumnar: true}
		serial, err := registry.RunPooledTrial(alg, adv, "adversary", p, maxW)
		if err != nil {
			return err
		}
		p.DisableColumnar = false
		columnar, err := registry.RunPooledTrial(alg, adv, "adversary", p, maxW)
		if err != nil {
			return err
		}
		p.ShardWorkers = e15ShardWorkers
		sharded, err := registry.RunPooledTrial(alg, adv, "adversary", p, maxW)
		if err != nil {
			return err
		}
		if serial != columnar || serial != sharded {
			a.mismatch = true
		}
		if !serial.Agreement || !serial.Validity {
			a.unsafe = true
		}
		if serial.AllDecided {
			a.decided++
			a.windows.AddInt(serial.Windows)
		}
		if serial.FirstDecision > a.maxFirst {
			a.maxFirst = serial.FirstDecision
		}
		return nil
	}
	merge := func(into, from *e15Acc) *e15Acc {
		into.decided += from.decided
		if from.maxFirst > into.maxFirst {
			into.maxFirst = from.maxFirst
		}
		into.mismatch = into.mismatch || from.mismatch
		into.unsafe = into.unsafe || from.unsafe
		into.windows.Merge(&from.windows)
		return into
	}
	eq := func(mismatch bool) string {
		if mismatch {
			return "MISMATCH"
		}
		return "yes"
	}

	table := stats.NewTable("axis", "algorithm", "n", "t", "adversary", "inputs",
		"trials", "decided", "mean-windows", "max-first-decision", "legs-identical")
	pass := true

	type latCfg struct {
		alg, pattern string
		t            func(n int) int
	}
	latCfgs := []latCfg{
		{alg: "core", pattern: "ones", t: func(n int) int { return n / 8 }},
		{alg: "paxos", pattern: "split", t: func(n int) int { return (n - 1) / 2 }},
	}
	for _, sc := range latSizes {
		for _, lc := range latCfgs {
			sc, lc := sc, lc
			t := lc.t(sc.n)
			acc, err := ReduceTrials(sc.trials,
				func() *e15Acc { return &e15Acc{} },
				func(a *e15Acc, trial int) (*e15Acc, error) {
					return a, runLegs(a, lc.alg, "full", lc.pattern, sc.n, t, latBudget, uint64(trial+1))
				},
				merge)
			if err != nil {
				return Result{}, err
			}
			if acc.mismatch || acc.unsafe || acc.decided != sc.trials {
				pass = false
			}
			// The unanimous fast path must stay a first-window decision at
			// every size: thresholds scale with n, the wave does not.
			if lc.alg == "core" && acc.maxFirst > 0 {
				pass = false
			}
			table.AddRow("latency", lc.alg, sc.n, t, "full", lc.pattern, sc.trials,
				fmt.Sprintf("%d/%d", acc.decided, sc.trials),
				acc.windows.Mean(), acc.maxFirst, eq(acc.mismatch))
		}
	}

	for _, sc := range stallSizes {
		sc := sc
		acc, err := ReduceTrials(sc.trials,
			func() *e15Acc { return &e15Acc{} },
			func(a *e15Acc, trial int) (*e15Acc, error) {
				return a, runLegs(a, "core", "splitvote", "split", sc.n, sc.n/8, stallBudget, uint64(trial+1))
			},
			merge)
		if err != nil {
			return Result{}, err
		}
		if acc.mismatch || acc.unsafe || acc.decided != 0 {
			pass = false
		}
		table.AddRow("stall", "core", sc.n, sc.n/8, "splitvote", "split", sc.trials,
			fmt.Sprintf("%d/%d", acc.decided, sc.trials),
			acc.windows.Mean(), acc.maxFirst, eq(acc.mismatch))
	}

	notes := []string{
		fmt.Sprintf("every trial ran three ways — serial message-at-a-time, serial columnar, and sharded columnar (ShardWorkers=%d) — with RunResults compared per seed", e15ShardWorkers),
		fmt.Sprintf("latency axis window budget: %d; stall axis window budget: %d acceptable windows", latBudget, stallBudget),
		verdict(pass,
			"windows-to-decision stays flat as n grows (core decides in the first window on unanimous inputs, Paxos within a fixed round budget), the split-vote adversary still stalls within budget at every size, and the columnar and sharded execution paths reproduce the serial message-at-a-time results exactly"),
	}
	return Result{
		ID:    "E15",
		Title: "Scaling curves: decision latency and stall behavior vs n under the sharded window core",
		Table: table,
		Notes: notes,
		Pass:  pass,
	}, nil
}
