package experiments

import (
	"fmt"

	"asyncagree/internal/lowerbound"
	"asyncagree/internal/registry"
	"asyncagree/internal/search"
	"asyncagree/internal/stats"
)

// runE16 compares the searched adversary frontier against the paper's
// replayed Theorem 5 construction at equal per-candidate trial budgets: the
// internal/search driver explores the (adversary knobs × scheduler) space
// for the core algorithm, and its best candidate per size must stall at
// least as long as the historical split-vote replay — the replay point is
// itself in the search's coarse grid, so search can only match or beat it.
// The table quantifies the gap either way.
func runE16(scale Scale) (Result, error) {
	ns := []int{12}
	trials := 2
	maxW := 2000
	opts := search.Options{
		Algorithm:          "core",
		Input:              "split",
		Adversaries:        []string{"splitvote", "silence", "random"},
		Schedulers:         []string{"adversary"},
		TrialsPerCandidate: trials,
		MaxWindows:         maxW,
		TopK:               3,
		Refinements:        1,
		Generations:        1,
		Population:         4,
		Seed:               16,
	}
	if scale == ScaleFull {
		ns = []int{12, 16, 24}
		trials = 5
		maxW = 20000
		opts.TrialsPerCandidate = trials
		opts.MaxWindows = maxW
		opts.Refinements = 2
		opts.Generations = 3
		opts.Population = 8
	}
	opts.Sizes = nil
	for _, n := range ns {
		t := n / 8
		if t < 1 {
			t = 1
		}
		opts.Sizes = append(opts.Sizes, registry.Size{N: n, T: t})
	}

	rep, err := search.Run(opts, search.RunOptions{})
	if err != nil {
		return Result{}, err
	}

	table := stats.NewTable("n", "t", "trials", "replay-mean", "search-best", "candidate", "stage", "gain")
	pass := rep.Healthy()
	notes := []string{fmt.Sprintf("search: %d evaluations, %d trials, frontier width %d",
		rep.Evals, rep.TrialsSpent, opts.TopK)}
	for i, size := range opts.Sizes {
		// Replay baseline: the same n, t = floor(n/8), seeds 1..trials, and
		// censoring the search evaluator uses.
		series, err := lowerbound.StallSeries(ns[i:i+1], 1.0/8, trials, maxW)
		if err != nil {
			return Result{}, err
		}
		replay := series[0].Summary.Mean
		best, ok := rep.Best(size)
		if !ok {
			return Result{}, fmt.Errorf("E16: no frontier entry for size %s", size)
		}
		gain := best.MeanStall - replay
		if best.MeanStall < replay {
			pass = false
		}
		table.AddRow(size.N, size.T, trials, replay, best.MeanStall, best.Candidate.Key(), best.Stage, gain)
		notes = append(notes, fmt.Sprintf("%s: searched best %s stalls %.1f vs replayed split-vote %.1f (gain %+.1f)",
			size, best.Candidate.Key(), best.MeanStall, replay, gain))
	}
	notes = append(notes, verdict(pass, "searched frontier >= replayed Theorem 5 construction at equal trial budgets"))
	return Result{
		ID:    "E16",
		Title: "Adversary search: optimized stall frontier vs the replayed Theorem 5 construction",
		Table: table,
		Notes: notes,
		Pass:  pass,
	}, nil
}
