package experiments

import (
	"fmt"

	"asyncagree/internal/benor"
	"asyncagree/internal/bracha"
	"asyncagree/internal/committee"
	"asyncagree/internal/core"
	"asyncagree/internal/paxos"
	"asyncagree/internal/sim"
)

// buildSystem constructs a simulator for a named algorithm with its default
// parameterization.
func buildSystem(name string, n, t int, inputs []sim.Bit, seed uint64) (*sim.System, error) {
	var factory func(sim.ProcID, sim.Bit) sim.Process
	switch name {
	case "core":
		th, err := core.DefaultThresholds(n, t)
		if err != nil {
			return nil, err
		}
		factory = core.NewFactory(n, t, th)
	case "benor":
		factory = benor.NewFactory(n, t)
	case "bracha":
		factory = bracha.NewFactory(n, t)
	case "committee":
		factory = committee.NewFactory(committee.DefaultParams(n))
	case "paxos":
		factory = paxos.NewFactory(paxos.Params{N: n, Proposers: []sim.ProcID{0}})
	default:
		return nil, fmt.Errorf("experiments: unknown algorithm %q", name)
	}
	return sim.New(sim.Config{N: n, T: t, Seed: seed, Inputs: inputs, NewProcess: factory})
}

func splitInputs(n int) []sim.Bit {
	in := make([]sim.Bit, n)
	for i := range in {
		in[i] = sim.Bit(i % 2)
	}
	return in
}
