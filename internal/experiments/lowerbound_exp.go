package experiments

import (
	"fmt"

	"asyncagree/internal/lowerbound"
	"asyncagree/internal/rng"
	"asyncagree/internal/stats"
	"asyncagree/internal/talagrand"
)

// runE2 regenerates the Section 3 slowness claim: mean windows-to-decision
// under the split-vote adversary grows exponentially in n at fixed t/n.
func runE2(scale Scale) (Result, error) {
	ns := []int{8, 12, 16, 20, 24}
	trials := 10
	maxW := 300000
	if scale == ScaleFull {
		ns = []int{8, 12, 16, 20, 24, 28, 32, 36}
		trials = 30
		maxW = 3000000
	}
	series, err := lowerbound.StallSeries(ns, 1.0/8, trials, maxW)
	if err != nil {
		return Result{}, err
	}
	table := stats.NewTable("n", "t", "trials", "mean-windows", "median", "p90", "max", "adversary-beaten-frac")
	for _, p := range series {
		table.AddRow(p.N, p.T, p.Trials, p.Summary.Mean, p.Summary.Median, p.Summary.P90, p.Summary.Max, p.GaveUpFraction)
	}
	fit, ok := lowerbound.FitGrowth(series)
	notes := []string{}
	pass := ok && fit.Alpha > 0
	if ok {
		notes = append(notes, fmt.Sprintf("fit: mean-windows ~ %.3g * exp(%.4f * n), R^2 = %.3f", fit.C, fit.Alpha, fit.R2))
	}
	grows := len(series) >= 2 && series[0].Summary.Mean < series[len(series)-1].Summary.Mean
	pass = pass && grows
	notes = append(notes, verdict(pass, "mean stall grows exponentially in n (positive fitted exponent)"))
	return Result{
		ID:    "E2",
		Title: "Section 3: exponential expected windows under split-vote adversary",
		Table: table,
		Notes: notes,
		Pass:  pass,
	}, nil
}

// runE4 verifies Lemma 9 exactly on enumerable spaces and by Monte Carlo on
// large ones, reporting the worst observed slack.
func runE4(scale Scale) (Result, error) {
	table := stats.NewTable("space", "set family", "cases", "max lhs", "min bound", "violations")
	pass := true

	// Exact: weight half-spaces over {0,1}^n.
	for _, n := range []int{8, 12, 16} {
		s := talagrand.UniformBits(n)
		cases, violations := 0, 0
		maxLHS, minBound := 0.0, 1.0
		for k := 0; k <= n; k += 2 {
			for d := 0; d <= n; d += 2 {
				lhs, rhs, err := talagrand.CheckLemma9(s, talagrand.HammingWeightAtMost(k), talagrand.WeightBallAtMost(k, d), float64(d))
				if err != nil {
					return Result{}, err
				}
				cases++
				if lhs > rhs+1e-12 {
					violations++
				}
				if lhs > maxLHS {
					maxLHS = lhs
				}
				if rhs < minBound {
					minBound = rhs
				}
			}
		}
		if violations > 0 {
			pass = false
		}
		table.AddRow(fmt.Sprintf("{0,1}^%d exact", n), "weight half-spaces", cases, maxLHS, minBound, violations)
	}

	// Exact: random explicit sets.
	r := rng.New(2024)
	s10 := talagrand.UniformBits(10)
	cases, violations := 0, 0
	setCount := 30
	if scale == ScaleFull {
		setCount = 200
	}
	for i := 0; i < setCount; i++ {
		e := talagrand.NewExplicitSet()
		for j := 0; j < 1+r.Intn(40); j++ {
			e.Add(s10.Sample(r))
		}
		d := r.Intn(10)
		lhs, rhs, err := talagrand.CheckLemma9(s10, e, e.Ball(d), float64(d))
		if err != nil {
			return Result{}, err
		}
		cases++
		if lhs > rhs+1e-12 {
			violations++
		}
	}
	if violations > 0 {
		pass = false
	}
	table.AddRow("{0,1}^10 exact", "random explicit sets", cases, "-", "-", violations)

	// Monte Carlo: {0,1}^64.
	s64 := talagrand.UniformBits(64)
	mcViol := 0
	for _, kd := range [][2]int{{24, 16}, {28, 12}, {20, 24}} {
		k, d := kd[0], kd[1]
		lhs, rhs := talagrand.CheckLemma9MC(s64, talagrand.HammingWeightAtMost(k),
			talagrand.WeightBallAtMost(k, d), float64(d), 40000, rng.New(uint64(k*d)))
		if lhs > rhs+0.02 {
			mcViol++
		}
	}
	if mcViol > 0 {
		pass = false
	}
	table.AddRow("{0,1}^64 MC", "weight half-spaces", 3, "-", "-", mcViol)

	return Result{
		ID:    "E4",
		Title: "Lemma 9: Talagrand inequality on product spaces",
		Table: table,
		Notes: []string{verdict(pass, "P[A](1 - P[B(A,d)]) <= exp(-d^2/4n) in every case")},
		Pass:  pass,
	}, nil
}

// runE5 samples decision sets of the core algorithm and measures their
// Hamming separation (Lemma 11's Delta(Z0_0, Z0_1) > t).
func runE5(scale Scale) (Result, error) {
	trials := 10
	if scale == ScaleFull {
		trials = 40
	}
	table := stats.NewTable("n", "t", "|Z0_0|", "|Z0_1|", "Delta(Z0_0,Z0_1)", "claim Delta > t")
	pass := true
	for _, nt := range [][2]int{{8, 1}, {12, 1}, {16, 2}} {
		res, err := lowerbound.MeasureSeparation(nt[0], nt[1], trials, 100000)
		if err != nil {
			return Result{}, err
		}
		if !res.Holds || res.Z0Size+res.Z1Size == 0 {
			pass = false
		}
		table.AddRow(res.N, res.T, res.Z0Size, res.Z1Size, res.Distance, res.Holds)
	}
	return Result{
		ID:    "E5",
		Title: "Lemma 11: Hamming separation of decision sets Z0_0, Z0_1",
		Table: table,
		Notes: []string{
			"states projected to the decision-relevant (x, output) pair per processor",
			verdict(pass, "sampled decision sets separated by more than t in every configuration"),
		},
		Pass: pass,
	}, nil
}

// runE6 demonstrates Lemma 14: for planted far-apart sets and end-point
// distributions avoiding one set each, the crossover mix pi_{j*} avoids both;
// it also verifies the equation-(1) resampling coupling along the way.
func runE6(scale Scale) (Result, error) {
	table := stats.NewTable("n", "eta", "j*", "P[z0] at j*", "P[z1] at j*", "coupling holds")
	pass := true
	ns := []int{8, 12}
	if scale == ScaleFull {
		ns = []int{8, 12, 16, 20}
	}
	for _, n := range ns {
		z0 := talagrand.HammingWeightAtMost(n / 6)
		z1 := talagrand.HammingWeightAtLeast(n - n/6)
		hi := talagrand.BiasedBits(n, 0.85)
		lo := talagrand.BiasedBits(n, 0.15)
		eta := 0.08
		res, err := talagrand.FindJStar(hi, lo, z0, z1, eta)
		if err != nil {
			return Result{}, err
		}
		ok := res.P0AtJStar <= eta && res.P1AtJStar <= eta

		// Equation (1) check with an explicit random set.
		r := rng.New(uint64(n))
		space := talagrand.UniformBits(n)
		e := talagrand.NewExplicitSet()
		for i := 0; i < 8; i++ {
			e.Add(space.Sample(r))
		}
		coupling := true
		for j := 1; j <= n; j++ {
			ball, prev, err := talagrand.ResampleCoupling(hi, lo, j, e)
			if err != nil {
				return Result{}, err
			}
			if ball < prev-1e-12 {
				coupling = false
			}
		}
		if !ok || !coupling {
			pass = false
		}
		table.AddRow(n, eta, res.JStar, res.P0AtJStar, res.P1AtJStar, coupling)
	}
	return Result{
		ID:    "E6",
		Title: "Lemma 14: interpolated distribution avoids both sets",
		Table: table,
		Notes: []string{verdict(pass, "pi_{j*} puts <= eta on both planted sets; resampling coupling (eq. 1) holds at every j")},
		Pass:  pass,
	}, nil
}

// runE7 measures the survival curve P[no decision within W windows] — the
// observable form of Theorem 5's "with probability >= 1/2 the running time
// is >= C e^{alpha n}".
func runE7(scale Scale) (Result, error) {
	trials := 16
	if scale == ScaleFull {
		trials = 60
	}
	checkpoints := []int{1, 4, 16, 64, 256, 1024}
	table := stats.NewTable(append([]string{"n", "t"}, wLabels(checkpoints)...)...)
	pass := true
	for _, nt := range [][2]int{{16, 2}, {24, 3}, {32, 4}} {
		curve, err := lowerbound.SurvivalCurve(nt[0], nt[1], checkpoints, trials)
		if err != nil {
			return Result{}, err
		}
		row := []any{nt[0], nt[1]}
		for _, v := range curve {
			row = append(row, v)
		}
		table.AddRow(row...)
		// Theorem-5 shape: at the largest n the adversary survives >= 16
		// windows with probability >= 1/2.
		if nt[0] == 32 && curve[2] < 0.5 {
			pass = false
		}
	}
	return Result{
		ID:    "E7",
		Title: "Theorem 5: survival probability of the stalling adversary",
		Table: table,
		Notes: []string{verdict(pass, "P[no decision within W windows] >= 1/2 for W growing with n")},
		Pass:  pass,
	}, nil
}

// runE13 makes Definition 12 executable at k = 1: sample reachable
// configurations as replayable schedules, decide Z^1_0 / Z^1_1 membership by
// Monte Carlo over every uniform (R, S) window choice, and measure the
// Hamming separation Lemma 13 proves exceeds t.
func runE13(scale Scale) (Result, error) {
	prefixes, samples := 12, 10
	if scale == ScaleFull {
		prefixes, samples = 40, 20
	}
	table := stats.NewTable("n", "t", "tau", "samples/(R,S)", "|Z1_0|", "|Z1_1|", "Delta(Z1_0,Z1_1)", "claim Delta > t")
	pass := true
	for _, nt := range [][2]int{{8, 1}, {10, 1}} {
		n, t := nt[0], nt[1]
		zt := lowerbound.ZkTester{Tau: 0.3, Samples: samples}
		res, err := lowerbound.MeasureZ1Separation(n, t, prefixes, 6, zt)
		if err != nil {
			return Result{}, err
		}
		if !res.Holds {
			pass = false
		}
		table.AddRow(n, t, zt.Tau, samples, res.Z0Size, res.Z1Size, res.Distance, res.Holds)
	}
	return Result{
		ID:    "E13",
		Title: "Lemma 13 (k=1): Hamming separation of the Monte-Carlo Z^1 sets",
		Table: table,
		Notes: []string{
			"Z^1 membership per Definition 12: for every uniform (R,S) choice, P[next config in Z^0] > tau (Monte Carlo)",
			verdict(pass, "sampled Z^1 sets separated by more than t"),
		},
		Pass: pass,
	}, nil
}

func wLabels(ws []int) []string {
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = fmt.Sprintf("P[survive %d]", w)
	}
	return out
}
