// Package experiments regenerates every quantitative claim of the paper as
// a table (the paper has no numbered tables or figures — it is pure theory —
// so each theorem or in-text argument gets an experiment; see DESIGN.md §5
// and EXPERIMENTS.md for the index).
//
// Each experiment is registered under a stable ID (E1..E16) and runs at one
// of two scales: ScaleQuick for CI/tests and ScaleFull for the numbers
// recorded in EXPERIMENTS.md. All experiments are deterministic given their
// built-in seeds.
package experiments

import (
	"fmt"
	"sort"

	"asyncagree/internal/parallel"
	"asyncagree/internal/stats"
)

// Scale selects experiment effort.
type Scale int

const (
	// ScaleQuick runs reduced trial counts for tests.
	ScaleQuick Scale = iota + 1
	// ScaleFull runs the EXPERIMENTS.md configuration.
	ScaleFull
)

// Result is the output of one experiment.
type Result struct {
	// ID is the stable experiment identifier (e.g. "E2").
	ID string
	// Title restates the paper claim under test.
	Title string
	// Table holds the regenerated rows.
	Table *stats.Table
	// Notes carry fits, pass/fail verdicts, and caveats.
	Notes []string
	// Pass reports whether the paper's qualitative claim held.
	Pass bool
}

// Experiment is a registered experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func(Scale) (Result, error)
}

// All returns the registry in ID order.
func All() []Experiment {
	exps := []Experiment{
		{ID: "E1", Title: "Theorem 4: measure-one correctness and termination, t < n/6", Run: runE1},
		{ID: "E2", Title: "Section 3: exponential expected windows under split-vote adversary", Run: runE2},
		{ID: "E3", Title: "Theorem 4: threshold feasibility region (t < n/6)", Run: runE3},
		{ID: "E4", Title: "Lemma 9: Talagrand inequality on product spaces", Run: runE4},
		{ID: "E5", Title: "Lemma 11: Hamming separation of decision sets Z0_0, Z0_1", Run: runE5},
		{ID: "E6", Title: "Lemma 14: interpolated distribution avoids both sets", Run: runE6},
		{ID: "E7", Title: "Theorem 5: survival probability of the stalling adversary", Run: runE7},
		{ID: "E8", Title: "Theorem 17: exponential message chains for Ben-Or under crashes", Run: runE8},
		{ID: "E9", Title: "Validity fast path: unanimous inputs decide immediately", Run: runE9},
		{ID: "E10", Title: "Introduction: committee algorithm vs adaptive adversary", Run: runE10},
		{ID: "E11", Title: "Introduction: Paxos terminates only under benign scheduling", Run: runE11},
		{ID: "E12", Title: "Theorem 4 proof: no conflicting deterministic adoptions (2*T3 > n)", Run: runE12},
		{ID: "E13", Title: "Lemma 13 (k=1): Hamming separation of the Monte-Carlo Z^1 sets", Run: runE13},
		{ID: "E14", Title: "Scheduler sensitivity: E8/E9 decision-round curves across delivery disciplines", Run: runE14},
		{ID: "E15", Title: "Scaling curves: decision latency and stall behavior vs n under the sharded window core", Run: runE15},
		{ID: "E16", Title: "Adversary search: optimized stall frontier vs the replayed Theorem 5 construction", Run: runE16},
	}
	sort.Slice(exps, func(i, j int) bool { return idLess(exps[i].ID, exps[j].ID) })
	return exps
}

func idLess(a, b string) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	return a < b
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown id %q", id)
}

// RunTrials fans the independent seeded trials of one experiment across a
// GOMAXPROCS-wide worker pool and returns the per-trial results ordered by
// trial index (never by completion), so aggregate tables are byte-identical
// to a serial loop. Trial fn must derive all randomness from its index and
// must not share mutable state (every trial builds its own sim.System). On
// failure the error of the lowest failing index is returned — the same
// error a serial loop would have surfaced first.
//
// RunTrials holds all trial results at once; the experiment drivers reduce
// through ReduceTrials instead, which keeps only online accumulators.
func RunTrials[T any](trials int, fn func(trial int) (T, error)) ([]T, error) {
	return parallel.Map(trials, fn)
}

// ReduceTrials is the streaming counterpart of RunTrials: trials fan across
// the same worker pool, but each worker folds its results into a block
// accumulator and the blocks merge in index order, so an experiment's
// memory is its accumulator — O(1) in the trial count — instead of a result
// slice. With the order-deterministic accumulators of internal/stream the
// aggregate is byte-identical to the serial loop for every statistic the
// tables render (counts, integer-sample means, quantiles within the sketch
// capacity); see parallel.Reduce for the exact contract. Error semantics
// match RunTrials: the lowest failing trial index wins.
func ReduceTrials[A any](trials int, newAcc func() A, fold func(acc A, trial int) (A, error), merge func(into, from A) A) (A, error) {
	return parallel.Reduce(trials, newAcc, fold, merge)
}

// verdict formats a pass/fail note.
func verdict(pass bool, claim string) string {
	if pass {
		return "PASS: " + claim
	}
	return "FAIL: " + claim
}
