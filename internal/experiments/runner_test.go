package experiments

import (
	"errors"
	"reflect"
	"testing"

	"asyncagree/internal/adversary"
	"asyncagree/internal/core"
	"asyncagree/internal/sim"
	"asyncagree/internal/stats"
	"asyncagree/internal/stream"
)

// trialFn is a representative experiment trial: a full adversarial run of
// the core algorithm whose result depends on every layer of the simulator.
func trialFn(t *testing.T) func(trial int) (sim.RunResult, error) {
	t.Helper()
	const n, tt = 12, 1
	th, err := core.DefaultThresholds(n, tt)
	if err != nil {
		t.Fatal(err)
	}
	return func(trial int) (sim.RunResult, error) {
		seed := uint64(trial + 1)
		s, err := sim.New(sim.Config{
			N: n, T: tt, Seed: seed,
			Inputs:     patternInputs(n, seed),
			NewProcess: core.NewFactory(n, tt, th),
		})
		if err != nil {
			return sim.RunResult{}, err
		}
		return s.RunWindows(adversary.NewRandomWindows(seed, 0.4, tt), 40000)
	}
}

// TestRunTrialsMatchesSerial is the repository's parallel-determinism
// guarantee: fanning seeded trials across the worker pool yields exactly
// the results of the serial loop, in the same order.
func TestRunTrialsMatchesSerial(t *testing.T) {
	const trials = 24
	fn := trialFn(t)

	serial := make([]sim.RunResult, trials)
	for i := range serial {
		res, err := fn(i)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = res
	}
	par, err := RunTrials(trials, fn)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("parallel results diverged from serial:\nserial  %+v\nparallel %+v", serial, par)
	}
	// And the parallel path itself must be replayable.
	again, err := RunTrials(trials, fn)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(par, again) {
		t.Fatal("two parallel runs with identical seeds diverged")
	}
}

// TestRunTrialsSurfacesLowestError mirrors serial error semantics: the
// reported failure is the one the serial loop would have hit first.
func TestRunTrialsSurfacesLowestError(t *testing.T) {
	sentinel := errors.New("trial failed")
	_, err := RunTrials(32, func(trial int) (int, error) {
		if trial >= 5 {
			return 0, sentinel
		}
		return trial, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
}

// TestReduceTrialsMatchesSerialAccumulation is the streaming reducer's
// determinism guarantee over a real simulator workload: reducing seeded
// trials into stream accumulators across the worker pool reproduces the
// serial collect-then-summarize loop exactly for every statistic the
// experiment tables render, run after run.
func TestReduceTrialsMatchesSerialAccumulation(t *testing.T) {
	const trials = 24
	fn := trialFn(t)

	var windows []int
	decided := 0
	for i := 0; i < trials; i++ {
		res, err := fn(i)
		if err != nil {
			t.Fatal(err)
		}
		if res.AllDecided {
			decided++
			windows = append(windows, res.Windows)
		}
	}
	want := stats.SummarizeInts(windows)

	type acc struct {
		decided   int
		windows   stream.Summary
		quantiles *stream.Reservoir
	}
	reduce := func() (*acc, error) {
		return ReduceTrials(trials,
			func() *acc { return &acc{quantiles: stream.NewReservoir(0)} },
			func(a *acc, trial int) (*acc, error) {
				res, err := fn(trial)
				if err != nil {
					return a, err
				}
				if res.AllDecided {
					a.decided++
					a.windows.AddInt(res.Windows)
					a.quantiles.AddInt(res.Windows)
				}
				return a, nil
			},
			func(into, from *acc) *acc {
				into.decided += from.decided
				into.windows.Merge(&from.windows)
				into.quantiles.Merge(from.quantiles)
				return into
			})
	}
	got, err := reduce()
	if err != nil {
		t.Fatal(err)
	}
	if got.decided != decided {
		t.Fatalf("decided = %d, want %d", got.decided, decided)
	}
	if sum := stats.FromStream(&got.windows, got.quantiles); sum != want {
		t.Fatalf("streaming summary %+v != serial %+v", sum, want)
	}
	// And the reduction must be replayable.
	again, err := reduce()
	if err != nil {
		t.Fatal(err)
	}
	if stats.FromStream(&again.windows, again.quantiles) != stats.FromStream(&got.windows, got.quantiles) {
		t.Fatal("two reductions with identical seeds diverged")
	}
}

// TestReduceTrialsSurfacesLowestError mirrors RunTrials error semantics.
func TestReduceTrialsSurfacesLowestError(t *testing.T) {
	sentinel := errors.New("trial failed")
	_, err := ReduceTrials(32,
		func() int { return 0 },
		func(a, trial int) (int, error) {
			if trial >= 5 {
				return a, sentinel
			}
			return a + 1, nil
		},
		func(into, from int) int { return into + from })
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
}
