package experiments

import (
	"errors"
	"reflect"
	"testing"

	"asyncagree/internal/adversary"
	"asyncagree/internal/core"
	"asyncagree/internal/sim"
)

// trialFn is a representative experiment trial: a full adversarial run of
// the core algorithm whose result depends on every layer of the simulator.
func trialFn(t *testing.T) func(trial int) (sim.RunResult, error) {
	t.Helper()
	const n, tt = 12, 1
	th, err := core.DefaultThresholds(n, tt)
	if err != nil {
		t.Fatal(err)
	}
	return func(trial int) (sim.RunResult, error) {
		seed := uint64(trial + 1)
		s, err := sim.New(sim.Config{
			N: n, T: tt, Seed: seed,
			Inputs:     patternInputs(n, seed),
			NewProcess: core.NewFactory(n, tt, th),
		})
		if err != nil {
			return sim.RunResult{}, err
		}
		return s.RunWindows(adversary.NewRandomWindows(seed, 0.4, tt), 40000)
	}
}

// TestRunTrialsMatchesSerial is the repository's parallel-determinism
// guarantee: fanning seeded trials across the worker pool yields exactly
// the results of the serial loop, in the same order.
func TestRunTrialsMatchesSerial(t *testing.T) {
	const trials = 24
	fn := trialFn(t)

	serial := make([]sim.RunResult, trials)
	for i := range serial {
		res, err := fn(i)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = res
	}
	par, err := RunTrials(trials, fn)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("parallel results diverged from serial:\nserial  %+v\nparallel %+v", serial, par)
	}
	// And the parallel path itself must be replayable.
	again, err := RunTrials(trials, fn)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(par, again) {
		t.Fatal("two parallel runs with identical seeds diverged")
	}
}

// TestRunTrialsSurfacesLowestError mirrors serial error semantics: the
// reported failure is the one the serial loop would have hit first.
func TestRunTrialsSurfacesLowestError(t *testing.T) {
	sentinel := errors.New("trial failed")
	_, err := RunTrials(32, func(trial int) (int, error) {
		if trial >= 5 {
			return 0, sentinel
		}
		return trial, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
}
