package experiments

import (
	"fmt"

	"asyncagree/internal/adversary"
	"asyncagree/internal/core"
	"asyncagree/internal/registry"
	"asyncagree/internal/sim"
	"asyncagree/internal/stats"
)

// runE1 stresses Theorem 4: the core algorithm with default thresholds and
// t < n/6 must never violate agreement or validity, and must terminate, for
// every adversary in the battery.
func runE1(scale Scale) (Result, error) {
	trials := 30
	maxWindows := 40000
	sizes := [][2]int{{12, 1}, {18, 2}, {24, 3}}
	if scale == ScaleFull {
		trials = 200
		maxWindows = 400000
		sizes = append(sizes, [2]int{36, 5})
	}

	table := stats.NewTable("n", "t", "adversary", "trials", "agree-viol", "valid-viol", "terminated", "mean-windows")
	pass := true
	for _, nt := range sizes {
		n, t := nt[0], nt[1]
		// The battery is the registry's core-compatible reset/stall
		// adversaries (the "subsets" chaos scheduler is omitted: it is
		// strictly weaker than "random" here).
		for _, advName := range []string{"full", "random", "storm", "splitvote"} {
			results, err := RunTrials(trials, func(trial int) (sim.RunResult, error) {
				seed := uint64(trial + 1)
				p := registry.Params{N: n, T: t, Seed: seed, Inputs: patternInputs(n, seed)}
				return registry.RunPooledTrial("core", advName, "adversary", p, maxWindows)
			})
			if err != nil {
				return Result{}, err
			}
			var agreeViol, validViol, terminated int
			var windows []int
			for _, res := range results {
				if !res.Agreement {
					agreeViol++
				}
				if !res.Validity {
					validViol++
				}
				if res.AllDecided {
					terminated++
					windows = append(windows, res.Windows)
				}
			}
			if agreeViol > 0 || validViol > 0 || terminated < trials {
				pass = false
			}
			table.AddRow(n, t, advName, trials, agreeViol, validViol,
				fmt.Sprintf("%d/%d", terminated, trials), stats.SummarizeInts(windows).Mean)
		}
	}
	return Result{
		ID:    "E1",
		Title: "Theorem 4: measure-one correctness and termination, t < n/6",
		Table: table,
		Notes: []string{verdict(pass, "0 safety violations and universal termination across the adversary battery")},
		Pass:  pass,
	}, nil
}

// patternInputs varies input patterns across seeds, cycling through the
// registry's named generators: unanimous 0, unanimous 1, split, and
// seed-dependent blocks.
func patternInputs(n int, seed uint64) []sim.Bit {
	names := [4]string{"zeros", "ones", "split", "blocks"}
	in, err := registry.Inputs(names[seed%4], n, seed)
	if err != nil {
		panic(err) // unreachable: the names are registered
	}
	return in
}

// runE3 maps Theorem 4's feasibility region: for each t/n ratio, do valid
// thresholds exist?
func runE3(Scale) (Result, error) {
	table := stats.NewTable("n", "t", "t/n", "feasible", "T1", "T2", "T3")
	pass := true
	for _, n := range []int{12, 24, 48, 96} {
		for _, t := range []int{0, n / 12, n/6 - 1, n / 6, n / 4, n / 3} {
			th, err := core.DefaultThresholds(n, t)
			feasible := err == nil
			wantFeasible := 6*t < n
			if feasible != wantFeasible {
				pass = false
			}
			if feasible {
				table.AddRow(n, t, float64(t)/float64(n), feasible, th.T1, th.T2, th.T3)
			} else {
				table.AddRow(n, t, float64(t)/float64(n), feasible, "-", "-", "-")
			}
		}
	}
	return Result{
		ID:    "E3",
		Title: "Theorem 4: threshold feasibility region (t < n/6)",
		Table: table,
		Notes: []string{verdict(pass, "default thresholds exist exactly when t < n/6")},
		Pass:  pass,
	}, nil
}

// runE9 checks the validity fast path on every algorithm: unanimous inputs
// decide immediately (core: first window; Ben-Or: round 1; Bracha: round 1).
func runE9(scale Scale) (Result, error) {
	trials := 5
	if scale == ScaleFull {
		trials = 25
	}
	table := stats.NewTable("algorithm", "n", "t", "input", "trials", "all-decided", "max-first-decision-window")
	pass := true

	type config struct {
		name string
		n, t int
		maxW int
	}
	configs := []config{
		{name: "core", n: 12, t: 1, maxW: 5},
		{name: "benor", n: 9, t: 2, maxW: 6},
		{name: "bracha", n: 7, t: 2, maxW: 60},
	}
	for _, cfg := range configs {
		for _, v := range []sim.Bit{0, 1} {
			results, err := RunTrials(trials, func(trial int) (sim.RunResult, error) {
				p := registry.Params{
					N: cfg.n, T: cfg.t, Seed: uint64(trial + 1),
					Inputs: registry.UnanimousInputs(cfg.n, v),
				}
				return registry.RunPooledTrial(cfg.name, "full", "adversary", p, cfg.maxW)
			})
			if err != nil {
				return Result{}, err
			}
			decidedAll := 0
			maxFirst := 0
			for _, res := range results {
				if res.AllDecided && res.Decision == v && res.Agreement && res.Validity {
					decidedAll++
				}
				if res.FirstDecision > maxFirst {
					maxFirst = res.FirstDecision
				}
			}
			if decidedAll != trials {
				pass = false
			}
			table.AddRow(cfg.name, cfg.n, cfg.t, v, trials,
				fmt.Sprintf("%d/%d", decidedAll, trials), maxFirst)
		}
	}
	return Result{
		ID:    "E9",
		Title: "Validity fast path: unanimous inputs decide immediately",
		Table: table,
		Notes: []string{verdict(pass, "all algorithms decide the unanimous input within their first round")},
		Pass:  pass,
	}, nil
}

// runE12 re-verifies the termination mechanism of Theorem 4's proof: in no
// window can two processors deterministically adopt conflicting values
// (needs 2*T3 > n).
func runE12(scale Scale) (Result, error) {
	trials := 10
	windows := 400
	if scale == ScaleFull {
		trials = 50
		windows = 2000
	}
	table := stats.NewTable("n", "t", "T3", "trials", "windows-observed", "conflicting-windows")
	pass := true
	for _, nt := range [][2]int{{12, 1}, {24, 3}} {
		n, t := nt[0], nt[1]
		th, err := core.DefaultThresholds(n, t)
		if err != nil {
			return Result{}, err
		}
		counts, err := RunTrials(trials, func(trial int) ([2]int, error) {
			c, w, err := countConflictWindows(n, t, th, uint64(trial+1), windows)
			return [2]int{c, w}, err
		})
		if err != nil {
			return Result{}, err
		}
		conflicts, observed := 0, 0
		for _, cw := range counts {
			conflicts += cw[0]
			observed += cw[1]
		}
		if conflicts > 0 {
			pass = false
		}
		table.AddRow(n, t, th.T3, trials, observed, conflicts)
	}
	return Result{
		ID:    "E12",
		Title: "Theorem 4 proof: no conflicting deterministic adoptions (2*T3 > n)",
		Table: table,
		Notes: []string{verdict(pass, "zero windows with both values deterministically adopted")},
		Pass:  pass,
	}, nil
}

func countConflictWindows(n, t int, th core.Thresholds, seed uint64, maxWindows int) (conflicts, observed int, err error) {
	s, err := sim.New(sim.Config{
		N: n, T: t, Seed: seed,
		Inputs:     patternInputs(n, 2), // split
		NewProcess: core.NewFactory(n, t, th),
	})
	if err != nil {
		return 0, 0, err
	}
	counts := make(map[sim.ProcID]*[2]int)
	s.OnEvent = func(ev sim.Event) {
		switch ev.Kind {
		case sim.EvDeliver:
			if _, v, ok := core.ExtractVote(ev.Msg); ok {
				c := counts[ev.Proc]
				if c == nil {
					c = new([2]int)
					counts[ev.Proc] = c
				}
				c[v]++
			}
		case sim.EvWindow:
			observed++
			det := [2]bool{}
			for _, c := range counts {
				for v := 0; v < 2; v++ {
					if c[v] >= th.T3 {
						det[v] = true
					}
				}
			}
			if det[0] && det[1] {
				conflicts++
			}
			counts = make(map[sim.ProcID]*[2]int)
		}
	}
	if _, err := s.RunWindows(adversary.NewRandomWindows(seed+99, 0.4, t), maxWindows); err != nil {
		return 0, 0, err
	}
	return conflicts, observed, nil
}
