package experiments

import (
	"fmt"

	"asyncagree/internal/adversary"
	"asyncagree/internal/core"
	"asyncagree/internal/registry"
	"asyncagree/internal/sim"
	"asyncagree/internal/stats"
	"asyncagree/internal/stream"
)

// runE1 stresses Theorem 4: the core algorithm with default thresholds and
// t < n/6 must never violate agreement or validity, and must terminate, for
// every adversary in the battery.
func runE1(scale Scale) (Result, error) {
	trials := 30
	maxWindows := 40000
	sizes := [][2]int{{12, 1}, {18, 2}, {24, 3}}
	if scale == ScaleFull {
		trials = 200
		maxWindows = 400000
		sizes = append(sizes, [2]int{36, 5})
	}

	table := stats.NewTable("n", "t", "adversary", "trials", "agree-viol", "valid-viol", "terminated", "mean-windows")
	pass := true
	for _, nt := range sizes {
		n, t := nt[0], nt[1]
		// The battery is the registry's core-compatible reset/stall
		// adversaries (the "subsets" chaos scheduler is omitted: it is
		// strictly weaker than "random" here).
		for _, advName := range []string{"full", "random", "storm", "splitvote"} {
			type e1Acc struct {
				agreeViol, validViol, terminated int
				windows                          stream.Summary
			}
			acc, err := ReduceTrials(trials,
				func() *e1Acc { return &e1Acc{} },
				func(a *e1Acc, trial int) (*e1Acc, error) {
					seed := uint64(trial + 1)
					p := registry.Params{N: n, T: t, Seed: seed, Inputs: patternInputs(n, seed)}
					res, err := registry.RunPooledTrial("core", advName, "adversary", p, maxWindows)
					if err != nil {
						return a, err
					}
					if !res.Agreement {
						a.agreeViol++
					}
					if !res.Validity {
						a.validViol++
					}
					if res.AllDecided {
						a.terminated++
						a.windows.AddInt(res.Windows)
					}
					return a, nil
				},
				func(into, from *e1Acc) *e1Acc {
					into.agreeViol += from.agreeViol
					into.validViol += from.validViol
					into.terminated += from.terminated
					into.windows.Merge(&from.windows)
					return into
				})
			if err != nil {
				return Result{}, err
			}
			if acc.agreeViol > 0 || acc.validViol > 0 || acc.terminated < trials {
				pass = false
			}
			table.AddRow(n, t, advName, trials, acc.agreeViol, acc.validViol,
				fmt.Sprintf("%d/%d", acc.terminated, trials), acc.windows.Mean())
		}
	}
	return Result{
		ID:    "E1",
		Title: "Theorem 4: measure-one correctness and termination, t < n/6",
		Table: table,
		Notes: []string{verdict(pass, "0 safety violations and universal termination across the adversary battery")},
		Pass:  pass,
	}, nil
}

// patternInputs varies input patterns across seeds, cycling through the
// registry's named generators: unanimous 0, unanimous 1, split, and
// seed-dependent blocks.
func patternInputs(n int, seed uint64) []sim.Bit {
	names := [4]string{"zeros", "ones", "split", "blocks"}
	in, err := registry.Inputs(names[seed%4], n, seed)
	if err != nil {
		panic(fmt.Sprintf("experiments: built-in input generator %q missing: %v", names[seed%4], err))
	}
	return in
}

// runE3 maps Theorem 4's feasibility region: for each t/n ratio, do valid
// thresholds exist?
func runE3(Scale) (Result, error) {
	table := stats.NewTable("n", "t", "t/n", "feasible", "T1", "T2", "T3")
	pass := true
	for _, n := range []int{12, 24, 48, 96} {
		for _, t := range []int{0, n / 12, n/6 - 1, n / 6, n / 4, n / 3} {
			th, err := core.DefaultThresholds(n, t)
			feasible := err == nil
			wantFeasible := 6*t < n
			if feasible != wantFeasible {
				pass = false
			}
			if feasible {
				table.AddRow(n, t, float64(t)/float64(n), feasible, th.T1, th.T2, th.T3)
			} else {
				table.AddRow(n, t, float64(t)/float64(n), feasible, "-", "-", "-")
			}
		}
	}
	return Result{
		ID:    "E3",
		Title: "Theorem 4: threshold feasibility region (t < n/6)",
		Table: table,
		Notes: []string{verdict(pass, "default thresholds exist exactly when t < n/6")},
		Pass:  pass,
	}, nil
}

// runE9 checks the validity fast path on every algorithm: unanimous inputs
// decide immediately (core: first window; Ben-Or: round 1; Bracha: round 1).
func runE9(scale Scale) (Result, error) {
	trials := 5
	if scale == ScaleFull {
		trials = 25
	}
	table := stats.NewTable("algorithm", "n", "t", "input", "trials", "all-decided", "max-first-decision-window")
	pass := true

	type config struct {
		name string
		n, t int
		maxW int
	}
	configs := []config{
		{name: "core", n: 12, t: 1, maxW: 5},
		{name: "benor", n: 9, t: 2, maxW: 6},
		{name: "bracha", n: 7, t: 2, maxW: 60},
	}
	for _, cfg := range configs {
		for _, v := range []sim.Bit{0, 1} {
			type e9Acc struct{ decidedAll, maxFirst int }
			acc, err := ReduceTrials(trials,
				func() *e9Acc { return &e9Acc{} },
				func(a *e9Acc, trial int) (*e9Acc, error) {
					p := registry.Params{
						N: cfg.n, T: cfg.t, Seed: uint64(trial + 1),
						Inputs: registry.UnanimousInputs(cfg.n, v),
					}
					res, err := registry.RunPooledTrial(cfg.name, "full", "adversary", p, cfg.maxW)
					if err != nil {
						return a, err
					}
					if res.AllDecided && res.Decision == v && res.Agreement && res.Validity {
						a.decidedAll++
					}
					if res.FirstDecision > a.maxFirst {
						a.maxFirst = res.FirstDecision
					}
					return a, nil
				},
				func(into, from *e9Acc) *e9Acc {
					into.decidedAll += from.decidedAll
					if from.maxFirst > into.maxFirst {
						into.maxFirst = from.maxFirst
					}
					return into
				})
			if err != nil {
				return Result{}, err
			}
			if acc.decidedAll != trials {
				pass = false
			}
			table.AddRow(cfg.name, cfg.n, cfg.t, v, trials,
				fmt.Sprintf("%d/%d", acc.decidedAll, trials), acc.maxFirst)
		}
	}
	return Result{
		ID:    "E9",
		Title: "Validity fast path: unanimous inputs decide immediately",
		Table: table,
		Notes: []string{verdict(pass, "all algorithms decide the unanimous input within their first round")},
		Pass:  pass,
	}, nil
}

// runE12 re-verifies the termination mechanism of Theorem 4's proof: in no
// window can two processors deterministically adopt conflicting values
// (needs 2*T3 > n).
func runE12(scale Scale) (Result, error) {
	trials := 10
	windows := 400
	if scale == ScaleFull {
		trials = 50
		windows = 2000
	}
	table := stats.NewTable("n", "t", "T3", "trials", "windows-observed", "conflicting-windows")
	pass := true
	for _, nt := range [][2]int{{12, 1}, {24, 3}} {
		n, t := nt[0], nt[1]
		th, err := core.DefaultThresholds(n, t)
		if err != nil {
			return Result{}, err
		}
		acc, err := ReduceTrials(trials,
			func() [2]int { return [2]int{} },
			func(a [2]int, trial int) ([2]int, error) {
				c, w, err := countConflictWindows(n, t, th, uint64(trial+1), windows)
				a[0] += c
				a[1] += w
				return a, err
			},
			func(into, from [2]int) [2]int {
				into[0] += from[0]
				into[1] += from[1]
				return into
			})
		if err != nil {
			return Result{}, err
		}
		conflicts, observed := acc[0], acc[1]
		if conflicts > 0 {
			pass = false
		}
		table.AddRow(n, t, th.T3, trials, observed, conflicts)
	}
	return Result{
		ID:    "E12",
		Title: "Theorem 4 proof: no conflicting deterministic adoptions (2*T3 > n)",
		Table: table,
		Notes: []string{verdict(pass, "zero windows with both values deterministically adopted")},
		Pass:  pass,
	}, nil
}

func countConflictWindows(n, t int, th core.Thresholds, seed uint64, maxWindows int) (conflicts, observed int, err error) {
	s, err := sim.New(sim.Config{
		N: n, T: t, Seed: seed,
		Inputs:     patternInputs(n, 2), // split
		NewProcess: core.NewFactory(n, t, th),
	})
	if err != nil {
		return 0, 0, err
	}
	counts := make(map[sim.ProcID]*[2]int)
	s.OnEvent = func(ev sim.Event) {
		switch ev.Kind {
		case sim.EvDeliver:
			if _, v, ok := core.ExtractVote(ev.Msg); ok {
				c := counts[ev.Proc]
				if c == nil {
					c = new([2]int)
					counts[ev.Proc] = c
				}
				c[v]++
			}
		case sim.EvWindow:
			observed++
			det := [2]bool{}
			for _, c := range counts {
				for v := 0; v < 2; v++ {
					if c[v] >= th.T3 {
						det[v] = true
					}
				}
			}
			if det[0] && det[1] {
				conflicts++
			}
			counts = make(map[sim.ProcID]*[2]int)
		}
	}
	if _, err := s.RunWindows(adversary.NewRandomWindows(seed+99, 0.4, t), maxWindows); err != nil {
		return 0, 0, err
	}
	return conflicts, observed, nil
}
