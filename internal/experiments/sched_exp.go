package experiments

import (
	"fmt"

	"asyncagree/internal/registry"
	"asyncagree/internal/stats"
	"asyncagree/internal/stream"
)

// runE14 measures scheduler sensitivity: the E8/E9 decision-round curves
// re-run under every registered delivery scheduler. Two claims are checked:
//
//   - The validity fast path (E9) is delivery-independent: Definition 1
//     admits >= n-t senders per receiver, the decision thresholds fit
//     inside n-t, so unanimous inputs decide within the first round under
//     every discipline.
//   - Safety never depends on the discipline (any scheduler is just the
//     delivery half of a legal adversary), while the windows-to-decision
//     curve for contested (split) inputs does move with it — the axis the
//     lower bound turns.
func runE14(scale Scale) (Result, error) {
	trials := 6
	maxW := 4000
	if scale == ScaleFull {
		trials = 30
		maxW = 40000
	}

	type config struct {
		name string
		n, t int
	}
	configs := []config{
		{name: "core", n: 12, t: 1},
		{name: "benor", n: 9, t: 2},
	}

	table := stats.NewTable("algorithm", "scheduler", "inputs", "trials",
		"decided", "mean-windows", "max-first-decision")
	pass := true
	var notes []string
	for _, cfg := range configs {
		splitMeans := map[string]float64{}
		for _, sched := range registry.SchedulerNames() {
			ok, err := registry.SchedulerCompatible(sched, "full", cfg.name,
				registry.Params{N: cfg.n, T: cfg.t})
			if err != nil {
				return Result{}, err
			}
			if !ok {
				continue
			}
			for _, pattern := range []string{"ones", "split"} {
				type e14Acc struct {
					decided, maxFirst int
					unsafe            bool
					windows           stream.Summary
				}
				acc, err := ReduceTrials(trials,
					func() *e14Acc { return &e14Acc{} },
					func(a *e14Acc, trial int) (*e14Acc, error) {
						seed := uint64(trial + 1)
						inputs, err := registry.Inputs(pattern, cfg.n, seed)
						if err != nil {
							return a, err
						}
						p := registry.Params{N: cfg.n, T: cfg.t, Seed: seed, Inputs: inputs}
						res, err := registry.RunPooledTrial(cfg.name, "full", sched, p, maxW)
						if err != nil {
							return a, err
						}
						if !res.Agreement || !res.Validity {
							a.unsafe = true
						}
						if res.AllDecided {
							a.decided++
							a.windows.AddInt(res.Windows)
						}
						if res.FirstDecision > a.maxFirst {
							a.maxFirst = res.FirstDecision
						}
						return a, nil
					},
					func(into, from *e14Acc) *e14Acc {
						into.decided += from.decided
						if from.maxFirst > into.maxFirst {
							into.maxFirst = from.maxFirst
						}
						into.unsafe = into.unsafe || from.unsafe
						into.windows.Merge(&from.windows)
						return into
					})
				if err != nil {
					return Result{}, err
				}
				if acc.unsafe {
					pass = false
				}
				decided, maxFirst := acc.decided, acc.maxFirst
				mean := acc.windows.Mean()
				// A discipline with zero decided trials has no meaningful
				// mean (SummarizeInts yields 0, which would win "fastest");
				// leave it out of the curve note — the table row and the
				// failed verdict already record it.
				if pattern == "split" && decided > 0 {
					splitMeans[sched] = mean
				}
				// Unanimous inputs must decide under every discipline, in
				// the first window for the core algorithm (one message
				// wave of >= n-t unanimous reports crosses T2).
				if pattern == "ones" {
					if decided != trials {
						pass = false
					}
					if cfg.name == "core" && maxFirst > 0 {
						pass = false
					}
				}
				if decided < trials {
					pass = false // every discipline here must terminate
				}
				table.AddRow(cfg.name, sched, pattern, trials,
					fmt.Sprintf("%d/%d", decided, trials), mean, maxFirst)
			}
		}
		// Ties resolve to the first name in registration order so the
		// note, like the table, is deterministic.
		lo, hi := "", ""
		for _, sched := range registry.SchedulerNames() {
			m, ok := splitMeans[sched]
			if !ok {
				continue
			}
			if lo == "" || m < splitMeans[lo] {
				lo = sched
			}
			if hi == "" || m > splitMeans[hi] {
				hi = sched
			}
		}
		if lo != "" {
			notes = append(notes, fmt.Sprintf(
				"%s split-input curve: fastest discipline %s (%.2f windows), slowest %s (%.2f windows)",
				cfg.name, lo, splitMeans[lo], hi, splitMeans[hi]))
		}
	}
	notes = append(notes, verdict(pass,
		"unanimous inputs decide in the first round under every delivery discipline; safety never moves with the scheduler"))
	return Result{
		ID:    "E14",
		Title: "Scheduler sensitivity: E8/E9 decision-round curves across delivery disciplines",
		Table: table,
		Notes: notes,
		Pass:  pass,
	}, nil
}
