// Package bracha implements Bracha's asynchronous Byzantine agreement
// protocol (PODC 1984) with optimal resilience t < n/3, built on the
// reliable-broadcast primitive of internal/rbc.
//
// Each round r has three steps; every step's value is disseminated with
// reliable broadcast (so Byzantine processors cannot equivocate):
//
//	step 1: broadcast (r, 1, x). Wait for n-t accepted step-1 values;
//	        set x to their majority value.
//	step 2: broadcast (r, 2, x). Wait for n-t accepted step-2 values; if
//	        more than n/2 carry the same v, set x = v and mark it decided-
//	        candidate (D); otherwise x is unmarked.
//	step 3: broadcast (r, 3, x[, D]). Wait for n-t accepted step-3 values.
//	        If at least 2t+1 carry the same marked v: decide v.
//	        Else if at least t+1 carry some marked v: set x = v.
//	        Else: set x to a fresh random bit. Then r += 1.
//
// As in Bracha's paper, received claims are *validated* before they are
// counted: a step-2 value v only counts once the receiver's own step-1 tally
// could justify it (some (n-t)-subset has majority v), and a marked step-3
// value v only counts once the receiver's step-2 tally of v exceeds n/2.
// Byzantine processors therefore cannot smuggle in unjustified marks; by RBC
// totality every honest claim eventually validates at every honest receiver.
//
// Because a marked value requires more than n/2 step-2 acceptances and
// reliable broadcast prevents equivocation, no two processors can carry
// conflicting marked values into step 3, which yields agreement; unanimous
// inputs decide in round 1, which yields validity. Like Ben-Or, the protocol
// is exponentially slow on split inputs against a full-information adversary
// — the slowness the paper proves inherent (Theorems 5 and 17).
//
// The protocol logic lives in the embeddable Agreement type, which can be
// scoped to an arbitrary member subset; Proc wraps one full-network
// Agreement as a sim.Process. The Kapron-style committee algorithm
// (internal/committee) runs many scoped Agreements inside one host.
package bracha

import (
	"fmt"

	"asyncagree/internal/sim"
)

// Val is the comparable payload reliable-broadcast by each step: the bit
// plus the step-2 "decide candidate" mark used in step 3.
type Val struct {
	V sim.Bit
	// D marks a step-3 value as a decide candidate.
	D bool
}

// Proc is one processor running Bracha agreement over the full network. It
// implements sim.Process.
type Proc struct {
	id    sim.ProcID
	n, t  int
	input sim.Bit

	// Write-once output (latched from the agreement; survives Reset).
	out     sim.Bit
	decided bool

	ag *Agreement

	resetCounter int
}

var _ sim.Process = (*Proc)(nil)

// New constructs a Bracha processor. It returns an error unless n > 3t.
func New(id sim.ProcID, n, t int, input sim.Bit) (*Proc, error) {
	members := make([]sim.ProcID, n)
	for i := range members {
		members[i] = sim.ProcID(i)
	}
	ag, err := NewAgreement(id, members, t, "ba", input)
	if err != nil {
		return nil, err
	}
	ag.Start()
	return &Proc{id: id, n: n, t: t, input: input, ag: ag}, nil
}

// NewFactory returns a sim.Config-compatible constructor.
func NewFactory(n, t int) func(sim.ProcID, sim.Bit) sim.Process {
	if t < 0 || n <= 3*t {
		panic(fmt.Sprintf("bracha: invalid parameters n=%d t=%d (need t >= 0 and n > 3t)", n, t))
	}
	return func(id sim.ProcID, input sim.Bit) sim.Process {
		p, err := New(id, n, t, input)
		if err != nil {
			panic("bracha: " + err.Error()) // unreachable: parameters validated above
		}
		return p
	}
}

// ID implements sim.Process.
func (p *Proc) ID() sim.ProcID { return p.id }

// Input implements sim.Process.
func (p *Proc) Input() sim.Bit { return p.input }

// Output implements sim.Process.
func (p *Proc) Output() (sim.Bit, bool) { return p.out, p.decided }

// Round returns the current (round, step).
func (p *Proc) Round() (round, step int) { return p.ag.Round() }

// Value returns the current estimate.
func (p *Proc) Value() sim.Bit { return p.ag.Value() }

// Agreement exposes the underlying instance (tests and memory accounting).
func (p *Proc) Agreement() *Agreement { return p.ag }

// Send implements sim.Process.
func (p *Proc) Send() []sim.Message { return p.ag.Flush() }

// ReclaimPayload implements sim.PayloadReclaimer: the System returns the
// payload boxes of a completed window's batch to the RBC engine's pool.
func (p *Proc) ReclaimPayload(payload any) { p.ag.ReclaimPayload(payload) }

// Deliver implements sim.Process.
func (p *Proc) Deliver(m sim.Message, r sim.RandSource) {
	p.ag.Handle(m, r)
	if v, ok := p.ag.Output(); ok && !p.decided {
		p.out, p.decided = v, true
	}
}

// Recycle implements sim.Recycler: it rewinds the processor (and its
// embedded agreement + RBC engine) to the state New would produce for the
// given input, reusing their allocated structures.
func (p *Proc) Recycle(input sim.Bit) {
	p.input = input
	p.out, p.decided = 0, false
	p.resetCounter = 0
	p.ag.Recycle(input)
}

// Reset implements sim.Process. Bracha is not reset-tolerant; like Ben-Or it
// restarts from round 1 (used only to demonstrate the contrast with the core
// algorithm). The written output bit survives, per the model.
func (p *Proc) Reset() {
	p.resetCounter++
	p.ag.Reset()
}

// Snapshot implements sim.Process.
func (p *Proc) Snapshot() string {
	out := "_"
	if p.decided {
		out = string('0' + byte(p.out))
	}
	r, s := p.ag.Round()
	return fmt.Sprintf("r=%d s=%d x=%d out=%s", r, s, p.ag.Value(), out)
}
