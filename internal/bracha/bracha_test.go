package bracha

import (
	"testing"
	"testing/quick"

	"asyncagree/internal/adversary"
	"asyncagree/internal/rbc"
	"asyncagree/internal/sim"
)

func newSystem(t *testing.T, n, tt int, inputs []sim.Bit, seed uint64) *sim.System {
	t.Helper()
	s, err := sim.New(sim.Config{
		N: n, T: tt, Seed: seed, Inputs: inputs,
		NewProcess: NewFactory(n, tt),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func unanimous(n int, v sim.Bit) []sim.Bit {
	in := make([]sim.Bit, n)
	for i := range in {
		in[i] = v
	}
	return in
}

func split(n int) []sim.Bit {
	in := make([]sim.Bit, n)
	for i := range in {
		in[i] = sim.Bit(i % 2)
	}
	return in
}

func TestTagCoordinates(t *testing.T) {
	// Broadcast tags carry their (round, step) in the structured Tag fields
	// with the instance prefix as the label; the agreement accepts exactly
	// the tags of its own prefix with a valid step.
	ag, err := NewAgreement(0, []sim.ProcID{0, 1, 2, 3}, 1, "ba", 0)
	if err != nil {
		t.Fatal(err)
	}
	ag.Start()
	out := ag.Flush()
	if len(out) == 0 {
		t.Fatal("Start queued no broadcast")
	}
	for _, m := range out {
		msg, ok := m.Payload.(*rbc.Msg)
		if !ok {
			t.Fatalf("payload %T, want *rbc.Msg", m.Payload)
		}
		if msg.T.Label != "ba" || msg.T.Round != 1 || msg.T.Step != 1 {
			t.Fatalf("round-1 step-1 broadcast tagged %+v", msg.T)
		}
		if !ag.Handles(m) {
			t.Fatalf("agreement does not handle its own broadcast %+v", msg.T)
		}
	}
	alien := sim.Message{Payload: rbc.Msg{T: rbc.Tag{Sender: 0, Label: "other", Round: 1, Step: 1}}}
	if ag.Handles(alien) {
		t.Fatal("agreement claimed a foreign prefix")
	}
}

func TestUnanimousDecides(t *testing.T) {
	for _, v := range []sim.Bit{0, 1} {
		s := newSystem(t, 7, 2, unanimous(7, v), 5)
		res, err := s.RunWindows(adversary.FullDelivery{}, 200)
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllDecided || res.Decision != v || !res.Agreement || !res.Validity {
			t.Fatalf("v=%d: %+v", v, res)
		}
	}
}

func TestSplitTerminates(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		s := newSystem(t, 7, 2, split(7), seed)
		res, err := s.RunWindows(adversary.FullDelivery{}, 50000)
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllDecided || !res.Agreement || !res.Validity {
			t.Fatalf("seed %d: %+v", seed, res)
		}
	}
}

func TestToleratesSilentByzantine(t *testing.T) {
	// Corrupt t processors into silence; the other n-t must still agree.
	s := newSystem(t, 7, 2, unanimous(7, 1), 9)
	if err := s.Corrupt(5, NewSilent(5)); err != nil {
		t.Fatal(err)
	}
	if err := s.Corrupt(6, NewSilent(6)); err != nil {
		t.Fatal(err)
	}
	res, err := s.RunWindows(adversary.FullDelivery{}, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDecided || res.Decision != 1 || !res.Agreement || !res.Validity {
		t.Fatalf("%+v", res)
	}
}

func TestToleratesEquivocator(t *testing.T) {
	// An equivocating Byzantine sender cannot break agreement: RBC
	// consistency filters its split INITs.
	for seed := uint64(1); seed <= 3; seed++ {
		s := newSystem(t, 7, 2, split(7), seed)
		if err := s.Corrupt(0, NewEquivocator(0, 7, 50)); err != nil {
			t.Fatal(err)
		}
		res, err := s.RunWindows(adversary.FullDelivery{}, 50000)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Agreement || !res.Validity {
			t.Fatalf("seed %d: safety broken: %+v", seed, res)
		}
		if !res.AllDecided {
			t.Fatalf("seed %d: honest processors failed to decide", seed)
		}
	}
}

func TestToleratesFalseVoter(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		s := newSystem(t, 7, 2, unanimous(7, 1), seed)
		honest, err := New(3, 7, 2, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Corrupt(3, NewFalseVoter(honest)); err != nil {
			t.Fatal(err)
		}
		res, err := s.RunWindows(adversary.FullDelivery{}, 50000)
		if err != nil {
			t.Fatal(err)
		}
		// 6 honest processors with input 1, one liar voting 0: the liar
		// cannot flip validity (majority tally is 6 > n/2) nor agreement.
		if !res.AllDecided || !res.Agreement || res.Decision != 1 {
			t.Fatalf("seed %d: %+v", seed, res)
		}
	}
}

func TestAgreementPropertyUnderByzantineMix(t *testing.T) {
	check := func(seed uint64, pattern uint8, strategy uint8) bool {
		const n, tt = 7, 2
		inputs := make([]sim.Bit, n)
		for i := range inputs {
			inputs[i] = sim.Bit((pattern >> (i % 8)) & 1)
		}
		s, err := sim.New(sim.Config{
			N: n, T: tt, Seed: seed, Inputs: inputs, NewProcess: NewFactory(n, tt),
		})
		if err != nil {
			return false
		}
		switch strategy % 3 {
		case 0:
			_ = s.Corrupt(5, NewSilent(5))
			_ = s.Corrupt(6, NewSilent(6))
		case 1:
			_ = s.Corrupt(5, NewEquivocator(5, n, 30))
		case 2:
			h, err := New(6, n, tt, 0)
			if err != nil {
				return false
			}
			_ = s.Corrupt(6, NewFalseVoter(h))
		}
		res, err := s.RunWindows(adversary.FullDelivery{}, 20000)
		if err != nil {
			return false
		}
		return res.Agreement && res.Validity && res.AllDecided
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryBounded(t *testing.T) {
	// The engine must forget completed rounds; otherwise long adversarial
	// executions exhaust memory.
	s := newSystem(t, 7, 2, split(7), 2)
	if _, err := s.RunWindows(adversary.FullDelivery{}, 3000); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		p, ok := s.Proc(sim.ProcID(i)).(*Proc)
		if !ok {
			continue
		}
		if count := p.Agreement().InstanceCount(); count > 7*3*4 {
			t.Fatalf("processor %d holds %d RBC instances; forgetting broken", i, count)
		}
	}
}

func TestSnapshot(t *testing.T) {
	p, err := New(0, 7, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p.Snapshot(), "r=1 s=1 x=1 out=_"; got != want {
		t.Fatalf("Snapshot = %q, want %q", got, want)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 6, 2, 0); err == nil {
		t.Fatal("New with n <= 3t must fail")
	}
}
