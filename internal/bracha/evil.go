package bracha

import (
	"strconv"

	"asyncagree/internal/rbc"
	"asyncagree/internal/sim"
)

// This file provides adversary-controlled (Byzantine) processor strategies
// used with sim.System.Corrupt. They implement sim.Process but ignore the
// honest protocol.

// Silent is a Byzantine processor that never sends anything — the classic
// "corrupted processors may simulate crashed processors" behaviour.
type Silent struct {
	id sim.ProcID
}

var _ sim.Process = (*Silent)(nil)

// NewSilent returns a Silent strategy for processor id.
func NewSilent(id sim.ProcID) *Silent { return &Silent{id: id} }

// ID implements sim.Process.
func (s *Silent) ID() sim.ProcID { return s.id }

// Input implements sim.Process.
func (s *Silent) Input() sim.Bit { return 0 }

// Output implements sim.Process.
func (s *Silent) Output() (sim.Bit, bool) { return 0, false }

// Send implements sim.Process.
func (s *Silent) Send() []sim.Message { return nil }

// Deliver implements sim.Process.
func (s *Silent) Deliver(sim.Message, sim.RandSource) {}

// Reset implements sim.Process.
func (s *Silent) Reset() {}

// Snapshot implements sim.Process.
func (s *Silent) Snapshot() string { return "byz-silent" }

// Equivocator is a Byzantine processor that attacks reliable broadcast
// directly: for each of the first Rounds rounds and each step it sends
// INIT(0) to the lower half of the ring and INIT(1) to the upper half under
// the same tag, then refuses to echo anything. RBC consistency must ensure
// no two honest processors accept different values for any of its tags.
type Equivocator struct {
	id     sim.ProcID
	n      int
	rounds int
	sent   bool
}

var _ sim.Process = (*Equivocator)(nil)

// NewEquivocator returns an Equivocator for processor id in an n-processor
// system, equivocating for the first rounds rounds.
func NewEquivocator(id sim.ProcID, n, rounds int) *Equivocator {
	return &Equivocator{id: id, n: n, rounds: rounds}
}

// ID implements sim.Process.
func (e *Equivocator) ID() sim.ProcID { return e.id }

// Input implements sim.Process.
func (e *Equivocator) Input() sim.Bit { return 0 }

// Output implements sim.Process.
func (e *Equivocator) Output() (sim.Bit, bool) { return 0, false }

// Send implements sim.Process.
func (e *Equivocator) Send() []sim.Message {
	if e.sent {
		return nil
	}
	e.sent = true
	var out []sim.Message
	for r := 1; r <= e.rounds; r++ {
		for s := 1; s <= 3; s++ {
			tag := rbc.Tag{Sender: e.id, Label: "r" + strconv.Itoa(r) + "s" + strconv.Itoa(s)}
			for q := 0; q < e.n; q++ {
				v := Val{V: sim.Bit(0)}
				if q >= e.n/2 {
					v = Val{V: sim.Bit(1)}
				}
				out = append(out, sim.Message{
					From:    e.id,
					To:      sim.ProcID(q),
					Payload: rbc.Msg{T: tag, Kind: rbc.KindInit, Value: v},
				})
			}
		}
	}
	return out
}

// Deliver implements sim.Process.
func (e *Equivocator) Deliver(sim.Message, sim.RandSource) {}

// Reset implements sim.Process.
func (e *Equivocator) Reset() { e.sent = false }

// Snapshot implements sim.Process.
func (e *Equivocator) Snapshot() string { return "byz-equivocator" }

// FalseVoter runs the honest protocol but always injects the opposite bit
// into step-1 broadcasts, trying to drag the estimate away from the honest
// majority. It wraps an honest Proc and rewrites its outgoing INIT values.
type FalseVoter struct {
	inner *Proc
}

var _ sim.Process = (*FalseVoter)(nil)

// NewFalseVoter returns a FalseVoter wrapping an honest processor instance.
func NewFalseVoter(inner *Proc) *FalseVoter { return &FalseVoter{inner: inner} }

// ID implements sim.Process.
func (f *FalseVoter) ID() sim.ProcID { return f.inner.ID() }

// Input implements sim.Process.
func (f *FalseVoter) Input() sim.Bit { return f.inner.Input() }

// Output implements sim.Process.
func (f *FalseVoter) Output() (sim.Bit, bool) { return 0, false }

// Send implements sim.Process: flips the bit in outgoing INITs of its own
// broadcasts. The inner engine's broadcasts share one pooled *rbc.Msg box
// across all copies, so a box is flipped exactly once (flipping per copy
// would toggle the value back and forth); copies of one broadcast are
// consecutive, making last-pointer dedup sufficient.
func (f *FalseVoter) Send() []sim.Message {
	msgs := f.inner.Send()
	var last *rbc.Msg
	for i, m := range msgs {
		switch rm := m.Payload.(type) {
		case *rbc.Msg:
			if rm == last {
				continue // another copy of an already-flipped broadcast
			}
			last = rm
			if rm.Kind == rbc.KindInit && rm.T.Sender == f.inner.ID() {
				if v, ok := rm.Value.(Val); ok {
					rm.Value = valAny(1-v.V, v.D)
				}
			}
		case rbc.Msg:
			// Value payloads are per-copy; rewrite each one.
			if rm.Kind == rbc.KindInit && rm.T.Sender == f.inner.ID() {
				if v, ok := rm.Value.(Val); ok {
					rm.Value = valAny(1-v.V, v.D)
					msgs[i].Payload = rm
				}
			}
		}
	}
	return msgs
}

// ReclaimPayload implements sim.PayloadReclaimer by forwarding the dead
// payload boxes to the wrapped processor's pool.
func (f *FalseVoter) ReclaimPayload(payload any) { f.inner.ReclaimPayload(payload) }

// Deliver implements sim.Process.
func (f *FalseVoter) Deliver(m sim.Message, r sim.RandSource) { f.inner.Deliver(m, r) }

// Reset implements sim.Process.
func (f *FalseVoter) Reset() { f.inner.Reset() }

// Snapshot implements sim.Process.
func (f *FalseVoter) Snapshot() string { return "byz-falsevoter " + f.inner.Snapshot() }
