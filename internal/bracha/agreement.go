package bracha

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"asyncagree/internal/rbc"
	"asyncagree/internal/sim"
)

// Agreement is one embeddable instance of Bracha agreement over an arbitrary
// member subset, namespaced by a tag prefix. The full-network Proc wraps a
// single Agreement; the Kapron-style committee algorithm runs many scoped
// Agreements (one per group per seed bit) concurrently inside one host.
type Agreement struct {
	self    sim.ProcID
	members []sim.ProcID
	n, t    int
	prefix  string

	input   sim.Bit
	out     sim.Bit
	decided bool

	round int
	step  int
	x     sim.Bit
	mark  bool

	engine *rbc.Engine

	// acc[r][s][sender] is the accepted Val from sender for (round r, step s).
	acc map[int]map[int]map[sim.ProcID]Val
}

// NewAgreement constructs an agreement instance among members (which must
// contain self), tolerating t Byzantine members, with all reliable-broadcast
// tags namespaced under prefix. Call Start (or let the host do so) to queue
// the first broadcast.
func NewAgreement(self sim.ProcID, members []sim.ProcID, t int, prefix string, input sim.Bit) (*Agreement, error) {
	ms := append([]sim.ProcID(nil), members...)
	sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
	engine, err := rbc.NewScopedEngine(self, ms, t)
	if err != nil {
		return nil, fmt.Errorf("bracha agreement %q: %w", prefix, err)
	}
	return &Agreement{
		self:    self,
		members: ms,
		n:       len(ms),
		t:       t,
		prefix:  prefix,
		input:   input,
		round:   1,
		step:    1,
		x:       input,
		engine:  engine,
		acc:     make(map[int]map[int]map[sim.ProcID]Val),
	}, nil
}

// Start queues the round-1 step-1 broadcast.
func (a *Agreement) Start() { a.broadcastStep() }

// Output returns the decision, if reached.
func (a *Agreement) Output() (sim.Bit, bool) { return a.out, a.decided }

// Round returns the current (round, step).
func (a *Agreement) Round() (round, step int) { return a.round, a.step }

// Value returns the current estimate.
func (a *Agreement) Value() sim.Bit { return a.x }

// Members returns the member list (shared backing; read-only).
func (a *Agreement) Members() []sim.ProcID { return a.members }

// Flush drains queued outgoing messages.
func (a *Agreement) Flush() []sim.Message { return a.engine.Flush() }

func (a *Agreement) label(round, step int) string {
	return a.prefix + "/r" + strconv.Itoa(round) + "s" + strconv.Itoa(step)
}

// parseAgreementLabel inverts label for this instance's prefix.
func (a *Agreement) parseLabel(l string) (round, step int, ok bool) {
	rest, found := strings.CutPrefix(l, a.prefix+"/")
	if !found {
		return 0, 0, false
	}
	return parseRoundStep(rest)
}

// parseRoundStep parses "r<round>s<step>".
func parseRoundStep(l string) (round, step int, ok bool) {
	if len(l) < 4 || l[0] != 'r' {
		return 0, 0, false
	}
	sIdx := strings.IndexByte(l, 's')
	if sIdx < 2 || sIdx == len(l)-1 {
		return 0, 0, false
	}
	r, err1 := strconv.Atoi(l[1:sIdx])
	s, err2 := strconv.Atoi(l[sIdx+1:])
	if err1 != nil || err2 != nil {
		return 0, 0, false
	}
	return r, s, true
}

// Handles reports whether the message belongs to this instance (an RBC
// message whose tag label carries the instance prefix).
func (a *Agreement) Handles(m sim.Message) bool {
	msg, ok := m.Payload.(rbc.Msg)
	if !ok {
		return false
	}
	_, _, ok = a.parseLabel(msg.T.Label)
	return ok
}

// Handle processes one incoming message and advances the state machine.
func (a *Agreement) Handle(m sim.Message, r sim.RandSource) {
	for _, acc := range a.engine.Handle(m) {
		round, step, ok := a.parseLabel(acc.T.Label)
		if !ok || step < 1 || step > 3 {
			continue
		}
		val, ok := acc.Value.(Val)
		if !ok {
			continue
		}
		byStep := a.acc[round]
		if byStep == nil {
			byStep = make(map[int]map[sim.ProcID]Val, 3)
			a.acc[round] = byStep
		}
		bySender := byStep[step]
		if bySender == nil {
			bySender = make(map[sim.ProcID]Val, a.n)
			byStep[step] = bySender
		}
		if _, dup := bySender[acc.T.Sender]; dup {
			continue
		}
		bySender[acc.T.Sender] = val
	}
	a.progress(r)
}

func (a *Agreement) broadcastStep() {
	a.engine.Broadcast(a.label(a.round, a.step), Val{V: a.x, D: a.mark && a.step == 3})
}

// countVals tallies accepted values for (round, step) over all senders.
func (a *Agreement) countVals(round, step int) [2]int {
	var count [2]int
	for _, v := range a.acc[round][step] {
		count[v.V]++
	}
	return count
}

// validStep returns the accepted values for (round, step) that pass
// Bracha's message validation (see the package comment).
func (a *Agreement) validStep(round, step int) map[sim.ProcID]Val {
	all := a.acc[round][step]
	if step == 1 {
		return all
	}
	prev := a.countVals(round, step-1)
	valid := make(map[sim.ProcID]Val, len(all))
	for q, v := range all {
		switch {
		case step == 2:
			if 2*prev[v.V] > a.n-a.t {
				valid[q] = v
			}
		case step == 3 && !v.D:
			valid[q] = v
		case step == 3:
			if 2*prev[v.V] > a.n {
				valid[q] = v
			}
		}
	}
	return valid
}

// progress advances through steps while the current step's wait threshold
// (n-t validated accepted values) is met.
func (a *Agreement) progress(r sim.RandSource) {
	for {
		cur := a.validStep(a.round, a.step)
		if len(cur) < a.n-a.t {
			return
		}
		switch a.step {
		case 1:
			var count [2]int
			for _, v := range cur {
				count[v.V]++
			}
			if count[1] > count[0] {
				a.x = 1
			} else {
				a.x = 0
			}
			a.step = 2
		case 2:
			var count [2]int
			for _, v := range cur {
				count[v.V]++
			}
			a.mark = false
			for v := sim.Bit(0); v <= 1; v++ {
				if 2*count[v] > a.n {
					a.x, a.mark = v, true
				}
			}
			a.step = 3
		case 3:
			var marked [2]int
			for _, v := range cur {
				if v.D {
					marked[v.V]++
				}
			}
			switch {
			case marked[0] >= 2*a.t+1:
				a.decide(0)
				a.x = 0
			case marked[1] >= 2*a.t+1:
				a.decide(1)
				a.x = 1
			case marked[0] >= a.t+1:
				a.x = 0
			case marked[1] >= a.t+1:
				a.x = 1
			default:
				a.x = sim.Bit(r.Bit())
			}
			a.mark = false
			delete(a.acc, a.round)
			round := a.round
			a.engine.Forget(func(tag rbc.Tag) bool {
				r0, _, ok := a.parseLabel(tag.Label)
				return ok && r0 <= round-1
			})
			a.round++
			a.step = 1
		}
		a.broadcastStep()
	}
}

func (a *Agreement) decide(v sim.Bit) {
	if !a.decided {
		a.out, a.decided = v, true
	}
}

// InstanceCount exposes the engine's live RBC instance count (memory
// accounting).
func (a *Agreement) InstanceCount() int { return a.engine.InstanceCount() }

// Reset erases all protocol state and restarts from round 1.
func (a *Agreement) Reset() {
	a.rewind(a.input)
}

// Recycle rewinds the instance to the state NewAgreement + Start would
// produce for the given input, keeping the accumulator map, RBC engine
// structures, and outbox capacity (trial recycling).
func (a *Agreement) Recycle(input sim.Bit) {
	a.input = input
	a.out = 0
	a.rewind(input)
}

// rewind restarts the protocol from round 1 with estimate x, reusing
// allocated structures (shared by Reset and Recycle).
func (a *Agreement) rewind(x sim.Bit) {
	a.round, a.step = 1, 1
	a.x = x
	a.mark = false
	a.decided = false
	clear(a.acc)
	a.engine.Reset()
	a.broadcastStep()
}
