package bracha

import (
	"fmt"
	"sort"

	"asyncagree/internal/rbc"
	"asyncagree/internal/sim"
)

// Agreement is one embeddable instance of Bracha agreement over an arbitrary
// member subset, namespaced by a tag prefix. The full-network Proc wraps a
// single Agreement; the Kapron-style committee algorithm runs many scoped
// Agreements (one per group per seed bit) concurrently inside one host.
type Agreement struct {
	self    sim.ProcID
	members []sim.ProcID
	n, t    int
	prefix  string

	input   sim.Bit
	out     sim.Bit
	decided bool

	round int
	step  int
	x     sim.Bit
	mark  bool

	engine *rbc.Engine

	// acc[r][s][sender] is the accepted Val from sender for (round r, step s).
	acc map[int]map[int]map[sim.ProcID]Val

	// roundPool/stepPool recycle the per-round and per-step accumulator maps
	// released when a round completes (trial recycling, DESIGN.md §2a).
	roundPool []map[int]map[sim.ProcID]Val
	stepPool  []map[sim.ProcID]Val
}

// NewAgreement constructs an agreement instance among members (which must
// contain self), tolerating t Byzantine members, with all reliable-broadcast
// tags namespaced under prefix. Call Start (or let the host do so) to queue
// the first broadcast.
func NewAgreement(self sim.ProcID, members []sim.ProcID, t int, prefix string, input sim.Bit) (*Agreement, error) {
	ms := append([]sim.ProcID(nil), members...)
	sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
	engine, err := rbc.NewScopedEngine(self, ms, t)
	if err != nil {
		return nil, fmt.Errorf("bracha agreement %q: %w", prefix, err)
	}
	return &Agreement{
		self:    self,
		members: ms,
		n:       len(ms),
		t:       t,
		prefix:  prefix,
		input:   input,
		round:   1,
		step:    1,
		x:       input,
		engine:  engine,
		acc:     make(map[int]map[int]map[sim.ProcID]Val),
	}, nil
}

// Start queues the round-1 step-1 broadcast.
func (a *Agreement) Start() { a.broadcastStep() }

// Output returns the decision, if reached.
func (a *Agreement) Output() (sim.Bit, bool) { return a.out, a.decided }

// Round returns the current (round, step).
func (a *Agreement) Round() (round, step int) { return a.round, a.step }

// Value returns the current estimate.
func (a *Agreement) Value() sim.Bit { return a.x }

// Members returns the member list (shared backing; read-only).
func (a *Agreement) Members() []sim.ProcID { return a.members }

// Flush drains queued outgoing messages.
func (a *Agreement) Flush() []sim.Message { return a.engine.Flush() }

// Handles reports whether the message belongs to this instance (an RBC
// message — pooled box or plain value — whose tag label is the instance
// prefix; the round and step live in the tag's structured fields).
func (a *Agreement) Handles(m sim.Message) bool {
	switch msg := m.Payload.(type) {
	case *rbc.Msg:
		return msg.T.Label == a.prefix
	case rbc.Msg:
		return msg.T.Label == a.prefix
	default:
		return false
	}
}

// Handle processes one incoming message and advances the state machine.
func (a *Agreement) Handle(m sim.Message, r sim.RandSource) {
	for _, acc := range a.engine.Handle(m) {
		round, step := acc.T.Round, acc.T.Step
		if acc.T.Label != a.prefix || round < 1 || step < 1 || step > 3 {
			continue
		}
		val, ok := acc.Value.(Val)
		if !ok {
			continue
		}
		if round < a.round {
			// A straggler for a completed round: its accumulators were
			// already released (releaseRound), and progress only ever reads
			// the current round and its predecessor step, so storing the
			// value would recreate maps that nothing reads and nothing
			// returns to the pools — the old steady-state allocation leak of
			// the Bracha benchmark.
			continue
		}
		byStep := a.acc[round]
		if byStep == nil {
			byStep = a.takeRoundMap()
			a.acc[round] = byStep
		}
		bySender := byStep[step]
		if bySender == nil {
			bySender = a.takeStepMap()
			byStep[step] = bySender
		}
		if _, dup := bySender[acc.T.Sender]; dup {
			continue
		}
		bySender[acc.T.Sender] = val
	}
	a.progress(r)
}

func (a *Agreement) broadcastStep() {
	a.engine.BroadcastAt(a.prefix, a.round, a.step, valAny(a.x, a.mark && a.step == 3))
}

// valBoxes interns the four possible Val payloads as pre-boxed interface
// values, so queuing a broadcast never re-boxes one. Interface equality
// compares dynamic type and value, so interned boxes compare equal to
// hand-built Val payloads (Byzantine strategies, tests) in the threshold
// maps.
var valBoxes = [2][2]any{
	{Val{V: 0, D: false}, Val{V: 0, D: true}},
	{Val{V: 1, D: false}, Val{V: 1, D: true}},
}

// valAny returns the interned boxed Val for (v, d).
func valAny(v sim.Bit, d bool) any {
	i := 0
	if d {
		i = 1
	}
	return valBoxes[v][i]
}

// takeRoundMap fetches a per-round accumulator map from the pool.
func (a *Agreement) takeRoundMap() map[int]map[sim.ProcID]Val {
	if n := len(a.roundPool); n > 0 {
		m := a.roundPool[n-1]
		a.roundPool = a.roundPool[:n-1]
		return m
	}
	return make(map[int]map[sim.ProcID]Val, 3)
}

// takeStepMap fetches a per-step accumulator map from the pool.
func (a *Agreement) takeStepMap() map[sim.ProcID]Val {
	if n := len(a.stepPool); n > 0 {
		m := a.stepPool[n-1]
		a.stepPool = a.stepPool[:n-1]
		return m
	}
	return make(map[sim.ProcID]Val, a.n)
}

// releaseRound returns a completed round's accumulator maps to the pools.
func (a *Agreement) releaseRound(round int) {
	byStep := a.acc[round]
	if byStep == nil {
		return
	}
	for s, m := range byStep {
		clear(m)
		a.stepPool = append(a.stepPool, m)
		delete(byStep, s)
	}
	a.roundPool = append(a.roundPool, byStep)
	delete(a.acc, round)
}

// countVals tallies accepted values for (round, step) over all senders.
func (a *Agreement) countVals(round, step int) [2]int {
	var count [2]int
	for _, v := range a.acc[round][step] {
		count[v.V]++
	}
	return count
}

// validCounts tallies the accepted values for (round, step) that pass
// Bracha's message validation (see the package comment): the number of
// validated senders, the per-value totals, and — step 3 only — the
// per-value totals of validated *marked* values. Counting directly (rather
// than materializing the validated subset as a map) keeps the Deliver hot
// path allocation-free.
func (a *Agreement) validCounts(round, step int) (valid int, count, marked [2]int) {
	all := a.acc[round][step]
	if step == 1 {
		for _, v := range all {
			count[v.V]++
		}
		return len(all), count, marked
	}
	prev := a.countVals(round, step-1)
	for _, v := range all {
		switch {
		case step == 2:
			if 2*prev[v.V] > a.n-a.t {
				valid++
				count[v.V]++
			}
		case !v.D: // step 3, unmarked: always valid
			valid++
			count[v.V]++
		default: // step 3, marked: needs step-2 justification
			if 2*prev[v.V] > a.n {
				valid++
				count[v.V]++
				marked[v.V]++
			}
		}
	}
	return valid, count, marked
}

// progress advances through steps while the current step's wait threshold
// (n-t validated accepted values) is met.
func (a *Agreement) progress(r sim.RandSource) {
	for {
		valid, count, marked := a.validCounts(a.round, a.step)
		if valid < a.n-a.t {
			return
		}
		switch a.step {
		case 1:
			if count[1] > count[0] {
				a.x = 1
			} else {
				a.x = 0
			}
			a.step = 2
		case 2:
			a.mark = false
			for v := sim.Bit(0); v <= 1; v++ {
				if 2*count[v] > a.n {
					a.x, a.mark = v, true
				}
			}
			a.step = 3
		case 3:
			switch {
			case marked[0] >= 2*a.t+1:
				a.decide(0)
				a.x = 0
			case marked[1] >= 2*a.t+1:
				a.decide(1)
				a.x = 1
			case marked[0] >= a.t+1:
				a.x = 0
			case marked[1] >= a.t+1:
				a.x = 1
			default:
				a.x = sim.Bit(r.Bit())
			}
			a.mark = false
			a.releaseRound(a.round)
			round := a.round
			a.engine.Forget(func(tag rbc.Tag) bool {
				return tag.Label == a.prefix && tag.Round <= round-1
			})
			a.round++
			a.step = 1
		}
		a.broadcastStep()
	}
}

func (a *Agreement) decide(v sim.Bit) {
	if !a.decided {
		a.out, a.decided = v, true
	}
}

// InstanceCount exposes the engine's live RBC instance count (memory
// accounting).
func (a *Agreement) InstanceCount() int { return a.engine.InstanceCount() }

// Reset erases all protocol state and restarts from round 1.
func (a *Agreement) Reset() {
	a.rewind(a.input)
}

// Recycle rewinds the instance to the state NewAgreement + Start would
// produce for the given input, keeping the accumulator map, RBC engine
// structures, and outbox capacity (trial recycling).
func (a *Agreement) Recycle(input sim.Bit) {
	a.input = input
	a.out = 0
	a.rewind(input)
}

// rewind restarts the protocol from round 1 with estimate x, reusing
// allocated structures (shared by Reset and Recycle).
func (a *Agreement) rewind(x sim.Bit) {
	a.round, a.step = 1, 1
	a.x = x
	a.mark = false
	a.decided = false
	for round := range a.acc {
		a.releaseRound(round)
	}
	a.engine.Reset()
	a.broadcastStep()
}

// ReclaimPayload forwards the System's dead payload boxes to the RBC
// engine's pool; hosts embedding an Agreement implement
// sim.PayloadReclaimer by delegating here.
func (a *Agreement) ReclaimPayload(payload any) { a.engine.ReclaimPayload(payload) }
