// Package rng provides a small, deterministic, forkable pseudo-random number
// generator used by every randomized component in this repository.
//
// Determinism matters here more than statistical perfection: the paper's
// adversary is a deterministic function of the partial execution, and the
// experiments in EXPERIMENTS.md must be exactly replayable from a seed. The
// generator is splitmix64 (Steele, Lea, Flood 2014), which passes BigCrush on
// its 64-bit outputs and has a trivially forkable structure.
//
// Source is NOT safe for concurrent use; fork one Source per goroutine.
package rng

import (
	"fmt"
	"math/bits"
)

// Source is a deterministic pseudo-random source. The zero value is a valid
// source seeded with 0; prefer New for explicit seeding.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Reseed rewinds the source in place to the state New(seed) would produce,
// discarding all history. Trial-recycling callers use this to reuse one
// allocated Source across many seeded executions.
func (s *Source) Reseed(seed uint64) {
	s.state = seed
}

// golden is the splitmix64 increment (odd, derived from the golden ratio).
const golden = 0x9e3779b97f4a7c15

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	s.state += golden
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0,
// mirroring math/rand semantics.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("rng: Intn called with n = %d (need n > 0)", n))
	}
	// Lemire's multiply-shift rejection method for unbiased bounded values.
	bound := uint64(n)
	for {
		v := s.Uint64()
		hi, lo := bits.Mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// Bit returns a uniformly distributed bit (0 or 1). This is the "local coin"
// every randomized agreement algorithm in the repository flips.
func (s *Source) Bit() uint8 {
	return uint8(s.Uint64() >> 63)
}

// Bool returns a uniformly distributed boolean.
func (s *Source) Bool() bool {
	return s.Bit() == 1
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Fork returns a new independent Source derived from this one and the label.
// Forking is used to give each processor its own random stream (the paper
// assumes "each processor has its own source of random bits, and all of these
// sources are unbiased and independent").
func (s *Source) Fork(label uint64) *Source {
	dst := new(Source)
	s.ForkInto(dst, label)
	return dst
}

// ForkInto derives the same stream Fork(label) would return but writes it
// into dst instead of allocating — the in-place counterpart used when
// recycling a system's per-processor sources. It advances this source's
// state exactly as Fork does.
func (s *Source) ForkInto(dst *Source, label uint64) {
	// Mix the label through one splitmix64 round so that adjacent labels
	// yield unrelated streams.
	z := s.Uint64() + label*golden
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	dst.state = z ^ (z >> 31)
}

// Perm returns a uniformly random permutation of [0, n) using Fisher-Yates.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	s.PermInto(p)
	return p
}

// PermInto fills p with a uniformly random permutation of [0, len(p)) using
// Fisher-Yates — the allocation-free counterpart of Perm for callers that
// own reusable scratch. It draws exactly the same values from the stream as
// Perm(len(p)).
func (s *Source) PermInto(p []int) {
	for i := range p {
		p[i] = i
	}
	for i := len(p) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Subset returns a uniformly random k-element subset of [0, n), sorted
// ascending. It panics if k > n or k < 0.
func (s *Source) Subset(n, k int) []int {
	return s.SubsetInto(make([]int, n), k)
}

// SubsetInto returns a uniformly random k-element subset of [0, len(dst)),
// sorted ascending, in dst[:k] — the allocation-free counterpart of Subset
// for callers that own an n-length scratch slice (contents need not be
// initialized). It draws exactly the same values from the stream as
// Subset(len(dst), k). It panics if k > len(dst) or k < 0.
func (s *Source) SubsetInto(dst []int, k int) []int {
	if k < 0 || k > len(dst) {
		panic(fmt.Sprintf("rng: SubsetInto called with k = %d out of range [0, %d]", k, len(dst)))
	}
	// Fisher-Yates over the scratch, then sort by insertion (k is typically
	// small relative to the cost of importing sort).
	s.PermInto(dst)
	out := dst[:k]
	insertionSort(out)
	return out
}

func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}
