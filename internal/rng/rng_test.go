package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sources with equal seeds diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs of 100", same)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(7)
	for _, n := range []int{1, 2, 3, 10, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	s := New(99)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[s.Intn(n)]++
	}
	want := trials / n
	for v, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Errorf("value %d drawn %d times, want about %d", v, c, want)
		}
	}
}

func TestBitBalance(t *testing.T) {
	s := New(5)
	const trials = 100000
	ones := 0
	for i := 0; i < trials; i++ {
		b := s.Bit()
		if b > 1 {
			t.Fatalf("Bit returned %d", b)
		}
		ones += int(b)
	}
	if ones < trials*45/100 || ones > trials*55/100 {
		t.Fatalf("bit balance off: %d ones of %d", ones, trials)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(42)
	a := parent.Fork(1)
	b := parent.Fork(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("forked streams overlap: %d of 100 outputs equal", same)
	}
}

func TestForkDeterministic(t *testing.T) {
	a := New(42).Fork(7)
	b := New(42).Fork(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("fork with same parent seed and label not deterministic")
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(11)
	for _, n := range []int{0, 1, 2, 5, 32} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make(map[int]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

// TestSubsetIntoMatchesSubset pins the stream-identity contract: the
// allocation-free scratch variants draw exactly the same values as their
// allocating counterparts, so swapping one for the other never changes an
// execution.
func TestSubsetIntoMatchesSubset(t *testing.T) {
	a, b := New(99), New(99)
	scratch := make([]int, 32)
	for _, nk := range [][2]int{{10, 3}, {10, 10}, {1, 0}, {32, 30}, {7, 1}} {
		n, k := nk[0], nk[1]
		want := a.Subset(n, k)
		got := b.SubsetInto(scratch[:n], k)
		if len(got) != len(want) {
			t.Fatalf("SubsetInto(%d, %d) length %d, want %d", n, k, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("SubsetInto(%d, %d) = %v, want %v", n, k, got, want)
			}
		}
	}
	if testing.AllocsPerRun(100, func() { New(5).SubsetInto(scratch[:16], 12) }) > 1 {
		t.Fatal("SubsetInto allocates beyond its Source")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SubsetInto with k > len(dst) did not panic")
		}
	}()
	New(1).SubsetInto(scratch[:4], 5)
}

func TestSubsetProperties(t *testing.T) {
	s := New(13)
	check := func(n, k uint8) bool {
		nn := int(n%20) + 1
		kk := int(k) % (nn + 1)
		sub := s.Subset(nn, kk)
		if len(sub) != kk {
			return false
		}
		for i, v := range sub {
			if v < 0 || v >= nn {
				return false
			}
			if i > 0 && sub[i-1] >= v {
				return false // must be sorted strictly ascending
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSubsetCoverage(t *testing.T) {
	// Every element should appear in some subset over many draws.
	s := New(17)
	const n, k = 10, 3
	seen := make([]bool, n)
	for i := 0; i < 1000; i++ {
		for _, v := range s.Subset(n, k) {
			seen[v] = true
		}
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("element %d never selected by Subset", v)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Intn(100)
	}
}
