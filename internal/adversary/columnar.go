package adversary

import (
	"math/bits"

	"asyncagree/internal/sim"
)

// Columnar planning (sim.ColumnarPlanner) for the stock adversaries. On the
// columnar fast path the System never materializes the window's batch, so
// an adversary opts in by planning from the published vote columns instead.
// Most adversaries here never read the batch at all — their columnar plan
// IS their message plan — and SplitVote, the one full-information adversary
// whose strategy depends on message contents, classifies senders straight
// off the columns. Every plan below is bit-for-bit the plan the same
// adversary state would produce on the message path, which is what keeps
// columnar runs byte-identical.

var (
	_ sim.ColumnarPlanner = FullDelivery{}
	_ sim.ColumnarPlanner = FixedSilence{}
	_ sim.ColumnarPlanner = (*RandomWindows)(nil)
	_ sim.ColumnarPlanner = (*ResetStorm)(nil)
	_ sim.ColumnarPlanner = (*SplitVote)(nil)
	_ sim.ColumnarPlanner = (*TargetDecided)(nil)
	_ sim.ColumnarPlanner = (*CrashSchedule)(nil)
)

// PlansColumnar implements sim.ColumnarPlanner.
func (FullDelivery) PlansColumnar() bool { return true }

// PlanDeliveryColumnar implements sim.ColumnarPlanner.
func (a FullDelivery) PlanDeliveryColumnar(s *sim.System, _ *sim.ColumnSet) sim.Window {
	return a.PlanDelivery(s, nil)
}

// PlansColumnar implements sim.ColumnarPlanner.
func (FixedSilence) PlansColumnar() bool { return true }

// PlanDeliveryColumnar implements sim.ColumnarPlanner.
func (a FixedSilence) PlanDeliveryColumnar(s *sim.System, _ *sim.ColumnSet) sim.Window {
	return a.PlanDelivery(s, nil)
}

// PlansColumnar implements sim.ColumnarPlanner.
func (*RandomWindows) PlansColumnar() bool { return true }

// PlanDeliveryColumnar implements sim.ColumnarPlanner.
func (a *RandomWindows) PlanDeliveryColumnar(s *sim.System, _ *sim.ColumnSet) sim.Window {
	return a.PlanDelivery(s, nil)
}

// PlansColumnar implements sim.ColumnarPlanner.
func (*ResetStorm) PlansColumnar() bool { return true }

// PlanDeliveryColumnar implements sim.ColumnarPlanner.
func (a *ResetStorm) PlanDeliveryColumnar(s *sim.System, _ *sim.ColumnSet) sim.Window {
	return a.PlanDelivery(s, nil)
}

// PlansColumnar implements sim.ColumnarPlanner: the split-vote strategy
// reads message contents, but the columns carry exactly the information it
// needs. The Val-based classification below assumes the stock convention
// Classify encodes for the columnar algorithms (a record is value-bearing
// iff its column value is a bit, i.e. below sim.ValNeutral) — true for
// core.ClassifyVote and benor.ClassifyVote, the only classifiers the
// registry pairs with columnar algorithms.
func (*SplitVote) PlansColumnar() bool { return true }

// PlanDeliveryColumnar implements sim.ColumnarPlanner. A sender's vote is
// its first value-bearing record in (round, class) order; iterating the
// sorted columns first-wins reproduces the batch-order classification,
// because each sender's records are published in ascending key order.
func (a *SplitVote) PlanDeliveryColumnar(s *sim.System, cols *sim.ColumnSet) sim.Window {
	a.Windows++
	n, t := s.N(), s.T()
	a.ensureScratch(n)
	words := cols.Words()
	for _, c := range cols.Columns() {
		if c.Val >= sim.ValNeutral {
			continue
		}
		for w := 0; w < words; w++ {
			m := c.Word(w)
			for m != 0 {
				q := w<<6 | bits.TrailingZeros64(m)
				m &= m - 1
				if q < n && a.votes[q] < 0 {
					a.votes[q] = int8(c.Val)
				}
			}
		}
	}
	return a.planFromVotes(n, t)
}

// PlansColumnar implements sim.ColumnarPlanner by probing the inner
// adversary.
func (a *TargetDecided) PlansColumnar() bool {
	cp, ok := a.Inner.(sim.ColumnarPlanner)
	return ok && cp.PlansColumnar()
}

// PlanDeliveryColumnar implements sim.ColumnarPlanner: the inner columnar
// plan with the same reset targeting applied over it.
func (a *TargetDecided) PlanDeliveryColumnar(s *sim.System, cols *sim.ColumnSet) sim.Window {
	return a.target(s, a.Inner.(sim.ColumnarPlanner).PlanDeliveryColumnar(s, cols))
}

// PlansColumnar implements sim.ColumnarPlanner by probing the inner
// adversary.
func (a *CrashSchedule) PlansColumnar() bool {
	cp, ok := a.Inner.(sim.ColumnarPlanner)
	return ok && cp.PlansColumnar()
}

// PlanDeliveryColumnar implements sim.ColumnarPlanner: crashes fire before
// the inner plan exactly as on the message path. A processor crashed here
// had already broadcast this window — its columns stay, matching the
// legacy path where its messages were already in the batch — and it is
// skipped at tally time like any crashed receiver.
func (a *CrashSchedule) PlanDeliveryColumnar(s *sim.System, cols *sim.ColumnSet) sim.Window {
	for _, p := range a.CrashAt[s.Windows()] {
		_ = s.StepCrash(p)
	}
	return a.Inner.(sim.ColumnarPlanner).PlanDeliveryColumnar(s, cols)
}
