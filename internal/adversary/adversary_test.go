package adversary

import (
	"fmt"
	"testing"
	"testing/quick"

	"asyncagree/internal/sim"
)

// voteProc broadcasts a fixed bit each window and never decides; it lets the
// tests observe adversary delivery patterns precisely.
type voteProc struct {
	id    sim.ProcID
	n     int
	input sim.Bit
	dirty bool
	got   []sim.Message
}

type votePayload struct{ V sim.Bit }

func newVoteFactory(n int) func(sim.ProcID, sim.Bit) sim.Process {
	return func(id sim.ProcID, input sim.Bit) sim.Process {
		return &voteProc{id: id, n: n, input: input, dirty: true}
	}
}

func (p *voteProc) ID() sim.ProcID          { return p.id }
func (p *voteProc) Input() sim.Bit          { return p.input }
func (p *voteProc) Output() (sim.Bit, bool) { return 0, false }
func (p *voteProc) Reset()                  { p.got = nil; p.dirty = false }
func (p *voteProc) Snapshot() string        { return fmt.Sprintf("got=%d", len(p.got)) }
func (p *voteProc) Deliver(m sim.Message, _ sim.RandSource) {
	p.got = append(p.got, m)
	p.dirty = true
}

func (p *voteProc) Send() []sim.Message {
	if !p.dirty {
		return nil
	}
	p.dirty = false
	out := make([]sim.Message, 0, p.n)
	for q := 0; q < p.n; q++ {
		out = append(out, sim.Message{To: sim.ProcID(q), Payload: votePayload{V: p.input}})
	}
	return out
}

func classify(m sim.Message) VoteInfo {
	if v, ok := m.Payload.(votePayload); ok {
		return VoteInfo{HasValue: true, Value: v.V}
	}
	return VoteInfo{}
}

func newVoteSystem(t *testing.T, n, tt int, ones int) *sim.System {
	t.Helper()
	inputs := make([]sim.Bit, n)
	for i := 0; i < ones; i++ {
		inputs[i] = 1
	}
	s, err := sim.New(sim.Config{
		N: n, T: tt, Seed: 1, Inputs: inputs, NewProcess: newVoteFactory(n),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFullDeliveryDeliversEverything(t *testing.T) {
	s := newVoteSystem(t, 5, 1, 2)
	if err := s.ApplyWindowWith(FullDelivery{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if got := len(s.Proc(sim.ProcID(i)).(*voteProc).got); got != 5 {
			t.Fatalf("processor %d got %d messages, want 5", i, got)
		}
	}
}

func TestFixedSilence(t *testing.T) {
	s := newVoteSystem(t, 5, 2, 2)
	adv := FixedSilence{Silent: []sim.ProcID{0, 3}}
	if err := s.ApplyWindowWith(adv); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		for _, m := range s.Proc(sim.ProcID(i)).(*voteProc).got {
			if m.From == 0 || m.From == 3 {
				t.Fatalf("silenced sender %d delivered to %d", m.From, i)
			}
		}
		if got := len(s.Proc(sim.ProcID(i)).(*voteProc).got); got != 3 {
			t.Fatalf("processor %d got %d messages, want 3", i, got)
		}
	}
}

func TestRandomWindowsLegality(t *testing.T) {
	// Property: RandomWindows always produces windows the System accepts.
	check := func(seed uint64) bool {
		s := newVoteSystem(t, 9, 2, 4)
		adv := NewRandomWindows(seed, 0.7, 2)
		for w := 0; w < 20; w++ {
			if err := s.ApplyWindowWith(adv); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestResetStormRotates(t *testing.T) {
	s := newVoteSystem(t, 6, 2, 3)
	adv := &ResetStorm{}
	for w := 0; w < 3; w++ {
		if err := s.ApplyWindowWith(adv); err != nil {
			t.Fatal(err)
		}
	}
	// 3 windows x 2 resets = 6 resets, rotating: every processor reset once.
	for i := 0; i < 6; i++ {
		if s.ResetCount(sim.ProcID(i)) != 1 {
			t.Fatalf("processor %d reset %d times, want exactly 1", i, s.ResetCount(sim.ProcID(i)))
		}
	}
}

func TestSplitVoteCapsCounts(t *testing.T) {
	// 7 ones and 5 zeros among 12 senders, cap 5, t = 2: the adversary must
	// exclude 2 one-senders so every receiver sees at most 5 of each value.
	s := newVoteSystem(t, 12, 2, 7)
	adv := &SplitVote{Classify: classify, Cap: 5}
	if err := s.ApplyWindowWith(adv); err != nil {
		t.Fatal(err)
	}
	if adv.GaveUp != 0 {
		t.Fatal("adversary gave up although exclusion fits the budget")
	}
	for i := 0; i < 12; i++ {
		var count [2]int
		for _, m := range s.Proc(sim.ProcID(i)).(*voteProc).got {
			count[m.Payload.(votePayload).V]++
		}
		if count[0] > 5 || count[1] > 5 {
			t.Fatalf("receiver %d saw counts %v, cap 5", i, count)
		}
		if count[0]+count[1] < 12-2 {
			t.Fatalf("receiver %d saw only %d messages, want >= n-t = 10", i, count[0]+count[1])
		}
	}
}

func TestSplitVoteGivesUpWhenInfeasible(t *testing.T) {
	// 11 ones, 1 zero, cap 5, t = 2: would need to exclude 6 > t senders.
	s := newVoteSystem(t, 12, 2, 11)
	adv := &SplitVote{Classify: classify, Cap: 5}
	if err := s.ApplyWindowWith(adv); err != nil {
		t.Fatal(err)
	}
	if adv.GaveUp != 1 {
		t.Fatalf("GaveUp = %d, want 1", adv.GaveUp)
	}
	// Full delivery on giving up.
	for i := 0; i < 12; i++ {
		if got := len(s.Proc(sim.ProcID(i)).(*voteProc).got); got != 12 {
			t.Fatalf("receiver %d got %d messages, want all 12", i, got)
		}
	}
}

func TestSplitVoteNeutralMessagesAlwaysDelivered(t *testing.T) {
	// Messages the classifier marks neutral never cause exclusion.
	s := newVoteSystem(t, 6, 1, 3)
	adv := &SplitVote{
		Classify: func(sim.Message) VoteInfo { return VoteInfo{} }, // all neutral
		Cap:      0,
	}
	if err := s.ApplyWindowWith(adv); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if got := len(s.Proc(sim.ProcID(i)).(*voteProc).got); got != 6 {
			t.Fatalf("receiver %d got %d neutral messages, want 6", i, got)
		}
	}
}

func TestCrashSchedule(t *testing.T) {
	s := newVoteSystem(t, 6, 2, 3)
	adv := &CrashSchedule{
		Inner:   FullDelivery{},
		CrashAt: map[int][]sim.ProcID{1: {2}, 2: {4}},
	}
	for w := 0; w < 3; w++ {
		if err := s.ApplyWindowWith(adv); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Crashed(2) || !s.Crashed(4) {
		t.Fatal("scheduled crashes did not happen")
	}
	if s.Crashed(0) {
		t.Fatal("unscheduled crash")
	}
}

func TestLockstepDeliversEverything(t *testing.T) {
	s := newVoteSystem(t, 4, 1, 2)
	res, err := s.RunSteps(NewLockstep(), 200)
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	// After enough steps every processor has received at least the first
	// broadcast from every other processor.
	for i := 0; i < 4; i++ {
		senders := map[sim.ProcID]bool{}
		for _, m := range s.Proc(sim.ProcID(i)).(*voteProc).got {
			senders[m.From] = true
		}
		if len(senders) != 4 {
			t.Fatalf("processor %d heard from %d senders, want 4", i, len(senders))
		}
	}
}

func TestStarveOneWithholdsVictim(t *testing.T) {
	s := newVoteSystem(t, 4, 1, 2)
	if _, err := s.RunSteps(NewStarveOne(1), 200); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for _, m := range s.Proc(sim.ProcID(i)).(*voteProc).got {
			if m.From == 1 {
				t.Fatalf("starved sender 1 delivered to %d", i)
			}
		}
	}
}

func TestTargetDecidedResetsMostAdvanced(t *testing.T) {
	s := newVoteSystem(t, 6, 2, 3)
	rounds := map[sim.ProcID]int{0: 5, 1: 9, 2: 1, 3: 9, 4: 2, 5: 3}
	adv := &TargetDecided{
		Inner: FullDelivery{},
		RoundOf: func(p sim.Process) (int, bool) {
			return rounds[p.ID()], true
		},
	}
	if err := s.ApplyWindowWith(adv); err != nil {
		t.Fatal(err)
	}
	if s.ResetCount(1) != 1 || s.ResetCount(3) != 1 {
		t.Fatalf("most advanced processors not reset: counts %d %d", s.ResetCount(1), s.ResetCount(3))
	}
	if s.ResetCount(2) != 0 {
		t.Fatal("least advanced processor was reset")
	}
}
