// Package adversary implements full-information adversaries for the
// simulator in internal/sim.
//
// A window adversary is invoked after the sending steps of each acceptable
// window with the just-sent batch in hand — it sees all processor states and
// all message contents (the paper's adversary has unbounded computational
// power and unrestricted access to both). Deterministic adversaries are
// deterministic functions from the partial execution to the next window,
// exactly matching the paper's definition; randomized "chaos" adversaries
// carry their own seeded source for reproducibility.
//
// The delivery half of a window plan — which ≥ n−t senders each receiver
// admits — is also available as a standalone, pluggable axis: an
// internal/sched Scheduler can be spliced over any adversary here
// (sched.Compose), overriding its sender sets while the adversary keeps
// planning resets and crashes. Adversaries whose strategy lives in the
// sender sets themselves (FixedSilence, SplitVote, RandomWindows) are
// marked PlansSenders in their registry descriptors so the sweep never
// pairs them with an overriding scheduler.
package adversary

import (
	"fmt"

	"asyncagree/internal/rng"
	"asyncagree/internal/sim"
)

// FullDelivery is the benign adversary: every message is delivered and no
// resets occur. It witnesses the fast paths (unanimous inputs decide in the
// first window).
type FullDelivery struct{}

var _ sim.WindowAdversary = FullDelivery{}

// PlanDelivery implements sim.WindowAdversary.
func (FullDelivery) PlanDelivery(s *sim.System, _ []sim.Message) sim.Window {
	return sim.Window{} // nil Senders = deliver everything, allocation-free
}

// FixedSilence always excludes the same set of up to t senders from every
// delivery — the "temporarily silenced" adversary used in the proofs of
// Lemmas 11 and 13 (deliver only from the last n-t processors forever).
// Construct via NewFixedSilence so that an oversized or out-of-range silent
// set is rejected up front instead of surfacing as a window-validation error
// mid-run.
type FixedSilence struct {
	// Silent lists the processors whose messages are never delivered.
	Silent []sim.ProcID
}

var _ sim.WindowAdversary = FixedSilence{}

// NewFixedSilence validates the silent set against the system shape: at most
// t distinct processors, every ID in [0, n). The returned adversary is
// stateless and safe to reuse across trials.
func NewFixedSilence(n, t int, silent []sim.ProcID) (FixedSilence, error) {
	if len(silent) > t {
		return FixedSilence{}, fmt.Errorf("adversary: %d silent processors exceed fault budget t=%d", len(silent), t)
	}
	seen := make(map[sim.ProcID]bool, len(silent))
	for _, p := range silent {
		if p < 0 || int(p) >= n {
			return FixedSilence{}, fmt.Errorf("adversary: silent processor %d out of range [0, %d)", p, n)
		}
		if seen[p] {
			return FixedSilence{}, fmt.Errorf("adversary: duplicate silent processor %d", p)
		}
		seen[p] = true
	}
	return FixedSilence{Silent: silent}, nil
}

// PlanDelivery implements sim.WindowAdversary.
func (a FixedSilence) PlanDelivery(s *sim.System, _ []sim.Message) sim.Window {
	n := s.N()
	senders := make([]sim.ProcID, 0, n)
	for i := 0; i < n; i++ {
		if !a.silenced(sim.ProcID(i)) {
			senders = append(senders, sim.ProcID(i))
		}
	}
	return sim.UniformWindow(n, senders, nil)
}

// silenced reports whether p is in the silent set (linear scan: the set has
// at most t members, and t is small everywhere this adversary runs).
func (a FixedSilence) silenced(p sim.ProcID) bool {
	for _, q := range a.Silent {
		if q == p {
			return true
		}
	}
	return false
}

// RandomWindows is a chaos adversary: each window it delivers from an
// independent random (n-t)-subset to each receiver and resets a random
// subset of up to t processors with probability ResetProb each window.
//
// Planning reuses per-instance scratch (the sender rows, subset draws, and
// reset list), so the returned Window is valid only until the next
// PlanDelivery call; the System consumes it before then.
type RandomWindows struct {
	rng       *rng.Source
	resetProb float64
	maxResets int

	idx    []int // index scratch for allocation-free subset draws
	rows   [][]sim.ProcID
	resets []sim.ProcID
}

var _ sim.WindowAdversary = (*RandomWindows)(nil)

// NewRandomWindows returns a RandomWindows adversary. maxResets caps resets
// per window (it is further capped at t); resetProb is the per-window
// probability of performing resets at all.
func NewRandomWindows(seed uint64, resetProb float64, maxResets int) *RandomWindows {
	return &RandomWindows{rng: rng.New(seed), resetProb: resetProb, maxResets: maxResets}
}

// RecycleTrial rewinds the adversary's random stream to the state a fresh
// NewRandomWindows(seed, ...) construction would carry, keeping the scratch;
// resetProb and maxResets persist (they are a function of the cell).
func (a *RandomWindows) RecycleTrial(seed uint64) {
	a.rng.Reseed(seed)
}

// PlanDelivery implements sim.WindowAdversary.
func (a *RandomWindows) PlanDelivery(s *sim.System, _ []sim.Message) sim.Window {
	n, t := s.N(), s.T()
	if cap(a.rows) < n {
		a.rows = make([][]sim.ProcID, n)
		a.idx = make([]int, n)
	}
	a.rows = a.rows[:n]
	for i := range a.rows {
		if t == 0 {
			a.rows[i] = nil // nil = all senders
			continue
		}
		k := n - a.rng.Intn(t+1) // |S_i| uniform in [n-t, n]
		set := a.rows[i][:0]
		for _, v := range a.rng.SubsetInto(a.idx[:n], k) {
			set = append(set, sim.ProcID(v))
		}
		a.rows[i] = set
	}
	w := sim.Window{Senders: a.rows}
	budget := a.maxResets
	if budget > t {
		budget = t
	}
	a.resets = a.resets[:0]
	if budget > 0 && a.rng.Float64() < a.resetProb {
		k := 1 + a.rng.Intn(budget)
		for _, v := range a.rng.SubsetInto(a.idx[:n], k) {
			a.resets = append(a.resets, sim.ProcID(v))
		}
		w.Resets = a.resets
	}
	return w
}

// ResetStorm resets a full budget of t processors every single window,
// rotating through the ring so that every processor is hit repeatedly. It
// stresses Theorem 4's claim that correctness survives arbitrary adaptive
// resets within the window constraint.
//
// ResetStorm carries mutable rotation state: construct a fresh one per
// trial (NewResetStorm, or RecycleTrial a pooled one) and never share an
// instance across concurrent executions.
type ResetStorm struct {
	next   int
	resets []sim.ProcID // reusable scratch; valid until the next PlanDelivery
}

var _ sim.WindowAdversary = (*ResetStorm)(nil)

// NewResetStorm returns a fresh reset-storm adversary with its rotation
// cursor at zero.
func NewResetStorm() *ResetStorm { return &ResetStorm{} }

// RecycleTrial rewinds the rotation cursor to zero, the fresh-construction
// state.
func (a *ResetStorm) RecycleTrial() { a.next = 0 }

// PlanDelivery implements sim.WindowAdversary.
func (a *ResetStorm) PlanDelivery(s *sim.System, _ []sim.Message) sim.Window {
	n, t := s.N(), s.T()
	a.resets = a.resets[:0]
	for k := 0; k < t; k++ {
		a.resets = append(a.resets, sim.ProcID((a.next+k)%n))
	}
	a.next = (a.next + t) % n
	// Nil Senders means full delivery — the storm's strategy is resets only.
	return sim.Window{Resets: a.resets}
}

// TargetDecided resets (up to its budget) the processors that look closest
// to deciding — here, any processor whose snapshot changed to a decided
// output is untouchable (outputs survive resets), so it targets the
// processors with the most advanced round instead. It composes reset
// pressure with another delivery strategy.
type TargetDecided struct {
	// Inner plans the delivery pattern; resets are overridden.
	Inner sim.WindowAdversary
	// RoundOf extracts a progress measure from a processor, e.g.
	// core-specific round numbers. Nil disables targeting.
	RoundOf func(sim.Process) (int, bool)
}

var _ sim.WindowAdversary = (*TargetDecided)(nil)

// PlanDelivery implements sim.WindowAdversary.
func (a *TargetDecided) PlanDelivery(s *sim.System, batch []sim.Message) sim.Window {
	return a.target(s, a.Inner.PlanDelivery(s, batch))
}

// target overrides w's resets with the most advanced processors (shared by
// the message and columnar planning paths).
func (a *TargetDecided) target(s *sim.System, w sim.Window) sim.Window {
	if a.RoundOf == nil {
		return w
	}
	type cand struct {
		p     sim.ProcID
		round int
	}
	var cands []cand
	for i := 0; i < s.N(); i++ {
		if r, ok := a.RoundOf(s.Proc(sim.ProcID(i))); ok {
			cands = append(cands, cand{p: sim.ProcID(i), round: r})
		}
	}
	// Select the t most advanced processors (insertion sort by descending
	// round; n is small in experiments).
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j-1].round < cands[j].round; j-- {
			cands[j-1], cands[j] = cands[j], cands[j-1]
		}
	}
	w.Resets = w.Resets[:0]
	for i := 0; i < len(cands) && i < s.T(); i++ {
		w.Resets = append(w.Resets, cands[i].p)
	}
	return w
}

// CrashSchedule composes crash injection with an inner window adversary for
// the Section 5 crash model: the listed processors are crashed just before
// the window with the matching index is planned.
type CrashSchedule struct {
	// Inner plans deliveries.
	Inner sim.WindowAdversary
	// CrashAt maps window index -> processors to crash at its start.
	CrashAt map[int][]sim.ProcID
}

var _ sim.WindowAdversary = (*CrashSchedule)(nil)

// PlanDelivery implements sim.WindowAdversary.
func (a *CrashSchedule) PlanDelivery(s *sim.System, batch []sim.Message) sim.Window {
	for _, p := range a.CrashAt[s.Windows()] {
		// Errors (budget exhausted) deliberately surface later as missing
		// crashes; the schedule is validated by tests.
		_ = s.StepCrash(p)
	}
	return a.Inner.PlanDelivery(s, batch)
}
