package adversary

import (
	"sort"

	"asyncagree/internal/sim"
)

// VoteInfo classifies one message for the split-vote adversary.
type VoteInfo struct {
	// HasValue reports whether the message carries a protocol bit the
	// adversary wants to balance (e.g. a (r, x) vote). Neutral messages
	// (round-sync traffic, '?' proposals) are always delivered.
	HasValue bool
	// Value is the carried bit when HasValue.
	Value sim.Bit
}

// SplitVote is the adversary the paper describes at the end of Section 3:
//
//	"with high probability per round, the adversary can continually extend
//	the execution to last one more round without deciding by showing every
//	processor an approximate split between 0 and 1 messages, and then having
//	all of them set their next bits randomly in step 3."
//
// Each window it counts the 0-votes and 1-votes in the just-sent batch and
// excludes just enough senders of the majority value that every receiver
// sees at most Cap votes for either value — below the deterministic-adoption
// threshold T3, and a fortiori below the decision threshold T2. While the
// exclusion fits within the fault budget t, no processor can make progress
// and all re-randomize; the execution extends one more window. When the
// random bits happen to produce a count so lopsided that the exclusion no
// longer fits in t, the adversary is beaten and delivers everything.
//
// Because the per-window coin flips concentrate around n/2 (the paper's
// O(n^{1/2+eps}) deviation remark), the beaten event has exponentially small
// probability per window for t = cn, which is exactly the mechanism behind
// the exponential expected running time reproduced by experiment E2.
type SplitVote struct {
	// Classify extracts the balanced bit from a message (algorithm-specific;
	// core.ClassifyVote and benor.ClassifyVote are the stock extractors).
	Classify func(sim.Message) VoteInfo
	// Cap is the maximum same-value vote count any receiver may see. For
	// the core algorithm use T3-1; for Ben-Or use floor(n/2).
	Cap int

	// GaveUp counts windows where the exclusion did not fit in t and full
	// delivery happened instead.
	GaveUp int
	// Windows counts planned windows.
	Windows int
}

var _ sim.WindowAdversary = (*SplitVote)(nil)

// NewSplitVote returns a fresh split-vote adversary. SplitVote carries
// mutable counters (GaveUp, Windows): construct one per trial and never
// share an instance across concurrent executions.
func NewSplitVote(classify func(sim.Message) VoteInfo, cap int) *SplitVote {
	return &SplitVote{Classify: classify, Cap: cap}
}

// PlanDelivery implements sim.WindowAdversary.
func (a *SplitVote) PlanDelivery(s *sim.System, batch []sim.Message) sim.Window {
	a.Windows++
	n, t := s.N(), s.T()

	// A sender's vote this window is the classified value of its messages
	// (all copies of a broadcast carry the same payload; the first
	// value-bearing message wins).
	votesBy := make(map[sim.ProcID]sim.Bit, n)
	for _, m := range batch {
		if _, seen := votesBy[m.From]; seen {
			continue
		}
		info := a.Classify(m)
		if info.HasValue {
			votesBy[m.From] = info.Value
		}
	}
	var zeros, ones []sim.ProcID
	for p, v := range votesBy {
		if v == 0 {
			zeros = append(zeros, p)
		} else {
			ones = append(ones, p)
		}
	}
	sort.Slice(zeros, func(i, j int) bool { return zeros[i] < zeros[j] })
	sort.Slice(ones, func(i, j int) bool { return ones[i] < ones[j] })

	e0 := len(zeros) - a.Cap
	if e0 < 0 {
		e0 = 0
	}
	e1 := len(ones) - a.Cap
	if e1 < 0 {
		e1 = 0
	}
	if e0+e1 > t {
		// Beaten this window: the split is too lopsided to hide within the
		// fault budget. Deliver everything.
		a.GaveUp++
		return sim.Window{Senders: make([][]sim.ProcID, n)}
	}

	excluded := make(map[sim.ProcID]bool, e0+e1)
	for _, p := range zeros[:e0] {
		excluded[p] = true
	}
	for _, p := range ones[:e1] {
		excluded[p] = true
	}
	senders := make([]sim.ProcID, 0, n-len(excluded))
	for i := 0; i < n; i++ {
		if !excluded[sim.ProcID(i)] {
			senders = append(senders, sim.ProcID(i))
		}
	}
	return sim.UniformWindow(n, senders, nil)
}
