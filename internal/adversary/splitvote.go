package adversary

import (
	"asyncagree/internal/sim"
)

// VoteInfo classifies one message for the split-vote adversary.
type VoteInfo struct {
	// HasValue reports whether the message carries a protocol bit the
	// adversary wants to balance (e.g. a (r, x) vote). Neutral messages
	// (round-sync traffic, '?' proposals) are always delivered.
	HasValue bool
	// Value is the carried bit when HasValue.
	Value sim.Bit
}

// SplitVote is the adversary the paper describes at the end of Section 3:
//
//	"with high probability per round, the adversary can continually extend
//	the execution to last one more round without deciding by showing every
//	processor an approximate split between 0 and 1 messages, and then having
//	all of them set their next bits randomly in step 3."
//
// Each window it counts the 0-votes and 1-votes in the just-sent batch and
// excludes just enough senders of the majority value that every receiver
// sees at most Cap votes for either value — below the deterministic-adoption
// threshold T3, and a fortiori below the decision threshold T2. While the
// exclusion fits within the fault budget t, no processor can make progress
// and all re-randomize; the execution extends one more window. When the
// random bits happen to produce a count so lopsided that the exclusion no
// longer fits in t, the adversary is beaten and delivers everything.
//
// Because the per-window coin flips concentrate around n/2 (the paper's
// O(n^{1/2+eps}) deviation remark), the beaten event has exponentially small
// probability per window for t = cn, which is exactly the mechanism behind
// the exponential expected running time reproduced by experiment E2.
//
// Planning is allocation-free in steady state: the per-sender vote tallies,
// exclusion marks, and the shared sender set all live in scratch reused
// across windows. The returned Window is valid only until the next
// PlanDelivery call, matching the sim.WindowAdversary usage (the System
// consumes it before the next window).
type SplitVote struct {
	// Classify extracts the balanced bit from a message (algorithm-specific;
	// core.ClassifyVote and benor.ClassifyVote are the stock extractors).
	Classify func(sim.Message) VoteInfo
	// Cap is the maximum same-value vote count any receiver may see. For
	// the core algorithm use T3-1; for Ben-Or use floor(n/2).
	Cap int

	// GaveUp counts windows where the exclusion did not fit in t and full
	// delivery happened instead.
	GaveUp int
	// Windows counts planned windows.
	Windows int

	// Reusable planning scratch: votes[q] is sender q's classified bit this
	// window (-1 = none), excluded marks the senders hidden this window, and
	// every rows entry aliases set (all receivers see the same sender set).
	votes    []int8
	excluded []bool
	set      []sim.ProcID
	rows     [][]sim.ProcID
}

var _ sim.WindowAdversary = (*SplitVote)(nil)

// NewSplitVote returns a fresh split-vote adversary. SplitVote carries
// mutable counters and scratch: construct one per trial (or RecycleTrial a
// pooled one) and never share an instance across concurrent executions.
func NewSplitVote(classify func(sim.Message) VoteInfo, cap int) *SplitVote {
	return &SplitVote{Classify: classify, Cap: cap}
}

// RecycleTrial rewinds the adversary's per-execution counters so a pooled
// instance starts the next trial exactly as a fresh one would. Classify and
// Cap persist (they are a function of the cell, not the trial).
func (a *SplitVote) RecycleTrial() {
	a.GaveUp = 0
	a.Windows = 0
}

// PlanDelivery implements sim.WindowAdversary.
func (a *SplitVote) PlanDelivery(s *sim.System, batch []sim.Message) sim.Window {
	a.Windows++
	n, t := s.N(), s.T()
	a.ensureScratch(n)

	// A sender's vote this window is the classified value of its messages
	// (all copies of a broadcast carry the same payload; the first
	// value-bearing message wins).
	for _, m := range batch {
		if m.From < 0 || int(m.From) >= n || a.votes[m.From] >= 0 {
			continue
		}
		if info := a.Classify(m); info.HasValue {
			a.votes[m.From] = int8(info.Value)
		}
	}
	return a.planFromVotes(n, t)
}

// ensureScratch sizes the planning scratch for n senders and clears the
// per-window vote and exclusion marks.
func (a *SplitVote) ensureScratch(n int) {
	if cap(a.votes) < n {
		a.votes = make([]int8, n)
		a.excluded = make([]bool, n)
		a.set = make([]sim.ProcID, 0, n)
		a.rows = make([][]sim.ProcID, n)
	}
	a.votes = a.votes[:n]
	a.excluded = a.excluded[:n]
	a.rows = a.rows[:n]
	for i := 0; i < n; i++ {
		a.votes[i] = -1
		a.excluded[i] = false
	}
}

// planFromVotes turns the classified per-sender votes into the window plan
// (shared by the message and columnar planning paths).
func (a *SplitVote) planFromVotes(n, t int) sim.Window {
	var count [2]int
	for p := 0; p < n; p++ {
		if v := a.votes[p]; v >= 0 {
			count[v]++
		}
	}

	e0 := count[0] - a.Cap
	if e0 < 0 {
		e0 = 0
	}
	e1 := count[1] - a.Cap
	if e1 < 0 {
		e1 = 0
	}
	if e0+e1 > t {
		// Beaten this window: the split is too lopsided to hide within the
		// fault budget. Deliver everything.
		a.GaveUp++
		return sim.Window{}
	}

	// Exclude the lowest-ID e0 zero-voters and e1 one-voters (the same
	// choice the sorted-slice implementation made), then show every receiver
	// the remaining senders.
	for p := 0; p < n && (e0 > 0 || e1 > 0); p++ {
		switch {
		case a.votes[p] == 0 && e0 > 0:
			a.excluded[p] = true
			e0--
		case a.votes[p] == 1 && e1 > 0:
			a.excluded[p] = true
			e1--
		}
	}
	set := a.set[:0]
	for p := 0; p < n; p++ {
		if !a.excluded[p] {
			set = append(set, sim.ProcID(p))
		}
	}
	a.set = set
	for i := range a.rows {
		a.rows[i] = set
	}
	return sim.Window{Senders: a.rows}
}
