package adversary

import "asyncagree/internal/sim"

// Lockstep is a fair step-mode scheduler: it cycles through sending steps
// for all live processors, then delivers every message buffered at that
// point, and repeats. Every sent message to a live processor is eventually
// delivered, satisfying the liveness constraint of the crash model.
type Lockstep struct {
	sendNext int
	inSend   bool
	started  bool
	deliverQ []int64
}

var _ sim.StepAdversary = (*Lockstep)(nil)

// NewLockstep returns a fair scheduler starting with a sending phase.
func NewLockstep() *Lockstep {
	return &Lockstep{inSend: true}
}

// NextStep implements sim.StepAdversary.
func (a *Lockstep) NextStep(s *sim.System) (sim.Step, bool) {
	n := s.N()
	for {
		if a.inSend {
			for a.sendNext < n && s.Crashed(sim.ProcID(a.sendNext)) {
				a.sendNext++
			}
			if a.sendNext < n {
				p := a.sendNext
				a.sendNext++
				return sim.Step{Kind: sim.StepSend, Proc: sim.ProcID(p)}, true
			}
			a.inSend = false
			a.deliverQ = s.Buffer().IDs()
		}
		for len(a.deliverQ) > 0 {
			id := a.deliverQ[0]
			a.deliverQ = a.deliverQ[1:]
			if _, ok := s.Buffer().Get(id); ok {
				return sim.Step{Kind: sim.StepDeliver, MsgID: id}, true
			}
		}
		a.inSend = true
		a.sendNext = 0
	}
}

// StarveOne is a step-mode scheduler that behaves like Lockstep but never
// delivers messages from one victim sender (legal in the crash model only
// if the victim is also crashed or if the execution is finite; tests use it
// to probe wait-threshold robustness).
type StarveOne struct {
	inner  *Lockstep
	victim sim.ProcID
}

var _ sim.StepAdversary = (*StarveOne)(nil)

// NewStarveOne returns a scheduler that withholds all messages sent by
// victim.
func NewStarveOne(victim sim.ProcID) *StarveOne {
	return &StarveOne{inner: NewLockstep(), victim: victim}
}

// NextStep implements sim.StepAdversary.
func (a *StarveOne) NextStep(s *sim.System) (sim.Step, bool) {
	for {
		step, ok := a.inner.NextStep(s)
		if !ok {
			return step, false
		}
		if step.Kind == sim.StepDeliver {
			if m, live := s.Buffer().Get(step.MsgID); live && m.From == a.victim {
				continue // withhold
			}
		}
		return step, true
	}
}
