// Package benchcases defines the substrate micro-benchmark bodies shared by
// the root bench_test.go and cmd/bench, so the committed BENCH_baseline.json
// and the CI benchmark smoke measure exactly the same code and cannot drift
// apart.
package benchcases

import (
	"testing"

	"asyncagree/internal/adversary"
	"asyncagree/internal/lowerbound"
	"asyncagree/internal/sim"
)

// WindowThroughput measures acceptable windows per second for the core
// algorithm under full delivery (the simulator's hot loop) at size n with
// t = n/8 and split inputs.
func WindowThroughput(n int) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		s, _, err := lowerbound.NewCoreSystem(n, n/8, 1)
		if err != nil {
			b.Fatal(err)
		}
		adv := adversary.FullDelivery{}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.ApplyWindowWith(adv); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// SplitVoteWindow measures the split-vote adversary's per-window planning
// plus execution cost at size n with t = n/8.
func SplitVoteWindow(n int) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		s, th, err := lowerbound.NewCoreSystem(n, n/8, 1)
		if err != nil {
			b.Fatal(err)
		}
		adv := lowerbound.NewSplitVote(th)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.ApplyWindowWith(adv); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BufferOps measures raw message buffer Add/Take throughput.
func BufferOps() func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		buf := sim.NewBufferFor(2)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m := buf.Add(sim.Message{From: 0, To: 1})
			if _, ok := buf.Take(m.ID); !ok {
				b.Fatal("lost message")
			}
		}
	}
}
