// Package benchcases defines the substrate micro-benchmark bodies shared by
// the root bench_test.go and cmd/bench, so the committed BENCH_baseline.json
// and the CI benchmark smoke measure exactly the same code and cannot drift
// apart.
package benchcases

import (
	"strconv"
	"testing"

	"asyncagree/internal/adversary"
	"asyncagree/internal/lowerbound"
	"asyncagree/internal/registry"
	"asyncagree/internal/sim"
)

// SizeLabel renders the "n=<n>" sub-benchmark label. It is the one shared
// helper for sizing benchmark names, used by both the root bench_test.go
// and cmd/bench so recorded baseline entries and `go test -bench` output
// name identical cases.
func SizeLabel(n int) string { return "n=" + strconv.Itoa(n) }

// WindowThroughput measures acceptable windows per second for the core
// algorithm under full delivery (the simulator's hot loop) at size n with
// t = n/8 and split inputs, in the default execution configuration — which,
// since core opts into the columnar vote-tally kernel, is the columnar
// path. Each window carries n² messages (n broadcasters × n receivers);
// the bodies report msgs/op so cmd/bench can derive ns/message and keep
// O(n²)-inherent growth distinguishable from kernel overhead.
func WindowThroughput(n int) func(b *testing.B) {
	return windowThroughput(n, 1, true)
}

// WindowThroughputSharded is WindowThroughput with the sharded window core
// engaged at the given worker count. Execution output is byte-identical to
// the serial case (property-tested in registry); only wall-clock differs.
func WindowThroughputSharded(n, workers int) func(b *testing.B) {
	return windowThroughput(n, workers, true)
}

// WindowThroughputColumnar pins the columnar vote-tally kernel by name for
// the CI perf gate: identical to WindowThroughput except that it fails
// loudly if the columnar gate did not engage (a silent fall-back to the
// message-at-a-time path would otherwise show up only as a mysterious
// slowdown). Serial; the sharded interaction is covered by
// WindowThroughputSharded.
func WindowThroughputColumnar(n int) func(b *testing.B) {
	return windowThroughput(n, 1, true)
}

// WindowThroughputMessage is the legacy message-at-a-time path, kept
// measured so per-Deliver dispatch regressions stay visible now that the
// default path is columnar.
func WindowThroughputMessage(n int) func(b *testing.B) {
	return windowThroughput(n, 1, false)
}

func windowThroughput(n, workers int, columnar bool) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		s, _, err := lowerbound.NewCoreSystem(n, n/8, 1)
		if err != nil {
			b.Fatal(err)
		}
		s.SetShardWorkers(workers)
		s.SetParallelSend(workers > 1)
		s.SetColumnar(columnar)
		adv := adversary.FullDelivery{}
		if columnar && !s.ColumnarPlanned(adv) {
			b.Fatal("columnar gate did not engage; the case would silently measure the message path")
		}
		// Warm up past the one-time scratch growth (buffer arena, free list,
		// order buffers reach steady-state batch capacity during the first
		// windows), so the timed region measures the steady state the sweep
		// engine actually runs in rather than amortized warm-up bytes.
		for i := 0; i < 2; i++ {
			if err := s.ApplyWindowWith(adv); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.ApplyWindowWith(adv); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(n)*float64(n), "msgs/op")
	}
}

// SplitVoteWindow measures the split-vote adversary's per-window planning
// plus execution cost at size n with t = n/8.
func SplitVoteWindow(n int) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		s, th, err := lowerbound.NewCoreSystem(n, n/8, 1)
		if err != nil {
			b.Fatal(err)
		}
		adv := lowerbound.NewSplitVote(th)
		for i := 0; i < 2; i++ { // steady-state scratch (see windowThroughput)
			if err := s.ApplyWindowWith(adv); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.ApplyWindowWith(adv); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// SweepThroughput measures the scenario sweep engine end to end: a fixed
// small matrix (core + Ben-Or under the benign and split-vote adversaries,
// four seeds) expanded, fanned across the worker pool, and aggregated per
// iteration.
func SweepThroughput() func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		m := registry.Matrix{
			Algorithms:  []string{"core", "benor"},
			Adversaries: []string{"full", "splitvote"},
			Schedulers:  []string{"adversary"}, // keep comparable to the pre-scheduler baseline
			Sizes:       []registry.Size{{N: 12, T: 1}},
			Inputs:      []string{"split"},
			Seeds:       []uint64{1, 2, 3, 4},
			MaxWindows:  2000,
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sweep, err := m.Run()
			if err != nil {
				b.Fatal(err)
			}
			if len(sweep.Cells) != 4 || sweep.SafetyViolations() != 0 {
				b.Fatalf("unexpected sweep shape: %+v", sweep.Cells)
			}
		}
	}
}

// BrachaWindow measures acceptable windows of the RBC-based Bracha protocol
// at size n with t = (n-1)/3 and split inputs — about an order of magnitude
// more traffic per window than the core algorithm, the heaviest per-window
// protocol in the inventory.
func BrachaWindow(n int) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		t := (n - 1) / 3
		s, err := registry.NewSystem("bracha", registry.Params{
			N: n, T: t, Inputs: registry.SplitInputs(n), Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		adv := adversary.FullDelivery{}
		for i := 0; i < 2; i++ { // steady-state scratch (see windowThroughput)
			if err := s.ApplyWindowWith(adv); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.ApplyWindowWith(adv); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// PaxosDecision measures full solo-proposer Paxos decisions to quorum at
// size n with t = (n-1)/2, through the pooled trial engine (the steady-state
// path sweeps run Paxos on): each iteration recycles the scenario's engine
// and runs window mode under the benign full-delivery adversary to decision.
func PaxosDecision(n int) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		t := (n - 1) / 2
		inputs := registry.SplitInputs(n)
		run := func(seed uint64) {
			res, err := registry.RunPooledTrial("paxos", "full", "adversary", registry.Params{
				N: n, T: t, Inputs: inputs, Seed: seed,
			}, 1000)
			if err != nil {
				b.Fatal(err)
			}
			if !res.AllDecided {
				b.Fatal("no decision")
			}
		}
		run(1) // warm the scenario's engine pool
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run(uint64(i + 1))
		}
	}
}

// SweepMemory measures the streaming result pipeline's bytes-retained
// behavior: a single cell (core under full delivery, unanimous inputs —
// each trial decides in its first window) swept across `seeds` seeds per
// iteration. With results reduced online the per-op allocation footprint is
// dominated by the fixed engine-pool warm-up and the seed list, independent
// of the trial count; reintroducing O(trials) result buffering shows up
// directly in this case's allocs/op and B/op trajectory (and is
// test-asserted with forced-GC heap sampling in
// registry.TestRunPeakRetainedMemoryIndependentOfTrialCount).
func SweepMemory(seeds int) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		m := registry.Matrix{
			Algorithms:  []string{"core"},
			Adversaries: []string{"full"},
			Schedulers:  []string{"adversary"},
			Sizes:       []registry.Size{{N: 12, T: 1}},
			Inputs:      []string{"ones"},
			MaxWindows:  4,
		}
		for s := uint64(1); s <= uint64(seeds); s++ {
			m.Seeds = append(m.Seeds, s)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sweep, err := m.Run()
			if err != nil {
				b.Fatal(err)
			}
			if sweep.TrialCount != seeds || len(sweep.Cells) != 1 {
				b.Fatalf("unexpected sweep shape: %d trials, %d cells",
					sweep.TrialCount, len(sweep.Cells))
			}
		}
	}
}

// BufferOps measures raw message buffer Add/Take throughput.
func BufferOps() func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		buf := sim.NewBufferFor(2)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m := buf.Add(sim.Message{From: 0, To: 1})
			if _, ok := buf.Take(m.ID); !ok {
				b.Fatal("lost message")
			}
		}
	}
}
