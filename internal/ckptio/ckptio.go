// Package ckptio holds the small file plumbing shared by the streaming,
// resumable CLIs (cmd/sweep, cmd/search): atomic rewrite-then-append for
// checkpoint and export files, and the hardened writer stack that threads
// fault injection below bounded retry.
package ckptio

import (
	"io"
	"os"
	"path/filepath"

	"asyncagree/internal/faultinject"
	"asyncagree/internal/retry"
)

// RewriteThenAppend atomically replaces path with the bytes head writes
// (temp file + rename, so a crash mid-rewrite never loses the old file),
// then reopens it for appending. Resumable outputs use it to rewrite the
// verified prefix — healing any torn tail of an interrupted run — before
// live records stream onto the end.
func RewriteThenAppend(path string, head func(io.Writer) error) (*os.File, error) {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return nil, err
	}
	if err := head(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return nil, err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return nil, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return nil, err
	}
	return os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
}

// HardenWriter stacks the streaming-phase write path under a sink: the raw
// file, then the injected-failure writer (chaos testing), then the retrying
// writer. Retry must sit between the failure source and the sink's internal
// bufio (which latches the first error forever), so a transient failure is
// absorbed invisibly and only an exhausted retry budget reaches the sink —
// where the run loop drops it and reports the degradation.
func HardenWriter(f *os.File, pol retry.Policy, failures *faultinject.WriteFailures) io.Writer {
	return retry.NewWriter(failures.Writer(f), pol)
}
