package lowerbound

import (
	"fmt"

	"asyncagree/internal/core"
	"asyncagree/internal/parallel"
	"asyncagree/internal/sim"
	"asyncagree/internal/talagrand"
)

// This file makes Definition 12 of the paper executable for small k:
//
//	"We let Z^k_0 denote the set of reachable configurations such that, for
//	any sets R, S with |R| <= t, |S| >= n-t, the adversary applying
//	R, S, S, ..., S to the configuration will result in a new configuration
//	that belongs to Z^{k-1}_0 with probability > tau."
//
// Membership is decided by Monte Carlo: a partial execution is recorded as
// a replayable schedule (each window paired with the seed of the fresh
// randomness used inside it), so the same configuration can be extended
// with many independent continuations — see sim.System.Reseed. The
// universal quantifier over (R, S) ranges over the uniform windows
// R, S, ..., S the definition prescribes; for the sizes used here that is
// every (R, S) with |R| <= 1 and |S| >= n-1 exactly.
//
// The exact Z^k computation for general algorithms is uncomputable (it
// quantifies over the unbounded reachable-configuration space); k = 1 at
// small n is where the definition becomes directly testable, and experiment
// E13 uses it to check Lemma 13's separation Delta(Z^1_0, Z^1_1) > t on
// samples.

// ScheduledWindow is one recorded acceptable window: the uniform (R, S)
// choice plus the seed of the randomness consumed inside the window.
type ScheduledWindow struct {
	// Senders is the common sender set S (nil = all n).
	Senders []sim.ProcID
	// Resets is the reset set R.
	Resets []sim.ProcID
	// Seed reseeds the processors' randomness just before the window.
	Seed uint64
}

// Schedule is a replayable partial execution of the core algorithm.
type Schedule struct {
	// N, T, Th and SysSeed fix the system.
	N, T    int
	Th      core.Thresholds
	SysSeed uint64
	// Windows is the recorded window sequence.
	Windows []ScheduledWindow
}

// Replay reconstructs the configuration at the end of the schedule.
func (sch Schedule) Replay() (*sim.System, error) {
	s, _, err := NewCoreSystem(sch.N, sch.T, sch.SysSeed)
	if err != nil {
		return nil, err
	}
	for i, w := range sch.Windows {
		s.Reseed(w.Seed)
		if err := s.ApplyWindow(sim.UniformWindow(sch.N, w.Senders, w.Resets)); err != nil {
			return nil, fmt.Errorf("replay window %d: %w", i, err)
		}
	}
	return s, nil
}

// Extend returns the schedule plus one more window.
func (sch Schedule) Extend(w ScheduledWindow) Schedule {
	out := sch
	out.Windows = append(append([]ScheduledWindow(nil), sch.Windows...), w)
	return out
}

// ZkTester decides Z^k membership by Monte Carlo.
type ZkTester struct {
	// Tau is the paper's threshold (Definition 12); use talagrand.Tau(n, t)
	// or an experiment-chosen constant.
	Tau float64
	// Samples is the number of Monte Carlo continuations per (R, S) choice.
	Samples int
}

// uniformChoices enumerates the (R, S) pairs of Definition 12 for the
// schedule's (n, t): every reset set of size <= t (here restricted to size
// 0 or 1... for t = 1 that is exact) and every sender set of size >= n-t
// obtained by dropping at most one processor (exact for t = 1).
func uniformChoices(n, t int) (resets [][]sim.ProcID, senders [][]sim.ProcID) {
	resets = append(resets, nil)
	senders = append(senders, nil) // nil = all
	if t >= 1 {
		for i := 0; i < n; i++ {
			resets = append(resets, []sim.ProcID{sim.ProcID(i)})
			var s []sim.ProcID
			for j := 0; j < n; j++ {
				if j != i {
					s = append(s, sim.ProcID(j))
				}
			}
			senders = append(senders, s)
		}
	}
	return resets, senders
}

// InZk reports (by Monte Carlo) whether the configuration reached by sch
// belongs to Z^k_v. For k = 0 it is exact: some processor has output v.
// For k >= 1 it requires, for every uniform (R, S) choice, that the
// estimated probability of landing in Z^{k-1}_v exceeds Tau.
//
// Cost grows as (choices * Samples)^k times the replay length; intended for
// k <= 1 at n <= 10 (t = 1), where the choice enumeration is exact.
func (zt ZkTester) InZk(sch Schedule, k int, v sim.Bit) (bool, error) {
	if k == 0 {
		s, err := sch.Replay()
		if err != nil {
			return false, err
		}
		vals, oks := s.Outputs()
		for i, ok := range oks {
			if ok && vals[i] == v {
				return true, nil
			}
		}
		return false, nil
	}
	resets, senders := uniformChoices(sch.N, sch.T)
	for _, r := range resets {
		for _, snd := range senders {
			hits := 0
			for sample := 0; sample < zt.Samples; sample++ {
				next := sch.Extend(ScheduledWindow{
					Senders: snd,
					Resets:  r,
					Seed:    uint64(sample)*2654435761 + uint64(len(sch.Windows))*11400714819323198485 + 1,
				})
				in, err := zt.InZk(next, k-1, v)
				if err != nil {
					return false, err
				}
				if in {
					hits++
				}
			}
			if float64(hits)/float64(zt.Samples) <= zt.Tau {
				return false, nil // this (R, S) fails the universal quantifier
			}
		}
	}
	return true, nil
}

// Z1SeparationResult reports the E13 measurement.
type Z1SeparationResult struct {
	N, T int
	// Z1Sizes are the sampled Z^1_0 and Z^1_1 cardinalities (projected).
	Z0Size, Z1Size int
	// Distance is Delta(Z^1_0, Z^1_1) over the samples, -1 if vacuous.
	Distance int
	// Holds is the Lemma 13 claim Distance > t (or vacuous).
	Holds bool
}

// MeasureZ1Separation samples reachable configurations (as replayable
// schedules), tests their Z^1_0 / Z^1_1 membership per Definition 12, and
// measures the Hamming separation of the projected members — Lemma 13 at
// k = 1, on samples.
func MeasureZ1Separation(n, t, prefixes, maxPrefixLen int, zt ZkTester) (Z1SeparationResult, error) {
	// Each prefix's membership test replays thousands of independent
	// continuations — ideal fan-out work for the trial pool. Membership
	// points fold into block-local set pairs merged in prefix order, so the
	// sampled sets match the serial loop without holding per-prefix samples.
	type setPair struct {
		z0, z1 *talagrand.ExplicitSet
	}
	acc, err := parallel.Reduce(prefixes,
		func() setPair {
			return setPair{z0: talagrand.NewExplicitSet(), z1: talagrand.NewExplicitSet()}
		},
		func(a setPair, p int) (setPair, error) {
			sch := Schedule{N: n, T: t, SysSeed: uint64(p + 1)}
			th, err := core.DefaultThresholds(n, t)
			if err != nil {
				return a, err
			}
			sch.Th = th
			// Drive the prefix toward decisions with full-delivery windows of
			// varying length so both decided and undecided configurations are
			// sampled.
			length := 1 + p%maxPrefixLen
			for w := 0; w < length; w++ {
				sch = sch.Extend(ScheduledWindow{Seed: uint64(p*131 + w*17 + 5)})
			}
			s, err := sch.Replay()
			if err != nil {
				return a, err
			}
			point, err := ProjectConfiguration(s)
			if err != nil {
				return a, err
			}
			in0, err := zt.InZk(sch, 1, 0)
			if err != nil {
				return a, err
			}
			in1, err := zt.InZk(sch, 1, 1)
			if err != nil {
				return a, err
			}
			if in0 {
				a.z0.Add(point)
			}
			if in1 {
				a.z1.Add(point)
			}
			return a, nil
		},
		func(into, from setPair) setPair {
			into.z0.AddSet(from.z0)
			into.z1.AddSet(from.z1)
			return into
		})
	if err != nil {
		return Z1SeparationResult{}, err
	}
	res := Z1SeparationResult{
		N: n, T: t,
		Z0Size: acc.z0.Len(), Z1Size: acc.z1.Len(),
		Distance: talagrand.SetDistance(acc.z0, acc.z1),
	}
	res.Holds = res.Distance < 0 || res.Distance > t
	return res, nil
}
