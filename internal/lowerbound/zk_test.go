package lowerbound

import (
	"testing"

	"asyncagree/internal/sim"
)

func quickTester() ZkTester {
	return ZkTester{Tau: 0.3, Samples: 8}
}

func TestScheduleReplayDeterministic(t *testing.T) {
	sch := Schedule{N: 8, T: 1, SysSeed: 3}
	sch = sch.Extend(ScheduledWindow{Seed: 7})
	sch = sch.Extend(ScheduledWindow{Seed: 9, Resets: []sim.ProcID{2}})
	a, err := sch.Replay()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sch.Replay()
	if err != nil {
		t.Fatal(err)
	}
	snapA, snapB := a.ConfigurationSnapshot(), b.ConfigurationSnapshot()
	for i := range snapA {
		if snapA[i] != snapB[i] {
			t.Fatalf("replay diverged at processor %d: %q vs %q", i, snapA[i], snapB[i])
		}
	}
	if a.ResetCount(2) != 1 {
		t.Fatal("scheduled reset not replayed")
	}
}

func TestExtendDoesNotAliasBacking(t *testing.T) {
	base := Schedule{N: 8, T: 1, SysSeed: 1}
	base = base.Extend(ScheduledWindow{Seed: 1})
	a := base.Extend(ScheduledWindow{Seed: 2})
	b := base.Extend(ScheduledWindow{Seed: 3})
	if a.Windows[1].Seed == b.Windows[1].Seed {
		t.Fatal("Extend aliased the backing array")
	}
	if len(base.Windows) != 1 {
		t.Fatal("Extend mutated the base schedule")
	}
}

func TestInZ0MatchesOutputs(t *testing.T) {
	// An undecided prefix is in neither Z^0 set; with unanimous-like luck a
	// decided one is in exactly the decided set. Use a split system driven
	// to decision via full delivery.
	zt := quickTester()
	sch := Schedule{N: 8, T: 1, SysSeed: 4}
	// Empty prefix: no decisions yet.
	in0, err := zt.InZk(sch, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	in1, err := zt.InZk(sch, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if in0 || in1 {
		t.Fatal("initial configuration classified as decided")
	}
	// Extend until some decision exists, then Z^0 membership must match the
	// decided value.
	for w := 0; w < 1000; w++ {
		sch = sch.Extend(ScheduledWindow{Seed: uint64(w*13 + 1)})
		s, err := sch.Replay()
		if err != nil {
			t.Fatal(err)
		}
		if s.DecidedCount() == 0 {
			continue
		}
		vals, oks := s.Outputs()
		var decided sim.Bit
		for i, ok := range oks {
			if ok {
				decided = vals[i]
				break
			}
		}
		inD, err := zt.InZk(sch, 0, decided)
		if err != nil {
			t.Fatal(err)
		}
		inOther, err := zt.InZk(sch, 0, 1-decided)
		if err != nil {
			t.Fatal(err)
		}
		if !inD {
			t.Fatal("decided configuration not in its Z^0 set")
		}
		if inOther && !s.AgreementOK() {
			t.Fatal("conflicting decisions")
		}
		return
	}
	t.Fatal("no decision within 1000 windows under full delivery")
}

func TestUniformChoicesExactForT1(t *testing.T) {
	resets, senders := uniformChoices(8, 1)
	if len(resets) != 9 || len(senders) != 9 {
		t.Fatalf("choices: %d resets, %d senders; want 9 each", len(resets), len(senders))
	}
}

func TestDecidedConfigurationIsInZ1(t *testing.T) {
	// A configuration in which everyone already decided v stays decided
	// under every continuation, so it belongs to Z^1_v for any tau < 1.
	zt := quickTester()
	sch := Schedule{N: 8, T: 1, SysSeed: 6}
	var decided sim.Bit
	found := false
	for w := 0; w < 2000 && !found; w++ {
		sch = sch.Extend(ScheduledWindow{Seed: uint64(w*7 + 3)})
		s, err := sch.Replay()
		if err != nil {
			t.Fatal(err)
		}
		if s.AllDecided() {
			vals, _ := s.Outputs()
			decided = vals[0]
			found = true
		}
	}
	if !found {
		t.Fatal("never reached an all-decided configuration")
	}
	in, err := zt.InZk(sch, 1, decided)
	if err != nil {
		t.Fatal(err)
	}
	if !in {
		t.Fatal("all-decided configuration not in Z^1 of its value")
	}
	inOther, err := zt.InZk(sch, 1, 1-decided)
	if err != nil {
		t.Fatal(err)
	}
	if inOther {
		t.Fatal("all-decided configuration in Z^1 of the opposite value")
	}
}

func TestMeasureZ1Separation(t *testing.T) {
	res, err := MeasureZ1Separation(8, 1, 10, 5, quickTester())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("Lemma 13 (k=1) separation failed on samples: %+v", res)
	}
}
