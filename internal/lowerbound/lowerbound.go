// Package lowerbound makes the proof apparatus of Sections 4 and 5 of the
// paper executable and measurable:
//
//   - Lemma 11/20 empirics: sample reachable decided configurations of the
//     core algorithm, split them into the decision sets Z^0_0 and Z^0_1, and
//     measure their Hamming separation (which the paper proves exceeds t).
//   - Theorem 5/17 empirics: drive the split-vote adversary (the concrete
//     strategy from the end of Section 3) across n and measure the
//     windows-to-first-decision distribution, its exponential growth in n,
//     and the survival curve P[no decision within W windows].
//
// The fully general Z^k construction of Definition 12 requires measuring
// probabilities over the unbounded reachable-configuration space of an
// arbitrary algorithm and is not computable; DESIGN.md documents this
// substitution. The ingredients the proof combines — Talagrand's inequality,
// the resampling coupling, and the interpolation lemma — are verified
// exactly in internal/talagrand.
package lowerbound

import (
	"fmt"

	"asyncagree/internal/adversary"
	"asyncagree/internal/core"
	"asyncagree/internal/parallel"
	"asyncagree/internal/sim"
	"asyncagree/internal/stats"
	"asyncagree/internal/stream"
	"asyncagree/internal/talagrand"
)

// ClassifyCoreVote adapts core protocol messages for the split-vote
// adversary.
func ClassifyCoreVote(m sim.Message) adversary.VoteInfo {
	if _, v, ok := core.ExtractVote(m); ok {
		return adversary.VoteInfo{HasValue: true, Value: v}
	}
	return adversary.VoteInfo{}
}

// NewCoreSystem builds a core-algorithm system with Theorem 4's default
// thresholds and an alternating (split) input assignment — the input setting
// the Section 3 slowness argument uses.
func NewCoreSystem(n, t int, seed uint64) (*sim.System, core.Thresholds, error) {
	th, err := core.DefaultThresholds(n, t)
	if err != nil {
		return nil, core.Thresholds{}, err
	}
	inputs := make([]sim.Bit, n)
	for i := range inputs {
		inputs[i] = sim.Bit(i % 2)
	}
	s, err := sim.New(sim.Config{
		N: n, T: t, Seed: seed, Inputs: inputs,
		NewProcess: core.NewFactory(n, t, th),
	})
	if err != nil {
		return nil, core.Thresholds{}, err
	}
	return s, th, nil
}

// NewSplitVote returns the split-vote adversary tuned to thresholds th (it
// keeps every per-receiver count strictly below the deterministic-adoption
// threshold T3).
func NewSplitVote(th core.Thresholds) *adversary.SplitVote {
	return &adversary.SplitVote{Classify: ClassifyCoreVote, Cap: th.T3 - 1}
}

// ProjectConfiguration encodes the decision-relevant projection of a core
// configuration as a talagrand.Point: per processor, value
// 3*x + outCode where outCode is 0 (unwritten), 1 (decided 0), 2 (decided 1).
// Hamming distances over this projection lower-bound nothing and
// upper-bound nothing in general, but they are exactly the distances between
// the (x, output) parts of the state — the part the Z-set argument
// manipulates (resets erase the rest).
func ProjectConfiguration(s *sim.System) (talagrand.Point, error) {
	n := s.N()
	p := make(talagrand.Point, n)
	for i := 0; i < n; i++ {
		proc, ok := s.Proc(sim.ProcID(i)).(*core.Proc)
		if !ok {
			return nil, fmt.Errorf("lowerbound: processor %d is %T, want *core.Proc", i, s.Proc(sim.ProcID(i)))
		}
		code := 3 * int(proc.Value())
		if v, decided := proc.Output(); decided {
			code += 1 + int(v)
		}
		p[i] = code
	}
	return p, nil
}

// DecisionSets samples reachable configurations at the first window in
// which a decision exists, across `trials` seeds and a battery of
// adversaries, and splits them into Z^0_0 (a 0-decision present) and Z^0_1
// (a 1-decision present) in the projected space.
func DecisionSets(n, t, trials, maxWindows int) (z0, z1 *talagrand.ExplicitSet, err error) {
	// One independent trial per (seed, adversary) pair, fanned across the
	// worker pool; each trial folds its membership point straight into a
	// block-local set pair and the blocks merge in trial-index order, so
	// the sampled sets match the serial loop exactly without ever holding
	// the per-trial sample list.
	type setPair struct {
		z0, z1 *talagrand.ExplicitSet
	}
	acc, err := parallel.Reduce(trials*3,
		func() setPair {
			return setPair{z0: talagrand.NewExplicitSet(), z1: talagrand.NewExplicitSet()}
		},
		func(a setPair, trial int) (setPair, error) {
			seed := uint64(trial/3 + 1)
			advPick := trial % 3
			s, th, err := NewCoreSystem(n, t, seed*17+uint64(advPick))
			if err != nil {
				return a, err
			}
			var adv sim.WindowAdversary
			switch advPick {
			case 0:
				adv = adversary.FullDelivery{}
			case 1:
				adv = adversary.NewRandomWindows(seed, 0.3, t)
			case 2:
				adv = NewSplitVote(th)
			}
			// Step window by window so the configuration is captured at the
			// first decision, not at termination.
			for w := 0; w < maxWindows; w++ {
				if err := s.ApplyWindowWith(adv); err != nil {
					return a, err
				}
				if s.DecidedCount() == 0 {
					continue
				}
				point, err := ProjectConfiguration(s)
				if err != nil {
					return a, err
				}
				vals, oks := s.Outputs()
				for i, ok := range oks {
					if ok {
						if vals[i] == 0 {
							a.z0.Add(point)
						} else {
							a.z1.Add(point)
						}
					}
				}
				return a, nil
			}
			return a, nil // no decision within maxWindows
		},
		func(into, from setPair) setPair {
			into.z0.AddSet(from.z0)
			into.z1.AddSet(from.z1)
			return into
		})
	if err != nil {
		return nil, nil, err
	}
	return acc.z0, acc.z1, nil
}

// SeparationResult reports the measured Hamming separation of the sampled
// decision sets.
type SeparationResult struct {
	N, T int
	// Z0Size and Z1Size are the sampled set cardinalities.
	Z0Size, Z1Size int
	// Distance is Delta(Z^0_0, Z^0_1) over the samples (-1 if a side is
	// empty).
	Distance int
	// Bound is the paper's claim: Distance must exceed T.
	Holds bool
}

// MeasureSeparation runs DecisionSets and evaluates the Lemma 11 claim
// Delta(Z^0_0, Z^0_1) > t on the sample.
func MeasureSeparation(n, t, trials, maxWindows int) (SeparationResult, error) {
	z0, z1, err := DecisionSets(n, t, trials, maxWindows)
	if err != nil {
		return SeparationResult{}, err
	}
	res := SeparationResult{
		N: n, T: t,
		Z0Size: z0.Len(), Z1Size: z1.Len(),
		Distance: talagrand.SetDistance(z0, z1),
	}
	// With one side empty the claim is vacuous (distance > t trivially);
	// report Holds true only on real evidence or vacuity.
	res.Holds = res.Distance < 0 || res.Distance > t
	return res, nil
}

// StallPoint is one (n, t) sample of the exponential-slowness experiment.
type StallPoint struct {
	N, T int
	// Trials is the number of seeds measured.
	Trials int
	// GaveUpFraction is the fraction of windows in which the adversary was
	// beaten (had to deliver everything).
	GaveUpFraction float64
	// Summary summarizes the per-trial windows-to-first-decision values
	// (censored at maxWindows), reduced online.
	Summary stats.Summary
}

// StallSeries measures windows-to-first-decision under the split-vote
// adversary for each n in ns, with t = floor(n*tFrac) (clamped to at least
// 1), `trials` seeds each, capped at maxWindows. Per-trial measurements are
// reduced online — memory per point is one accumulator, not a slice — with
// summaries identical to the historical collect-then-summarize path.
func StallSeries(ns []int, tFrac float64, trials, maxWindows int) ([]StallPoint, error) {
	out := make([]StallPoint, 0, len(ns))
	for _, n := range ns {
		t := int(float64(n) * tFrac)
		if t < 1 {
			t = 1
		}
		type stallAcc struct {
			fds             stream.Summary
			quantiles       *stream.Reservoir
			gaveUp, windows int
		}
		acc, err := parallel.Reduce(trials,
			func() *stallAcc { return &stallAcc{quantiles: stream.NewReservoir(0)} },
			func(a *stallAcc, trial int) (*stallAcc, error) {
				s, th, err := NewCoreSystem(n, t, uint64(trial+1))
				if err != nil {
					return a, err
				}
				adv := NewSplitVote(th)
				res, err := s.RunWindows(adv, maxWindows)
				if err != nil {
					return a, err
				}
				fd := res.FirstDecision
				if fd < 0 {
					fd = maxWindows // censored
				}
				a.fds.AddInt(fd)
				a.quantiles.AddInt(fd)
				a.gaveUp += adv.GaveUp
				a.windows += adv.Windows
				return a, nil
			},
			func(into, from *stallAcc) *stallAcc {
				into.fds.Merge(&from.fds)
				into.quantiles.Merge(from.quantiles)
				into.gaveUp += from.gaveUp
				into.windows += from.windows
				return into
			})
		if err != nil {
			return nil, err
		}
		point := StallPoint{N: n, T: t, Trials: acc.fds.Count()}
		if acc.windows > 0 {
			point.GaveUpFraction = float64(acc.gaveUp) / float64(acc.windows)
		}
		point.Summary = stats.FromStream(&acc.fds, acc.quantiles)
		out = append(out, point)
	}
	return out, nil
}

// FitGrowth fits mean windows-to-decision ~ C * exp(alpha * n) over a stall
// series — the observable counterpart of Theorem 5's C*e^{alpha*n} bound.
func FitGrowth(series []StallPoint) (stats.ExpFit, bool) {
	var xs, ys []float64
	for _, p := range series {
		xs = append(xs, float64(p.N))
		ys = append(ys, p.Summary.Mean)
	}
	return stats.FitExponential(xs, ys)
}

// SurvivalCurve estimates P[no decision within w windows] for each
// checkpoint w in ws, under the split-vote adversary at (n, t), using
// `trials` seeds. First-decision windows reduce into a bounded histogram
// (one bucket per window up to the largest checkpoint), so the curve is
// exact — integer counts, identical to the historical collect-then-count
// path — with memory O(max w), independent of the trial count.
func SurvivalCurve(n, t int, ws []int, trials int) ([]float64, error) {
	maxW := 0
	for _, w := range ws {
		if w > maxW {
			maxW = w
		}
	}
	hist, err := parallel.Reduce(trials,
		func() *stream.Hist { return stream.NewHist(maxW + 2) },
		func(h *stream.Hist, trial int) (*stream.Hist, error) {
			s, th, err := NewCoreSystem(n, t, uint64(trial+1))
			if err != nil {
				return h, err
			}
			res, err := s.RunWindows(NewSplitVote(th), maxW)
			if err != nil {
				return h, err
			}
			fd := res.FirstDecision
			if fd < 0 {
				fd = maxW + 1
			}
			h.Add(fd)
			return h, nil
		},
		func(into, from *stream.Hist) *stream.Hist {
			into.Merge(from)
			return into
		})
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(ws))
	for i, w := range ws {
		out[i] = float64(hist.CountAtLeast(w)) / float64(trials)
	}
	return out, nil
}
