// Package lowerbound makes the proof apparatus of Sections 4 and 5 of the
// paper executable and measurable:
//
//   - Lemma 11/20 empirics: sample reachable decided configurations of the
//     core algorithm, split them into the decision sets Z^0_0 and Z^0_1, and
//     measure their Hamming separation (which the paper proves exceeds t).
//   - Theorem 5/17 empirics: drive the split-vote adversary (the concrete
//     strategy from the end of Section 3) across n and measure the
//     windows-to-first-decision distribution, its exponential growth in n,
//     and the survival curve P[no decision within W windows].
//
// The fully general Z^k construction of Definition 12 requires measuring
// probabilities over the unbounded reachable-configuration space of an
// arbitrary algorithm and is not computable; DESIGN.md documents this
// substitution. The ingredients the proof combines — Talagrand's inequality,
// the resampling coupling, and the interpolation lemma — are verified
// exactly in internal/talagrand.
package lowerbound

import (
	"fmt"

	"asyncagree/internal/adversary"
	"asyncagree/internal/core"
	"asyncagree/internal/parallel"
	"asyncagree/internal/sim"
	"asyncagree/internal/stats"
	"asyncagree/internal/talagrand"
)

// ClassifyCoreVote adapts core protocol messages for the split-vote
// adversary.
func ClassifyCoreVote(m sim.Message) adversary.VoteInfo {
	if _, v, ok := core.ExtractVote(m); ok {
		return adversary.VoteInfo{HasValue: true, Value: v}
	}
	return adversary.VoteInfo{}
}

// NewCoreSystem builds a core-algorithm system with Theorem 4's default
// thresholds and an alternating (split) input assignment — the input setting
// the Section 3 slowness argument uses.
func NewCoreSystem(n, t int, seed uint64) (*sim.System, core.Thresholds, error) {
	th, err := core.DefaultThresholds(n, t)
	if err != nil {
		return nil, core.Thresholds{}, err
	}
	inputs := make([]sim.Bit, n)
	for i := range inputs {
		inputs[i] = sim.Bit(i % 2)
	}
	s, err := sim.New(sim.Config{
		N: n, T: t, Seed: seed, Inputs: inputs,
		NewProcess: core.NewFactory(n, t, th),
	})
	if err != nil {
		return nil, core.Thresholds{}, err
	}
	return s, th, nil
}

// NewSplitVote returns the split-vote adversary tuned to thresholds th (it
// keeps every per-receiver count strictly below the deterministic-adoption
// threshold T3).
func NewSplitVote(th core.Thresholds) *adversary.SplitVote {
	return &adversary.SplitVote{Classify: ClassifyCoreVote, Cap: th.T3 - 1}
}

// ProjectConfiguration encodes the decision-relevant projection of a core
// configuration as a talagrand.Point: per processor, value
// 3*x + outCode where outCode is 0 (unwritten), 1 (decided 0), 2 (decided 1).
// Hamming distances over this projection lower-bound nothing and
// upper-bound nothing in general, but they are exactly the distances between
// the (x, output) parts of the state — the part the Z-set argument
// manipulates (resets erase the rest).
func ProjectConfiguration(s *sim.System) (talagrand.Point, error) {
	n := s.N()
	p := make(talagrand.Point, n)
	for i := 0; i < n; i++ {
		proc, ok := s.Proc(sim.ProcID(i)).(*core.Proc)
		if !ok {
			return nil, fmt.Errorf("lowerbound: processor %d is %T, want *core.Proc", i, s.Proc(sim.ProcID(i)))
		}
		code := 3 * int(proc.Value())
		if v, decided := proc.Output(); decided {
			code += 1 + int(v)
		}
		p[i] = code
	}
	return p, nil
}

// DecisionSets samples reachable configurations at the first window in
// which a decision exists, across `trials` seeds and a battery of
// adversaries, and splits them into Z^0_0 (a 0-decision present) and Z^0_1
// (a 1-decision present) in the projected space.
func DecisionSets(n, t, trials, maxWindows int) (z0, z1 *talagrand.ExplicitSet, err error) {
	// One independent trial per (seed, adversary) pair, fanned across the
	// worker pool; membership points are merged in trial order afterwards,
	// so the sampled sets match the serial loop exactly.
	type sample struct {
		point talagrand.Point
		in0s  []bool // per decided processor: decision == 0?
	}
	samples, err := parallel.Map(trials*3, func(trial int) (sample, error) {
		seed := uint64(trial/3 + 1)
		advPick := trial % 3
		s, th, err := NewCoreSystem(n, t, seed*17+uint64(advPick))
		if err != nil {
			return sample{}, err
		}
		var adv sim.WindowAdversary
		switch advPick {
		case 0:
			adv = adversary.FullDelivery{}
		case 1:
			adv = adversary.NewRandomWindows(seed, 0.3, t)
		case 2:
			adv = NewSplitVote(th)
		}
		// Step window by window so the configuration is captured at the
		// first decision, not at termination.
		for w := 0; w < maxWindows; w++ {
			if err := s.ApplyWindowWith(adv); err != nil {
				return sample{}, err
			}
			if s.DecidedCount() == 0 {
				continue
			}
			point, err := ProjectConfiguration(s)
			if err != nil {
				return sample{}, err
			}
			out := sample{point: point}
			vals, oks := s.Outputs()
			for i, ok := range oks {
				if ok {
					out.in0s = append(out.in0s, vals[i] == 0)
				}
			}
			return out, nil
		}
		return sample{}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	z0, z1 = talagrand.NewExplicitSet(), talagrand.NewExplicitSet()
	for _, sm := range samples {
		if sm.point == nil {
			continue // no decision within maxWindows
		}
		for _, isZero := range sm.in0s {
			if isZero {
				z0.Add(sm.point)
			} else {
				z1.Add(sm.point)
			}
		}
	}
	return z0, z1, nil
}

// SeparationResult reports the measured Hamming separation of the sampled
// decision sets.
type SeparationResult struct {
	N, T int
	// Z0Size and Z1Size are the sampled set cardinalities.
	Z0Size, Z1Size int
	// Distance is Delta(Z^0_0, Z^0_1) over the samples (-1 if a side is
	// empty).
	Distance int
	// Bound is the paper's claim: Distance must exceed T.
	Holds bool
}

// MeasureSeparation runs DecisionSets and evaluates the Lemma 11 claim
// Delta(Z^0_0, Z^0_1) > t on the sample.
func MeasureSeparation(n, t, trials, maxWindows int) (SeparationResult, error) {
	z0, z1, err := DecisionSets(n, t, trials, maxWindows)
	if err != nil {
		return SeparationResult{}, err
	}
	res := SeparationResult{
		N: n, T: t,
		Z0Size: z0.Len(), Z1Size: z1.Len(),
		Distance: talagrand.SetDistance(z0, z1),
	}
	// With one side empty the claim is vacuous (distance > t trivially);
	// report Holds true only on real evidence or vacuity.
	res.Holds = res.Distance < 0 || res.Distance > t
	return res, nil
}

// StallPoint is one (n, t) sample of the exponential-slowness experiment.
type StallPoint struct {
	N, T int
	// Windows holds windows-to-first-decision per trial.
	Windows []int
	// GaveUpFraction is the fraction of windows in which the adversary was
	// beaten (had to deliver everything).
	GaveUpFraction float64
	// Summary summarizes Windows.
	Summary stats.Summary
}

// StallSeries measures windows-to-first-decision under the split-vote
// adversary for each n in ns, with t = floor(n*tFrac) (clamped to at least
// 1), `trials` seeds each, capped at maxWindows.
func StallSeries(ns []int, tFrac float64, trials, maxWindows int) ([]StallPoint, error) {
	out := make([]StallPoint, 0, len(ns))
	for _, n := range ns {
		t := int(float64(n) * tFrac)
		if t < 1 {
			t = 1
		}
		type trialOut struct {
			fd, gaveUp, windows int
		}
		results, err := parallel.Map(trials, func(trial int) (trialOut, error) {
			s, th, err := NewCoreSystem(n, t, uint64(trial+1))
			if err != nil {
				return trialOut{}, err
			}
			adv := NewSplitVote(th)
			res, err := s.RunWindows(adv, maxWindows)
			if err != nil {
				return trialOut{}, err
			}
			fd := res.FirstDecision
			if fd < 0 {
				fd = maxWindows // censored
			}
			return trialOut{fd: fd, gaveUp: adv.GaveUp, windows: adv.Windows}, nil
		})
		if err != nil {
			return nil, err
		}
		point := StallPoint{N: n, T: t}
		gaveUp, windows := 0, 0
		for _, r := range results {
			point.Windows = append(point.Windows, r.fd)
			gaveUp += r.gaveUp
			windows += r.windows
		}
		if windows > 0 {
			point.GaveUpFraction = float64(gaveUp) / float64(windows)
		}
		point.Summary = stats.SummarizeInts(point.Windows)
		out = append(out, point)
	}
	return out, nil
}

// FitGrowth fits mean windows-to-decision ~ C * exp(alpha * n) over a stall
// series — the observable counterpart of Theorem 5's C*e^{alpha*n} bound.
func FitGrowth(series []StallPoint) (stats.ExpFit, bool) {
	var xs, ys []float64
	for _, p := range series {
		xs = append(xs, float64(p.N))
		ys = append(ys, p.Summary.Mean)
	}
	return stats.FitExponential(xs, ys)
}

// SurvivalCurve estimates P[no decision within w windows] for each
// checkpoint w in ws, under the split-vote adversary at (n, t), using
// `trials` seeds.
func SurvivalCurve(n, t int, ws []int, trials int) ([]float64, error) {
	maxW := 0
	for _, w := range ws {
		if w > maxW {
			maxW = w
		}
	}
	firsts, err := parallel.Map(trials, func(trial int) (int, error) {
		s, th, err := NewCoreSystem(n, t, uint64(trial+1))
		if err != nil {
			return 0, err
		}
		res, err := s.RunWindows(NewSplitVote(th), maxW)
		if err != nil {
			return 0, err
		}
		fd := res.FirstDecision
		if fd < 0 {
			fd = maxW + 1
		}
		return fd, nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(ws))
	for i, w := range ws {
		surviving := 0
		for _, fd := range firsts {
			if fd >= w {
				surviving++
			}
		}
		out[i] = float64(surviving) / float64(trials)
	}
	return out, nil
}
