package lowerbound

import (
	"testing"

	"asyncagree/internal/sim"
)

func TestNewCoreSystem(t *testing.T) {
	s, th, err := NewCoreSystem(12, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 12 || s.T() != 1 {
		t.Fatalf("n=%d t=%d", s.N(), s.T())
	}
	if th.T1 != 10 || th.T3 != 9 {
		t.Fatalf("thresholds %+v", th)
	}
	// Inputs alternate.
	if s.Input(0) != 0 || s.Input(1) != 1 {
		t.Fatal("inputs not split")
	}
}

func TestNewCoreSystemRejectsLargeT(t *testing.T) {
	if _, _, err := NewCoreSystem(12, 2, 1); err == nil {
		t.Fatal("t = n/6 accepted")
	}
}

func TestProjectConfiguration(t *testing.T) {
	s, _, err := NewCoreSystem(12, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ProjectConfiguration(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 12 {
		t.Fatalf("projection dim %d", len(p))
	}
	// Initially x = input, out unwritten: codes alternate 0, 3.
	for i, v := range p {
		want := 3 * (i % 2)
		if v != want {
			t.Fatalf("projection[%d] = %d, want %d", i, v, want)
		}
	}
}

func TestDecisionSetsNonEmptyAndLabeled(t *testing.T) {
	z0, z1, err := DecisionSets(12, 1, 8, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if z0.Len()+z1.Len() == 0 {
		t.Fatal("no decided configurations sampled")
	}
	// Every point in z0 must contain a processor with outCode 1 (decided 0).
	for _, p := range z0.Points() {
		found := false
		for _, c := range p {
			if c%3 == 1 {
				found = true
			}
		}
		if !found {
			t.Fatalf("z0 point %v has no 0-decision", p)
		}
	}
	for _, p := range z1.Points() {
		found := false
		for _, c := range p {
			if c%3 == 2 {
				found = true
			}
		}
		if !found {
			t.Fatalf("z1 point %v has no 1-decision", p)
		}
	}
}

func TestMeasureSeparationHolds(t *testing.T) {
	// Lemma 11 on the sample: Delta(Z^0_0, Z^0_1) > t.
	res, err := MeasureSeparation(12, 1, 10, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("separation claim failed: %+v", res)
	}
	if res.Z0Size+res.Z1Size == 0 {
		t.Fatal("vacuous sample")
	}
}

func TestStallSeriesGrows(t *testing.T) {
	series, err := StallSeries([]int{8, 16, 24}, 1.0/8, 12, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("series length %d", len(series))
	}
	// The mean stall must grow with n (the exponential-slowness shape).
	if !(series[0].Summary.Mean < series[2].Summary.Mean) {
		t.Fatalf("stall does not grow: %v vs %v", series[0].Summary.Mean, series[2].Summary.Mean)
	}
	// The adversary should almost never be beaten per window at n=24.
	if series[2].GaveUpFraction > 0.2 {
		t.Fatalf("adversary beaten too often at n=24: %v", series[2].GaveUpFraction)
	}
	fit, ok := FitGrowth(series)
	if !ok {
		t.Fatal("growth fit failed")
	}
	if fit.Alpha <= 0 {
		t.Fatalf("growth exponent alpha = %v, want positive", fit.Alpha)
	}
}

func TestSurvivalCurveMonotone(t *testing.T) {
	ws := []int{1, 5, 20, 80}
	curve, err := SurvivalCurve(16, 2, ws, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != len(ws) {
		t.Fatalf("curve length %d", len(curve))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] > curve[i-1]+1e-9 {
			t.Fatalf("survival curve not non-increasing: %v", curve)
		}
	}
	if curve[0] < 0.9 {
		t.Fatalf("P[no decision within 1 window] = %v, want ~1", curve[0])
	}
}

func TestClassifyCoreVote(t *testing.T) {
	info := ClassifyCoreVote(sim.Message{Payload: "junk"})
	if info.HasValue {
		t.Fatal("junk classified as vote")
	}
}
