package lowerbound

import (
	"testing"

	"asyncagree/internal/adversary"
	"asyncagree/internal/sim"
	"asyncagree/internal/stats"
	"asyncagree/internal/talagrand"
)

func TestNewCoreSystem(t *testing.T) {
	s, th, err := NewCoreSystem(12, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 12 || s.T() != 1 {
		t.Fatalf("n=%d t=%d", s.N(), s.T())
	}
	if th.T1 != 10 || th.T3 != 9 {
		t.Fatalf("thresholds %+v", th)
	}
	// Inputs alternate.
	if s.Input(0) != 0 || s.Input(1) != 1 {
		t.Fatal("inputs not split")
	}
}

func TestNewCoreSystemRejectsLargeT(t *testing.T) {
	if _, _, err := NewCoreSystem(12, 2, 1); err == nil {
		t.Fatal("t = n/6 accepted")
	}
}

func TestProjectConfiguration(t *testing.T) {
	s, _, err := NewCoreSystem(12, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ProjectConfiguration(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 12 {
		t.Fatalf("projection dim %d", len(p))
	}
	// Initially x = input, out unwritten: codes alternate 0, 3.
	for i, v := range p {
		want := 3 * (i % 2)
		if v != want {
			t.Fatalf("projection[%d] = %d, want %d", i, v, want)
		}
	}
}

func TestDecisionSetsNonEmptyAndLabeled(t *testing.T) {
	z0, z1, err := DecisionSets(12, 1, 8, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if z0.Len()+z1.Len() == 0 {
		t.Fatal("no decided configurations sampled")
	}
	// Every point in z0 must contain a processor with outCode 1 (decided 0).
	for _, p := range z0.Points() {
		found := false
		for _, c := range p {
			if c%3 == 1 {
				found = true
			}
		}
		if !found {
			t.Fatalf("z0 point %v has no 0-decision", p)
		}
	}
	for _, p := range z1.Points() {
		found := false
		for _, c := range p {
			if c%3 == 2 {
				found = true
			}
		}
		if !found {
			t.Fatalf("z1 point %v has no 1-decision", p)
		}
	}
}

func TestMeasureSeparationHolds(t *testing.T) {
	// Lemma 11 on the sample: Delta(Z^0_0, Z^0_1) > t.
	res, err := MeasureSeparation(12, 1, 10, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("separation claim failed: %+v", res)
	}
	if res.Z0Size+res.Z1Size == 0 {
		t.Fatal("vacuous sample")
	}
}

func TestStallSeriesGrows(t *testing.T) {
	series, err := StallSeries([]int{8, 16, 24}, 1.0/8, 12, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("series length %d", len(series))
	}
	// The mean stall must grow with n (the exponential-slowness shape).
	if !(series[0].Summary.Mean < series[2].Summary.Mean) {
		t.Fatalf("stall does not grow: %v vs %v", series[0].Summary.Mean, series[2].Summary.Mean)
	}
	// The adversary should almost never be beaten per window at n=24.
	if series[2].GaveUpFraction > 0.2 {
		t.Fatalf("adversary beaten too often at n=24: %v", series[2].GaveUpFraction)
	}
	fit, ok := FitGrowth(series)
	if !ok {
		t.Fatal("growth fit failed")
	}
	if fit.Alpha <= 0 {
		t.Fatalf("growth exponent alpha = %v, want positive", fit.Alpha)
	}
}

func TestSurvivalCurveMonotone(t *testing.T) {
	ws := []int{1, 5, 20, 80}
	curve, err := SurvivalCurve(16, 2, ws, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != len(ws) {
		t.Fatalf("curve length %d", len(curve))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] > curve[i-1]+1e-9 {
			t.Fatalf("survival curve not non-increasing: %v", curve)
		}
	}
	if curve[0] < 0.9 {
		t.Fatalf("P[no decision within 1 window] = %v, want ~1", curve[0])
	}
}

func TestClassifyCoreVote(t *testing.T) {
	info := ClassifyCoreVote(sim.Message{Payload: "junk"})
	if info.HasValue {
		t.Fatal("junk classified as vote")
	}
}

// TestStallSeriesMatchesBatchSummaries is the streaming port's
// byte-identity guarantee: the online StallSeries summaries equal the
// historical collect-then-SummarizeInts path, field for field, for every
// rendered statistic.
func TestStallSeriesMatchesBatchSummaries(t *testing.T) {
	const trials, maxW = 12, 200000
	ns := []int{8, 16}
	series, err := StallSeries(ns, 1.0/8, trials, maxW)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range ns {
		tt := n / 8
		if tt < 1 {
			tt = 1
		}
		// The reference: a serial collect-then-summarize loop.
		var fds []int
		gaveUp, windows := 0, 0
		for trial := 0; trial < trials; trial++ {
			s, th, err := NewCoreSystem(n, tt, uint64(trial+1))
			if err != nil {
				t.Fatal(err)
			}
			adv := NewSplitVote(th)
			res, err := s.RunWindows(adv, maxW)
			if err != nil {
				t.Fatal(err)
			}
			fd := res.FirstDecision
			if fd < 0 {
				fd = maxW
			}
			fds = append(fds, fd)
			gaveUp += adv.GaveUp
			windows += adv.Windows
		}
		want := stats.SummarizeInts(fds)
		if series[i].Summary != want {
			t.Fatalf("n=%d: streaming summary %+v != batch %+v", n, series[i].Summary, want)
		}
		if series[i].Trials != trials {
			t.Fatalf("n=%d: trials %d", n, series[i].Trials)
		}
		wantFrac := 0.0
		if windows > 0 {
			wantFrac = float64(gaveUp) / float64(windows)
		}
		if series[i].GaveUpFraction != wantFrac {
			t.Fatalf("n=%d: gave-up fraction %v != %v", n, series[i].GaveUpFraction, wantFrac)
		}
	}
}

// TestSurvivalCurveMatchesBatchCounts: the histogram-reduced curve equals
// the historical collect-then-count fractions exactly.
func TestSurvivalCurveMatchesBatchCounts(t *testing.T) {
	const n, tt, trials = 16, 2, 12
	ws := []int{1, 5, 20, 80}
	curve, err := SurvivalCurve(n, tt, ws, trials)
	if err != nil {
		t.Fatal(err)
	}
	maxW := 80
	var firsts []int
	for trial := 0; trial < trials; trial++ {
		s, th, err := NewCoreSystem(n, tt, uint64(trial+1))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.RunWindows(NewSplitVote(th), maxW)
		if err != nil {
			t.Fatal(err)
		}
		fd := res.FirstDecision
		if fd < 0 {
			fd = maxW + 1
		}
		firsts = append(firsts, fd)
	}
	for i, w := range ws {
		surviving := 0
		for _, fd := range firsts {
			if fd >= w {
				surviving++
			}
		}
		if want := float64(surviving) / float64(trials); curve[i] != want {
			t.Fatalf("P[survive %d] = %v, want %v", w, curve[i], want)
		}
	}
}

// TestDecisionSetsMatchSerialSampling: the block-reduced set pair equals a
// serial trial loop's sampling — same cardinalities, same separation.
func TestDecisionSetsMatchSerialSampling(t *testing.T) {
	const n, tt, trials, maxW = 12, 1, 8, 3000
	z0, z1, err := DecisionSets(n, tt, trials, maxW)
	if err != nil {
		t.Fatal(err)
	}
	sz0, sz1 := talagrand.NewExplicitSet(), talagrand.NewExplicitSet()
	for trial := 0; trial < trials*3; trial++ {
		seed := uint64(trial/3 + 1)
		advPick := trial % 3
		s, th, err := NewCoreSystem(n, tt, seed*17+uint64(advPick))
		if err != nil {
			t.Fatal(err)
		}
		var adv sim.WindowAdversary
		switch advPick {
		case 0:
			adv = adversary.FullDelivery{}
		case 1:
			adv = adversary.NewRandomWindows(seed, 0.3, tt)
		case 2:
			adv = NewSplitVote(th)
		}
		for w := 0; w < maxW; w++ {
			if err := s.ApplyWindowWith(adv); err != nil {
				t.Fatal(err)
			}
			if s.DecidedCount() == 0 {
				continue
			}
			point, err := ProjectConfiguration(s)
			if err != nil {
				t.Fatal(err)
			}
			vals, oks := s.Outputs()
			for i, ok := range oks {
				if ok {
					if vals[i] == 0 {
						sz0.Add(point)
					} else {
						sz1.Add(point)
					}
				}
			}
			break
		}
	}
	if z0.Len() != sz0.Len() || z1.Len() != sz1.Len() {
		t.Fatalf("streaming sets (%d, %d) != serial (%d, %d)",
			z0.Len(), z1.Len(), sz0.Len(), sz1.Len())
	}
	if talagrand.SetDistance(z0, z1) != talagrand.SetDistance(sz0, sz1) {
		t.Fatal("set distances diverged")
	}
}
