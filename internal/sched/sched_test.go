package sched

import (
	"fmt"
	"reflect"
	"testing"

	"asyncagree/internal/core"
	"asyncagree/internal/sim"
)

// newCoreSystem builds a core-algorithm system with split inputs, the
// workhorse target the scheduler properties are checked against.
func newCoreSystem(t *testing.T, n, tt int, seed uint64) *sim.System {
	t.Helper()
	th, err := core.DefaultThresholds(n, tt)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]sim.Bit, n)
	for i := range inputs {
		inputs[i] = sim.Bit(i % 2)
	}
	s, err := sim.New(sim.Config{
		N: n, T: tt, Seed: seed, Inputs: inputs,
		NewProcess: core.NewFactory(n, tt, th),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// builders constructs one fresh instance of every scheduler strategy in the
// package (the registry wraps exactly these).
func builders(seed uint64) map[string]func() Scheduler {
	return map[string]func() Scheduler{
		"adversary": func() Scheduler { return AdversaryDriven{} },
		"full":      func() Scheduler { return FullDelivery{} },
		"ascmin":    func() Scheduler { return NewAscendingMinimal() },
		"seeded":    func() Scheduler { return NewSeededRandom(seed) },
		"laggard":   func() Scheduler { return NewLaggard(0, 0) },
		"alternate": func() Scheduler { return NewAlternate() },
	}
}

// snapshotPlan deep-copies a plan (plans are scheduler-owned scratch).
func snapshotPlan(plan [][]sim.ProcID) [][]sim.ProcID {
	if plan == nil {
		return nil
	}
	out := make([][]sim.ProcID, len(plan))
	for i, row := range plan {
		if row != nil {
			out[i] = append([]sim.ProcID(nil), row...)
		}
	}
	return out
}

// TestSchedulersEmitAcceptableWindows is the Definition 1 property test:
// every strategy, at every (n, t) shape of the default sweep grid, plans
// only legal windows — each receiver admits >= n-t distinct in-range
// senders — across enough windows to cross laggard epochs and alternate
// parity, and the windows it plans are accepted by the simulator.
func TestSchedulersEmitAcceptableWindows(t *testing.T) {
	sizes := [][2]int{{12, 1}, {18, 2}, {24, 3}, {27, 3}, {13, 2}, {7, 1}}
	for name, build := range builders(7) {
		for _, nt := range sizes {
			n, tt := nt[0], nt[1]
			t.Run(fmt.Sprintf("%s/%d:%d", name, n, tt), func(t *testing.T) {
				s := newCoreSystem(t, n, tt, 1)
				sch := build()
				for w := 0; w < 40; w++ {
					batch := s.WindowSend()
					plan := sch.PlanSenders(s, batch)
					if plan != nil && len(plan) != n {
						t.Fatalf("window %d: %d rows for n=%d", w, len(plan), n)
					}
					for i, row := range plan {
						if row == nil {
							continue
						}
						distinct := map[sim.ProcID]bool{}
						for _, p := range row {
							if p < 0 || int(p) >= n {
								t.Fatalf("window %d receiver %d: sender %d out of range", w, i, p)
							}
							distinct[p] = true
						}
						if len(distinct) < n-tt {
							t.Fatalf("window %d receiver %d: %d distinct senders < n-t=%d",
								w, i, len(distinct), n-tt)
						}
					}
					if err := s.WindowDeliver(batch, plan); err != nil {
						t.Fatalf("window %d rejected: %v", w, err)
					}
				}
			})
		}
	}
}

// TestSeededRandomReproducible pins the determinism contract: equal seeds
// replay the exact same delivery schedule, and different seeds diverge.
func TestSeededRandomReproducible(t *testing.T) {
	const n, tt, windows = 18, 2, 25
	plansFor := func(seed uint64) [][][]sim.ProcID {
		s := newCoreSystem(t, n, tt, 1)
		sch := NewSeededRandom(seed)
		var plans [][][]sim.ProcID
		for w := 0; w < windows; w++ {
			batch := s.WindowSend()
			plan := sch.PlanSenders(s, batch)
			plans = append(plans, snapshotPlan(plan))
			if err := s.WindowDeliver(batch, plan); err != nil {
				t.Fatal(err)
			}
		}
		return plans
	}
	a, b := plansFor(42), plansFor(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different delivery schedules")
	}
	if reflect.DeepEqual(a, plansFor(43)) {
		t.Fatal("different seeds produced identical delivery schedules")
	}
}

// TestLaggardRotates asserts the laggard set actually moves through the
// ring: over enough epochs every processor is starved at least once, so the
// discipline is bounded unfairness, not fixed silence.
func TestLaggardRotates(t *testing.T) {
	const n, tt = 18, 2
	s := newCoreSystem(t, n, tt, 1)
	sch := NewLaggard(0, 4)
	starved := map[sim.ProcID]bool{}
	for w := 0; w < 4*(n/tt+1); w++ {
		for _, p := range sch.Starved(n, tt) {
			starved[p] = true
		}
		batch := s.WindowSend()
		plan := sch.PlanSenders(s, batch)
		admitted := map[sim.ProcID]bool{}
		for _, p := range plan[0] {
			admitted[p] = true
		}
		if len(plan[0]) != n-tt {
			t.Fatalf("window %d admits %d senders, want n-k=%d", w, len(plan[0]), n-tt)
		}
		for _, p := range sch.Starved(n, tt) {
			if admitted[p] {
				t.Fatalf("window %d: starved processor %d was admitted", w, p)
			}
		}
		if err := s.WindowDeliver(batch, plan); err != nil {
			t.Fatal(err)
		}
	}
	if len(starved) != n {
		t.Fatalf("only %d/%d processors were ever starved: %v", len(starved), n, starved)
	}
}

// TestComposeIdentity pins the byte-identical default: composing any
// adversary with the AdversaryDriven scheduler (or nil) returns the
// adversary itself, so the pre-scheduler execution path is untouched.
func TestComposeIdentity(t *testing.T) {
	var adv sim.WindowAdversary = stubAdversary{}
	if got := Compose(adv, AdversaryDriven{}); got != adv {
		t.Fatalf("Compose(adv, AdversaryDriven{}) = %T, want the adversary itself", got)
	}
	if got := Compose(adv, nil); got != adv {
		t.Fatalf("Compose(adv, nil) = %T, want the adversary itself", got)
	}
	if got := Compose(adv, FullDelivery{}); got == adv {
		t.Fatal("Compose with a real scheduler must wrap the adversary")
	}
}

// stubAdversary is a minimal WindowAdversary for identity checks.
type stubAdversary struct{}

func (stubAdversary) PlanDelivery(*sim.System, []sim.Message) sim.Window { return sim.Window{} }

// TestComposeKeepsResets asserts the split of responsibilities: the
// scheduler overrides delivery, the adversary keeps its resets.
func TestComposeKeepsResets(t *testing.T) {
	s := newCoreSystem(t, 12, 1, 1)
	adv := resettingAdversary{}
	composed := Compose(adv, NewAscendingMinimal())
	batch := s.WindowSend()
	w := composed.PlanDelivery(s, batch)
	if len(w.Resets) != 1 || w.Resets[0] != 3 {
		t.Fatalf("resets = %v, want the adversary's [3]", w.Resets)
	}
	if w.Senders == nil || len(w.Senders[0]) != 11 {
		t.Fatalf("senders = %v, want the scheduler's n-t ascending set", w.Senders)
	}
}

// resettingAdversary plans full delivery plus one fixed reset.
type resettingAdversary struct{}

func (resettingAdversary) PlanDelivery(*sim.System, []sim.Message) sim.Window {
	return sim.Window{Resets: []sim.ProcID{3}}
}
