// Package sched makes the delivery discipline of acceptable windows a
// first-class, pluggable subsystem.
//
// The Lewko–Lewko lower bound lives or dies on *which* ≥ n−t senders the
// adversary admits into each acceptable window (Definition 1), yet the
// adversaries in internal/adversary bundle that choice together with resets
// and crash injection. A Scheduler isolates the delivery axis: given the
// window's just-sent batch and the full crash/fault state, it produces the
// per-receiver sender sets that sim.System.WindowDeliver admits. Everything
// else an adversary does — resets, crashes, corruption — stays with the
// adversary; Compose splices the two together into one sim.WindowAdversary.
//
// A scheduler differs from an adversary in scope, not in power: every
// scheduler here emits only legal windows (each receiver admits ≥ n−t
// distinct senders, property-tested in sched_test.go), so a scheduler is
// exactly the delivery half of a Definition 1 adversary. The AdversaryDriven
// scheduler closes the loop by keeping the adversary's own sender sets,
// making the pre-scheduler behavior one strategy among peers.
//
// Built-in strategies (registered as descriptors in internal/registry and
// selectable via cmd/sweep -scheds and cmd/agree -sched):
//
//   - AdversaryDriven: the adversary's own window plan (the default).
//   - FullDelivery: every message is delivered.
//   - AscendingMinimal: exactly the n−t lowest sender IDs for every
//     receiver — the ascending-order minimal discipline, equivalent to
//     permanently silencing the top t processors (Lemmas 11/13 shape).
//   - SeededRandom: an independent uniformly random (n−t)-subset per
//     receiver per window, deterministic per trial seed.
//   - Laggard: persistently starves a rotating k-subset (k ≤ t) for an
//     epoch of windows, then rotates — bounded unfairness that, unlike
//     fixed silence, eventually reaches every processor.
//   - Alternate: full delivery on even windows, AscendingMinimal on odd
//     ones — a guaranteed-progress lossy discipline.
//
// Schedulers carry per-trial mutable state (rotation cursors, rng streams,
// reusable scratch): construct a fresh one per execution and never share an
// instance across concurrent trials, exactly like adversaries.
package sched

import (
	"asyncagree/internal/rng"
	"asyncagree/internal/sim"
)

// Scheduler chooses, for one acceptable window, which senders' just-sent
// messages each receiver admits.
type Scheduler interface {
	// PlanSenders returns the per-receiver sender sets in
	// sim.Window.Senders form: element i lists the senders whose just-sent
	// messages processor i receives this window; a nil element (or a nil
	// result) means "all senders". Every non-nil element must contain
	// ≥ n−t distinct in-range senders (Definition 1). Sets may include
	// crashed senders — they simply contributed nothing to the batch,
	// matching the crash-model reuse of windows (Definition 19).
	//
	// The returned slices are scratch owned by the scheduler and are valid
	// only until the next PlanSenders call.
	//
	// batch may be nil: the columnar fast path (sim/columnar.go) never
	// materializes the window's messages. Every built-in scheduler ignores
	// the batch; a custom scheduler that reads it must tolerate nil (and
	// will simply see no messages on columnar windows).
	PlanSenders(s *sim.System, batch []sim.Message) [][]sim.ProcID
}

// Compose wraps adv so that the window's delivery discipline comes from sch
// while everything else the adversary plans — resets, crash injection —
// is preserved. An AdversaryDriven (or nil) scheduler short-circuits to adv
// itself, keeping the adversary's own sender sets byte-identically.
func Compose(adv sim.WindowAdversary, sch Scheduler) sim.WindowAdversary {
	if sch == nil {
		return adv
	}
	if _, ok := sch.(AdversaryDriven); ok {
		return adv
	}
	return &scheduled{adv: adv, sch: sch}
}

// scheduled is the Compose result: the adversary plans the window, the
// scheduler overrides its sender sets.
type scheduled struct {
	adv sim.WindowAdversary
	sch Scheduler
}

var _ sim.WindowAdversary = (*scheduled)(nil)

// PlanDelivery implements sim.WindowAdversary.
func (c *scheduled) PlanDelivery(s *sim.System, batch []sim.Message) sim.Window {
	w := c.adv.PlanDelivery(s, batch)
	w.Senders = c.sch.PlanSenders(s, batch)
	return w
}

var _ sim.ColumnarPlanner = (*scheduled)(nil)

// PlansColumnar implements sim.ColumnarPlanner by probing the wrapped
// adversary; schedulers never read the batch (see Scheduler.PlanSenders),
// so the scheduler side always supports columnar windows.
func (c *scheduled) PlansColumnar() bool {
	cp, ok := c.adv.(sim.ColumnarPlanner)
	return ok && cp.PlansColumnar()
}

// PlanDeliveryColumnar implements sim.ColumnarPlanner: the adversary's
// columnar plan with the scheduler's sender sets spliced over it, exactly
// like PlanDelivery.
func (c *scheduled) PlanDeliveryColumnar(s *sim.System, cols *sim.ColumnSet) sim.Window {
	w := c.adv.(sim.ColumnarPlanner).PlanDeliveryColumnar(s, cols)
	w.Senders = c.sch.PlanSenders(s, nil)
	return w
}

// AdversaryDriven keeps the adversary's own sender sets: Compose
// short-circuits it, so the composed adversary is exactly the wrapped one.
// This is the delivery discipline every pre-scheduler experiment used, now
// one strategy among peers.
type AdversaryDriven struct{}

var _ Scheduler = AdversaryDriven{}

// PlanSenders implements Scheduler. It is never reached through Compose
// (which short-circuits to the adversary); called directly it returns nil,
// i.e. full delivery.
func (AdversaryDriven) PlanSenders(*sim.System, []sim.Message) [][]sim.ProcID {
	return nil
}

// FullDelivery admits every sender for every receiver.
type FullDelivery struct{}

var _ Scheduler = FullDelivery{}

// PlanSenders implements Scheduler; nil means all senders, allocation-free.
func (FullDelivery) PlanSenders(*sim.System, []sim.Message) [][]sim.ProcID {
	return nil
}

// uniformScratch holds the reusable row-sharing scratch used by schedulers
// that show the same sender set to every receiver: rows is the n-element
// Senders slice whose entries all alias set.
type uniformScratch struct {
	set  []sim.ProcID
	rows [][]sim.ProcID
}

// uniform sizes the scratch for n receivers and returns the shared set
// resliced to length 0, ready to be filled.
func (u *uniformScratch) uniform(n int) []sim.ProcID {
	if cap(u.rows) < n {
		u.rows = make([][]sim.ProcID, n)
		u.set = make([]sim.ProcID, 0, n)
	}
	u.rows = u.rows[:n]
	return u.set[:0]
}

// share points every receiver's row at set and returns the Senders slice.
func (u *uniformScratch) share(set []sim.ProcID) [][]sim.ProcID {
	u.set = set
	for i := range u.rows {
		u.rows[i] = set
	}
	return u.rows
}

// AscendingMinimal admits exactly the n−t lowest sender IDs for every
// receiver: the minimal ascending-order discipline Definition 1 permits. It
// is equivalent to permanently silencing the top t processors, so pair it
// only with silence-tolerant algorithms. Construct via NewAscendingMinimal;
// instances carry reusable scratch and must not be shared across trials.
type AscendingMinimal struct {
	scratch uniformScratch
}

var _ Scheduler = (*AscendingMinimal)(nil)

// NewAscendingMinimal returns a fresh ascending-minimal scheduler.
func NewAscendingMinimal() *AscendingMinimal { return &AscendingMinimal{} }

// PlanSenders implements Scheduler.
func (a *AscendingMinimal) PlanSenders(s *sim.System, _ []sim.Message) [][]sim.ProcID {
	n, t := s.N(), s.T()
	set := a.scratch.uniform(n)
	for p := 0; p < n-t; p++ {
		set = append(set, sim.ProcID(p))
	}
	return a.scratch.share(set)
}

// SeededRandom admits an independent uniformly random (n−t)-subset per
// receiver per window, drawn from its own deterministic stream: equal seeds
// replay the exact same delivery schedule. Construct via NewSeededRandom;
// instances carry rng state and must not be shared across trials.
type SeededRandom struct {
	rng  *rng.Source
	idx  []int // index scratch for allocation-free subset draws
	rows [][]sim.ProcID
}

var _ Scheduler = (*SeededRandom)(nil)

// NewSeededRandom returns a fresh seeded-random scheduler.
func NewSeededRandom(seed uint64) *SeededRandom {
	return &SeededRandom{rng: rng.New(seed)}
}

// RecycleTrial rewinds the random stream to the state NewSeededRandom(seed)
// would carry, keeping the scratch, so a pooled instance replays the next
// trial exactly as a fresh one would.
func (r *SeededRandom) RecycleTrial(seed uint64) {
	r.rng.Reseed(seed)
}

// PlanSenders implements Scheduler.
func (r *SeededRandom) PlanSenders(s *sim.System, _ []sim.Message) [][]sim.ProcID {
	n, t := s.N(), s.T()
	if cap(r.rows) < n {
		r.rows = make([][]sim.ProcID, n)
		r.idx = make([]int, n)
	}
	r.rows = r.rows[:n]
	for i := range r.rows {
		if t == 0 {
			r.rows[i] = nil // nil = all senders
			continue
		}
		set := r.rows[i][:0]
		for _, v := range r.rng.SubsetInto(r.idx[:n], n-t) {
			set = append(set, sim.ProcID(v))
		}
		r.rows[i] = set
	}
	return r.rows
}

// Laggard persistently starves a rotating subset: for Epoch consecutive
// windows no receiver admits anything from the current K laggards, then the
// laggard set rotates by K through the ring. K is capped at the system's
// fault budget t, keeping every window acceptable. Unlike fixed silence the
// rotation eventually delivers from every processor, so this is bounded
// unfairness rather than permanent exclusion. Construct via NewLaggard;
// instances carry the rotation cursor and must not be shared across trials.
type Laggard struct {
	// K is the starved-subset size; 0 means "the fault budget t".
	K int
	// Epoch is the number of windows between rotations; 0 means 8.
	Epoch int

	window  int
	cursor  int
	scratch uniformScratch
}

var _ Scheduler = (*Laggard)(nil)

// NewLaggard returns a fresh laggard scheduler starving k processors per
// epoch of `epoch` windows (0 means the defaults: k = t, epoch = 8).
func NewLaggard(k, epoch int) *Laggard { return &Laggard{K: k, Epoch: epoch} }

// RecycleTrial rewinds the rotation state (window counter and cursor) to the
// fresh-construction state; K and Epoch persist.
func (l *Laggard) RecycleTrial() {
	l.window = 0
	l.cursor = 0
}

// starvedCount resolves K against the fault budget: 0 (or an over-budget
// K) means "the full budget t". Shared by PlanSenders and Starved so the
// reported set can never drift from the starved one.
func (l *Laggard) starvedCount(t int) int {
	if l.K <= 0 || l.K > t {
		return t
	}
	return l.K
}

// epochLen resolves Epoch: 0 means the default of 8 windows.
func (l *Laggard) epochLen() int {
	if l.Epoch <= 0 {
		return 8
	}
	return l.Epoch
}

// PlanSenders implements Scheduler.
func (l *Laggard) PlanSenders(s *sim.System, _ []sim.Message) [][]sim.ProcID {
	n, t := s.N(), s.T()
	k := l.starvedCount(t)
	epoch := l.epochLen()
	if l.window > 0 && l.window%epoch == 0 {
		l.cursor = (l.cursor + k) % max(n, 1)
	}
	l.window++
	if k == 0 {
		return nil // t = 0 leaves nothing to starve
	}
	// Admit everyone outside the current laggard ring segment
	// [cursor, cursor+k).
	set := l.scratch.uniform(n)
	for p := 0; p < n; p++ {
		d := (p - l.cursor + n) % n
		if d < k {
			continue
		}
		set = append(set, sim.ProcID(p))
	}
	return l.scratch.share(set)
}

// Starved returns the processors the scheduler is currently starving, in
// ring order (for traces and examples; the slice is freshly allocated).
func (l *Laggard) Starved(n, t int) []sim.ProcID {
	k := l.starvedCount(t)
	out := make([]sim.ProcID, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, sim.ProcID((l.cursor+i)%n))
	}
	return out
}

// Alternate interleaves full delivery (even windows) with the ascending
// minimal discipline (odd windows): a lossy schedule with a built-in
// progress guarantee, useful as a gentler cousin of AscendingMinimal.
// Construct via NewAlternate; instances carry the window parity and must
// not be shared across trials.
type Alternate struct {
	window int
	min    AscendingMinimal
}

var _ Scheduler = (*Alternate)(nil)

// NewAlternate returns a fresh alternating scheduler starting with a
// full-delivery window.
func NewAlternate() *Alternate { return &Alternate{} }

// RecycleTrial rewinds the window parity to the fresh-construction state
// (the next window is a full-delivery one).
func (a *Alternate) RecycleTrial() { a.window = 0 }

// PlanSenders implements Scheduler.
func (a *Alternate) PlanSenders(s *sim.System, batch []sim.Message) [][]sim.ProcID {
	odd := a.window%2 == 1
	a.window++
	if !odd {
		return nil
	}
	return a.min.PlanSenders(s, batch)
}
