package sched

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// TestDocComments is the docs lint the CI workflow runs by name: every
// exported identifier in internal/sched and internal/registry — package
// clauses, top-level types, funcs, consts, vars, struct fields, and
// interface methods — must carry a doc comment, so `go doc` reads as a
// guided tour of the scenario inventory.
func TestDocComments(t *testing.T) {
	for _, dir := range []string{".", "../registry"} {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		for _, pkg := range pkgs {
			if strings.HasSuffix(pkg.Name, "_test") {
				continue
			}
			sawPackageDoc := false
			for name, file := range pkg.Files {
				if strings.HasSuffix(name, "_test.go") {
					continue
				}
				if file.Doc != nil {
					sawPackageDoc = true
				}
				lintFile(t, fset, file)
			}
			if !sawPackageDoc {
				t.Errorf("package %s (%s) has no package doc comment", pkg.Name, dir)
			}
		}
	}
}

func lintFile(t *testing.T, fset *token.FileSet, file *ast.File) {
	t.Helper()
	report := func(pos token.Pos, what, name string) {
		t.Errorf("%s: exported %s %s has no doc comment", fset.Position(pos), what, name)
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil {
				report(d.Pos(), "function", d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if !s.Name.IsExported() {
						continue
					}
					if d.Doc == nil && s.Doc == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
					lintFields(t, fset, s)
				case *ast.ValueSpec:
					for _, n := range s.Names {
						if n.IsExported() && d.Doc == nil && s.Doc == nil {
							report(n.Pos(), "value", n.Name)
						}
					}
				}
			}
		}
	}
}

// lintFields checks exported struct fields and interface methods of an
// exported type.
func lintFields(t *testing.T, fset *token.FileSet, spec *ast.TypeSpec) {
	t.Helper()
	var fields *ast.FieldList
	switch typ := spec.Type.(type) {
	case *ast.StructType:
		fields = typ.Fields
	case *ast.InterfaceType:
		fields = typ.Methods
	default:
		return
	}
	for _, f := range fields.List {
		if f.Doc != nil || f.Comment != nil {
			continue
		}
		for _, n := range f.Names {
			if n.IsExported() {
				t.Errorf("%s: exported field/method %s.%s has no doc comment",
					fset.Position(n.Pos()), spec.Name.Name, n.Name)
			}
		}
	}
}
