// Package committee implements a Kapron-Kempe-King-Saia-Sanwalani-style
// committee-election agreement algorithm (SODA 2008), the "fast but weaker"
// counterpoint the paper's introduction contrasts with Ben-Or/Bracha:
//
//	"The algorithm in [16] works by iteratively dividing the processors into
//	small committees that can afford to run the slow algorithm of [10] to
//	hold elections to select random smaller subsets of processors to
//	continue into new committees. A single final committee is reached that,
//	with 1 - o(1) probability, contains a suitably bounded percentage of
//	faulty processors. This final committee runs the algorithm of [10] and
//	informs the other processors of the result."
//
// Our reproduction keeps that structure exactly (scaled to simulator sizes):
//
//  1. The current survivor set is partitioned into groups of about GroupSize.
//  2. Each group runs SeedBits parallel *scoped Bracha agreements*
//     (internal/bracha.Agreement) on locally random bits to agree on an
//     election seed; the seed deterministically selects SurvivorsPerGroup
//     members to advance.
//  3. Each group member publishes the agreed seed network-wide; outsiders
//     accept a group's seed once a strict majority of the group confirms it.
//  4. When at most FinalSize survivors remain, they run one scoped Bracha
//     agreement on their actual input bits and flood DECIDE messages;
//     non-members adopt the value confirmed by a strict majority of the
//     final committee.
//
// Exactly as the paper notes, this algorithm (a) is fast — a few committee
// levels, each O(1) expected Bracha rounds under fair scheduling — but (b)
// has non-zero probability of non-termination or invalid output when a group
// ends up with too many faulty members, and (c) is destroyed by an adaptive
// adversary who waits for the final committee to be known and corrupts it
// (experiment E10 demonstrates both sides of the separation).
package committee

import (
	"fmt"
	"sort"
	"strconv"

	"asyncagree/internal/bracha"
	"asyncagree/internal/sim"
)

// Params configures the committee algorithm.
type Params struct {
	// N is the total processor count.
	N int
	// GroupSize is the target group size g; groups run internal Bracha with
	// tolerance GroupT, so GroupSize must exceed 3*GroupT.
	GroupSize int
	// GroupT is the per-group Byzantine tolerance.
	GroupT int
	// SeedBits is the number of parallel bit agreements forming a group's
	// election seed.
	SeedBits int
	// SurvivorsPerGroup is how many members each group promotes.
	SurvivorsPerGroup int
	// FinalSize is the survivor count at or below which the survivors form
	// the final committee.
	FinalSize int
}

// DefaultParams returns working parameters for n processors: groups of 9
// tolerating 2 Byzantine members, 8-bit seeds, 3 survivors per group, final
// committee of at most 9.
func DefaultParams(n int) Params {
	return Params{
		N:                 n,
		GroupSize:         9,
		GroupT:            2,
		SeedBits:          8,
		SurvivorsPerGroup: 3,
		FinalSize:         9,
	}
}

// Validate checks structural feasibility.
func (p Params) Validate() error {
	switch {
	case p.N <= 0:
		return fmt.Errorf("committee: n = %d", p.N)
	case p.GroupSize <= 3*p.GroupT:
		return fmt.Errorf("committee: group size %d <= 3*groupT %d", p.GroupSize, 3*p.GroupT)
	case p.SeedBits <= 0 || p.SeedBits > 62:
		return fmt.Errorf("committee: seed bits %d out of (0, 62]", p.SeedBits)
	case p.SurvivorsPerGroup <= 0 || p.SurvivorsPerGroup >= p.GroupSize:
		return fmt.Errorf("committee: survivors per group %d out of (0, group size)", p.SurvivorsPerGroup)
	case p.FinalSize <= 3*p.GroupT:
		return fmt.Errorf("committee: final size %d <= 3*groupT %d", p.FinalSize, 3*p.GroupT)
	}
	return nil
}

// Groups partitions a survivor list into contiguous groups of size at least
// GroupSize (the tail is merged into the last group so no group falls below
// the Bracha feasibility bound).
func (p Params) Groups(survivors []sim.ProcID) [][]sim.ProcID {
	n := len(survivors)
	numGroups := n / p.GroupSize
	if numGroups == 0 {
		numGroups = 1
	}
	var groups [][]sim.ProcID
	base := n / numGroups
	extra := n % numGroups
	idx := 0
	for g := 0; g < numGroups; g++ {
		size := base
		if g < extra {
			size++
		}
		groups = append(groups, survivors[idx:idx+size])
		idx += size
	}
	return groups
}

// electSurvivors deterministically selects k members from group using the
// agreed seed — every processor that knows (seed, group) computes the same
// set.
func electSurvivors(group []sim.ProcID, seed uint64, k int) []sim.ProcID {
	if k >= len(group) {
		out := append([]sim.ProcID(nil), group...)
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	// splitmix64 walk seeded by the agreed seed; Fisher-Yates prefix.
	state := seed ^ 0x9e3779b97f4a7c15
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	pool := append([]sim.ProcID(nil), group...)
	for i := 0; i < k; i++ {
		j := i + int(next()%uint64(len(pool)-i))
		pool[i], pool[j] = pool[j], pool[i]
	}
	out := pool[:k]
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Wire payload types (beyond the rbc.Msg traffic of the internal
// agreements).
type (
	// helloMsg bootstraps the model's "randomness only on receipt" rule:
	// level-0 seed contributions are sampled on first receipt.
	helloMsg struct{}
	// survMsg publishes a group's agreed election seed network-wide.
	survMsg struct {
		Level, Group int
		Seed         uint64
	}
	// decideMsg floods the final committee's decision.
	decideMsg struct {
		V sim.Bit
	}
)

// groupRun is the per-level, per-group protocol state at a member.
type groupRun struct {
	level, group int
	members      []sim.ProcID
	bits         []*bracha.Agreement
	published    bool
}

// Proc is one processor running the committee algorithm. It implements
// sim.Process.
type Proc struct {
	id     sim.ProcID
	params Params
	input  sim.Bit

	out     sim.Bit
	decided bool

	started bool
	// level is the next level whose groups have not yet all reported.
	level     int
	survivors []sim.ProcID

	run *groupRun // my active group run at the current level, if any

	// seedVotes[level][group][seed] = set of confirming members;
	// acceptedSeed[level][group] = accepted seed (presence = accepted).
	seedVotes    map[int]map[int]map[uint64]map[sim.ProcID]bool
	acceptedSeed map[int]map[int]uint64

	final       *bracha.Agreement
	finalSet    []sim.ProcID
	decideVotes map[sim.Bit]map[sim.ProcID]bool

	outbox []sim.Message
}

var _ sim.Process = (*Proc)(nil)

// New constructs a committee processor.
func New(id sim.ProcID, params Params, input sim.Bit) (*Proc, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	survivors := make([]sim.ProcID, params.N)
	for i := range survivors {
		survivors[i] = sim.ProcID(i)
	}
	p := &Proc{
		id:           id,
		params:       params,
		input:        input,
		survivors:    survivors,
		seedVotes:    make(map[int]map[int]map[uint64]map[sim.ProcID]bool),
		acceptedSeed: make(map[int]map[int]uint64),
		decideVotes:  make(map[sim.Bit]map[sim.ProcID]bool),
	}
	// Bootstrap: everyone says hello so that the first receiving step (the
	// only step that may sample randomness) can draw seed contributions.
	for q := 0; q < params.N; q++ {
		p.outbox = append(p.outbox, sim.Message{From: id, To: sim.ProcID(q), Payload: helloMsg{}})
	}
	return p, nil
}

// NewFactory returns a sim.Config-compatible constructor.
func NewFactory(params Params) func(sim.ProcID, sim.Bit) sim.Process {
	if err := params.Validate(); err != nil {
		panic("committee: " + err.Error())
	}
	return func(id sim.ProcID, input sim.Bit) sim.Process {
		p, err := New(id, params, input)
		if err != nil {
			panic("committee: " + err.Error()) // unreachable: params validated above
		}
		return p
	}
}

// ID implements sim.Process.
func (p *Proc) ID() sim.ProcID { return p.id }

// Input implements sim.Process.
func (p *Proc) Input() sim.Bit { return p.input }

// Output implements sim.Process.
func (p *Proc) Output() (sim.Bit, bool) { return p.out, p.decided }

// Level returns the current committee level.
func (p *Proc) Level() int { return p.level }

// FinalCommittee returns the final committee once this processor knows it
// (adaptive adversaries in experiments use this with full information).
func (p *Proc) FinalCommittee() []sim.ProcID { return p.finalSet }

// Send implements sim.Process. The returned slice is valid only until the
// next Deliver/Reset, per the sim.Process contract.
func (p *Proc) Send() []sim.Message {
	out := p.outbox
	p.outbox = p.outbox[:0]
	if p.run != nil {
		for _, ag := range p.run.bits {
			out = append(out, ag.Flush()...)
		}
	}
	if p.final != nil {
		out = append(out, p.final.Flush()...)
	}
	return out
}

// Deliver implements sim.Process.
func (p *Proc) Deliver(m sim.Message, r sim.RandSource) {
	if !p.started {
		p.started = true
		p.startLevel(r)
	}
	switch payload := m.Payload.(type) {
	case helloMsg:
		// Bootstrap only; nothing further.
	case survMsg:
		p.onSurv(m.From, payload, r)
	case decideMsg:
		p.onDecide(m.From, payload)
	default:
		// Agreement traffic: route to whichever instance claims it.
		if p.run != nil {
			for _, ag := range p.run.bits {
				if ag.Handles(m) {
					ag.Handle(m, r)
				}
			}
			p.checkSeedAgreed(r)
		}
		if p.final != nil && p.final.Handles(m) {
			p.final.Handle(m, r)
			p.checkFinalDecided()
		}
	}
}

// startLevel begins the current level: either starts my group's seed
// agreements or, at the final threshold, the final committee agreement.
func (p *Proc) startLevel(r sim.RandSource) {
	if len(p.survivors) <= p.params.FinalSize {
		p.startFinal()
		return
	}
	groups := p.params.Groups(p.survivors)
	for gIdx, members := range groups {
		if !contains(members, p.id) {
			continue
		}
		run := &groupRun{level: p.level, group: gIdx, members: members}
		for b := 0; b < p.params.SeedBits; b++ {
			prefix := "L" + strconv.Itoa(p.level) + "G" + strconv.Itoa(gIdx) + "b" + strconv.Itoa(b)
			ag, err := bracha.NewAgreement(p.id, members, p.params.GroupT, prefix, sim.Bit(r.Bit()))
			if err != nil {
				// Group below feasibility: cannot participate; the level
				// stalls for this group (counted as an algorithm failure by
				// the experiment harness, matching the non-termination
				// probability of the original).
				return
			}
			ag.Start()
			run.bits = append(run.bits, ag)
		}
		p.run = run
		return
	}
	// Not a member of any group at this level: wait for seed publications.
}

// checkSeedAgreed publishes my group's seed once all bit agreements decide.
func (p *Proc) checkSeedAgreed(r sim.RandSource) {
	run := p.run
	if run == nil || run.published {
		return
	}
	var seed uint64
	for b, ag := range run.bits {
		v, ok := ag.Output()
		if !ok {
			return
		}
		seed |= uint64(v) << uint(b)
	}
	run.published = true
	for q := 0; q < p.params.N; q++ {
		p.outbox = append(p.outbox, sim.Message{
			From: p.id, To: sim.ProcID(q),
			Payload: survMsg{Level: run.level, Group: run.group, Seed: seed},
		})
	}
	// My own confirmation counts immediately.
	p.recordSeedVote(p.id, survMsg{Level: run.level, Group: run.group, Seed: seed}, r)
}

// onSurv records a seed confirmation and accepts the group's seed at strict
// majority.
func (p *Proc) onSurv(from sim.ProcID, msg survMsg, r sim.RandSource) {
	p.recordSeedVote(from, msg, r)
}

// recordSeedVote buffers a seed confirmation unconditionally (the receiver
// may still be at an earlier level) and re-evaluates acceptance for the
// current level. Membership validation happens lazily at evaluation time,
// when this processor knows the groups of that level.
func (p *Proc) recordSeedVote(from sim.ProcID, msg survMsg, r sim.RandSource) {
	if msg.Level < p.level || msg.Group < 0 {
		return // stale
	}
	byGroup := p.seedVotes[msg.Level]
	if byGroup == nil {
		byGroup = make(map[int]map[uint64]map[sim.ProcID]bool)
		p.seedVotes[msg.Level] = byGroup
	}
	bySeed := byGroup[msg.Group]
	if bySeed == nil {
		bySeed = make(map[uint64]map[sim.ProcID]bool)
		byGroup[msg.Group] = bySeed
	}
	voters := bySeed[msg.Seed]
	if voters == nil {
		voters = make(map[sim.ProcID]bool)
		bySeed[msg.Seed] = voters
	}
	voters[from] = true
	p.evaluateSeeds(r)
}

// evaluateSeeds accepts any current-level group seed confirmed by a strict
// majority of that group's members, then advances the level if complete.
func (p *Proc) evaluateSeeds(r sim.RandSource) {
	groups := p.params.Groups(p.survivors)
	accepted := p.acceptedSeed[p.level]
	if accepted == nil {
		accepted = make(map[int]uint64)
		p.acceptedSeed[p.level] = accepted
	}
	for gIdx, group := range groups {
		if _, done := accepted[gIdx]; done {
			continue
		}
		for seed, voters := range p.seedVotes[p.level][gIdx] {
			confirms := 0
			for from := range voters {
				if contains(group, from) {
					confirms++
				}
			}
			if 2*confirms > len(group) {
				accepted[gIdx] = seed
				break
			}
		}
	}
	p.maybeAdvanceLevel(r)
}

// maybeAdvanceLevel moves to the next level once every group of the current
// level has an accepted seed.
func (p *Proc) maybeAdvanceLevel(r sim.RandSource) {
	if p.finalSet != nil {
		return // already at the final phase
	}
	groups := p.params.Groups(p.survivors)
	accepted := p.acceptedSeed[p.level]
	if len(accepted) < len(groups) {
		return
	}
	var next []sim.ProcID
	for gIdx, group := range groups {
		next = append(next, electSurvivors(group, accepted[gIdx], p.params.SurvivorsPerGroup)...)
	}
	sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
	p.survivors = next
	p.level++
	p.run = nil
	p.startLevel(r)
	if p.finalSet == nil {
		// Buffered confirmations for the new level may already complete it.
		p.evaluateSeeds(r)
	}
}

// startFinal begins the final committee phase.
func (p *Proc) startFinal() {
	p.finalSet = append([]sim.ProcID(nil), p.survivors...)
	p.evaluateDecide() // buffered DECIDE floods may already suffice
	if !contains(p.finalSet, p.id) {
		return // spectators wait for DECIDE floods
	}
	ag, err := bracha.NewAgreement(p.id, p.finalSet, p.params.GroupT, "final", p.input)
	if err != nil {
		return // infeasible final committee: stall (failure mode, measured)
	}
	ag.Start()
	p.final = ag
}

// checkFinalDecided floods the decision once the final agreement completes.
func (p *Proc) checkFinalDecided() {
	v, ok := p.final.Output()
	if !ok {
		return
	}
	if !p.decided {
		p.out, p.decided = v, true
	}
	for q := 0; q < p.params.N; q++ {
		p.outbox = append(p.outbox, sim.Message{From: p.id, To: sim.ProcID(q), Payload: decideMsg{V: v}})
	}
	p.final = nil // flood once
}

// onDecide buffers a flooded decision vote (the receiver may not yet know
// the final committee) and adopts the value once a strict majority of the
// final committee confirms it.
func (p *Proc) onDecide(from sim.ProcID, msg decideMsg) {
	voters := p.decideVotes[msg.V]
	if voters == nil {
		voters = make(map[sim.ProcID]bool)
		p.decideVotes[msg.V] = voters
	}
	voters[from] = true
	p.evaluateDecide()
}

// evaluateDecide adopts a decision value confirmed by a strict majority of
// the known final committee.
func (p *Proc) evaluateDecide() {
	if p.finalSet == nil || p.decided {
		return
	}
	for v, voters := range p.decideVotes {
		confirms := 0
		for from := range voters {
			if contains(p.finalSet, from) {
				confirms++
			}
		}
		if 2*confirms > len(p.finalSet) {
			p.out, p.decided = v, true
			return
		}
	}
}

// Recycle implements sim.Recycler: it rewinds the processor to the state
// New would produce for the given input, reusing the top-level vote maps,
// survivor list, and outbox capacity. The per-level Bracha agreements are
// constructed lazily during the run either way, so a recycled trial's
// steady-state cost matches a fresh one with warm maps.
func (p *Proc) Recycle(input sim.Bit) {
	p.input = input
	p.out, p.decided = 0, false
	p.started = false
	p.level = 0
	p.survivors = p.survivors[:0]
	for i := 0; i < p.params.N; i++ {
		p.survivors = append(p.survivors, sim.ProcID(i))
	}
	p.run = nil
	clear(p.seedVotes)
	clear(p.acceptedSeed)
	p.final = nil
	p.finalSet = nil
	clear(p.decideVotes)
	p.outbox = p.outbox[:0]
	for q := 0; q < p.params.N; q++ {
		p.outbox = append(p.outbox, sim.Message{From: p.id, To: sim.ProcID(q), Payload: helloMsg{}})
	}
}

// Reset implements sim.Process. The committee algorithm is not reset-
// tolerant (the paper's point: fast algorithms sacrifice exactly this);
// a reset processor restarts from scratch and will generally desynchronize.
func (p *Proc) Reset() {
	out, decided := p.out, p.decided
	fresh, err := New(p.id, p.params, p.input)
	if err != nil {
		return // parameters were validated at construction; unreachable
	}
	*p = *fresh
	p.out, p.decided = out, decided
}

// Snapshot implements sim.Process.
func (p *Proc) Snapshot() string {
	out := "_"
	if p.decided {
		out = string('0' + byte(p.out))
	}
	return fmt.Sprintf("lvl=%d surv=%d final=%v out=%s", p.level, len(p.survivors), p.finalSet != nil, out)
}

func contains(list []sim.ProcID, id sim.ProcID) bool {
	for _, v := range list {
		if v == id {
			return true
		}
	}
	return false
}
