package committee

import (
	"testing"

	"asyncagree/internal/adversary"
	"asyncagree/internal/bracha"
	"asyncagree/internal/sim"
)

func newSystem(t *testing.T, params Params, inputs []sim.Bit, seed uint64) *sim.System {
	t.Helper()
	s, err := sim.New(sim.Config{
		N: params.N, T: params.N / 3, Seed: seed, Inputs: inputs,
		NewProcess: NewFactory(params),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func unanimous(n int, v sim.Bit) []sim.Bit {
	in := make([]sim.Bit, n)
	for i := range in {
		in[i] = v
	}
	return in
}

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		name    string
		p       Params
		wantErr bool
	}{
		{"defaults 27", DefaultParams(27), false},
		{"group too small", Params{N: 27, GroupSize: 6, GroupT: 2, SeedBits: 8, SurvivorsPerGroup: 2, FinalSize: 9}, true},
		{"zero seed bits", Params{N: 27, GroupSize: 9, GroupT: 2, SeedBits: 0, SurvivorsPerGroup: 3, FinalSize: 9}, true},
		{"survivors too many", Params{N: 27, GroupSize: 9, GroupT: 2, SeedBits: 8, SurvivorsPerGroup: 9, FinalSize: 9}, true},
		{"final too small", Params{N: 27, GroupSize: 9, GroupT: 2, SeedBits: 8, SurvivorsPerGroup: 3, FinalSize: 6}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.p.Validate(); (err != nil) != c.wantErr {
				t.Fatalf("err = %v, wantErr %v", err, c.wantErr)
			}
		})
	}
}

func TestGroupsPartition(t *testing.T) {
	p := DefaultParams(27)
	survivors := make([]sim.ProcID, 30)
	for i := range survivors {
		survivors[i] = sim.ProcID(i)
	}
	groups := p.Groups(survivors)
	if len(groups) != 3 {
		t.Fatalf("got %d groups, want 3", len(groups))
	}
	total := 0
	for _, g := range groups {
		if len(g) < 9 {
			t.Fatalf("group size %d below target", len(g))
		}
		total += len(g)
	}
	if total != 30 {
		t.Fatalf("partition covers %d of 30", total)
	}
}

func TestElectSurvivorsDeterministic(t *testing.T) {
	group := []sim.ProcID{3, 5, 8, 9, 12, 14, 17, 20, 26}
	a := electSurvivors(group, 42, 3)
	b := electSurvivors(group, 42, 3)
	if len(a) != 3 {
		t.Fatalf("elected %d, want 3", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("election not deterministic")
		}
	}
	seen := map[sim.ProcID]bool{}
	for _, id := range a {
		if !contains(group, id) || seen[id] {
			t.Fatalf("invalid election %v", a)
		}
		seen[id] = true
	}
	c := electSurvivors(group, 43, 3)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == 3 {
		t.Log("warning: adjacent seeds elected identical sets (possible but unlikely)")
	}
}

func TestElectAllWhenKLarge(t *testing.T) {
	group := []sim.ProcID{2, 1, 3}
	out := electSurvivors(group, 7, 5)
	if len(out) != 3 || out[0] != 1 || out[1] != 2 || out[2] != 3 {
		t.Fatalf("got %v", out)
	}
}

func TestFaultFreeRunDecides(t *testing.T) {
	for _, v := range []sim.Bit{0, 1} {
		params := DefaultParams(27)
		s := newSystem(t, params, unanimous(27, v), 3)
		res, err := s.RunWindows(adversary.FullDelivery{}, 3000)
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllDecided || res.Decision != v || !res.Agreement || !res.Validity {
			t.Fatalf("v=%d: %+v (decided %d/27)", v, res, s.DecidedCount())
		}
	}
}

func TestFaultFreeRunDecidesLargerN(t *testing.T) {
	params := DefaultParams(81)
	s := newSystem(t, params, unanimous(81, 1), 5)
	res, err := s.RunWindows(adversary.FullDelivery{}, 8000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDecided || res.Decision != 1 || !res.Agreement {
		t.Fatalf("%+v (decided %d/81)", res, s.DecidedCount())
	}
}

func TestNonAdaptiveFaultsUsuallyTolerated(t *testing.T) {
	// A couple of randomly-placed silent Byzantine processors at n=27
	// should usually leave every group within its tolerance.
	params := DefaultParams(27)
	successes := 0
	const trials = 5
	for seed := uint64(1); seed <= trials; seed++ {
		s := newSystem(t, params, unanimous(27, 1), seed)
		// Non-adaptive: positions chosen before the execution.
		victims := []sim.ProcID{sim.ProcID(seed % 27), sim.ProcID((seed*7 + 3) % 27)}
		if victims[0] == victims[1] {
			victims[1] = (victims[1] + 1) % 27
		}
		for _, v := range victims {
			if err := s.Corrupt(v, bracha.NewSilent(v)); err != nil {
				t.Fatal(err)
			}
		}
		res, err := s.RunWindows(adversary.FullDelivery{}, 5000)
		if err != nil {
			t.Fatal(err)
		}
		if res.AllDecided && res.Agreement && res.Decision == 1 {
			successes++
		}
	}
	if successes < trials-1 {
		t.Fatalf("only %d/%d non-adaptive runs succeeded", successes, trials)
	}
}

func TestAdaptiveAdversaryKillsFinalCommittee(t *testing.T) {
	// The intro's observation: "this approach cannot be used against an
	// adaptive adversary, who can simply wait for the final committee to be
	// determined and then cause faults." Run fault-free until the final
	// committee is known, then silence GroupT+1 of its members: the
	// remaining members cannot finish Bracha (thresholds unreachable), and
	// honest non-members never see a majority of DECIDEs.
	params := DefaultParams(27)
	s := newSystem(t, params, unanimous(27, 1), 11)
	adv := adversary.FullDelivery{}
	corrupted := false
	for w := 0; w < 3000 && !s.AllDecided(); w++ {
		if err := s.ApplyWindowWith(adv); err != nil {
			t.Fatal(err)
		}
		if corrupted {
			continue
		}
		p0, ok := s.Proc(0).(*Proc)
		if !ok {
			t.Fatal("unexpected process type")
		}
		final := p0.FinalCommittee()
		if final == nil {
			continue
		}
		// Adaptive strike: silence GroupT+1 final committee members.
		for i := 0; i <= params.GroupT && i < len(final); i++ {
			if err := s.Corrupt(final[i], bracha.NewSilent(final[i])); err != nil {
				t.Fatal(err)
			}
		}
		corrupted = true
	}
	if !corrupted {
		t.Fatal("final committee never formed; cannot run the attack")
	}
	if s.AllDecided() {
		t.Fatal("adaptive attack failed: everyone decided anyway")
	}
}

func TestSnapshotAndAccessors(t *testing.T) {
	p, err := New(0, DefaultParams(27), 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.ID() != 0 || p.Input() != 1 || p.Level() != 0 {
		t.Fatal("accessors wrong")
	}
	if _, ok := p.Output(); ok {
		t.Fatal("decided at birth")
	}
	if snap := p.Snapshot(); snap != "lvl=0 surv=27 final=false out=_" {
		t.Fatalf("Snapshot = %q", snap)
	}
}

func TestNewRejectsInvalidParams(t *testing.T) {
	bad := DefaultParams(27)
	bad.GroupT = 3
	if _, err := New(0, bad, 0); err == nil {
		t.Fatal("invalid params accepted")
	}
}
