package parallel

import (
	"errors"
	"fmt"
	"testing"
)

func TestMapOrdersResultsByIndex(t *testing.T) {
	got, err := Map(100, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("results[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	sentinel := errors.New("boom")
	for trial := 0; trial < 20; trial++ { // races would be flaky; repeat
		_, err := Map(64, func(i int) (int, error) {
			if i == 7 || i == 31 {
				return 0, fmt.Errorf("%w at %d", sentinel, i)
			}
			return i, nil
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("err = %v, want wrapped sentinel", err)
		}
		if err.Error() != "boom at 7" {
			t.Fatalf("err = %q, want the lowest-index failure", err)
		}
	}
}

func TestMapZeroTrials(t *testing.T) {
	got, err := Map(0, func(i int) (int, error) { return 0, errors.New("never called") })
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}
