package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
)

func TestMapOrdersResultsByIndex(t *testing.T) {
	got, err := Map(100, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("results[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	sentinel := errors.New("boom")
	for trial := 0; trial < 20; trial++ { // races would be flaky; repeat
		_, err := Map(64, func(i int) (int, error) {
			if i == 7 || i == 31 {
				return 0, fmt.Errorf("%w at %d", sentinel, i)
			}
			return i, nil
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("err = %v, want wrapped sentinel", err)
		}
		if err.Error() != "boom at 7" {
			t.Fatalf("err = %q, want the lowest-index failure", err)
		}
	}
}

func TestMapZeroTrials(t *testing.T) {
	got, err := Map(0, func(i int) (int, error) { return 0, errors.New("never called") })
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

// TestStreamEmitsInIndexOrder is Stream's core contract: emission is the
// serial order whatever the completion order, run after run.
func TestStreamEmitsInIndexOrder(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		var emitted []int
		err := Stream(500, 0, func(i int) (int, error) {
			return i * 3, nil
		}, func(i, v int) error {
			if v != i*3 {
				t.Fatalf("emit(%d) got %d", i, v)
			}
			emitted = append(emitted, i)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(emitted) != 500 {
			t.Fatalf("emitted %d results", len(emitted))
		}
		for i, v := range emitted {
			if v != i {
				t.Fatalf("emission order broken at %d: %v", i, emitted[:i+1])
			}
		}
	}
}

// TestStreamBoundedWindow checks workers never run more than the window
// ahead of the emission frontier — the O(window) memory guarantee.
func TestStreamBoundedWindow(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs a second worker to advance past the stalled frontier")
	}
	const window = 4
	block := make(chan struct{})
	err := Stream(64, window, func(i int) (int, error) {
		if i == 0 {
			<-block // stall the frontier; claims beyond the window must wait
		}
		if i >= window {
			select {
			case <-block:
			default:
				t.Errorf("trial %d claimed while frontier stalled at 0", i)
			}
		}
		if i == window-1 {
			close(block)
		}
		return i, nil
	}, func(i, v int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
}

// TestStreamErrorKeepsPrefix pins the resume property: on failure,
// everything emitted is exactly the contiguous prefix below the lowest
// failing index.
func TestStreamErrorKeepsPrefix(t *testing.T) {
	sentinel := errors.New("boom")
	for trial := 0; trial < 20; trial++ {
		var emitted []int
		err := Stream(64, 8, func(i int) (int, error) {
			if i == 19 || i == 40 {
				return 0, fmt.Errorf("%w at %d", sentinel, i)
			}
			return i, nil
		}, func(i, v int) error {
			emitted = append(emitted, i)
			return nil
		})
		if !errors.Is(err, sentinel) || err.Error() != "boom at 19" {
			t.Fatalf("err = %v, want the lowest-index failure", err)
		}
		if len(emitted) > 19 {
			t.Fatalf("emitted past the failing index: %v", emitted)
		}
		for i, v := range emitted {
			if v != i {
				t.Fatalf("emitted prefix not contiguous: %v", emitted)
			}
		}
	}
}

// TestStreamEmitErrorStops: a sink failure aborts the stream and surfaces.
func TestStreamEmitErrorStops(t *testing.T) {
	sentinel := errors.New("sink full")
	count := 0
	err := Stream(100, 4, func(i int) (int, error) { return i, nil },
		func(i, v int) error {
			count++
			if i == 10 {
				return sentinel
			}
			return nil
		})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if count != 11 {
		t.Fatalf("emit called %d times, want 11", count)
	}
}

// TestReduceMatchesSerialFold: with merge-compatible accumulators the
// parallel reduction equals the serial fold exactly for integer sums, and
// is identical run to run.
func TestReduceMatchesSerialFold(t *testing.T) {
	type acc struct {
		n   int
		sum int
	}
	newAcc := func() *acc { return &acc{} }
	fold := func(a *acc, i int) (*acc, error) {
		a.n++
		a.sum += i * i
		return a, nil
	}
	merge := func(into, from *acc) *acc {
		into.n += from.n
		into.sum += from.sum
		return into
	}
	want := 0
	for i := 0; i < 10_000; i++ {
		want += i * i
	}
	for trial := 0; trial < 10; trial++ {
		got, err := Reduce(10_000, newAcc, fold, merge)
		if err != nil {
			t.Fatal(err)
		}
		if got.n != 10_000 || got.sum != want {
			t.Fatalf("reduce = %+v, want sum %d", got, want)
		}
	}
	// Small n (fewer indices than blocks) still covers everything once.
	got, err := Reduce(3, newAcc, fold, merge)
	if err != nil || got.n != 3 || got.sum != 0+1+4 {
		t.Fatalf("small reduce = %+v, %v", got, err)
	}
	empty, err := Reduce(0, newAcc, fold, merge)
	if err != nil || empty.n != 0 {
		t.Fatalf("empty reduce = %+v, %v", empty, err)
	}
}

// TestReduceReturnsLowestIndexError mirrors Map's error semantics.
func TestReduceReturnsLowestIndexError(t *testing.T) {
	sentinel := errors.New("boom")
	for trial := 0; trial < 20; trial++ {
		_, err := Reduce(256, func() int { return 0 },
			func(a, i int) (int, error) {
				if i == 33 || i == 200 {
					return 0, fmt.Errorf("%w at %d", sentinel, i)
				}
				return a + 1, nil
			},
			func(into, from int) int { return into + from })
		if !errors.Is(err, sentinel) || err.Error() != "boom at 33" {
			t.Fatalf("err = %v, want the lowest-index failure", err)
		}
	}
}
