package parallel

import (
	"reflect"
	"runtime"
	"testing"
)

// blockAcc records the contiguous index ranges one Reduce block folded, so
// a test can observe the partition Reduce actually used.
type blockAcc struct {
	ranges [][2]int
}

func foldIndex(a *blockAcc, i int) (*blockAcc, error) {
	if n := len(a.ranges); n > 0 && a.ranges[n-1][1] == i {
		a.ranges[n-1][1] = i + 1
	} else {
		a.ranges = append(a.ranges, [2]int{i, i + 1})
	}
	return a, nil
}

func mergeAccs(into, from *blockAcc) *blockAcc {
	into.ranges = append(into.ranges, from.ranges...)
	return into
}

// expectedBlocks is the documented partition: min(n, 64) contiguous blocks
// with block b covering [b*n/blocks, (b+1)*n/blocks).
func expectedBlocks(n int) [][2]int {
	blocks := n
	if blocks > 64 {
		blocks = 64
	}
	var out [][2]int
	for b := 0; b < blocks; b++ {
		lo, hi := b*n/blocks, (b+1)*n/blocks
		if lo < hi {
			out = append(out, [2]int{lo, hi})
		}
	}
	return out
}

// TestReduceBlockBoundariesPureFunctionOfN is the regression guard against
// the worker count leaking into the reduction shape: the block partition —
// and with it every merge tree and its floating-point rounding — must be
// exactly the documented function of n at any GOMAXPROCS setting.
func TestReduceBlockBoundariesPureFunctionOfN(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	for _, procs := range []int{1, 2, 4, old} {
		runtime.GOMAXPROCS(procs)
		for _, n := range []int{1, 2, 5, 63, 64, 65, 100, 129, 1000} {
			acc, err := Reduce(n,
				func() *blockAcc { return &blockAcc{} },
				foldIndex, mergeAccs)
			if err != nil {
				t.Fatal(err)
			}
			if want := expectedBlocks(n); !reflect.DeepEqual(acc.ranges, want) {
				t.Fatalf("GOMAXPROCS=%d n=%d: blocks %v, want %v", procs, n, acc.ranges, want)
			}
		}
	}
}

// TestReduceBlockCountCapped pins the fixed upper bound itself: however
// large n grows, the partition stays at reduceMaxBlocks blocks.
func TestReduceBlockCountCapped(t *testing.T) {
	acc, err := Reduce(10_000,
		func() *blockAcc { return &blockAcc{} },
		foldIndex, mergeAccs)
	if err != nil {
		t.Fatal(err)
	}
	if len(acc.ranges) != reduceMaxBlocks {
		t.Fatalf("n=10000 folded in %d blocks, want %d", len(acc.ranges), reduceMaxBlocks)
	}
}
