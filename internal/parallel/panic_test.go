package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
)

// TestMapPanicBecomesError: a panicking index surfaces as the *PanicError
// of the lowest panicking index, like any other trial error, instead of
// crashing the pool.
func TestMapPanicBecomesError(t *testing.T) {
	_, err := Map(16, func(i int) (int, error) {
		if i == 5 || i == 9 {
			panic(fmt.Sprintf("boom %d", i))
		}
		return i, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Value != "boom 5" && pe.Value != "boom 9" {
		t.Fatalf("panic value = %v", pe.Value)
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "goroutine") {
		t.Fatalf("stack not captured: %q", pe.Stack)
	}
}

// TestMapSerialPanicSameSurface pins that the GOMAXPROCS=1 fallback loop
// recovers panics identically to the worker pool.
func TestMapSerialPanicSameSurface(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	_, err := Map(4, func(i int) (int, error) {
		if i == 2 {
			panic("serial boom")
		}
		return i, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != 2 {
		t.Fatalf("err = %v, want *PanicError at index 2", err)
	}
}

// TestStreamPanicPrefixIntact: everything emitted before the failing index
// is still the exact serial prefix.
func TestStreamPanicPrefixIntact(t *testing.T) {
	var got []int
	err := Stream(64, 4,
		func(i int) (int, error) {
			if i == 10 {
				panic("stream boom")
			}
			return i * i, nil
		},
		func(i, v int) error {
			got = append(got, v)
			return nil
		})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != 10 {
		t.Fatalf("err = %v, want *PanicError at index 10", err)
	}
	if len(got) > 10 {
		t.Fatalf("emitted %d results past the panicking index", len(got)-10)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("emitted prefix corrupted at %d: %d", i, v)
		}
	}
}

// TestStreamEmitPanicBecomesError: a panic inside the emission callback is
// contained like an emit error.
func TestStreamEmitPanicBecomesError(t *testing.T) {
	err := Stream(8, 2,
		func(i int) (int, error) { return i, nil },
		func(i, v int) error {
			if i == 3 {
				panic("emit boom")
			}
			return nil
		})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != 3 {
		t.Fatalf("err = %v, want *PanicError at index 3", err)
	}
}

// TestReducePanicFailsBlock: a panicking fold index fails the reduction
// with a *PanicError at that index and no partial accumulator.
func TestReducePanicFailsBlock(t *testing.T) {
	sum, err := Reduce(100,
		func() int { return 0 },
		func(acc, i int) (int, error) {
			if i == 37 {
				panic("fold boom")
			}
			return acc + i, nil
		},
		func(a, b int) int { return a + b })
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != 37 {
		t.Fatalf("err = %v, want *PanicError at index 37", err)
	}
	if sum != 0 {
		t.Fatalf("partial accumulator leaked: %d", sum)
	}
}

// TestPanicErrorUnwrap: a panic whose value already is an error stays
// matchable with errors.Is through the wrapper.
func TestPanicErrorUnwrap(t *testing.T) {
	sentinel := errors.New("invariant violated")
	_, err := Map(1, func(i int) (int, error) { panic(sentinel) })
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v does not unwrap to the panic value", err)
	}
	var pe *PanicError
	errors.As(err, &pe)
	if (&PanicError{Value: "plain"}).Unwrap() != nil {
		t.Fatal("non-error panic value must unwrap to nil")
	}
}
