// Package parallel provides the deterministic worker pool the experiment
// and lower-bound drivers fan their independent seeded trials across.
//
// Every trial in this repository is a pure function of its index (the index
// picks the seed, and each trial builds its own sim.System — Systems are
// not safe for concurrent use but are never shared). That makes the trial
// loops embarrassingly parallel, with one requirement: results must be
// byte-identical to the serial loop. Map guarantees that by writing each
// result into its index's slot and, on failure, reporting the error of the
// lowest-index failing trial — exactly the error a serial loop would have
// hit first.
//
// Map holds all n results at once. The streaming primitives keep memory
// bounded instead: Stream delivers results to a consumer in strictly
// increasing index order through a fixed-size reorder window, and Reduce
// folds results into per-block accumulators merged in index order, so a
// sweep's footprint is the accumulator, not the result set (DESIGN.md §4).
package parallel

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError is a panic recovered from a worker body, converted into an
// ordinary error so one panicking trial cannot take down the whole pool
// (and, on parallel runs, every sibling worker's in-flight results). It
// records the panicking index, the panic value, and the stack captured at
// recovery — the raw material the registry layer turns into a structured
// quarantine record.
type PanicError struct {
	// Index is the work index whose function panicked.
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at the recovery point.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: panic at index %d: %v", e.Index, e.Value)
}

// Unwrap exposes a panic value that already was an error.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// guard wraps fn so a panic inside fn(i) is returned as a *PanicError
// instead of unwinding the worker goroutine. Every pool entry point (Map,
// Stream, Reduce — serial fallbacks included, so the error surface does not
// depend on GOMAXPROCS) runs its work function through this wrapper.
func guard[T any](fn func(int) (T, error)) func(int) (T, error) {
	return func(i int) (v T, err error) {
		defer func() {
			if r := recover(); r != nil {
				var zero T
				v, err = zero, &PanicError{Index: i, Value: r, Stack: debug.Stack()}
			}
		}()
		return fn(i)
	}
}

// Map runs fn(i) for every i in [0, n) across up to GOMAXPROCS workers and
// returns the results ordered by index (never by completion time). If any
// calls fail, the error of the smallest failing index is returned along
// with the partial results. fn must be safe to call concurrently with
// distinct indices.
func Map[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	if n == 0 {
		return results, nil
	}
	fn = guard(fn)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return results, err
			}
			results[i] = v
		}
		return results, nil
	}

	var (
		next     atomic.Int64
		failed   atomic.Bool
		mu       sync.Mutex
		firstErr error
		errIndex = n
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				v, err := fn(i)
				if err != nil {
					// Stop claiming new trials; in-flight ones finish.
					// Claims are monotone, so every index below this one was
					// already claimed and any lower-index failure still gets
					// recorded — the returned error is exactly the one the
					// serial loop would have hit first.
					mu.Lock()
					if i < errIndex {
						errIndex, firstErr = i, err
					}
					mu.Unlock()
					failed.Store(true)
					return
				}
				results[i] = v
			}
		}()
	}
	wg.Wait()
	return results, firstErr
}

// Stream runs fn(i) for every i in [0, n) across up to GOMAXPROCS workers
// and delivers every result to emit in strictly increasing index order —
// the streaming counterpart of Map for consumers (aggregators, sinks) that
// must observe results in serial order without holding them all. At most
// window results are in flight at once (0 selects a default scaled to the
// worker count): workers stall rather than run further ahead of the
// emission frontier, so peak buffered memory is O(window), independent of
// n. emit is never called concurrently.
//
// On failure — whether a trial's error or emit's — Stream stops claiming
// new indices, lets in-flight trials finish, and returns the error of the
// lowest failing index (for trial errors, exactly the error a serial loop
// would have hit first). Results are emitted contiguously from index 0, so
// everything emitted before a failure is the exact prefix a serial loop
// would have produced — the property checkpoint-based sweep resume relies
// on.
func Stream[T any](n, window int, fn func(i int) (T, error), emit func(i int, v T) error) error {
	if n == 0 {
		return nil
	}
	fn = guard(fn)
	emit = guardEmit(emit)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return err
			}
			if err := emit(i, v); err != nil {
				return err
			}
		}
		return nil
	}
	if window <= 0 {
		window = 4 * workers
		if window < 16 {
			window = 16
		}
	}

	type slot[U any] struct {
		v    U
		done bool
	}
	var (
		mu       sync.Mutex
		cond     = sync.NewCond(&mu)
		buf      = make([]slot[T], window)
		next     = 0 // next index to claim
		frontier = 0 // next index to emit
		emitting = false
		failed   = false
		errIndex = n
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(i int, err error) { // callers hold mu
		if i < errIndex {
			errIndex, firstErr = i, err
		}
		failed = true
		cond.Broadcast()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				for !failed && next < n && next-frontier >= window {
					cond.Wait()
				}
				if failed || next >= n {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()

				v, err := fn(i)

				mu.Lock()
				if err != nil {
					fail(i, err)
					mu.Unlock()
					return
				}
				buf[i%window] = slot[T]{v: v, done: true}
				if i != frontier || emitting {
					// Not this worker's turn to drain; whoever completes (or
					// is already draining) the frontier picks this result up.
					cond.Broadcast()
					mu.Unlock()
					continue
				}
				emitting = true
				for !failed && frontier < n && buf[frontier%window].done {
					j := frontier
					val := buf[j%window].v
					buf[j%window] = slot[T]{}
					frontier++
					cond.Broadcast() // free the window slot for waiting claimers
					mu.Unlock()
					emitErr := emit(j, val)
					mu.Lock()
					if emitErr != nil {
						fail(j, emitErr)
						break
					}
				}
				emitting = false
				cond.Broadcast()
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// guardEmit is guard for the two-argument emit callback: a panic inside
// emit(i, v) surfaces as a *PanicError failure at index i, exactly like an
// emit error.
func guardEmit[T any](emit func(i int, v T) error) func(i int, v T) error {
	return func(i int, v T) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
			}
		}()
		return emit(i, v)
	}
}

// reduceMaxBlocks is the fixed upper bound on Reduce's block count. It
// depends only on the input size — never on GOMAXPROCS — so the block
// partition, and therefore the merge tree and its floating-point rounding,
// is identical on every machine.
const reduceMaxBlocks = 64

// Reduce runs fn(acc, i) for every i in [0, n), folding into per-block
// accumulators that are merged in block index order, and returns the merged
// accumulator — the streaming counterpart of Map-then-fold for trial loops
// whose aggregate is an online accumulator (stream.Summary and friends)
// rather than a result slice. Memory is O(blocks), independent of n.
//
// The index range is split into at most reduceMaxBlocks contiguous blocks —
// a pure function of n, never of the worker count — each folded serially in
// index order by one worker, then merged left to right. With the
// order-deterministic Merge operations of internal/stream the reduction is
// therefore byte-identical run to run and machine to machine, and matches
// the serial loop exactly for every integer-exact statistic (counts, sums,
// min/max, integer-sample means); see the stream package doc for the
// floating-point contract of the variance term.
//
// newAcc must return a fresh accumulator; fold folds observation i into acc
// and returns it; merge appends from's observations after into's and
// returns the result. fold errors surface as in Map: the lowest failing
// index wins, and no partial accumulator is returned.
func Reduce[A any](n int, newAcc func() A, fold func(acc A, i int) (A, error), merge func(into, from A) A) (A, error) {
	if n == 0 {
		return newAcc(), nil
	}
	blocks := n
	if blocks > reduceMaxBlocks {
		blocks = reduceMaxBlocks
	}
	// Guard the fold: a panic folding observation i fails its block with a
	// *PanicError at i (the accumulator-threading signature needs a bespoke
	// wrapper rather than guard).
	rawFold := fold
	fold = func(acc A, i int) (out A, err error) {
		defer func() {
			if r := recover(); r != nil {
				var zero A
				out, err = zero, &PanicError{Index: i, Value: r, Stack: debug.Stack()}
			}
		}()
		return rawFold(acc, i)
	}
	accs := make([]A, blocks)
	blockErrs := make([]error, blocks)
	errIndexes := make([]int, blocks)
	runBlock := func(b int) {
		lo, hi := b*n/blocks, (b+1)*n/blocks
		acc := newAcc()
		for i := lo; i < hi; i++ {
			var err error
			acc, err = fold(acc, i)
			if err != nil {
				blockErrs[b], errIndexes[b] = err, i
				return
			}
		}
		accs[b] = acc
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > blocks {
		workers = blocks
	}
	if workers <= 1 {
		for b := 0; b < blocks; b++ {
			runBlock(b)
			if blockErrs[b] != nil {
				break
			}
		}
	} else {
		var (
			next   atomic.Int64
			failed atomic.Bool
			wg     sync.WaitGroup
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !failed.Load() {
					b := int(next.Add(1)) - 1
					if b >= blocks {
						return
					}
					runBlock(b)
					if blockErrs[b] != nil {
						failed.Store(true)
						return
					}
				}
			}()
		}
		wg.Wait()
	}

	var firstErr error
	errIndex := n
	for b := 0; b < blocks; b++ {
		if blockErrs[b] != nil && errIndexes[b] < errIndex {
			errIndex, firstErr = errIndexes[b], blockErrs[b]
		}
	}
	if firstErr != nil {
		return newAcc(), firstErr
	}
	out := accs[0]
	for b := 1; b < blocks; b++ {
		out = merge(out, accs[b])
	}
	return out, nil
}
