// Package parallel provides the deterministic worker pool the experiment
// and lower-bound drivers fan their independent seeded trials across.
//
// Every trial in this repository is a pure function of its index (the index
// picks the seed, and each trial builds its own sim.System — Systems are
// not safe for concurrent use but are never shared). That makes the trial
// loops embarrassingly parallel, with one requirement: results must be
// byte-identical to the serial loop. Map guarantees that by writing each
// result into its index's slot and, on failure, reporting the error of the
// lowest-index failing trial — exactly the error a serial loop would have
// hit first.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Map runs fn(i) for every i in [0, n) across up to GOMAXPROCS workers and
// returns the results ordered by index (never by completion time). If any
// calls fail, the error of the smallest failing index is returned along
// with the partial results. fn must be safe to call concurrently with
// distinct indices.
func Map[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	if n == 0 {
		return results, nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return results, err
			}
			results[i] = v
		}
		return results, nil
	}

	var (
		next     atomic.Int64
		failed   atomic.Bool
		mu       sync.Mutex
		firstErr error
		errIndex = n
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				v, err := fn(i)
				if err != nil {
					// Stop claiming new trials; in-flight ones finish.
					// Claims are monotone, so every index below this one was
					// already claimed and any lower-index failure still gets
					// recorded — the returned error is exactly the one the
					// serial loop would have hit first.
					mu.Lock()
					if i < errIndex {
						errIndex, firstErr = i, err
					}
					mu.Unlock()
					failed.Store(true)
					return
				}
				results[i] = v
			}
		}()
	}
	wg.Wait()
	return results, firstErr
}
