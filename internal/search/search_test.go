package search

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"asyncagree/internal/faultinject"
	"asyncagree/internal/registry"
	"asyncagree/internal/rng"
)

// quickOpts is the small, fast search every test starts from: one size, a
// restricted candidate space, short trials.
func quickOpts() Options {
	return Options{
		Algorithm:          "core",
		Sizes:              []registry.Size{{N: 12, T: 1}},
		Adversaries:        []string{"random", "splitvote", "silence"},
		Schedulers:         []string{"adversary", "seeded"},
		TrialsPerCandidate: 2,
		MaxWindows:         40,
		TopK:               3,
		Refinements:        1,
		Generations:        2,
		Population:         4,
		Seed:               7,
	}
}

// runToBuffer executes a search with a JSONL sink into a buffer, returning
// the report and the exported bytes.
func runToBuffer(t *testing.T, o Options, ro RunOptions) (*Report, []byte, error) {
	t.Helper()
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	ro.Sinks = append(ro.Sinks, NamedSink{Name: "buf", Sink: sink})
	rep, err := Run(o, ro)
	return rep, buf.Bytes(), err
}

func TestSearchSerialParallelIdentical(t *testing.T) {
	o := quickOpts()
	serialRep, serialBytes, err := runToBuffer(t, o, RunOptions{Serial: true})
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	parRep, parBytes, err := runToBuffer(t, o, RunOptions{})
	if err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	if !bytes.Equal(serialBytes, parBytes) {
		t.Fatalf("serial and parallel exports differ:\nserial:\n%s\nparallel:\n%s", serialBytes, parBytes)
	}
	if !reflect.DeepEqual(serialRep, parRep) {
		t.Fatalf("serial and parallel reports differ:\n%+v\n%+v", serialRep, parRep)
	}
	if serialRep.Evals == 0 || len(serialRep.Frontier["12:1"]) == 0 {
		t.Fatalf("search found nothing: %+v", serialRep)
	}
	if !serialRep.Healthy() {
		t.Fatalf("expected healthy run, got faulted=%d sinks=%v", serialRep.Faulted, serialRep.SinkFailures)
	}
}

func TestSearchRerunIdentical(t *testing.T) {
	o := quickOpts()
	_, first, err := runToBuffer(t, o, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, second, err := runToBuffer(t, o, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("two identically-seeded searches produced different exports")
	}
}

// writeCheckpoint writes prefix bytes under a search checkpoint header, the
// way cmd/search persists them, so tests resume through the real loader.
func writeCheckpoint(t *testing.T, sig string, body []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "search.ckpt")
	head := fmt.Sprintf("{\"version\":1,\"grid\":%q}\n", sig)
	if err := os.WriteFile(path, append([]byte(head), body...), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestSearchResumeByteIdentical is the resume stress test: a search
// interrupted at five seeded points — serial and parallel — must, after
// resuming from its checkpoint, produce output byte-identical to the
// uninterrupted run.
func TestSearchResumeByteIdentical(t *testing.T) {
	o := quickOpts()
	cleanRep, clean, err := runToBuffer(t, o, RunOptions{Serial: true})
	if err != nil {
		t.Fatal(err)
	}
	total := cleanRep.Evals
	if total < 8 {
		t.Fatalf("search too small to stress resume: %d evals", total)
	}
	src := rng.New(99)
	points := make([]int, 0, 5)
	for len(points) < 4 {
		points = append(points, 1+src.Intn(total-1))
	}
	points = append(points, total) // resume with nothing left to run
	for _, serial := range []bool{true, false} {
		for _, cut := range points {
			t.Run(fmt.Sprintf("serial=%v/cut=%d", serial, cut), func(t *testing.T) {
				var emitted atomic.Int64
				rep1, part1, err := runToBuffer(t, o, RunOptions{
					Serial:   serial,
					Progress: func(evals, trials int) { emitted.Store(int64(evals)) },
					Stop:     func() bool { return emitted.Load() >= int64(cut) },
				})
				// Even at cut == total the stop fires on the final
				// emission, so every cut ends in a clean interrupt.
				if !errors.Is(err, ErrInterrupted) {
					t.Fatalf("want ErrInterrupted at cut %d, got rep=%v err=%v", cut, rep1, err)
				}
				path := writeCheckpoint(t, o.Signature(), part1)
				resume, salvage, err := LoadCheckpoint(path, o.Signature())
				if err != nil {
					t.Fatalf("load checkpoint: %v", err)
				}
				if !salvage.Empty() {
					t.Fatalf("unexpected salvage on a clean checkpoint: %v", salvage)
				}
				if len(resume) != cut {
					t.Fatalf("checkpoint holds %d records, interrupted at %d", len(resume), cut)
				}
				rep2, part2, err := runToBuffer(t, o, RunOptions{Serial: serial, Resume: resume})
				if err != nil {
					t.Fatalf("resume run: %v", err)
				}
				if got := append(append([]byte(nil), part1...), part2...); !bytes.Equal(got, clean) {
					t.Fatalf("interrupted+resumed bytes differ from clean run at cut %d:\n%s\nvs\n%s", cut, got, clean)
				}
				if !reflect.DeepEqual(rep2, cleanRep) {
					t.Fatalf("resumed report differs from clean at cut %d:\n%+v\n%+v", cut, rep2, cleanRep)
				}
			})
		}
	}
}

func TestSearchResumeMismatchRejected(t *testing.T) {
	o := quickOpts()
	var collected []EvalRecord
	_, _, err := runToBuffer(t, o, RunOptions{Serial: true, Sinks: []Sink{collector{&collected}}})
	if err != nil {
		t.Fatal(err)
	}
	tampered := append([]EvalRecord(nil), collected[:4]...)
	tampered[2].Candidate.Scheduler = "laggard"
	_, err = Run(o, RunOptions{Serial: true, Resume: tampered})
	if err == nil || !strings.Contains(err.Error(), "checkpoint eval 2") {
		t.Fatalf("want schedule-mismatch error naming eval 2, got %v", err)
	}
}

// collector gathers records in memory (a test sink).
type collector struct{ recs *[]EvalRecord }

func (c collector) Consume(r EvalRecord) error { *c.recs = append(*c.recs, r); return nil }
func (c collector) Flush() error               { return nil }

func TestSearchBudgetExhausted(t *testing.T) {
	o := quickOpts()
	o.Budget = 10 // 5 evaluations at 2 trials each
	rep, _, err := runToBuffer(t, o, RunOptions{Serial: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.BudgetExhausted {
		t.Fatal("want BudgetExhausted")
	}
	if rep.TrialsSpent > o.Budget {
		t.Fatalf("spent %d trials over budget %d", rep.TrialsSpent, o.Budget)
	}
	if rep.Evals != 5 {
		t.Fatalf("want exactly 5 affordable evals, got %d", rep.Evals)
	}
}

func TestSearchFaultInjection(t *testing.T) {
	o := quickOpts()
	panics, err := faultinject.ParseTrialSet("0")
	if err != nil {
		t.Fatal(err)
	}
	stalls, err := faultinject.ParseTrialSet("1")
	if err != nil {
		t.Fatal(err)
	}
	plan := &faultinject.Plan{Panic: panics, Stall: stalls, StallWindow: 1}
	var collected []EvalRecord
	rep, _, err := runToBuffer(t, o, RunOptions{Serial: true, Inject: plan,
		Sinks: []Sink{collector{&collected}}})
	if err != nil {
		t.Fatalf("injected faults must degrade, not fail the search: %v", err)
	}
	if rep.Faulted != 2 {
		t.Fatalf("want 2 faulted evals, got %d", rep.Faulted)
	}
	if rep.Healthy() {
		t.Fatal("faulted run reported healthy")
	}
	if collected[0].FaultKind != registry.FaultPanic || !strings.Contains(collected[0].Fault, "injected panic") {
		t.Fatalf("eval 0: want injected panic record, got %+v", collected[0])
	}
	if collected[1].FaultKind != registry.FaultDeadline || !strings.Contains(collected[1].Fault, "injected stall") {
		t.Fatalf("eval 1: want injected stall record, got %+v", collected[1])
	}
	for _, f := range rep.Frontier["12:1"] {
		if f.Faulted() {
			t.Fatalf("faulted record on the frontier: %+v", f)
		}
	}
}

// TestSearchBeatsReplayBaseline pins the E16 property at unit scale: the
// searched frontier is at least as good as the historical replay
// construction (splitvote under the adversary-driven scheduler at default
// knobs), because that exact candidate is in the coarse grid.
func TestSearchBeatsReplayBaseline(t *testing.T) {
	o := quickOpts()
	o.Adversaries = []string{"splitvote"}
	o.Schedulers = []string{"adversary"}
	size := o.Sizes[0]

	// Replay baseline: the same seeds, inputs, and censoring the evaluator
	// uses, with the historical (nil-knob) construction.
	var replaySum float64
	for trial := 1; trial <= o.TrialsPerCandidate; trial++ {
		seed := uint64(trial)
		inputs, err := registry.Inputs("split", size.N, seed)
		if err != nil {
			t.Fatal(err)
		}
		e, err := registry.AcquireTrial("core", "splitvote", "adversary",
			registry.Params{N: size.N, T: size.T, Inputs: inputs, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		res, _, err := e.RunUntil(o.MaxWindows, nil)
		e.Release()
		if err != nil {
			t.Fatal(err)
		}
		fd := res.FirstDecision
		if fd < 0 {
			fd = o.MaxWindows
		}
		replaySum += float64(fd)
	}
	replayMean := replaySum / float64(o.TrialsPerCandidate)

	rep, _, err := runToBuffer(t, o, RunOptions{Serial: true})
	if err != nil {
		t.Fatal(err)
	}
	best, ok := rep.Best(size)
	if !ok {
		t.Fatal("no frontier entry")
	}
	if best.MeanStall < replayMean {
		t.Fatalf("searched best %.2f below replay baseline %.2f", best.MeanStall, replayMean)
	}
}

func TestSearchSignatureCoversSchedule(t *testing.T) {
	a, b := quickOpts(), quickOpts()
	if a.Signature() != b.Signature() {
		t.Fatal("identical options, different signatures")
	}
	b.Seed++
	if a.Signature() == b.Signature() {
		t.Fatal("seed change not reflected in signature")
	}
	c := quickOpts()
	c.Schedulers = []string{"adversary"}
	if a.Signature() == c.Signature() {
		t.Fatal("scheduler restriction not reflected in signature")
	}
}

func TestSearchSkipsInvalidSize(t *testing.T) {
	o := quickOpts()
	o.Sizes = append([]registry.Size{{N: 5, T: 2}}, o.Sizes...) // violates t < n/6
	rep, _, err := runToBuffer(t, o, RunOptions{Serial: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Skipped) != 1 || !strings.Contains(rep.Skipped[0], "5:2") {
		t.Fatalf("want one skipped size 5:2, got %v", rep.Skipped)
	}
	if len(rep.Sizes) != 1 {
		t.Fatalf("want one searched size, got %v", rep.Sizes)
	}
}

func TestSearchReportTable(t *testing.T) {
	o := quickOpts()
	rep, _, err := runToBuffer(t, o, RunOptions{Serial: true})
	if err != nil {
		t.Fatal(err)
	}
	out := rep.Table().String()
	for _, want := range []string{"candidate", "mean-stall", "grid"} {
		if !strings.Contains(out, want) {
			t.Fatalf("frontier table missing %q:\n%s", want, out)
		}
	}
}
