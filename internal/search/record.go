package search

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"asyncagree/internal/registry"
	"asyncagree/internal/stats"
)

// EvalRecord is the unit of the search's streaming result pipeline: one
// evaluated candidate's coordinates and score. It is what search sinks
// consume and what search checkpoint files round-trip — a resumed search
// replays the recorded prefix through the driver's state machine (frontier,
// budget, dedup) without re-executing a single trial.
type EvalRecord struct {
	// Index is the evaluation's position in the search's global scheduling
	// order; emission and checkpoints are strictly Index-ordered.
	Index int `json:"index"`
	// Stage names the scheduling stage ("grid", "refine1".., "gen1"..).
	Stage string `json:"stage"`
	// N is the evaluated size's processor count, T its fault budget.
	N int `json:"n"`
	T int `json:"t"`
	Candidate
	// Trials is the number of seeded trials completed (all of
	// Options.TrialsPerCandidate for a clean evaluation; fewer when a fault
	// cut the evaluation short).
	Trials int `json:"trials"`
	// Survived counts trials with no decision within the window budget —
	// trials whose stall measurement is censored at MaxWindows.
	Survived int `json:"survived"`
	// MeanStall is the mean windows-to-first-decision across the seeds,
	// censored at MaxWindows: the candidate's score (higher = better
	// stalling adversary).
	MeanStall float64 `json:"mean_stall"`
	// MinStall and MaxStall bound the per-seed censored measurements.
	MinStall int `json:"min_stall"`
	MaxStall int `json:"max_stall"`
	// FaultKind classifies a faulted evaluation (the registry.Fault*
	// constants); empty for a clean one. Faulted evaluations never enter
	// the frontier.
	FaultKind string `json:"fault_kind,omitempty"`
	// Fault is the human-readable fault description.
	Fault string `json:"fault,omitempty"`
}

// Faulted reports whether the evaluation ended in a fault record.
func (r EvalRecord) Faulted() bool { return r.FaultKind != "" }

// Key renders the evaluation's stable identity — stage, size, and candidate
// — used to verify that a resumed checkpoint prefix matches the schedule
// the driver regenerates.
func (r EvalRecord) Key() string {
	return fmt.Sprintf("%s|%d:%d|%s", r.Stage, r.N, r.T, r.Candidate.Key())
}

// Sink consumes completed evaluations in strictly increasing Index order —
// the search counterpart of registry.ResultSink. Run calls Consume on the
// serial emission path (never concurrently) and Flush exactly once at the
// end, including interrupted and failed runs.
type Sink interface {
	Consume(EvalRecord) error
	Flush() error
}

// NamedSink attaches a human-readable name (typically the output path) to a
// sink for degradation reports.
type NamedSink struct {
	// Name identifies the sink in failure reports, e.g. its file path.
	Name string
	Sink
}

// sinkLabel names a sink for degradation reports.
func sinkLabel(i int, s Sink) string {
	switch ns := s.(type) {
	case NamedSink:
		return ns.Name
	case *NamedSink:
		return ns.Name
	}
	return fmt.Sprintf("sink %d", i)
}

// JSONLSink streams evaluations as one JSON object per line — the search
// export and checkpoint body format.
type JSONLSink struct {
	w *bufio.Writer
}

// NewJSONLSink wraps w in a buffered JSONL evaluation writer.
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{w: bufio.NewWriter(w)} }

// Consume implements Sink.
func (s *JSONLSink) Consume(rec EvalRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = s.w.Write(b)
	return err
}

// Flush implements Sink.
func (s *JSONLSink) Flush() error { return s.w.Flush() }

// LoadCheckpoint reads the verified evaluation prefix of a search
// checkpoint recorded against sig (Options.Signature): the same header
// check and corruption-salvage semantics as the sweep's
// registry.LoadCheckpointSalvage, with EvalRecord bodies. A missing file
// yields (nil, nil, nil) — a fresh search.
func LoadCheckpoint(path, sig string) ([]EvalRecord, *registry.SalvageReport, error) {
	return registry.LoadCheckpointRecords(path, sig, func(r EvalRecord) int { return r.Index })
}

// Report is the aggregated outcome of one search run.
type Report struct {
	// Signature is the resolved search signature (Options.Signature).
	Signature string
	// Sizes lists the sizes searched, in schedule order.
	Sizes []registry.Size
	// Skipped records sizes the algorithm's validation rejected.
	Skipped []string
	// Evals is the number of candidate evaluations emitted; TrialsSpent the
	// total seeded trials they consumed.
	Evals, TrialsSpent int
	// Faulted counts evaluations that ended in a fault record.
	Faulted int
	// BudgetExhausted reports that the trial budget cut the schedule short.
	BudgetExhausted bool
	// Frontier maps each size (Size.String()) to its best evaluations,
	// best-first, at most Options.TopK entries.
	Frontier map[string][]EvalRecord
	// SinkFailures records sinks dropped mid-run after their retry budget
	// was exhausted, mirroring registry.Sweep.SinkFailures.
	SinkFailures []string
}

// Healthy reports whether the search ran with no faulted evaluations and
// no dropped sinks.
func (r *Report) Healthy() bool {
	return r.Faulted == 0 && len(r.SinkFailures) == 0
}

// Best returns the top frontier entry for size.
func (r *Report) Best(size registry.Size) (EvalRecord, bool) {
	f := r.Frontier[size.String()]
	if len(f) == 0 {
		return EvalRecord{}, false
	}
	return f[0], true
}

// Table renders the frontier as an aligned text table: one row per retained
// frontier entry, sizes in schedule order, best first within a size.
func (r *Report) Table() *stats.Table {
	table := stats.NewTable("n", "t", "rank", "candidate", "stage",
		"trials", "survived", "mean-stall", "min", "max")
	for _, size := range r.Sizes {
		for rank, rec := range r.Frontier[size.String()] {
			table.AddRow(rec.N, rec.T, rank+1, rec.Candidate.Key(), rec.Stage,
				rec.Trials, rec.Survived, rec.MeanStall, rec.MinStall, rec.MaxStall)
		}
	}
	return table
}
