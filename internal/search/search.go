// Package search is the adversary-optimization driver: it turns the
// repository's replay apparatus around and *searches* the (adversary knobs ×
// delivery scheduler × crash/reset schedule) space for the configurations
// that stall an algorithm longest, per system size.
//
// The driver is staged. A coarse grid probes every compatible (adversary,
// scheduler) pairing at each knob's {min, default, max}; refinement rounds
// re-probe the frontier's neighborhoods at halving steps; a seeded
// evolutionary stage then mutates frontier candidates (knob jitter,
// scheduler swaps) mixed with uniform immigrants. Every candidate
// evaluation is a batch of seeded registry trials through the pooled trial
// engine, scored by the order-deterministic accumulators of internal/stream
// (mean windows-to-first-decision, censored at the window budget), and the
// per-size frontier is a stream.TopK keyed by candidate identity.
//
// Determinism contract: the full evaluation schedule — batch membership,
// global indices, mutation rng consumption — is a pure function of Options
// and the index-ordered evaluation records emitted before each batch is
// generated. Batches evaluate through parallel.Stream (or a serial loop,
// byte-identically), and every emitted record flows through the configured
// sinks in index order. Checkpoints record the emitted prefix in the sweep's
// grid-signature JSONL format (header + one EvalRecord per line) against
// Options.Signature; an interrupted search resumed from its checkpoint
// regenerates the schedule, replays the recorded prefix through the same
// state machine — frontier updates, budget accounting, dedup — without
// re-running a trial, and continues with output byte-identical to an
// uninterrupted run. See DESIGN.md §4b.
package search

import (
	"errors"
	"fmt"
	"runtime/debug"

	"asyncagree/internal/faultinject"
	"asyncagree/internal/parallel"
	"asyncagree/internal/registry"
	"asyncagree/internal/rng"
	"asyncagree/internal/stream"
)

// ErrInterrupted is returned by Run when RunOptions.Stop requested a clean
// stop: everything emitted is a consistent index-ordered prefix (already
// flushed through the sinks), and a resumed search completes the rest with
// output identical to an uninterrupted one.
var ErrInterrupted = errors.New("search: interrupted")

// Options describes one search: the scenario axes, the evaluation cost per
// candidate, and the stage schedule. The zero value resolves to the default
// core-algorithm search (see resolve).
type Options struct {
	// Algorithm is the registry key of the algorithm under attack
	// (default "core").
	Algorithm string
	// Sizes lists the (n, t) shapes searched, each with its own frontier
	// (default 12:1 and 16:2). Sizes the algorithm rejects are skipped and
	// reported.
	Sizes []registry.Size
	// Input is the input pattern evaluations run on (default "split", the
	// paper's adversarial assignment).
	Input string
	// Adversaries and Schedulers restrict the candidate space to the named
	// registry entries; empty means every registered one (filtered by the
	// sweep matrix's compatibility predicates either way).
	Adversaries []string
	Schedulers  []string
	// TrialsPerCandidate is the number of seeded trials (seeds 1..k) per
	// candidate evaluation (default 3).
	TrialsPerCandidate int
	// MaxWindows is the per-trial window budget; stalls are censored at it
	// (default 2000).
	MaxWindows int
	// Budget caps the total seeded trials across the whole search; batches
	// are truncated deterministically when it runs low. 0 = unlimited (the
	// stage schedule alone bounds the work).
	Budget int
	// Seed seeds the evolutionary stage's mutation stream (default 1).
	Seed uint64
	// TopK is the per-size frontier width (default 5).
	TopK int
	// Refinements is the number of grid-refinement rounds (default 2).
	Refinements int
	// Generations and Population shape the evolutionary stage: Generations
	// batches of Population candidates each (defaults 3 and 8).
	Generations int
	Population  int
	// ShardWorkers sets per-trial intra-trial parallelism (see
	// registry.Params.ShardWorkers); byte-identical output at any setting.
	ShardWorkers int
}

// resolve fills defaults, returning the fully explicit options every
// schedule computation works from.
func (o Options) resolve() Options {
	if o.Algorithm == "" {
		o.Algorithm = "core"
	}
	if len(o.Sizes) == 0 {
		o.Sizes = []registry.Size{{N: 12, T: 1}, {N: 16, T: 2}}
	}
	if o.Input == "" {
		o.Input = "split"
	}
	if len(o.Adversaries) == 0 {
		o.Adversaries = registry.AdversaryNames()
	}
	if len(o.Schedulers) == 0 {
		o.Schedulers = registry.SchedulerNames()
	}
	if o.TrialsPerCandidate <= 0 {
		o.TrialsPerCandidate = 3
	}
	if o.MaxWindows <= 0 {
		o.MaxWindows = 2000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.TopK <= 0 {
		o.TopK = 5
	}
	if o.Refinements < 0 {
		o.Refinements = 0
	} else if o.Refinements == 0 {
		o.Refinements = 2
	}
	if o.Generations < 0 {
		o.Generations = 0
	} else if o.Generations == 0 {
		o.Generations = 3
	}
	if o.Population <= 0 {
		o.Population = 8
	}
	return o
}

// Signature renders the resolved options that determine the evaluation
// schedule as a canonical one-line string. Search checkpoints record it so
// a resume against different options (which would silently misalign
// evaluation indices) is rejected instead of merged.
func (o Options) Signature() string {
	o = o.resolve()
	var b []byte
	b = fmt.Appendf(b, "search alg=%s sizes=", o.Algorithm)
	for i, s := range o.Sizes {
		if i > 0 {
			b = append(b, ',')
		}
		b = fmt.Appendf(b, "%s", s)
	}
	b = fmt.Appendf(b, " input=%s advs=", o.Input)
	for i, a := range o.Adversaries {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, a...)
	}
	b = append(b, " scheds="...)
	for i, s := range o.Schedulers {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, s...)
	}
	b = fmt.Appendf(b, " trials=%d max-windows=%d budget=%d seed=%d topk=%d refine=%d gens=%d pop=%d",
		o.TrialsPerCandidate, o.MaxWindows, o.Budget, o.Seed, o.TopK, o.Refinements, o.Generations, o.Population)
	return string(b)
}

// RunOptions configures one execution of the search: resumption, sinks,
// interruption, progress, and fault injection. The zero value runs the
// search to completion with nothing attached.
type RunOptions struct {
	// Sinks receive every live evaluation in index order, then a final
	// Flush (also on error/interrupt). Replayed Resume records do not
	// re-enter the sinks — their bytes are already in the sink outputs of
	// the interrupted run.
	Sinks []Sink
	// Resume holds the evaluation prefix of an earlier interrupted run
	// (loaded from its checkpoint with LoadCheckpoint). Records must match
	// the regenerated schedule exactly — Run re-verifies stage, size, and
	// candidate per index and fails on mismatch — and replay through the
	// frontier/budget state machine instead of re-executing trials.
	Resume []EvalRecord
	// Stop is polled before each evaluation starts and again after each is
	// emitted; returning true stops the search cleanly with ErrInterrupted
	// once in-flight evaluations drain.
	Stop func() bool
	// Progress, if set, observes the emission frontier after every
	// evaluation: evaluations emitted and trials spent so far. It runs on
	// the serial emission path — keep it cheap.
	Progress func(evals, trials int)
	// Serial evaluates batches on a plain serial loop instead of the worker
	// pool (byte-identical output, used by determinism tests and -serial).
	Serial bool
	// Inject is the deterministic fault-injection plan (nil injects
	// nothing): panicking or stalling evaluations by index, exercising the
	// fault-record path end to end. Run materializes seeded selections
	// against the schedule's maximum evaluation count.
	Inject *faultinject.Plan
}

// sizeState is the per-size search state: the frontier and the records
// backing it.
type sizeState struct {
	size     registry.Size
	prs      []pairing
	frontier *stream.TopK
	byKey    map[string]EvalRecord
	seen     map[string]bool
}

// driver carries one Run's mutable state.
type driver struct {
	o      Options
	ro     RunOptions
	report *Report

	next        int // next global evaluation index
	spent       int // trials consumed by emitted evaluations
	exhausted   bool
	sinkDropped []bool
}

// Run executes the search. The returned Report is non-nil exactly when err
// is nil; on ErrInterrupted everything emitted has been flushed through the
// sinks and the search is resumable from its checkpoint.
func Run(o Options, ro RunOptions) (*Report, error) {
	o = o.resolve()
	alg, err := registry.LookupAlgorithm(o.Algorithm)
	if err != nil {
		return nil, err
	}
	if _, err := registry.Inputs(o.Input, 1, 1); err != nil {
		return nil, err
	}
	d := &driver{
		o: o, ro: ro,
		report: &Report{
			Signature: o.Signature(),
			Frontier:  map[string][]EvalRecord{},
		},
		sinkDropped: make([]bool, len(ro.Sinks)),
	}

	// Build the per-size states up front; sizes the algorithm rejects are
	// skipped with a report entry (mirroring the sweep matrix).
	var states []*sizeState
	for _, size := range o.Sizes {
		if verr := alg.Validate(registry.Params{N: size.N, T: size.T}); verr != nil {
			d.report.Skipped = append(d.report.Skipped, fmt.Sprintf("%s %s: %v", o.Algorithm, size, verr))
			continue
		}
		prs, err := pairings(alg, size, o.Adversaries, o.Schedulers)
		if err != nil {
			return nil, err
		}
		if len(prs) == 0 {
			d.report.Skipped = append(d.report.Skipped, fmt.Sprintf("%s %s: no compatible (adversary, scheduler) pairing", o.Algorithm, size))
			continue
		}
		states = append(states, &sizeState{
			size: size, prs: prs,
			frontier: stream.NewTopK(o.TopK),
			byKey:    map[string]EvalRecord{},
			seen:     map[string]bool{},
		})
		d.report.Sizes = append(d.report.Sizes, size)
	}

	// Materialize seeded fault selections against the schedule's maximum
	// evaluation count — an upper bound computed from the options alone, so
	// the selection is deterministic and resume-stable.
	inject := ro.Inject
	inject.Materialize(d.evalCap(states))

	// The mutation stream is consumed during batch *generation*, which
	// re-runs identically on resume, so one shared source keeps the whole
	// schedule deterministic.
	mrng := rng.New(o.Seed)

	runErr := func() error {
		for _, st := range states {
			if err := d.runBatch(st, "grid", dedup(st, gridCandidates(st.prs))); err != nil {
				return err
			}
			for r := 1; r <= o.Refinements; r++ {
				var cands []Candidate
				for _, item := range st.frontier.Items() {
					rec := st.byKey[item.ID]
					adv := findAdversary(st.prs, rec.Candidate.Adversary)
					if adv == nil {
						continue
					}
					cands = append(cands, neighbors(adv, rec.Candidate, r)...)
				}
				if err := d.runBatch(st, fmt.Sprintf("refine%d", r), dedup(st, cands)); err != nil {
					return err
				}
			}
			for g := 1; g <= o.Generations; g++ {
				cands := d.generation(st, mrng)
				if err := d.runBatch(st, fmt.Sprintf("gen%d", g), cands); err != nil {
					return err
				}
			}
		}
		return nil
	}()

	// Flush even on error/interrupt: everything emitted is a consistent
	// prefix and must reach disk for resume.
	for si, sink := range ro.Sinks {
		if ferr := sink.Flush(); ferr != nil && !d.sinkDropped[si] {
			d.sinkDropped[si] = true
			d.report.SinkFailures = append(d.report.SinkFailures,
				fmt.Sprintf("%s: final flush failed: %v", sinkLabel(si, sink), ferr))
		}
	}
	if runErr != nil {
		return nil, runErr
	}
	for _, st := range states {
		var frontier []EvalRecord
		for _, item := range st.frontier.Items() {
			frontier = append(frontier, st.byKey[item.ID])
		}
		d.report.Frontier[st.size.String()] = frontier
	}
	d.report.BudgetExhausted = d.exhausted
	return d.report, nil
}

// evalCap bounds the number of evaluations the schedule could possibly
// emit: the grid stages plus every refinement neighbor and every
// evolutionary offspring, ignoring dedup and budget truncation (both only
// shrink the schedule). Fault-injection selections materialize against it.
func (d *driver) evalCap(states []*sizeState) int {
	cap := 0
	for _, st := range states {
		grid := len(gridCandidates(st.prs))
		maxKnobs := 0
		for _, pr := range st.prs {
			if k := len(pr.adv.Knobs); k > maxKnobs {
				maxKnobs = k
			}
		}
		cap += grid
		cap += d.o.Refinements * d.o.TopK * 2 * maxKnobs
		cap += d.o.Generations * d.o.Population
	}
	return cap
}

// dedup filters candidates already scheduled for this size, marking the
// survivors as seen. Scheduling-time dedup keeps the schedule a pure
// function of pre-batch state.
func dedup(st *sizeState, cands []Candidate) []Candidate {
	var out []Candidate
	for _, c := range cands {
		key := c.Key()
		if st.seen[key] {
			continue
		}
		st.seen[key] = true
		out = append(out, c)
	}
	return out
}

// generation assembles one evolutionary batch: mutated frontier candidates
// (two draws out of three) mixed with uniform immigrants, deduplicated
// against everything scheduled, bounded by Population. The rng consumption
// is part of the deterministic schedule.
func (d *driver) generation(st *sizeState, src *rng.Source) []Candidate {
	var out []Candidate
	frontier := st.frontier.Items()
	for attempts := 0; len(out) < d.o.Population && attempts < 20*d.o.Population; attempts++ {
		var c Candidate
		ok := false
		if len(frontier) > 0 && src.Intn(3) < 2 {
			rec := st.byKey[frontier[src.Intn(len(frontier))].ID]
			c, ok = mutate(src, st.prs, rec.Candidate)
		} else {
			c, ok = immigrant(src, st.prs), true
		}
		if !ok || st.seen[c.Key()] {
			continue
		}
		st.seen[c.Key()] = true
		out = append(out, c)
	}
	return out
}

// runBatch evaluates one stage's candidates: budget truncation, resume
// replay with schedule verification, parallel (or serial) evaluation with
// index-ordered emission, frontier and budget updates on the serial
// emission path.
func (d *driver) runBatch(st *sizeState, stage string, cands []Candidate) error {
	if d.exhausted || len(cands) == 0 {
		return nil
	}
	if d.o.Budget > 0 {
		affordable := (d.o.Budget - d.spent) / d.o.TrialsPerCandidate
		if affordable < len(cands) {
			d.exhausted = true
			if affordable <= 0 {
				return nil
			}
			cands = cands[:affordable]
		}
	}
	for _, c := range cands {
		if err := validateCandidate(c); err != nil {
			return err
		}
	}
	base := d.next
	d.next += len(cands)
	fn := func(j int) (EvalRecord, error) {
		if d.ro.Stop != nil && d.ro.Stop() {
			return EvalRecord{}, ErrInterrupted
		}
		i := base + j
		if i < len(d.ro.Resume) {
			rec := d.ro.Resume[i]
			want := EvalRecord{Index: i, Stage: stage, N: st.size.N, T: st.size.T, Candidate: cands[j]}
			if rec.Key() != want.Key() {
				return EvalRecord{}, fmt.Errorf("search: checkpoint eval %d is %q, schedule expects %q (were the search options changed?)",
					i, rec.Key(), want.Key())
			}
			return rec, nil
		}
		return d.evaluate(i, stage, st.size, cands[j]), nil
	}
	emit := func(j int, rec EvalRecord) error {
		d.emit(st, base+j, rec)
		if d.ro.Stop != nil && d.ro.Stop() {
			return ErrInterrupted
		}
		return nil
	}
	if d.ro.Serial {
		for j := range cands {
			rec, err := fn(j)
			if err != nil {
				return err
			}
			if err := emit(j, rec); err != nil {
				return err
			}
		}
		return nil
	}
	return parallel.Stream(len(cands), 0, fn, emit)
}

// emit folds one evaluation into the run state on the serial emission path:
// report counters, the frontier, the sinks, and the progress callback.
func (d *driver) emit(st *sizeState, i int, rec EvalRecord) {
	d.report.Evals++
	d.spent += rec.Trials
	d.report.TrialsSpent += rec.Trials
	if rec.Faulted() {
		d.report.Faulted++
	} else {
		key := rec.Candidate.Key()
		st.frontier.Add(rec.MeanStall, key)
		st.byKey[key] = rec
	}
	if i >= len(d.ro.Resume) {
		for si, sink := range d.ro.Sinks {
			if d.sinkDropped[si] {
				continue
			}
			if serr := sink.Consume(rec); serr != nil {
				// Degrade, don't abort: the search and its frontier are
				// unaffected by a lost export; the drop is reported and the
				// caller turns it into a non-zero exit.
				d.sinkDropped[si] = true
				d.report.SinkFailures = append(d.report.SinkFailures,
					fmt.Sprintf("%s: dropped at eval %d: %v", sinkLabel(si, sink), i, serr))
			}
		}
	}
	if d.ro.Progress != nil {
		d.ro.Progress(d.report.Evals, d.report.TrialsSpent)
	}
}

// evaluate scores one candidate: TrialsPerCandidate seeded trials (seeds
// 1..k — the same ladder the lowerbound replay uses) through the pooled
// trial engine, reduced into the stall statistics. A panic anywhere below
// becomes a fault record (the poisoned engine was abandoned by the unwind);
// injected faults exercise exactly that path.
func (d *driver) evaluate(i int, stage string, size registry.Size, c Candidate) (rec EvalRecord) {
	rec = EvalRecord{Index: i, Stage: stage, N: size.N, T: size.T, Candidate: c}
	defer func() {
		if r := recover(); r != nil {
			rec.FaultKind = registry.FaultPanic
			rec.Fault = fmt.Sprintf("panic: %v\n%s", r, debug.Stack())
		}
	}()
	var (
		sum                  stream.Summary
		injectPanic          = d.ro.Inject.ShouldPanic(i)
		stallAt, injectStall = d.ro.Inject.ShouldStall(i)
	)
	for trial := 1; trial <= d.o.TrialsPerCandidate; trial++ {
		seed := uint64(trial)
		inputs, err := registry.Inputs(d.o.Input, size.N, seed)
		if err != nil {
			rec.FaultKind, rec.Fault = registry.FaultError, err.Error()
			return rec
		}
		p := registry.Params{N: size.N, T: size.T, Inputs: inputs, Seed: seed,
			AdvKnobs: knobsOrNil(c.Knobs), ShardWorkers: d.o.ShardWorkers}
		var expired func(windows int) bool
		if injectPanic && trial == 1 {
			key := rec.Key()
			expired = func(int) bool {
				panic(fmt.Sprintf("faultinject: injected panic (eval %d, %s)", i, key))
			}
		} else if injectStall {
			expired = func(windows int) bool { return windows >= stallAt }
		}
		e, err := registry.AcquireTrial(d.o.Algorithm, c.Adversary, c.Scheduler, p)
		if err != nil {
			rec.FaultKind = registry.FaultError
			rec.Fault = fmt.Sprintf("%v (eval %d, %s)", err, i, rec.Key())
			return rec
		}
		res, stalled, err := e.RunUntil(d.o.MaxWindows, expired)
		e.Release()
		if err != nil {
			rec.FaultKind = registry.FaultError
			rec.Fault = fmt.Sprintf("%v (eval %d, %s)", err, i, rec.Key())
			return rec
		}
		if stalled {
			rec.FaultKind = registry.FaultDeadline
			rec.Fault = fmt.Sprintf("faultinject: injected stall at window %d after %d windows (eval %d, %s)",
				stallAt, res.Windows, i, rec.Key())
			return rec
		}
		fd := res.FirstDecision
		if fd < 0 {
			fd = d.o.MaxWindows // censored
			rec.Survived++
		}
		sum.AddInt(fd)
		rec.Trials = trial
	}
	rec.MeanStall = sum.Mean()
	rec.MinStall = int(sum.Min())
	rec.MaxStall = int(sum.Max())
	return rec
}
