package search

import (
	"fmt"
	"strconv"
	"strings"

	"asyncagree/internal/registry"
	"asyncagree/internal/rng"
)

// Candidate is one point of the adversary search space: an adversary, the
// delivery scheduler spliced over it, and a value for each of the
// adversary's declared knobs (nil when it declares none). Evaluating a
// candidate runs registry trials with Params.AdvKnobs = Knobs.
type Candidate struct {
	// Adversary is the registry key of the candidate's adversary.
	Adversary string `json:"adversary"`
	// Scheduler is the registry key of the candidate's delivery scheduler.
	Scheduler string `json:"scheduler"`
	// Knobs holds one value per knob the adversary declares, positionally
	// (registry.Adversary.Knobs order); empty for knobless adversaries.
	Knobs []int `json:"knobs,omitempty"`
}

// Key renders the candidate's stable identity, e.g.
// "splitvote/adversary[-2]". It doubles as the deterministic tie-breaker of
// the frontier ranking.
func (c Candidate) Key() string {
	var b strings.Builder
	b.WriteString(c.Adversary)
	b.WriteByte('/')
	b.WriteString(c.Scheduler)
	if len(c.Knobs) > 0 {
		b.WriteByte('[')
		for i, v := range c.Knobs {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(v))
		}
		b.WriteByte(']')
	}
	return b.String()
}

// pairing is one compatible (adversary, scheduler) axis point of the
// candidate space, with the adversary's knob specs along for enumeration.
type pairing struct {
	adv   *registry.Adversary
	sched *registry.Scheduler
}

// pairings enumerates the (adversary, scheduler) pairings the sweep matrix
// would expand for the algorithm at size, restricted to the requested name
// lists, in deterministic (adversary-major) order.
func pairings(alg *registry.Algorithm, size registry.Size, advNames, schedNames []string) ([]pairing, error) {
	p := registry.Params{N: size.N, T: size.T}
	var out []pairing
	for _, advName := range advNames {
		adv, err := registry.LookupAdversary(advName)
		if err != nil {
			return nil, err
		}
		if !adv.Compatible(alg, p) {
			continue
		}
		for _, schedName := range schedNames {
			sch, err := registry.LookupScheduler(schedName)
			if err != nil {
				return nil, err
			}
			if !sch.WindowRunnable(alg, adv, p) {
				continue
			}
			out = append(out, pairing{adv: adv, sched: sch})
		}
	}
	return out, nil
}

// gridValues returns the coarse-stage probe values of one knob: min,
// default, and max, ascending and deduplicated.
func gridValues(k registry.Knob) []int {
	var out []int
	for _, v := range []int{k.Min, k.Default, k.Max} {
		dup := false
		for _, o := range out {
			if o == v {
				dup = true
			}
		}
		if !dup {
			out = append(out, v)
		}
	}
	sortInts(out)
	return out
}

// sortInts is a tiny insertion sort (knob probe lists have <= 3 entries).
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// gridCandidates expands the coarse stage: for every pairing, the cross
// product of each knob's {min, default, max} probe values, in deterministic
// order. Knobless pairings contribute their single registered construction.
func gridCandidates(prs []pairing) []Candidate {
	var out []Candidate
	for _, pr := range prs {
		knobs := pr.adv.Knobs
		if len(knobs) == 0 {
			out = append(out, Candidate{Adversary: pr.adv.Name, Scheduler: pr.sched.Name})
			continue
		}
		values := make([][]int, len(knobs))
		for i, k := range knobs {
			values[i] = gridValues(k)
		}
		cur := make([]int, len(knobs))
		var rec func(i int)
		rec = func(i int) {
			if i == len(knobs) {
				out = append(out, Candidate{Adversary: pr.adv.Name, Scheduler: pr.sched.Name,
					Knobs: append([]int(nil), cur...)})
				return
			}
			for _, v := range values[i] {
				cur[i] = v
				rec(i + 1)
			}
		}
		rec(0)
	}
	return out
}

// refineStep is the knob step size of refinement round r (1-based): half
// the coarse grid spacing, halving again each round, never below 1.
func refineStep(k registry.Knob, r int) int {
	step := (k.Max - k.Min) >> uint(r+1)
	if step < 1 {
		step = 1
	}
	return step
}

// neighbors expands one frontier candidate for refinement round r: each
// knob stepped up and down by the round's step (clamped to its range), one
// knob at a time.
func neighbors(adv *registry.Adversary, c Candidate, r int) []Candidate {
	var out []Candidate
	for i, k := range adv.Knobs {
		step := refineStep(k, r)
		for _, dir := range []int{-1, 1} {
			v := c.Knobs[i] + dir*step
			if v < k.Min {
				v = k.Min
			}
			if v > k.Max {
				v = k.Max
			}
			if v == c.Knobs[i] {
				continue
			}
			knobs := append([]int(nil), c.Knobs...)
			knobs[i] = v
			out = append(out, Candidate{Adversary: c.Adversary, Scheduler: c.Scheduler, Knobs: knobs})
		}
	}
	return out
}

// mutate derives one evolutionary offspring from a frontier candidate: a
// seeded random knob jitter, or a swap to another compatible scheduler for
// the same adversary. Returns false when the candidate has no mutable axis.
func mutate(src *rng.Source, prs []pairing, c Candidate) (Candidate, bool) {
	adv := findAdversary(prs, c.Adversary)
	if adv == nil {
		return Candidate{}, false
	}
	scheds := schedulersFor(prs, c.Adversary)
	// Jitter a knob twice as often as swapping the scheduler; knobless
	// candidates can only swap, single-scheduler knobless ones not even that.
	swapOnly := len(adv.Knobs) == 0
	if swapOnly && len(scheds) < 2 {
		return Candidate{}, false
	}
	if !swapOnly && (len(scheds) < 2 || src.Intn(3) < 2) {
		i := src.Intn(len(adv.Knobs))
		k := adv.Knobs[i]
		jit := (k.Max - k.Min) / 8
		if jit < 1 {
			jit = 1
		}
		delta := src.Intn(2*jit+1) - jit
		if delta == 0 {
			delta = 1 - 2*src.Intn(2) // never a no-op jitter
		}
		v := c.Knobs[i] + delta
		if v < k.Min {
			v = k.Min
		}
		if v > k.Max {
			v = k.Max
		}
		knobs := append([]int(nil), c.Knobs...)
		knobs[i] = v
		return Candidate{Adversary: c.Adversary, Scheduler: c.Scheduler, Knobs: knobs}, true
	}
	// Scheduler swap: pick uniformly among the other compatible disciplines.
	pick := src.Intn(len(scheds) - 1)
	for _, name := range scheds {
		if name == c.Scheduler {
			continue
		}
		if pick == 0 {
			return Candidate{Adversary: c.Adversary, Scheduler: name,
				Knobs: append([]int(nil), c.Knobs...)}, true
		}
		pick--
	}
	return Candidate{}, false
}

// immigrant draws a uniform random candidate from the whole space — the
// exploration component of the evolutionary stage.
func immigrant(src *rng.Source, prs []pairing) Candidate {
	pr := prs[src.Intn(len(prs))]
	c := Candidate{Adversary: pr.adv.Name, Scheduler: pr.sched.Name}
	if len(pr.adv.Knobs) > 0 {
		c.Knobs = make([]int, len(pr.adv.Knobs))
		for i, k := range pr.adv.Knobs {
			c.Knobs[i] = k.Min + src.Intn(k.Max-k.Min+1)
		}
	}
	return c
}

// findAdversary resolves a candidate's adversary descriptor from the
// pairing list (nil when the adversary appears in no pairing).
func findAdversary(prs []pairing, name string) *registry.Adversary {
	for _, pr := range prs {
		if pr.adv.Name == name {
			return pr.adv
		}
	}
	return nil
}

// schedulersFor lists the schedulers paired with the adversary, in pairing
// order.
func schedulersFor(prs []pairing, advName string) []string {
	var out []string
	for _, pr := range prs {
		if pr.adv.Name == advName {
			out = append(out, pr.sched.Name)
		}
	}
	return out
}

// validateCandidate checks a candidate against the registry before it is
// scheduled, so a malformed knob vector fails the search with a clear error
// instead of a per-trial fault.
func validateCandidate(c Candidate) error {
	adv, err := registry.LookupAdversary(c.Adversary)
	if err != nil {
		return err
	}
	if _, err := registry.LookupScheduler(c.Scheduler); err != nil {
		return err
	}
	if err := adv.ValidateKnobs(registry.Params{AdvKnobs: knobsOrNil(c.Knobs)}); err != nil {
		return fmt.Errorf("search: candidate %s: %w", c.Key(), err)
	}
	return nil
}

// knobsOrNil normalizes an empty knob slice to nil (the registry's "all
// defaults" encoding).
func knobsOrNil(knobs []int) []int {
	if len(knobs) == 0 {
		return nil
	}
	return knobs
}
