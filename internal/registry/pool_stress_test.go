package registry

import (
	"fmt"
	"sync"
	"testing"
)

// TestEnginePoolConcurrentStress hammers one scenario's engine pool from
// many goroutines — the agreement service's steady state — with a seeded
// subset of trials panicking mid-run. It asserts the two contracts the
// service layer stands on:
//
//  1. Isolation: a poisoned engine is never served again. Every panicking
//     trial poisons its engine and (deliberately, to exercise the audit)
//     still calls Release; the pool must refuse it, so no later AcquireTrial
//     may return a poisoned pointer.
//  2. Determinism: the clean trials' results are byte-identical to a serial
//     reference run of the same seeds, pooled or not, panics or not.
//
// Run with -race: the interesting failures here are ordering windows, not
// logic.
func TestEnginePoolConcurrentStress(t *testing.T) {
	const (
		workers       = 8
		trialsPerGor  = 30
		n, tFaults    = 12, 1
		maxWindows    = 3000
		panicEvery    = 7 // seeds divisible by 7 panic mid-trial
		alg, adv, sch = "core", "full", "adversary"
	)

	inputsFor := func(seed uint64) Params {
		in := SplitInputs(n)
		return Params{N: n, T: tFaults, Inputs: in, Seed: seed}
	}

	// Serial reference: one engine at a time, no panics.
	reference := make(map[uint64]string)
	for g := 0; g < workers; g++ {
		for i := 0; i < trialsPerGor; i++ {
			seed := uint64(g*trialsPerGor + i)
			if seed%panicEvery == 0 {
				continue
			}
			res, err := RunPooledTrial(alg, adv, sch, inputsFor(seed), maxWindows)
			if err != nil {
				t.Fatalf("reference seed %d: %v", seed, err)
			}
			reference[seed] = fmt.Sprintf("%+v", res)
		}
	}

	// Concurrent run: every goroutine acquires/runs/releases on the same
	// scenario key; panicking trials poison their engine and release it
	// anyway (the audit path), clean trials record their result.
	var (
		abandoned sync.Map // poisoned *TrialEngine -> true
		mu        sync.Mutex
		got       = make(map[uint64]string)
		reserved  []error
	)
	before := EngineStatsSnapshot()
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < trialsPerGor; i++ {
				seed := uint64(g*trialsPerGor + i)
				e, err := AcquireTrial(alg, adv, sch, inputsFor(seed))
				if err != nil {
					mu.Lock()
					reserved = append(reserved, fmt.Errorf("seed %d: acquire: %w", seed, err))
					mu.Unlock()
					return
				}
				if _, poisoned := abandoned.Load(e); poisoned {
					mu.Lock()
					reserved = append(reserved, fmt.Errorf("seed %d: pool served a poisoned engine", seed))
					mu.Unlock()
					return
				}
				func() {
					defer func() {
						if rec := recover(); rec != nil {
							e.Poison()
							abandoned.Store(e, true)
							e.Release() // must be refused
						}
					}()
					res, _, err := e.RunUntil(maxWindows, func(windows int) bool {
						if seed%panicEvery == 0 {
							panic(fmt.Sprintf("injected panic at seed %d", seed))
						}
						return false
					})
					if err != nil {
						mu.Lock()
						reserved = append(reserved, fmt.Errorf("seed %d: run: %w", seed, err))
						mu.Unlock()
						return
					}
					e.Release()
					mu.Lock()
					got[seed] = fmt.Sprintf("%+v", res)
					mu.Unlock()
				}()
			}
		}(g)
	}
	wg.Wait()

	for _, err := range reserved {
		t.Error(err)
	}
	if len(got) != len(reference) {
		t.Fatalf("clean results: got %d, want %d", len(got), len(reference))
	}
	for seed, want := range reference {
		if got[seed] != want {
			t.Errorf("seed %d: concurrent result %s != serial reference %s", seed, got[seed], want)
		}
	}

	// The audit ledger must balance: every injected panic poisoned exactly
	// one engine and its release was refused.
	after := EngineStatsSnapshot()
	wantPanics := int64(0)
	for g := 0; g < workers; g++ {
		for i := 0; i < trialsPerGor; i++ {
			if uint64(g*trialsPerGor+i)%panicEvery == 0 {
				wantPanics++
			}
		}
	}
	if d := after.Poisoned - before.Poisoned; d != wantPanics {
		t.Errorf("poisoned engines = %d, want %d", d, wantPanics)
	}
	if d := after.BlockedReleases - before.BlockedReleases; d != wantPanics {
		t.Errorf("blocked releases = %d, want %d", d, wantPanics)
	}
	if acq, rel := after.Acquired-before.Acquired, after.Released-before.Released; acq-rel < wantPanics {
		// Released excludes refused releases, so the gap is at least the
		// poisoned engines (reference-run engines all went back).
		t.Errorf("acquire/release ledger: %d acquired, %d released, %d poisoned", acq, rel, wantPanics)
	}
}
