package registry

import (
	"runtime"
	"testing"
)

// gcPeakSink samples live-heap growth on the emission path: every interval
// trials it forces a collection and records the retained-byte high-water
// mark relative to the pre-run baseline. Forcing GC makes the reading the
// *retained* set, not allocation churn.
type gcPeakSink struct {
	interval int
	seen     int
	baseline uint64
	peak     int64
}

func newGCPeakSink(interval int) *gcPeakSink {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return &gcPeakSink{interval: interval, baseline: ms.HeapAlloc}
}

func (s *gcPeakSink) Consume(TrialRecord) error {
	s.seen++
	if s.seen%s.interval != 0 {
		return nil
	}
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if delta := int64(ms.HeapAlloc) - int64(s.baseline); delta > s.peak {
		s.peak = delta
	}
	return nil
}

func (s *gcPeakSink) Flush() error { return nil }

// TestRunPeakRetainedMemoryIndependentOfTrialCount is the acceptance
// assertion of the streaming pipeline: the sweep's peak retained memory is
// O(cells), not O(trials). A single cell is swept with a 32× difference in
// seed count; before the pipeline the run materialized a trialSpec list and
// a result slice (plus per-cell windows collection) linear in the trial
// count — at 32768 trials several megabytes — while the streaming path
// retains only the cell aggregate, the bounded reorder window, and the
// seeds themselves.
func TestRunPeakRetainedMemoryIndependentOfTrialCount(t *testing.T) {
	if testing.Short() {
		t.Skip("memory sweep is expensive")
	}
	if raceEnabled {
		t.Skip("race runtime heap readings are unrepresentative")
	}
	measure := func(seedCount int) int64 {
		m := Matrix{
			Algorithms:  []string{"core"},
			Adversaries: []string{"full"},
			Schedulers:  []string{"adversary"},
			Sizes:       []Size{{N: 12, T: 1}},
			Inputs:      []string{"ones"}, // decides in the first window
			MaxWindows:  4,
		}
		for s := uint64(1); s <= uint64(seedCount); s++ {
			m.Seeds = append(m.Seeds, s)
		}
		sink := newGCPeakSink(512)
		sweep, err := m.RunWith(RunOptions{Sinks: []ResultSink{sink}})
		if err != nil {
			t.Fatal(err)
		}
		if sweep.TrialCount != seedCount || len(sweep.Cells) != 1 {
			t.Fatalf("sweep shape: %d trials, %d cells", sweep.TrialCount, len(sweep.Cells))
		}
		runtime.KeepAlive(sweep)
		return sink.peak
	}

	small := measure(1024)
	big := measure(32768)
	// 32× the trials may not cost more than a fixed slack (2 MiB, which
	// absorbs the 31× larger seed list, pool warm-up, and GC jitter). The
	// pre-pipeline buffering cost ~160 B/trial — ~5 MiB at the big size —
	// and trips this immediately.
	const slack = 2 << 20
	if big > small+slack {
		t.Fatalf("peak retained memory grew with trial count: %d B at 1024 trials, %d B at 32768 (slack %d)",
			small, big, slack)
	}
}
