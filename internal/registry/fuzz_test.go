package registry

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzCheckpointSalvage throws arbitrary bytes at the checkpoint salvage
// parser. Whatever the corruption, loading must never panic, must be
// deterministic, and on success must yield only a verified contiguous
// prefix (indices 0..k-1) with a renderable salvage report.
func FuzzCheckpointSalvage(f *testing.F) {
	const grid = "fuzz-grid"
	header := "{\"version\":1,\"grid\":\"" + grid + "\"}\n"
	f.Add([]byte(""))
	f.Add([]byte(header))
	f.Add([]byte(header + `{"index":0}` + "\n" + `{"index":1}` + "\n" + `{"index":2}` + "\n"))
	f.Add([]byte(header + `{"index":0}` + "\n" + `{"index":0,"alg`)) // torn tail
	f.Add([]byte(header + `{"index":0}` + "\ngarbage\n" + `{"index":1}` + "\n"))
	f.Add([]byte(header + `{"index":0}` + "\ngarbage\n" + `{"index":2}` + "\n")) // swallowed record
	f.Add([]byte(header + `{"index":0}` + "\n" + `{"index":5}` + "\n"))          // clean gap: error
	f.Add([]byte(`{"version":9,"grid":"fuzz-grid"}` + "\n"))
	f.Add([]byte("not json\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.ckpt")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		records, rep, err := LoadCheckpointSalvage(path, grid)
		records2, rep2, err2 := LoadCheckpointSalvage(path, grid)
		if (err == nil) != (err2 == nil) ||
			(err != nil && err.Error() != err2.Error()) {
			t.Fatalf("salvage not deterministic: %v vs %v", err, err2)
		}
		if err != nil {
			if records != nil || rep != nil {
				t.Fatalf("error %v returned with partial results", err)
			}
			return
		}
		if !reflect.DeepEqual(records, records2) || !reflect.DeepEqual(rep, rep2) {
			t.Fatalf("salvage not deterministic:\n%v %v\nvs\n%v %v", records, rep, records2, rep2)
		}
		for i, r := range records {
			if r.Index != i {
				t.Fatalf("record %d has index %d: prefix not contiguous", i, r.Index)
			}
		}
		// The report must always render, whatever was salvaged.
		_ = rep.String()
		_ = rep.Empty()
	})
}
