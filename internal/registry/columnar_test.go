package registry

import (
	"fmt"
	"testing"

	"asyncagree/internal/sim"
)

// quietRun executes one untraced window-mode run — no OnEvent observer, so
// the columnar gate is free to engage — and returns the summary and the
// final configuration snapshot.
func quietRun(sys *sim.System, plan sim.WindowAdversary, maxWindows int) (sim.RunResult, []string, error) {
	res, err := sys.RunWindows(plan, maxWindows)
	return res, sys.ConfigurationSnapshot(), err
}

// compareQuiet asserts a columnar execution's observables are byte-identical
// to the message-at-a-time reference.
func compareQuiet(t *testing.T, label string,
	lRes sim.RunResult, lSnap []string, lErr error,
	cRes sim.RunResult, cSnap []string, cErr error) {
	t.Helper()
	if (lErr == nil) != (cErr == nil) || (lErr != nil && lErr.Error() != cErr.Error()) {
		t.Fatalf("%s: errors diverged: message %v, columnar %v", label, lErr, cErr)
	}
	if lRes != cRes {
		t.Fatalf("%s: results diverged:\nmessage  %+v\ncolumnar %+v", label, lRes, cRes)
	}
	if len(lSnap) != len(cSnap) {
		t.Fatalf("%s: snapshot lengths diverged: %d vs %d", label, len(lSnap), len(cSnap))
	}
	for i := range lSnap {
		if lSnap[i] != cSnap[i] {
			t.Fatalf("%s: processor %d diverged:\nmessage  %q\ncolumnar %q", label, i, lSnap[i], cSnap[i])
		}
	}
}

// TestColumnarTrialMatchesMessage is the byte-identity contract of the
// columnar vote-tally kernel at the registry level: for every compatible
// (columnar algorithm × adversary × scheduler) triple at the smoke-grid
// shape, a columnar trial — fresh and recycled, serial and sharded (worker
// counts 1, 2, 4) — produces exactly the RunResult and final configuration
// of the message-at-a-time path. Under -race this doubles as the data-race
// proof for the sharded tally phase.
func TestColumnarTrialMatchesMessage(t *testing.T) {
	small := Matrix{
		Algorithms: []string{"core", "benor"},
		Sizes:      []Size{{N: 12, T: 1}},
		Inputs:     []string{"split"},
		Seeds:      []uint64{3},
		MaxWindows: 400,
	}
	trials, err := small.allSpecs()
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) == 0 {
		t.Fatal("smoke grid expanded to no trials")
	}
	for _, ts := range trials {
		ts := ts
		name := fmt.Sprintf("%s_%s_%s_%s", ts.Algorithm, ts.Adversary, ts.Scheduler, ts.Size)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			inputs, err := Inputs(ts.Input, ts.Size.N, ts.seed)
			if err != nil {
				t.Fatal(err)
			}
			legacy := Params{N: ts.Size.N, T: ts.Size.T, Inputs: inputs, Seed: ts.seed,
				DisableColumnar: true}

			// Message-at-a-time reference execution.
			sys, err := NewSystem(ts.Algorithm, legacy)
			if err != nil {
				t.Fatal(err)
			}
			plan, err := NewScheduledAdversary(ts.Adversary, ts.Scheduler, ts.Algorithm, legacy)
			if err != nil {
				t.Fatal(err)
			}
			lRes, lSnap, lErr := quietRun(sys, plan, ts.maxWindows)

			for _, workers := range []int{1, 2, 4} {
				p := legacy
				p.DisableColumnar = false
				p.ShardWorkers = workers

				// Fresh columnar execution.
				cSys, err := NewSystem(ts.Algorithm, p)
				if err != nil {
					t.Fatal(err)
				}
				cPlan, err := NewScheduledAdversary(ts.Adversary, ts.Scheduler, ts.Algorithm, p)
				if err != nil {
					t.Fatal(err)
				}
				if !cSys.ColumnarPlanned(cPlan) {
					t.Fatalf("columnar path not planned for %s; the comparison would be vacuous", name)
				}
				cRes, cSnap, cErr := quietRun(cSys, cPlan, ts.maxWindows)
				compareQuiet(t, fmt.Sprintf("fresh w=%d", workers), lRes, lSnap, lErr, cRes, cSnap, cErr)

				// Recycled columnar execution: dirty a fresh engine with a
				// warm-up trial on another seed/pattern, then rewind it.
				warmInputs, err := Inputs("ones", ts.Size.N, 99)
				if err != nil {
					t.Fatal(err)
				}
				warm := Params{N: ts.Size.N, T: ts.Size.T, Inputs: warmInputs,
					Seed: 99, ShardWorkers: workers}
				key := engineKey{alg: ts.Algorithm, adv: ts.Adversary, sched: ts.Scheduler,
					n: ts.Size.N, t: ts.Size.T}
				e, err := newTrialEngine(key, warm)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := e.Run(150); err != nil {
					t.Fatalf("warm-up trial: %v", err)
				}
				if err := e.prepare(p); err != nil {
					t.Fatalf("prepare: %v", err)
				}
				rRes, rSnap, rErr := quietRun(e.sys, e.plan, ts.maxWindows)
				compareQuiet(t, fmt.Sprintf("recycled w=%d", workers), lRes, lSnap, lErr, rRes, rSnap, rErr)
			}
		})
	}
}

// TestColumnarKnobExcludedFromIdentity pins the performance-knob contract:
// DisableColumnar changes neither the sweep grid signature nor the engine
// pool key, so checkpoints and pooled engines are shared across settings.
func TestColumnarKnobExcludedFromIdentity(t *testing.T) {
	m := Matrix{Algorithms: []string{"core"}, Sizes: []Size{{N: 12, T: 1}},
		Inputs: []string{"split"}, Seeds: []uint64{1}}
	on := m.GridSignature()
	m.DisableColumnar = true
	off := m.GridSignature()
	if on != off {
		t.Fatalf("GridSignature depends on DisableColumnar:\non  %q\noff %q", on, off)
	}

	p := Params{N: 12, T: 1, Inputs: SplitInputs(12), Seed: 1}
	pOff := p
	pOff.DisableColumnar = true
	if extraKey(p) != extraKey(pOff) {
		t.Fatalf("engine pool extraKey depends on DisableColumnar")
	}
}
