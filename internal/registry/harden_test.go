package registry

import (
	"errors"
	"fmt"
	"os"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"asyncagree/internal/faultinject"
)

// hardenMatrix is a one-cell grid with enough seeds that quarantine (3
// consecutive faults by default) can fire with trials left to skip.
func hardenMatrix() Matrix {
	return Matrix{
		Algorithms:  []string{"benor"},
		Adversaries: []string{"full"},
		Schedulers:  []string{"adversary"},
		Sizes:       []Size{{N: 12, T: 1}},
		Inputs:      []string{"split"},
		Seeds:       []uint64{1, 2, 3, 4, 5},
		MaxWindows:  2000,
	}
}

func mustTrialSet(t *testing.T, s string) *faultinject.TrialSet {
	t.Helper()
	set, err := faultinject.ParseTrialSet(s)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// TestInjectedPanicIsolated: a panicking trial becomes a FaultPanic record
// carrying the stack, the sweep completes, and every non-faulted trial's
// record is byte-identical to the clean run's.
func TestInjectedPanicIsolated(t *testing.T) {
	m := sinkMatrix()
	clean := &memorySink{}
	cleanSweep, err := m.RunWith(RunOptions{Sinks: []ResultSink{clean}})
	if err != nil {
		t.Fatal(err)
	}

	faulty := &memorySink{}
	sweep, err := m.RunWith(RunOptions{
		Sinks:  []ResultSink{faulty},
		Inject: &faultinject.Plan{Panic: mustTrialSet(t, "1,5")},
	})
	if err != nil {
		t.Fatalf("injected sweep aborted: %v", err)
	}
	if sweep.Faulted != 2 || len(sweep.Quarantined) != 0 {
		t.Fatalf("Faulted = %d, Quarantined = %v", sweep.Faulted, sweep.Quarantined)
	}
	if len(faulty.records) != len(clean.records) {
		t.Fatalf("injected run emitted %d records, clean %d", len(faulty.records), len(clean.records))
	}
	for i, rec := range faulty.records {
		if i == 1 || i == 5 {
			if rec.FaultKind != FaultPanic {
				t.Fatalf("record %d kind %q, want panic", i, rec.FaultKind)
			}
			if !strings.Contains(rec.Fault, "injected panic") || !strings.Contains(rec.Fault, "goroutine") {
				t.Fatalf("record %d fault missing panic value or stack: %q", i, firstLine(rec.Fault))
			}
			if rec.Key() != clean.records[i].Key() {
				t.Fatalf("record %d key %q != clean %q", i, rec.Key(), clean.records[i].Key())
			}
			continue
		}
		if !reflect.DeepEqual(rec, clean.records[i]) {
			t.Fatalf("clean record %d diverged under injection:\nclean %+v\ngot   %+v", i, clean.records[i], rec)
		}
	}
	// Aggregates cover exactly the clean trials.
	trials := 0
	for _, c := range sweep.Cells {
		trials += c.Trials
	}
	if trials != sweep.TrialCount-2 {
		t.Fatalf("aggregated %d trials, want %d", trials, sweep.TrialCount-2)
	}

	// The pool absorbed no poisoned engine: a clean sweep after the chaos
	// one still reproduces the reference output exactly.
	after := &memorySink{}
	afterSweep, err := m.RunWith(RunOptions{Sinks: []ResultSink{after}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after.records, clean.records) || !reflect.DeepEqual(afterSweep, cleanSweep) {
		t.Fatal("clean sweep after injected panics diverged: a poisoned engine leaked into the pool")
	}
}

// normalizeFaults truncates fault descriptions to their deterministic first
// line: panic records carry goroutine stacks whose frame addresses differ
// between runs (and between the serial loop and a worker goroutine), so
// byte-identity claims cover clean records in full and fault records up to
// their first line.
func normalizeFaults(recs []TrialRecord) []TrialRecord {
	out := append([]TrialRecord(nil), recs...)
	for i := range out {
		out[i].Fault = firstLine(out[i].Fault)
	}
	return out
}

// TestInjectedFaultsSerialParallelIdentical: with a deterministic fault
// plan, the serial loop and the worker pool emit identical record streams —
// fault records included (up to the stack text, which names the goroutine).
func TestInjectedFaultsSerialParallelIdentical(t *testing.T) {
	m := sinkMatrix()
	plan := func() *faultinject.Plan {
		return &faultinject.Plan{
			Panic: mustTrialSet(t, "2"),
			Stall: mustTrialSet(t, "rand:2@7"),
			// Stall after the first window so most selected trials actually
			// fault (fast-deciding ones stay clean — on both paths alike).
			StallWindow: 1,
		}
	}
	ser, par := &memorySink{}, &memorySink{}
	serSweep, err := m.RunWith(RunOptions{Serial: true, Sinks: []ResultSink{ser}, Inject: plan()})
	if err != nil {
		t.Fatal(err)
	}
	parSweep, err := m.RunWith(RunOptions{Sinks: []ResultSink{par}, Inject: plan()})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalizeFaults(ser.records), normalizeFaults(par.records)) {
		t.Fatal("serial and parallel record streams diverged under injection")
	}
	if !reflect.DeepEqual(serSweep, parSweep) {
		t.Fatalf("sweeps diverged:\nserial   %+v\nparallel %+v", serSweep, parSweep)
	}
}

// TestQuarantineAfterConsecutiveFaults: three consecutive faults quarantine
// the cell; its remaining trials are skipped with FaultQuarantined records
// and the sweep reports the cell, serial and parallel alike.
func TestQuarantineAfterConsecutiveFaults(t *testing.T) {
	m := hardenMatrix()
	for _, serial := range []bool{true, false} {
		sink := &memorySink{}
		sweep, err := m.RunWith(RunOptions{
			Serial: serial,
			Sinks:  []ResultSink{sink},
			Inject: &faultinject.Plan{Panic: mustTrialSet(t, "0-2")},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(sweep.Quarantined) != 1 || !strings.Contains(sweep.Quarantined[0], "quarantined after 3 consecutive faults") {
			t.Fatalf("serial=%v: Quarantined = %v", serial, sweep.Quarantined)
		}
		if sweep.Faulted != 5 {
			t.Fatalf("serial=%v: Faulted = %d, want all 5", serial, sweep.Faulted)
		}
		for i, rec := range sink.records {
			want := FaultPanic
			if i >= 3 {
				want = FaultQuarantined
			}
			if rec.FaultKind != want {
				t.Fatalf("serial=%v: record %d kind %q, want %q", serial, i, rec.FaultKind, want)
			}
		}
		if sweep.Cells[0].Trials != 0 {
			t.Fatalf("serial=%v: quarantined cell aggregated %d trials", serial, sweep.Cells[0].Trials)
		}
	}
}

// TestQuarantineNeedsConsecutiveFaults: a clean trial resets the counter,
// so scattered faults never quarantine.
func TestQuarantineNeedsConsecutiveFaults(t *testing.T) {
	m := hardenMatrix()
	sweep, err := m.RunWith(RunOptions{
		Inject: &faultinject.Plan{Panic: mustTrialSet(t, "0,1,3,4")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Quarantined) != 0 {
		t.Fatalf("non-consecutive faults quarantined: %v", sweep.Quarantined)
	}
	if sweep.Faulted != 4 || sweep.Cells[0].Trials != 1 {
		t.Fatalf("Faulted = %d, aggregated = %d", sweep.Faulted, sweep.Cells[0].Trials)
	}
}

// TestInjectedStallBecomesDeadlineRecord: a stalled trial is stopped at the
// injected window and recorded as a FaultDeadline outcome with the partial
// window count — deterministically, no wall clock involved.
func TestInjectedStallBecomesDeadlineRecord(t *testing.T) {
	m := sinkMatrix()
	clean := &memorySink{}
	if _, err := m.RunWith(RunOptions{Sinks: []ResultSink{clean}}); err != nil {
		t.Fatal(err)
	}
	// Stall a trial that demonstrably runs past window 1, at window 1: the
	// injected stall must interrupt a trial that would have kept going.
	target := -1
	for i, rec := range clean.records {
		if rec.Windows >= 2 {
			target = i
			break
		}
	}
	if target < 0 {
		t.Skip("no trial runs long enough to stall")
	}
	sink := &memorySink{}
	sweep, err := m.RunWith(RunOptions{
		Sinks:  []ResultSink{sink},
		Inject: &faultinject.Plan{Stall: mustTrialSet(t, fmt.Sprint(target)), StallWindow: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := sink.records[target]
	if rec.FaultKind != FaultDeadline || !strings.Contains(rec.Fault, "injected stall") {
		t.Fatalf("record %d = %q / %q", target, rec.FaultKind, firstLine(rec.Fault))
	}
	if rec.Windows != 1 {
		t.Fatalf("stalled after %d windows, want 1", rec.Windows)
	}
	if sweep.Faulted != 1 {
		t.Fatalf("Faulted = %d", sweep.Faulted)
	}
}

// TestTrialDeadlineConvertsRunaways: an absurdly small wall-clock deadline
// turns every trial into a recorded FaultDeadline outcome — the sweep
// completes instead of hanging.
func TestTrialDeadlineConvertsRunaways(t *testing.T) {
	m := hardenMatrix()
	sink := &memorySink{}
	sweep, err := m.RunWith(RunOptions{
		Sinks:           []ResultSink{sink},
		TrialDeadline:   time.Nanosecond,
		QuarantineAfter: -1, // every trial must fault on its own
	})
	if err != nil {
		t.Fatal(err)
	}
	if sweep.Faulted != sweep.TrialCount {
		t.Fatalf("Faulted = %d of %d", sweep.Faulted, sweep.TrialCount)
	}
	for i, rec := range sink.records {
		if rec.FaultKind != FaultDeadline || !strings.Contains(rec.Fault, "deadline") {
			t.Fatalf("record %d = %q / %q", i, rec.FaultKind, firstLine(rec.Fault))
		}
	}
}

// failAtSink fails exactly one Consume call, then would work again — but a
// dropped sink must never be handed another record.
type failAtSink struct {
	memorySink
	failAt int
}

func (s *failAtSink) Consume(rec TrialRecord) error {
	if rec.Index == s.failAt {
		return errors.New("disk full")
	}
	return s.memorySink.Consume(rec)
}

// TestSinkFailureDegrades: an unrecoverable sink write drops that sink,
// reports it, and leaves the sweep, its aggregates, and its sibling sinks
// untouched.
func TestSinkFailureDegrades(t *testing.T) {
	m := sinkMatrix()
	want, err := m.RunWith(RunOptions{})
	if err != nil {
		t.Fatal(err)
	}

	bad := &failAtSink{failAt: 3}
	good := &memorySink{}
	sweep, err := m.RunWith(RunOptions{Sinks: []ResultSink{NamedSink{Name: "bad.jsonl", ResultSink: bad}, good}})
	if err != nil {
		t.Fatalf("sink failure aborted the sweep: %v", err)
	}
	if len(sweep.SinkFailures) != 1 ||
		!strings.Contains(sweep.SinkFailures[0], "bad.jsonl") ||
		!strings.Contains(sweep.SinkFailures[0], "disk full") {
		t.Fatalf("SinkFailures = %v", sweep.SinkFailures)
	}
	if sweep.Healthy() {
		t.Fatal("sweep with a dropped sink reported healthy")
	}
	if len(bad.records) != 3 {
		t.Fatalf("dropped sink consumed %d records after its failure", len(bad.records)-3)
	}
	if len(good.records) != sweep.TrialCount {
		t.Fatalf("sibling sink lost records: %d of %d", len(good.records), sweep.TrialCount)
	}
	if !reflect.DeepEqual(sweep.Cells, want.Cells) {
		t.Fatal("aggregates diverged under sink failure")
	}
}

// TestResumeRebuildsQuarantine is the crash-recovery property for the
// hardened pipeline: interrupting an injected sweep and resuming it (same
// plan) replays the checkpointed fault records, rebuilds the quarantine
// counters, and finishes with exactly the uninterrupted run's records.
func TestResumeRebuildsQuarantine(t *testing.T) {
	m := hardenMatrix()
	plan := func() *faultinject.Plan {
		return &faultinject.Plan{Panic: mustTrialSet(t, "0-2")}
	}
	full := &memorySink{}
	want, err := m.RunWith(RunOptions{Sinks: []ResultSink{full}, Inject: plan()})
	if err != nil {
		t.Fatal(err)
	}

	part := &memorySink{}
	var emitted atomic.Int64
	_, err = m.RunWith(RunOptions{
		Sinks:    []ResultSink{part},
		Inject:   plan(),
		Progress: func(done, total int) { emitted.Store(int64(done)) },
		Stop:     func() bool { return emitted.Load() >= 4 },
	})
	if err != ErrInterrupted {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if len(part.records) < 4 || len(part.records) >= len(full.records) {
		t.Fatalf("interrupted run emitted %d records", len(part.records))
	}

	rest := &memorySink{}
	got, err := m.RunWith(RunOptions{Sinks: []ResultSink{rest}, Resume: part.records, Inject: plan()})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed sweep diverged:\nfull    %+v\nresumed %+v", want, got)
	}
	stitched := append(append([]TrialRecord(nil), part.records...), rest.records...)
	if !reflect.DeepEqual(normalizeFaults(stitched), normalizeFaults(full.records)) {
		t.Fatal("interrupted + resumed records != uninterrupted records")
	}
}

// TestCheckpointSalvage covers the damage classes LoadCheckpointSalvage
// recovers from — and the one it must refuse.
func TestCheckpointSalvage(t *testing.T) {
	m := sinkMatrix()
	sink := &memorySink{}
	if _, err := m.RunWith(RunOptions{Sinks: []ResultSink{sink}}); err != nil {
		t.Fatal(err)
	}
	grid := m.GridSignature()
	dir := t.TempDir()

	write := func(t *testing.T, name string, lines []string) string {
		t.Helper()
		path := dir + "/" + name
		if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	recLine := func(t *testing.T, i int) string {
		t.Helper()
		var b strings.Builder
		jl := NewJSONLSink(&b)
		if err := jl.Consume(sink.records[i]); err != nil {
			t.Fatal(err)
		}
		jl.Flush()
		return strings.TrimSuffix(b.String(), "\n")
	}
	var hdr strings.Builder
	if err := WriteCheckpointHeader(&hdr, grid); err != nil {
		t.Fatal(err)
	}
	header := strings.TrimSuffix(hdr.String(), "\n")

	t.Run("garbage insertion is skipped and reverified", func(t *testing.T) {
		path := write(t, "insert.ckpt", []string{
			header, recLine(t, 0), recLine(t, 1), `<<<flipped bits>>>`, recLine(t, 2), recLine(t, 3),
		})
		recs, rep, err := LoadCheckpointSalvage(path, grid)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(recs, sink.records[:4]) {
			t.Fatalf("salvaged %d records, want the full 4", len(recs))
		}
		if len(rep.CorruptLines) != 1 || rep.CorruptLines[0] != 4 || rep.TornTail || rep.DroppedAfterGap != 0 {
			t.Fatalf("report = %+v", rep)
		}
		if !strings.Contains(rep.String(), "skipped 1 corrupt record") {
			t.Fatalf("report renders as %q", rep)
		}
	})

	t.Run("lost record ends the prefix at the gap", func(t *testing.T) {
		// The line holding record 2 was overwritten: record 3 cannot be
		// re-verified against the prefix, so everything from the corruption
		// on is dropped.
		path := write(t, "lost.ckpt", []string{
			header, recLine(t, 0), recLine(t, 1), `<<<was record 2>>>`, recLine(t, 3), recLine(t, 4),
		})
		recs, rep, err := LoadCheckpointSalvage(path, grid)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(recs, sink.records[:2]) {
			t.Fatalf("salvaged %d records, want 2", len(recs))
		}
		if rep.DroppedAfterGap != 3 || len(rep.CorruptLines) != 0 {
			t.Fatalf("report = %+v", rep)
		}
	})

	t.Run("torn tail after a mid-file skip", func(t *testing.T) {
		path := write(t, "both.ckpt", []string{
			header, recLine(t, 0), `garbage`, recLine(t, 1), `{"index":2,"algo`,
		})
		recs, rep, err := LoadCheckpointSalvage(path, grid)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 2 || !rep.TornTail || len(rep.CorruptLines) != 1 {
			t.Fatalf("records = %d, report = %+v", len(recs), rep)
		}
	})

	t.Run("truncated header is refused", func(t *testing.T) {
		path := write(t, "hdr.ckpt", []string{header[:len(header)/2]})
		if _, _, err := LoadCheckpointSalvage(path, grid); err == nil ||
			!strings.Contains(err.Error(), "bad checkpoint header") {
			t.Fatalf("err = %v", err)
		}
	})

	t.Run("grid mismatch is refused", func(t *testing.T) {
		path := write(t, "grid.ckpt", []string{header, recLine(t, 0)})
		if _, _, err := LoadCheckpointSalvage(path, "some other grid"); err == nil ||
			!strings.Contains(err.Error(), "grid") {
			t.Fatalf("err = %v", err)
		}
	})

	t.Run("clean non-contiguous file is still an error", func(t *testing.T) {
		path := write(t, "skip.ckpt", []string{header, recLine(t, 0), recLine(t, 2)})
		if _, _, err := LoadCheckpointSalvage(path, grid); err == nil ||
			!strings.Contains(err.Error(), "contiguous") {
			t.Fatalf("err = %v", err)
		}
	})
}
