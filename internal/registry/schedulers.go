package registry

import (
	"fmt"

	"asyncagree/internal/sched"
	"asyncagree/internal/sim"
)

// Scheduler is a self-describing delivery-scheduler entry wrapping an
// internal/sched strategy: the axis of the scenario space that decides
// *which* ≥ n−t senders each receiver admits per acceptable window.
type Scheduler struct {
	// Name is the stable registry key (e.g. "adversary", "ascmin").
	Name string
	// Description is a one-line human summary for CLI listings.
	Description string
	// Modes lists the execution modes the scheduler meaningfully supports.
	// Every built-in supports ModeWindow; only the adversary-driven
	// scheduler is meaningful in ModeStep, where step adversaries control
	// delivery directly. The sweep matrix runs window-mode trials and only
	// expands ModeWindow schedulers (see WindowRunnable).
	Modes Mode
	// Compatible reports whether the sweep matrix should expand this
	// scheduler spliced into the (alg, adv) pairing. Schedulers that
	// override sender sets must reject adversaries whose strategy lives in
	// those sets (Adversary.PlansSenders) and algorithms whose guarantees
	// the discipline voids (e.g. lossy delivery against NeedsFullDelivery).
	Compatible func(alg *Algorithm, adv *Adversary, p Params) bool
	// New returns FRESH scheduler state for one trial. Implementations
	// must never return a shared instance: schedulers carry mutable
	// per-execution state (rotation cursors, rng streams, reusable
	// scratch) and trials run concurrently.
	New func(p Params) (sched.Scheduler, error)
	// Recycle rewinds s — previously returned by New for the same (n, t)
	// cell — to the state New would produce for p and reports whether it
	// did. A nil hook (or a false return) makes the pooled trial engine
	// construct fresh state with New instead; see Adversary.Recycle.
	Recycle func(s sched.Scheduler, p Params) bool
}

var (
	schedulers     []*Scheduler
	schedulerByKey = map[string]*Scheduler{}
)

// RegisterScheduler adds a scheduler descriptor. Names must be unique;
// Compatible and New are mandatory.
func RegisterScheduler(s Scheduler) error {
	if s.Name == "" || s.Compatible == nil || s.New == nil {
		return fmt.Errorf("registry: scheduler descriptor %q incomplete", s.Name)
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := schedulerByKey[s.Name]; dup {
		return fmt.Errorf("registry: duplicate scheduler %q", s.Name)
	}
	entry := &s
	schedulers = append(schedulers, entry)
	schedulerByKey[s.Name] = entry
	return nil
}

// mustRegisterScheduler panics on registration failure; it is only called
// from init with built-in descriptors, so a failure is a programming error.
func mustRegisterScheduler(s Scheduler) {
	if err := RegisterScheduler(s); err != nil {
		panic(fmt.Sprintf("registry: registering built-in scheduler %q: %v", s.Name, err))
	}
}

// Schedulers returns the registered scheduler descriptors in registration
// order. The returned slice is a copy; the descriptors are shared and must
// not be mutated.
func Schedulers() []*Scheduler {
	mu.RLock()
	defer mu.RUnlock()
	return append([]*Scheduler(nil), schedulers...)
}

// SchedulerNames returns the registered scheduler names in registration
// order.
func SchedulerNames() []string {
	scheds := Schedulers()
	names := make([]string, len(scheds))
	for i, s := range scheds {
		names[i] = s.Name
	}
	return names
}

// LookupScheduler resolves a name.
func LookupScheduler(name string) (*Scheduler, error) {
	mu.RLock()
	defer mu.RUnlock()
	s, ok := schedulerByKey[name]
	if !ok {
		return nil, fmt.Errorf("registry: unknown scheduler %q", name)
	}
	return s, nil
}

// NewScheduler constructs fresh per-trial state for the named scheduler.
func NewScheduler(name string, p Params) (sched.Scheduler, error) {
	s, err := LookupScheduler(name)
	if err != nil {
		return nil, err
	}
	return s.New(p)
}

// NewScheduledAdversary constructs the full window plan of one trial: fresh
// adversary state for advName tuned to algName, with its delivery
// discipline overridden by fresh schedName scheduler state (the "adversary"
// scheduler keeps the adversary's own sender sets byte-identically).
func NewScheduledAdversary(advName, schedName, algName string, p Params) (sim.WindowAdversary, error) {
	adv, err := NewAdversary(advName, algName, p)
	if err != nil {
		return nil, err
	}
	sch, err := NewScheduler(schedName, p)
	if err != nil {
		return nil, err
	}
	return sched.Compose(adv, sch), nil
}

// WindowRunnable reports whether the sweep matrix can splice the scheduler
// into window-mode trials of the (alg, adv) pairing: the matrix executes
// window mode, so a scheduler without ModeWindow support is incompatible
// with every pairing regardless of its own predicate.
func (s *Scheduler) WindowRunnable(alg *Algorithm, adv *Adversary, p Params) bool {
	return s.Modes.Has(ModeWindow) && s.Compatible(alg, adv, p)
}

// SchedulerCompatible reports whether the sweep matrix would splice the
// named scheduler into the named (algorithm, adversary) pairing at p.
func SchedulerCompatible(schedName, advName, algName string, p Params) (bool, error) {
	s, err := LookupScheduler(schedName)
	if err != nil {
		return false, err
	}
	ad, err := LookupAdversary(advName)
	if err != nil {
		return false, err
	}
	a, err := LookupAlgorithm(algName)
	if err != nil {
		return false, err
	}
	return s.WindowRunnable(a, ad, p), nil
}

// overridesSenders is the baseline compatibility check shared by every
// scheduler that replaces the adversary's sender sets: the adversary's
// strategy must not live in those sets.
func overridesSenders(_ *Algorithm, adv *Adversary, _ Params) bool {
	return !adv.PlansSenders
}

// lossyCompatible is the compatibility check for schedulers that may drop
// messages: on top of overridesSenders, the algorithm must not assume every
// message is eventually delivered (window mode drops each window's
// undelivered remainder, so a lossy discipline can wedge such an algorithm
// forever).
func lossyCompatible(alg *Algorithm, adv *Adversary, p Params) bool {
	return overridesSenders(alg, adv, p) && !alg.NeedsFullDelivery
}

// silencingCompatible is the compatibility check for schedulers that starve
// a fixed sender set persistently: the algorithm must additionally tolerate
// silenced processors (a persistent starvation can pin a committee group or
// the lone Paxos proposer forever).
func silencingCompatible(alg *Algorithm, adv *Adversary, p Params) bool {
	return lossyCompatible(alg, adv, p) && alg.SilenceTolerant
}

func init() {
	mustRegisterScheduler(Scheduler{
		Name:        "adversary",
		Description: "delivery chosen by the adversary's own window plan (the pre-scheduler default)",
		Modes:       ModeWindow | ModeStep,
		Compatible:  func(*Algorithm, *Adversary, Params) bool { return true },
		New: func(Params) (sched.Scheduler, error) {
			return sched.AdversaryDriven{}, nil
		},
		Recycle: func(s sched.Scheduler, _ Params) bool {
			_, ok := s.(sched.AdversaryDriven) // stateless
			return ok
		},
	})

	// "full" pairs only with adversaries that plan no sender sets, whose
	// window plans are therefore already full delivery — its sweep cells
	// deliberately mirror the "adversary" cells trial for trial. It stays
	// in the matrix so the scheduler axis is self-contained, and in the
	// registry so explicit runs (cmd/agree, E14, the facade) can force
	// full delivery as a named baseline.
	mustRegisterScheduler(Scheduler{
		Name:        "full",
		Description: "deliver every message to every receiver",
		Modes:       ModeWindow,
		Compatible:  overridesSenders,
		New: func(Params) (sched.Scheduler, error) {
			return sched.FullDelivery{}, nil
		},
		Recycle: func(s sched.Scheduler, _ Params) bool {
			_, ok := s.(sched.FullDelivery) // stateless
			return ok
		},
	})

	mustRegisterScheduler(Scheduler{
		Name:        "ascmin",
		Description: "exactly the n-t lowest senders for every receiver (persistent top-t starvation)",
		Modes:       ModeWindow,
		Compatible:  silencingCompatible,
		New: func(Params) (sched.Scheduler, error) {
			return sched.NewAscendingMinimal(), nil
		},
		Recycle: func(s sched.Scheduler, _ Params) bool {
			_, ok := s.(*sched.AscendingMinimal) // carries only reusable scratch
			return ok
		},
	})

	mustRegisterScheduler(Scheduler{
		Name:        "seeded",
		Description: "independent random (n-t)-subset per receiver per window, deterministic per trial seed",
		Modes:       ModeWindow,
		Compatible:  lossyCompatible,
		New: func(p Params) (sched.Scheduler, error) {
			return sched.NewSeededRandom(p.Seed), nil
		},
		Recycle: func(s sched.Scheduler, p Params) bool {
			r, ok := s.(*sched.SeededRandom)
			if ok {
				r.RecycleTrial(p.Seed)
			}
			return ok
		},
	})

	mustRegisterScheduler(Scheduler{
		Name:        "laggard",
		Description: "starve a rotating t-subset for an epoch of windows, then rotate (bounded unfairness)",
		Modes:       ModeWindow,
		Compatible:  lossyCompatible,
		New: func(Params) (sched.Scheduler, error) {
			return sched.NewLaggard(0, 0), nil
		},
		Recycle: func(s sched.Scheduler, _ Params) bool {
			l, ok := s.(*sched.Laggard)
			if ok {
				l.RecycleTrial()
			}
			return ok
		},
	})

	mustRegisterScheduler(Scheduler{
		Name:        "alternate",
		Description: "full delivery on even windows, ascending-minimal on odd ones",
		Modes:       ModeWindow,
		Compatible:  silencingCompatible,
		New: func(Params) (sched.Scheduler, error) {
			return sched.NewAlternate(), nil
		},
		Recycle: func(s sched.Scheduler, _ Params) bool {
			a, ok := s.(*sched.Alternate)
			if ok {
				a.RecycleTrial()
			}
			return ok
		},
	})
}
