//go:build race

package registry

// raceEnabled reports whether this test binary was built with the race
// detector. The peak-memory assertion skips there: the race runtime's
// shadow memory and deliberate sync.Pool randomization make heap readings
// unrepresentative of the production allocator.
const raceEnabled = true
