package registry

import (
	"fmt"

	"asyncagree/internal/adversary"
	"asyncagree/internal/sim"
)

// windowCapable is the baseline compatibility check shared by every window
// adversary: the algorithm must support window mode.
func windowCapable(alg *Algorithm, _ Params) bool {
	return alg.Modes.Has(ModeWindow)
}

func init() {
	mustRegisterAdversary(Adversary{
		Name:        "full",
		Description: "benign adversary: deliver everything, reset nobody",
		Compatible:  windowCapable,
		New: func(_ *Algorithm, _ Params) (sim.WindowAdversary, error) {
			return adversary.FullDelivery{}, nil
		},
	})

	mustRegisterAdversary(Adversary{
		Name:         "subsets",
		Description:  "chaos scheduling: independent random (n-t)-subset deliveries, no resets",
		PlansSenders: true,
		Compatible: func(alg *Algorithm, p Params) bool {
			return windowCapable(alg, p) && !alg.NeedsFullDelivery
		},
		New: func(_ *Algorithm, p Params) (sim.WindowAdversary, error) {
			return adversary.NewRandomWindows(p.Seed, 0, 0), nil
		},
	})

	mustRegisterAdversary(Adversary{
		Name:         "random",
		Description:  "chaos + resets: random (n-t)-subset deliveries and up to t random resets per window",
		Resets:       true,
		PlansSenders: true,
		Compatible: func(alg *Algorithm, p Params) bool {
			return windowCapable(alg, p) && alg.ResetTolerant
		},
		New: func(_ *Algorithm, p Params) (sim.WindowAdversary, error) {
			return adversary.NewRandomWindows(p.Seed, 0.5, p.T), nil
		},
	})

	mustRegisterAdversary(Adversary{
		Name:        "storm",
		Description: "reset storm: erase the memory of a rotating set of t processors every window",
		Resets:      true,
		Compatible: func(alg *Algorithm, p Params) bool {
			return windowCapable(alg, p) && alg.ResetTolerant
		},
		New: func(_ *Algorithm, _ Params) (sim.WindowAdversary, error) {
			return adversary.NewResetStorm(), nil
		},
	})

	mustRegisterAdversary(Adversary{
		Name:         "silence",
		Description:  "fixed silence: never deliver from the first t processors (Lemmas 11/13)",
		PlansSenders: true,
		Compatible: func(alg *Algorithm, p Params) bool {
			return windowCapable(alg, p) && alg.SilenceTolerant
		},
		New: func(_ *Algorithm, p Params) (sim.WindowAdversary, error) {
			silent := make([]sim.ProcID, 0, p.T)
			for i := 0; i < p.T; i++ {
				silent = append(silent, sim.ProcID(i))
			}
			return adversary.NewFixedSilence(p.N, p.T, silent)
		},
	})

	mustRegisterAdversary(Adversary{
		Name:         "splitvote",
		Description:  "Section 3 stalling strategy: show every processor an approximate split of the round's votes",
		PlansSenders: true,
		Compatible: func(alg *Algorithm, p Params) bool {
			return windowCapable(alg, p) && alg.SupportsSplitVote()
		},
		New: func(alg *Algorithm, p Params) (sim.WindowAdversary, error) {
			if !alg.SupportsSplitVote() {
				return nil, fmt.Errorf("registry: split-vote adversary not defined for %q", alg.Name)
			}
			cap, err := alg.SplitVoteCap(p)
			if err != nil {
				return nil, err
			}
			return adversary.NewSplitVote(alg.ClassifyVote, cap), nil
		},
	})
}
