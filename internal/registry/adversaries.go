package registry

import (
	"fmt"

	"asyncagree/internal/adversary"
	"asyncagree/internal/sim"
)

// windowCapable is the baseline compatibility check shared by every window
// adversary: the algorithm must support window mode.
func windowCapable(alg *Algorithm, _ Params) bool {
	return alg.Modes.Has(ModeWindow)
}

func init() {
	mustRegisterAdversary(Adversary{
		Name:        "full",
		Description: "benign adversary: deliver everything, reset nobody",
		Compatible:  windowCapable,
		New: func(_ *Algorithm, _ Params) (sim.WindowAdversary, error) {
			return adversary.FullDelivery{}, nil
		},
		Recycle: func(adv sim.WindowAdversary, _ Params) bool {
			_, ok := adv.(adversary.FullDelivery) // stateless
			return ok
		},
	})

	mustRegisterAdversary(Adversary{
		Name:         "subsets",
		Description:  "chaos scheduling: independent random (n-t)-subset deliveries, no resets",
		PlansSenders: true,
		Compatible: func(alg *Algorithm, p Params) bool {
			return windowCapable(alg, p) && !alg.NeedsFullDelivery
		},
		New: func(_ *Algorithm, p Params) (sim.WindowAdversary, error) {
			return adversary.NewRandomWindows(p.Seed, 0, 0), nil
		},
		Recycle: recycleRandomWindows,
	})

	mustRegisterAdversary(Adversary{
		Name:         "random",
		Description:  "chaos + resets: random (n-t)-subset deliveries and up to t random resets per window",
		Resets:       true,
		PlansSenders: true,
		Knobs: []Knob{
			{Name: "resetpct", Description: "per-window reset probability, in percent", Min: 0, Max: 100, Default: 50},
			{Name: "maxresets", Description: "reset budget per window (always capped at the cell's t)", Min: 0, Max: 8, Default: 8},
		},
		Compatible: func(alg *Algorithm, p Params) bool {
			return windowCapable(alg, p) && alg.ResetTolerant
		},
		New: func(_ *Algorithm, p Params) (sim.WindowAdversary, error) {
			// A nil knob vector is the exact historical construction; the
			// knobbed path reproduces it at the declared defaults for every
			// sweep-grid size (t <= 8, so min(8, t) = t).
			prob, budget := 0.5, p.T
			if p.AdvKnobs != nil {
				prob = float64(knob(p, 0, 50)) / 100
				if budget = knob(p, 1, 8); budget > p.T {
					budget = p.T
				}
			}
			return adversary.NewRandomWindows(p.Seed, prob, budget), nil
		},
		Recycle: recycleRandomWindows,
	})

	mustRegisterAdversary(Adversary{
		Name:        "storm",
		Description: "reset storm: erase the memory of a rotating set of t processors every window",
		Resets:      true,
		Compatible: func(alg *Algorithm, p Params) bool {
			return windowCapable(alg, p) && alg.ResetTolerant
		},
		New: func(_ *Algorithm, _ Params) (sim.WindowAdversary, error) {
			return adversary.NewResetStorm(), nil
		},
		Recycle: func(adv sim.WindowAdversary, _ Params) bool {
			a, ok := adv.(*adversary.ResetStorm)
			if ok {
				a.RecycleTrial()
			}
			return ok
		},
	})

	mustRegisterAdversary(Adversary{
		Name:         "silence",
		Description:  "fixed silence: never deliver from the first t processors (Lemmas 11/13)",
		PlansSenders: true,
		Knobs: []Knob{
			{Name: "offset", Description: "first silenced processor; the silent set is offset..offset+t-1 (mod n)", Min: 0, Max: 63, Default: 0},
		},
		Compatible: func(alg *Algorithm, p Params) bool {
			return windowCapable(alg, p) && alg.SilenceTolerant
		},
		New: func(_ *Algorithm, p Params) (sim.WindowAdversary, error) {
			off := knob(p, 0, 0)
			silent := make([]sim.ProcID, 0, p.T)
			for i := 0; i < p.T; i++ {
				id := off + i
				if p.N > 0 {
					id %= p.N // degenerate params fail NewFixedSilence's checks
				}
				silent = append(silent, sim.ProcID(id))
			}
			return adversary.NewFixedSilence(p.N, p.T, silent)
		},
		Recycle: func(adv sim.WindowAdversary, _ Params) bool {
			// The silent set is a function of the cell's (n, t) and the offset
			// knob, all of which the engine pool keys on, so a pooled instance
			// is already correct.
			_, ok := adv.(adversary.FixedSilence)
			return ok
		},
	})

	mustRegisterAdversary(Adversary{
		Name:         "splitvote",
		Description:  "Section 3 stalling strategy: show every processor an approximate split of the round's votes",
		PlansSenders: true,
		Knobs: []Knob{
			{Name: "capdelta", Description: "offset on the per-receiver vote cap (0 = the construction's cap, e.g. T3-1 for core)", Min: -6, Max: 2, Default: 0},
		},
		Compatible: func(alg *Algorithm, p Params) bool {
			return windowCapable(alg, p) && alg.SupportsSplitVote()
		},
		New: func(alg *Algorithm, p Params) (sim.WindowAdversary, error) {
			if !alg.SupportsSplitVote() {
				return nil, fmt.Errorf("registry: split-vote adversary not defined for %q", alg.Name)
			}
			cap, err := alg.SplitVoteCap(p)
			if err != nil {
				return nil, err
			}
			if cap += knob(p, 0, 0); cap < 1 {
				cap = 1
			}
			return adversary.NewSplitVote(alg.ClassifyVote, cap), nil
		},
		Recycle: func(adv sim.WindowAdversary, _ Params) bool {
			a, ok := adv.(*adversary.SplitVote)
			if ok {
				a.RecycleTrial()
			}
			return ok
		},
	})
}

// knob reads the i-th adversary knob value from p, falling back to def when
// the caller left the knobs at their defaults (nil AdvKnobs) or supplied a
// short vector (which ValidateKnobs rejects on every registry entry point;
// the bounds check here just keeps a direct New call from panicking).
func knob(p Params, i, def int) int {
	if i < len(p.AdvKnobs) {
		return p.AdvKnobs[i]
	}
	return def
}

// recycleRandomWindows rewinds pooled chaos-adversary state: reseeding the
// stream reproduces a fresh NewRandomWindows construction (the reset
// probability and budget are functions of the cell and its knob vector,
// which the pool keys on).
func recycleRandomWindows(adv sim.WindowAdversary, p Params) bool {
	a, ok := adv.(*adversary.RandomWindows)
	if ok {
		a.RecycleTrial(p.Seed)
	}
	return ok
}
