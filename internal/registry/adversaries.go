package registry

import (
	"fmt"

	"asyncagree/internal/adversary"
	"asyncagree/internal/sim"
)

// windowCapable is the baseline compatibility check shared by every window
// adversary: the algorithm must support window mode.
func windowCapable(alg *Algorithm, _ Params) bool {
	return alg.Modes.Has(ModeWindow)
}

func init() {
	mustRegisterAdversary(Adversary{
		Name:        "full",
		Description: "benign adversary: deliver everything, reset nobody",
		Compatible:  windowCapable,
		New: func(_ *Algorithm, _ Params) (sim.WindowAdversary, error) {
			return adversary.FullDelivery{}, nil
		},
		Recycle: func(adv sim.WindowAdversary, _ Params) bool {
			_, ok := adv.(adversary.FullDelivery) // stateless
			return ok
		},
	})

	mustRegisterAdversary(Adversary{
		Name:         "subsets",
		Description:  "chaos scheduling: independent random (n-t)-subset deliveries, no resets",
		PlansSenders: true,
		Compatible: func(alg *Algorithm, p Params) bool {
			return windowCapable(alg, p) && !alg.NeedsFullDelivery
		},
		New: func(_ *Algorithm, p Params) (sim.WindowAdversary, error) {
			return adversary.NewRandomWindows(p.Seed, 0, 0), nil
		},
		Recycle: recycleRandomWindows,
	})

	mustRegisterAdversary(Adversary{
		Name:         "random",
		Description:  "chaos + resets: random (n-t)-subset deliveries and up to t random resets per window",
		Resets:       true,
		PlansSenders: true,
		Compatible: func(alg *Algorithm, p Params) bool {
			return windowCapable(alg, p) && alg.ResetTolerant
		},
		New: func(_ *Algorithm, p Params) (sim.WindowAdversary, error) {
			return adversary.NewRandomWindows(p.Seed, 0.5, p.T), nil
		},
		Recycle: recycleRandomWindows,
	})

	mustRegisterAdversary(Adversary{
		Name:        "storm",
		Description: "reset storm: erase the memory of a rotating set of t processors every window",
		Resets:      true,
		Compatible: func(alg *Algorithm, p Params) bool {
			return windowCapable(alg, p) && alg.ResetTolerant
		},
		New: func(_ *Algorithm, _ Params) (sim.WindowAdversary, error) {
			return adversary.NewResetStorm(), nil
		},
		Recycle: func(adv sim.WindowAdversary, _ Params) bool {
			a, ok := adv.(*adversary.ResetStorm)
			if ok {
				a.RecycleTrial()
			}
			return ok
		},
	})

	mustRegisterAdversary(Adversary{
		Name:         "silence",
		Description:  "fixed silence: never deliver from the first t processors (Lemmas 11/13)",
		PlansSenders: true,
		Compatible: func(alg *Algorithm, p Params) bool {
			return windowCapable(alg, p) && alg.SilenceTolerant
		},
		New: func(_ *Algorithm, p Params) (sim.WindowAdversary, error) {
			silent := make([]sim.ProcID, 0, p.T)
			for i := 0; i < p.T; i++ {
				silent = append(silent, sim.ProcID(i))
			}
			return adversary.NewFixedSilence(p.N, p.T, silent)
		},
		Recycle: func(adv sim.WindowAdversary, _ Params) bool {
			// The silent set is a function of the cell's (n, t), which the
			// engine pool keys on, so a pooled instance is already correct.
			_, ok := adv.(adversary.FixedSilence)
			return ok
		},
	})

	mustRegisterAdversary(Adversary{
		Name:         "splitvote",
		Description:  "Section 3 stalling strategy: show every processor an approximate split of the round's votes",
		PlansSenders: true,
		Compatible: func(alg *Algorithm, p Params) bool {
			return windowCapable(alg, p) && alg.SupportsSplitVote()
		},
		New: func(alg *Algorithm, p Params) (sim.WindowAdversary, error) {
			if !alg.SupportsSplitVote() {
				return nil, fmt.Errorf("registry: split-vote adversary not defined for %q", alg.Name)
			}
			cap, err := alg.SplitVoteCap(p)
			if err != nil {
				return nil, err
			}
			return adversary.NewSplitVote(alg.ClassifyVote, cap), nil
		},
		Recycle: func(adv sim.WindowAdversary, _ Params) bool {
			a, ok := adv.(*adversary.SplitVote)
			if ok {
				a.RecycleTrial()
			}
			return ok
		},
	})
}

// recycleRandomWindows rewinds pooled chaos-adversary state: reseeding the
// stream reproduces a fresh NewRandomWindows construction (the reset
// probability and budget are functions of the cell, which the pool keys on).
func recycleRandomWindows(adv sim.WindowAdversary, p Params) bool {
	a, ok := adv.(*adversary.RandomWindows)
	if ok {
		a.RecycleTrial(p.Seed)
	}
	return ok
}
