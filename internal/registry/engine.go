package registry

import (
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"asyncagree/internal/sched"
	"asyncagree/internal/sim"
)

// This file implements the pooled trial engine: the steady-state execution
// path of the sweep matrix and the experiment drivers. A trial is a fresh
// execution of the same (algorithm, adversary, scheduler, n, t) scenario —
// exactly the paper's notion of re-running the same n-processor
// configuration — so instead of constructing a new sim.System, adversary,
// and scheduler per trial, the engine keeps finished instances in a
// per-scenario pool and rewinds them with the Recycle hooks (sim.System.
// Recycle, sim.Recycler, Adversary.Recycle, Scheduler.Recycle). Recycling
// restores the exact just-constructed state, so pooled trials are
// byte-identical to fresh ones (property-tested in recycle_test.go); the
// payoff is that steady-state trial execution allocates (near) nothing.

// engineKey identifies one poolable scenario shape. Everything a pooled
// instance bakes in at construction time must appear here: the three
// registry names, the (n, t) shape, and the optional algorithm knobs
// (thresholds, proposers) encoded canonically in extra.
type engineKey struct {
	alg, adv, sched string
	n, t            int
	extra           string
}

// extraKey canonically encodes the optional Params knobs that change what a
// factory (or an adversary constructor) bakes in at construction time. The
// common case (no knobs) is "" and allocates nothing.
func extraKey(p Params) string {
	if p.CoreThresholds == nil && p.Proposers == nil && p.AdvKnobs == nil {
		return ""
	}
	var b strings.Builder
	if th := p.CoreThresholds; th != nil {
		b.WriteString("th=")
		b.WriteString(strconv.Itoa(th.T1))
		b.WriteByte(',')
		b.WriteString(strconv.Itoa(th.T2))
		b.WriteByte(',')
		b.WriteString(strconv.Itoa(th.T3))
	}
	if p.Proposers != nil {
		b.WriteString(";props=")
		for i, q := range p.Proposers {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(int(q)))
		}
	}
	if p.AdvKnobs != nil {
		b.WriteString(";knobs=")
		for i, v := range p.AdvKnobs {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(v))
		}
	}
	return b.String()
}

// TrialEngine bundles the pooled per-trial state of one scenario: the
// system, the adversary, the delivery scheduler, and their composition.
// Acquire one with AcquireTrial, run the trial, and Release it; an engine
// serves one trial at a time and must not be shared across goroutines.
type TrialEngine struct {
	key  engineKey
	alg  *Algorithm
	advD *Adversary
	schD *Scheduler

	sys  *sim.System
	adv  sim.WindowAdversary
	sch  sched.Scheduler
	plan sim.WindowAdversary

	// poisoned marks an engine that a panicking (or otherwise corrupting)
	// trial left in an unknown state. A poisoned engine must never re-enter
	// its pool: Release refuses it (counting the attempt in EngineStats), so
	// even a caller that mistakenly releases after recovering a panic cannot
	// re-serve the corrupt instance.
	poisoned bool
}

// EngineStats counts pooled-engine lifecycle events process-wide. The
// counters are monotone; callers audit a workload by diffing snapshots
// taken around it.
type EngineStats struct {
	// Acquired counts AcquireTrial successes (pool hits and fresh builds).
	Acquired int64
	// Released counts engines returned to their pool.
	Released int64
	// Poisoned counts engines explicitly marked unusable via Poison.
	Poisoned int64
	// BlockedReleases counts Release calls refused because the engine was
	// poisoned — each one is a caller bug the audit made harmless.
	BlockedReleases int64
}

var engineStats struct {
	acquired, released, poisoned, blockedReleases atomic.Int64
}

// EngineStatsSnapshot returns the current process-wide pooled-engine
// lifecycle counters.
func EngineStatsSnapshot() EngineStats {
	return EngineStats{
		Acquired:        engineStats.acquired.Load(),
		Released:        engineStats.released.Load(),
		Poisoned:        engineStats.poisoned.Load(),
		BlockedReleases: engineStats.blockedReleases.Load(),
	}
}

// enginePools maps engineKey -> *sync.Pool of *TrialEngine. sync.Pool keeps
// the retained memory bounded (idle engines are dropped across GC cycles)
// while giving steady-state sweeps and benchmarks full reuse. A plain map
// under RWMutex (rather than sync.Map) keeps the steady-state lookup free
// of key boxing, so acquiring a pooled engine allocates nothing.
var (
	enginePoolMu sync.RWMutex
	enginePools  = map[engineKey]*sync.Pool{}
)

func poolFor(key engineKey) *sync.Pool {
	enginePoolMu.RLock()
	p := enginePools[key]
	enginePoolMu.RUnlock()
	if p != nil {
		return p
	}
	enginePoolMu.Lock()
	defer enginePoolMu.Unlock()
	if p = enginePools[key]; p == nil {
		p = &sync.Pool{}
		enginePools[key] = p
	}
	return p
}

// AcquireTrial returns a trial engine for the named scenario, prepared for
// one window-mode trial at p: a pooled instance rewound to just-constructed
// state when one is available, a freshly constructed one otherwise. The two
// are indistinguishable by execution (the recycled-equals-fresh contract).
// Call Release when the trial is done.
func AcquireTrial(algName, advName, schedName string, p Params) (*TrialEngine, error) {
	key := engineKey{alg: algName, adv: advName, sched: schedName,
		n: p.N, t: p.T, extra: extraKey(p)}
	pool := poolFor(key)
	if e, ok := pool.Get().(*TrialEngine); ok && e != nil {
		if err := e.prepare(p); err != nil {
			return nil, err
		}
		engineStats.acquired.Add(1)
		return e, nil
	}
	e, err := newTrialEngine(key, p)
	if err != nil {
		return nil, err
	}
	engineStats.acquired.Add(1)
	return e, nil
}

// newTrialEngine constructs everything fresh (the pool-miss path).
func newTrialEngine(key engineKey, p Params) (*TrialEngine, error) {
	alg, err := LookupAlgorithm(key.alg)
	if err != nil {
		return nil, err
	}
	advD, err := LookupAdversary(key.adv)
	if err != nil {
		return nil, err
	}
	if err := advD.ValidateKnobs(p); err != nil {
		return nil, err
	}
	schD, err := LookupScheduler(key.sched)
	if err != nil {
		return nil, err
	}
	sys, err := NewSystem(key.alg, p)
	if err != nil {
		return nil, err
	}
	adv, err := advD.New(alg, p)
	if err != nil {
		return nil, err
	}
	sch, err := schD.New(p)
	if err != nil {
		return nil, err
	}
	return &TrialEngine{
		key: key, alg: alg, advD: advD, schD: schD,
		sys: sys, adv: adv, sch: sch,
		plan: sched.Compose(adv, sch),
	}, nil
}

// prepare rewinds a pooled engine for a trial at p. The system recycles in
// place; adversary and scheduler state recycles through the descriptor
// hooks, falling back to fresh construction (and re-composition) when a
// hook is missing or declines.
func (e *TrialEngine) prepare(p Params) error {
	if err := e.alg.Validate(p); err != nil {
		return err
	}
	if err := e.advD.ValidateKnobs(p); err != nil {
		return err
	}
	if err := e.sys.Recycle(p.Seed, p.Inputs); err != nil {
		return err
	}
	// ShardWorkers is a performance knob outside the engine pool key (output
	// is byte-identical at any setting), so a pooled engine may be re-acquired
	// at a different worker count; apply it per acquisition. The common case
	// (unchanged count) keeps the existing worker pool hot.
	applyShardParams(e.sys, e.alg, p)
	recompose := false
	if e.advD.Recycle == nil || !e.advD.Recycle(e.adv, p) {
		adv, err := e.advD.New(e.alg, p)
		if err != nil {
			return err
		}
		e.adv = adv
		recompose = true
	}
	if e.schD.Recycle == nil || !e.schD.Recycle(e.sch, p) {
		sch, err := e.schD.New(p)
		if err != nil {
			return err
		}
		e.sch = sch
		recompose = true
	}
	if recompose {
		e.plan = sched.Compose(e.adv, e.sch)
	}
	return nil
}

// System exposes the engine's simulation for post-run inspection (decision
// state, snapshots). Valid until Release.
func (e *TrialEngine) System() *sim.System { return e.sys }

// Plan returns the composed window adversary (the scheduler spliced over
// the adversary) driving the engine's trials.
func (e *TrialEngine) Plan() sim.WindowAdversary { return e.plan }

// Run executes one window-mode trial to the budget.
func (e *TrialEngine) Run(maxWindows int) (sim.RunResult, error) {
	return e.sys.RunWindows(e.plan, maxWindows)
}

// RunUntil executes one window-mode trial to the budget under a cooperative
// stall watchdog (see sim.System.RunWindowsUntil): expired is polled on
// every window boundary, and a true return stops the trial there with
// stalled = true and the partial result. A nil expired is exactly Run.
func (e *TrialEngine) RunUntil(maxWindows int, expired func(windows int) bool) (sim.RunResult, bool, error) {
	return e.sys.RunWindowsUntil(e.plan, maxWindows, expired)
}

// Release returns the engine to its scenario pool for the next trial. The
// caller must not touch the engine (or its System) afterwards. Releasing
// after a failed (erroring or stalled) run is fine: the next acquisition
// rewinds everything.
//
// Release must never be deferred across a running trial. If the trial
// panics, skipping Release is exactly what we want: a panic can unwind the
// system mid-window, leaving internal state (message buffer, payload pools,
// scratch slices) outside anything the Recycle contract anticipates, so the
// poisoned engine is simply dropped for the garbage collector and the next
// acquisition constructs a fresh one. The sweep pipeline's panic isolation
// (Matrix.RunWith) relies on this — it recovers the panic above the call to
// RunPooledTrial, which has already abandoned the engine.
//
// Callers that hold the engine pointer across their own recover (the
// service layer) should call Poison on the recovered engine: Release then
// refuses it even if reached, and the audit counters record the event.
func (e *TrialEngine) Release() {
	if e.poisoned {
		engineStats.blockedReleases.Add(1)
		return
	}
	engineStats.released.Add(1)
	poolFor(e.key).Put(e)
}

// Poison permanently marks the engine unusable: a subsequent Release is a
// counted no-op, so the instance can never be re-served from its pool. Call
// it after recovering a panic that unwound the engine mid-trial (the
// engine's internal state is outside anything the Recycle contract
// anticipates) — the garbage collector reclaims it and the next acquisition
// builds fresh.
func (e *TrialEngine) Poison() {
	if !e.poisoned {
		e.poisoned = true
		engineStats.poisoned.Add(1)
	}
}

// RunPooledTrial acquires a pooled engine, runs one window-mode trial of
// the named scenario at p, and releases the engine: the steady-state trial
// path shared by the sweep matrix and the experiment drivers. Release is a
// plain call, not a defer — see Release for why a panicking trial must
// abandon its engine rather than pool it.
func RunPooledTrial(algName, advName, schedName string, p Params, maxWindows int) (sim.RunResult, error) {
	e, err := AcquireTrial(algName, advName, schedName, p)
	if err != nil {
		return sim.RunResult{}, err
	}
	res, err := e.Run(maxWindows)
	e.Release()
	return res, err
}
