package registry

import (
	"fmt"

	"asyncagree/internal/parallel"
	"asyncagree/internal/sim"
	"asyncagree/internal/stats"
)

// Size is one (n, t) system shape.
type Size struct {
	// N is the processor count, T the fault budget.
	N, T int
}

// String implements fmt.Stringer.
func (s Size) String() string { return fmt.Sprintf("%d:%d", s.N, s.T) }

// Matrix describes a scenario sweep: the cross-product of algorithms ×
// adversaries × schedulers × sizes × input patterns, each cell run once per
// seed as an independent trial. Empty axes default to "everything
// registered" (or the DefaultMatrix grid for sizes/inputs/seeds), so the
// zero Matrix runs the full compatible cross-product.
//
// Expansion skips two kinds of cells without error: combinations a
// compatibility predicate rejects — the adversary's against the algorithm,
// or the scheduler's against the (algorithm, adversary) pairing — counted
// in Sweep.Incompatible, and sizes the algorithm's validation rejects
// (recorded in Sweep.Skipped, e.g. the core algorithm at t >= n/6).
// Everything that remains must run cleanly.
type Matrix struct {
	// Algorithms lists algorithm names; empty = all registered.
	Algorithms []string
	// Adversaries lists adversary names; empty = all registered.
	Adversaries []string
	// Schedulers lists delivery-scheduler names; empty = all registered.
	// The "adversary" scheduler keeps the adversary's own sender sets, so
	// a sweep restricted to it runs exactly the pre-scheduler trials with
	// identical per-trial results (the rendered table still gains a
	// scheduler column).
	Schedulers []string
	// Sizes lists (n, t) shapes; empty = DefaultMatrix().Sizes.
	Sizes []Size
	// Inputs lists input pattern names; empty = DefaultMatrix().Inputs.
	Inputs []string
	// Seeds lists per-trial seeds; empty = DefaultMatrix().Seeds.
	Seeds []uint64
	// MaxWindows is the per-trial window budget; 0 = DefaultMatrix().MaxWindows.
	MaxWindows int
}

// DefaultMatrix returns the default sweep grid: every registered algorithm
// under every compatible adversary and delivery scheduler at four sizes
// (27:3 is the smallest shape the committee algorithm's default
// parameterization supports), split and unanimous-1 inputs, three seeds.
func DefaultMatrix() Matrix {
	return Matrix{
		Sizes:      []Size{{N: 12, T: 1}, {N: 18, T: 2}, {N: 24, T: 3}, {N: 27, T: 3}},
		Inputs:     []string{"split", "ones"},
		Seeds:      []uint64{1, 2, 3},
		MaxWindows: 20000,
	}
}

// Cell identifies one aggregated sweep entry.
type Cell struct {
	// Algorithm, Adversary, Scheduler, and Input are the registry keys of
	// the cell's coordinates along each named axis.
	Algorithm, Adversary, Scheduler, Input string
	// Size is the cell's (n, t) shape.
	Size Size
}

// CellResult aggregates the seeded trials of one cell.
type CellResult struct {
	Cell
	// Trials is the number of seeds run; Decided how many of them reached
	// universal decision within the window budget.
	Trials, Decided int
	// AgreeViol and ValidViol count trials violating agreement or validity.
	AgreeViol, ValidViol int
	// MeanWindows is the mean window count of the decided trials (0 when
	// none decided).
	MeanWindows float64
	// MaxChain is the largest message-chain depth observed in any trial.
	MaxChain int
}

// Sweep is the aggregated result of Matrix.Run.
type Sweep struct {
	// Cells holds one aggregated row per expanded cell, in deterministic
	// expansion order (algorithm-major, then adversary, scheduler, size,
	// input).
	Cells []CellResult
	// TrialCount is the total number of trials executed.
	TrialCount int
	// Incompatible counts combinations skipped by a compatibility
	// predicate: (algorithm, adversary, size) triples the adversary
	// rejects, plus (algorithm, adversary, scheduler, size) quadruples the
	// scheduler rejects (input patterns do not affect compatibility, so
	// both are counted before the input axis expands).
	Incompatible int
	// Skipped records cells whose size failed the algorithm's parameter
	// validation, e.g. "core 12:3: ... t >= n/6".
	Skipped []string
}

// trialSpec is one fully expanded trial.
type trialSpec struct {
	cell int // index into the expanded cell list
	Cell
	seed       uint64
	maxWindows int
}

// expand resolves defaults and produces the deterministic cell and trial
// lists, plus the skip records.
func (m Matrix) expand() (cells []Cell, trials []trialSpec, sweep *Sweep, err error) {
	if len(m.Algorithms) == 0 {
		m.Algorithms = AlgorithmNames()
	}
	if len(m.Adversaries) == 0 {
		m.Adversaries = AdversaryNames()
	}
	if len(m.Schedulers) == 0 {
		m.Schedulers = SchedulerNames()
	}
	def := DefaultMatrix()
	if len(m.Sizes) == 0 {
		m.Sizes = def.Sizes
	}
	if len(m.Inputs) == 0 {
		m.Inputs = def.Inputs
	}
	if len(m.Seeds) == 0 {
		m.Seeds = def.Seeds
	}
	if m.MaxWindows <= 0 {
		m.MaxWindows = def.MaxWindows
	}

	sweep = &Sweep{}
	for _, pattern := range m.Inputs {
		if _, err := Inputs(pattern, 1, 1); err != nil {
			return nil, nil, nil, err
		}
	}
	for _, algName := range m.Algorithms {
		alg, err := LookupAlgorithm(algName)
		if err != nil {
			return nil, nil, nil, err
		}
		for _, advName := range m.Adversaries {
			adv, err := LookupAdversary(advName)
			if err != nil {
				return nil, nil, nil, err
			}
			for _, schedName := range m.Schedulers {
				sch, err := LookupScheduler(schedName)
				if err != nil {
					return nil, nil, nil, err
				}
				for _, size := range m.Sizes {
					p := Params{N: size.N, T: size.T}
					if verr := alg.Validate(p); verr != nil {
						if advName == m.Adversaries[0] && schedName == m.Schedulers[0] {
							// Record an invalid size once per algorithm,
							// not once per adversary/scheduler pairing.
							sweep.Skipped = append(sweep.Skipped,
								fmt.Sprintf("%s %s: %v", algName, size, verr))
						}
						continue
					}
					if !adv.Compatible(alg, p) {
						// An adversary-level rejection is independent of
						// the scheduler: count the triple once, not once
						// per scheduler.
						if schedName == m.Schedulers[0] {
							sweep.Incompatible++
						}
						continue
					}
					if !sch.WindowRunnable(alg, adv, p) {
						sweep.Incompatible++
						continue
					}
					for _, pattern := range m.Inputs {
						cell := Cell{Algorithm: algName, Adversary: advName,
							Scheduler: schedName, Input: pattern, Size: size}
						idx := len(cells)
						cells = append(cells, cell)
						for _, seed := range m.Seeds {
							trials = append(trials, trialSpec{
								cell: idx, Cell: cell, seed: seed, maxWindows: m.MaxWindows,
							})
						}
					}
				}
			}
		}
	}
	return cells, trials, sweep, nil
}

// runTrial executes one expanded trial through the pooled engine: acquire
// (recycling a finished System + adversary + scheduler when the scenario
// pool has one), run window mode to the budget, release. Pooled execution
// is byte-identical to runTrialFresh (test-asserted).
func runTrial(ts trialSpec) (sim.RunResult, error) {
	inputs, err := Inputs(ts.Input, ts.Size.N, ts.seed)
	if err != nil {
		return sim.RunResult{}, err
	}
	p := Params{N: ts.Size.N, T: ts.Size.T, Inputs: inputs, Seed: ts.seed}
	return RunPooledTrial(ts.Algorithm, ts.Adversary, ts.Scheduler, p, ts.maxWindows)
}

// runTrialFresh is the pre-pool path — build a fresh system and fresh
// adversary + scheduler state from the seed — kept as the reference
// implementation the recycled path is equivalence-tested against.
func runTrialFresh(ts trialSpec) (sim.RunResult, error) {
	inputs, err := Inputs(ts.Input, ts.Size.N, ts.seed)
	if err != nil {
		return sim.RunResult{}, err
	}
	p := Params{N: ts.Size.N, T: ts.Size.T, Inputs: inputs, Seed: ts.seed}
	sys, err := NewSystem(ts.Algorithm, p)
	if err != nil {
		return sim.RunResult{}, err
	}
	adv, err := NewScheduledAdversary(ts.Adversary, ts.Scheduler, ts.Algorithm, p)
	if err != nil {
		return sim.RunResult{}, err
	}
	return sys.RunWindows(adv, ts.maxWindows)
}

// mapFn abstracts over the parallel and serial trial runners so both paths
// share expansion and aggregation verbatim.
type mapFn func(n int, fn func(i int) (sim.RunResult, error)) ([]sim.RunResult, error)

func serialMap(n int, fn func(i int) (sim.RunResult, error)) ([]sim.RunResult, error) {
	out := make([]sim.RunResult, n)
	for i := 0; i < n; i++ {
		r, err := fn(i)
		if err != nil {
			return out, err
		}
		out[i] = r
	}
	return out, nil
}

// Run expands the matrix and fans the trials across the deterministic
// worker pool. The aggregated output is byte-identical to RunSerial: every
// trial derives all randomness from its seed, draws a private (pooled or
// fresh — indistinguishable) system + adversary state, and lands its result
// in its own index slot.
func (m Matrix) Run() (*Sweep, error) { return m.run(parallel.Map[sim.RunResult], runTrial) }

// RunSerial runs the same sweep on a plain serial loop. It exists to make
// the parallel path's determinism testable and to time parallel speedups.
func (m Matrix) RunSerial() (*Sweep, error) { return m.run(serialMap, runTrial) }

// runFresh runs the sweep serially through the construct-per-trial
// reference path (no pooling); recycle tests compare it against Run.
func (m Matrix) runFresh() (*Sweep, error) { return m.run(serialMap, runTrialFresh) }

func (m Matrix) run(runAll mapFn, trial func(trialSpec) (sim.RunResult, error)) (*Sweep, error) {
	cells, trials, sweep, err := m.expand()
	if err != nil {
		return nil, err
	}
	results, err := runAll(len(trials), func(i int) (sim.RunResult, error) {
		return trial(trials[i])
	})
	if err != nil {
		return nil, err
	}

	sweep.TrialCount = len(trials)
	sweep.Cells = make([]CellResult, len(cells))
	for i, c := range cells {
		sweep.Cells[i] = CellResult{Cell: c}
	}
	windowSums := make([]int, len(cells))
	for i, ts := range trials {
		res := results[i]
		cr := &sweep.Cells[ts.cell]
		cr.Trials++
		if res.AllDecided {
			cr.Decided++
			windowSums[ts.cell] += res.Windows
		}
		if !res.Agreement {
			cr.AgreeViol++
		}
		if !res.Validity {
			cr.ValidViol++
		}
		if res.MaxChainDepth > cr.MaxChain {
			cr.MaxChain = res.MaxChainDepth
		}
	}
	for i := range sweep.Cells {
		if d := sweep.Cells[i].Decided; d > 0 {
			sweep.Cells[i].MeanWindows = float64(windowSums[i]) / float64(d)
		}
	}
	return sweep, nil
}

// Table renders the sweep as an aligned text table in expansion order.
func (s *Sweep) Table() *stats.Table {
	table := stats.NewTable("algorithm", "adversary", "scheduler", "inputs", "n", "t",
		"trials", "decided", "agree-viol", "valid-viol", "mean-windows", "max-chain")
	for _, c := range s.Cells {
		table.AddRow(c.Algorithm, c.Adversary, c.Scheduler, c.Input, c.Size.N, c.Size.T,
			c.Trials, fmt.Sprintf("%d/%d", c.Decided, c.Trials),
			c.AgreeViol, c.ValidViol, c.MeanWindows, c.MaxChain)
	}
	return table
}

// SafetyViolations counts agreement/validity violations in cells whose
// algorithm guarantees safety with probability 1. Any non-zero count is a
// bug, never an expected outcome.
func (s *Sweep) SafetyViolations() int {
	total := 0
	for _, c := range s.Cells {
		alg, err := LookupAlgorithm(c.Algorithm)
		if err != nil || !alg.SafetyCertain {
			continue
		}
		total += c.AgreeViol + c.ValidViol
	}
	return total
}
