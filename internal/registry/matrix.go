package registry

import (
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"sync/atomic"
	"time"

	"asyncagree/internal/faultinject"
	"asyncagree/internal/parallel"
	"asyncagree/internal/sim"
	"asyncagree/internal/stats"
)

// Size is one (n, t) system shape.
type Size struct {
	// N is the processor count, T the fault budget.
	N, T int
}

// String implements fmt.Stringer.
func (s Size) String() string { return fmt.Sprintf("%d:%d", s.N, s.T) }

// Matrix describes a scenario sweep: the cross-product of algorithms ×
// adversaries × schedulers × sizes × input patterns, each cell run once per
// seed as an independent trial. Empty axes default to "everything
// registered" (or the DefaultMatrix grid for sizes/inputs/seeds), so the
// zero Matrix runs the full compatible cross-product.
//
// Expansion skips two kinds of cells without error: combinations a
// compatibility predicate rejects — the adversary's against the algorithm,
// or the scheduler's against the (algorithm, adversary) pairing — counted
// in Sweep.Incompatible, and sizes the algorithm's validation rejects
// (recorded in Sweep.Skipped, e.g. the core algorithm at t >= n/6).
// Everything that remains must run cleanly.
type Matrix struct {
	// Algorithms lists algorithm names; empty = all registered.
	Algorithms []string
	// Adversaries lists adversary names; empty = all registered.
	Adversaries []string
	// Schedulers lists delivery-scheduler names; empty = all registered.
	// The "adversary" scheduler keeps the adversary's own sender sets, so
	// a sweep restricted to it runs exactly the pre-scheduler trials with
	// identical per-trial results (the rendered table still gains a
	// scheduler column).
	Schedulers []string
	// Sizes lists (n, t) shapes; empty = DefaultMatrix().Sizes.
	Sizes []Size
	// Inputs lists input pattern names; empty = DefaultMatrix().Inputs.
	Inputs []string
	// Seeds lists per-trial seeds; empty = DefaultMatrix().Seeds.
	Seeds []uint64
	// MaxWindows is the per-trial window budget; 0 = DefaultMatrix().MaxWindows.
	MaxWindows int
	// ShardWorkers sets the intra-trial parallelism of every trial (see
	// Params.ShardWorkers); <= 1 runs the serial facade. Per-trial output is
	// byte-identical at any setting, so it is a performance knob, not a grid
	// axis: it is deliberately excluded from GridSignature, and a sweep
	// checkpointed at one worker count may resume at another.
	ShardWorkers int
	// DisableColumnar turns off the columnar vote-tally fast path for every
	// trial (see Params.DisableColumnar). Like ShardWorkers it is a
	// performance knob, not a grid axis: per-trial output is byte-identical
	// either way, it is excluded from GridSignature, and a sweep
	// checkpointed at one setting may resume at another.
	DisableColumnar bool
}

// DefaultMatrix returns the default sweep grid: every registered algorithm
// under every compatible adversary and delivery scheduler at four sizes
// (27:3 is the smallest shape the committee algorithm's default
// parameterization supports), split and unanimous-1 inputs, three seeds.
func DefaultMatrix() Matrix {
	return Matrix{
		Sizes:      []Size{{N: 12, T: 1}, {N: 18, T: 2}, {N: 24, T: 3}, {N: 27, T: 3}},
		Inputs:     []string{"split", "ones"},
		Seeds:      []uint64{1, 2, 3},
		MaxWindows: 20000,
	}
}

// Cell identifies one aggregated sweep entry.
type Cell struct {
	// Algorithm, Adversary, Scheduler, and Input are the registry keys of
	// the cell's coordinates along each named axis.
	Algorithm, Adversary, Scheduler, Input string
	// Size is the cell's (n, t) shape.
	Size Size
}

// CellResult aggregates the seeded trials of one cell.
type CellResult struct {
	Cell
	// Trials is the number of seeds run; Decided how many of them reached
	// universal decision within the window budget.
	Trials, Decided int
	// AgreeViol and ValidViol count trials violating agreement or validity.
	AgreeViol, ValidViol int
	// MeanWindows is the mean window count of the decided trials (0 when
	// none decided).
	MeanWindows float64
	// MaxChain is the largest message-chain depth observed in any trial.
	MaxChain int
}

// Sweep is the aggregated result of Matrix.Run.
type Sweep struct {
	// Cells holds one aggregated row per expanded cell, in deterministic
	// expansion order (algorithm-major, then adversary, scheduler, size,
	// input).
	Cells []CellResult
	// TrialCount is the total number of trials executed.
	TrialCount int
	// Incompatible counts combinations skipped by a compatibility
	// predicate: (algorithm, adversary, size) triples the adversary
	// rejects, plus (algorithm, adversary, scheduler, size) quadruples the
	// scheduler rejects (input patterns do not affect compatibility, so
	// both are counted before the input axis expands).
	Incompatible int
	// Skipped records cells whose size failed the algorithm's parameter
	// validation, e.g. "core 12:3: ... t >= n/6".
	Skipped []string
	// Faulted counts trials that ended in a fault record instead of a clean
	// result: panics, watchdog deadlines, trial errors, and quarantine
	// skips. Faulted trials never enter the per-cell aggregates.
	Faulted int
	// Quarantined records cells quarantined after QuarantineAfter
	// consecutive faults, in the order quarantine fired (the same reporting
	// shape as Skipped — the sweep proceeds without them).
	Quarantined []string
	// SinkFailures records sinks dropped mid-run (or failing their final
	// flush) after their retry budget was exhausted. The sweep and its
	// aggregates are unaffected; callers surface the loss in the exit
	// status.
	SinkFailures []string
}

// Healthy reports whether the sweep ran with no faulted trials, no
// quarantined cells, and no dropped sinks.
func (s *Sweep) Healthy() bool {
	return s.Faulted == 0 && len(s.Quarantined) == 0 && len(s.SinkFailures) == 0
}

// trialSpec is one fully expanded trial.
type trialSpec struct {
	cell int // index into the expanded cell list
	Cell
	seed            uint64
	maxWindows      int
	shardWorkers    int
	disableColumnar bool
}

// key renders the trial's stable identity. It delegates to
// TrialRecord.Key so exactly one key format exists — the checkpoint-prefix
// verification in RunWith depends on the two staying byte-identical.
func (ts trialSpec) key() string {
	return newTrialRecord(0, ts, sim.RunResult{}).Key()
}

// resolve fills empty axes with their defaults, returning the fully
// explicit matrix every expansion-order computation works from.
func (m Matrix) resolve() Matrix {
	if len(m.Algorithms) == 0 {
		m.Algorithms = AlgorithmNames()
	}
	if len(m.Adversaries) == 0 {
		m.Adversaries = AdversaryNames()
	}
	if len(m.Schedulers) == 0 {
		m.Schedulers = SchedulerNames()
	}
	def := DefaultMatrix()
	if len(m.Sizes) == 0 {
		m.Sizes = def.Sizes
	}
	if len(m.Inputs) == 0 {
		m.Inputs = def.Inputs
	}
	if len(m.Seeds) == 0 {
		m.Seeds = def.Seeds
	}
	if m.MaxWindows <= 0 {
		m.MaxWindows = def.MaxWindows
	}
	return m
}

// GridSignature renders the resolved grid as a canonical one-line string.
// Checkpoint files record it so a resume against different axes (which
// would silently misalign trial indices) is rejected instead of merged.
func (m Matrix) GridSignature() string {
	m = m.resolve()
	var b strings.Builder
	join := func(label string, parts []string) {
		b.WriteString(label)
		b.WriteByte('=')
		b.WriteString(strings.Join(parts, ","))
		b.WriteByte(' ')
	}
	join("algs", m.Algorithms)
	join("advs", m.Adversaries)
	join("scheds", m.Schedulers)
	sizes := make([]string, len(m.Sizes))
	for i, s := range m.Sizes {
		sizes[i] = s.String()
	}
	join("sizes", sizes)
	join("inputs", m.Inputs)
	seeds := make([]string, len(m.Seeds))
	for i, s := range m.Seeds {
		seeds[i] = fmt.Sprintf("%d", s)
	}
	join("seeds", seeds)
	fmt.Fprintf(&b, "max-windows=%d", m.MaxWindows)
	return b.String()
}

// expand resolves defaults and produces the deterministic cell list and the
// skip records. Trials are never materialized: trial i is derived on demand
// from the cell list (cells[i/len(Seeds)], seed Seeds[i%len(Seeds)]), so the
// sweep's retained state is O(cells) regardless of the seed count. The
// returned Matrix is the resolved grid the trial derivation indexes into.
func (m Matrix) expand() (cells []Cell, resolved Matrix, sweep *Sweep, err error) {
	m = m.resolve()
	sweep = &Sweep{}
	for _, pattern := range m.Inputs {
		if _, err := Inputs(pattern, 1, 1); err != nil {
			return nil, m, nil, err
		}
	}
	for _, algName := range m.Algorithms {
		alg, err := LookupAlgorithm(algName)
		if err != nil {
			return nil, m, nil, err
		}
		for _, advName := range m.Adversaries {
			adv, err := LookupAdversary(advName)
			if err != nil {
				return nil, m, nil, err
			}
			for _, schedName := range m.Schedulers {
				sch, err := LookupScheduler(schedName)
				if err != nil {
					return nil, m, nil, err
				}
				for _, size := range m.Sizes {
					p := Params{N: size.N, T: size.T}
					if verr := alg.Validate(p); verr != nil {
						if advName == m.Adversaries[0] && schedName == m.Schedulers[0] {
							// Record an invalid size once per algorithm,
							// not once per adversary/scheduler pairing.
							sweep.Skipped = append(sweep.Skipped,
								fmt.Sprintf("%s %s: %v", algName, size, verr))
						}
						continue
					}
					if !adv.Compatible(alg, p) {
						// An adversary-level rejection is independent of
						// the scheduler: count the triple once, not once
						// per scheduler.
						if schedName == m.Schedulers[0] {
							sweep.Incompatible++
						}
						continue
					}
					if !sch.WindowRunnable(alg, adv, p) {
						sweep.Incompatible++
						continue
					}
					for _, pattern := range m.Inputs {
						cells = append(cells, Cell{Algorithm: algName, Adversary: advName,
							Scheduler: schedName, Input: pattern, Size: size})
					}
				}
			}
		}
	}
	return cells, m, sweep, nil
}

// specAt derives trial i of the expanded grid: seeds iterate innermost per
// cell, matching the historical materialized expansion order. m must be the
// resolved matrix returned by expand.
func (m Matrix) specAt(cells []Cell, i int) trialSpec {
	s := len(m.Seeds)
	return trialSpec{
		cell: i / s, Cell: cells[i/s],
		seed: m.Seeds[i%s], maxWindows: m.MaxWindows,
		shardWorkers: m.ShardWorkers, disableColumnar: m.DisableColumnar,
	}
}

// allSpecs materializes every trial spec in expansion order. The streaming
// pipeline never calls this (trials are derived one at a time by specAt);
// it exists for equivalence tests that iterate the trial list directly.
func (m Matrix) allSpecs() ([]trialSpec, error) {
	cells, resolved, _, err := m.expand()
	if err != nil {
		return nil, err
	}
	specs := make([]trialSpec, 0, len(cells)*len(resolved.Seeds))
	for i := 0; i < len(cells)*len(resolved.Seeds); i++ {
		specs = append(specs, resolved.specAt(cells, i))
	}
	return specs, nil
}

// runTrial executes one expanded trial through the pooled engine: acquire
// (recycling a finished System + adversary + scheduler when the scenario
// pool has one), run window mode to the budget, release. Pooled execution
// is byte-identical to runTrialFresh (test-asserted).
func runTrial(ts trialSpec) (sim.RunResult, error) {
	inputs, err := Inputs(ts.Input, ts.Size.N, ts.seed)
	if err != nil {
		return sim.RunResult{}, err
	}
	p := Params{N: ts.Size.N, T: ts.Size.T, Inputs: inputs, Seed: ts.seed,
		ShardWorkers: ts.shardWorkers, DisableColumnar: ts.disableColumnar}
	return RunPooledTrial(ts.Algorithm, ts.Adversary, ts.Scheduler, p, ts.maxWindows)
}

// runTrialUntil is runTrial with the cooperative stall watchdog threaded
// through to the window loop; a nil expired is exactly runTrial. On a
// stalled trial the engine is still released (a rewind handles a half-run
// system); only a panic — which unwinds past the Release call — abandons it.
func runTrialUntil(ts trialSpec, expired func(windows int) bool) (sim.RunResult, bool, error) {
	inputs, err := Inputs(ts.Input, ts.Size.N, ts.seed)
	if err != nil {
		return sim.RunResult{}, false, err
	}
	p := Params{N: ts.Size.N, T: ts.Size.T, Inputs: inputs, Seed: ts.seed,
		ShardWorkers: ts.shardWorkers, DisableColumnar: ts.disableColumnar}
	e, err := AcquireTrial(ts.Algorithm, ts.Adversary, ts.Scheduler, p)
	if err != nil {
		return sim.RunResult{}, false, err
	}
	res, stalled, err := e.RunUntil(ts.maxWindows, expired)
	e.Release()
	return res, stalled, err
}

// runTrialFresh is the pre-pool path — build a fresh system and fresh
// adversary + scheduler state from the seed — kept as the reference
// implementation the recycled path is equivalence-tested against.
func runTrialFresh(ts trialSpec) (sim.RunResult, error) {
	inputs, err := Inputs(ts.Input, ts.Size.N, ts.seed)
	if err != nil {
		return sim.RunResult{}, err
	}
	p := Params{N: ts.Size.N, T: ts.Size.T, Inputs: inputs, Seed: ts.seed,
		ShardWorkers: ts.shardWorkers, DisableColumnar: ts.disableColumnar}
	sys, err := NewSystem(ts.Algorithm, p)
	if err != nil {
		return sim.RunResult{}, err
	}
	adv, err := NewScheduledAdversary(ts.Adversary, ts.Scheduler, ts.Algorithm, p)
	if err != nil {
		return sim.RunResult{}, err
	}
	return sys.RunWindows(adv, ts.maxWindows)
}

// ErrInterrupted is returned by RunWith when RunOptions.Stop requested a
// clean stop: everything emitted so far is a consistent index-order prefix
// (already flushed through the sinks), and a resumed run completes the rest
// with output identical to an uninterrupted one.
var ErrInterrupted = errors.New("registry: sweep interrupted")

// RunOptions configures the streaming result pipeline of Matrix.RunWith.
// The zero value reproduces Matrix.Run exactly.
type RunOptions struct {
	// Sinks receive every completed live trial in index order, then a
	// final Flush (also on error/interrupt, so partial work is never
	// dropped). Replayed Resume records do not re-enter the sinks — their
	// bytes are already in the sink outputs of the interrupted run.
	Sinks []ResultSink
	// Resume holds the completed-trial prefix of an earlier interrupted
	// run (loaded from its checkpoint). Records must match the expanded
	// grid's leading trial keys exactly — RunWith re-verifies and fails on
	// mismatch — and their results flow through aggregation (not the
	// sinks) instead of re-executing the trials.
	Resume []TrialRecord
	// Stop is polled on the serial emission path after every emitted
	// trial, and again before each trial starts (workers may already have
	// claimed up to a reorder window of trials when it first returns
	// true); returning true stops the sweep cleanly with ErrInterrupted
	// once in-flight trials drain. Everything emitted before the stop is
	// already in the sinks.
	Stop func() bool
	// Progress, if set, observes the emission frontier after every trial:
	// done trials out of total. It runs on the serial emission path —
	// keep it cheap.
	Progress func(done, total int)
	// Serial runs the trials on a plain serial loop instead of the worker
	// pool (byte-identical output, used by determinism tests and -serial).
	Serial bool
	// TrialDeadline is the per-trial wall-clock budget, enforced
	// cooperatively on window boundaries alongside MaxWindows: a trial that
	// exceeds it becomes a recorded FaultDeadline outcome instead of a hung
	// worker. 0 disables the watchdog. Because real time is involved, which
	// trials fault can differ run to run — but clean records are
	// byte-identical either way, and a given run's record stream is still
	// strictly index-ordered.
	TrialDeadline time.Duration
	// QuarantineAfter is the number of consecutive faulted trials after
	// which a cell is quarantined: its remaining trials are skipped with
	// FaultQuarantined records and the cell is reported in
	// Sweep.Quarantined. 0 selects DefaultQuarantineAfter; negative
	// disables quarantine.
	QuarantineAfter int
	// Inject is the deterministic fault-injection plan (nil injects
	// nothing). RunWith materializes seeded selections against the expanded
	// trial count before the first trial runs.
	Inject *faultinject.Plan

	// trialFn overrides the trial executor (the pooled engine by default);
	// recycle tests substitute the construct-per-trial reference path. The
	// override bypasses the stall watchdog and fault injection.
	trialFn func(trialSpec) (sim.RunResult, error)
}

// DefaultQuarantineAfter is the consecutive-fault threshold that
// quarantines a cell when RunOptions.QuarantineAfter is zero.
const DefaultQuarantineAfter = 3

// deadlineCheckInterval is how many windows pass between wall-clock reads
// of the TrialDeadline watchdog: rare enough that time.Since stays off the
// hot window loop, frequent enough (windows are sub-millisecond) that a
// runaway trial is caught close to its deadline.
const deadlineCheckInterval = 32

// trialOutcome is what the hardened trial executor hands the emission path:
// a clean result, or a fault classification with a human-readable
// description (the raw material of a fault TrialRecord).
type trialOutcome struct {
	res   sim.RunResult
	kind  string // "" = clean; otherwise a Fault* constant
	fault string
}

// firstLine truncates a fault description (which may carry a stack) to its
// first line for single-line reports.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// cellAgg folds trial results into per-cell aggregates online — the O(cells)
// state that replaces the historical O(trials) result slice. The arithmetic
// is integer until the final mean division, so aggregation is byte-identical
// under any emission interleaving (emission is index-ordered anyway).
type cellAgg struct {
	sweep      *Sweep
	windowSums []int
}

func newCellAgg(sweep *Sweep, cells []Cell) *cellAgg {
	sweep.Cells = make([]CellResult, len(cells))
	for i, c := range cells {
		sweep.Cells[i] = CellResult{Cell: c}
	}
	return &cellAgg{sweep: sweep, windowSums: make([]int, len(cells))}
}

func (a *cellAgg) consume(cell int, res sim.RunResult) {
	cr := &a.sweep.Cells[cell]
	cr.Trials++
	if res.AllDecided {
		cr.Decided++
		a.windowSums[cell] += res.Windows
	}
	if !res.Agreement {
		cr.AgreeViol++
	}
	if !res.Validity {
		cr.ValidViol++
	}
	if res.MaxChainDepth > cr.MaxChain {
		cr.MaxChain = res.MaxChainDepth
	}
}

func (a *cellAgg) finalize() {
	for i := range a.sweep.Cells {
		if d := a.sweep.Cells[i].Decided; d > 0 {
			a.sweep.Cells[i].MeanWindows = float64(a.windowSums[i]) / float64(d)
		}
	}
}

// Run expands the matrix and fans the trials across the deterministic
// worker pool, reducing per-cell aggregates online. The output is
// byte-identical to RunSerial: every trial derives all randomness from its
// seed, draws a private (pooled or fresh — indistinguishable) system +
// adversary state, and is delivered to the aggregator in trial-index order.
func (m Matrix) Run() (*Sweep, error) { return m.RunWith(RunOptions{}) }

// RunSerial runs the same sweep on a plain serial loop. It exists to make
// the parallel path's determinism testable and to time parallel speedups.
func (m Matrix) RunSerial() (*Sweep, error) { return m.RunWith(RunOptions{Serial: true}) }

// runFresh runs the sweep serially through the construct-per-trial
// reference path (no pooling); recycle tests compare it against Run.
func (m Matrix) runFresh() (*Sweep, error) {
	return m.RunWith(RunOptions{Serial: true, trialFn: runTrialFresh})
}

// RunWith expands the matrix and streams every trial through the result
// pipeline: trials execute across the worker pool (or serially), results
// are delivered in strictly increasing trial-index order to the per-cell
// online aggregator and the configured sinks, and peak retained result
// memory is O(cells) + the pool's bounded reorder window — independent of
// the trial count. See RunOptions for resume, interruption, and progress.
func (m Matrix) RunWith(opts RunOptions) (*Sweep, error) {
	cells, resolved, sweep, err := m.expand()
	if err != nil {
		return nil, err
	}
	total := len(cells) * len(resolved.Seeds)
	if len(opts.Resume) > total {
		return nil, fmt.Errorf("registry: checkpoint has %d trials, grid only %d", len(opts.Resume), total)
	}
	for i, rec := range opts.Resume {
		if want := resolved.specAt(cells, i).key(); rec.Key() != want {
			return nil, fmt.Errorf("registry: checkpoint trial %d is %q, grid expects %q (was the grid changed?)",
				i, rec.Key(), want)
		}
	}
	inject := opts.Inject
	inject.Materialize(total)
	quarAfter := opts.QuarantineAfter
	if quarAfter == 0 {
		quarAfter = DefaultQuarantineAfter
	}

	// execute runs one live trial through the hardened path: fault
	// injection, the stall watchdog, and panic recovery. A panic anywhere
	// below — algorithm step, adversary planning, the engine itself —
	// becomes a FaultPanic outcome carrying the stack; the poisoned engine
	// was abandoned by the unwind (see TrialEngine.Release).
	execute := func(i int, ts trialSpec) (out trialOutcome) {
		defer func() {
			if r := recover(); r != nil {
				out = trialOutcome{kind: FaultPanic,
					fault: fmt.Sprintf("panic: %v\n%s", r, debug.Stack())}
			}
		}()
		if opts.trialFn != nil {
			res, err := opts.trialFn(ts)
			if err != nil {
				return trialOutcome{res: res, kind: FaultError, fault: err.Error()}
			}
			return trialOutcome{res: res}
		}
		var expired func(windows int) bool
		stallDesc := ""
		if inject.ShouldPanic(i) {
			// Panic on the first watchdog poll — after the engine is
			// acquired, so the injected fault exercises the real
			// poisoned-engine discard path.
			key := ts.key()
			expired = func(int) bool {
				panic(fmt.Sprintf("faultinject: injected panic (trial %d, %s)", i, key))
			}
		} else if w, ok := inject.ShouldStall(i); ok {
			stallDesc = fmt.Sprintf("faultinject: injected stall at window %d", w)
			expired = func(windows int) bool { return windows >= w }
		} else if opts.TrialDeadline > 0 {
			start := time.Now()
			deadline := opts.TrialDeadline
			stallDesc = fmt.Sprintf("trial exceeded wall-clock deadline %s", deadline)
			expired = func(windows int) bool {
				return windows%deadlineCheckInterval == 0 && time.Since(start) > deadline
			}
		}
		res, stalled, err := runTrialUntil(ts, expired)
		if err != nil {
			return trialOutcome{res: res, kind: FaultError,
				fault: fmt.Sprintf("%v (trial %d, %s)", err, i, ts.key())}
		}
		if stalled {
			return trialOutcome{res: res, kind: FaultDeadline,
				fault: fmt.Sprintf("%s after %d windows (trial %d, %s)", stallDesc, res.Windows, i, ts.key())}
		}
		return trialOutcome{res: res}
	}

	agg := newCellAgg(sweep, cells)
	// Quarantine bookkeeping lives on the serial emission path, so the
	// decision is a pure function of the index-ordered record stream —
	// identical on serial and parallel runs. quarFlags is only a claim-time
	// skip hint for workers; it is monotone (set strictly before the flagged
	// cell's later trials are emitted), so acting on it early never changes
	// the emitted records, just saves the work of running a doomed trial.
	var (
		quarFlags   = make([]atomic.Bool, len(cells))
		quarantined = make([]bool, len(cells))
		quarReason  = make([]string, len(cells))
		consec      = make([]int, len(cells))
		sinkDropped = make([]bool, len(opts.Sinks))
	)
	fn := func(i int) (trialOutcome, error) {
		if opts.Stop != nil && opts.Stop() {
			return trialOutcome{}, ErrInterrupted
		}
		if i < len(opts.Resume) {
			rec := opts.Resume[i]
			return trialOutcome{res: rec.Result(), kind: rec.FaultKind, fault: rec.Fault}, nil
		}
		ts := resolved.specAt(cells, i)
		if quarFlags[ts.cell].Load() {
			return trialOutcome{kind: FaultQuarantined}, nil // emit fills the reason
		}
		return execute(i, ts), nil
	}
	emit := func(i int, out trialOutcome) error {
		cell := i / len(resolved.Seeds)
		if quarantined[cell] {
			// Deterministic rewrite: once a cell is quarantined every later
			// trial of it — whether skipped at claim time or already
			// executed by a worker that ran ahead — emits the same record.
			out = trialOutcome{kind: FaultQuarantined, fault: quarReason[cell]}
		}
		if out.kind == "" {
			agg.consume(cell, out.res)
			consec[cell] = 0
		} else {
			sweep.Faulted++
			if out.kind != FaultQuarantined {
				consec[cell]++
				if quarAfter > 0 && consec[cell] >= quarAfter && !quarantined[cell] {
					c := cells[cell]
					quarantined[cell] = true
					quarReason[cell] = fmt.Sprintf("cell quarantined after %d consecutive faults", consec[cell])
					quarFlags[cell].Store(true)
					sweep.Quarantined = append(sweep.Quarantined,
						fmt.Sprintf("%s/%s/%s/%s %s: quarantined after %d consecutive faults (last: %s: %s)",
							c.Algorithm, c.Adversary, c.Scheduler, c.Input, c.Size,
							consec[cell], out.kind, firstLine(out.fault)))
				}
			}
		}
		if i >= len(opts.Resume) {
			rec := newTrialRecord(i, resolved.specAt(cells, i), out.res)
			rec.FaultKind, rec.Fault = out.kind, out.fault
			for si, sink := range opts.Sinks {
				if sinkDropped[si] {
					continue
				}
				if serr := sink.Consume(rec); serr != nil {
					// Degrade, don't abort: the sweep and its aggregates are
					// unaffected by a lost export; the drop is reported and
					// the caller turns it into a non-zero exit.
					sinkDropped[si] = true
					sweep.SinkFailures = append(sweep.SinkFailures,
						fmt.Sprintf("%s: dropped at trial %d: %v", sinkLabel(si, sink), i, serr))
				}
			}
		}
		if opts.Progress != nil {
			opts.Progress(i+1, total)
		}
		// The emission-path check is what makes completed-count stop
		// conditions (cmd/sweep -interrupt-after, and SIGINT observed
		// between emissions) fire deterministically: the claim-time check
		// alone can lag a full reorder window behind on parallel runs.
		if opts.Stop != nil && opts.Stop() {
			return ErrInterrupted
		}
		return nil
	}

	if opts.Serial {
		err = serialStream(total, fn, emit)
	} else {
		err = parallel.Stream(total, 0, fn, emit)
	}
	// Flush even on error/interrupt: everything emitted is a consistent
	// prefix and must reach disk for resume. A failing flush on a sink that
	// is still live degrades like a failing Consume; dropped sinks are
	// still flushed best-effort (earlier durable bytes may be buffered
	// below the failure) with the error already reported.
	for si, sink := range opts.Sinks {
		if ferr := sink.Flush(); ferr != nil && !sinkDropped[si] {
			sinkDropped[si] = true
			sweep.SinkFailures = append(sweep.SinkFailures,
				fmt.Sprintf("%s: final flush failed: %v", sinkLabel(si, sink), ferr))
		}
	}
	if err != nil {
		return nil, err
	}
	sweep.TrialCount = total
	agg.finalize()
	return sweep, nil
}

// serialStream is the serial reference loop for the streaming pipeline —
// the same fn/emit contract as parallel.Stream on a plain loop.
func serialStream[T any](n int, fn func(int) (T, error), emit func(int, T) error) error {
	for i := 0; i < n; i++ {
		res, err := fn(i)
		if err != nil {
			return err
		}
		if err := emit(i, res); err != nil {
			return err
		}
	}
	return nil
}

// Table renders the sweep as an aligned text table in expansion order.
func (s *Sweep) Table() *stats.Table {
	table := stats.NewTable("algorithm", "adversary", "scheduler", "inputs", "n", "t",
		"trials", "decided", "agree-viol", "valid-viol", "mean-windows", "max-chain")
	for _, c := range s.Cells {
		table.AddRow(c.Algorithm, c.Adversary, c.Scheduler, c.Input, c.Size.N, c.Size.T,
			c.Trials, fmt.Sprintf("%d/%d", c.Decided, c.Trials),
			c.AgreeViol, c.ValidViol, c.MeanWindows, c.MaxChain)
	}
	return table
}

// SafetyViolations counts agreement/validity violations in cells whose
// algorithm guarantees safety with probability 1. Any non-zero count is a
// bug, never an expected outcome.
func (s *Sweep) SafetyViolations() int {
	total := 0
	for _, c := range s.Cells {
		alg, err := LookupAlgorithm(c.Algorithm)
		if err != nil || !alg.SafetyCertain {
			continue
		}
		total += c.AgreeViol + c.ValidViol
	}
	return total
}
