package registry

import (
	"fmt"

	"asyncagree/internal/adversary"
	"asyncagree/internal/benor"
	"asyncagree/internal/bracha"
	"asyncagree/internal/committee"
	"asyncagree/internal/core"
	"asyncagree/internal/paxos"
	"asyncagree/internal/sim"
)

// validateCommittee checks the committee algorithm's default
// parameterization at n processors. Beyond the structural Params.Validate
// checks, the promoted survivors must be numerous enough that the final
// committee's internal Bracha instance is feasible (survivors > 3*GroupT);
// below that — n < 27 with the defaults — every processor wedges on an
// infeasible final agreement and the run can never decide.
func validateCommittee(p Params) error {
	params := committee.DefaultParams(p.N)
	if err := params.Validate(); err != nil {
		return err
	}
	numGroups := p.N / params.GroupSize
	if numGroups == 0 {
		numGroups = 1
	}
	if survivors := numGroups * params.SurvivorsPerGroup; survivors <= 3*params.GroupT {
		return fmt.Errorf("registry: committee with n=%d promotes only %d survivors, need > %d for a feasible final committee",
			p.N, survivors, 3*params.GroupT)
	}
	return nil
}

// resolveCoreThresholds returns p's explicit thresholds or the Theorem 4
// defaults, validated either way.
func resolveCoreThresholds(p Params) (core.Thresholds, error) {
	th := p.CoreThresholds
	if th == nil {
		def, err := core.DefaultThresholds(p.N, p.T)
		if err != nil {
			return core.Thresholds{}, err
		}
		th = &def
	}
	if err := th.Validate(p.N, p.T); err != nil {
		return core.Thresholds{}, err
	}
	return *th, nil
}

func init() {
	mustRegisterAlgorithm(Algorithm{
		Name:            "core",
		Description:     "the paper's Section 3 reset-tolerant threshold protocol (Theorem 4, t < n/6)",
		Modes:           ModeWindow | ModeStep,
		ResetTolerant:   true,
		SilenceTolerant: true,
		SafetyCertain:   true,
		// core.Proc touches only its own counters/value on Deliver and reads
		// only its own state on Send (shared vote payloads are interned and
		// immutable), so both window phases shard safely.
		ParallelDelivery: true,
		ParallelSend:     true,
		ColumnarVotes:    true,
		Validate: func(p Params) error {
			_, err := resolveCoreThresholds(p)
			return err
		},
		Factory: func(p Params) (func(sim.ProcID, sim.Bit) sim.Process, error) {
			th, err := resolveCoreThresholds(p)
			if err != nil {
				return nil, err
			}
			return core.NewFactory(p.N, p.T, th), nil
		},
		ClassifyVote: func(m sim.Message) adversary.VoteInfo {
			if _, v, ok := core.ExtractVote(m); ok {
				return adversary.VoteInfo{HasValue: true, Value: v}
			}
			return adversary.VoteInfo{}
		},
		SplitVoteCap: func(p Params) (int, error) {
			th, err := resolveCoreThresholds(p)
			if err != nil {
				return 0, err
			}
			return th.T3 - 1, nil
		},
	})

	mustRegisterAlgorithm(Algorithm{
		Name:            "benor",
		Description:     "Ben-Or 1983 randomized agreement (crash model, t < n/2)",
		Modes:           ModeWindow | ModeStep,
		SilenceTolerant: true,
		SafetyCertain:   true,
		// benor.Proc: per-processor tallies mutated only by the owning
		// receiver; Send reads own round state and pooled boxes it owns.
		ParallelDelivery: true,
		ParallelSend:     true,
		ColumnarVotes:    true,
		Validate: func(p Params) error {
			if p.T < 0 || 2*p.T >= p.N {
				return fmt.Errorf("registry: benor needs t < n/2, got n=%d t=%d", p.N, p.T)
			}
			return nil
		},
		Factory: func(p Params) (func(sim.ProcID, sim.Bit) sim.Process, error) {
			return benor.NewFactory(p.N, p.T), nil
		},
		ClassifyVote: func(m sim.Message) adversary.VoteInfo {
			if _, _, v, ok := benor.ExtractVote(m); ok {
				return adversary.VoteInfo{HasValue: true, Value: v}
			}
			return adversary.VoteInfo{}
		},
		SplitVoteCap: func(p Params) (int, error) { return p.N / 2, nil },
	})

	mustRegisterAlgorithm(Algorithm{
		Name:            "bracha",
		Description:     "Bracha 1984 over reliable broadcast (Byzantine, t < n/3)",
		Modes:           ModeWindow,
		SilenceTolerant: true,
		SafetyCertain:   true,
		// bracha.Proc: shared *rbc.Msg payload boxes are read-only after
		// send (PR 6 contract); all per-instance sets/maps are receiver-own.
		ParallelDelivery: true,
		ParallelSend:     true,
		Validate: func(p Params) error {
			if p.T < 0 || p.N <= 3*p.T {
				return fmt.Errorf("registry: bracha needs n > 3t, got n=%d t=%d", p.N, p.T)
			}
			return nil
		},
		Factory: func(p Params) (func(sim.ProcID, sim.Bit) sim.Process, error) {
			return bracha.NewFactory(p.N, p.T), nil
		},
	})

	mustRegisterAlgorithm(Algorithm{
		Name:              "committee",
		Description:       "Kapron et al.-style committee election (fast, non-adaptive faults only, non-zero error probability)",
		Modes:             ModeWindow,
		NeedsFullDelivery: true,
		// committee.Proc: group/committee bookkeeping is all per-processor;
		// broadcast payloads are value types copied into the buffer.
		ParallelDelivery: true,
		ParallelSend:     true,
		Validate:         validateCommittee,
		Factory: func(p Params) (func(sim.ProcID, sim.Bit) sim.Process, error) {
			return committee.NewFactory(committee.DefaultParams(p.N)), nil
		},
	})

	mustRegisterAlgorithm(Algorithm{
		Name:                  "paxos",
		Description:           "single-decree Paxos (deterministic; terminates only under benign scheduling)",
		Modes:                 ModeWindow | ModeStep,
		SafetyCertain:         true,
		BenignTerminationOnly: true,
		// paxos.Proc: acceptor and proposer state live on the owning
		// processor; pooled message boxes are written only by their sender
		// inside its own Send and read-only in flight.
		ParallelDelivery: true,
		ParallelSend:     true,
		Validate: func(p Params) error {
			if p.N <= 0 {
				return fmt.Errorf("registry: paxos needs n > 0, got n=%d", p.N)
			}
			for _, prop := range p.Proposers {
				if prop < 0 || int(prop) >= p.N {
					return fmt.Errorf("registry: paxos proposer %d out of range [0, %d)", prop, p.N)
				}
			}
			return nil
		},
		Factory: func(p Params) (func(sim.ProcID, sim.Bit) sim.Process, error) {
			proposers := p.Proposers
			if proposers == nil {
				proposers = []sim.ProcID{0}
			}
			return paxos.NewFactory(paxos.Params{N: p.N, Proposers: proposers}), nil
		},
	})
}
