package registry

import (
	"reflect"
	"strings"
	"testing"
)

// quickMatrix is a fast grid still covering every algorithm and adversary.
func quickMatrix() Matrix {
	return Matrix{
		Sizes:      []Size{{N: 12, T: 1}, {N: 27, T: 3}},
		Inputs:     []string{"split", "ones"},
		Seeds:      []uint64{1, 2},
		MaxWindows: 3000,
	}
}

// TestCrossProductSmoke runs every registered algorithm under every
// compatible adversary and asserts the paper's unconditional invariants:
// agreement and validity never break for the safety-certain algorithms, and
// the benign adversary always terminates everything.
func TestCrossProductSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is expensive")
	}
	sweep, err := quickMatrix().Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Cells) == 0 || sweep.TrialCount == 0 {
		t.Fatal("empty sweep")
	}

	seenAlg, seenAdv, seenSched := map[string]bool{}, map[string]bool{}, map[string]bool{}
	for _, c := range sweep.Cells {
		seenAlg[c.Algorithm] = true
		seenAdv[c.Adversary] = true
		seenSched[c.Scheduler] = true
		alg, err := LookupAlgorithm(c.Algorithm)
		if err != nil {
			t.Fatal(err)
		}
		if alg.SafetyCertain && (c.AgreeViol > 0 || c.ValidViol > 0) {
			t.Errorf("cell %+v violated safety", c)
		}
		// Benign delivery = the adversary's own plan (benign for the
		// "full" adversary) or the explicit full-delivery scheduler;
		// lossy schedulers may legitimately starve e.g. the Paxos
		// proposer.
		benignDelivery := c.Scheduler == "adversary" || c.Scheduler == "full"
		if c.Adversary == "full" && benignDelivery && c.Decided != c.Trials {
			t.Errorf("cell %+v did not terminate under benign delivery", c)
		}
		// Unanimous inputs decide under every compatible adversary and
		// scheduler (validity forces the unanimous value and the first
		// message wave already carries >= n-t copies of it), except for
		// algorithms whose termination is only guaranteed under benign
		// scheduling.
		if c.Input == "ones" && c.Adversary != "splitvote" &&
			!(alg.BenignTerminationOnly && !(c.Adversary == "full" && benignDelivery)) &&
			c.Decided == 0 {
			t.Errorf("cell %+v never decided unanimous inputs", c)
		}
	}
	for _, name := range AlgorithmNames() {
		if !seenAlg[name] {
			t.Errorf("algorithm %q missing from the sweep", name)
		}
	}
	for _, name := range AdversaryNames() {
		if !seenAdv[name] {
			t.Errorf("adversary %q missing from the sweep", name)
		}
	}
	for _, name := range SchedulerNames() {
		if !seenSched[name] {
			t.Errorf("scheduler %q missing from the sweep", name)
		}
	}
	if sweep.SafetyViolations() != 0 {
		t.Fatalf("SafetyViolations = %d", sweep.SafetyViolations())
	}
}

// TestSweepParallelMatchesSerial is the sweep engine's determinism
// guarantee: the parallel fan-out aggregates byte-identically to the serial
// loop, run after run.
func TestSweepParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is expensive")
	}
	m := Matrix{
		Algorithms: []string{"core", "benor"},
		Sizes:      []Size{{N: 12, T: 1}},
		Inputs:     []string{"split", "ones"},
		Seeds:      []uint64{1, 2, 3},
		MaxWindows: 3000,
	}
	serial, err := m.RunSerial()
	if err != nil {
		t.Fatal(err)
	}
	par, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("parallel sweep diverged from serial:\nserial  %+v\nparallel %+v", serial, par)
	}
	if serial.Table().String() != par.Table().String() {
		t.Fatal("rendered tables differ")
	}
	again, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if par.Table().String() != again.Table().String() {
		t.Fatal("two parallel sweeps with identical seeds diverged")
	}
}

func TestMatrixExpansion(t *testing.T) {
	m := Matrix{
		Algorithms:  []string{"core", "committee"},
		Adversaries: []string{"full", "storm"},
		Schedulers:  []string{"adversary"},
		Sizes:       []Size{{N: 12, T: 1}, {N: 12, T: 3}},
		Inputs:      []string{"ones"},
		Seeds:       []uint64{1},
		MaxWindows:  100,
	}
	cells, resolved, sweep, err := m.expand()
	if err != nil {
		t.Fatal(err)
	}
	// core: full+storm at 12:1 (12:3 invalid, t >= n/6); committee: nothing
	// (12:1 too small, 12:3 also invalid size — and storm incompatible).
	if len(cells) != 2 {
		t.Fatalf("cells = %+v", cells)
	}
	for _, c := range cells {
		if c.Algorithm != "core" || c.Size.N != 12 || c.Size.T != 1 {
			t.Fatalf("unexpected cell %+v", c)
		}
	}
	if total := len(cells) * len(resolved.Seeds); total != 2 {
		t.Fatalf("total trials = %d, want 2", total)
	}
	// Trial derivation is seeds-innermost: trial i belongs to cell i/len(Seeds).
	for i := 0; i < len(cells)*len(resolved.Seeds); i++ {
		ts := resolved.specAt(cells, i)
		if ts.Cell != cells[i/len(resolved.Seeds)] || ts.seed != resolved.Seeds[i%len(resolved.Seeds)] {
			t.Fatalf("specAt(%d) = %+v", i, ts)
		}
	}
	// Invalid sizes recorded once per algorithm, not once per adversary.
	if len(sweep.Skipped) != 3 {
		t.Fatalf("skipped = %v", sweep.Skipped)
	}
	for _, s := range sweep.Skipped {
		if !strings.Contains(s, "core 12:3") && !strings.Contains(s, "committee 12:") {
			t.Fatalf("unexpected skip record %q", s)
		}
	}
}

// TestMatrixSchedulerAxisExpansion pins the scheduler axis: an empty
// Schedulers field expands every registered scheduler, sender-planning
// adversaries only ever pair with the adversary-driven scheduler, and
// incompatible quadruples are counted, not run.
func TestMatrixSchedulerAxisExpansion(t *testing.T) {
	m := Matrix{
		Algorithms:  []string{"core"},
		Adversaries: []string{"full", "splitvote"},
		Sizes:       []Size{{N: 12, T: 1}},
		Inputs:      []string{"ones"},
		Seeds:       []uint64{1},
		MaxWindows:  100,
	}
	cells, resolved, sweep, err := m.expand()
	if err != nil {
		t.Fatal(err)
	}
	// core×full pairs with all 6 schedulers; core×splitvote only with
	// "adversary" (the other 5 would override its sender sets).
	if total := len(cells) * len(resolved.Seeds); len(cells) != 7 || total != 7 {
		t.Fatalf("cells = %d, trials = %d, want 7 and 7: %+v", len(cells), total, cells)
	}
	for _, c := range cells {
		if c.Adversary == "splitvote" && c.Scheduler != "adversary" {
			t.Fatalf("splitvote paired with sender-overriding scheduler: %+v", c)
		}
	}
	if sweep.Incompatible != 5 {
		t.Fatalf("incompatible = %d, want 5", sweep.Incompatible)
	}

	// An adversary-level rejection is counted once per (alg, adv, size)
	// triple, never once per scheduler: benor is not reset-tolerant, so
	// benor×storm is one incompatible triple regardless of the six
	// schedulers expanded.
	m = Matrix{
		Algorithms:  []string{"benor"},
		Adversaries: []string{"storm"},
		Sizes:       []Size{{N: 9, T: 2}},
		Inputs:      []string{"ones"},
		Seeds:       []uint64{1},
		MaxWindows:  100,
	}
	cells, _, sweep, err = m.expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 0 || sweep.Incompatible != 1 {
		t.Fatalf("cells = %d, incompatible = %d, want 0 cells and 1 triple", len(cells), sweep.Incompatible)
	}
}

// TestAdversarySchedulerMatchesBareAdversary is the backward-compatibility
// guarantee of the scheduler axis: a trial run through the "adversary"
// scheduler is the pre-scheduler execution itself, byte-identical result by
// result.
func TestAdversarySchedulerMatchesBareAdversary(t *testing.T) {
	cases := []struct {
		alg, adv string
		size     Size
	}{
		{"core", "full", Size{N: 12, T: 1}},
		{"core", "storm", Size{N: 12, T: 1}},
		{"core", "splitvote", Size{N: 12, T: 1}},
		{"benor", "subsets", Size{N: 9, T: 2}},
		{"bracha", "silence", Size{N: 7, T: 2}},
	}
	for _, c := range cases {
		for _, seed := range []uint64{1, 2} {
			ts := trialSpec{
				Cell: Cell{Algorithm: c.alg, Adversary: c.adv,
					Scheduler: "adversary", Input: "split", Size: c.size},
				seed: seed, maxWindows: 2000,
			}
			got, err := runTrial(ts)
			if err != nil {
				t.Fatalf("%s/%s: %v", c.alg, c.adv, err)
			}
			inputs, err := Inputs("split", c.size.N, seed)
			if err != nil {
				t.Fatal(err)
			}
			p := Params{N: c.size.N, T: c.size.T, Inputs: inputs, Seed: seed}
			sys, err := NewSystem(c.alg, p)
			if err != nil {
				t.Fatal(err)
			}
			adv, err := NewAdversary(c.adv, c.alg, p)
			if err != nil {
				t.Fatal(err)
			}
			want, err := sys.RunWindows(adv, 2000)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s/%s seed %d: scheduler-axis trial diverged from bare adversary:\ngot  %+v\nwant %+v",
					c.alg, c.adv, seed, got, want)
			}
		}
	}
}

func TestMatrixUnknownNames(t *testing.T) {
	if _, err := (Matrix{Algorithms: []string{"nope"}}).Run(); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := (Matrix{Adversaries: []string{"nope"}}).Run(); err == nil {
		t.Fatal("unknown adversary accepted")
	}
	if _, err := (Matrix{Inputs: []string{"nope"}}).Run(); err == nil {
		t.Fatal("unknown input pattern accepted")
	}
}

func TestSweepTableShape(t *testing.T) {
	m := Matrix{
		Algorithms:  []string{"benor"},
		Adversaries: []string{"full"},
		Schedulers:  []string{"adversary"},
		Sizes:       []Size{{N: 9, T: 2}},
		Inputs:      []string{"ones"},
		Seeds:       []uint64{1, 2},
		MaxWindows:  500,
	}
	sweep, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	out := sweep.Table().String()
	if !strings.Contains(out, "benor") || !strings.Contains(out, "2/2") {
		t.Fatalf("table missing expected cells:\n%s", out)
	}
	if len(sweep.Cells) != 1 || sweep.Cells[0].Decided != 2 {
		t.Fatalf("sweep = %+v", sweep.Cells)
	}
}
