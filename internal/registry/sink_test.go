package registry

import (
	"os"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
)

// sinkMatrix is the small grid the pipeline tests stream: 4 cells, 8 trials.
func sinkMatrix() Matrix {
	return Matrix{
		Algorithms:  []string{"core", "benor"},
		Adversaries: []string{"full"},
		Schedulers:  []string{"adversary"},
		Sizes:       []Size{{N: 12, T: 1}},
		Inputs:      []string{"split", "ones"},
		Seeds:       []uint64{1, 2},
		MaxWindows:  2000,
	}
}

// memorySink retains every record — the test observer for pipeline order
// and content (production sinks stream to disk instead).
type memorySink struct {
	records []TrialRecord
	flushes int
}

func (s *memorySink) Consume(rec TrialRecord) error {
	s.records = append(s.records, rec)
	return nil
}
func (s *memorySink) Flush() error { s.flushes++; return nil }

// TestRunWithSinkStreamsIndexOrderedRecords: sinks observe one record per
// trial, in index order, carrying exactly the per-trial results the
// aggregate is built from.
func TestRunWithSinkStreamsIndexOrderedRecords(t *testing.T) {
	m := sinkMatrix()
	sink := &memorySink{}
	sweep, err := m.RunWith(RunOptions{Sinks: []ResultSink{sink}})
	if err != nil {
		t.Fatal(err)
	}
	if len(sink.records) != sweep.TrialCount || sink.flushes != 1 {
		t.Fatalf("sink saw %d records / %d flushes, want %d / 1",
			len(sink.records), sink.flushes, sweep.TrialCount)
	}
	specs, err := m.allSpecs()
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range sink.records {
		if rec.Index != i {
			t.Fatalf("record %d has index %d", i, rec.Index)
		}
		if rec.Key() != specs[i].key() {
			t.Fatalf("record %d key %q != spec %q", i, rec.Key(), specs[i].key())
		}
	}
	// Re-aggregating the streamed records reproduces the sweep exactly —
	// the records carry the full result, which is what resume relies on.
	cells, resolved, replaySweep, err := m.expand()
	if err != nil {
		t.Fatal(err)
	}
	agg := newCellAgg(replaySweep, cells)
	for _, rec := range sink.records {
		agg.consume(rec.Index/len(resolved.Seeds), rec.Result())
	}
	agg.finalize()
	replaySweep.TrialCount = len(sink.records)
	if !reflect.DeepEqual(sweep, replaySweep) {
		t.Fatalf("replayed aggregate diverged:\nrun    %+v\nreplay %+v", sweep, replaySweep)
	}
}

// TestRunWithResumeMatchesUninterrupted is the registry-level resume
// guarantee (the cmd/sweep tests cover the file round trip): stopping a
// sweep partway and resuming from the emitted prefix yields the same
// aggregate and the same remaining sink records as an uninterrupted run.
func TestRunWithResumeMatchesUninterrupted(t *testing.T) {
	m := sinkMatrix()
	full := &memorySink{}
	want, err := m.RunWith(RunOptions{Sinks: []ResultSink{full}})
	if err != nil {
		t.Fatal(err)
	}

	// Interrupt after 3 emitted trials. Progress runs on the serial
	// emission path but Stop is also polled from worker goroutines, so
	// the shared counter must be atomic.
	part := &memorySink{}
	var emitted atomic.Int64
	_, err = m.RunWith(RunOptions{
		Sinks:    []ResultSink{part},
		Progress: func(done, total int) { emitted.Store(int64(done)) },
		Stop:     func() bool { return emitted.Load() >= 3 },
	})
	if err != ErrInterrupted {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if len(part.records) < 3 || len(part.records) >= len(full.records) {
		t.Fatalf("interrupted run emitted %d records", len(part.records))
	}
	// The emitted prefix must match the uninterrupted run's.
	if !reflect.DeepEqual(part.records, full.records[:len(part.records)]) {
		t.Fatal("interrupted prefix diverged from the full run")
	}

	rest := &memorySink{}
	got, err := m.RunWith(RunOptions{Sinks: []ResultSink{rest}, Resume: part.records})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed sweep diverged:\nfull    %+v\nresumed %+v", want, got)
	}
	if !reflect.DeepEqual(rest.records, full.records[len(part.records):]) {
		t.Fatal("resumed run re-emitted or skipped sink records")
	}
}

// TestRunWithResumeRejectsMismatch: resume records must match the grid's
// leading trial keys.
func TestRunWithResumeRejectsMismatch(t *testing.T) {
	m := sinkMatrix()
	sink := &memorySink{}
	if _, err := m.RunWith(RunOptions{Sinks: []ResultSink{sink}}); err != nil {
		t.Fatal(err)
	}
	bad := append([]TrialRecord(nil), sink.records[:2]...)
	bad[1].Seed = 99
	if _, err := m.RunWith(RunOptions{Resume: bad}); err == nil ||
		!strings.Contains(err.Error(), "checkpoint") {
		t.Fatalf("mismatched resume accepted: %v", err)
	}
	tooMany := make([]TrialRecord, len(sink.records)+1)
	copy(tooMany, sink.records)
	if _, err := m.RunWith(RunOptions{Resume: tooMany}); err == nil {
		t.Fatal("oversized resume accepted")
	}
}

// TestCheckpointRoundTrip: header + records written through the sink
// machinery load back verbatim; wrong grids and torn tails are handled.
func TestCheckpointRoundTrip(t *testing.T) {
	m := sinkMatrix()
	sink := &memorySink{}
	if _, err := m.RunWith(RunOptions{Sinks: []ResultSink{sink}}); err != nil {
		t.Fatal(err)
	}
	grid := m.GridSignature()

	dir := t.TempDir()
	path := dir + "/sweep.ckpt"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteCheckpointHeader(f, grid); err != nil {
		t.Fatal(err)
	}
	jl := NewJSONLSink(f)
	for _, rec := range sink.records[:5] {
		if err := jl.Consume(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := jl.Flush(); err != nil {
		t.Fatal(err)
	}
	// Torn tail: half a record.
	if _, err := f.WriteString(`{"index":5,"algo`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got, err := LoadCheckpoint(path, grid)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sink.records[:5]) {
		t.Fatalf("round trip diverged: %+v", got)
	}
	if _, err := LoadCheckpoint(path, "other grid"); err == nil {
		t.Fatal("grid mismatch accepted")
	}
	if recs, err := LoadCheckpoint(dir+"/missing.ckpt", grid); err != nil || recs != nil {
		t.Fatalf("missing checkpoint: %v, %v", recs, err)
	}
}
