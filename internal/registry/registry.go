// Package registry is the single source of truth for the repository's
// scenario inventory: algorithms, adversaries, delivery schedulers, and
// input patterns.
//
// Every agreement protocol (the paper's Section 3 core algorithm and the
// Ben-Or / Bracha / committee / Paxos baselines) is described once by an
// Algorithm descriptor: parameter validation, a sim.Process factory, the
// vote classifier the split-vote adversary needs, and the execution modes
// and fault models it supports. Every full-information adversary is
// described once by an Adversary descriptor: a constructor returning fresh
// per-trial state and a compatibility predicate against algorithm
// descriptors. Every delivery scheduler (internal/sched) is described once
// by a Scheduler descriptor (schedulers.go): a fresh-state constructor and
// a compatibility predicate against the (algorithm, adversary) pairing it
// would be spliced into. The asyncagree facade, internal/experiments,
// cmd/agree and cmd/sweep are all wired on top of this package, so adding
// an algorithm, adversary, or scheduler is one registry entry instead of
// parallel switch statements.
//
// The sweep engine (matrix.go) expands algorithm × adversary × scheduler ×
// size × input × seed grids into independent seeded trials and fans them
// over internal/parallel.Map with serial-identical aggregate output.
package registry

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"asyncagree/internal/adversary"
	"asyncagree/internal/core"
	"asyncagree/internal/sim"
)

// Mode is a bitmask of execution modes an algorithm meaningfully supports.
type Mode uint8

const (
	// ModeWindow is acceptable-window mode (System.RunWindows,
	// Definition 1 of the paper).
	ModeWindow Mode = 1 << iota
	// ModeStep is raw fine-grained step mode (System.RunSteps, the
	// Section 5 crash model).
	ModeStep
)

// Has reports whether m includes q.
func (m Mode) Has(q Mode) bool { return m&q != 0 }

// String implements fmt.Stringer. A zero Mode renders as "none"; unknown
// bits render as an explicit Mode(0x..) part instead of disappearing.
func (m Mode) String() string {
	if m == 0 {
		return "none"
	}
	var parts []string
	if m.Has(ModeWindow) {
		parts = append(parts, "window")
	}
	if m.Has(ModeStep) {
		parts = append(parts, "step")
	}
	if rest := m &^ (ModeWindow | ModeStep); rest != 0 {
		parts = append(parts, fmt.Sprintf("Mode(%#x)", uint8(rest)))
	}
	return strings.Join(parts, "|")
}

// Params carries the per-trial construction parameters shared by every
// algorithm and adversary in the registry. Algorithm-specific knobs
// (CoreThresholds, Proposers) are optional and ignored by the algorithms
// they do not concern.
type Params struct {
	// N is the processor count, T the fault budget (resets per acceptable
	// window for the strongly adaptive adversary, crashes/silences
	// otherwise).
	N, T int
	// Inputs are the n input bits.
	Inputs []sim.Bit
	// Seed makes the execution (and any randomized adversary) reproducible.
	Seed uint64
	// CoreThresholds optionally overrides the Theorem 4 defaults for the
	// core algorithm.
	CoreThresholds *core.Thresholds
	// Proposers optionally selects the Paxos proposers (default {0}).
	Proposers []sim.ProcID
	// ShardWorkers sets the intra-trial parallelism of the sharded window
	// core (sim.SetShardWorkers): <= 1 runs the serial facade; k >= 2 runs
	// window delivery (and sending, where the algorithm declares it safe)
	// across k goroutines. Observable behavior is byte-identical at every
	// setting, so this is a performance knob, not an execution parameter —
	// it is deliberately excluded from sweep grid signatures and engine pool
	// keys. Applied only when the algorithm's ParallelDelivery flag is set.
	ShardWorkers int
	// DisableColumnar turns off the columnar vote-tally fast path
	// (sim/columnar.go) for algorithms that declare ColumnarVotes; the zero
	// value leaves it on. Like ShardWorkers, observable behavior is
	// byte-identical either way, so this is a performance knob, not an
	// execution parameter — it is deliberately excluded from sweep grid
	// signatures and engine pool keys.
	DisableColumnar bool
	// AdvKnobs supplies values for the adversary's declared tuning knobs
	// (Adversary.Knobs), positionally. A nil slice leaves every knob at the
	// exact historical construction the descriptor registers — the behavior
	// every pre-knob checkpoint and experiment was recorded against — so
	// only callers that explore the adversary space (internal/search) set
	// it. Values are part of the trial's identity: the engine pool keys on
	// them (extraKey) and ValidateKnobs range-checks them on acquisition.
	AdvKnobs []int
}

// Algorithm is a self-describing agreement protocol entry.
type Algorithm struct {
	// Name is the stable registry key (e.g. "core", "benor").
	Name string
	// Description is a one-line human summary for CLI listings.
	Description string
	// Modes lists the execution modes the algorithm meaningfully supports.
	Modes Mode
	// ResetTolerant reports whether the algorithm's guarantees survive the
	// paper's resetting adversary (only the Section 3 core algorithm).
	ResetTolerant bool
	// SilenceTolerant reports whether the algorithm still terminates when
	// the same t processors are silenced forever (core, Ben-Or, Bracha:
	// yes; committee and Paxos: a fixed silent set can starve a group or
	// the proposer).
	SilenceTolerant bool
	// SafetyCertain reports whether agreement+validity hold with
	// probability 1 (false only for the committee algorithm, whose error
	// probability is non-zero by design).
	SafetyCertain bool
	// BenignTerminationOnly reports that termination is guaranteed only
	// under benign scheduling (Paxos: a lossy scheduler that drops the
	// lone proposer's messages stalls progress forever, by design).
	BenignTerminationOnly bool
	// NeedsFullDelivery reports that the algorithm's claims assume every
	// message is eventually delivered. Window mode drops each window's
	// undelivered remainder, so lossy schedulers can stall such an
	// algorithm forever (e.g. one dropped echo wedges a committee group's
	// internal Bracha instance); the sweep matrix pairs these algorithms
	// only with loss-free adversaries.
	NeedsFullDelivery bool
	// ParallelDelivery declares that the algorithm's Deliver touches only
	// the receiving processor's own state (plus read-only shared payloads),
	// so distinct receivers may be delivered to concurrently and the sharded
	// window core (Params.ShardWorkers) may engage.
	ParallelDelivery bool
	// ParallelSend declares the same independence for Send: no mutable
	// state shared across senders, so the per-sender collection loop may
	// shard too. Only consulted when ParallelDelivery is set.
	ParallelSend bool
	// ColumnarVotes declares that every processor implements
	// sim.VoteBroadcaster and sim.TallyReceiver, so the columnar vote-tally
	// fast path may engage (subject to Params.DisableColumnar and the
	// sim-level gate).
	ColumnarVotes bool
	// Validate checks p without building anything.
	Validate func(p Params) error
	// Factory returns the per-processor sim.Process constructor. It may
	// assume Validate(p) passed (NewSystem guarantees the order).
	Factory func(p Params) (func(sim.ProcID, sim.Bit) sim.Process, error)
	// ClassifyVote extracts the balanced bit from a message for the
	// split-vote adversary; nil means the stalling strategy is not defined
	// for this algorithm.
	ClassifyVote func(sim.Message) adversary.VoteInfo
	// SplitVoteCap is the maximum same-value vote count any receiver may
	// see under the split-vote adversary (core: T3-1; Ben-Or: floor(n/2)).
	// Non-nil exactly when ClassifyVote is.
	SplitVoteCap func(p Params) (int, error)
}

// SupportsSplitVote reports whether the split-vote stalling strategy is
// defined for the algorithm.
func (a *Algorithm) SupportsSplitVote() bool { return a.ClassifyVote != nil }

// Knob declares one tunable integer parameter of an adversary: a named,
// bounded axis of the adversary-optimization search space. The declared
// Default reproduces the registered (un-knobbed) construction at every
// sweep-grid size, so the default knob vector is always a legal — and
// baseline — search candidate.
type Knob struct {
	// Name is the stable knob identifier (e.g. "capdelta").
	Name string
	// Description is a one-line human summary for CLI listings.
	Description string
	// Min and Max bound the knob's legal values, inclusive.
	Min, Max int
	// Default is the value reproducing the registered construction.
	Default int
}

// Adversary is a self-describing window-adversary entry.
type Adversary struct {
	// Name is the stable registry key (e.g. "full", "splitvote").
	Name string
	// Description is a one-line human summary for CLI listings.
	Description string
	// Knobs declares the adversary's tunable integer parameters in the
	// positional order Params.AdvKnobs supplies values for. Empty means the
	// adversary has no tunable surface (the search space degenerates to its
	// single registered construction).
	Knobs []Knob
	// Resets reports whether the adversary performs resetting steps.
	Resets bool
	// PlansSenders reports that the adversary's strategy lives in its
	// choice of per-receiver sender sets (fixed silence, split-vote, the
	// chaos subsets). A non-adversary-driven scheduler would override and
	// nullify that choice, so the sweep matrix pairs such adversaries only
	// with the "adversary" scheduler.
	PlansSenders bool
	// Compatible reports whether the paper's claims (safety invariants,
	// meaningful termination behavior) cover running alg under this
	// adversary. The sweep matrix only expands compatible pairs; explicit
	// single runs (cmd/agree) may still construct incompatible-but-buildable
	// pairings.
	Compatible func(alg *Algorithm, p Params) bool
	// New returns FRESH adversary state for one trial. Implementations
	// must never return a shared instance: several adversaries carry
	// mutable per-execution state (rotation cursors, rng streams, give-up
	// counters) and trials run concurrently.
	New func(alg *Algorithm, p Params) (sim.WindowAdversary, error)
	// Recycle rewinds adv — previously returned by New for the same
	// algorithm and (n, t) cell and the same knob vector (the engine pool
	// keys on Params.AdvKnobs) — to the state New would produce for p,
	// reusing its allocations, and reports whether it did. A nil hook (or a
	// false return, e.g. on an unexpected concrete type) makes the pooled
	// trial engine construct fresh state with New instead, so Recycle is a
	// pure optimization and never a correctness requirement.
	Recycle func(adv sim.WindowAdversary, p Params) bool
}

// KnobDefaults returns the declared knobs' default values (nil when the
// adversary declares none) — the explicit vector equivalent to a nil
// Params.AdvKnobs.
func (a *Adversary) KnobDefaults() []int {
	if len(a.Knobs) == 0 {
		return nil
	}
	defs := make([]int, len(a.Knobs))
	for i, k := range a.Knobs {
		defs[i] = k.Default
	}
	return defs
}

// ValidateKnobs checks p.AdvKnobs against the declared knob specs: nil is
// always valid (every knob at its default); otherwise the vector must have
// one in-range value per declared knob.
func (a *Adversary) ValidateKnobs(p Params) error {
	if p.AdvKnobs == nil {
		return nil
	}
	if len(p.AdvKnobs) != len(a.Knobs) {
		return fmt.Errorf("registry: adversary %q takes %d knob(s), got %d values",
			a.Name, len(a.Knobs), len(p.AdvKnobs))
	}
	for i, v := range p.AdvKnobs {
		if k := a.Knobs[i]; v < k.Min || v > k.Max {
			return fmt.Errorf("registry: adversary %q knob %q = %d outside [%d, %d]",
				a.Name, k.Name, v, k.Min, k.Max)
		}
	}
	return nil
}

var (
	mu             sync.RWMutex
	algorithms     []*Algorithm
	algorithmByKey = map[string]*Algorithm{}
	adversaries    []*Adversary
	adversaryByKey = map[string]*Adversary{}
)

// RegisterAlgorithm adds an algorithm descriptor. Names must be unique;
// Validate and Factory are mandatory; SplitVoteCap and ClassifyVote must be
// set together.
func RegisterAlgorithm(a Algorithm) error {
	if a.Name == "" || a.Validate == nil || a.Factory == nil {
		return fmt.Errorf("registry: algorithm descriptor %q incomplete", a.Name)
	}
	if (a.ClassifyVote == nil) != (a.SplitVoteCap == nil) {
		return fmt.Errorf("registry: algorithm %q must set ClassifyVote and SplitVoteCap together", a.Name)
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := algorithmByKey[a.Name]; dup {
		return fmt.Errorf("registry: duplicate algorithm %q", a.Name)
	}
	entry := &a
	algorithms = append(algorithms, entry)
	algorithmByKey[a.Name] = entry
	return nil
}

// RegisterAdversary adds an adversary descriptor. Names must be unique;
// Compatible and New are mandatory.
func RegisterAdversary(a Adversary) error {
	if a.Name == "" || a.Compatible == nil || a.New == nil {
		return fmt.Errorf("registry: adversary descriptor %q incomplete", a.Name)
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := adversaryByKey[a.Name]; dup {
		return fmt.Errorf("registry: duplicate adversary %q", a.Name)
	}
	entry := &a
	adversaries = append(adversaries, entry)
	adversaryByKey[a.Name] = entry
	return nil
}

// mustRegisterAlgorithm panics on registration failure; it is only called
// from init with built-in descriptors, so a failure is a programming error.
func mustRegisterAlgorithm(a Algorithm) {
	if err := RegisterAlgorithm(a); err != nil {
		panic(fmt.Sprintf("registry: registering built-in algorithm %q: %v", a.Name, err))
	}
}

// mustRegisterAdversary panics on registration failure; it is only called
// from init with built-in descriptors, so a failure is a programming error.
func mustRegisterAdversary(a Adversary) {
	if err := RegisterAdversary(a); err != nil {
		panic(fmt.Sprintf("registry: registering built-in adversary %q: %v", a.Name, err))
	}
}

// Algorithms returns the registered algorithm descriptors in registration
// order. The returned slice is a copy; the descriptors are shared and must
// not be mutated.
func Algorithms() []*Algorithm {
	mu.RLock()
	defer mu.RUnlock()
	return append([]*Algorithm(nil), algorithms...)
}

// Adversaries returns the registered adversary descriptors in registration
// order.
func Adversaries() []*Adversary {
	mu.RLock()
	defer mu.RUnlock()
	return append([]*Adversary(nil), adversaries...)
}

// AlgorithmNames returns the registered algorithm names in registration
// order.
func AlgorithmNames() []string {
	algs := Algorithms()
	names := make([]string, len(algs))
	for i, a := range algs {
		names[i] = a.Name
	}
	return names
}

// AdversaryNames returns the registered adversary names in registration
// order.
func AdversaryNames() []string {
	advs := Adversaries()
	names := make([]string, len(advs))
	for i, a := range advs {
		names[i] = a.Name
	}
	return names
}

// LookupAlgorithm resolves a name.
func LookupAlgorithm(name string) (*Algorithm, error) {
	mu.RLock()
	defer mu.RUnlock()
	a, ok := algorithmByKey[name]
	if !ok {
		return nil, fmt.Errorf("registry: unknown algorithm %q", name)
	}
	return a, nil
}

// LookupAdversary resolves a name.
func LookupAdversary(name string) (*Adversary, error) {
	mu.RLock()
	defer mu.RUnlock()
	a, ok := adversaryByKey[name]
	if !ok {
		return nil, fmt.Errorf("registry: unknown adversary %q", name)
	}
	return a, nil
}

// NewSystem validates p against the named algorithm and constructs a
// simulation.
func NewSystem(alg string, p Params) (*sim.System, error) {
	a, err := LookupAlgorithm(alg)
	if err != nil {
		return nil, err
	}
	if err := a.Validate(p); err != nil {
		return nil, err
	}
	factory, err := a.Factory(p)
	if err != nil {
		return nil, err
	}
	sys, err := sim.New(sim.Config{
		N: p.N, T: p.T, Seed: p.Seed, Inputs: p.Inputs,
		NewProcess: factory,
	})
	if err != nil {
		return nil, err
	}
	applyShardParams(sys, a, p)
	return sys, nil
}

// applyShardParams configures the sharded window core and the columnar
// fast path on sys from the descriptor's concurrency-safety declarations
// and the requested knobs. Safe to call on every pooled-engine
// acquisition: sim.System keeps its worker pool when the count is
// unchanged.
func applyShardParams(sys *sim.System, a *Algorithm, p Params) {
	workers := 1
	if a.ParallelDelivery && p.ShardWorkers > 1 {
		workers = p.ShardWorkers
	}
	sys.SetShardWorkers(workers)
	sys.SetParallelSend(a.ParallelSend)
	sys.SetColumnar(a.ColumnarVotes && !p.DisableColumnar)
}

// NewAdversary constructs fresh per-trial adversary state for the named
// adversary tuned to the named algorithm. Construction fails only when the
// pairing is impossible to build (e.g. split-vote against an algorithm with
// no vote classifier); use Compatible for the softer "do the paper's claims
// cover this pairing" predicate the sweep matrix filters on.
func NewAdversary(adv, alg string, p Params) (sim.WindowAdversary, error) {
	ad, err := LookupAdversary(adv)
	if err != nil {
		return nil, err
	}
	a, err := LookupAlgorithm(alg)
	if err != nil {
		return nil, err
	}
	if err := ad.ValidateKnobs(p); err != nil {
		return nil, err
	}
	return ad.New(a, p)
}

// WriteInventory writes the human-readable registry listing (algorithms,
// adversaries, delivery schedulers, input patterns with one-line
// descriptions) shared by the CLIs' -list flags.
func WriteInventory(w io.Writer) {
	fmt.Fprintln(w, "algorithms:")
	for _, a := range Algorithms() {
		fmt.Fprintf(w, "  %-10s %s (modes: %s)\n", a.Name, a.Description, a.Modes)
	}
	fmt.Fprintln(w, "adversaries:")
	for _, a := range Adversaries() {
		fmt.Fprintf(w, "  %-10s %s\n", a.Name, a.Description)
		for _, k := range a.Knobs {
			fmt.Fprintf(w, "  %-10s   knob %s: %s [%d..%d, default %d]\n",
				"", k.Name, k.Description, k.Min, k.Max, k.Default)
		}
	}
	fmt.Fprintln(w, "schedulers:")
	for _, s := range Schedulers() {
		fmt.Fprintf(w, "  %-10s %s (modes: %s)\n", s.Name, s.Description, s.Modes)
	}
	fmt.Fprintln(w, "input patterns:")
	for _, p := range InputPatterns() {
		fmt.Fprintf(w, "  %-10s %s\n", p.Name, p.Description)
	}
}

// Compatible reports whether the sweep matrix would pair the named
// adversary with the named algorithm at p.
func Compatible(adv, alg string, p Params) (bool, error) {
	ad, err := LookupAdversary(adv)
	if err != nil {
		return false, err
	}
	a, err := LookupAlgorithm(alg)
	if err != nil {
		return false, err
	}
	return ad.Compatible(a, p), nil
}
