package registry

import (
	"fmt"

	"asyncagree/internal/sim"
)

// InputPattern is a named input-bit assignment generator. Patterns whose
// assignment is seed-independent ("split", "zeros", "ones") ignore the seed.
type InputPattern struct {
	// Name is the stable registry key.
	Name string
	// Description is a one-line human summary for CLI listings.
	Description string
	// Gen produces the n input bits.
	Gen func(n int, seed uint64) []sim.Bit
}

// inputPatterns is deliberately a plain ordered slice: the set is small,
// fixed, and shared by the facade, the experiment drivers, and the CLIs.
var inputPatterns = []*InputPattern{
	{
		Name:        "split",
		Description: "alternating 0/1 — the adversarial input of the paper's slowness arguments",
		Gen:         func(n int, _ uint64) []sim.Bit { return SplitInputs(n) },
	},
	{
		Name:        "zeros",
		Description: "unanimous 0",
		Gen:         func(n int, _ uint64) []sim.Bit { return UnanimousInputs(n, 0) },
	},
	{
		Name:        "ones",
		Description: "unanimous 1",
		Gen:         func(n int, _ uint64) []sim.Bit { return UnanimousInputs(n, 1) },
	},
	{
		Name:        "blocks",
		Description: "seed-dependent blocky mix of 0s and 1s",
		Gen: func(n int, seed uint64) []sim.Bit {
			in := make([]sim.Bit, n)
			for i := range in {
				in[i] = sim.Bit((i*int(seed%7) + i/3) % 2)
			}
			return in
		},
	},
}

// InputPatterns returns the registered input patterns in registration
// order.
func InputPatterns() []*InputPattern {
	return append([]*InputPattern(nil), inputPatterns...)
}

// InputPatternNames returns the registered pattern names in registration
// order.
func InputPatternNames() []string {
	names := make([]string, len(inputPatterns))
	for i, p := range inputPatterns {
		names[i] = p.Name
	}
	return names
}

// Inputs generates the n input bits of a named pattern.
func Inputs(pattern string, n int, seed uint64) ([]sim.Bit, error) {
	for _, p := range inputPatterns {
		if p.Name == pattern {
			return p.Gen(n, seed), nil
		}
	}
	return nil, fmt.Errorf("registry: unknown input pattern %q", pattern)
}

// UnanimousInputs returns n copies of v.
func UnanimousInputs(n int, v sim.Bit) []sim.Bit {
	in := make([]sim.Bit, n)
	for i := range in {
		in[i] = v
	}
	return in
}

// SplitInputs returns the alternating 0/1 input assignment — the
// adversarial input setting of the paper's slowness arguments.
func SplitInputs(n int) []sim.Bit {
	in := make([]sim.Bit, n)
	for i := range in {
		in[i] = sim.Bit(i % 2)
	}
	return in
}
