package registry

import (
	"fmt"
	"reflect"
	"testing"

	"asyncagree/internal/sim"
)

// traceRun executes one window-mode run recording every trace event as a
// canonical string, and returns the events, the summary, and the final
// configuration snapshot.
func traceRun(sys *sim.System, plan sim.WindowAdversary, maxWindows int) ([]string, sim.RunResult, []string, error) {
	var events []string
	sys.OnEvent = func(ev sim.Event) {
		events = append(events, fmt.Sprintf("%d w%d p%d %d>%d#%d %v v%d",
			ev.Kind, ev.Window, ev.Proc, ev.Msg.From, ev.Msg.To, ev.Msg.ID, ev.Msg.Payload, ev.Value))
	}
	res, err := sys.RunWindows(plan, maxWindows)
	sys.OnEvent = nil
	return events, res, sys.ConfigurationSnapshot(), err
}

// TestRecycledTrialMatchesFresh is the Recycle-correctness property test:
// for every compatible algorithm × adversary × scheduler triple at the
// smoke-grid shapes, running a trial on a recycled engine (constructed,
// dirtied by a full warm-up trial on a different seed and input pattern,
// then rewound) is byte-identical — every trace event, the run summary, and
// the final per-processor state — to running it on freshly constructed
// state.
func TestRecycledTrialMatchesFresh(t *testing.T) {
	// Every triple runs at 12:1 except the committee algorithm, whose
	// validation requires n >= 27 with the default parameterization; its
	// triples are covered at 27:3 (kept to the one algorithm so the -race
	// run stays affordable).
	small := Matrix{
		Sizes:      []Size{{N: 12, T: 1}},
		Inputs:     []string{"split"},
		Seeds:      []uint64{3},
		MaxWindows: 400,
	}
	trials, err := small.allSpecs()
	if err != nil {
		t.Fatal(err)
	}
	committee := Matrix{
		Algorithms: []string{"committee"},
		Sizes:      []Size{{N: 27, T: 3}},
		Inputs:     []string{"split"},
		Seeds:      []uint64{3},
		MaxWindows: 400,
	}
	committeeTrials, err := committee.allSpecs()
	if err != nil {
		t.Fatal(err)
	}
	trials = append(trials, committeeTrials...)
	if len(trials) == 0 {
		t.Fatal("smoke grid expanded to no trials")
	}
	for _, ts := range trials {
		ts := ts
		name := fmt.Sprintf("%s_%s_%s_%s", ts.Algorithm, ts.Adversary, ts.Scheduler, ts.Size)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			inputs, err := Inputs(ts.Input, ts.Size.N, ts.seed)
			if err != nil {
				t.Fatal(err)
			}
			p := Params{N: ts.Size.N, T: ts.Size.T, Inputs: inputs, Seed: ts.seed}

			// Fresh reference execution.
			sys, err := NewSystem(ts.Algorithm, p)
			if err != nil {
				t.Fatal(err)
			}
			plan, err := NewScheduledAdversary(ts.Adversary, ts.Scheduler, ts.Algorithm, p)
			if err != nil {
				t.Fatal(err)
			}
			fEvents, fRes, fSnap, fErr := traceRun(sys, plan, ts.maxWindows)

			// Recycled execution: construct an engine, dirty it with a
			// warm-up trial on a different seed and input pattern, then
			// rewind it for the target trial. Bypass the global pool so the
			// recycle path is guaranteed to be exercised.
			warmInputs, err := Inputs("ones", ts.Size.N, 99)
			if err != nil {
				t.Fatal(err)
			}
			warm := Params{N: ts.Size.N, T: ts.Size.T, Inputs: warmInputs, Seed: 99}
			key := engineKey{alg: ts.Algorithm, adv: ts.Adversary, sched: ts.Scheduler,
				n: ts.Size.N, t: ts.Size.T}
			e, err := newTrialEngine(key, warm)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := e.Run(150); err != nil {
				t.Fatalf("warm-up trial: %v", err)
			}
			if err := e.prepare(p); err != nil {
				t.Fatalf("prepare: %v", err)
			}
			rEvents, rRes, rSnap, rErr := traceRun(e.sys, e.plan, ts.maxWindows)

			if (fErr == nil) != (rErr == nil) || (fErr != nil && fErr.Error() != rErr.Error()) {
				t.Fatalf("errors diverged: fresh %v, recycled %v", fErr, rErr)
			}
			if fRes != rRes {
				t.Fatalf("results diverged:\nfresh    %+v\nrecycled %+v", fRes, rRes)
			}
			if len(fEvents) != len(rEvents) {
				t.Fatalf("event counts diverged: fresh %d, recycled %d", len(fEvents), len(rEvents))
			}
			for i := range fEvents {
				if fEvents[i] != rEvents[i] {
					t.Fatalf("event %d diverged:\nfresh    %s\nrecycled %s", i, fEvents[i], rEvents[i])
				}
			}
			for i := range fSnap {
				if fSnap[i] != rSnap[i] {
					t.Fatalf("processor %d state diverged:\nfresh    %q\nrecycled %q", i, fSnap[i], rSnap[i])
				}
			}
		})
	}
}

// TestPooledSweepMatchesFreshSweep asserts the sweep-level contract: the
// pooled parallel engine (Run), the pooled serial loop (RunSerial), and the
// construct-per-trial reference path all aggregate to identical output.
func TestPooledSweepMatchesFreshSweep(t *testing.T) {
	m := Matrix{
		Algorithms:  []string{"core", "benor"},
		Adversaries: []string{"full", "splitvote", "storm"},
		Sizes:       []Size{{N: 12, T: 1}},
		Inputs:      []string{"split", "ones"},
		Seeds:       []uint64{1, 2, 3},
		MaxWindows:  2000,
	}
	pooled, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	serial, err := m.RunSerial()
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := m.runFresh()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pooled, serial) {
		t.Fatalf("pooled parallel and pooled serial sweeps diverged:\n%+v\n%+v", pooled, serial)
	}
	if !reflect.DeepEqual(pooled, fresh) {
		t.Fatalf("pooled and fresh sweeps diverged:\n%+v\n%+v", pooled, fresh)
	}
}

// TestRecycledEngineReuse sanity-checks the pool plumbing: releasing an
// engine and re-acquiring the same scenario returns the same instance,
// while a different scenario gets its own.
func TestRecycledEngineReuse(t *testing.T) {
	p := Params{N: 12, T: 1, Inputs: SplitInputs(12), Seed: 1}
	e1, err := AcquireTrial("core", "full", "adversary", p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Run(50); err != nil {
		t.Fatal(err)
	}
	e1.Release()
	e2, err := AcquireTrial("core", "full", "adversary", p)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Release()
	if e1 != e2 {
		t.Skip("pool did not hand back the released engine (GC cleared it); nothing to assert")
	}
	other, err := AcquireTrial("benor", "full", "adversary", Params{N: 12, T: 1, Inputs: SplitInputs(12), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer other.Release()
	if other == e2 {
		t.Fatal("distinct scenarios shared one pooled engine")
	}
}
