package registry

import (
	"strings"
	"testing"
)

// knobbedAdversaries lists every adversary declaring tuning knobs, with a
// valid trial shape for each.
func knobbedAdversaries(t *testing.T) []*Adversary {
	t.Helper()
	var out []*Adversary
	for _, name := range AdversaryNames() {
		ad, err := LookupAdversary(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(ad.Knobs) > 0 {
			out = append(out, ad)
		}
	}
	if len(out) == 0 {
		t.Fatal("no adversary declares knobs")
	}
	return out
}

func TestKnobDeclarationsWellFormed(t *testing.T) {
	for _, ad := range knobbedAdversaries(t) {
		for _, k := range ad.Knobs {
			if k.Name == "" || k.Description == "" {
				t.Errorf("%s: knob %+v missing name or description", ad.Name, k)
			}
			if k.Min > k.Max {
				t.Errorf("%s: knob %s has empty range [%d, %d]", ad.Name, k.Name, k.Min, k.Max)
			}
			if k.Default < k.Min || k.Default > k.Max {
				t.Errorf("%s: knob %s default %d outside [%d, %d]", ad.Name, k.Name, k.Default, k.Min, k.Max)
			}
		}
	}
}

func TestValidateKnobs(t *testing.T) {
	sv, err := LookupAdversary("splitvote")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		knobs []int
		want  string // substring of the error, "" = accepted
	}{
		{nil, ""},
		{sv.KnobDefaults(), ""},
		{[]int{sv.Knobs[0].Min}, ""},
		{[]int{sv.Knobs[0].Max}, ""},
		{[]int{sv.Knobs[0].Max + 1}, "outside"},
		{[]int{sv.Knobs[0].Min - 1}, "outside"},
		{[]int{0, 0}, "takes 1 knob(s), got 2"},
		{[]int{}, "takes 1 knob(s), got 0"},
	}
	for _, c := range cases {
		err := sv.ValidateKnobs(Params{AdvKnobs: c.knobs})
		if c.want == "" {
			if err != nil {
				t.Errorf("knobs %v rejected: %v", c.knobs, err)
			}
		} else if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("knobs %v: error %v, want substring %q", c.knobs, err, c.want)
		}
	}
}

// TestKnobDefaultsMatchHistorical pins the compatibility contract: a trial
// with AdvKnobs at every knob's declared default behaves exactly like the
// historical nil-knob construction, for every knobbed adversary.
func TestKnobDefaultsMatchHistorical(t *testing.T) {
	for _, ad := range knobbedAdversaries(t) {
		p := Params{N: 12, T: 1, Seed: 3}
		var err error
		if p.Inputs, err = Inputs("split", p.N, p.Seed); err != nil {
			t.Fatal(err)
		}
		run := func(knobs []int) interface{} {
			p := p
			p.AdvKnobs = knobs
			e, err := AcquireTrial("core", ad.Name, "adversary", p)
			if err != nil {
				t.Fatalf("%s knobs %v: %v", ad.Name, knobs, err)
			}
			defer e.Release()
			res, err := e.Run(500)
			if err != nil {
				t.Fatalf("%s knobs %v: %v", ad.Name, knobs, err)
			}
			return res
		}
		historical := run(nil)
		defaults := run(ad.KnobDefaults())
		if historical != defaults {
			t.Errorf("%s: default knobs diverge from historical construction:\n%+v\nvs\n%+v",
				ad.Name, historical, defaults)
		}
	}
}

func TestAcquireTrialRejectsBadKnobs(t *testing.T) {
	p := Params{N: 12, T: 1, Seed: 1}
	var err error
	if p.Inputs, err = Inputs("ones", p.N, p.Seed); err != nil {
		t.Fatal(err)
	}
	p.AdvKnobs = []int{99}
	if _, err := AcquireTrial("core", "splitvote", "adversary", p); err == nil ||
		!strings.Contains(err.Error(), "outside") {
		t.Fatalf("out-of-range knob accepted: %v", err)
	}
}

func TestInventoryListsKnobs(t *testing.T) {
	var sb strings.Builder
	WriteInventory(&sb)
	for _, want := range []string{"knob capdelta", "knob resetpct", "knob maxresets", "knob offset"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("inventory missing %q:\n%s", want, sb.String())
		}
	}
}
