package registry

import (
	"fmt"
	"testing"

	"asyncagree/internal/sim"
)

// TestShardedTrialMatchesSerial is the determinism contract of the sharded
// window core: for every compatible algorithm × adversary × scheduler triple
// at the smoke-grid shapes, running a trial at shard-worker counts 2 and 4 —
// on fresh and on recycled engines — is byte-identical (every trace event,
// the run summary, and the final per-processor state) to the serial facade.
// Under -race this doubles as the data-race proof for the phase protocol.
func TestShardedTrialMatchesSerial(t *testing.T) {
	small := Matrix{
		Sizes:      []Size{{N: 12, T: 1}},
		Inputs:     []string{"split"},
		Seeds:      []uint64{3},
		MaxWindows: 400,
	}
	trials, err := small.allSpecs()
	if err != nil {
		t.Fatal(err)
	}
	committee := Matrix{
		Algorithms: []string{"committee"},
		Sizes:      []Size{{N: 27, T: 3}},
		Inputs:     []string{"split"},
		Seeds:      []uint64{3},
		MaxWindows: 400,
	}
	committeeTrials, err := committee.allSpecs()
	if err != nil {
		t.Fatal(err)
	}
	trials = append(trials, committeeTrials...)
	if len(trials) == 0 {
		t.Fatal("smoke grid expanded to no trials")
	}
	for _, ts := range trials {
		ts := ts
		name := fmt.Sprintf("%s_%s_%s_%s", ts.Algorithm, ts.Adversary, ts.Scheduler, ts.Size)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			inputs, err := Inputs(ts.Input, ts.Size.N, ts.seed)
			if err != nil {
				t.Fatal(err)
			}
			serial := Params{N: ts.Size.N, T: ts.Size.T, Inputs: inputs, Seed: ts.seed}

			// Serial reference execution (worker count 1).
			sys, err := NewSystem(ts.Algorithm, serial)
			if err != nil {
				t.Fatal(err)
			}
			plan, err := NewScheduledAdversary(ts.Adversary, ts.Scheduler, ts.Algorithm, serial)
			if err != nil {
				t.Fatal(err)
			}
			sEvents, sRes, sSnap, sErr := traceRun(sys, plan, ts.maxWindows)

			for _, workers := range []int{2, 4} {
				p := serial
				p.ShardWorkers = workers

				// Fresh sharded execution.
				shSys, err := NewSystem(ts.Algorithm, p)
				if err != nil {
					t.Fatal(err)
				}
				shPlan, err := NewScheduledAdversary(ts.Adversary, ts.Scheduler, ts.Algorithm, p)
				if err != nil {
					t.Fatal(err)
				}
				fEvents, fRes, fSnap, fErr := traceRun(shSys, shPlan, ts.maxWindows)
				compareTraces(t, fmt.Sprintf("fresh w=%d", workers),
					sEvents, sRes, sSnap, sErr, fEvents, fRes, fSnap, fErr)

				// Recycled sharded execution: dirty a fresh engine with a
				// warm-up trial on another seed/pattern, then rewind it.
				warmInputs, err := Inputs("ones", ts.Size.N, 99)
				if err != nil {
					t.Fatal(err)
				}
				warm := Params{N: ts.Size.N, T: ts.Size.T, Inputs: warmInputs,
					Seed: 99, ShardWorkers: workers}
				key := engineKey{alg: ts.Algorithm, adv: ts.Adversary, sched: ts.Scheduler,
					n: ts.Size.N, t: ts.Size.T}
				e, err := newTrialEngine(key, warm)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := e.Run(150); err != nil {
					t.Fatalf("warm-up trial: %v", err)
				}
				if err := e.prepare(p); err != nil {
					t.Fatalf("prepare: %v", err)
				}
				rEvents, rRes, rSnap, rErr := traceRun(e.sys, e.plan, ts.maxWindows)
				compareTraces(t, fmt.Sprintf("recycled w=%d", workers),
					sEvents, sRes, sSnap, sErr, rEvents, rRes, rSnap, rErr)
			}
		})
	}
}

// compareTraces asserts that a sharded execution's observables are
// byte-identical to the serial reference.
func compareTraces(t *testing.T, label string,
	sEvents []string, sRes sim.RunResult, sSnap []string, sErr error,
	events []string, res sim.RunResult, snap []string, err error) {
	t.Helper()
	if (sErr == nil) != (err == nil) || (sErr != nil && sErr.Error() != err.Error()) {
		t.Fatalf("%s: errors diverged: serial %v, sharded %v", label, sErr, err)
	}
	if sRes != res {
		t.Fatalf("%s: results diverged:\nserial  %+v\nsharded %+v", label, sRes, res)
	}
	if len(sEvents) != len(events) {
		t.Fatalf("%s: event counts diverged: serial %d, sharded %d", label, len(sEvents), len(events))
	}
	for i := range sEvents {
		if sEvents[i] != events[i] {
			t.Fatalf("%s: event %d diverged:\nserial  %s\nsharded %s", label, i, sEvents[i], events[i])
		}
	}
	if len(sSnap) != len(snap) {
		t.Fatalf("%s: snapshot lengths diverged: serial %d, sharded %d", label, len(sSnap), len(snap))
	}
	for i := range sSnap {
		if sSnap[i] != snap[i] {
			t.Fatalf("%s: processor %d state diverged:\nserial  %q\nsharded %q", label, i, sSnap[i], snap[i])
		}
	}
}

// TestShardWorkersRequiresDescriptorOptIn pins the gate: a ShardWorkers
// request engages the sharded core only for algorithms whose descriptor
// declares ParallelDelivery (all current ones do), and k <= 1 always selects
// the serial facade.
func TestShardWorkersRequiresDescriptorOptIn(t *testing.T) {
	p := Params{N: 12, T: 1, Inputs: SplitInputs(12), Seed: 1, ShardWorkers: 4}
	sys, err := NewSystem("core", p)
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.ShardWorkers(); got != 4 {
		t.Fatalf("ShardWorkers = %d, want 4", got)
	}
	p.ShardWorkers = 0
	sys, err = NewSystem("core", p)
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.ShardWorkers(); got != 1 {
		t.Fatalf("ShardWorkers = %d, want serial 1", got)
	}
}
