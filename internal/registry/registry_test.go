package registry

import (
	"strings"
	"testing"

	"asyncagree/internal/adversary"
	"asyncagree/internal/sched"
	"asyncagree/internal/sim"
)

func TestInventoryComplete(t *testing.T) {
	algs := AlgorithmNames()
	wantAlgs := []string{"core", "benor", "bracha", "committee", "paxos"}
	if len(algs) != len(wantAlgs) {
		t.Fatalf("algorithms = %v, want %v", algs, wantAlgs)
	}
	for i, name := range wantAlgs {
		if algs[i] != name {
			t.Fatalf("algorithms = %v, want %v", algs, wantAlgs)
		}
	}
	advs := AdversaryNames()
	wantAdvs := []string{"full", "subsets", "random", "storm", "silence", "splitvote"}
	if len(advs) != len(wantAdvs) {
		t.Fatalf("adversaries = %v, want %v", advs, wantAdvs)
	}
	for i, name := range wantAdvs {
		if advs[i] != name {
			t.Fatalf("adversaries = %v, want %v", advs, wantAdvs)
		}
	}
	scheds := SchedulerNames()
	wantScheds := []string{"adversary", "full", "ascmin", "seeded", "laggard", "alternate"}
	if len(scheds) != len(wantScheds) {
		t.Fatalf("schedulers = %v, want %v", scheds, wantScheds)
	}
	for i, name := range wantScheds {
		if scheds[i] != name {
			t.Fatalf("schedulers = %v, want %v", scheds, wantScheds)
		}
	}
	for _, a := range Algorithms() {
		if a.Description == "" || !a.Modes.Has(ModeWindow) {
			t.Fatalf("algorithm %q under-described", a.Name)
		}
	}
	for _, a := range Adversaries() {
		if a.Description == "" {
			t.Fatalf("adversary %q under-described", a.Name)
		}
	}
	for _, s := range Schedulers() {
		if s.Description == "" || !s.Modes.Has(ModeWindow) {
			t.Fatalf("scheduler %q under-described", s.Name)
		}
	}
}

// TestModeString is the Mode/String table test: every combination renders a
// useful name — in particular the zero Mode is "none", never empty — and
// unknown bits surface explicitly instead of disappearing.
func TestModeString(t *testing.T) {
	cases := []struct {
		m    Mode
		want string
	}{
		{0, "none"},
		{ModeWindow, "window"},
		{ModeStep, "step"},
		{ModeWindow | ModeStep, "window|step"},
		{1 << 5, "Mode(0x20)"},
		{ModeWindow | 1<<5, "window|Mode(0x20)"},
		{ModeWindow | ModeStep | 1<<7, "window|step|Mode(0x80)"},
	}
	for _, c := range cases {
		if got := c.m.String(); got != c.want {
			t.Errorf("Mode(%d).String() = %q, want %q", c.m, got, c.want)
		}
	}
	if !(ModeWindow | ModeStep).Has(ModeStep) || Mode(0).Has(ModeWindow) {
		t.Fatal("Mode.Has broken")
	}
}

func TestRegisterRejectsIncomplete(t *testing.T) {
	if err := RegisterAlgorithm(Algorithm{Name: "broken"}); err == nil {
		t.Fatal("incomplete algorithm accepted")
	}
	if err := RegisterScheduler(Scheduler{Name: "broken"}); err == nil {
		t.Fatal("incomplete scheduler accepted")
	}
	if err := RegisterScheduler(Scheduler{
		Name:       "full", // duplicate
		Compatible: func(*Algorithm, *Adversary, Params) bool { return true },
		New:        func(Params) (sched.Scheduler, error) { return sched.FullDelivery{}, nil },
	}); err == nil {
		t.Fatal("duplicate scheduler accepted")
	}
	if err := RegisterAlgorithm(Algorithm{
		Name:     "core", // duplicate
		Validate: func(Params) error { return nil },
		Factory:  func(Params) (func(sim.ProcID, sim.Bit) sim.Process, error) { return nil, nil },
	}); err == nil {
		t.Fatal("duplicate algorithm accepted")
	}
	if err := RegisterAdversary(Adversary{Name: "broken"}); err == nil {
		t.Fatal("incomplete adversary accepted")
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := LookupAlgorithm("nope"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := LookupAdversary("nope"); err == nil {
		t.Fatal("unknown adversary accepted")
	}
	if _, err := LookupScheduler("nope"); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
	if _, err := NewScheduler("nope", Params{N: 12, T: 1}); err == nil {
		t.Fatal("NewScheduler with unknown scheduler accepted")
	}
	if _, err := NewScheduledAdversary("full", "nope", "core", Params{N: 12, T: 1}); err == nil {
		t.Fatal("NewScheduledAdversary with unknown scheduler accepted")
	}
	if _, err := NewSystem("nope", Params{N: 4, T: 1}); err == nil {
		t.Fatal("NewSystem with unknown algorithm accepted")
	}
	if _, err := NewAdversary("nope", "core", Params{N: 12, T: 1}); err == nil {
		t.Fatal("NewAdversary with unknown adversary accepted")
	}
}

func TestValidationMatchesConstraints(t *testing.T) {
	bad := []struct {
		alg string
		p   Params
	}{
		{"core", Params{N: 12, T: 2}},                             // t >= n/6
		{"benor", Params{N: 4, T: 2}},                             // t >= n/2
		{"bracha", Params{N: 6, T: 2}},                            // n <= 3t
		{"committee", Params{N: 12, T: 1}},                        // too few survivors for the final committee
		{"paxos", Params{N: 5, T: 1, Proposers: []sim.ProcID{9}}}, // proposer out of range
	}
	for _, c := range bad {
		alg, err := LookupAlgorithm(c.alg)
		if err != nil {
			t.Fatal(err)
		}
		if err := alg.Validate(c.p); err == nil {
			t.Fatalf("%s accepted %+v", c.alg, c.p)
		}
		if _, err := NewSystem(c.alg, c.p); err == nil {
			t.Fatalf("NewSystem(%s) accepted %+v", c.alg, c.p)
		}
	}
}

// TestAdversaryStateIsFresh guards the parallel-trial invariant: every
// NewAdversary call must return fresh mutable state, never a shared
// instance.
func TestAdversaryStateIsFresh(t *testing.T) {
	p := Params{N: 12, T: 1, Seed: 1}
	for _, name := range []string{"storm", "splitvote", "random", "subsets"} {
		a1, err := NewAdversary(name, "core", p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		a2, err := NewAdversary(name, "core", p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a1 == a2 {
			t.Fatalf("%s: NewAdversary returned a shared instance", name)
		}
	}
}

// TestSchedulerStateIsFresh extends the same invariant to the stateful
// delivery schedulers (rotation cursors, rng streams, reusable scratch).
func TestSchedulerStateIsFresh(t *testing.T) {
	p := Params{N: 12, T: 1, Seed: 1}
	for _, name := range []string{"ascmin", "seeded", "laggard", "alternate"} {
		s1, err := NewScheduler(name, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s2, err := NewScheduler(name, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s1 == s2 {
			t.Fatalf("%s: NewScheduler returned a shared instance", name)
		}
	}
}

// TestSchedulerWindowRunnable pins the Modes gate: the sweep matrix runs
// window-mode trials, so a scheduler without ModeWindow support is never
// expanded no matter what its own predicate says.
func TestSchedulerWindowRunnable(t *testing.T) {
	alg, err := LookupAlgorithm("core")
	if err != nil {
		t.Fatal(err)
	}
	adv, err := LookupAdversary("full")
	if err != nil {
		t.Fatal(err)
	}
	p := Params{N: 12, T: 1}
	stepOnly := &Scheduler{
		Name:       "step-only",
		Modes:      ModeStep,
		Compatible: func(*Algorithm, *Adversary, Params) bool { return true },
		New:        func(Params) (sched.Scheduler, error) { return sched.FullDelivery{}, nil },
	}
	if stepOnly.WindowRunnable(alg, adv, p) {
		t.Fatal("step-only scheduler reported window-runnable")
	}
	windowed, err := LookupScheduler("full")
	if err != nil {
		t.Fatal(err)
	}
	if !windowed.WindowRunnable(alg, adv, p) {
		t.Fatal("full scheduler not window-runnable against core/full")
	}
}

// TestSchedulerCompatibilityMatrix pins the scheduler axis filter: sender-
// set-overriding schedulers reject adversaries whose strategy lives in
// those sets, lossy schedulers reject full-delivery-dependent algorithms,
// and persistently silencing schedulers additionally require silence
// tolerance.
func TestSchedulerCompatibilityMatrix(t *testing.T) {
	p := Params{N: 27, T: 3}
	cases := []struct {
		sched, adv, alg string
		want            bool
	}{
		{"adversary", "splitvote", "core", true}, // keeps the adversary's senders
		{"adversary", "full", "committee", true},
		{"full", "full", "committee", true},     // loss-free discipline
		{"full", "splitvote", "core", false},    // would nullify the stalling strategy
		{"full", "silence", "core", false},      // would nullify the silence
		{"ascmin", "full", "core", true},        //
		{"ascmin", "full", "paxos", false},      // persistent starvation can pin the proposer
		{"ascmin", "full", "committee", false},  // lossy vs full-delivery dependence
		{"ascmin", "subsets", "core", false},    // subsets plans its own senders
		{"seeded", "full", "paxos", true},       // bounded loss, termination not asserted
		{"seeded", "full", "committee", false},  //
		{"laggard", "storm", "core", true},      // storm plans resets, not senders
		{"laggard", "random", "core", false},    // random plans senders too
		{"alternate", "full", "bracha", true},   //
		{"alternate", "full", "paxos", false},   // odd windows persistently starve the top t
		{"seeded", "silence", "benor", false},   //
		{"full", "storm", "core", true},         //
		{"laggard", "full", "committee", false}, //
	}
	for _, c := range cases {
		got, err := SchedulerCompatible(c.sched, c.adv, c.alg, p)
		if err != nil {
			t.Fatalf("SchedulerCompatible(%s, %s, %s): %v", c.sched, c.adv, c.alg, err)
		}
		if got != c.want {
			t.Fatalf("SchedulerCompatible(%s, %s, %s) = %v, want %v", c.sched, c.adv, c.alg, got, c.want)
		}
	}
}

func TestSplitVoteConstruction(t *testing.T) {
	// Tuned caps: core uses T3-1, Ben-Or floor(n/2).
	adv, err := NewAdversary("splitvote", "core", Params{N: 24, T: 3})
	if err != nil {
		t.Fatal(err)
	}
	sv, ok := adv.(*adversary.SplitVote)
	if !ok {
		t.Fatalf("splitvote built %T", adv)
	}
	if want := 24 - 3*3 - 1; sv.Cap != want {
		t.Fatalf("core cap = %d, want %d", sv.Cap, want)
	}
	adv, err = NewAdversary("splitvote", "benor", Params{N: 9, T: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sv := adv.(*adversary.SplitVote); sv.Cap != 4 {
		t.Fatalf("benor cap = %d, want 4", sv.Cap)
	}
	// Hard error for algorithms with no vote classifier.
	if _, err := NewAdversary("splitvote", "paxos", Params{N: 5, T: 2}); err == nil {
		t.Fatal("splitvote against paxos accepted")
	}
}

func TestSilenceValidatedAtConstruction(t *testing.T) {
	// The registry silences the first t processors; FixedSilence must
	// reject an invalid explicit set up front.
	if _, err := adversary.NewFixedSilence(12, 1, []sim.ProcID{0, 1}); err == nil {
		t.Fatal("silent set larger than t accepted")
	}
	if _, err := adversary.NewFixedSilence(12, 2, []sim.ProcID{12}); err == nil {
		t.Fatal("out-of-range silent processor accepted")
	}
	if _, err := adversary.NewFixedSilence(12, 2, []sim.ProcID{1, 1}); err == nil {
		t.Fatal("duplicate silent processor accepted")
	}
	adv, err := NewAdversary("silence", "core", Params{N: 12, T: 1})
	if err != nil {
		t.Fatal(err)
	}
	fs, ok := adv.(adversary.FixedSilence)
	if !ok || len(fs.Silent) != 1 || fs.Silent[0] != 0 {
		t.Fatalf("silence built %#v", adv)
	}
}

func TestCompatibilityMatrix(t *testing.T) {
	p := Params{N: 27, T: 3}
	cases := []struct {
		adv, alg string
		want     bool
	}{
		{"full", "core", true},
		{"full", "committee", true},
		{"subsets", "committee", false}, // lossy scheduling wedges committee groups
		{"subsets", "paxos", true},
		{"random", "core", true},
		{"random", "benor", false}, // resets undefined for non-reset-tolerant baselines
		{"storm", "bracha", false},
		{"silence", "benor", true},
		{"silence", "paxos", false}, // can silence the only proposer
		{"splitvote", "benor", true},
		{"splitvote", "bracha", false},
	}
	for _, c := range cases {
		got, err := Compatible(c.adv, c.alg, p)
		if err != nil {
			t.Fatalf("Compatible(%s, %s): %v", c.adv, c.alg, err)
		}
		if got != c.want {
			t.Fatalf("Compatible(%s, %s) = %v, want %v", c.adv, c.alg, got, c.want)
		}
	}
}

func TestInputPatterns(t *testing.T) {
	for _, p := range InputPatterns() {
		in, err := Inputs(p.Name, 9, 5)
		if err != nil || len(in) != 9 {
			t.Fatalf("Inputs(%q) = %v, %v", p.Name, in, err)
		}
	}
	if _, err := Inputs("nope", 9, 5); err == nil {
		t.Fatal("unknown pattern accepted")
	}
	split := SplitInputs(4)
	if split[0] != 0 || split[1] != 1 || split[2] != 0 || split[3] != 1 {
		t.Fatalf("SplitInputs = %v", split)
	}
	for _, v := range UnanimousInputs(5, 1) {
		if v != 1 {
			t.Fatal("UnanimousInputs wrong")
		}
	}
	names := strings.Join(InputPatternNames(), ",")
	if names != "split,zeros,ones,blocks" {
		t.Fatalf("pattern names = %s", names)
	}
}
