package registry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"asyncagree/internal/sim"
)

// TrialRecord is the unit of the streaming result pipeline: one completed
// trial's coordinates and outcome. It is what sinks consume, what the
// JSONL/CSV exports serialize, and what checkpoint files round-trip — the
// record carries the full sim.RunResult, so a resumed sweep can replay
// completed trials through aggregation without re-executing them.
type TrialRecord struct {
	// Index is the trial's position in grid expansion order; emission and
	// checkpoints are strictly Index-ordered.
	Index int `json:"index"`
	// Algorithm is the registry key of the trial's algorithm.
	Algorithm string `json:"algorithm"`
	// Adversary is the registry key of the trial's adversary.
	Adversary string `json:"adversary"`
	// Scheduler is the registry key of the trial's delivery scheduler.
	Scheduler string `json:"scheduler"`
	// Input is the registry key of the trial's input pattern.
	Input string `json:"input"`
	// N is the cell's processor count.
	N int `json:"n"`
	// T is the cell's fault budget.
	T int `json:"t"`
	// Seed is the trial's seed.
	Seed uint64 `json:"seed"`
	// Windows mirrors sim.RunResult.Windows.
	Windows int `json:"windows"`
	// FirstDecision mirrors sim.RunResult.FirstDecision.
	FirstDecision int `json:"first_decision"`
	// AllDecided mirrors sim.RunResult.AllDecided.
	AllDecided bool `json:"all_decided"`
	// Agreement mirrors sim.RunResult.Agreement.
	Agreement bool `json:"agreement"`
	// Validity mirrors sim.RunResult.Validity.
	Validity bool `json:"validity"`
	// Decision mirrors sim.RunResult.Decision.
	Decision int `json:"decision"`
	// MaxChain mirrors sim.RunResult.MaxChainDepth.
	MaxChain int `json:"max_chain"`
}

// newTrialRecord assembles the record of one completed trial.
func newTrialRecord(index int, ts trialSpec, res sim.RunResult) TrialRecord {
	return TrialRecord{
		Index:     index,
		Algorithm: ts.Algorithm, Adversary: ts.Adversary,
		Scheduler: ts.Scheduler, Input: ts.Input,
		N: ts.Size.N, T: ts.Size.T, Seed: ts.seed,
		Windows: res.Windows, FirstDecision: res.FirstDecision,
		AllDecided: res.AllDecided, Agreement: res.Agreement,
		Validity: res.Validity, Decision: int(res.Decision),
		MaxChain: res.MaxChainDepth,
	}
}

// Key renders the record's stable trial identity, matching trialSpec.key.
func (r TrialRecord) Key() string {
	return fmt.Sprintf("%s/%s/%s/%s/%d:%d#%d",
		r.Algorithm, r.Adversary, r.Scheduler, r.Input, r.N, r.T, r.Seed)
}

// Result reconstructs the sim.RunResult the record was built from.
func (r TrialRecord) Result() sim.RunResult {
	return sim.RunResult{
		Windows: r.Windows, FirstDecision: r.FirstDecision,
		AllDecided: r.AllDecided, Agreement: r.Agreement,
		Validity: r.Validity, Decision: sim.Bit(r.Decision),
		MaxChainDepth: r.MaxChain,
	}
}

// ResultSink consumes completed trials in strictly increasing Index order.
// Matrix.RunWith calls Consume on the serial emission path (never
// concurrently) and Flush exactly once at the end of the run — including
// interrupted and failed runs, so everything consumed is durable.
type ResultSink interface {
	// Consume accepts the next completed trial; an error aborts the sweep
	// (surfaced like a failing trial at that index).
	Consume(TrialRecord) error
	// Flush makes everything consumed durable.
	Flush() error
}

// JSONLSink streams records as one JSON object per line — the machine-
// readable sweep export and the checkpoint body format.
type JSONLSink struct {
	w *bufio.Writer
}

// NewJSONLSink wraps w in a buffered JSONL record writer.
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{w: bufio.NewWriter(w)} }

// Consume implements ResultSink.
func (s *JSONLSink) Consume(rec TrialRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = s.w.Write(b)
	return err
}

// Flush implements ResultSink.
func (s *JSONLSink) Flush() error { return s.w.Flush() }

// csvHeader is the CSVSink column order (one column per TrialRecord field).
var csvHeader = []string{"index", "algorithm", "adversary", "scheduler", "input",
	"n", "t", "seed", "windows", "first_decision", "all_decided", "agreement",
	"validity", "decision", "max_chain"}

// CSVSink streams records as comma-separated rows under a fixed header.
type CSVSink struct {
	w           *bufio.Writer
	wroteHeader bool
}

// NewCSVSink wraps w in a buffered CSV record writer; the header row is
// written before the first record.
func NewCSVSink(w io.Writer) *CSVSink { return &CSVSink{w: bufio.NewWriter(w)} }

// SkipHeader marks the header as already present — used when appending to
// a partially written file on resume.
func (s *CSVSink) SkipHeader() { s.wroteHeader = true }

// Consume implements ResultSink.
func (s *CSVSink) Consume(rec TrialRecord) error {
	if !s.wroteHeader {
		if _, err := s.w.WriteString(strings.Join(csvHeader, ",") + "\n"); err != nil {
			return err
		}
		s.wroteHeader = true
	}
	row := []string{
		strconv.Itoa(rec.Index), rec.Algorithm, rec.Adversary, rec.Scheduler, rec.Input,
		strconv.Itoa(rec.N), strconv.Itoa(rec.T), strconv.FormatUint(rec.Seed, 10),
		strconv.Itoa(rec.Windows), strconv.Itoa(rec.FirstDecision),
		strconv.FormatBool(rec.AllDecided), strconv.FormatBool(rec.Agreement),
		strconv.FormatBool(rec.Validity), strconv.Itoa(rec.Decision),
		strconv.Itoa(rec.MaxChain),
	}
	_, err := s.w.WriteString(strings.Join(row, ",") + "\n")
	return err
}

// Flush implements ResultSink.
func (s *CSVSink) Flush() error { return s.w.Flush() }

// checkpointHeader is the first line of a checkpoint file: the resolved
// grid signature it was recorded against plus a format version.
type checkpointHeader struct {
	Version int    `json:"version"`
	Grid    string `json:"grid"`
}

const checkpointVersion = 1

// WriteCheckpointHeader starts a checkpoint stream: the header line, after
// which every completed trial is appended as a JSONL TrialRecord (a
// JSONLSink over the same writer).
func WriteCheckpointHeader(w io.Writer, grid string) error {
	b, err := json.Marshal(checkpointHeader{Version: checkpointVersion, Grid: grid})
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// LoadCheckpoint reads the completed-trial prefix recorded in a checkpoint
// file. A missing file yields (nil, nil) — a fresh run. A grid signature
// mismatch is an error: the trial indices of a different grid would not
// line up. A torn final line (the run was killed mid-write) is discarded;
// everything before it is the durable prefix. Records must be the
// contiguous Index prefix 0..k-1 the index-ordered emission guarantees.
func LoadCheckpoint(path, grid string) ([]TrialRecord, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		return nil, nil // empty file: treat as fresh
	}
	var hdr checkpointHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("registry: %s: bad checkpoint header: %w", path, err)
	}
	if hdr.Version != checkpointVersion {
		return nil, fmt.Errorf("registry: %s: checkpoint version %d, want %d", path, hdr.Version, checkpointVersion)
	}
	if hdr.Grid != grid {
		return nil, fmt.Errorf("registry: %s: checkpoint grid %q does not match current grid %q",
			path, hdr.Grid, grid)
	}
	var records []TrialRecord
	for sc.Scan() {
		var rec TrialRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			break // torn tail: keep the durable prefix
		}
		if rec.Index != len(records) {
			return nil, fmt.Errorf("registry: %s: checkpoint record %d has index %d (not a contiguous prefix)",
				path, len(records), rec.Index)
		}
		records = append(records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return records, nil
}
