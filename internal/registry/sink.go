package registry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"asyncagree/internal/sim"
)

// TrialRecord is the unit of the streaming result pipeline: one completed
// trial's coordinates and outcome. It is what sinks consume, what the
// JSONL/CSV exports serialize, and what checkpoint files round-trip — the
// record carries the full sim.RunResult, so a resumed sweep can replay
// completed trials through aggregation without re-executing them.
type TrialRecord struct {
	// Index is the trial's position in grid expansion order; emission and
	// checkpoints are strictly Index-ordered.
	Index int `json:"index"`
	// Algorithm is the registry key of the trial's algorithm.
	Algorithm string `json:"algorithm"`
	// Adversary is the registry key of the trial's adversary.
	Adversary string `json:"adversary"`
	// Scheduler is the registry key of the trial's delivery scheduler.
	Scheduler string `json:"scheduler"`
	// Input is the registry key of the trial's input pattern.
	Input string `json:"input"`
	// N is the cell's processor count.
	N int `json:"n"`
	// T is the cell's fault budget.
	T int `json:"t"`
	// Seed is the trial's seed.
	Seed uint64 `json:"seed"`
	// Windows mirrors sim.RunResult.Windows.
	Windows int `json:"windows"`
	// FirstDecision mirrors sim.RunResult.FirstDecision.
	FirstDecision int `json:"first_decision"`
	// AllDecided mirrors sim.RunResult.AllDecided.
	AllDecided bool `json:"all_decided"`
	// Agreement mirrors sim.RunResult.Agreement.
	Agreement bool `json:"agreement"`
	// Validity mirrors sim.RunResult.Validity.
	Validity bool `json:"validity"`
	// Decision mirrors sim.RunResult.Decision.
	Decision int `json:"decision"`
	// MaxChain mirrors sim.RunResult.MaxChainDepth.
	MaxChain int `json:"max_chain"`
	// FaultKind classifies a faulted trial (FaultPanic, FaultDeadline,
	// FaultError, FaultQuarantined); empty for a clean trial. Both fault
	// fields marshal with omitempty, so clean records — and therefore whole
	// clean runs — serialize byte-identically to the pre-fault format.
	FaultKind string `json:"fault_kind,omitempty"`
	// Fault is the human-readable fault description (panic value and stack,
	// deadline report, or quarantine reason); empty for a clean trial.
	Fault string `json:"fault,omitempty"`
}

// Fault kinds recorded in TrialRecord.FaultKind.
const (
	// FaultPanic marks a trial whose execution panicked; Fault carries the
	// panic value and the recovered stack.
	FaultPanic = "panic"
	// FaultDeadline marks a trial stopped by the stall watchdog; the partial
	// result fields describe the configuration at the stop.
	FaultDeadline = "deadline"
	// FaultError marks a trial whose execution returned an error (an illegal
	// window, a safety violation, a construction failure).
	FaultError = "error"
	// FaultQuarantined marks a trial skipped because its cell was
	// quarantined after consecutive faults; Fault carries the quarantine
	// reason.
	FaultQuarantined = "quarantined"
)

// Faulted reports whether the record describes a faulted (non-clean) trial.
func (r TrialRecord) Faulted() bool { return r.FaultKind != "" }

// newTrialRecord assembles the record of one completed trial.
func newTrialRecord(index int, ts trialSpec, res sim.RunResult) TrialRecord {
	return TrialRecord{
		Index:     index,
		Algorithm: ts.Algorithm, Adversary: ts.Adversary,
		Scheduler: ts.Scheduler, Input: ts.Input,
		N: ts.Size.N, T: ts.Size.T, Seed: ts.seed,
		Windows: res.Windows, FirstDecision: res.FirstDecision,
		AllDecided: res.AllDecided, Agreement: res.Agreement,
		Validity: res.Validity, Decision: int(res.Decision),
		MaxChain: res.MaxChainDepth,
	}
}

// Key renders the record's stable trial identity, matching trialSpec.key.
func (r TrialRecord) Key() string {
	return fmt.Sprintf("%s/%s/%s/%s/%d:%d#%d",
		r.Algorithm, r.Adversary, r.Scheduler, r.Input, r.N, r.T, r.Seed)
}

// Result reconstructs the sim.RunResult the record was built from.
func (r TrialRecord) Result() sim.RunResult {
	return sim.RunResult{
		Windows: r.Windows, FirstDecision: r.FirstDecision,
		AllDecided: r.AllDecided, Agreement: r.Agreement,
		Validity: r.Validity, Decision: sim.Bit(r.Decision),
		MaxChainDepth: r.MaxChain,
	}
}

// ResultSink consumes completed trials in strictly increasing Index order.
// Matrix.RunWith calls Consume on the serial emission path (never
// concurrently) and Flush exactly once at the end of the run — including
// interrupted and failed runs, so everything consumed is durable.
type ResultSink interface {
	// Consume accepts the next completed trial; an error aborts the sweep
	// (surfaced like a failing trial at that index).
	Consume(TrialRecord) error
	// Flush makes everything consumed durable.
	Flush() error
}

// NamedSink attaches a human-readable name (typically the output path) to a
// sink so RunWith's degradation reports can say which sink was dropped.
type NamedSink struct {
	// Name identifies the sink in failure reports, e.g. its file path.
	Name string
	ResultSink
}

// sinkLabel names a sink for degradation reports.
func sinkLabel(i int, s ResultSink) string {
	switch ns := s.(type) {
	case NamedSink:
		return ns.Name
	case *NamedSink:
		return ns.Name
	}
	return fmt.Sprintf("sink %d", i)
}

// JSONLSink streams records as one JSON object per line — the machine-
// readable sweep export and the checkpoint body format.
type JSONLSink struct {
	w *bufio.Writer
}

// NewJSONLSink wraps w in a buffered JSONL record writer.
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{w: bufio.NewWriter(w)} }

// Consume implements ResultSink.
func (s *JSONLSink) Consume(rec TrialRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = s.w.Write(b)
	return err
}

// Flush implements ResultSink.
func (s *JSONLSink) Flush() error { return s.w.Flush() }

// csvHeader is the CSVSink column order (one column per TrialRecord field).
var csvHeader = []string{"index", "algorithm", "adversary", "scheduler", "input",
	"n", "t", "seed", "windows", "first_decision", "all_decided", "agreement",
	"validity", "decision", "max_chain", "fault_kind", "fault"}

// csvEscape quotes a field per RFC 4180 when it contains a comma, quote, or
// newline (fault descriptions carry stacks); plain fields — every field of
// a clean record — pass through unchanged, keeping clean rows byte-stable.
func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n\r") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// CSVSink streams records as comma-separated rows under a fixed header.
type CSVSink struct {
	w           *bufio.Writer
	wroteHeader bool
}

// NewCSVSink wraps w in a buffered CSV record writer; the header row is
// written before the first record.
func NewCSVSink(w io.Writer) *CSVSink { return &CSVSink{w: bufio.NewWriter(w)} }

// SkipHeader marks the header as already present — used when appending to
// a partially written file on resume.
func (s *CSVSink) SkipHeader() { s.wroteHeader = true }

// Consume implements ResultSink.
func (s *CSVSink) Consume(rec TrialRecord) error {
	if !s.wroteHeader {
		if _, err := s.w.WriteString(strings.Join(csvHeader, ",") + "\n"); err != nil {
			return err
		}
		s.wroteHeader = true
	}
	row := []string{
		strconv.Itoa(rec.Index), rec.Algorithm, rec.Adversary, rec.Scheduler, rec.Input,
		strconv.Itoa(rec.N), strconv.Itoa(rec.T), strconv.FormatUint(rec.Seed, 10),
		strconv.Itoa(rec.Windows), strconv.Itoa(rec.FirstDecision),
		strconv.FormatBool(rec.AllDecided), strconv.FormatBool(rec.Agreement),
		strconv.FormatBool(rec.Validity), strconv.Itoa(rec.Decision),
		strconv.Itoa(rec.MaxChain),
		rec.FaultKind, csvEscape(rec.Fault),
	}
	_, err := s.w.WriteString(strings.Join(row, ",") + "\n")
	return err
}

// Flush implements ResultSink.
func (s *CSVSink) Flush() error { return s.w.Flush() }

// checkpointHeader is the first line of a checkpoint file: the resolved
// grid signature it was recorded against plus a format version.
type checkpointHeader struct {
	Version int    `json:"version"`
	Grid    string `json:"grid"`
}

const checkpointVersion = 1

// WriteCheckpointHeader starts a checkpoint stream: the header line, after
// which every completed trial is appended as a JSONL TrialRecord (a
// JSONLSink over the same writer).
func WriteCheckpointHeader(w io.Writer, grid string) error {
	b, err := json.Marshal(checkpointHeader{Version: checkpointVersion, Grid: grid})
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// SalvageReport describes what checkpoint loading had to discard to
// recover a usable prefix. The zero value means the file was pristine.
type SalvageReport struct {
	// CorruptLines lists the 1-based line numbers of mid-file records that
	// failed to parse and were skipped (the following record continued the
	// index sequence, proving the corrupt line was garbage insertion, not a
	// lost record).
	CorruptLines []int
	// TornTail reports an unparseable final line — the classic shape of a
	// run killed mid-append — discarded without shortening the prefix.
	TornTail bool
	// DroppedAfterGap counts trailing lines (parseable or not) discarded
	// because a corrupt region swallowed at least one record: the index
	// sequence could not be re-verified past the gap, so the durable prefix
	// ends before it.
	DroppedAfterGap int
}

// Empty reports whether loading salvaged nothing (the file was pristine).
func (r *SalvageReport) Empty() bool {
	return r == nil || len(r.CorruptLines) == 0 && !r.TornTail && r.DroppedAfterGap == 0
}

// String renders the salvage summary for run logs.
func (r *SalvageReport) String() string {
	if r.Empty() {
		return "checkpoint intact"
	}
	var parts []string
	if n := len(r.CorruptLines); n > 0 {
		lines := make([]string, n)
		for i, l := range r.CorruptLines {
			lines[i] = strconv.Itoa(l)
		}
		parts = append(parts, fmt.Sprintf("skipped %d corrupt record(s) (line %s)", n, strings.Join(lines, ",")))
	}
	if r.TornTail {
		parts = append(parts, "discarded torn final line")
	}
	if r.DroppedAfterGap > 0 {
		parts = append(parts, fmt.Sprintf("dropped %d line(s) after an unrecoverable gap", r.DroppedAfterGap))
	}
	return "checkpoint salvage: " + strings.Join(parts, "; ")
}

// LoadCheckpoint reads the completed-trial prefix recorded in a checkpoint
// file, discarding whatever damage can be proven harmless (see
// LoadCheckpointSalvage, which it wraps discarding the report).
func LoadCheckpoint(path, grid string) ([]TrialRecord, error) {
	records, _, err := LoadCheckpointSalvage(path, grid)
	return records, err
}

// LoadCheckpointSalvage reads the completed-trial prefix recorded in a
// checkpoint file. A missing file yields (nil, nil, nil) — a fresh run. A
// grid signature mismatch (or an unreadable header) is an error: the trial
// indices of a different grid would not line up, and a header can't be
// salvaged because the grid check is what makes the records trustworthy.
//
// Body damage is salvaged instead of fatal, and reported:
//
//   - A torn final line (the run was killed mid-write) is discarded;
//     everything before it is the durable prefix.
//   - A corrupt mid-file record is skipped if the next parseable record
//     continues the contiguous index sequence 0..k-1 — the skip is
//     re-verified, so only proven garbage insertions are ignored.
//   - If the index sequence cannot be re-verified past a corrupt region
//     (a record was lost inside it), the prefix ends at the last verified
//     record and everything after the gap is dropped.
//
// A non-contiguous index in an otherwise clean file is still an error: with
// no corruption to blame, the file does not hold the index-ordered prefix
// emission guarantees, and resuming from it would misalign every trial.
func LoadCheckpointSalvage(path, grid string) ([]TrialRecord, *SalvageReport, error) {
	return LoadCheckpointRecords(path, grid, func(r TrialRecord) int { return r.Index })
}

// LoadCheckpointRecords is the format-generic core of checkpoint loading,
// shared by the sweep checkpoints (TrialRecord bodies) and the search
// checkpoints (search evaluation records): the header/signature check and
// the salvage semantics are exactly those documented on
// LoadCheckpointSalvage, with body lines unmarshaled into R. index must
// return a record's position field; a loadable file holds the contiguous
// prefix 0..k-1.
func LoadCheckpointRecords[R any](path, grid string, index func(R) int) ([]R, *SalvageReport, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		return nil, nil, nil // empty file: treat as fresh
	}
	var hdr checkpointHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, nil, fmt.Errorf("registry: %s: bad checkpoint header: %w", path, err)
	}
	if hdr.Version != checkpointVersion {
		return nil, nil, fmt.Errorf("registry: %s: checkpoint version %d, want %d", path, hdr.Version, checkpointVersion)
	}
	if hdr.Grid != grid {
		return nil, nil, fmt.Errorf("registry: %s: checkpoint grid %q does not match current grid %q",
			path, hdr.Grid, grid)
	}
	var (
		records []R
		rep     = &SalvageReport{}
		line    = 1   // the header was line 1
		pending []int // unparseable lines since the last verified record
	)
	for sc.Scan() {
		line++
		var rec R
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			pending = append(pending, line)
			continue
		}
		if index(rec) == len(records) {
			// The record continues the prefix: any unparseable lines before
			// it were garbage insertions, proven skippable.
			rep.CorruptLines = append(rep.CorruptLines, pending...)
			pending = nil
			records = append(records, rec)
			continue
		}
		if len(pending) > 0 || len(rep.CorruptLines) > 0 {
			// A corrupt region swallowed at least one record; the sequence
			// cannot be re-verified past the gap, so the prefix ends here.
			rep.DroppedAfterGap = 1 + len(pending)
			pending = nil
			for sc.Scan() {
				rep.DroppedAfterGap++
			}
			break
		}
		return nil, nil, fmt.Errorf("registry: %s: checkpoint record %d has index %d (not a contiguous prefix)",
			path, len(records), index(rec))
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	switch len(pending) {
	case 0:
	case 1:
		rep.TornTail = true // the classic killed-mid-append shape
	default:
		rep.CorruptLines = append(rep.CorruptLines, pending[:len(pending)-1]...)
		rep.TornTail = true
	}
	return records, rep, nil
}
