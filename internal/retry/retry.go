// Package retry provides bounded retry with deterministic backoff for the
// result-pipeline's I/O edges (sink writes, checkpoint appends).
//
// The policy is deliberately minimal and fully deterministic: a fixed
// attempt budget and an exponential backoff schedule computed purely from
// the attempt number (no jitter, no clock reads), so a faulted run retries
// on exactly the same schedule every time — the property the deterministic
// fault-injection harness (internal/faultinject) asserts on. Sleeping is
// pluggable so tests and chaos runs execute the schedule without waiting.
package retry

import (
	"context"
	"fmt"
	"io"
	"time"
)

// Policy bounds a retried operation: up to Attempts tries with Backoff
// sleeps between consecutive tries. The zero Policy is usable and means
// "one try, no retry".
type Policy struct {
	// Attempts is the total number of tries (first try included). Values
	// below 1 behave as 1.
	Attempts int
	// Base is the sleep before the first retry; the delay doubles each
	// further retry (deterministic exponential backoff, no jitter).
	Base time.Duration
	// Max caps the per-retry delay; 0 means uncapped.
	Max time.Duration
	// Sleep replaces time.Sleep, letting tests and chaos harnesses run the
	// schedule without wall-clock waiting. Nil means time.Sleep.
	Sleep func(time.Duration)
}

// Backoff returns the deterministic delay before retry number retry
// (1-based: the sleep between try retry and try retry+1).
func (p Policy) Backoff(retry int) time.Duration {
	if p.Base <= 0 || retry < 1 {
		return 0
	}
	d := p.Base
	for i := 1; i < retry; i++ {
		d *= 2
		if p.Max > 0 && d >= p.Max {
			return p.Max
		}
	}
	if p.Max > 0 && d > p.Max {
		return p.Max
	}
	return d
}

// attempts returns the effective try budget.
func (p Policy) attempts() int {
	if p.Attempts < 1 {
		return 1
	}
	return p.Attempts
}

// sleep waits for d through the configured sleeper.
func (p Policy) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if p.Sleep != nil {
		p.Sleep(d)
		return
	}
	time.Sleep(d)
}

// Do runs op up to Attempts times, sleeping Backoff(i) between tries, and
// returns nil on the first success. On exhaustion it returns the last error
// wrapped with the attempt count.
func (p Policy) Do(op func() error) error {
	var err error
	n := p.attempts()
	for i := 1; i <= n; i++ {
		if err = op(); err == nil {
			return nil
		}
		if i < n {
			p.sleep(p.Backoff(i))
		}
	}
	if n > 1 {
		return fmt.Errorf("retry: %d attempts exhausted: %w", n, err)
	}
	return err
}

// DoCtx is Do with cooperative cancellation: a done ctx is honored before
// the first attempt (op is never called), between attempts, and — crucially
// for draining servers and canceled load runs — during a backoff sleep,
// which is interrupted immediately instead of running to completion. On
// cancellation the context error is returned, wrapped with the last attempt
// error when at least one attempt ran. The backoff schedule itself is
// unchanged from Do: cancellation truncates it, never reshapes it.
func (p Policy) DoCtx(ctx context.Context, op func() error) error {
	if cerr := ctx.Err(); cerr != nil {
		return fmt.Errorf("retry: canceled before first attempt: %w", cerr)
	}
	var err error
	n := p.attempts()
	for i := 1; i <= n; i++ {
		if err = op(); err == nil {
			return nil
		}
		if i < n {
			if cerr := p.sleepCtx(ctx, p.Backoff(i)); cerr != nil {
				return fmt.Errorf("retry: canceled after %d attempt(s) (last error: %v): %w", i, err, cerr)
			}
		}
	}
	if n > 1 {
		return fmt.Errorf("retry: %d attempts exhausted: %w", n, err)
	}
	return err
}

// sleepCtx waits for d or until ctx is done, whichever comes first,
// returning the context error on cancellation. A configured Sleep hook runs
// to completion (tests substitute instant sleeps) with ctx re-checked
// after; the real-clock path parks on a timer that ctx interrupts.
func (p Policy) sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	if p.Sleep != nil {
		p.Sleep(d)
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Writer wraps w so every Write is retried under the policy. Partial writes
// are resumed from the failure point (never re-writing bytes the underlying
// writer already accepted), so a transient failure below a record-oriented
// sink cannot duplicate or tear records that eventually succeed.
type Writer struct {
	w io.Writer
	p Policy
}

// NewWriter returns a retrying writer over w.
func NewWriter(w io.Writer, p Policy) *Writer { return &Writer{w: w, p: p} }

// Write implements io.Writer with bounded per-chunk retry.
func (rw *Writer) Write(b []byte) (int, error) {
	written := 0
	err := rw.p.Do(func() error {
		n, werr := rw.w.Write(b[written:])
		written += n
		if werr == nil && written < len(b) {
			werr = io.ErrShortWrite
		}
		return werr
	})
	return written, err
}
