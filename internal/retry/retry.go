// Package retry provides bounded retry with deterministic backoff for the
// result-pipeline's I/O edges (sink writes, checkpoint appends).
//
// The policy is deliberately minimal and fully deterministic: a fixed
// attempt budget and an exponential backoff schedule computed purely from
// the attempt number (no jitter, no clock reads), so a faulted run retries
// on exactly the same schedule every time — the property the deterministic
// fault-injection harness (internal/faultinject) asserts on. Sleeping is
// pluggable so tests and chaos runs execute the schedule without waiting.
package retry

import (
	"fmt"
	"io"
	"time"
)

// Policy bounds a retried operation: up to Attempts tries with Backoff
// sleeps between consecutive tries. The zero Policy is usable and means
// "one try, no retry".
type Policy struct {
	// Attempts is the total number of tries (first try included). Values
	// below 1 behave as 1.
	Attempts int
	// Base is the sleep before the first retry; the delay doubles each
	// further retry (deterministic exponential backoff, no jitter).
	Base time.Duration
	// Max caps the per-retry delay; 0 means uncapped.
	Max time.Duration
	// Sleep replaces time.Sleep, letting tests and chaos harnesses run the
	// schedule without wall-clock waiting. Nil means time.Sleep.
	Sleep func(time.Duration)
}

// Backoff returns the deterministic delay before retry number retry
// (1-based: the sleep between try retry and try retry+1).
func (p Policy) Backoff(retry int) time.Duration {
	if p.Base <= 0 || retry < 1 {
		return 0
	}
	d := p.Base
	for i := 1; i < retry; i++ {
		d *= 2
		if p.Max > 0 && d >= p.Max {
			return p.Max
		}
	}
	if p.Max > 0 && d > p.Max {
		return p.Max
	}
	return d
}

// attempts returns the effective try budget.
func (p Policy) attempts() int {
	if p.Attempts < 1 {
		return 1
	}
	return p.Attempts
}

// sleep waits for d through the configured sleeper.
func (p Policy) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if p.Sleep != nil {
		p.Sleep(d)
		return
	}
	time.Sleep(d)
}

// Do runs op up to Attempts times, sleeping Backoff(i) between tries, and
// returns nil on the first success. On exhaustion it returns the last error
// wrapped with the attempt count.
func (p Policy) Do(op func() error) error {
	var err error
	n := p.attempts()
	for i := 1; i <= n; i++ {
		if err = op(); err == nil {
			return nil
		}
		if i < n {
			p.sleep(p.Backoff(i))
		}
	}
	if n > 1 {
		return fmt.Errorf("retry: %d attempts exhausted: %w", n, err)
	}
	return err
}

// Writer wraps w so every Write is retried under the policy. Partial writes
// are resumed from the failure point (never re-writing bytes the underlying
// writer already accepted), so a transient failure below a record-oriented
// sink cannot duplicate or tear records that eventually succeed.
type Writer struct {
	w io.Writer
	p Policy
}

// NewWriter returns a retrying writer over w.
func NewWriter(w io.Writer, p Policy) *Writer { return &Writer{w: w, p: p} }

// Write implements io.Writer with bounded per-chunk retry.
func (rw *Writer) Write(b []byte) (int, error) {
	written := 0
	err := rw.p.Do(func() error {
		n, werr := rw.w.Write(b[written:])
		written += n
		if werr == nil && written < len(b) {
			werr = io.ErrShortWrite
		}
		return werr
	})
	return written, err
}
