package retry

import (
	"context"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

func TestBackoffDeterministicSchedule(t *testing.T) {
	p := Policy{Attempts: 6, Base: 10 * time.Millisecond, Max: 40 * time.Millisecond}
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		40 * time.Millisecond, 40 * time.Millisecond,
	}
	for i, w := range want {
		if got := p.Backoff(i + 1); got != w {
			t.Fatalf("Backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
	if got := (Policy{}).Backoff(1); got != 0 {
		t.Fatalf("zero policy Backoff = %v, want 0", got)
	}
}

func TestDoStopsOnFirstSuccess(t *testing.T) {
	calls := 0
	p := Policy{Attempts: 5, Base: time.Hour, Sleep: func(time.Duration) {}}
	err := p.Do(func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err = %v, calls = %d; want nil, 3", err, calls)
	}
}

func TestDoExhaustionWrapsLastError(t *testing.T) {
	sentinel := errors.New("disk full")
	var slept []time.Duration
	p := Policy{Attempts: 3, Base: time.Millisecond, Sleep: func(d time.Duration) { slept = append(slept, d) }}
	calls := 0
	err := p.Do(func() error { calls++; return sentinel })
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("exhaustion error %v does not wrap the last error", err)
	}
	if !strings.Contains(err.Error(), "3 attempts") {
		t.Fatalf("error %q does not report the attempt count", err)
	}
	// Sleeps happen between tries only: 2 sleeps for 3 attempts.
	if len(slept) != 2 || slept[0] != time.Millisecond || slept[1] != 2*time.Millisecond {
		t.Fatalf("sleep schedule = %v, want [1ms 2ms]", slept)
	}
}

func TestZeroPolicySingleTry(t *testing.T) {
	calls := 0
	err := Policy{}.Do(func() error { calls++; return errors.New("x") })
	if calls != 1 || err == nil {
		t.Fatalf("calls = %d err = %v, want 1 try and the bare error", calls, err)
	}
	if strings.Contains(err.Error(), "attempts") {
		t.Fatalf("single-try error should not be wrapped: %q", err)
	}
}

// flakyWriter fails (atomically) the first failures writes, then succeeds.
type flakyWriter struct {
	sb       strings.Builder
	failures int
}

func (f *flakyWriter) Write(b []byte) (int, error) {
	if f.failures > 0 {
		f.failures--
		return 0, errors.New("transient write failure")
	}
	return f.sb.Write(b)
}

func TestWriterAbsorbsTransientFailures(t *testing.T) {
	fw := &flakyWriter{failures: 2}
	w := NewWriter(fw, Policy{Attempts: 3, Sleep: func(time.Duration) {}})
	n, err := w.Write([]byte("hello\n"))
	if err != nil || n != 6 {
		t.Fatalf("Write = (%d, %v), want (6, nil)", n, err)
	}
	if fw.sb.String() != "hello\n" {
		t.Fatalf("underlying got %q", fw.sb.String())
	}
}

func TestWriterSurfacesPermanentFailure(t *testing.T) {
	fw := &flakyWriter{failures: 1 << 30}
	w := NewWriter(fw, Policy{Attempts: 3, Sleep: func(time.Duration) {}})
	if _, err := w.Write([]byte("x")); err == nil {
		t.Fatal("permanent failure not surfaced")
	}
}

// partialWriter accepts k bytes then fails once, then accepts everything.
type partialWriter struct {
	sb     strings.Builder
	k      int
	failed bool
}

func (p *partialWriter) Write(b []byte) (int, error) {
	if !p.failed {
		p.failed = true
		n := p.k
		if n > len(b) {
			n = len(b)
		}
		p.sb.Write(b[:n])
		return n, errors.New("interrupted")
	}
	return p.sb.Write(b)
}

func TestWriterResumesPartialWrites(t *testing.T) {
	pw := &partialWriter{k: 3}
	w := NewWriter(pw, Policy{Attempts: 2, Sleep: func(time.Duration) {}})
	n, err := w.Write([]byte("abcdef"))
	if err != nil || n != 6 {
		t.Fatalf("Write = (%d, %v), want (6, nil)", n, err)
	}
	if pw.sb.String() != "abcdef" {
		t.Fatalf("bytes duplicated or lost: %q", pw.sb.String())
	}
}

var _ io.Writer = (*Writer)(nil)

func TestDoCtxTable(t *testing.T) {
	sentinel := errors.New("transient")
	canceled := func() context.Context {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		return ctx
	}
	cases := []struct {
		name       string
		ctx        func() context.Context
		cancelInOp bool // op cancels its own context on every call
		attempts   int
		failures   int // op failures before success
		wantCalls  int
		wantErr    error // errors.Is target; nil = success
	}{
		{name: "cancel before first attempt skips op",
			ctx: canceled, attempts: 5, failures: 0,
			wantCalls: 0, wantErr: context.Canceled},
		{name: "live context succeeds like Do",
			ctx: context.Background, attempts: 5, failures: 2,
			wantCalls: 3, wantErr: nil},
		{name: "live context exhausts like Do",
			ctx: context.Background, attempts: 3, failures: 99,
			wantCalls: 3, wantErr: sentinel},
		{name: "cancel observed after instant sleep",
			// The op cancels mid-attempt; the Sleep hook runs, then the
			// now-canceled ctx is observed: exactly one attempt.
			cancelInOp: true, attempts: 5, failures: 99,
			wantCalls: 1, wantErr: context.Canceled},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var ctx context.Context
			cancel := func() {}
			if tc.ctx != nil {
				ctx = tc.ctx()
			} else {
				ctx, cancel = context.WithCancel(context.Background())
				defer cancel()
			}
			calls := 0
			p := Policy{Attempts: tc.attempts, Base: time.Millisecond, Sleep: func(time.Duration) {}}
			err := p.DoCtx(ctx, func() error {
				calls++
				if tc.cancelInOp {
					cancel()
				}
				if calls <= tc.failures {
					return sentinel
				}
				return nil
			})
			if calls != tc.wantCalls {
				t.Fatalf("calls = %d, want %d", calls, tc.wantCalls)
			}
			if tc.wantErr == nil {
				if err != nil {
					t.Fatalf("err = %v, want nil", err)
				}
			} else if !errors.Is(err, tc.wantErr) {
				t.Fatalf("err = %v, want wrapping %v", err, tc.wantErr)
			}
		})
	}
}

func TestDoCtxCancelDuringSleepReturnsPromptly(t *testing.T) {
	// A real-clock backoff (no Sleep hook) of one minute must be cut short
	// by cancellation: the whole call returns in well under the backoff.
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	p := Policy{Attempts: 3, Base: time.Minute}
	calls := 0
	start := time.Now()
	err := p.DoCtx(ctx, func() error { calls++; return errors.New("transient") })
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("DoCtx blocked %v on a canceled backoff sleep", elapsed)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (canceled during the first backoff)", calls)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapping context.Canceled", err)
	}
}

func TestDoCtxCancellationWrapsLastAttemptError(t *testing.T) {
	// Cancel from inside the first (failing) attempt: the cancellation error
	// must carry the attempt's own error so the caller sees why it was
	// retrying at all.
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{Attempts: 3, Base: time.Millisecond, Sleep: func(time.Duration) {}}
	err := p.DoCtx(ctx, func() error { cancel(); return errors.New("disk full") })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapping context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("err = %v, want the last attempt error in the message", err)
	}
}
