package retry

import (
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

func TestBackoffDeterministicSchedule(t *testing.T) {
	p := Policy{Attempts: 6, Base: 10 * time.Millisecond, Max: 40 * time.Millisecond}
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		40 * time.Millisecond, 40 * time.Millisecond,
	}
	for i, w := range want {
		if got := p.Backoff(i + 1); got != w {
			t.Fatalf("Backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
	if got := (Policy{}).Backoff(1); got != 0 {
		t.Fatalf("zero policy Backoff = %v, want 0", got)
	}
}

func TestDoStopsOnFirstSuccess(t *testing.T) {
	calls := 0
	p := Policy{Attempts: 5, Base: time.Hour, Sleep: func(time.Duration) {}}
	err := p.Do(func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err = %v, calls = %d; want nil, 3", err, calls)
	}
}

func TestDoExhaustionWrapsLastError(t *testing.T) {
	sentinel := errors.New("disk full")
	var slept []time.Duration
	p := Policy{Attempts: 3, Base: time.Millisecond, Sleep: func(d time.Duration) { slept = append(slept, d) }}
	calls := 0
	err := p.Do(func() error { calls++; return sentinel })
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("exhaustion error %v does not wrap the last error", err)
	}
	if !strings.Contains(err.Error(), "3 attempts") {
		t.Fatalf("error %q does not report the attempt count", err)
	}
	// Sleeps happen between tries only: 2 sleeps for 3 attempts.
	if len(slept) != 2 || slept[0] != time.Millisecond || slept[1] != 2*time.Millisecond {
		t.Fatalf("sleep schedule = %v, want [1ms 2ms]", slept)
	}
}

func TestZeroPolicySingleTry(t *testing.T) {
	calls := 0
	err := Policy{}.Do(func() error { calls++; return errors.New("x") })
	if calls != 1 || err == nil {
		t.Fatalf("calls = %d err = %v, want 1 try and the bare error", calls, err)
	}
	if strings.Contains(err.Error(), "attempts") {
		t.Fatalf("single-try error should not be wrapped: %q", err)
	}
}

// flakyWriter fails (atomically) the first failures writes, then succeeds.
type flakyWriter struct {
	sb       strings.Builder
	failures int
}

func (f *flakyWriter) Write(b []byte) (int, error) {
	if f.failures > 0 {
		f.failures--
		return 0, errors.New("transient write failure")
	}
	return f.sb.Write(b)
}

func TestWriterAbsorbsTransientFailures(t *testing.T) {
	fw := &flakyWriter{failures: 2}
	w := NewWriter(fw, Policy{Attempts: 3, Sleep: func(time.Duration) {}})
	n, err := w.Write([]byte("hello\n"))
	if err != nil || n != 6 {
		t.Fatalf("Write = (%d, %v), want (6, nil)", n, err)
	}
	if fw.sb.String() != "hello\n" {
		t.Fatalf("underlying got %q", fw.sb.String())
	}
}

func TestWriterSurfacesPermanentFailure(t *testing.T) {
	fw := &flakyWriter{failures: 1 << 30}
	w := NewWriter(fw, Policy{Attempts: 3, Sleep: func(time.Duration) {}})
	if _, err := w.Write([]byte("x")); err == nil {
		t.Fatal("permanent failure not surfaced")
	}
}

// partialWriter accepts k bytes then fails once, then accepts everything.
type partialWriter struct {
	sb     strings.Builder
	k      int
	failed bool
}

func (p *partialWriter) Write(b []byte) (int, error) {
	if !p.failed {
		p.failed = true
		n := p.k
		if n > len(b) {
			n = len(b)
		}
		p.sb.Write(b[:n])
		return n, errors.New("interrupted")
	}
	return p.sb.Write(b)
}

func TestWriterResumesPartialWrites(t *testing.T) {
	pw := &partialWriter{k: 3}
	w := NewWriter(pw, Policy{Attempts: 2, Sleep: func(time.Duration) {}})
	n, err := w.Write([]byte("abcdef"))
	if err != nil || n != 6 {
		t.Fatalf("Write = (%d, %v), want (6, nil)", n, err)
	}
	if pw.sb.String() != "abcdef" {
		t.Fatalf("bytes duplicated or lost: %q", pw.sb.String())
	}
}

var _ io.Writer = (*Writer)(nil)
