package service

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"asyncagree/internal/registry"
	"asyncagree/internal/sim"
)

// Scenario is the client-facing description of one agreement configuration:
// which algorithm runs against which adversary under which delivery
// scheduler, at what (n, t) shape, from which input pattern. It is the unit
// of validation, quarantine, and instance identity.
type Scenario struct {
	Algorithm string `json:"algorithm"`
	Adversary string `json:"adversary,omitempty"`
	Scheduler string `json:"scheduler,omitempty"`
	Input     string `json:"input,omitempty"`
	N         int    `json:"n"`
	T         int    `json:"t,omitempty"`
	// MaxWindows is the per-trial window budget (0 selects the server
	// default; server-capped).
	MaxWindows int `json:"max_windows,omitempty"`
	// Knobs supplies the adversary's declared tuning knobs positionally
	// (registry.Params.AdvKnobs); omit for historical behavior.
	Knobs []int `json:"knobs,omitempty"`
}

// normalize fills Scenario defaults in place.
func (sc *Scenario) normalize(cfg Config) {
	if sc.Adversary == "" {
		sc.Adversary = "full"
	}
	if sc.Scheduler == "" {
		sc.Scheduler = "adversary"
	}
	if sc.Input == "" {
		sc.Input = "split"
	}
	if sc.MaxWindows <= 0 {
		sc.MaxWindows = cfg.DefaultMaxWindows
	}
	if sc.MaxWindows > cfg.MaxWindowsCap {
		sc.MaxWindows = cfg.MaxWindowsCap
	}
}

// validate rejects a scenario the registries cannot serve; the error text is
// the 400 body.
func (sc *Scenario) validate() error {
	alg, err := registry.LookupAlgorithm(sc.Algorithm)
	if err != nil {
		return err
	}
	advD, err := registry.LookupAdversary(sc.Adversary)
	if err != nil {
		return err
	}
	if _, err := registry.LookupScheduler(sc.Scheduler); err != nil {
		return err
	}
	if sc.N < 1 {
		return fmt.Errorf("service: n must be >= 1, got %d", sc.N)
	}
	if sc.T < 0 {
		return fmt.Errorf("service: t must be >= 0, got %d", sc.T)
	}
	inputs, err := registry.Inputs(sc.Input, sc.N, 0)
	if err != nil {
		return err
	}
	p := registry.Params{N: sc.N, T: sc.T, Inputs: inputs, AdvKnobs: sc.Knobs}
	if err := alg.Validate(p); err != nil {
		return err
	}
	return advD.ValidateKnobs(p)
}

// key renders the scenario's stable identity — the quarantine and engine-pool
// granularity — matching the sweep pipeline's trial-key shape.
func (sc *Scenario) key() string {
	var b strings.Builder
	b.WriteString(sc.Algorithm)
	b.WriteByte('/')
	b.WriteString(sc.Adversary)
	b.WriteByte('/')
	b.WriteString(sc.Scheduler)
	b.WriteByte('/')
	b.WriteString(sc.Input)
	b.WriteByte('/')
	b.WriteString(strconv.Itoa(sc.N))
	b.WriteByte(':')
	b.WriteString(strconv.Itoa(sc.T))
	for i, k := range sc.Knobs {
		if i == 0 {
			b.WriteByte('@')
		} else {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(k))
	}
	return b.String()
}

// Result is one trial's outcome as served to clients: the sim.RunResult
// fields plus the fault classification when the trial did not complete
// cleanly. Fault fields marshal with omitempty so clean results serialize
// identically whether or not the server has ever seen a fault.
type Result struct {
	Windows       int    `json:"windows"`
	FirstDecision int    `json:"first_decision"`
	AllDecided    bool   `json:"all_decided"`
	Agreement     bool   `json:"agreement"`
	Validity      bool   `json:"validity"`
	Decision      int    `json:"decision"`
	MaxChain      int    `json:"max_chain"`
	FaultKind     string `json:"fault_kind,omitempty"`
	Fault         string `json:"fault,omitempty"`
}

// Clean reports whether the trial completed without a fault.
func (r Result) Clean() bool { return r.FaultKind == "" }

// fromRunResult copies the simulator summary into the wire shape.
func fromRunResult(res sim.RunResult) Result {
	return Result{
		Windows: res.Windows, FirstDecision: res.FirstDecision,
		AllDecided: res.AllDecided, Agreement: res.Agreement,
		Validity: res.Validity, Decision: int(res.Decision),
		MaxChain: res.MaxChainDepth,
	}
}

// faultCanceled classifies a request abandoned by its client (connection
// closed, load generator exited). It is reported like a fault but charged to
// nobody: the scenario's quarantine streak ignores it.
const faultCanceled = "canceled"

// deadlineCheckWindows is how many windows run between deadline polls. The
// poll is one ctx.Err() atomic load; 32 keeps it off the per-window profile
// while bounding overshoot to 32 windows (microseconds).
const deadlineCheckWindows = 32

// RunRequest is the POST /run body: a scenario plus the per-request
// execution parameters.
type RunRequest struct {
	Scenario
	// Seed selects the trial's randomness; equal seeds give byte-identical
	// results.
	Seed uint64 `json:"seed"`
	// TimeoutMS optionally shortens (never extends) the server's per-request
	// deadline.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// RunReply is the POST /run response body.
type RunReply struct {
	Scenario Scenario `json:"scenario"`
	Seed     uint64   `json:"seed"`
	Result   Result   `json:"result"`
}

// execute runs one trial of sc at seed on a pooled engine, fully contained:
// panics poison the engine and come back as FaultPanic results, deadline
// expiry comes back as FaultDeadline with the partial result, and trial
// errors as FaultError. onEvent, when non-nil, observes the trial's event
// stream (trace mode). The caller has already been admitted.
func (s *Server) execute(ctx context.Context, sc Scenario, seed uint64, onEvent func(sim.Event)) Result {
	if s.testHookPreExecute != nil {
		s.testHookPreExecute(ctx)
	}
	inputs, err := registry.Inputs(sc.Input, sc.N, seed)
	if err != nil {
		return Result{FaultKind: registry.FaultError, Fault: err.Error()}
	}
	p := registry.Params{
		N: sc.N, T: sc.T, Inputs: inputs, Seed: seed,
		ShardWorkers: s.cfg.ShardWorkers, DisableColumnar: s.cfg.DisableColumnar,
		AdvKnobs: sc.Knobs,
	}
	e, err := registry.AcquireTrial(sc.Algorithm, sc.Adversary, sc.Scheduler, p)
	if err != nil {
		return Result{FaultKind: registry.FaultError, Fault: err.Error()}
	}

	reqIndex := int(s.reqSeq.Add(1) - 1)
	injectPanic := s.cfg.InjectPanics.Contains(reqIndex)
	expired := func(windows int) bool {
		if injectPanic {
			panic(fmt.Sprintf("injected panic at request %d (window %d)", reqIndex, windows))
		}
		if windows%deadlineCheckWindows != 0 {
			return false
		}
		return ctx.Err() != nil
	}

	// The trial proper runs inside a recover barrier: a panic anywhere in
	// the window pipeline (or injected above) poisons the engine — Release
	// is then a refused no-op even if some path reaches it — and becomes a
	// structured FaultPanic result instead of a dead worker.
	var (
		res      sim.RunResult
		stalled  bool
		runErr   error
		panicked bool
	)
	func() {
		defer func() {
			if rec := recover(); rec != nil {
				panicked = true
				e.Poison()
				s.poisoned.Add(1)
				runErr = fmt.Errorf("panic: %v\n%s", rec, debug.Stack())
			}
		}()
		if onEvent != nil {
			e.System().OnEvent = onEvent
		}
		res, stalled, runErr = e.RunUntil(sc.MaxWindows, expired)
	}()
	if !panicked {
		// The event hook survives Recycle (deliberately, for long-lived
		// tracers); a pooled engine must not carry this request's closure to
		// the next unrelated trial.
		e.System().OnEvent = nil
		e.Release()
	}

	switch {
	case panicked:
		return Result{FaultKind: registry.FaultPanic, Fault: runErr.Error()}
	case runErr != nil:
		return Result{FaultKind: registry.FaultError, Fault: runErr.Error()}
	case stalled:
		out := fromRunResult(res)
		if errors.Is(ctx.Err(), context.Canceled) {
			out.FaultKind = faultCanceled
			out.Fault = "client canceled the request"
		} else {
			out.FaultKind = registry.FaultDeadline
			out.Fault = fmt.Sprintf("deadline exceeded after %d windows", res.Windows)
		}
		return out
	default:
		return fromRunResult(res)
	}
}

// requestTimeout resolves the effective deadline for a request-supplied
// timeout_ms: the server ceiling, shortened by the client's ask.
func (s *Server) requestTimeout(timeoutMS int) time.Duration {
	d := s.cfg.RequestTimeout
	if timeoutMS > 0 {
		if c := time.Duration(timeoutMS) * time.Millisecond; c < d {
			d = c
		}
	}
	return d
}

// statusForFault maps a fault classification to its HTTP status.
func statusForFault(kind string) int {
	switch kind {
	case "":
		return http.StatusOK
	case registry.FaultDeadline:
		return http.StatusGatewayTimeout
	case faultCanceled:
		// 499 in the nginx tradition; the client is gone either way.
		return 499
	default:
		return http.StatusInternalServerError
	}
}

// handleRun serves POST /run: validate, admit, execute one trial, answer
// with the result (or stream NDJSON trace + result when ?trace=1).
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	req.Scenario.normalize(s.cfg)
	if err := req.Scenario.validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	key := req.Scenario.key()
	if reason, quarantined := s.quarantineCheck(key); quarantined {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: reason, Quarantined: true})
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout(req.TimeoutMS))
	defer cancel()

	release, err := s.admit(ctx)
	if err != nil {
		s.answerAdmitError(w, err)
		return
	}
	defer release()

	if r.URL.Query().Get("trace") == "1" {
		s.runTraced(ctx, w, req, key)
		return
	}
	res := s.execute(ctx, req.Scenario, req.Seed, nil)
	s.noteOutcome(key, res.FaultKind)
	s.served.Add(1)
	writeJSON(w, statusForFault(res.FaultKind), RunReply{Scenario: req.Scenario, Seed: req.Seed, Result: res})
}

// answerAdmitError maps an admission failure to its HTTP answer.
func (s *Server) answerAdmitError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errDraining):
		writeError(w, http.StatusServiceUnavailable, "draining: not admitting new requests")
	case errors.Is(err, errOverloaded):
		writeError(w, http.StatusServiceUnavailable,
			fmt.Sprintf("overloaded: admission queue of %d is full", s.cfg.QueueDepth))
	default: // context expired while queued
		writeError(w, http.StatusGatewayTimeout, "timed out waiting for a worker: "+err.Error())
	}
}

// traceEvent is one NDJSON line of a streamed trace.
type traceEvent struct {
	Ev     string `json:"ev"`
	Window int    `json:"window,omitempty"`
	Proc   int    `json:"proc,omitempty"`
	From   int    `json:"from,omitempty"`
	To     int    `json:"to,omitempty"`
	Depth  int    `json:"depth,omitempty"`
	Value  int    `json:"value,omitempty"`
}

// traceFinal is the last NDJSON line of a streamed trace: the run's result.
type traceFinal struct {
	Ev     string `json:"ev"`
	Result Result `json:"result"`
}

// runTraced executes the trial while streaming its event trace as NDJSON,
// one event per line, ending with an {"ev":"result",...} line. The stream
// flushes on window boundaries so a slow consumer sees progress, and the
// status is committed (200) before execution — a mid-stream fault is
// reported in the final line, the only option once bytes have flowed.
func (s *Server) runTraced(ctx context.Context, w http.ResponseWriter, req RunRequest, key string) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	bw := bufio.NewWriter(w)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(bw)

	onEvent := func(ev sim.Event) {
		te := traceEvent{Window: ev.Window}
		switch ev.Kind {
		case sim.EvWindow:
			te.Ev = "window"
		case sim.EvSend:
			te.Ev, te.From, te.To, te.Depth = "send", int(ev.Msg.From), int(ev.Msg.To), ev.Msg.Depth
		case sim.EvDeliver:
			te.Ev, te.From, te.To, te.Depth = "deliver", int(ev.Msg.From), int(ev.Msg.To), ev.Msg.Depth
		case sim.EvReset:
			te.Ev, te.Proc = "reset", int(ev.Proc)
		case sim.EvCrash:
			te.Ev, te.Proc = "crash", int(ev.Proc)
		case sim.EvDecide:
			te.Ev, te.Proc, te.Value = "decide", int(ev.Proc), int(ev.Value)
		default:
			return
		}
		enc.Encode(te)
		if ev.Kind == sim.EvWindow {
			bw.Flush()
			if flusher != nil {
				flusher.Flush()
			}
		}
	}

	res := s.execute(ctx, req.Scenario, req.Seed, onEvent)
	s.noteOutcome(key, res.FaultKind)
	s.served.Add(1)
	enc.Encode(traceFinal{Ev: "result", Result: res})
	bw.Flush()
	if flusher != nil {
		flusher.Flush()
	}
}
