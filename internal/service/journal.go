package service

import (
	"bufio"
	"encoding/json"
	"io"
	"os"

	"asyncagree/internal/ckptio"
	"asyncagree/internal/registry"
)

// The instance journal is the daemon's only durable state: an append-only
// JSONL file in the checkpoint salvage format (header line + index-ordered
// records), reusing the sweep pipeline's torn-tail/corrupt-line recovery
// wholesale. Every instance create and every successful instance run is one
// record; replaying the verified prefix reconstructs the exact instance map
// — state is a pure function of the journal, so a SIGKILLed daemon restarts
// into precisely what its journal proves happened.
//
// Appends flush to the OS on every record (the page cache survives a killed
// process; only a machine crash can lose the tail, and the salvage loader
// handles exactly that shape). A failed append latches the journal into
// degraded mode: in-memory serving continues, /readyz reports degraded, and
// the failing record's caller gets a 500.

// journalGrid is the header signature; a journal written for anything else
// is refused at startup instead of mis-replayed.
const journalGrid = "agreed-instance-journal"

// journalRecord is one journal line: a global contiguous index (what the
// salvage loader re-verifies) plus exactly one of a create or a run body.
type journalRecord struct {
	Index    int    `json:"index"`
	Instance string `json:"instance"`
	// Create records instance creation with its full (normalized) scenario.
	Create *Scenario `json:"create,omitempty"`
	// Run records one successful run of the instance.
	Run *runRecord `json:"run,omitempty"`
}

// journal is the open append side. Appends happen under Server.mu (the same
// critical section that mutates the instance map), so the journal needs no
// lock of its own and records can never interleave out of index order.
type journal struct {
	f    *os.File
	bw   *bufio.Writer
	next int   // next record index
	err  error // first append failure; latches degraded mode
}

// openJournal loads the journal at path (salvaging whatever a previous
// crash left), rewrites the healed prefix atomically, and reopens for
// append. It returns the replayable records and the salvage report.
func openJournal(path string) (*journal, []journalRecord, *registry.SalvageReport, error) {
	recs, salvage, err := registry.LoadCheckpointRecords[journalRecord](
		path, journalGrid, func(r journalRecord) int { return r.Index })
	if err != nil {
		return nil, nil, nil, err
	}
	f, err := ckptio.RewriteThenAppend(path, func(w io.Writer) error {
		if err := registry.WriteCheckpointHeader(w, journalGrid); err != nil {
			return err
		}
		enc := json.NewEncoder(w)
		for _, rec := range recs {
			if err := enc.Encode(rec); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return &journal{f: f, bw: bufio.NewWriter(f), next: len(recs)}, recs, salvage, nil
}

// Err reports the latched append failure, if any.
func (j *journal) Err() error { return j.err }

// append assigns the next index, writes the record, and flushes it to the
// OS. The first failure latches: later appends fail fast with the same
// error rather than writing past a hole.
func (j *journal) append(rec journalRecord) error {
	if j.err != nil {
		return j.err
	}
	rec.Index = j.next
	b, err := json.Marshal(rec)
	if err != nil {
		j.err = err
		return err
	}
	b = append(b, '\n')
	if _, err := j.bw.Write(b); err != nil {
		j.err = err
		return err
	}
	if err := j.bw.Flush(); err != nil {
		j.err = err
		return err
	}
	j.next++
	return nil
}

// Close flushes and closes the file.
func (j *journal) Close() error {
	if j.f == nil {
		return nil
	}
	ferr := j.bw.Flush()
	cerr := j.f.Close()
	j.f = nil
	if ferr != nil {
		return ferr
	}
	return cerr
}

// appendJournalLocked journals one record if persistence is configured.
// Callers hold s.mu, which serializes index assignment with the instance
// mutation the record describes — the journal can never record a state the
// map did not reach, or in a different order.
func (s *Server) appendJournalLocked(rec journalRecord) error {
	if s.journal == nil {
		return nil
	}
	return s.journal.append(rec)
}
