package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"asyncagree/internal/faultinject"
	"asyncagree/internal/registry"
)

// fastScenario is a quick, always-deciding configuration (the sweep tests'
// standard core cell).
func fastScenario() Scenario {
	return Scenario{Algorithm: "core", N: 12, T: 1, MaxWindows: 3000}
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// doJSON posts body to path on the handler and returns the recorded
// response.
func doJSON(t *testing.T, h http.Handler, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal request: %v", err)
		}
		rd = bytes.NewReader(b)
	}
	req := httptest.NewRequest(method, path, rd)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestRunEndpointDeterministic(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	req := RunRequest{Scenario: fastScenario(), Seed: 7}

	w1 := doJSON(t, s, "POST", "/run", req)
	if w1.Code != http.StatusOK {
		t.Fatalf("first run: status %d, body %s", w1.Code, w1.Body.String())
	}
	var rep RunReply
	if err := json.Unmarshal(w1.Body.Bytes(), &rep); err != nil {
		t.Fatalf("unmarshal reply: %v", err)
	}
	if !rep.Result.Clean() || !rep.Result.AllDecided || !rep.Result.Agreement || !rep.Result.Validity {
		t.Fatalf("run result not a clean decided trial: %+v", rep.Result)
	}

	// Same seed, byte-identical body (pooled engine reuse included).
	w2 := doJSON(t, s, "POST", "/run", req)
	if !bytes.Equal(w1.Body.Bytes(), w2.Body.Bytes()) {
		t.Fatalf("same-seed replies differ:\n%s\n%s", w1.Body.String(), w2.Body.String())
	}

	// The reply must match running the same trial directly on the engine.
	inputs, err := registry.Inputs("split", 12, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := registry.RunPooledTrial("core", "full", "adversary",
		registry.Params{N: 12, T: 1, Inputs: inputs, Seed: 7}, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rep.Result, fromRunResult(res); got != want {
		t.Fatalf("served result %+v != direct trial %+v", got, want)
	}
}

func TestRunValidationRejects(t *testing.T) {
	s := newTestServer(t, Config{})
	cases := []RunRequest{
		{Scenario: Scenario{Algorithm: "nope", N: 12, T: 1}},
		{Scenario: Scenario{Algorithm: "core", Adversary: "nope", N: 12, T: 1}},
		{Scenario: Scenario{Algorithm: "core", N: 0, T: 0}},
		{Scenario: Scenario{Algorithm: "core", N: 12, T: 1, Knobs: []int{1, 2, 3}}},
	}
	for i, req := range cases {
		if w := doJSON(t, s, "POST", "/run", req); w.Code != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400 (body %s)", i, w.Code, w.Body.String())
		}
	}
}

// TestOverloadShedsWith503: with every worker pinned and the queue full,
// the next arrival is shed immediately with 503 + Retry-After; it does not
// wait, and the queue never grows past its bound.
func TestOverloadShedsWith503(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	gate := make(chan struct{})
	s.testHookPreExecute = func(context.Context) { <-gate }

	// Pin the single worker.
	workerDone := make(chan *httptest.ResponseRecorder, 1)
	go func() { workerDone <- doJSON(t, s, "POST", "/run", RunRequest{Scenario: fastScenario()}) }()
	waitFor(t, func() bool { return s.inflight.Load() == 1 })

	// Fill the one queue slot.
	queuedDone := make(chan *httptest.ResponseRecorder, 1)
	go func() { queuedDone <- doJSON(t, s, "POST", "/run", RunRequest{Scenario: fastScenario()}) }()
	waitFor(t, func() bool { return s.queued.Load() == 1 })

	// The next arrival must shed, now, with Retry-After.
	start := time.Now()
	w := doJSON(t, s, "POST", "/run", RunRequest{Scenario: fastScenario()})
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("overload status %d, want 503 (body %s)", w.Code, w.Body.String())
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("503 missing Retry-After")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("shedding took %v; load shedding must not wait", elapsed)
	}
	if got := s.shed.Load(); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}
	if got := s.queued.Load(); got != 1 {
		t.Fatalf("queue depth after shed = %d, want still 1 (bounded)", got)
	}

	// Unblock: both admitted requests complete cleanly.
	close(gate)
	for _, ch := range []chan *httptest.ResponseRecorder{workerDone, queuedDone} {
		if w := <-ch; w.Code != http.StatusOK {
			t.Fatalf("admitted request finished %d, body %s", w.Code, w.Body.String())
		}
	}
}

// TestDrainFinishesInFlight: StartDrain flips /readyz to 503 and rejects
// new work while the in-flight request runs to completion.
func TestDrainFinishesInFlight(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	gate := make(chan struct{})
	s.testHookPreExecute = func(context.Context) { <-gate }

	inFlight := make(chan *httptest.ResponseRecorder, 1)
	go func() { inFlight <- doJSON(t, s, "POST", "/run", RunRequest{Scenario: fastScenario()}) }()
	waitFor(t, func() bool { return s.inflight.Load() == 1 })

	// Ready before the drain...
	if w := doJSON(t, s, "GET", "/readyz", nil); w.Code != http.StatusOK {
		t.Fatalf("readyz before drain: %d", w.Code)
	}
	s.StartDrain()
	// ...503 after, with draining visible in the body.
	w := doJSON(t, s, "GET", "/readyz", nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: %d, want 503", w.Code)
	}
	var st ReadyState
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if !st.Draining || st.Ready {
		t.Fatalf("readyz body %+v, want draining and not ready", st)
	}

	// New work is refused at admission.
	if w := doJSON(t, s, "POST", "/run", RunRequest{Scenario: fastScenario()}); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("run during drain: %d, want 503", w.Code)
	}
	if w := doJSON(t, s, "PUT", "/instances/x", CreateInstanceRequest{Scenario: fastScenario()}); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("instance create during drain: %d, want 503", w.Code)
	}

	// The request admitted before the drain still completes cleanly.
	close(gate)
	if w := <-inFlight; w.Code != http.StatusOK {
		t.Fatalf("in-flight request finished %d during drain, body %s", w.Code, w.Body.String())
	}
}

// TestDeadlineBecomes504: a request whose deadline expires mid-trial comes
// back as a 504 FaultDeadline with the partial result, and the worker is
// freed for the next request.
func TestDeadlineBecomes504(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	s.testHookPreExecute = func(ctx context.Context) { <-ctx.Done() }

	w := doJSON(t, s, "POST", "/run", RunRequest{Scenario: fastScenario(), TimeoutMS: 20})
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (body %s)", w.Code, w.Body.String())
	}
	var rep RunReply
	if err := json.Unmarshal(w.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Result.FaultKind != registry.FaultDeadline {
		t.Fatalf("fault kind %q, want %q", rep.Result.FaultKind, registry.FaultDeadline)
	}

	// The worker must be free again: a normal request succeeds.
	s.testHookPreExecute = nil
	if w := doJSON(t, s, "POST", "/run", RunRequest{Scenario: fastScenario()}); w.Code != http.StatusOK {
		t.Fatalf("follow-up run: %d, body %s", w.Code, w.Body.String())
	}
}

// TestPanicPoisonsAndQuarantines: injected panics come back as structured
// 500s, poison their engines (never re-pooled), and after the threshold the
// scenario is quarantined — further requests get an immediate 503 marked
// quarantined, and /readyz lists the scenario.
func TestPanicPoisonsAndQuarantines(t *testing.T) {
	inject, err := faultinject.ParseTrialSet("0,1,2")
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Workers: 1, QuarantineAfter: 3, InjectPanics: inject})
	before := registry.EngineStatsSnapshot()

	for i := 0; i < 3; i++ {
		w := doJSON(t, s, "POST", "/run", RunRequest{Scenario: fastScenario(), Seed: uint64(i)})
		if w.Code != http.StatusInternalServerError {
			t.Fatalf("panic run %d: status %d, want 500 (body %s)", i, w.Code, w.Body.String())
		}
		var rep RunReply
		if err := json.Unmarshal(w.Body.Bytes(), &rep); err != nil {
			t.Fatal(err)
		}
		if rep.Result.FaultKind != registry.FaultPanic || !strings.Contains(rep.Result.Fault, "injected panic") {
			t.Fatalf("panic run %d result: %+v", i, rep.Result)
		}
	}

	after := registry.EngineStatsSnapshot()
	if got := after.Poisoned - before.Poisoned; got != 3 {
		t.Fatalf("poisoned engines = %d, want 3", got)
	}

	// Fourth request: quarantined without executing.
	w := doJSON(t, s, "POST", "/run", RunRequest{Scenario: fastScenario(), Seed: 9})
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("quarantined run: status %d, want 503 (body %s)", w.Code, w.Body.String())
	}
	var eb errorBody
	if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil {
		t.Fatal(err)
	}
	if !eb.Quarantined {
		t.Fatalf("503 body not marked quarantined: %+v", eb)
	}

	// readyz lists the quarantined scenario but stays ready: one bad
	// scenario must not take the whole server out of rotation.
	rw := doJSON(t, s, "GET", "/readyz", nil)
	if rw.Code != http.StatusOK {
		t.Fatalf("readyz with quarantine: %d, want 200", rw.Code)
	}
	var st ReadyState
	if err := json.Unmarshal(rw.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	key := fastScenario()
	key.normalize(s.cfg)
	if len(st.Quarantined) != 1 || st.Quarantined[0] != key.key() {
		t.Fatalf("readyz quarantined = %v, want [%s]", st.Quarantined, key.key())
	}
	if st.PoisonedEngines != 3 || st.Faulted != 3 {
		t.Fatalf("readyz counters %+v, want 3 poisoned / 3 faulted", st)
	}

	// A different scenario is unaffected.
	other := fastScenario()
	other.Adversary = "storm"
	if w := doJSON(t, s, "POST", "/run", RunRequest{Scenario: other}); w.Code != http.StatusOK {
		t.Fatalf("other scenario after quarantine: %d, body %s", w.Code, w.Body.String())
	}
}

// TestCleanRunResetsFaultStreak: scattered faults never quarantine.
func TestCleanRunResetsFaultStreak(t *testing.T) {
	inject, err := faultinject.ParseTrialSet("0,2,4")
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Workers: 1, QuarantineAfter: 3, InjectPanics: inject})
	for i := 0; i < 6; i++ {
		w := doJSON(t, s, "POST", "/run", RunRequest{Scenario: fastScenario(), Seed: uint64(i)})
		wantPanic := i%2 == 0
		if wantPanic && w.Code != http.StatusInternalServerError {
			t.Fatalf("run %d: status %d, want 500", i, w.Code)
		}
		if !wantPanic && w.Code != http.StatusOK {
			t.Fatalf("run %d: status %d, want 200 (body %s)", i, w.Code, w.Body.String())
		}
	}
	if q := s.quarantinedKeys(); len(q) != 0 {
		t.Fatalf("scattered faults quarantined %v", q)
	}
}

// TestTraceStreamsNDJSON: ?trace=1 streams per-event NDJSON lines ending in
// a result line that matches the untraced run.
func TestTraceStreamsNDJSON(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	plain := doJSON(t, s, "POST", "/run", RunRequest{Scenario: fastScenario(), Seed: 3})
	if plain.Code != http.StatusOK {
		t.Fatalf("plain run: %d", plain.Code)
	}
	var plainRep RunReply
	if err := json.Unmarshal(plain.Body.Bytes(), &plainRep); err != nil {
		t.Fatal(err)
	}

	w := doJSON(t, s, "POST", "/run?trace=1", RunRequest{Scenario: fastScenario(), Seed: 3})
	if w.Code != http.StatusOK {
		t.Fatalf("traced run: %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("traced Content-Type %q", ct)
	}
	sc := bufio.NewScanner(w.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var events, windows, decides int
	var final *traceFinal
	for sc.Scan() {
		var probe struct {
			Ev string `json:"ev"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch probe.Ev {
		case "result":
			var tf traceFinal
			if err := json.Unmarshal(sc.Bytes(), &tf); err != nil {
				t.Fatal(err)
			}
			final = &tf
		case "window":
			windows++
			events++
		case "decide":
			decides++
			events++
		default:
			events++
		}
	}
	if final == nil {
		t.Fatal("trace stream missing final result line")
	}
	if final.Result != plainRep.Result {
		t.Fatalf("traced result %+v != plain result %+v", final.Result, plainRep.Result)
	}
	if windows != plainRep.Result.Windows {
		t.Fatalf("trace window events = %d, result windows = %d", windows, plainRep.Result.Windows)
	}
	if decides == 0 || events == 0 {
		t.Fatalf("trace too sparse: %d events, %d decides", events, decides)
	}

	// Tracing must not leak the event hook into the pool: a later pooled
	// run still matches.
	again := doJSON(t, s, "POST", "/run", RunRequest{Scenario: fastScenario(), Seed: 3})
	if !bytes.Equal(plain.Body.Bytes(), again.Body.Bytes()) {
		t.Fatalf("post-trace run differs from pre-trace run:\n%s\n%s", plain.Body.String(), again.Body.String())
	}
}

// TestInstanceLifecycle: create, idempotent re-create, scenario conflict,
// run sequence with derived seeds, and deterministic state digests.
func TestInstanceLifecycle(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})

	if w := doJSON(t, s, "GET", "/instances/a", nil); w.Code != http.StatusNotFound {
		t.Fatalf("missing instance GET: %d, want 404", w.Code)
	}
	if w := doJSON(t, s, "POST", "/instances/a/run", nil); w.Code != http.StatusNotFound {
		t.Fatalf("missing instance run: %d, want 404", w.Code)
	}

	create := CreateInstanceRequest{Scenario: fastScenario()}
	if w := doJSON(t, s, "PUT", "/instances/a", create); w.Code != http.StatusCreated {
		t.Fatalf("create: %d, body %s", w.Code, w.Body.String())
	}
	// Idempotent re-create.
	if w := doJSON(t, s, "PUT", "/instances/a", create); w.Code != http.StatusOK {
		t.Fatalf("re-create: %d", w.Code)
	}
	// Conflicting scenario.
	other := create
	other.Scenario.Adversary = "storm"
	if w := doJSON(t, s, "PUT", "/instances/a", other); w.Code != http.StatusConflict {
		t.Fatalf("conflicting create: %d, want 409", w.Code)
	}

	var lastDigest string
	for seq := 1; seq <= 3; seq++ {
		w := doJSON(t, s, "POST", "/instances/a/run", nil)
		if w.Code != http.StatusOK {
			t.Fatalf("run %d: %d, body %s", seq, w.Code, w.Body.String())
		}
		var rep InstanceRunReply
		if err := json.Unmarshal(w.Body.Bytes(), &rep); err != nil {
			t.Fatal(err)
		}
		if rep.Seq != seq || rep.Seed != uint64(seq) {
			t.Fatalf("run %d: seq %d seed %d, want derived seq=seed=%d", seq, rep.Seq, rep.Seed, seq)
		}
		if !rep.Result.Clean() {
			t.Fatalf("run %d faulted: %+v", seq, rep.Result)
		}
		if rep.Instance.Runs != seq {
			t.Fatalf("run %d: instance runs %d", seq, rep.Instance.Runs)
		}
		if rep.Instance.Digest == lastDigest {
			t.Fatalf("run %d did not advance the digest", seq)
		}
		lastDigest = rep.Instance.Digest
	}

	// A second server driven identically reaches the same digest: instance
	// state is a pure function of scenario and run count.
	s2 := newTestServer(t, Config{Workers: 1})
	if w := doJSON(t, s2, "PUT", "/instances/a", create); w.Code != http.StatusCreated {
		t.Fatalf("create on s2: %d", w.Code)
	}
	var rep2 InstanceRunReply
	for seq := 1; seq <= 3; seq++ {
		w := doJSON(t, s2, "POST", "/instances/a/run", nil)
		if w.Code != http.StatusOK {
			t.Fatalf("s2 run %d: %d", seq, w.Code)
		}
		if err := json.Unmarshal(w.Body.Bytes(), &rep2); err != nil {
			t.Fatal(err)
		}
	}
	if rep2.Instance.Digest != lastDigest {
		t.Fatalf("independent server digest %s != %s", rep2.Instance.Digest, lastDigest)
	}

	// List shows the instance.
	lw := doJSON(t, s, "GET", "/instances", nil)
	var list struct {
		Instances []InstanceState `json:"instances"`
	}
	if err := json.Unmarshal(lw.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Instances) != 1 || list.Instances[0].Name != "a" || list.Instances[0].Runs != 3 {
		t.Fatalf("instance list %+v", list.Instances)
	}
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t, Config{})
	w := doJSON(t, s, "GET", "/healthz", nil)
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "ok") {
		t.Fatalf("healthz: %d %q", w.Code, w.Body.String())
	}
}

// waitFor polls cond to true, failing the test after a generous timeout.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestScenarioKeyShape pins the quarantine/identity key format.
func TestScenarioKeyShape(t *testing.T) {
	sc := Scenario{Algorithm: "core", Adversary: "random", Scheduler: "seeded",
		Input: "zeros", N: 9, T: 2, Knobs: []int{30, 2}}
	if got, want := sc.key(), "core/random/seeded/zeros/9:2@30,2"; got != want {
		t.Fatalf("key = %q, want %q", got, want)
	}
	sc.Knobs = nil
	if got, want := sc.key(), "core/random/seeded/zeros/9:2"; got != want {
		t.Fatalf("key = %q, want %q", got, want)
	}
}
