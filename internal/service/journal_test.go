package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"asyncagree/internal/rng"
)

// runInstanceTo drives the named instance until it has exactly runs
// successful runs, creating it (idempotently) first.
func runInstanceTo(t *testing.T, s *Server, name string, sc Scenario, runs int) {
	t.Helper()
	w := doJSON(t, s, "PUT", "/instances/"+name, CreateInstanceRequest{Scenario: sc})
	if w.Code != http.StatusCreated && w.Code != http.StatusOK {
		t.Fatalf("create %s: %d, body %s", name, w.Code, w.Body.String())
	}
	for {
		g := doJSON(t, s, "GET", "/instances/"+name, nil)
		var st InstanceState
		if err := json.Unmarshal(g.Body.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		if st.Runs >= runs {
			return
		}
		if w := doJSON(t, s, "POST", "/instances/"+name+"/run", nil); w.Code != http.StatusOK {
			t.Fatalf("run on %s: %d, body %s", name, w.Code, w.Body.String())
		}
	}
}

// instanceStateBytes fetches the instance's wire state verbatim.
func instanceStateBytes(t *testing.T, s *Server, name string) []byte {
	t.Helper()
	w := doJSON(t, s, "GET", "/instances/"+name, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("GET %s: %d", name, w.Code)
	}
	return w.Body.Bytes()
}

// TestJournalReplayAfterCleanShutdown: close, reopen, byte-identical state.
func TestJournalReplayAfterCleanShutdown(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	s, err := New(Config{Workers: 1, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	runInstanceTo(t, s, "a", fastScenario(), 4)
	want := instanceStateBytes(t, s, "a")

	// readyz reports the journal healthy while it is.
	var st ReadyState
	if err := json.Unmarshal(doJSON(t, s, "GET", "/readyz", nil).Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Journal != "ok" {
		t.Fatalf("readyz journal = %q, want ok", st.Journal)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, err := New(Config{Workers: 1, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if sum := s2.SalvageSummary(); sum != "" {
		t.Fatalf("clean journal needed salvage: %s", sum)
	}
	if got := instanceStateBytes(t, s2, "a"); !bytes.Equal(got, want) {
		t.Fatalf("replayed state differs:\n%s\n%s", got, want)
	}
}

// TestJournalKillAndRestartProperty is the crash-recovery property test: a
// daemon SIGKILLed mid-load leaves exactly a byte-prefix of its journal (the
// journal is its only durable state, flushed per record), so killing is
// simulated faithfully by truncating the journal at seeded byte offsets. For
// every cut point, a restarted server must (a) salvage and replay a verified
// prefix without error, (b) land on a state byte-identical to the reference
// run's state at that run count, and (c) after being driven to the same
// total run count, be byte-identical to the never-killed reference —
// including the chained history digest, so not just the counts but the whole
// replayed history must match.
func TestJournalKillAndRestartProperty(t *testing.T) {
	const totalRuns = 6
	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.jsonl")

	// Reference run: create + totalRuns runs, capturing the state after
	// every run count.
	ref, err := New(Config{Workers: 1, JournalPath: refPath})
	if err != nil {
		t.Fatal(err)
	}
	sc := fastScenario()
	stateAt := make([][]byte, totalRuns+1)
	runInstanceTo(t, ref, "prop", sc, 0)
	stateAt[0] = instanceStateBytes(t, ref, "prop")
	for k := 1; k <= totalRuns; k++ {
		runInstanceTo(t, ref, "prop", sc, k)
		stateAt[k] = instanceStateBytes(t, ref, "prop")
	}
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}
	refJournal, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}

	// Seeded cut points: the torn extremes plus random interior offsets
	// (most land mid-record — the torn-tail shape a real SIGKILL leaves).
	headerEnd := bytes.IndexByte(refJournal, '\n') + 1
	r := rng.New(0xC0FFEE)
	cuts := map[int]bool{headerEnd: true, len(refJournal) - 1: true, len(refJournal): true}
	for len(cuts) < 7 {
		cuts[headerEnd+r.Intn(len(refJournal)-headerEnd)] = true
	}

	for cut := range cuts {
		path := filepath.Join(dir, "cut.jsonl")
		if err := os.WriteFile(path, refJournal[:cut], 0o644); err != nil {
			t.Fatal(err)
		}

		s, err := New(Config{Workers: 1, JournalPath: path})
		if err != nil {
			t.Fatalf("cut %d: restart failed: %v", cut, err)
		}

		// (b) The replayed state is exactly the reference state at the
		// replayed run count.
		w := doJSON(t, s, "GET", "/instances/prop", nil)
		replayedRuns := -1
		switch w.Code {
		case http.StatusOK:
			var st InstanceState
			if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
				t.Fatal(err)
			}
			replayedRuns = st.Runs
			if replayedRuns > totalRuns {
				t.Fatalf("cut %d: replayed %d runs from a %d-run journal", cut, replayedRuns, totalRuns)
			}
			if !bytes.Equal(w.Body.Bytes(), stateAt[replayedRuns]) {
				t.Fatalf("cut %d: replayed state at %d runs differs:\n%s\n%s",
					cut, replayedRuns, w.Body.Bytes(), stateAt[replayedRuns])
			}
		case http.StatusNotFound:
			// The cut swallowed the create record; legal, the restarted
			// daemon simply starts the instance over below.
		default:
			t.Fatalf("cut %d: GET after restart: %d", cut, w.Code)
		}

		// (c) Drive to the reference run count: byte-identical final state.
		runInstanceTo(t, s, "prop", sc, totalRuns)
		if got := instanceStateBytes(t, s, "prop"); !bytes.Equal(got, stateAt[totalRuns]) {
			t.Fatalf("cut %d (replayed %d runs): final state differs from uninterrupted run:\n%s\n%s",
				cut, replayedRuns, got, stateAt[totalRuns])
		}

		// And the healed journal itself must now replay to the same place:
		// restart once more without any new work.
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		s2, err := New(Config{Workers: 1, JournalPath: path})
		if err != nil {
			t.Fatalf("cut %d: second restart failed: %v", cut, err)
		}
		if got := instanceStateBytes(t, s2, "prop"); !bytes.Equal(got, stateAt[totalRuns]) {
			t.Fatalf("cut %d: state after second restart differs", cut)
		}
		s2.Close()
	}
}

// TestJournalAppendFailureDegrades: once an append fails, the caller gets a
// 500 and /readyz flips to degraded — but in-memory serving continues.
func TestJournalAppendFailureDegrades(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	s, err := New(Config{Workers: 1, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	runInstanceTo(t, s, "a", fastScenario(), 1)

	// Close the underlying file behind the journal's back: the next append
	// fails like a dead disk would.
	if err := s.journal.f.Close(); err != nil {
		t.Fatal(err)
	}

	if w := doJSON(t, s, "POST", "/instances/a/run", nil); w.Code != http.StatusInternalServerError {
		t.Fatalf("run with dead journal: %d, want 500 (body %s)", w.Code, w.Body.String())
	}
	var st ReadyState
	rw := doJSON(t, s, "GET", "/readyz", nil)
	if rw.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz with degraded journal: %d, want 503", rw.Code)
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Ready || len(st.Journal) < len("degraded") || st.Journal[:8] != "degraded" {
		t.Fatalf("readyz journal = %q, want degraded", st.Journal)
	}

	// One-shot /run still works from memory.
	if w := doJSON(t, s, "POST", "/run", RunRequest{Scenario: fastScenario()}); w.Code != http.StatusOK {
		t.Fatalf("one-shot run with degraded journal: %d", w.Code)
	}
	s.journal.f = nil // already closed; keep Close from double-closing
}
