// Package service implements the failure-first agreement serving layer: a
// long-running HTTP surface over the pooled trial engine (internal/registry)
// that serves one-shot agreement requests and named long-lived instances to
// many concurrent clients.
//
// The package assumes from the start that anything may misbehave — the
// request, the trial, the pool, the disk, the client — and contains each
// failure with a receipt, mirroring the sweep pipeline's fault taxonomy
// (DESIGN.md §4a):
//
//   - Admission is bounded: at most Workers trials execute at once and at
//     most QueueDepth requests wait; everything beyond that is shed
//     immediately with 503 + Retry-After instead of queueing without bound.
//   - Every request runs under a cooperative deadline (the per-window
//     watchdog of sim.RunWindowsUntil), so a runaway scenario becomes a
//     504 with a partial result, never a wedged worker.
//   - A panicking trial is recovered, reported as a 500 carrying the fault,
//     and its engine is poisoned (registry.TrialEngine.Poison) so the
//     corrupt instance can never be re-served from the pool.
//   - Scenarios that fault repeatedly are quarantined: further requests for
//     them are rejected with 503 until the process restarts, and the
//     quarantine list is surfaced on /readyz.
//   - Named instances persist to an append-only journal in the checkpoint
//     salvage format; a killed-and-restarted server replays the verified
//     prefix and resumes byte-identically (see journal.go).
//   - Draining (SIGTERM in cmd/agreed) stops admission, flips /readyz to
//     503, lets in-flight requests finish, and flushes the journal.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"asyncagree/internal/faultinject"
	"asyncagree/internal/registry"
)

// Config parameterizes a Server. The zero value is usable: every field has
// a serving-grade default.
type Config struct {
	// Workers bounds the number of concurrently executing trials (default
	// GOMAXPROCS). Each worker drives one pooled TrialEngine at a time.
	Workers int
	// QueueDepth bounds the admission queue: requests beyond the executing
	// Workers wait here, and arrivals past the bound are shed with 503 +
	// Retry-After (default 64).
	QueueDepth int
	// RequestTimeout is the per-request wall-clock deadline, enforced
	// cooperatively on window boundaries; a request-supplied timeout_ms may
	// shorten but never extend it (default 30s).
	RequestTimeout time.Duration
	// DefaultMaxWindows is the per-trial window budget when the scenario
	// does not set one (default 20000, matching the sweep grid).
	DefaultMaxWindows int
	// MaxWindowsCap caps any request-supplied window budget (default 1e6).
	MaxWindowsCap int
	// QuarantineAfter quarantines a scenario after this many consecutive
	// faulted requests (default 3; negative disables quarantine).
	QuarantineAfter int
	// ShardWorkers sets the intra-trial parallelism of every served trial
	// (a pure performance knob — results are byte-identical at any
	// setting); <= 1 runs the serial facade.
	ShardWorkers int
	// DisableColumnar opts every served trial out of the columnar
	// vote-tally fast path (another pure performance knob — results are
	// byte-identical either way). The zero value keeps it on.
	DisableColumnar bool
	// JournalPath persists named instances to an append-only journal at
	// this path; empty keeps them in memory only.
	JournalPath string
	// InjectPanics selects global request indices whose trials panic — the
	// deterministic chaos hook behind cmd/agreed -inject-panics, exercising
	// the poisoned-engine and quarantine paths end to end.
	InjectPanics *faultinject.TrialSet
}

// withDefaults fills unset Config fields.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.DefaultMaxWindows <= 0 {
		c.DefaultMaxWindows = 20000
	}
	if c.MaxWindowsCap <= 0 {
		c.MaxWindowsCap = 1 << 20
	}
	if c.QuarantineAfter == 0 {
		c.QuarantineAfter = registry.DefaultQuarantineAfter
	}
	return c
}

// Server is the agreement service: an http.Handler serving /run, the
// /instances tree, and the /healthz//readyz probes. Construct with New,
// drain with StartDrain, and Close after the HTTP server has shut down.
type Server struct {
	cfg Config
	mux *http.ServeMux

	// sem holds one token per executing trial; admission blocks here after
	// passing the queue bound.
	sem      chan struct{}
	queued   atomic.Int64
	inflight atomic.Int64
	draining atomic.Bool

	// reqSeq numbers admitted trial executions process-wide — the index the
	// fault-injection hook selects on.
	reqSeq atomic.Int64

	served   atomic.Int64
	shed     atomic.Int64
	faulted  atomic.Int64
	poisoned atomic.Int64

	mu        sync.Mutex
	quar      map[string]*scenarioHealth
	instances map[string]*Instance

	// testHookPreExecute, when non-nil, runs at the top of execute while the
	// worker slot is held — tests use it as a slow-trial stand-in to pin
	// workers busy (overload, drain, and deadline shapes are all about what
	// happens while a worker is occupied).
	testHookPreExecute func(ctx context.Context)

	journal *journal // nil = no persistence
	salvage string   // journal salvage summary from startup, "" if pristine
}

// scenarioHealth tracks per-scenario consecutive faults for quarantine.
type scenarioHealth struct {
	consec      int
	quarantined bool
	reason      string
}

// New builds a Server, opening and replaying the journal when
// Config.JournalPath is set: named instances recorded by an earlier
// process — killed or cleanly drained — are restored to exactly the state
// their journaled prefix proves.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		sem:       make(chan struct{}, cfg.Workers),
		quar:      map[string]*scenarioHealth{},
		instances: map[string]*Instance{},
	}
	if cfg.JournalPath != "" {
		j, recs, salvage, err := openJournal(cfg.JournalPath)
		if err != nil {
			return nil, err
		}
		s.journal = j
		if !salvage.Empty() {
			s.salvage = salvage.String()
		}
		for _, rec := range recs {
			if err := s.replay(rec); err != nil {
				j.Close()
				return nil, fmt.Errorf("service: %s: %w", cfg.JournalPath, err)
			}
		}
	}
	s.routes()
	return s, nil
}

// replay folds one journal record into the instance map during startup.
func (s *Server) replay(rec journalRecord) error {
	switch {
	case rec.Create != nil:
		if _, ok := s.instances[rec.Instance]; ok {
			return fmt.Errorf("journal record %d recreates instance %q", rec.Index, rec.Instance)
		}
		s.instances[rec.Instance] = newInstance(rec.Instance, *rec.Create)
	case rec.Run != nil:
		inst, ok := s.instances[rec.Instance]
		if !ok {
			return fmt.Errorf("journal record %d runs unknown instance %q", rec.Index, rec.Instance)
		}
		if rec.Run.Seq != inst.runs+1 {
			return fmt.Errorf("journal record %d has seq %d for instance %q, want %d",
				rec.Index, rec.Run.Seq, rec.Instance, inst.runs+1)
		}
		inst.apply(*rec.Run)
	default:
		return fmt.Errorf("journal record %d has neither create nor run body", rec.Index)
	}
	return nil
}

// SalvageSummary reports what journal damage startup had to salvage ("" if
// the journal was pristine or absent) so the daemon can log it.
func (s *Server) SalvageSummary() string { return s.salvage }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// StartDrain stops admission: every subsequent request (and /readyz probe)
// gets 503 while in-flight requests run to completion. The caller then
// shuts the HTTP server down with its drain deadline and calls Close.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close flushes and closes the journal. Call it after the HTTP server has
// finished shutting down, so no handler can append concurrently.
func (s *Server) Close() error {
	if s.journal == nil {
		return nil
	}
	return s.journal.Close()
}

// routes installs the handler table.
func (s *Server) routes() {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("POST /run", s.handleRun)
	mux.HandleFunc("GET /instances", s.handleInstanceList)
	mux.HandleFunc("PUT /instances/{name}", s.handleInstanceCreate)
	mux.HandleFunc("GET /instances/{name}", s.handleInstanceGet)
	mux.HandleFunc("POST /instances/{name}/run", s.handleInstanceRun)
	s.mux = mux
}

// Admission errors.
var (
	errDraining   = errors.New("service: draining, not admitting requests")
	errOverloaded = errors.New("service: admission queue full")
)

// admit reserves a worker slot, waiting in the bounded queue when all
// workers are busy. It fails fast when the server is draining or the queue
// is full (load shedding — the caller answers 503 + Retry-After), and
// respects ctx while waiting. The returned release must be called exactly
// once when the trial is done.
func (s *Server) admit(ctx context.Context) (release func(), err error) {
	if s.draining.Load() {
		return nil, errDraining
	}
	if s.queued.Add(1) > int64(s.cfg.QueueDepth) {
		s.queued.Add(-1)
		s.shed.Add(1)
		return nil, errOverloaded
	}
	select {
	case s.sem <- struct{}{}:
		s.queued.Add(-1)
		s.inflight.Add(1)
		return func() {
			s.inflight.Add(-1)
			<-s.sem
		}, nil
	case <-ctx.Done():
		s.queued.Add(-1)
		return nil, ctx.Err()
	}
}

// quarantineCheck returns the quarantine reason for a scenario key, if any.
func (s *Server) quarantineCheck(key string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if h := s.quar[key]; h != nil && h.quarantined {
		return h.reason, true
	}
	return "", false
}

// noteOutcome updates a scenario's fault streak after a request: a clean
// result resets it, a fault advances it and quarantines the scenario at the
// threshold. Client cancellations are not charged to the scenario.
func (s *Server) noteOutcome(key string, faultKind string) {
	if faultKind == faultCanceled {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.quar[key]
	if h == nil {
		h = &scenarioHealth{}
		s.quar[key] = h
	}
	if faultKind == "" {
		h.consec = 0
		return
	}
	s.faulted.Add(1)
	h.consec++
	if s.cfg.QuarantineAfter > 0 && h.consec >= s.cfg.QuarantineAfter && !h.quarantined {
		h.quarantined = true
		h.reason = fmt.Sprintf("scenario quarantined after %d consecutive faults (last: %s)",
			h.consec, faultKind)
	}
}

// quarantinedKeys returns the sorted quarantined scenario keys.
func (s *Server) quarantinedKeys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var keys []string
	for k, h := range s.quar {
		if h.quarantined {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// ReadyState is the /readyz body: the serving posture plus the pool,
// queue, quarantine, and journal state a load balancer or operator needs to
// decide whether to route here.
type ReadyState struct {
	// Ready mirrors the HTTP status: true iff the server is admitting.
	Ready bool `json:"ready"`
	// Draining reports an in-progress graceful shutdown.
	Draining bool `json:"draining"`
	// Workers and QueueDepth echo the admission bounds.
	Workers    int `json:"workers"`
	QueueDepth int `json:"queue_depth"`
	// Inflight and Queued are the current admission occupancy.
	Inflight int64 `json:"inflight"`
	Queued   int64 `json:"queued"`
	// Served, Shed, and Faulted count completed, load-shed, and faulted
	// requests since startup.
	Served  int64 `json:"served"`
	Shed    int64 `json:"shed"`
	Faulted int64 `json:"faulted"`
	// PoisonedEngines counts engines discarded after panicking trials.
	PoisonedEngines int64 `json:"poisoned_engines"`
	// Quarantined lists quarantined scenario keys, sorted.
	Quarantined []string `json:"quarantined,omitempty"`
	// Instances is the named-instance count.
	Instances int `json:"instances"`
	// Journal reports persistence health: "" (no journal), "ok", or
	// "degraded: <error>" once an append has failed.
	Journal string `json:"journal,omitempty"`
}

// readyState assembles the current ReadyState.
func (s *Server) readyState() ReadyState {
	s.mu.Lock()
	instances := len(s.instances)
	s.mu.Unlock()
	st := ReadyState{
		Draining:        s.draining.Load(),
		Workers:         s.cfg.Workers,
		QueueDepth:      s.cfg.QueueDepth,
		Inflight:        s.inflight.Load(),
		Queued:          s.queued.Load(),
		Served:          s.served.Load(),
		Shed:            s.shed.Load(),
		Faulted:         s.faulted.Load(),
		PoisonedEngines: s.poisoned.Load(),
		Quarantined:     s.quarantinedKeys(),
		Instances:       instances,
	}
	if s.journal != nil {
		if err := s.journal.Err(); err != nil {
			st.Journal = "degraded: " + err.Error()
		} else {
			st.Journal = "ok"
		}
	}
	st.Ready = !st.Draining && (st.Journal == "" || st.Journal == "ok")
	return st
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	st := s.readyState()
	w.Header().Set("Content-Type", "application/json")
	if !st.Ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(st)
}

// writeJSON writes v as the response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
	// Quarantined marks scenario-quarantine rejections so clients can stop
	// retrying (the 503 is not transient for this scenario).
	Quarantined bool `json:"quarantined,omitempty"`
}

// writeError writes a JSON error with the given status; 503s advertise
// Retry-After so well-behaved clients back off instead of hammering.
func writeError(w http.ResponseWriter, status int, msg string) {
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, errorBody{Error: msg})
}
