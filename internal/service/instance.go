package service

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http"
	"sort"

	"asyncagree/internal/stream"
)

// Instance is a named long-lived agreement configuration: a scenario pinned
// at creation plus the running aggregate of every successful trial driven
// through it. Run seq numbers are dense (1, 2, ...) and seed run k with
// seed = k, so the instance's entire state is a pure function of its
// scenario and successful-run count — the property journal replay and the
// kill/restart tests lean on. Faulted runs are reported to the caller but
// advance nothing and are never journaled.
type Instance struct {
	name string
	sc   Scenario

	// runs counts successful runs; the next run is seq runs+1.
	runs int
	// decided counts runs where all processors decided.
	decided int
	// windows aggregates window counts across successful runs.
	windows stream.Summary
	// maxChain aggregates max chain depth across successful runs.
	maxChain stream.Summary
	// last is the most recent successful run's result.
	last Result
	// digest is the FNV-1a fold of the instance's canonical history: the
	// create line plus one line per successful run. Two instances with equal
	// digests replayed the same runs in the same order — the byte-level
	// equality the crash-recovery property tests assert.
	digest uint64
}

// runRecord is one successful instance run, as journaled and as folded into
// the digest.
type runRecord struct {
	Seq    int    `json:"seq"`
	Seed   uint64 `json:"seed"`
	Result Result `json:"result"`
}

// newInstance builds an empty instance and seeds its digest with the
// canonical create line.
func newInstance(name string, sc Scenario) *Instance {
	inst := &Instance{name: name, sc: sc}
	inst.fold(fmt.Sprintf("create|%s|%s", name, sc.key()))
	return inst
}

// fold mixes one canonical history line into the digest.
func (inst *Instance) fold(line string) {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(inst.digest >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(line))
	inst.digest = h.Sum64()
}

// apply folds one successful run into the instance state. The caller
// guarantees rec.Seq == inst.runs+1 (journal replay verifies; the live path
// constructs it so).
func (inst *Instance) apply(rec runRecord) {
	inst.runs = rec.Seq
	if rec.Result.AllDecided {
		inst.decided++
	}
	inst.windows.Add(float64(rec.Result.Windows))
	inst.maxChain.Add(float64(rec.Result.MaxChain))
	inst.last = rec.Result
	r := rec.Result
	inst.fold(fmt.Sprintf("run|%d|%d|%d|%d|%t|%t|%t|%d|%d",
		rec.Seq, rec.Seed, r.Windows, r.FirstDecision,
		r.AllDecided, r.Agreement, r.Validity, r.Decision, r.MaxChain))
}

// InstanceState is the wire form of an instance: scenario, aggregates, and
// the state digest. It is deliberately deterministic — byte-identical for
// byte-identical histories — so the crash-recovery tests (and curious
// operators) can diff two servers' views directly.
type InstanceState struct {
	Name     string   `json:"name"`
	Scenario Scenario `json:"scenario"`
	Runs     int      `json:"runs"`
	Decided  int      `json:"decided"`
	// MeanWindows and MaxWindows summarize window counts over successful
	// runs (0 when no runs yet).
	MeanWindows float64 `json:"mean_windows"`
	MaxWindows  float64 `json:"max_windows"`
	// MeanMaxChain summarizes the Section 5 chain-depth measure.
	MeanMaxChain float64 `json:"mean_max_chain"`
	// Last is the most recent successful result.
	Last *Result `json:"last,omitempty"`
	// Digest is the canonical history digest, hex-rendered.
	Digest string `json:"digest"`
}

// state snapshots the instance's wire form. Callers hold s.mu.
func (inst *Instance) state() InstanceState {
	st := InstanceState{
		Name:     inst.name,
		Scenario: inst.sc,
		Runs:     inst.runs,
		Decided:  inst.decided,
		Digest:   fmt.Sprintf("%016x", inst.digest),
	}
	if inst.runs > 0 {
		st.MeanWindows = inst.windows.Mean()
		st.MaxWindows = inst.windows.Max()
		st.MeanMaxChain = inst.maxChain.Mean()
		last := inst.last
		st.Last = &last
	}
	return st
}

// CreateInstanceRequest is the PUT /instances/{name} body.
type CreateInstanceRequest struct {
	Scenario Scenario `json:"scenario"`
}

// InstanceRunReply is the POST /instances/{name}/run response: the run's
// own result plus the instance state after it.
type InstanceRunReply struct {
	Seq      int           `json:"seq"`
	Seed     uint64        `json:"seed"`
	Result   Result        `json:"result"`
	Instance InstanceState `json:"instance"`
}

// handleInstanceCreate serves PUT /instances/{name}: create (idempotently)
// a named instance. Creating an existing name with the same scenario is a
// no-op 200; with a different scenario it is a 409.
func (s *Server) handleInstanceCreate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if name == "" {
		writeError(w, http.StatusBadRequest, "instance name must be non-empty")
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining: not admitting new requests")
		return
	}
	var req CreateInstanceRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	req.Scenario.normalize(s.cfg)
	if err := req.Scenario.validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	s.mu.Lock()
	if inst, ok := s.instances[name]; ok {
		same := inst.sc.key() == req.Scenario.key() && inst.sc.MaxWindows == req.Scenario.MaxWindows
		st := inst.state()
		s.mu.Unlock()
		if !same {
			writeError(w, http.StatusConflict,
				fmt.Sprintf("instance %q already exists with a different scenario", name))
			return
		}
		writeJSON(w, http.StatusOK, st)
		return
	}
	inst := newInstance(name, req.Scenario)
	s.instances[name] = inst
	st := inst.state()
	jerr := s.appendJournalLocked(journalRecord{Instance: name, Create: &inst.sc})
	s.mu.Unlock()

	if jerr != nil {
		// The instance exists in memory but its create was not made durable:
		// tell the caller, and /readyz is now degraded.
		writeError(w, http.StatusInternalServerError, "journal append failed: "+jerr.Error())
		return
	}
	writeJSON(w, http.StatusCreated, st)
}

// handleInstanceGet serves GET /instances/{name}.
func (s *Server) handleInstanceGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	inst, ok := s.instances[name]
	var st InstanceState
	if ok {
		st = inst.state()
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no instance %q", name))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleInstanceList serves GET /instances: every instance's state, sorted
// by name.
func (s *Server) handleInstanceList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	states := make([]InstanceState, 0, len(s.instances))
	for _, inst := range s.instances {
		states = append(states, inst.state())
	}
	s.mu.Unlock()
	sort.Slice(states, func(i, j int) bool { return states[i].Name < states[j].Name })
	writeJSON(w, http.StatusOK, struct {
		Instances []InstanceState `json:"instances"`
	}{states})
}

// handleInstanceRun serves POST /instances/{name}/run: execute the
// instance's next run (seq = runs+1, seed = seq — derived, not supplied, so
// replayed instances continue the exact same sequence) and fold a clean
// result into the instance. A faulted run is answered with its fault status
// and leaves the instance untouched.
func (s *Server) handleInstanceRun(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	inst, ok := s.instances[name]
	var sc Scenario
	var seq int
	if ok {
		sc = inst.sc
		seq = inst.runs + 1
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no instance %q", name))
		return
	}

	key := sc.key()
	if reason, quarantined := s.quarantineCheck(key); quarantined {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: reason, Quarantined: true})
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout(0))
	defer cancel()
	release, err := s.admit(ctx)
	if err != nil {
		s.answerAdmitError(w, err)
		return
	}
	defer release()

	seed := uint64(seq)
	res := s.execute(ctx, sc, seed, nil)
	s.noteOutcome(key, res.FaultKind)
	s.served.Add(1)

	if !res.Clean() {
		writeJSON(w, statusForFault(res.FaultKind), InstanceRunReply{
			Seq: seq, Seed: seed, Result: res,
		})
		return
	}

	rec := runRecord{Seq: seq, Seed: seed, Result: res}
	s.mu.Lock()
	// Concurrent runs of one instance serialize here: whoever commits its
	// seq first wins, and a run that executed against a stale seq is
	// rejected rather than folded in under a seed that no longer matches its
	// position — keeping seq == seed dense is what makes the instance state
	// a pure function of its run count, and therefore replayable.
	if inst.runs+1 != rec.Seq {
		s.mu.Unlock()
		writeError(w, http.StatusConflict,
			fmt.Sprintf("instance %q advanced concurrently; retry", name))
		return
	}
	inst.apply(rec)
	st := inst.state()
	jerr := s.appendJournalLocked(journalRecord{Instance: name, Run: &rec})
	s.mu.Unlock()

	if jerr != nil {
		writeError(w, http.StatusInternalServerError, "journal append failed: "+jerr.Error())
		return
	}
	writeJSON(w, http.StatusOK, InstanceRunReply{
		Seq: rec.Seq, Seed: rec.Seed, Result: res, Instance: st,
	})
}
