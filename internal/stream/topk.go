package stream

import "sort"

// TopItem is one scored entry of a TopK accumulator.
type TopItem struct {
	// Score is the item's score; TopK keeps the highest.
	Score float64
	// ID is the item's stable identity. It breaks score ties (lower ID
	// ranks first), which is what makes the retained set and its order a
	// total function of the observations.
	ID string
}

// less orders items best-first: score descending, then ID ascending.
func (a TopItem) less(b TopItem) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.ID < b.ID
}

// TopK keeps the k best (score, ID) items seen, under the package's
// determinism contract: because the ranking is a total order (score
// descending, ID ascending) and Add/Merge retain exactly the k smallest
// elements under it, the retained items are a pure function of the multiset
// of observations — never of insertion order or merge tree. A parallel
// reduction that merges per-block accumulators therefore reproduces the
// sequential Add loop exactly. The zero value (or k <= 0) keeps a single
// best item.
type TopK struct {
	k     int
	items []TopItem
}

// NewTopK creates an accumulator retaining the k best items (k < 1 is
// treated as 1: a deterministic argmax).
func NewTopK(k int) *TopK {
	if k < 1 {
		k = 1
	}
	return &TopK{k: k}
}

// bound returns the retention limit, tolerating the zero value.
func (t *TopK) bound() int {
	if t.k < 1 {
		return 1
	}
	return t.k
}

// Add folds one observation in.
func (t *TopK) Add(score float64, id string) {
	t.insert(TopItem{Score: score, ID: id})
}

// insert places it into the sorted retained slice, dropping the worst item
// on overflow.
func (t *TopK) insert(it TopItem) {
	i := sort.Search(len(t.items), func(j int) bool { return it.less(t.items[j]) })
	if i >= t.bound() {
		return
	}
	t.items = append(t.items, TopItem{})
	copy(t.items[i+1:], t.items[i:])
	t.items[i] = it
	if len(t.items) > t.bound() {
		t.items = t.items[:t.bound()]
	}
}

// Merge folds o in, as if o's observations had been appended after the
// receiver's. o is unchanged.
func (t *TopK) Merge(o *TopK) {
	if o == nil {
		return
	}
	for _, it := range o.items {
		t.insert(it)
	}
}

// Len returns the number of retained items (<= k).
func (t *TopK) Len() int { return len(t.items) }

// Items returns a copy of the retained items, best first.
func (t *TopK) Items() []TopItem {
	return append([]TopItem(nil), t.items...)
}

// Best returns the single best item, and whether any observation was added.
func (t *TopK) Best() (TopItem, bool) {
	if len(t.items) == 0 {
		return TopItem{}, false
	}
	return t.items[0], true
}
