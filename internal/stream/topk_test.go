package stream

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"asyncagree/internal/rng"
)

// topkSample is a fixed observation set with score ties (forcing the ID
// tie-break) and duplicate-free IDs.
func topkSample() []TopItem {
	src := rng.New(17)
	out := make([]TopItem, 20)
	for i := range out {
		out[i] = TopItem{Score: float64(src.Intn(6)), ID: fmt.Sprintf("c%02d", i)}
	}
	return out
}

// reference computes the k best items by full sort under the documented
// total order (score descending, ID ascending).
func reference(items []TopItem, k int) []TopItem {
	sorted := append([]TopItem(nil), items...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].less(sorted[j]) })
	if len(sorted) > k {
		sorted = sorted[:k]
	}
	return sorted
}

func TestTopKMatchesFullSort(t *testing.T) {
	items := topkSample()
	for _, k := range []int{1, 3, 5, 19, 25} {
		acc := NewTopK(k)
		for _, it := range items {
			acc.Add(it.Score, it.ID)
		}
		if got, want := acc.Items(), reference(items, k); !reflect.DeepEqual(got, want) {
			t.Fatalf("k=%d: retained %v, want %v", k, got, want)
		}
	}
}

// TestTopKOrderAndMergeTreeInvariant is the determinism property the search
// frontier rests on: the retained items are a pure function of the
// observation multiset — identical under every insertion order tried and
// under every 2-part merge split, nested merges included.
func TestTopKOrderAndMergeTreeInvariant(t *testing.T) {
	items := topkSample()
	const k = 5
	want := reference(items, k)

	src := rng.New(3)
	for trial := 0; trial < 20; trial++ {
		perm := src.Perm(len(items))
		acc := NewTopK(k)
		for _, i := range perm {
			acc.Add(items[i].Score, items[i].ID)
		}
		if got := acc.Items(); !reflect.DeepEqual(got, want) {
			t.Fatalf("permutation %v: retained %v, want %v", perm, got, want)
		}
	}

	for cut := 0; cut <= len(items); cut++ {
		a, b := NewTopK(k), NewTopK(k)
		for _, it := range items[:cut] {
			a.Add(it.Score, it.ID)
		}
		for _, it := range items[cut:] {
			b.Add(it.Score, it.ID)
		}
		a.Merge(b)
		if got := a.Items(); !reflect.DeepEqual(got, want) {
			t.Fatalf("merge cut %d: retained %v, want %v", cut, got, want)
		}
	}

	// Nested merge trees: left-leaning and right-leaning folds over a
	// 4-part split must agree with the flat reference too.
	quarter := len(items) / 4
	parts := make([]*TopK, 4)
	for p := range parts {
		lo, hi := p*quarter, (p+1)*quarter
		if p == 3 {
			hi = len(items)
		}
		parts[p] = NewTopK(k)
		for _, it := range items[lo:hi] {
			parts[p].Add(it.Score, it.ID)
		}
	}
	left := NewTopK(k)
	for _, p := range parts {
		left.Merge(p)
	}
	right := NewTopK(k)
	for i := len(parts) - 1; i >= 0; i-- {
		right.Merge(parts[i])
	}
	if !reflect.DeepEqual(left.Items(), want) || !reflect.DeepEqual(right.Items(), want) {
		t.Fatalf("merge trees diverged:\nleft  %v\nright %v\nwant  %v", left.Items(), right.Items(), want)
	}
}

func TestTopKZeroValueAndBest(t *testing.T) {
	var zero TopK
	if _, ok := zero.Best(); ok {
		t.Fatal("empty accumulator claims a best item")
	}
	zero.Add(1, "a")
	zero.Add(2, "b")
	if best, ok := zero.Best(); !ok || best.ID != "b" || zero.Len() != 1 {
		t.Fatalf("zero value must keep a single best item, got %v (len %d)", zero.items, zero.Len())
	}
	if NewTopK(-3).bound() != 1 {
		t.Fatal("k < 1 must clamp to 1")
	}
}
