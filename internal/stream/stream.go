// Package stream provides the mergeable online accumulators of the
// result pipeline: bounded-memory reductions over trial measurements that
// replace buffering complete result sets (see DESIGN.md §4).
//
// Every accumulator supports two operations with a shared determinism
// contract:
//
//   - Add folds one observation in;
//   - Merge folds a whole accumulator in, as if its observations had been
//     appended after the receiver's.
//
// Merge is order-deterministic: the result is a pure function of the two
// accumulator states, never of timing, so a parallel reduction that merges
// per-block accumulators in index order reproduces the same bytes run after
// run and machine after machine. Count, Sum, Min, and Max are exact under
// any merge tree; so is Mean whenever the observations are integer-valued
// (every windows/rounds/chain-depth measurement in this repository), because
// Mean is computed as an exact integer-representable Sum over Count. The
// Welford variance term is exact when the merged-in accumulator holds a
// single observation — Merge then performs bit-for-bit the sequential Add
// update — and agrees with sequential accumulation to floating-point
// rounding otherwise. Reservoir quantiles are exact while the total
// observation count fits the capacity and a deterministic sketch beyond it.
package stream

import (
	"fmt"
	"math"
	"sort"
)

// Summary is an online min/max/count/mean/variance accumulator: the
// streaming counterpart of stats.Summarize. The zero value is ready to use
// and describes an empty sample.
type Summary struct {
	count    int
	sum      float64
	min, max float64
	// m2 is the Welford sum of squared deviations from the running mean.
	m2 float64
}

// Add folds one observation in.
func (s *Summary) Add(x float64) {
	if s.count == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	// Welford update written against the exact sum-based mean, so that
	// Merge with a single-observation accumulator reproduces this update
	// bit for bit (see Merge).
	delta := x - s.Mean()
	s.m2 += delta * delta * float64(s.count) / float64(s.count+1)
	s.sum += x
	s.count++
}

// AddInt folds one integer observation in.
func (s *Summary) AddInt(x int) { s.Add(float64(x)) }

// Merge folds o in, as if o's observations had been appended after the
// receiver's. Merging is order-deterministic (a pure function of the two
// states); count, sum, min, and max combine exactly, and the variance term
// combines by the Chan et al. parallel formula — bit-identical to a
// sequential Add when o holds one observation, within floating-point
// rounding of the sequential order otherwise.
func (s *Summary) Merge(o *Summary) {
	if o.count == 0 {
		return
	}
	if s.count == 0 {
		*s = *o
		return
	}
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	delta := o.Mean() - s.Mean()
	s.m2 += o.m2 + delta*delta*float64(s.count)*float64(o.count)/float64(s.count+o.count)
	s.sum += o.sum
	s.count += o.count
}

// Count returns the number of observations.
func (s *Summary) Count() int { return s.count }

// Sum returns the observation total.
func (s *Summary) Sum() float64 { return s.sum }

// Mean returns the sample mean (0 for an empty sample). It is computed as
// Sum/Count, so it is exact — and identical to the batch stats.Summarize
// mean — whenever the observations are integer-valued.
func (s *Summary) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return s.sum / float64(s.count)
}

// Std returns the population standard deviation (0 for an empty sample),
// matching stats.Summarize's /n convention.
func (s *Summary) Std() float64 {
	if s.count == 0 {
		return 0
	}
	v := s.m2 / float64(s.count)
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Min returns the smallest observation (0 for an empty sample, matching the
// zero stats.Summary).
func (s *Summary) Min() float64 {
	if s.count == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation (0 for an empty sample).
func (s *Summary) Max() float64 {
	if s.count == 0 {
		return 0
	}
	return s.max
}

// Reservoir is a fixed-capacity deterministic quantile sketch. While the
// observation count is at most the capacity it retains every value and its
// quantiles are exact (identical to sorting the full sample); beyond the
// capacity it decimates deterministically — the Add path keeps every
// stride-th observation, doubling the stride each time the buffer fills,
// and the Merge overflow path keeps evenly spaced order statistics — so
// memory stays O(capacity) for any stream length and the sketch remains a
// pure function of the observation sequence.
type Reservoir struct {
	cap     int
	stride  int
	seen    int
	samples []float64
}

// DefaultReservoirCap retains every experiment-scale sample exactly (the
// largest per-configuration trial count in the repository is well below
// it), so streaming medians and percentiles stay byte-identical to the
// batch path at all committed scales.
const DefaultReservoirCap = 4096

// NewReservoir creates a sketch retaining at most capacity values
// (DefaultReservoirCap if capacity <= 0).
func NewReservoir(capacity int) *Reservoir {
	if capacity <= 0 {
		capacity = DefaultReservoirCap
	}
	return &Reservoir{cap: capacity, stride: 1}
}

// Add folds one observation in.
func (r *Reservoir) Add(x float64) {
	keep := r.seen%r.stride == 0
	r.seen++
	if !keep {
		return
	}
	if len(r.samples) == r.cap {
		// Compact: retain observations at indices ≡ 0 (mod 2·stride).
		half := r.samples[:0]
		for i := 0; i < len(r.samples); i += 2 {
			half = append(half, r.samples[i])
		}
		r.samples = half
		r.stride *= 2
		if (r.seen-1)%r.stride != 0 {
			return
		}
	}
	r.samples = append(r.samples, x)
}

// AddInt folds one integer observation in.
func (r *Reservoir) AddInt(x int) { r.Add(float64(x)) }

// Merge folds o in, as if o's observations had been appended after the
// receiver's. While the combined retained samples fit the capacity the
// merge is a concatenation (exact); on overflow the combined samples are
// sorted and decimated to evenly spaced order statistics. Either way the
// result is a pure function of the two sketch states.
func (r *Reservoir) Merge(o *Reservoir) {
	r.seen += o.seen
	if len(r.samples)+len(o.samples) <= r.cap && r.stride == 1 && o.stride == 1 {
		r.samples = append(r.samples, o.samples...)
		return
	}
	combined := make([]float64, 0, len(r.samples)+len(o.samples))
	combined = append(combined, r.samples...)
	combined = append(combined, o.samples...)
	sort.Float64s(combined)
	if len(combined) > r.cap {
		kept := r.samples[:0]
		for i := 0; i < r.cap; i++ {
			// Evenly spaced order statistics, endpoints included.
			pos := 0
			if r.cap > 1 {
				pos = i * (len(combined) - 1) / (r.cap - 1)
			}
			kept = append(kept, combined[pos])
		}
		r.samples = kept
	} else {
		r.samples = append(r.samples[:0], combined...)
	}
	if r.stride < o.stride {
		r.stride = o.stride
	}
}

// Count returns the number of observations folded in (not the retained
// sample count).
func (r *Reservoir) Count() int { return r.seen }

// Retained returns how many values the sketch currently holds.
func (r *Reservoir) Retained() int { return len(r.samples) }

// Quantile returns the q-quantile (0 <= q <= 1) of the retained samples by
// the same linear interpolation as stats.Quantile — exact while the
// observation count is within capacity, a sketch estimate beyond. An empty
// sketch yields 0.
func (r *Reservoir) Quantile(q float64) float64 {
	if len(r.samples) == 0 {
		return 0
	}
	sorted := append([]float64(nil), r.samples...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Hist is a bounded integer histogram for decision-round (and other small
// non-negative count) distributions: buckets 0..Buckets()-1 plus one
// overflow bucket, so memory is O(buckets) regardless of stream length.
// All counts are integers, so Merge is exact under any merge tree.
type Hist struct {
	counts   []int64
	overflow int64
	total    int64
}

// NewHist creates a histogram with the given number of unit-width buckets
// (values v with 0 <= v < buckets; larger values land in the overflow
// bucket, negative ones in bucket 0).
func NewHist(buckets int) *Hist {
	if buckets < 1 {
		buckets = 1
	}
	return &Hist{counts: make([]int64, buckets)}
}

// Add folds one observation in.
func (h *Hist) Add(v int) {
	h.total++
	switch {
	case v < 0:
		h.counts[0]++
	case v >= len(h.counts):
		h.overflow++
	default:
		h.counts[v]++
	}
}

// Merge folds o in; both histograms must have the same bucket count.
func (h *Hist) Merge(o *Hist) {
	if len(o.counts) != len(h.counts) {
		panic(fmt.Sprintf("stream: merging histograms with different bucket counts (%d vs %d)", len(h.counts), len(o.counts)))
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.overflow += o.overflow
	h.total += o.total
}

// Buckets returns the number of unit-width buckets (excluding overflow).
func (h *Hist) Buckets() int { return len(h.counts) }

// Count returns the total number of observations.
func (h *Hist) Count() int64 { return h.total }

// CountLess returns how many observations were < v. Exact for v within the
// bucket range; for v > Buckets() the overflow bucket's position is unknown
// and CountLess conservatively excludes it.
func (h *Hist) CountLess(v int) int64 {
	if v <= 0 {
		return 0
	}
	if v > len(h.counts) {
		v = len(h.counts)
	}
	var total int64
	for i := 0; i < v; i++ {
		total += h.counts[i]
	}
	return total
}

// CountAtLeast returns how many observations were >= v (the survival count
// of the decision-round curves). Exact for v within the bucket range.
func (h *Hist) CountAtLeast(v int) int64 { return h.total - h.CountLess(v) }

// Bucket returns the count of observations equal to v (0 for out-of-range
// v; the overflow bucket is reported by Overflow).
func (h *Hist) Bucket(v int) int64 {
	if v < 0 || v >= len(h.counts) {
		return 0
	}
	return h.counts[v]
}

// Overflow returns the count of observations >= Buckets().
func (h *Hist) Overflow() int64 { return h.overflow }
