package stream_test

import (
	"math"
	"testing"

	"asyncagree/internal/rng"
	"asyncagree/internal/stats"
	"asyncagree/internal/stream"
)

// TestSummaryMatchesBatchOnIntegerSamples is the pipeline's byte-identity
// property: on integer-valued observations (every windows/rounds/chain
// measurement in the repository) the streaming accumulators reproduce the
// batch stats.Summarize fields exactly — not approximately — for
// count/mean/min/max and the reservoir quantiles, with std agreeing to
// floating-point rounding.
func TestSummaryMatchesBatchOnIntegerSamples(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(300)
		xs := make([]float64, n)
		var acc stream.Summary
		res := stream.NewReservoir(0)
		for i := range xs {
			v := float64(r.Intn(100000) - 50000)
			xs[i] = v
			acc.Add(v)
			res.Add(v)
		}
		batch := stats.Summarize(xs)
		if acc.Count() != batch.Count || acc.Mean() != batch.Mean ||
			acc.Min() != batch.Min || acc.Max() != batch.Max {
			t.Fatalf("trial %d: streaming (n=%d mean=%v min=%v max=%v) != batch %+v",
				trial, acc.Count(), acc.Mean(), acc.Min(), acc.Max(), batch)
		}
		if acc.Std() != batch.Std {
			// Same accumulation order, same arithmetic: bit-equal.
			t.Fatalf("trial %d: streaming std %v != batch %v", trial, acc.Std(), batch.Std)
		}
		if res.Quantile(0.5) != batch.Median || res.Quantile(0.9) != batch.P90 {
			t.Fatalf("trial %d: reservoir quantiles (%v, %v) != batch (%v, %v)",
				trial, res.Quantile(0.5), res.Quantile(0.9), batch.Median, batch.P90)
		}
		fs := stats.FromStream(&acc, res)
		if fs != batch {
			t.Fatalf("trial %d: FromStream %+v != Summarize %+v", trial, fs, batch)
		}
	}
}

// TestSummaryMatchesBatchOnFloatSamples relaxes to floating-point tolerance
// for arbitrary real observations.
func TestSummaryMatchesBatchOnFloatSamples(t *testing.T) {
	r := rng.New(11)
	approx := func(a, b float64) bool {
		return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
	}
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(200)
		xs := make([]float64, n)
		var acc stream.Summary
		for i := range xs {
			xs[i] = (r.Float64() - 0.5) * 1e4
			acc.Add(xs[i])
		}
		batch := stats.Summarize(xs)
		if acc.Count() != batch.Count || acc.Min() != batch.Min || acc.Max() != batch.Max {
			t.Fatalf("trial %d: exact fields diverged", trial)
		}
		if !approx(acc.Mean(), batch.Mean) || !approx(acc.Std(), batch.Std) {
			t.Fatalf("trial %d: mean/std diverged: (%v, %v) vs (%v, %v)",
				trial, acc.Mean(), acc.Std(), batch.Mean, batch.Std)
		}
	}
}

// TestSummaryMergeEqualsConcatenation is the order-determinism contract:
// Merge(a, b) describes exactly the concatenated sample — bit-equal for
// count/sum/min/max (and integer-sample means), within floating-point
// rounding for the variance term.
func TestSummaryMergeEqualsConcatenation(t *testing.T) {
	r := rng.New(13)
	for trial := 0; trial < 200; trial++ {
		na, nb := r.Intn(50), r.Intn(50)
		var a, b, both stream.Summary
		ra, rb := stream.NewReservoir(0), stream.NewReservoir(0)
		rboth := stream.NewReservoir(0)
		for i := 0; i < na; i++ {
			v := float64(r.Intn(1000) - 500)
			a.Add(v)
			ra.Add(v)
			both.Add(v)
			rboth.Add(v)
		}
		for i := 0; i < nb; i++ {
			v := float64(r.Intn(1000) - 500)
			b.Add(v)
			rb.Add(v)
			both.Add(v)
			rboth.Add(v)
		}
		a.Merge(&b)
		ra.Merge(rb)
		if a.Count() != both.Count() || a.Sum() != both.Sum() ||
			a.Min() != both.Min() || a.Max() != both.Max() || a.Mean() != both.Mean() {
			t.Fatalf("trial %d: merged summary diverged from concatenation", trial)
		}
		if math.Abs(a.Std()-both.Std()) > 1e-9*(1+both.Std()) {
			t.Fatalf("trial %d: merged std %v vs sequential %v", trial, a.Std(), both.Std())
		}
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 1} {
			if ra.Quantile(q) != rboth.Quantile(q) {
				t.Fatalf("trial %d: merged reservoir quantile %v diverged", trial, q)
			}
		}
	}
}

// TestSummaryMergeSingletonBitEqual pins the stronger guarantee Reduce's
// one-index-at-a-time merges rely on: merging a single-observation
// accumulator is bit-for-bit the sequential Add, including the Welford
// variance term.
func TestSummaryMergeSingletonBitEqual(t *testing.T) {
	r := rng.New(17)
	var seq, merged stream.Summary
	for i := 0; i < 500; i++ {
		v := (r.Float64() - 0.5) * 1e6
		seq.Add(v)
		var one stream.Summary
		one.Add(v)
		merged.Merge(&one)
		if seq.Std() != merged.Std() || seq.Mean() != merged.Mean() {
			t.Fatalf("step %d: singleton merge diverged from Add: std %v vs %v",
				i, merged.Std(), seq.Std())
		}
	}
}

// TestSummaryEmpty pins zero-value behavior to the zero stats.Summary.
func TestSummaryEmpty(t *testing.T) {
	var s stream.Summary
	if s.Count() != 0 || s.Mean() != 0 || s.Std() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
	var o stream.Summary
	o.Add(3)
	s.Merge(&o)
	if s.Count() != 1 || s.Mean() != 3 {
		t.Fatal("merge into empty lost the sample")
	}
	o.Merge(&stream.Summary{})
	if o.Count() != 1 {
		t.Fatal("merging an empty summary changed the receiver")
	}
}

// TestReservoirBoundedAndDeterministic drives the sketch past its capacity:
// memory stays bounded, the state is a pure function of the sequence, and
// quantiles remain ordered estimates of the stream.
func TestReservoirBoundedAndDeterministic(t *testing.T) {
	const capacity = 64
	a, b := stream.NewReservoir(capacity), stream.NewReservoir(capacity)
	for i := 0; i < 10_000; i++ {
		a.Add(float64(i))
		b.Add(float64(i))
	}
	if a.Retained() > capacity {
		t.Fatalf("retained %d > capacity %d", a.Retained(), capacity)
	}
	if a.Count() != 10_000 {
		t.Fatalf("count = %d", a.Count())
	}
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 1} {
		if a.Quantile(q) != b.Quantile(q) {
			t.Fatal("two identical streams produced different sketches")
		}
	}
	// Uniform 0..9999: the sketch median must land near 5000.
	if m := a.Quantile(0.5); m < 4000 || m > 6000 {
		t.Fatalf("sketch median %v implausible for uniform stream", m)
	}
	if lo, hi := a.Quantile(0.1), a.Quantile(0.9); lo >= hi {
		t.Fatalf("quantiles out of order: %v >= %v", lo, hi)
	}

	// Overflowing merges stay bounded too.
	c := stream.NewReservoir(capacity)
	for i := 0; i < 200; i++ {
		c.Add(float64(-i))
	}
	a.Merge(c)
	if a.Retained() > capacity {
		t.Fatalf("post-merge retained %d > capacity", a.Retained())
	}
	if a.Count() != 10_200 {
		t.Fatalf("post-merge count = %d", a.Count())
	}
	// Past capacity the sketch estimates (exact extremes are Summary's
	// job): the retained range must still span both merged streams.
	if a.Quantile(0) > -150 || a.Quantile(1) < 9900 {
		t.Fatalf("merge collapsed the range: [%v, %v]", a.Quantile(0), a.Quantile(1))
	}
}

// TestHist covers bucket accounting, overflow, and exact merging.
func TestHist(t *testing.T) {
	h := stream.NewHist(8)
	for _, v := range []int{0, 1, 1, 3, 7, 8, 100, -2} {
		h.Add(v)
	}
	if h.Count() != 8 || h.Buckets() != 8 {
		t.Fatalf("count %d buckets %d", h.Count(), h.Buckets())
	}
	if h.Bucket(1) != 2 || h.Bucket(0) != 2 || h.Overflow() != 2 {
		t.Fatalf("bucket counts wrong: %+v", h)
	}
	if h.CountLess(2) != 4 || h.CountAtLeast(2) != 4 {
		t.Fatalf("CountLess(2) = %d, CountAtLeast(2) = %d", h.CountLess(2), h.CountAtLeast(2))
	}
	if h.CountLess(0) != 0 || h.CountAtLeast(0) != 8 {
		t.Fatal("edge cumulative counts wrong")
	}

	o := stream.NewHist(8)
	o.Add(3)
	o.Add(9)
	h.Merge(o)
	if h.Bucket(3) != 2 || h.Overflow() != 3 || h.Count() != 10 {
		t.Fatalf("merge wrong: %+v", h)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("mismatched-bucket merge did not panic")
		}
	}()
	h.Merge(stream.NewHist(4))
}
