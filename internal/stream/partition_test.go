package stream

import (
	"math"
	"reflect"
	"testing"

	"asyncagree/internal/rng"
)

// fixedSample is the deterministic input the partition properties run over:
// values with duplicates, spread, and (for Hist) out-of-range entries.
func fixedSample(n int) []int {
	src := rng.New(41)
	out := make([]int, n)
	for i := range out {
		out[i] = src.Intn(40) // a third overflow a 30-bucket hist
	}
	return out
}

// TestHistMergePartitionInvariant checks that a Hist built by merging
// per-part histograms equals the sequentially built one at EVERY 2-part
// partition of a fixed input, and at every 3-part partition: merge order
// and split points must not be observable.
func TestHistMergePartitionInvariant(t *testing.T) {
	const buckets = 30
	vals := fixedSample(24)
	want := NewHist(buckets)
	for _, v := range vals {
		want.Add(v)
	}
	histOf := func(part []int) *Hist {
		h := NewHist(buckets)
		for _, v := range part {
			h.Add(v)
		}
		return h
	}
	equal := func(a, b *Hist) bool {
		if a.Count() != b.Count() || a.Overflow() != b.Overflow() {
			return false
		}
		for v := 0; v < buckets; v++ {
			if a.Bucket(v) != b.Bucket(v) {
				return false
			}
		}
		return true
	}
	for i := 0; i <= len(vals); i++ {
		for j := i; j <= len(vals); j++ {
			got := histOf(vals[:i])
			got.Merge(histOf(vals[i:j]))
			got.Merge(histOf(vals[j:]))
			if !equal(got, want) {
				t.Fatalf("partition [0:%d|%d:%d|%d:] diverged from sequential", i, i, j, j)
			}
		}
	}
}

// TestReservoirMergeExactWithinCapacity checks the exactness half of the
// Reservoir contract: while the observation count fits the capacity, the
// merged sketch retains exactly the sequential sketch's samples at every
// 2-part partition of the input.
func TestReservoirMergeExactWithinCapacity(t *testing.T) {
	vals := fixedSample(30)
	seq := NewReservoir(64)
	for _, v := range vals {
		seq.AddInt(v)
	}
	for cut := 0; cut <= len(vals); cut++ {
		a, b := NewReservoir(64), NewReservoir(64)
		for _, v := range vals[:cut] {
			a.AddInt(v)
		}
		for _, v := range vals[cut:] {
			b.AddInt(v)
		}
		a.Merge(b)
		if a.Count() != seq.Count() || a.Retained() != seq.Retained() {
			t.Fatalf("cut %d: count/retained diverged", cut)
		}
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 1} {
			if got, want := a.Quantile(q), seq.Quantile(q); got != want {
				t.Fatalf("cut %d: quantile %.2f = %v, want %v", cut, q, got, want)
			}
		}
	}
}

// TestReservoirMergeDeterministicBeyondCapacity checks the sketch half of
// the contract: past the capacity the merged result need not equal the
// sequential sketch, but it must be a pure function of the partition —
// rebuilding the same split yields byte-identical retained samples, the
// observation count is preserved exactly, and quantiles stay within the
// data range.
func TestReservoirMergeDeterministicBeyondCapacity(t *testing.T) {
	vals := fixedSample(100)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		lo = math.Min(lo, float64(v))
		hi = math.Max(hi, float64(v))
	}
	build := func(cut int) *Reservoir {
		a, b := NewReservoir(8), NewReservoir(8)
		for _, v := range vals[:cut] {
			a.AddInt(v)
		}
		for _, v := range vals[cut:] {
			b.AddInt(v)
		}
		a.Merge(b)
		return a
	}
	for cut := 0; cut <= len(vals); cut += 7 {
		first, second := build(cut), build(cut)
		if first.Count() != len(vals) {
			t.Fatalf("cut %d: merged count %d, want %d", cut, first.Count(), len(vals))
		}
		if !reflect.DeepEqual(first, second) {
			t.Fatalf("cut %d: rebuilding the same partition diverged", cut)
		}
		if first.Retained() > 8 {
			t.Fatalf("cut %d: retained %d over capacity", cut, first.Retained())
		}
		for _, q := range []float64{0, 0.5, 1} {
			if got := first.Quantile(q); got < lo || got > hi {
				t.Fatalf("cut %d: quantile %.1f = %v outside data range [%v, %v]", cut, q, got, lo, hi)
			}
		}
	}
}

// TestSummaryMergePartitionInvariant extends the partition property to
// Summary: integer-exact statistics (count, sum, min, max, and the mean
// derived from them) are identical to sequential at every 2-part partition.
func TestSummaryMergePartitionInvariant(t *testing.T) {
	vals := fixedSample(24)
	var seq Summary
	for _, v := range vals {
		seq.AddInt(v)
	}
	for cut := 0; cut <= len(vals); cut++ {
		var a, b Summary
		for _, v := range vals[:cut] {
			a.AddInt(v)
		}
		for _, v := range vals[cut:] {
			b.AddInt(v)
		}
		a.Merge(&b)
		if a.Count() != seq.Count() || a.Sum() != seq.Sum() ||
			a.Min() != seq.Min() || a.Max() != seq.Max() || a.Mean() != seq.Mean() {
			t.Fatalf("cut %d: merged summary diverged from sequential", cut)
		}
	}
}
