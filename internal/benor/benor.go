// Package benor implements Ben-Or's randomized binary consensus protocol
// (PODC 1983) for the asynchronous crash-failure model with t < n/2, in the
// formulation whose correctness was proven by Aguilera and Toueg (Distributed
// Computing 2012) — reference [1] of the paper.
//
// Each round r has two phases:
//
//	phase 1 (report):   broadcast (r, 1, x). Wait for n-t round-r reports.
//	                    If more than n/2 carry the same bit v, propose v;
//	                    otherwise propose '?'.
//	phase 2 (proposal): broadcast (r, 2, proposal). Wait for n-t round-r
//	                    proposals. If at least t+1 carry the same bit v,
//	                    decide v. If at least one carries a bit v, set x = v.
//	                    Otherwise set x to a fresh random bit. Then r += 1.
//
// Since two conflicting valued proposals would each require more than n/2
// reports of their value, at most one value is ever proposed per round, which
// gives agreement; unanimous inputs decide in round 1, which gives validity.
//
// The protocol is *forgetful* and *fully communicative* in the sense of
// Definitions 15 and 16 of the paper (messages depend only on the input bit,
// the most recently received n-t messages, and fresh randomness; receiving
// n-t fresh messages always triggers a broadcast to all n), so Theorem 17's
// exponential lower bound on message-chain length applies to it — experiment
// E8 measures exactly that.
package benor

import (
	"fmt"
	"strconv"
	"strings"

	"asyncagree/internal/sim"
)

// Phase identifies the two message types of a round.
type Phase int

const (
	// PhaseReport is phase 1 (the (r, x) report).
	PhaseReport Phase = 1
	// PhaseProposal is phase 2 (the (r, v|?) proposal).
	PhaseProposal Phase = 2
)

// Msg is the Ben-Or message payload.
type Msg struct {
	// R is the round, P the phase.
	R int
	P Phase
	// V is the carried bit; Valued is false for a '?' proposal (and always
	// true for reports).
	V      sim.Bit
	Valued bool
}

// ExtractVote exposes report contents to algorithm-agnostic adversaries: it
// returns the carried bit of a valued message and ok=false for '?' proposals
// or foreign payloads. Reports and valued proposals are both bit-bearing.
// It accepts both the pooled *Msg boxes the protocol sends and plain Msg
// values (hand-built messages in tests and external drivers).
func ExtractVote(m sim.Message) (round int, phase Phase, value sim.Bit, ok bool) {
	var p Msg
	switch pl := m.Payload.(type) {
	case *Msg:
		p = *pl
	case Msg:
		p = pl
	default:
		return 0, 0, 0, false
	}
	if !p.Valued {
		return 0, 0, 0, false
	}
	return p.R, p.P, p.V, true
}

// Proc is one processor running Ben-Or. It implements sim.Process.
type Proc struct {
	id   sim.ProcID
	n, t int

	input   sim.Bit
	out     sim.Bit
	decided bool

	round int
	phase Phase
	x     sim.Bit

	// got[r] tallies round r's reports and proposals in per-value sender
	// bitsets (words words each). Tallies are recycled through pool, so the
	// steady-state round loop performs no per-round allocation (the seed
	// implementation built three nested maps per round).
	got   map[int]*roundTally
	pool  []*roundTally
	words int

	resetCounter int

	// pending holds this window's queued broadcasts as plain records; Send
	// materializes them into pooled message boxes only on the legacy path,
	// while SendColumnar publishes them as columns. (round, phase) keys
	// strictly ascend within a window — the sim.VotePublisher contract.
	pending []Msg
	outbox  []sim.Message

	// msgPool recycles the heap-boxed *Msg payloads of past broadcasts; the
	// System hands a completed window's batch payloads back through
	// ReclaimPayload (window mode only — in step mode the pool stays empty
	// and every broadcast boxes a fresh Msg).
	msgPool []*Msg
}

// quesMark is the props plane index of '?' (unvalued) proposals. It equals
// sim.ValNeutral, so a column's Val doubles as the plane index.
const quesMark = 2

// roundTally records one round's first message per (phase, sender):
// reports[v]/props[v] are per-value sender bitsets (props[quesMark] holds
// the '?' proposals), nReports/nProps count the distinct senders recorded,
// and repCount/propCount the per-value totals the phase thresholds are
// checked against (proposal counts tally valued proposals only).
type roundTally struct {
	reports             [2][]uint64
	props               [3][]uint64
	nReports, nProps    int
	repCount, propCount [2]int
}

func (rt *roundTally) clear() {
	for v := range rt.reports {
		clear(rt.reports[v])
	}
	for v := range rt.props {
		clear(rt.props[v])
	}
	rt.nReports, rt.nProps = 0, 0
	rt.repCount = [2]int{}
	rt.propCount = [2]int{}
}

// reportedWord returns the senders already recorded for the round's reports
// in word w; proppedWord the same for its proposals.
func (rt *roundTally) reportedWord(w int) uint64 { return rt.reports[0][w] | rt.reports[1][w] }
func (rt *roundTally) proppedWord(w int) uint64 {
	return rt.props[0][w] | rt.props[1][w] | rt.props[2][w]
}

// takeRound fetches a cleared tally from the pool (or allocates one over a
// single backing array).
func (p *Proc) takeRound() *roundTally {
	if n := len(p.pool); n > 0 {
		rt := p.pool[n-1]
		p.pool = p.pool[:n-1]
		return rt
	}
	backing := make([]uint64, 5*p.words)
	rt := &roundTally{}
	for v := 0; v < 2; v++ {
		rt.reports[v] = backing[v*p.words : (v+1)*p.words]
	}
	for v := 0; v < 3; v++ {
		rt.props[v] = backing[(2+v)*p.words : (3+v)*p.words]
	}
	return rt
}

// releaseRound clears a tally and returns it to the pool.
func (p *Proc) releaseRound(rt *roundTally) {
	rt.clear()
	p.pool = append(p.pool, rt)
}

var _ sim.Process = (*Proc)(nil)

// New constructs a Ben-Or processor. It returns an error unless 0 <= t < n/2.
func New(id sim.ProcID, n, t int, input sim.Bit) (*Proc, error) {
	if t < 0 || 2*t >= n {
		return nil, fmt.Errorf("benor: need 0 <= t < n/2, got n=%d t=%d", n, t)
	}
	p := &Proc{
		id:    id,
		n:     n,
		t:     t,
		input: input,
		round: 1,
		phase: PhaseReport,
		x:     input,
		got:   make(map[int]*roundTally),
		words: (n + 63) / 64,
	}
	p.queueBroadcast(Msg{R: 1, P: PhaseReport, V: input, Valued: true})
	return p, nil
}

// NewFactory returns a sim.Config-compatible constructor.
func NewFactory(n, t int) func(sim.ProcID, sim.Bit) sim.Process {
	if t < 0 || 2*t >= n {
		panic(fmt.Sprintf("benor: invalid parameters n=%d t=%d (need t >= 0 and n > 2t)", n, t))
	}
	return func(id sim.ProcID, input sim.Bit) sim.Process {
		p, err := New(id, n, t, input)
		if err != nil {
			panic("benor: " + err.Error()) // unreachable: parameters validated above
		}
		return p
	}
}

// ID implements sim.Process.
func (p *Proc) ID() sim.ProcID { return p.id }

// Input implements sim.Process.
func (p *Proc) Input() sim.Bit { return p.input }

// Output implements sim.Process.
func (p *Proc) Output() (sim.Bit, bool) { return p.out, p.decided }

// Round returns the current (round, phase) for adversaries and tests.
func (p *Proc) Round() (int, Phase) { return p.round, p.phase }

// Value returns the current estimate x.
func (p *Proc) Value() sim.Bit { return p.x }

// queueBroadcast queues m to all n processors. The record stays a plain
// Msg until the window's send: only the legacy Send path boxes it (all n
// copies sharing one pooled *Msg box — the seed implementation boxed the
// payload once per copy, the sweep engine's single largest allocation
// source), while the columnar path never materializes copies at all.
func (p *Proc) queueBroadcast(m Msg) {
	p.pending = append(p.pending, m)
}

// takeMsg fetches a payload box from the pool (or allocates one).
func (p *Proc) takeMsg() *Msg {
	if n := len(p.msgPool); n > 0 {
		m := p.msgPool[n-1]
		p.msgPool = p.msgPool[:n-1]
		return m
	}
	return new(Msg)
}

// ReclaimPayload implements sim.PayloadReclaimer: the System returns the
// payload boxes of a completed window's batch, one call per box.
func (p *Proc) ReclaimPayload(payload any) {
	if m, ok := payload.(*Msg); ok {
		p.msgPool = append(p.msgPool, m)
	}
}

// reclaimOutbox discards queued-but-unsent broadcasts. Pending records are
// unboxed, and p.outbox is always empty between Send calls (Send truncates
// it before returning), so this is a pure truncation.
func (p *Proc) reclaimOutbox() {
	p.pending = p.pending[:0]
}

// Send implements sim.Process: it materializes the pending broadcasts into
// pooled message boxes. The returned slice is valid only until the next
// Deliver/Reset (the outbox capacity is recycled), per the sim.Process
// contract.
func (p *Proc) Send() []sim.Message {
	out := p.outbox[:0]
	for i := range p.pending {
		box := p.takeMsg()
		*box = p.pending[i]
		var payload any = box
		for q := 0; q < p.n; q++ {
			out = append(out, sim.Message{From: p.id, To: sim.ProcID(q), Payload: payload})
		}
	}
	p.pending = p.pending[:0]
	p.outbox = out[:0]
	return out
}

// Deliver implements sim.Process.
func (p *Proc) Deliver(m sim.Message, r sim.RandSource) {
	var msg Msg
	switch pl := m.Payload.(type) {
	case *Msg:
		msg = *pl
	case Msg:
		msg = pl
	default:
		return
	}
	if msg.R < p.round || (msg.R == p.round && msg.P < p.phase) {
		return // stale
	}
	if msg.P != PhaseReport && msg.P != PhaseProposal {
		return
	}
	if m.From < 0 || int(m.From) >= p.n {
		return // unauthenticated sender; cannot occur through sim
	}
	tally := p.got[msg.R]
	if tally == nil {
		tally = p.takeRound()
		p.got[msg.R] = tally
	}
	w, bit := int(m.From)>>6, uint64(1)<<(uint(m.From)&63)
	if msg.P == PhaseReport {
		if tally.reportedWord(w)&bit != 0 {
			return // at most one report per (sender, round)
		}
		// Reports carry V unconditionally (Valued is set by honest senders;
		// an unvalued report still tallies its V field, as before).
		tally.reports[msg.V][w] |= bit
		tally.nReports++
		tally.repCount[msg.V]++
	} else {
		if tally.proppedWord(w)&bit != 0 {
			return // at most one proposal per (sender, round)
		}
		if msg.Valued {
			tally.props[msg.V][w] |= bit
			tally.propCount[msg.V]++
		} else {
			tally.props[quesMark][w] |= bit
		}
		tally.nProps++
	}
	p.drain(r)
}

// drain runs phase evaluations to a fixpoint: the wait threshold is n-t
// messages for the current (round, phase), and completing one phase may
// unlock the next from buffered messages.
func (p *Proc) drain(r sim.RandSource) {
	for {
		cur := p.got[p.round]
		if cur == nil {
			return
		}
		if p.phase == PhaseReport {
			if cur.nReports < p.n-p.t {
				return
			}
			p.evalReport(cur)
		} else {
			if cur.nProps < p.n-p.t {
				return
			}
			p.evalProposal(cur, r)
		}
	}
}

// evalReport executes the end of phase 1.
func (p *Proc) evalReport(tally *roundTally) {
	prop := Msg{R: p.round, P: PhaseProposal}
	for v := sim.Bit(0); v <= 1; v++ {
		if 2*tally.repCount[v] > p.n {
			prop.V, prop.Valued = v, true
		}
	}
	p.phase = PhaseProposal
	p.queueBroadcast(prop)
}

// evalProposal executes the end of phase 2.
func (p *Proc) evalProposal(tally *roundTally, r sim.RandSource) {
	count := tally.propCount
	switch {
	case count[0] > 0 && count[1] > 0:
		// Impossible under the protocol (two majorities would intersect);
		// reachable only via corruption. Treat as no information.
		p.x = sim.Bit(r.Bit())
	case count[0] >= p.t+1:
		if !p.decided {
			p.out, p.decided = 0, true
		}
		p.x = 0
	case count[1] >= p.t+1:
		if !p.decided {
			p.out, p.decided = 1, true
		}
		p.x = 1
	case count[0] > 0:
		p.x = 0
	case count[1] > 0:
		p.x = 1
	default:
		p.x = sim.Bit(r.Bit())
	}
	p.releaseRound(tally)
	delete(p.got, p.round)
	p.round++
	p.phase = PhaseReport
	p.dropStale()
	p.queueBroadcast(Msg{R: p.round, P: PhaseReport, V: p.x, Valued: true})
}

// dropStale releases buffered tallies for rounds below the current one
// (rounds skipped over can otherwise linger forever).
func (p *Proc) dropStale() {
	for r, rt := range p.got {
		if r < p.round {
			p.releaseRound(rt)
			delete(p.got, r)
		}
	}
}

// releaseAllRounds returns every buffered tally to the pool.
func (p *Proc) releaseAllRounds() {
	for r, rt := range p.got {
		p.releaseRound(rt)
		delete(p.got, r)
	}
}

// Recycle implements sim.Recycler: it rewinds the processor to the state
// New would produce for the given input, keeping the pooled tallies, payload
// boxes, outbox capacity, and round map so a recycled trial allocates
// nothing here.
func (p *Proc) Recycle(input sim.Bit) {
	p.input = input
	p.out, p.decided = 0, false
	p.round = 1
	p.phase = PhaseReport
	p.x = input
	p.releaseAllRounds()
	p.resetCounter = 0
	p.reclaimOutbox()
	p.queueBroadcast(Msg{R: 1, P: PhaseReport, V: input, Valued: true})
}

// Reset implements sim.Process. Ben-Or is NOT designed for resetting
// failures: a reset processor simply restarts from round 1 with its input.
// The repository uses this only to demonstrate that reset-tolerance is a
// genuine extra property of the core algorithm, not a freebie.
func (p *Proc) Reset() {
	p.resetCounter++
	p.round = 1
	p.phase = PhaseReport
	p.x = p.input
	p.releaseAllRounds()
	p.reclaimOutbox()
	p.queueBroadcast(Msg{R: 1, P: PhaseReport, V: p.x, Valued: true})
}

// Snapshot implements sim.Process.
func (p *Proc) Snapshot() string {
	var b strings.Builder
	b.WriteString("r=")
	b.WriteString(strconv.Itoa(p.round))
	b.WriteString(" p=")
	b.WriteString(strconv.Itoa(int(p.phase)))
	b.WriteString(" x=")
	b.WriteByte('0' + byte(p.x))
	b.WriteString(" out=")
	if p.decided {
		b.WriteByte('0' + byte(p.out))
	} else {
		b.WriteByte('_')
	}
	return b.String()
}
