// Package benor implements Ben-Or's randomized binary consensus protocol
// (PODC 1983) for the asynchronous crash-failure model with t < n/2, in the
// formulation whose correctness was proven by Aguilera and Toueg (Distributed
// Computing 2012) — reference [1] of the paper.
//
// Each round r has two phases:
//
//	phase 1 (report):   broadcast (r, 1, x). Wait for n-t round-r reports.
//	                    If more than n/2 carry the same bit v, propose v;
//	                    otherwise propose '?'.
//	phase 2 (proposal): broadcast (r, 2, proposal). Wait for n-t round-r
//	                    proposals. If at least t+1 carry the same bit v,
//	                    decide v. If at least one carries a bit v, set x = v.
//	                    Otherwise set x to a fresh random bit. Then r += 1.
//
// Since two conflicting valued proposals would each require more than n/2
// reports of their value, at most one value is ever proposed per round, which
// gives agreement; unanimous inputs decide in round 1, which gives validity.
//
// The protocol is *forgetful* and *fully communicative* in the sense of
// Definitions 15 and 16 of the paper (messages depend only on the input bit,
// the most recently received n-t messages, and fresh randomness; receiving
// n-t fresh messages always triggers a broadcast to all n), so Theorem 17's
// exponential lower bound on message-chain length applies to it — experiment
// E8 measures exactly that.
package benor

import (
	"fmt"
	"strconv"
	"strings"

	"asyncagree/internal/sim"
)

// Phase identifies the two message types of a round.
type Phase int

const (
	// PhaseReport is phase 1 (the (r, x) report).
	PhaseReport Phase = 1
	// PhaseProposal is phase 2 (the (r, v|?) proposal).
	PhaseProposal Phase = 2
)

// Msg is the Ben-Or message payload.
type Msg struct {
	// R is the round, P the phase.
	R int
	P Phase
	// V is the carried bit; Valued is false for a '?' proposal (and always
	// true for reports).
	V      sim.Bit
	Valued bool
}

// ExtractVote exposes report contents to algorithm-agnostic adversaries: it
// returns the carried bit of a valued message and ok=false for '?' proposals
// or foreign payloads. Reports and valued proposals are both bit-bearing.
func ExtractVote(m sim.Message) (round int, phase Phase, value sim.Bit, ok bool) {
	p, isMsg := m.Payload.(Msg)
	if !isMsg || !p.Valued {
		return 0, 0, 0, false
	}
	return p.R, p.P, p.V, true
}

// Proc is one processor running Ben-Or. It implements sim.Process.
type Proc struct {
	id   sim.ProcID
	n, t int

	input   sim.Bit
	out     sim.Bit
	decided bool

	round int
	phase Phase
	x     sim.Bit

	// got[r][p][q] records the message from q for (round r, phase p).
	got map[int]map[Phase]map[sim.ProcID]Msg

	resetCounter int
	outbox       []sim.Message
}

var _ sim.Process = (*Proc)(nil)

// New constructs a Ben-Or processor. It returns an error unless 0 <= t < n/2.
func New(id sim.ProcID, n, t int, input sim.Bit) (*Proc, error) {
	if t < 0 || 2*t >= n {
		return nil, fmt.Errorf("benor: need 0 <= t < n/2, got n=%d t=%d", n, t)
	}
	p := &Proc{
		id:    id,
		n:     n,
		t:     t,
		input: input,
		round: 1,
		phase: PhaseReport,
		x:     input,
		got:   make(map[int]map[Phase]map[sim.ProcID]Msg),
	}
	p.queueBroadcast(Msg{R: 1, P: PhaseReport, V: input, Valued: true})
	return p, nil
}

// NewFactory returns a sim.Config-compatible constructor.
func NewFactory(n, t int) func(sim.ProcID, sim.Bit) sim.Process {
	if t < 0 || 2*t >= n {
		panic(fmt.Sprintf("benor: invalid parameters n=%d t=%d", n, t))
	}
	return func(id sim.ProcID, input sim.Bit) sim.Process {
		p, err := New(id, n, t, input)
		if err != nil {
			panic("benor: " + err.Error()) // unreachable: parameters validated above
		}
		return p
	}
}

// ID implements sim.Process.
func (p *Proc) ID() sim.ProcID { return p.id }

// Input implements sim.Process.
func (p *Proc) Input() sim.Bit { return p.input }

// Output implements sim.Process.
func (p *Proc) Output() (sim.Bit, bool) { return p.out, p.decided }

// Round returns the current (round, phase) for adversaries and tests.
func (p *Proc) Round() (int, Phase) { return p.round, p.phase }

// Value returns the current estimate x.
func (p *Proc) Value() sim.Bit { return p.x }

func (p *Proc) queueBroadcast(m Msg) {
	for q := 0; q < p.n; q++ {
		p.outbox = append(p.outbox, sim.Message{From: p.id, To: sim.ProcID(q), Payload: m})
	}
}

// Send implements sim.Process.
func (p *Proc) Send() []sim.Message {
	out := p.outbox
	p.outbox = nil
	return out
}

// Deliver implements sim.Process.
func (p *Proc) Deliver(m sim.Message, r sim.RandSource) {
	msg, ok := m.Payload.(Msg)
	if !ok {
		return
	}
	if msg.R < p.round || (msg.R == p.round && msg.P < p.phase) {
		return // stale
	}
	if msg.P != PhaseReport && msg.P != PhaseProposal {
		return
	}
	byPhase := p.got[msg.R]
	if byPhase == nil {
		byPhase = make(map[Phase]map[sim.ProcID]Msg, 2)
		p.got[msg.R] = byPhase
	}
	bySender := byPhase[msg.P]
	if bySender == nil {
		bySender = make(map[sim.ProcID]Msg, p.n)
		byPhase[msg.P] = bySender
	}
	if _, dup := bySender[m.From]; dup {
		return
	}
	bySender[m.From] = msg

	// The wait threshold is n-t messages for the current (round, phase);
	// completing one phase may unlock the next from buffered messages.
	for {
		cur := p.got[p.round][p.phase]
		if len(cur) < p.n-p.t {
			return
		}
		if p.phase == PhaseReport {
			p.evalReport(cur)
		} else {
			p.evalProposal(cur, r)
		}
	}
}

// evalReport executes the end of phase 1.
func (p *Proc) evalReport(reports map[sim.ProcID]Msg) {
	var count [2]int
	for _, m := range reports {
		count[m.V]++
	}
	prop := Msg{R: p.round, P: PhaseProposal}
	for v := sim.Bit(0); v <= 1; v++ {
		if 2*count[v] > p.n {
			prop.V, prop.Valued = v, true
		}
	}
	p.phase = PhaseProposal
	p.queueBroadcast(prop)
}

// evalProposal executes the end of phase 2.
func (p *Proc) evalProposal(proposals map[sim.ProcID]Msg, r sim.RandSource) {
	var count [2]int
	for _, m := range proposals {
		if m.Valued {
			count[m.V]++
		}
	}
	switch {
	case count[0] > 0 && count[1] > 0:
		// Impossible under the protocol (two majorities would intersect);
		// reachable only via corruption. Treat as no information.
		p.x = sim.Bit(r.Bit())
	case count[0] >= p.t+1:
		if !p.decided {
			p.out, p.decided = 0, true
		}
		p.x = 0
	case count[1] >= p.t+1:
		if !p.decided {
			p.out, p.decided = 1, true
		}
		p.x = 1
	case count[0] > 0:
		p.x = 0
	case count[1] > 0:
		p.x = 1
	default:
		p.x = sim.Bit(r.Bit())
	}
	delete(p.got, p.round)
	p.round++
	p.phase = PhaseReport
	p.queueBroadcast(Msg{R: p.round, P: PhaseReport, V: p.x, Valued: true})
}

// Reset implements sim.Process. Ben-Or is NOT designed for resetting
// failures: a reset processor simply restarts from round 1 with its input.
// The repository uses this only to demonstrate that reset-tolerance is a
// genuine extra property of the core algorithm, not a freebie.
func (p *Proc) Reset() {
	p.resetCounter++
	p.round = 1
	p.phase = PhaseReport
	p.x = p.input
	p.got = make(map[int]map[Phase]map[sim.ProcID]Msg)
	p.outbox = nil
	p.queueBroadcast(Msg{R: 1, P: PhaseReport, V: p.x, Valued: true})
}

// Snapshot implements sim.Process.
func (p *Proc) Snapshot() string {
	var b strings.Builder
	b.WriteString("r=")
	b.WriteString(strconv.Itoa(p.round))
	b.WriteString(" p=")
	b.WriteString(strconv.Itoa(int(p.phase)))
	b.WriteString(" x=")
	b.WriteByte('0' + byte(p.x))
	b.WriteString(" out=")
	if p.decided {
		b.WriteByte('0' + byte(p.out))
	} else {
		b.WriteByte('_')
	}
	return b.String()
}
