package benor

import (
	"math"
	"math/bits"

	"asyncagree/internal/sim"
)

// Ben-Or's port onto the columnar vote-tally kernel (sim/columnar.go).
// The structure mirrors internal/core/columnar.go — see the long comment
// there for why a word-by-word scan with bit-exact threshold crossings is
// required for byte-identical results. Ben-Or's differences:
//
//   - Records are keyed by (round, phase) packed as round<<2 | phase, the
//     order the staleness rule compares in and the order columns sort in
//     (phase fits in two bits).
//   - Two tally planes per round: reports (values 0/1) and proposals
//     (values 0/1/'?'), with separate n-t wait thresholds.
//   - No resynchronization mode, and no carried-over pending evaluation:
//     the drain loop runs to a fixpoint after every applied message, so at
//     rest the current phase is always strictly below its threshold.

var _ sim.VoteBroadcaster = (*Proc)(nil)
var _ sim.TallyReceiver = (*Proc)(nil)

// SendColumnar implements sim.VoteBroadcaster. A '?' proposal publishes
// sim.ValNeutral; reports from honest senders are always valued. Pending
// (round, phase) keys strictly ascend, satisfying the publish contract.
func (p *Proc) SendColumnar(pub sim.VotePublisher) {
	for i := range p.pending {
		m := &p.pending[i]
		val := uint8(sim.ValNeutral)
		if m.Valued {
			val = uint8(m.V)
		}
		pub.Publish(m.R, uint8(m.P), val)
	}
	p.pending = p.pending[:0]
}

// remMask returns the still-undelivered sender mask of a packed-key column
// given the in-word frontier (see core/columnar.go).
func remMask(fb, fk, key int) uint64 {
	if key <= fk {
		return sim.MaskFrom(fb + 1)
	}
	return sim.MaskFrom(fb)
}

// packedKey orders records the way delivery observes them: by round, then
// phase — exactly the staleness comparison in Deliver.
func packedKey(round int, phase Phase) int { return round<<2 | int(phase) }

// DeliverTally implements sim.TallyReceiver.
func (p *Proc) DeliverTally(t *sim.WindowTally, r sim.RandSource) {
	cols := t.Columns()
	if len(cols) == 0 {
		return
	}
	words := t.Words()
	for w := 0; w < words; w++ {
		allow := t.AllowWord(w)
		if allow == 0 {
			continue
		}
		fb, fk := 0, math.MinInt
		for !p.scanWord(cols, w, allow, &fb, &fk, r) {
		}
	}
}

// scanWord processes (part of) one sender word: it either finds the next
// phase-completing message — applies the exact delivery prefix, drains
// evaluations, returns false so the caller re-enters with the updated
// (round, phase) — or proves the current phase cannot complete in this
// word, bulk-applies the remainder, and returns true.
func (p *Proc) scanWord(cols []sim.VoteColumn, w int, allow uint64, fb, fk *int, r sim.RandSource) bool {
	needed := p.n - p.t
	var voted uint64
	if cur := p.got[p.round]; cur != nil {
		if p.phase == PhaseReport {
			needed -= cur.nReports
			voted = cur.reportedWord(w)
		} else {
			needed -= cur.nProps
			voted = cur.proppedWord(w)
		}
	}
	// needed >= 1 always: drain runs to a fixpoint after every applied
	// message, so a complete current phase never rests.
	curKey := packedKey(p.round, p.phase)
	var newAll uint64
	remCur := remMask(*fb, *fk, curKey)
	for ci := range cols {
		c := &cols[ci]
		if c.Round == p.round && Phase(c.Class) == p.phase {
			newAll |= c.Word(w) & allow & remCur &^ voted
		}
	}
	if bits.OnesCount64(newAll) < needed {
		// The current phase cannot complete in this word: apply every
		// remaining non-stale record in bulk (tallying is commutative under
		// the dedup mask, and no evaluation fires in between).
		for ci := range cols {
			c := &cols[ci]
			k := packedKey(c.Round, Phase(c.Class))
			if k < curKey {
				continue // stale: dropped exactly like the per-message path
			}
			p.applyBits(c, w, c.Word(w)&allow&remMask(*fb, *fk, k))
		}
		return true
	}
	// The needed-th new current-phase message (ascending sender order)
	// completes the phase. Deliver everything strictly before it plus the
	// crossing message itself: current-key bits <= b, higher-key bits < b
	// (the crossing sender's higher-key records follow it).
	b := sim.NthSetBit(newAll, needed)
	through := ^sim.MaskFrom(b + 1)
	below := ^sim.MaskFrom(b)
	for ci := range cols {
		c := &cols[ci]
		k := packedKey(c.Round, Phase(c.Class))
		if k < curKey {
			continue
		}
		cut := below
		if k == curKey {
			cut = through
		}
		p.applyBits(c, w, c.Word(w)&allow&remMask(*fb, *fk, k)&cut)
	}
	*fb, *fk = b, curKey
	p.drain(r)
	return false
}

// applyBits tallies a whole word's worth of one column's records, deduping
// against already-recorded senders. Lazy tally creation matches the legacy
// path (a duplicate presupposes an existing tally). Honest publishers only
// emit report values 0/1 and proposal values 0/1/ValNeutral, so Val is a
// valid plane index.
func (p *Proc) applyBits(c *sim.VoteColumn, w int, mask uint64) {
	if mask == 0 {
		return
	}
	rt := p.got[c.Round]
	if rt == nil {
		rt = p.takeRound()
		p.got[c.Round] = rt
	}
	if Phase(c.Class) == PhaseReport {
		mask &^= rt.reportedWord(w)
		if mask == 0 {
			return
		}
		rt.reports[c.Val][w] |= mask
		n := bits.OnesCount64(mask)
		rt.nReports += n
		rt.repCount[c.Val] += n
	} else {
		mask &^= rt.proppedWord(w)
		if mask == 0 {
			return
		}
		rt.props[c.Val][w] |= mask
		n := bits.OnesCount64(mask)
		rt.nProps += n
		if c.Val < quesMark {
			rt.propCount[c.Val] += n
		}
	}
}
