package benor

import (
	"testing"
	"testing/quick"

	"asyncagree/internal/adversary"
	"asyncagree/internal/sim"
)

func newSystem(t *testing.T, n, tt int, inputs []sim.Bit, seed uint64) *sim.System {
	t.Helper()
	s, err := sim.New(sim.Config{
		N: n, T: tt, Seed: seed, Inputs: inputs,
		NewProcess: NewFactory(n, tt),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func unanimous(n int, v sim.Bit) []sim.Bit {
	in := make([]sim.Bit, n)
	for i := range in {
		in[i] = v
	}
	return in
}

func split(n int) []sim.Bit {
	in := make([]sim.Bit, n)
	for i := range in {
		in[i] = sim.Bit(i % 2)
	}
	return in
}

func classifyReport(m sim.Message) adversary.VoteInfo {
	if _, _, v, ok := ExtractVote(m); ok {
		return adversary.VoteInfo{HasValue: true, Value: v}
	}
	return adversary.VoteInfo{}
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		n, t    int
		wantErr bool
	}{
		{4, 1, false},
		{5, 2, false},
		{4, 2, true},  // 2t >= n
		{4, -1, true}, // negative
		{1, 0, false},
	}
	for _, c := range cases {
		_, err := New(0, c.n, c.t, 0)
		if (err != nil) != c.wantErr {
			t.Errorf("New(n=%d, t=%d) err = %v, wantErr %v", c.n, c.t, err, c.wantErr)
		}
	}
}

func TestUnanimousDecidesRoundOne(t *testing.T) {
	for _, v := range []sim.Bit{0, 1} {
		s := newSystem(t, 9, 2, unanimous(9, v), 4)
		res, err := s.RunWindows(adversary.FullDelivery{}, 10)
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllDecided || res.Decision != v || !res.Agreement || !res.Validity {
			t.Fatalf("v=%d: %+v", v, res)
		}
		// Round 1 = two windows (report + proposal).
		if res.FirstDecision > 1 {
			t.Fatalf("first decision in window %d, want <= 1", res.FirstDecision)
		}
	}
}

func TestSplitTerminatesUnderFairness(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		s := newSystem(t, 9, 2, split(9), seed)
		res, err := s.RunWindows(adversary.FullDelivery{}, 10000)
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllDecided || !res.Agreement || !res.Validity {
			t.Fatalf("seed %d: %+v", seed, res)
		}
	}
}

func TestAgreementUnderCrashesProperty(t *testing.T) {
	// Crash up to t processors at adversarial times; agreement and validity
	// must always hold.
	check := func(seed uint64, pattern uint8, crashWin uint8, victim uint8) bool {
		const n, tt = 9, 2
		inputs := make([]sim.Bit, n)
		for i := range inputs {
			inputs[i] = sim.Bit((pattern >> (i % 8)) & 1)
		}
		s, err := sim.New(sim.Config{
			N: n, T: tt, Seed: seed, Inputs: inputs, NewProcess: NewFactory(n, tt),
		})
		if err != nil {
			return false
		}
		v1 := sim.ProcID(int(victim) % n)
		v2 := sim.ProcID(int(victim/9) % n)
		crashes := map[int][]sim.ProcID{int(crashWin) % 6: {v1}}
		if v2 != v1 {
			crashes[int(crashWin)%6+2] = []sim.ProcID{v2}
		}
		adv := &adversary.CrashSchedule{Inner: adversary.FullDelivery{}, CrashAt: crashes}
		res, err := s.RunWindows(adv, 4000)
		if err != nil {
			return false
		}
		return res.Agreement && res.Validity && res.AllDecided
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestStepModeLockstep(t *testing.T) {
	// Ben-Or must also run under the raw step scheduler (the classical
	// asynchronous crash model, not windows).
	s := newSystem(t, 5, 1, unanimous(5, 1), 2)
	res, err := s.RunSteps(adversary.NewLockstep(), 100000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDecided || res.Decision != 1 || !res.Agreement || !res.Validity {
		t.Fatalf("%+v", res)
	}
}

func TestMessageChainGrowsWithRounds(t *testing.T) {
	// Fully communicative: every phase builds one more link of the message
	// chain, so chain depth ~ 2 windows per round.
	s := newSystem(t, 9, 2, split(9), 3)
	res, err := s.RunWindows(adversary.FullDelivery{}, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxChainDepth < res.Windows {
		t.Fatalf("chain depth %d < windows %d: chains not linking", res.MaxChainDepth, res.Windows)
	}
}

func TestSplitVoteAdversaryStallsBenOr(t *testing.T) {
	// Theorem 17's mechanism: keep every report count at or below n/2 so no
	// processor ever forms a valued proposal, forcing fresh coin flips each
	// round. Deterministic given seeds; assert on the mean.
	const n, tt, trials = 13, 3, 10
	total := 0
	for seed := uint64(1); seed <= trials; seed++ {
		s := newSystem(t, n, tt, split(n), seed)
		adv := &adversary.SplitVote{Classify: classifyReport, Cap: n / 2}
		res, err := s.RunWindows(adv, 100000)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Agreement || !res.Validity {
			t.Fatalf("seed %d: safety violated: %+v", seed, res)
		}
		if res.FirstDecision < 0 {
			t.Fatalf("seed %d: no decision in 100000 windows", seed)
		}
		total += res.FirstDecision
	}
	if mean := total / trials; mean < 10 {
		t.Fatalf("mean stall %d windows, want >= 10", mean)
	}
}

func TestProposalConflictImpossibleUnderHonesty(t *testing.T) {
	// Observe all proposals: per round at most one value may be proposed.
	s := newSystem(t, 9, 2, split(9), 8)
	valued := map[int]map[sim.Bit]bool{}
	observed := 0
	s.OnEvent = func(ev sim.Event) {
		if ev.Kind != sim.EvSend {
			return
		}
		// The protocol sends pooled *Msg boxes; read them at emit time,
		// while the box is still live.
		msg, ok := ev.Msg.Payload.(*Msg)
		if !ok {
			return
		}
		observed++
		if msg.P == PhaseProposal && msg.Valued {
			if valued[msg.R] == nil {
				valued[msg.R] = map[sim.Bit]bool{}
			}
			valued[msg.R][msg.V] = true
		}
	}
	if _, err := s.RunWindows(adversary.NewRandomWindows(5, 0, 0), 2000); err != nil {
		t.Fatal(err)
	}
	if observed == 0 || len(valued) == 0 {
		t.Fatal("observed no proposal traffic; payload decoding is broken")
	}
	for r, vals := range valued {
		if vals[0] && vals[1] {
			t.Fatalf("round %d: both 0 and 1 proposed", r)
		}
	}
}

func TestExtractVote(t *testing.T) {
	r, ph, v, ok := ExtractVote(sim.Message{Payload: Msg{R: 4, P: PhaseReport, V: 1, Valued: true}})
	if !ok || r != 4 || ph != PhaseReport || v != 1 {
		t.Fatalf("got (%d,%v,%d,%v)", r, ph, v, ok)
	}
	if _, _, _, ok := ExtractVote(sim.Message{Payload: Msg{R: 4, P: PhaseProposal, Valued: false}}); ok {
		t.Fatal("'?' proposal classified as valued")
	}
	if _, _, _, ok := ExtractVote(sim.Message{Payload: 42}); ok {
		t.Fatal("foreign payload classified as vote")
	}
}

func TestSnapshot(t *testing.T) {
	p, err := New(0, 9, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p.Snapshot(), "r=1 p=1 x=1 out=_"; got != want {
		t.Fatalf("Snapshot = %q, want %q", got, want)
	}
}

func TestResetRestartsProtocol(t *testing.T) {
	p, err := New(0, 9, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	p.Send() // drain initial broadcast
	p.Reset()
	msgs := p.Send()
	if len(msgs) != 9 {
		t.Fatalf("after reset, re-broadcast %d messages, want 9", len(msgs))
	}
	if r, ph := p.Round(); r != 1 || ph != PhaseReport {
		t.Fatalf("after reset round=%d phase=%d", r, ph)
	}
}
