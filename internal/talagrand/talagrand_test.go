package talagrand

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"asyncagree/internal/rng"
)

func TestUniformBitsMeasure(t *testing.T) {
	s := UniformBits(10)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	all, err := s.Measure(PredicateSet(func(Point) bool { return true }))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(all-1) > 1e-12 {
		t.Fatalf("P[everything] = %v", all)
	}
	half, err := s.Measure(PredicateSet(func(p Point) bool { return p[0] == 0 }))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(half-0.5) > 1e-12 {
		t.Fatalf("P[x0=0] = %v", half)
	}
}

func TestBiasedBitsMeasure(t *testing.T) {
	s := BiasedBits(8, 0.25)
	p, err := s.Measure(PredicateSet(func(pt Point) bool { return pt[3] == 1 }))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.25) > 1e-12 {
		t.Fatalf("P[x3=1] = %v, want 0.25", p)
	}
}

func TestMeasureTooLarge(t *testing.T) {
	s := UniformBits(40)
	_, err := s.Measure(PredicateSet(func(Point) bool { return true }))
	if !errors.Is(err, ErrSpaceTooLarge) {
		t.Fatalf("err = %v, want ErrSpaceTooLarge", err)
	}
}

func TestMeasureMCMatchesExact(t *testing.T) {
	s := UniformBits(12)
	set := HammingWeightAtMost(4)
	exact, err := s.Measure(set)
	if err != nil {
		t.Fatal(err)
	}
	mc := s.MeasureMC(set, 200000, rng.New(1))
	if math.Abs(exact-mc) > 0.01 {
		t.Fatalf("exact %v vs MC %v", exact, mc)
	}
}

func TestHamming(t *testing.T) {
	cases := []struct {
		x, y Point
		want int
	}{
		{Point{0, 0, 0}, Point{0, 0, 0}, 0},
		{Point{0, 1, 0}, Point{1, 1, 1}, 2},
		{Point{1, 1}, Point{0, 0}, 2},
	}
	for _, c := range cases {
		if got := Hamming(c.x, c.y); got != c.want {
			t.Errorf("Hamming(%v, %v) = %d, want %d", c.x, c.y, got, c.want)
		}
	}
}

func TestHammingPanicsOnDimMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Hamming(Point{0}, Point{0, 1})
}

func TestExplicitSetBasics(t *testing.T) {
	e := NewExplicitSet(Point{0, 0, 1}, Point{1, 1, 1}, Point{0, 0, 1})
	if e.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (dedup)", e.Len())
	}
	if !e.Contains(Point{0, 0, 1}) || e.Contains(Point{0, 1, 1}) {
		t.Fatal("Contains wrong")
	}
	if d := e.Dist(Point{0, 1, 1}); d != 1 {
		t.Fatalf("Dist = %d, want 1", d)
	}
	ball := e.Ball(1)
	if !ball.Contains(Point{0, 1, 1}) || ball.Contains(Point{1, 0, 0}) {
		t.Fatal("Ball wrong")
	}
}

func TestSetDistance(t *testing.T) {
	a := NewExplicitSet(Point{0, 0, 0, 0})
	b := NewExplicitSet(Point{1, 1, 1, 1}, Point{0, 0, 1, 1})
	if d := SetDistance(a, b); d != 2 {
		t.Fatalf("SetDistance = %d, want 2", d)
	}
	if d := SetDistance(a, NewExplicitSet()); d != -1 {
		t.Fatalf("SetDistance to empty = %d, want -1", d)
	}
}

func TestLemma9ExactNeverViolated(t *testing.T) {
	// Exhaustive check on weight half-spaces: for all n <= 14, all weight
	// cutoffs k and distances d, the inequality holds exactly. The ball of
	// a weight half-space is again a weight half-space, so the exact ball
	// is available in closed form.
	for n := 2; n <= 14; n += 3 {
		s := UniformBits(n)
		for k := 0; k <= n; k++ {
			for d := 0; d <= n; d++ {
				a := HammingWeightAtMost(k)
				ball := WeightBallAtMost(k, d)
				lhs, rhs, err := CheckLemma9(s, a, ball, float64(d))
				if err != nil {
					t.Fatal(err)
				}
				if lhs > rhs+1e-12 {
					t.Fatalf("Lemma 9 violated: n=%d k=%d d=%d lhs=%v rhs=%v", n, k, d, lhs, rhs)
				}
			}
		}
	}
}

func TestLemma9RandomExplicitSets(t *testing.T) {
	// Property: Lemma 9 holds for random explicit sets in {0,1}^10.
	r := rng.New(42)
	s := UniformBits(10)
	check := func(sizeRaw uint8, dRaw uint8) bool {
		size := int(sizeRaw)%32 + 1
		d := int(dRaw) % 11
		e := NewExplicitSet()
		for i := 0; i < size; i++ {
			e.Add(Point(s.Sample(r)))
		}
		lhs, rhs, err := CheckLemma9(s, e, e.Ball(d), float64(d))
		if err != nil {
			return false
		}
		return lhs <= rhs+1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestLemma9MC(t *testing.T) {
	// Large-space Monte Carlo variant: weight half-spaces in {0,1}^64 with
	// a generous statistical margin.
	s := UniformBits(64)
	a := HammingWeightAtMost(24)
	d := 16
	lhs, rhs := CheckLemma9MC(s, a, WeightBallAtMost(24, d), float64(d), 50000, rng.New(7))
	if lhs > rhs+0.02 {
		t.Fatalf("MC Lemma 9 violated: lhs=%v rhs=%v", lhs, rhs)
	}
}

func TestMix(t *testing.T) {
	hi := BiasedBits(4, 0.9)
	lo := BiasedBits(4, 0.1)
	m, err := Mix(hi, lo, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Coords[0].Probs[1] != 0.9 || m.Coords[1].Probs[1] != 0.9 {
		t.Fatal("prefix coords not from hi")
	}
	if m.Coords[2].Probs[1] != 0.1 || m.Coords[3].Probs[1] != 0.1 {
		t.Fatal("suffix coords not from lo")
	}
	if _, err := Mix(hi, lo, 5); err == nil {
		t.Fatal("out-of-range j accepted")
	}
	if _, err := Mix(hi, BiasedBits(3, 0.1), 1); err == nil {
		t.Fatal("dim mismatch accepted")
	}
}

func TestFindJStarPlantedSets(t *testing.T) {
	// Plant the Lemma 14 situation in {0,1}^12: z0 = low-weight points,
	// z1 = high-weight points (Delta > t), hi biased to 1 (avoids z0),
	// lo biased to 0 (avoids z1). FindJStar must locate a mix avoiding
	// both.
	const n = 12
	z0 := HammingWeightAtMost(2)
	z1 := HammingWeightAtLeast(10)
	hi := BiasedBits(n, 0.9)
	lo := BiasedBits(n, 0.1)
	eta := 0.05
	res, err := FindJStar(hi, lo, z0, z1, eta)
	if err != nil {
		t.Fatal(err)
	}
	if res.P0AtJStar > eta {
		t.Fatalf("P[z0] at j* = %v > eta %v", res.P0AtJStar, eta)
	}
	if res.P1AtJStar > eta {
		t.Fatalf("P[z1] at j* = %v > eta %v", res.P1AtJStar, eta)
	}
}

func TestFindJStarNoCrossover(t *testing.T) {
	// If even pi_n puts large mass on z0, there is no j*.
	const n = 8
	z0 := HammingWeightAtMost(7) // almost everything
	z1 := HammingWeightAtLeast(8)
	hi := BiasedBits(n, 0.5)
	lo := BiasedBits(n, 0.5)
	_, err := FindJStar(hi, lo, z0, z1, 0.001)
	if !errors.Is(err, ErrNoJStar) {
		t.Fatalf("err = %v, want ErrNoJStar", err)
	}
}

func TestResampleCoupling(t *testing.T) {
	// Equation (1): P_{pi_j}[B(A,1)] >= P_{pi_{j-1}}[A] for every j and a
	// collection of explicit sets.
	const n = 8
	hi := BiasedBits(n, 0.8)
	lo := BiasedBits(n, 0.2)
	r := rng.New(3)
	s := UniformBits(n)
	for trial := 0; trial < 20; trial++ {
		e := NewExplicitSet()
		for i := 0; i < 10; i++ {
			e.Add(Point(s.Sample(r)))
		}
		for j := 1; j <= n; j++ {
			ball, prev, err := ResampleCoupling(hi, lo, j, e)
			if err != nil {
				t.Fatal(err)
			}
			if ball < prev-1e-12 {
				t.Fatalf("coupling violated at j=%d: P[B(A,1)]=%v < P[A]=%v", j, ball, prev)
			}
		}
	}
}

func TestEtaTau(t *testing.T) {
	n, tt := 100, 20
	tau := Tau(n, tt)
	eta := Eta(n, tt)
	if tau >= eta {
		t.Fatalf("tau %v should be < eta %v", tau, eta)
	}
	if want := math.Exp(-400.0 / 800.0); math.Abs(tau-want) > 1e-12 {
		t.Fatalf("Tau = %v, want %v", tau, want)
	}
}

func TestValidateCatchesBadSpaces(t *testing.T) {
	bad := Space{Coords: []Coordinate{{Probs: []float64{0.5, 0.4}}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("non-normalized space accepted")
	}
	empty := Space{Coords: []Coordinate{{}}}
	if err := empty.Validate(); err == nil {
		t.Fatal("empty-support space accepted")
	}
	neg := Space{Coords: []Coordinate{{Probs: []float64{1.5, -0.5}}}}
	if err := neg.Validate(); err == nil {
		t.Fatal("negative-probability space accepted")
	}
}

func TestSampleRespectsDistribution(t *testing.T) {
	s := BiasedBits(1, 0.3)
	r := rng.New(11)
	ones := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if s.Sample(r)[0] == 1 {
			ones++
		}
	}
	frac := float64(ones) / trials
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("sampled frequency %v, want 0.3", frac)
	}
}
