// Package talagrand implements the probabilistic machinery of Section 4.1 of
// the paper: finite product probability spaces, Hamming distance between
// points and sets, the consequence of Talagrand's concentration inequality
// stated as Lemma 9,
//
//	P[A] * (1 - P[B(A, d)]) <= exp(-d^2 / (4n)),
//
// and the product-distribution interpolation argument of Lemma 14 (finding
// the crossover index j* between two product distributions so that the mixed
// distribution puts small weight on two Hamming-separated sets
// simultaneously).
//
// Measures can be computed exactly (full enumeration, small spaces) or by
// Monte Carlo sampling (large spaces); experiments E4 and E6 exercise both.
package talagrand

import (
	"errors"
	"fmt"
	"math"

	"asyncagree/internal/rng"
)

// ErrSpaceTooLarge is returned by exact measurement of spaces whose support
// product exceeds the enumeration limit.
var ErrSpaceTooLarge = errors.New("talagrand: space too large for exact enumeration")

// maxEnum bounds exact enumeration (16M points).
const maxEnum = 1 << 24

// Coordinate is one factor Omega_i of the product space: a finite
// distribution over values 0..len(Probs)-1.
type Coordinate struct {
	// Probs[v] is the probability of value v. Must sum to 1.
	Probs []float64
}

// Space is a product probability space Omega_1 x ... x Omega_n.
type Space struct {
	Coords []Coordinate
}

// Point is an element of the product space: Point[i] in [0, len(Coords[i].Probs)).
type Point []int

// Set is a measurable subset of the space.
type Set interface {
	Contains(Point) bool
}

// PredicateSet adapts a predicate to a Set.
type PredicateSet func(Point) bool

// Contains implements Set.
func (f PredicateSet) Contains(p Point) bool { return f(p) }

// UniformBits returns the space {0,1}^n with the uniform product measure —
// the space of n independent fair local coins.
func UniformBits(n int) Space {
	coords := make([]Coordinate, n)
	for i := range coords {
		coords[i] = Coordinate{Probs: []float64{0.5, 0.5}}
	}
	return Space{Coords: coords}
}

// BiasedBits returns {0,1}^n where each coordinate is 1 with probability p.
func BiasedBits(n int, p float64) Space {
	coords := make([]Coordinate, n)
	for i := range coords {
		coords[i] = Coordinate{Probs: []float64{1 - p, p}}
	}
	return Space{Coords: coords}
}

// Dim returns the number of coordinates.
func (s Space) Dim() int { return len(s.Coords) }

// Validate checks that every coordinate is a probability distribution.
func (s Space) Validate() error {
	for i, c := range s.Coords {
		if len(c.Probs) == 0 {
			return fmt.Errorf("talagrand: coordinate %d has empty support", i)
		}
		sum := 0.0
		for v, p := range c.Probs {
			if p < 0 || p > 1 {
				return fmt.Errorf("talagrand: coordinate %d value %d has probability %v", i, v, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			return fmt.Errorf("talagrand: coordinate %d sums to %v", i, sum)
		}
	}
	return nil
}

// supportSize returns the number of points in the support product, capped at
// maxEnum+1.
func (s Space) supportSize() int {
	size := 1
	for _, c := range s.Coords {
		size *= len(c.Probs)
		if size > maxEnum {
			return maxEnum + 1
		}
	}
	return size
}

// Measure computes P[A] exactly by enumerating the support. It returns
// ErrSpaceTooLarge for spaces beyond the enumeration limit.
func (s Space) Measure(a Set) (float64, error) {
	if s.supportSize() > maxEnum {
		return 0, ErrSpaceTooLarge
	}
	total := 0.0
	s.enumerate(func(p Point, prob float64) {
		if a.Contains(p) {
			total += prob
		}
	})
	return total, nil
}

// enumerate visits every support point with its probability.
func (s Space) enumerate(visit func(Point, float64)) {
	n := s.Dim()
	point := make(Point, n)
	var rec func(i int, prob float64)
	rec = func(i int, prob float64) {
		if prob == 0 {
			return
		}
		if i == n {
			visit(point, prob)
			return
		}
		for v, pv := range s.Coords[i].Probs {
			point[i] = v
			rec(i+1, prob*pv)
		}
	}
	rec(0, 1)
}

// Sample draws one point.
func (s Space) Sample(r *rng.Source) Point {
	p := make(Point, s.Dim())
	for i, c := range s.Coords {
		u := r.Float64()
		acc := 0.0
		p[i] = len(c.Probs) - 1
		for v, pv := range c.Probs {
			acc += pv
			if u < acc {
				p[i] = v
				break
			}
		}
	}
	return p
}

// MeasureMC estimates P[A] with `samples` Monte Carlo draws.
func (s Space) MeasureMC(a Set, samples int, r *rng.Source) float64 {
	hit := 0
	for i := 0; i < samples; i++ {
		if a.Contains(s.Sample(r)) {
			hit++
		}
	}
	return float64(hit) / float64(samples)
}

// Hamming returns the Hamming distance between x and y (Definition 6's
// underlying metric). It panics if lengths differ.
func Hamming(x, y Point) int {
	if len(x) != len(y) {
		panic(fmt.Sprintf("talagrand: Hamming on points of different dimension (%d vs %d)", len(x), len(y)))
	}
	d := 0
	for i := range x {
		if x[i] != y[i] {
			d++
		}
	}
	return d
}

// Bound returns the right-hand side of Lemma 9: exp(-d^2/(4n)).
func Bound(n int, d float64) float64 {
	return math.Exp(-d * d / (4 * float64(n)))
}

// CheckLemma9 computes both sides of Lemma 9 for set a at distance d:
// lhs = P[a] * (1 - P[Ball(a, d)]), rhs = exp(-d^2/(4n)). The ball is
// supplied by the caller (see ExplicitSet.Ball).
func CheckLemma9(s Space, a Set, ball Set, d float64) (lhs, rhs float64, err error) {
	pa, err := s.Measure(a)
	if err != nil {
		return 0, 0, err
	}
	pb, err := s.Measure(ball)
	if err != nil {
		return 0, 0, err
	}
	return pa * (1 - pb), Bound(s.Dim(), d), nil
}

// CheckLemma9MC is the Monte Carlo variant for large spaces.
func CheckLemma9MC(s Space, a Set, ball Set, d float64, samples int, r *rng.Source) (lhs, rhs float64) {
	pa := s.MeasureMC(a, samples, r)
	pb := s.MeasureMC(ball, samples, r)
	return pa * (1 - pb), Bound(s.Dim(), d)
}
