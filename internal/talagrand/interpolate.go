package talagrand

import (
	"errors"
	"fmt"
	"math"
)

// This file implements the interpolation argument of Lemma 14 (and its
// Section 5 twin, Lemma 21): given a product distribution p0 that puts
// weight <= tau on a set Z1 and a product distribution pn that puts weight
// <= tau on a set Z0, with Delta(Z0, Z1) > t, there is a mixed distribution
// pi_{j*} that puts weight <= eta := exp(-(t-1)^2/(8n)) on *both* sets.
//
// Mix(j) takes the first j coordinates from pn and the rest from p0 —
// matching the paper's "The first j coordinates of pi_j have the same
// distributions as in pi_n, while the remaining coordinates have the same
// distribution as in pi_0."

// Mix returns the interpolated space pi_j: coordinates [0, j) from hi (the
// paper's pi_n) and [j, n) from lo (the paper's pi_0).
func Mix(hi, lo Space, j int) (Space, error) {
	n := hi.Dim()
	if lo.Dim() != n {
		return Space{}, fmt.Errorf("talagrand: Mix of spaces with dims %d and %d", n, lo.Dim())
	}
	if j < 0 || j > n {
		return Space{}, fmt.Errorf("talagrand: Mix index %d out of [0, %d]", j, n)
	}
	coords := make([]Coordinate, n)
	copy(coords[:j], hi.Coords[:j])
	copy(coords[j:], lo.Coords[j:])
	return Space{Coords: coords}, nil
}

// Eta returns the paper's eta threshold exp(-(t-1)^2 / (8n)).
func Eta(n, t int) float64 {
	return math.Exp(-float64(t-1) * float64(t-1) / (8 * float64(n)))
}

// Tau returns the paper's tau threshold exp(-t^2 / (8n)).
func Tau(n, t int) float64 {
	return math.Exp(-float64(t) * float64(t) / (8 * float64(n)))
}

// InterpolationResult reports the outcome of FindJStar.
type InterpolationResult struct {
	// JStar is the minimal j such that pi_j puts probability <= eta on z0.
	JStar int
	// P0AtJStar and P1AtJStar are the measures of z0 and z1 under pi_{j*}.
	P0AtJStar, P1AtJStar float64
	// Eta is the threshold used.
	Eta float64
}

// ErrNoJStar indicates the premise failed (pi_n itself puts more than eta on
// z0), which Lemma 14 rules out when tau <= eta.
var ErrNoJStar = errors.New("talagrand: no crossover index exists")

// FindJStar searches for the paper's j*: the minimal j such that the mix
// pi_j puts probability <= eta on z0, then evaluates both sets under
// pi_{j*}. Per Lemma 14, when Delta(z0, z1) > t, P[z0] <= tau under hi and
// P[z1] <= tau under lo, the result satisfies P0AtJStar <= eta and
// P1AtJStar <= eta. Measures are exact; use it on enumerable spaces.
func FindJStar(hi, lo Space, z0, z1 Set, eta float64) (InterpolationResult, error) {
	n := hi.Dim()
	for j := 0; j <= n; j++ {
		pij, err := Mix(hi, lo, j)
		if err != nil {
			return InterpolationResult{}, err
		}
		p0, err := pij.Measure(z0)
		if err != nil {
			return InterpolationResult{}, err
		}
		if p0 > eta {
			continue
		}
		p1, err := pij.Measure(z1)
		if err != nil {
			return InterpolationResult{}, err
		}
		return InterpolationResult{JStar: j, P0AtJStar: p0, P1AtJStar: p1, Eta: eta}, nil
	}
	return InterpolationResult{}, ErrNoJStar
}

// ResampleCoupling verifies the single-coordinate coupling inequality used
// inside Lemma 14 (equation (1) of the paper): for adjacent mixes pi_{j-1}
// and pi_j, P_{pi_j}[B(A, 1)] >= P_{pi_{j-1}}[A], because resampling the one
// differing coordinate moves a point by Hamming distance at most 1. Returns
// both probabilities; exact measurement.
func ResampleCoupling(hi, lo Space, j int, a *ExplicitSet) (pjBall, pjm1A float64, err error) {
	if j < 1 || j > hi.Dim() {
		return 0, 0, fmt.Errorf("talagrand: coupling index %d out of [1, %d]", j, hi.Dim())
	}
	pj, err := Mix(hi, lo, j)
	if err != nil {
		return 0, 0, err
	}
	pjm1, err := Mix(hi, lo, j-1)
	if err != nil {
		return 0, 0, err
	}
	pjBall, err = pj.Measure(a.Ball(1))
	if err != nil {
		return 0, 0, err
	}
	pjm1A, err = pjm1.Measure(a)
	if err != nil {
		return 0, 0, err
	}
	return pjBall, pjm1A, nil
}
