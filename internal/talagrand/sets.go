package talagrand

import (
	"strconv"
	"strings"
)

// ExplicitSet is a finite set of points with Hamming-distance queries — the
// form of set used for the configuration sets Z^k_0, Z^k_1 in the proofs
// (Definitions 6-8 of the paper).
type ExplicitSet struct {
	points []Point
	index  map[string]bool
}

var _ Set = (*ExplicitSet)(nil)

// NewExplicitSet builds a set from points (duplicates are collapsed). The
// points are copied.
func NewExplicitSet(points ...Point) *ExplicitSet {
	e := &ExplicitSet{index: make(map[string]bool, len(points))}
	for _, p := range points {
		e.Add(p)
	}
	return e
}

func key(p Point) string {
	var b strings.Builder
	for _, v := range p {
		b.WriteString(strconv.Itoa(v))
		b.WriteByte(',')
	}
	return b.String()
}

// Add inserts a copy of p.
func (e *ExplicitSet) Add(p Point) {
	k := key(p)
	if e.index[k] {
		return
	}
	e.index[k] = true
	e.points = append(e.points, append(Point(nil), p...))
}

// AddSet inserts every point of o in o's insertion order — the merge
// operation of the streaming decision-set reducers. Deterministic: the
// result depends only on the two sets' contents and order, and membership
// queries are order-independent anyway.
func (e *ExplicitSet) AddSet(o *ExplicitSet) {
	for _, p := range o.points {
		e.Add(p)
	}
}

// Len returns the number of points.
func (e *ExplicitSet) Len() int { return len(e.points) }

// Points returns the points (shared backing; treat as read-only).
func (e *ExplicitSet) Points() []Point { return e.points }

// Contains implements Set.
func (e *ExplicitSet) Contains(p Point) bool { return e.index[key(p)] }

// Dist returns the Hamming distance from x to the set (Definition 6),
// or -1 for an empty set.
func (e *ExplicitSet) Dist(x Point) int {
	if len(e.points) == 0 {
		return -1
	}
	best := len(x) + 1
	for _, p := range e.points {
		if d := Hamming(x, p); d < best {
			best = d
			if best == 0 {
				break
			}
		}
	}
	return best
}

// Ball returns B(A, d) = {x : Dist(x, A) <= d} as a predicate set
// (Definition 8).
func (e *ExplicitSet) Ball(d int) Set {
	return PredicateSet(func(x Point) bool {
		dist := e.Dist(x)
		return dist >= 0 && dist <= d
	})
}

// SetDistance returns Delta(A, B), the minimum Hamming distance between a
// point of a and a point of b (Definition 7), or -1 if either set is empty.
func SetDistance(a, b *ExplicitSet) int {
	if a.Len() == 0 || b.Len() == 0 {
		return -1
	}
	best := -1
	for _, p := range a.points {
		if d := b.Dist(p); best < 0 || d < best {
			best = d
			if best == 0 {
				break
			}
		}
	}
	return best
}

// HammingWeightAtMost returns the set {x in {0,1}^n : sum(x) <= k} — the
// low-weight half-space used to plant far-apart set pairs in experiments.
func HammingWeightAtMost(k int) Set {
	return PredicateSet(func(p Point) bool {
		w := 0
		for _, v := range p {
			w += v
		}
		return w <= k
	})
}

// HammingWeightAtLeast returns {x in {0,1}^n : sum(x) >= k}.
func HammingWeightAtLeast(k int) Set {
	return PredicateSet(func(p Point) bool {
		w := 0
		for _, v := range p {
			w += v
		}
		return w >= k
	})
}

// WeightBallAtMost returns B(HammingWeightAtMost(k), d) for bit spaces: the
// ball of a weight half-space is again a weight half-space, {x : sum(x) <=
// k+d}, which gives exact Lemma 9 checks without point enumeration.
func WeightBallAtMost(k, d int) Set {
	return HammingWeightAtMost(k + d)
}

// WeightBallAtLeast returns B(HammingWeightAtLeast(k), d) = {sum >= k-d}.
func WeightBallAtLeast(k, d int) Set {
	return HammingWeightAtLeast(k - d)
}
