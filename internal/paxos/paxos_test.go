package paxos

import (
	"testing"
	"testing/quick"

	"asyncagree/internal/adversary"
	"asyncagree/internal/sim"
)

func newSystem(t *testing.T, n, tt int, proposers []sim.ProcID, inputs []sim.Bit, seed uint64) *sim.System {
	t.Helper()
	s, err := sim.New(sim.Config{
		N: n, T: tt, Seed: seed, Inputs: inputs,
		NewProcess: NewFactory(Params{N: n, Proposers: proposers}),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func inputs(n int, pattern string) []sim.Bit {
	in := make([]sim.Bit, n)
	for i := range in {
		switch pattern {
		case "ones":
			in[i] = 1
		case "split":
			in[i] = sim.Bit(i % 2)
		}
	}
	return in
}

func TestSoloProposerDecides(t *testing.T) {
	for _, pattern := range []string{"ones", "split", ""} {
		s := newSystem(t, 5, 2, []sim.ProcID{0}, inputs(5, pattern), 1)
		res, err := s.RunSteps(adversary.NewLockstep(), 10000)
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllDecided || !res.Agreement || !res.Validity {
			t.Fatalf("pattern %q: %+v", pattern, res)
		}
		// The solo proposer's own input must win.
		if res.Decision != s.Input(0) {
			t.Fatalf("decision %d, want proposer's input %d", res.Decision, s.Input(0))
		}
	}
}

func TestTwoProposersFairSchedulingDecides(t *testing.T) {
	// Under the fair lockstep scheduler, even two proposers terminate (one
	// of them wins the race; safety holds).
	s := newSystem(t, 5, 2, []sim.ProcID{0, 1}, inputs(5, "split"), 3)
	res, err := s.RunSteps(adversary.NewLockstep(), 50000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDecided || !res.Agreement || !res.Validity {
		t.Fatalf("%+v", res)
	}
}

func TestDuelingProposersLivelock(t *testing.T) {
	// The FLP-style worst case: with the dueling schedule no one ever
	// decides, despite every message being delivered once invalidated.
	s := newSystem(t, 5, 2, []sim.ProcID{0, 1}, inputs(5, "split"), 7)
	res, err := s.RunSteps(NewDuelScheduler(), 100000)
	if err != nil {
		t.Fatal(err)
	}
	if s.DecidedCount() != 0 {
		t.Fatalf("dueling schedule allowed %d decisions: %+v", s.DecidedCount(), res)
	}
	// Proposers must have churned through many ballots (evidence of the
	// duel, not a stalled system).
	p0, ok := s.Proc(0).(*Proc)
	if !ok {
		t.Fatal("unexpected process type")
	}
	if p0.Ballot() < 10*5 {
		t.Fatalf("proposer 0 ballot %d: duel did not churn", p0.Ballot())
	}
}

func TestCrashMinorityStillDecides(t *testing.T) {
	s := newSystem(t, 5, 2, []sim.ProcID{0}, inputs(5, "ones"), 5)
	if err := s.StepCrash(3); err != nil {
		t.Fatal(err)
	}
	if err := s.StepCrash(4); err != nil {
		t.Fatal(err)
	}
	res, err := s.RunSteps(adversary.NewLockstep(), 20000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDecided || !res.Agreement || res.Decision != 1 {
		t.Fatalf("%+v", res)
	}
}

func TestProposerCrashBeforeDecideNoUnsafety(t *testing.T) {
	// Crash the only proposer mid-protocol: no decision, but no safety
	// violation either.
	s := newSystem(t, 5, 1, []sim.ProcID{0}, inputs(5, "ones"), 9)
	lock := adversary.NewLockstep()
	for i := 0; i < 8; i++ {
		step, ok := lock.NextStep(s)
		if !ok {
			break
		}
		switch step.Kind {
		case sim.StepSend:
			if _, err := s.StepSend(step.Proc); err != nil {
				t.Fatal(err)
			}
		case sim.StepDeliver:
			if err := s.StepDeliver(step.MsgID); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.StepCrash(0); err != nil {
		t.Fatal(err)
	}
	res, err := s.RunSteps(lock, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreement || !res.Validity {
		t.Fatalf("%+v", res)
	}
}

func TestSafetyPropertyUnderCrashMix(t *testing.T) {
	// Agreement and validity must hold for any proposers set, crash timing
	// and input pattern.
	check := func(seed uint64, pattern uint8, crashRaw uint8) bool {
		const n, tt = 5, 2
		in := make([]sim.Bit, n)
		for i := range in {
			in[i] = sim.Bit((pattern >> (i % 8)) & 1)
		}
		s, err := sim.New(sim.Config{
			N: n, T: tt, Seed: seed, Inputs: in,
			NewProcess: NewFactory(Params{N: n, Proposers: []sim.ProcID{0, 1}}),
		})
		if err != nil {
			return false
		}
		victim := sim.ProcID(crashRaw) % n
		sched := adversary.NewLockstep()
		steps := 0
		crashAt := int(seed % 50)
		for steps < 20000 && !s.AllDecided() {
			if steps == crashAt {
				_ = s.StepCrash(victim)
			}
			step, ok := sched.NextStep(s)
			if !ok {
				break
			}
			var err error
			switch step.Kind {
			case sim.StepSend:
				if s.Crashed(step.Proc) {
					steps++
					continue
				}
				_, err = s.StepSend(step.Proc)
			case sim.StepDeliver:
				err = s.StepDeliver(step.MsgID)
			}
			if err != nil {
				return false
			}
			steps++
		}
		return s.AgreementOK() && s.ValidityOK()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestChosenValueStable(t *testing.T) {
	// Once a value is chosen, later ballots must choose the same value
	// (the Promise carry-over rule). Run proposer 0 to completion, then
	// have proposer 1 run: it must decide the same value.
	s := newSystem(t, 5, 2, []sim.ProcID{0, 1}, []sim.Bit{1, 0, 0, 0, 0}, 2)
	res, err := s.RunSteps(adversary.NewLockstep(), 50000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDecided || !res.Agreement {
		t.Fatalf("%+v", res)
	}
}

func TestSnapshot(t *testing.T) {
	p, err := New(0, Params{N: 5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p.Snapshot(), "promised=-1 accepted=none out=_"; got != want {
		t.Fatalf("Snapshot = %q, want %q", got, want)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, Params{N: 0}, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
}
