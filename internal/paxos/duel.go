package paxos

import "asyncagree/internal/sim"

// DuelScheduler is the classic dueling-proposers adversarial schedule, made
// precise with full information: every non-Accept message is delivered
// promptly (fair, round-robin), but an Accept(b, v) message is withheld
// until a majority of acceptors have already promised a ballot above b — at
// which point delivering it can only produce NACKs. Proposers therefore
// alternate invalidating each other's ballots forever.
//
// Note every message IS eventually delivered (once invalidated), so the
// schedule satisfies the crash-model liveness constraint; it is pure
// scheduling, no faults at all — exactly the FLP-style worst case Paxos
// does not terminate under.
type DuelScheduler struct {
	inner    lockstepLike
	deferred map[int64]bool
}

var _ sim.StepAdversary = (*DuelScheduler)(nil)

// lockstepLike is a minimal internal re-implementation of round-robin
// send-then-deliver scheduling with a delivery filter (duplicating
// adversary.Lockstep here avoids an import cycle: the adversary package
// must stay algorithm-agnostic).
type lockstepLike struct {
	sendNext int
	inSend   bool
	deliverQ []int64
}

// NewDuelScheduler returns a dueling scheduler.
func NewDuelScheduler() *DuelScheduler {
	return &DuelScheduler{
		inner:    lockstepLike{inSend: true},
		deferred: make(map[int64]bool),
	}
}

// NextStep implements sim.StepAdversary.
func (d *DuelScheduler) NextStep(s *sim.System) (sim.Step, bool) {
	// First, release any deferred Accept whose ballot is now doomed.
	for id := range d.deferred {
		m, ok := s.Buffer().Get(id)
		if !ok {
			delete(d.deferred, id)
			continue
		}
		if acc, isAcc := m.Payload.(*Msg); isAcc && acc.Kind == MsgAccept && d.doomed(s, acc.B) {
			delete(d.deferred, id)
			return sim.Step{Kind: sim.StepDeliver, MsgID: id}, true
		}
	}
	return d.inner.next(s, func(m sim.Message) bool {
		if acc, isAcc := m.Payload.(*Msg); isAcc && acc.Kind == MsgAccept && !d.doomed(s, acc.B) {
			d.deferred[m.ID] = true
			return false // withhold until the ballot is doomed
		}
		return true
	})
}

// doomed reports whether a majority of acceptors have promised a ballot
// strictly above b (so delivering Accept(b) yields only NACKs).
func (d *DuelScheduler) doomed(s *sim.System, b int) bool {
	above := 0
	for i := 0; i < s.N(); i++ {
		p, ok := s.Proc(sim.ProcID(i)).(*Proc)
		if ok && p.PromisedBallot() > b {
			above++
		}
	}
	return above >= s.N()/2+1
}

// next is the filtered round-robin step generator.
func (l *lockstepLike) next(s *sim.System, allow func(sim.Message) bool) (sim.Step, bool) {
	n := s.N()
	for {
		if l.inSend {
			for l.sendNext < n && s.Crashed(sim.ProcID(l.sendNext)) {
				l.sendNext++
			}
			if l.sendNext < n {
				p := l.sendNext
				l.sendNext++
				return sim.Step{Kind: sim.StepSend, Proc: sim.ProcID(p)}, true
			}
			l.inSend = false
			l.deliverQ = s.Buffer().IDs()
		}
		for len(l.deliverQ) > 0 {
			id := l.deliverQ[0]
			l.deliverQ = l.deliverQ[1:]
			m, ok := s.Buffer().Get(id)
			if !ok {
				continue
			}
			if !allow(m) {
				continue
			}
			return sim.Step{Kind: sim.StepDeliver, MsgID: id}, true
		}
		l.inSend = true
		l.sendNext = 0
	}
}
