// Package paxos implements single-decree Paxos (Lamport, "The Part-Time
// Parliament", TOCS 1998) over the asynchronous simulator, as the
// deterministic baseline the paper's introduction contrasts with randomized
// agreement:
//
//	"A common approach for tolerating this obstacle [FLP] in practice is to
//	use an algorithm that terminates as long as worst-case scheduling does
//	not occur indefinitely. This is a property achieved by the well-known
//	Paxos algorithm."
//
// Every processor plays proposer, acceptor, and learner. Proposers listed in
// Params.Proposers start proposing their input bit; ballots are
// round*n + id, so they are unique and totally ordered. A proposer that is
// rejected (NACK) retries with a ballot above everything it has seen — the
// retry path that dueling-proposer schedules exploit to livelock the
// protocol forever, demonstrating that Paxos achieves safety always but
// termination only under benign scheduling (experiment E11 measures both
// sides).
//
// Safety (agreement and validity) holds unconditionally with t < n/2
// crashes. A chosen value is flooded with DECIDED messages so every live
// processor learns it.
package paxos

import (
	"fmt"
	"strconv"
	"strings"

	"asyncagree/internal/sim"
)

// MsgKind enumerates the Paxos wire message types.
type MsgKind uint8

// The six single-decree Paxos message kinds.
const (
	// MsgPrepare is phase 1a.
	MsgPrepare MsgKind = iota + 1
	// MsgPromise is phase 1b: a promise not to accept ballots below B,
	// carrying the highest accepted proposal so far (AcceptedB/AcceptedV,
	// valid when Has).
	MsgPromise
	// MsgAccept is phase 2a, proposing V at ballot B.
	MsgAccept
	// MsgAccepted is phase 2b.
	MsgAccepted
	// MsgNack rejects a stale ballot B, reporting the ballot Promised
	// instead.
	MsgNack
	// MsgDecided floods a chosen value V.
	MsgDecided
)

// Msg is the single pooled wire payload: one box type for all six message
// kinds, recycled through the sending processor's free list via the
// sim.PayloadReclaimer hook (the same discipline PR 6 established for
// Bracha's *rbc.Msg). A box is written only by its creator inside its own
// Send/Deliver step and is read-only while in flight, so sharing one box
// across the n copies of a broadcast — and delivering those copies from
// concurrent shards — is safe. Receivers must copy out any field they need
// beyond the Deliver call: the box returns to its owner's pool when the
// window's batch is reclaimed.
type Msg struct {
	Kind      MsgKind
	B         int     // ballot (Prepare/Promise/Accept/Accepted/Nack)
	V         sim.Bit // value (Accept/Accepted/Decided)
	AcceptedB int     // Promise: highest accepted ballot, valid when Has
	AcceptedV sim.Bit // Promise: its value
	Has       bool    // Promise: some proposal was accepted
	Promised  int     // Nack: the ballot promised instead
}

// promiseRec is the proposer-side record of one acceptor's Promise: the
// fields copied out of the (pooled, transient) *Msg box at delivery time.
type promiseRec struct {
	acceptedB int
	acceptedV sim.Bit
	has       bool
}

// Params configures a Paxos system.
type Params struct {
	// N is the processor count; a majority (floor(n/2)+1) forms a quorum.
	N int
	// Proposers lists the processors that actively propose. One proposer
	// gives guaranteed termination under fair scheduling; two or more admit
	// dueling livelock under adversarial scheduling.
	Proposers []sim.ProcID
}

// Proc is one Paxos processor. It implements sim.Process.
type Proc struct {
	id    sim.ProcID
	n     int
	input sim.Bit

	out     sim.Bit
	decided bool

	proposer bool

	// Acceptor state.
	promisedB int
	acceptedB int
	acceptedV sim.Bit
	hasAcc    bool

	// Proposer state.
	round    int
	ballot   int
	promises map[sim.ProcID]promiseRec
	accepts  map[sim.ProcID]bool
	phase    int // 0 idle, 1 preparing, 2 accepting
	propV    sim.Bit
	maxSeenB int

	outbox []sim.Message
	// boxPool is the free list of payload boxes this processor owns; boxes
	// cycle outbox -> buffer -> (window reclaim | recycle sweep) -> here.
	boxPool []*Msg
}

var (
	_ sim.Process          = (*Proc)(nil)
	_ sim.PayloadReclaimer = (*Proc)(nil)
)

// New constructs a Paxos processor.
func New(id sim.ProcID, p Params, input sim.Bit) (*Proc, error) {
	if p.N <= 0 {
		return nil, fmt.Errorf("paxos: n = %d", p.N)
	}
	proc := &Proc{id: id, n: p.N, input: input, promisedB: -1, acceptedB: -1, maxSeenB: -1}
	for _, prop := range p.Proposers {
		if prop == id {
			proc.proposer = true
		}
	}
	if proc.proposer {
		proc.startRound(1)
	}
	return proc, nil
}

// NewFactory returns a sim.Config-compatible constructor. Like the other
// factories it validates eagerly, so a bad configuration fails at wiring
// time rather than mid-trial inside the first process constructor.
func NewFactory(p Params) func(sim.ProcID, sim.Bit) sim.Process {
	if p.N <= 0 {
		panic(fmt.Sprintf("paxos: invalid parameters n=%d (need n > 0)", p.N))
	}
	return func(id sim.ProcID, input sim.Bit) sim.Process {
		proc, err := New(id, p, input)
		if err != nil {
			panic("paxos: " + err.Error()) // unreachable: n validated above
		}
		return proc
	}
}

// ID implements sim.Process.
func (p *Proc) ID() sim.ProcID { return p.id }

// Input implements sim.Process.
func (p *Proc) Input() sim.Bit { return p.input }

// Output implements sim.Process.
func (p *Proc) Output() (sim.Bit, bool) { return p.out, p.decided }

// PromisedBallot exposes the acceptor's promise (full-information
// schedulers use it to time dueling deliveries).
func (p *Proc) PromisedBallot() int { return p.promisedB }

// Ballot returns the proposer's current ballot, or -1 for non-proposers.
func (p *Proc) Ballot() int {
	if !p.proposer {
		return -1
	}
	return p.ballot
}

func (p *Proc) quorum() int { return p.n/2 + 1 }

// startRound begins phase 1 with ballot round*n + id. The per-round quorum
// maps are cleared in place rather than reallocated, so dueling-proposer
// retries (and recycled trials) reuse their buckets.
func (p *Proc) startRound(round int) {
	p.round = round
	p.ballot = round*p.n + int(p.id)
	if p.promises == nil {
		p.promises = make(map[sim.ProcID]promiseRec, p.n)
		p.accepts = make(map[sim.ProcID]bool, p.n)
	} else {
		clear(p.promises)
		clear(p.accepts)
	}
	p.phase = 1
	m := p.msg(MsgPrepare)
	m.B = p.ballot
	p.broadcast(m)
}

// msg pops a payload box off the free list (or allocates on a cold pool),
// zeroed except for its kind. Callers fill the kind's fields before the box
// enters the outbox; after that it is read-only until reclaimed.
func (p *Proc) msg(k MsgKind) *Msg {
	if n := len(p.boxPool); n > 0 {
		b := p.boxPool[n-1]
		p.boxPool = p.boxPool[:n-1]
		*b = Msg{Kind: k}
		return b
	}
	return &Msg{Kind: k}
}

// ReclaimPayload implements sim.PayloadReclaimer: the window pipeline hands
// back each payload box this processor sent once the window's batch is dead
// (delivered or dropped), and it returns to the free list for reuse.
func (p *Proc) ReclaimPayload(payload any) {
	if b, ok := payload.(*Msg); ok {
		p.boxPool = append(p.boxPool, b)
	}
}

// reclaimOutbox sweeps boxes stranded in an unsent outbox (e.g. responses
// enqueued in a trial's final window) back to the free list, deduplicating
// the shared box of a broadcast's consecutive copies.
func (p *Proc) reclaimOutbox() {
	var last any
	for i := range p.outbox {
		pl := p.outbox[i].Payload
		if pl == last {
			continue
		}
		last = pl
		if b, ok := pl.(*Msg); ok {
			p.boxPool = append(p.boxPool, b)
		}
	}
	p.outbox = p.outbox[:0]
}

func (p *Proc) broadcast(payload any) {
	for q := 0; q < p.n; q++ {
		p.outbox = append(p.outbox, sim.Message{From: p.id, To: sim.ProcID(q), Payload: payload})
	}
}

func (p *Proc) sendTo(q sim.ProcID, payload any) {
	p.outbox = append(p.outbox, sim.Message{From: p.id, To: q, Payload: payload})
}

// Send implements sim.Process. The returned slice is valid only until the
// next Deliver/Reset (the outbox capacity is recycled), per the sim.Process
// contract.
func (p *Proc) Send() []sim.Message {
	out := p.outbox
	p.outbox = p.outbox[:0]
	return out
}

// Deliver implements sim.Process. Fields needed past this call are copied
// out of the pooled box (promiseRec); the box itself is never retained.
func (p *Proc) Deliver(m sim.Message, _ sim.RandSource) {
	msg, ok := m.Payload.(*Msg)
	if !ok {
		return
	}
	switch msg.Kind {
	case MsgPrepare:
		p.trackBallot(msg.B)
		if msg.B > p.promisedB {
			p.promisedB = msg.B
			r := p.msg(MsgPromise)
			r.B, r.AcceptedB, r.AcceptedV, r.Has = msg.B, p.acceptedB, p.acceptedV, p.hasAcc
			p.sendTo(m.From, r)
		} else {
			p.nack(m.From, msg.B)
		}
	case MsgAccept:
		p.trackBallot(msg.B)
		if msg.B >= p.promisedB {
			p.promisedB = msg.B
			p.acceptedB = msg.B
			p.acceptedV = msg.V
			p.hasAcc = true
			r := p.msg(MsgAccepted)
			r.B, r.V = msg.B, msg.V
			p.sendTo(m.From, r)
		} else {
			p.nack(m.From, msg.B)
		}
	case MsgPromise:
		p.onPromise(m.From, msg)
	case MsgAccepted:
		p.onAccepted(m.From, msg)
	case MsgNack:
		p.onNack(msg)
	case MsgDecided:
		if !p.decided {
			p.out, p.decided = msg.V, true
		}
	}
}

// nack rejects ballot b, reporting the ballot promised instead.
func (p *Proc) nack(to sim.ProcID, b int) {
	r := p.msg(MsgNack)
	r.B, r.Promised = b, p.promisedB
	p.sendTo(to, r)
}

func (p *Proc) trackBallot(b int) {
	if b > p.maxSeenB {
		p.maxSeenB = b
	}
}

func (p *Proc) onPromise(from sim.ProcID, msg *Msg) {
	if !p.proposer || p.phase != 1 || msg.B != p.ballot {
		return
	}
	p.promises[from] = promiseRec{acceptedB: msg.AcceptedB, acceptedV: msg.AcceptedV, has: msg.Has}
	if len(p.promises) < p.quorum() {
		return
	}
	// Choose the value of the highest accepted ballot among the quorum, or
	// the proposer's own input.
	v := p.input
	bestB := -1
	for _, pr := range p.promises {
		if pr.has && pr.acceptedB > bestB {
			bestB = pr.acceptedB
			v = pr.acceptedV
		}
	}
	p.propV = v
	p.phase = 2
	m := p.msg(MsgAccept)
	m.B, m.V = p.ballot, v
	p.broadcast(m)
}

func (p *Proc) onAccepted(from sim.ProcID, msg *Msg) {
	if !p.proposer || p.phase != 2 || msg.B != p.ballot {
		return
	}
	p.accepts[from] = true
	if len(p.accepts) < p.quorum() {
		return
	}
	// Chosen.
	if !p.decided {
		p.out, p.decided = p.propV, true
	}
	p.phase = 0
	m := p.msg(MsgDecided)
	m.V = p.propV
	p.broadcast(m)
}

func (p *Proc) onNack(msg *Msg) {
	if !p.proposer || p.phase == 0 || msg.B != p.ballot {
		return
	}
	p.trackBallot(msg.Promised)
	// Retry with a ballot above everything seen.
	nextRound := p.maxSeenB/p.n + 1
	if nextRound <= p.round {
		nextRound = p.round + 1
	}
	p.startRound(nextRound)
}

// Recycle implements sim.Recycler: it rewinds the processor to the state
// New would produce for the given input, keeping the quorum maps, the
// payload-box pool, and outbox capacity. Boxes stranded in an unsent outbox
// (responses enqueued in the trial's final window) are swept back to the
// pool first, so steady-state recycled trials allocate nothing. The
// proposer role persists — a processor is only ever recycled into a trial
// with the same proposer set.
func (p *Proc) Recycle(input sim.Bit) {
	p.reclaimOutbox()
	p.input = input
	p.out, p.decided = 0, false
	p.promisedB = -1
	p.acceptedB = -1
	p.acceptedV = 0
	p.hasAcc = false
	p.round = 0
	p.ballot = 0
	if p.promises != nil {
		clear(p.promises)
		clear(p.accepts)
	}
	p.phase = 0
	p.propV = 0
	p.maxSeenB = -1
	if p.proposer {
		p.startRound(1)
	}
}

// Reset implements sim.Process. Paxos acceptor state must be durable for
// safety; a reset erases it, and the paper's model is exactly the one where
// such erasure is adversarial. Like Ben-Or, Paxos is not reset-tolerant;
// the processor restarts with empty state (safety may then be violated,
// which experiments demonstrate as a contrast to the core algorithm). The
// written output survives (the write-once register is durable), as do the
// recycled containers (maps, box pool, outbox capacity).
func (p *Proc) Reset() {
	p.reclaimOutbox()
	p.promisedB = -1
	p.acceptedB = -1
	p.acceptedV = 0
	p.hasAcc = false
	p.round = 0
	p.ballot = 0
	if p.promises != nil {
		clear(p.promises)
		clear(p.accepts)
	}
	p.phase = 0
	p.propV = 0
	p.maxSeenB = -1
	if p.proposer {
		p.startRound(1)
	}
}

// Snapshot implements sim.Process.
func (p *Proc) Snapshot() string {
	var b strings.Builder
	b.WriteString("promised=")
	b.WriteString(strconv.Itoa(p.promisedB))
	b.WriteString(" accepted=")
	if p.hasAcc {
		b.WriteString(strconv.Itoa(p.acceptedB))
		b.WriteByte('/')
		b.WriteByte('0' + byte(p.acceptedV))
	} else {
		b.WriteString("none")
	}
	b.WriteString(" out=")
	if p.decided {
		b.WriteByte('0' + byte(p.out))
	} else {
		b.WriteByte('_')
	}
	return b.String()
}
