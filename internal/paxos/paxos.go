// Package paxos implements single-decree Paxos (Lamport, "The Part-Time
// Parliament", TOCS 1998) over the asynchronous simulator, as the
// deterministic baseline the paper's introduction contrasts with randomized
// agreement:
//
//	"A common approach for tolerating this obstacle [FLP] in practice is to
//	use an algorithm that terminates as long as worst-case scheduling does
//	not occur indefinitely. This is a property achieved by the well-known
//	Paxos algorithm."
//
// Every processor plays proposer, acceptor, and learner. Proposers listed in
// Params.Proposers start proposing their input bit; ballots are
// round*n + id, so they are unique and totally ordered. A proposer that is
// rejected (NACK) retries with a ballot above everything it has seen — the
// retry path that dueling-proposer schedules exploit to livelock the
// protocol forever, demonstrating that Paxos achieves safety always but
// termination only under benign scheduling (experiment E11 measures both
// sides).
//
// Safety (agreement and validity) holds unconditionally with t < n/2
// crashes. A chosen value is flooded with DECIDED messages so every live
// processor learns it.
package paxos

import (
	"fmt"
	"strconv"
	"strings"

	"asyncagree/internal/sim"
)

// Wire payload types.
type (
	// Prepare is phase 1a.
	Prepare struct{ B int }
	// Promise is phase 1b: a promise not to accept ballots below B, with
	// the highest accepted proposal so far, if any.
	Promise struct {
		B         int
		AcceptedB int
		AcceptedV sim.Bit
		Has       bool
	}
	// Accept is phase 2a.
	Accept struct {
		B int
		V sim.Bit
	}
	// Accepted is phase 2b.
	Accepted struct {
		B int
		V sim.Bit
	}
	// Nack rejects a stale ballot, reporting the ballot promised instead.
	Nack struct {
		B        int
		Promised int
	}
	// Decided floods a chosen value.
	Decided struct{ V sim.Bit }
)

// Params configures a Paxos system.
type Params struct {
	// N is the processor count; a majority (floor(n/2)+1) forms a quorum.
	N int
	// Proposers lists the processors that actively propose. One proposer
	// gives guaranteed termination under fair scheduling; two or more admit
	// dueling livelock under adversarial scheduling.
	Proposers []sim.ProcID
}

// Proc is one Paxos processor. It implements sim.Process.
type Proc struct {
	id    sim.ProcID
	n     int
	input sim.Bit

	out     sim.Bit
	decided bool

	proposer bool

	// Acceptor state.
	promisedB int
	acceptedB int
	acceptedV sim.Bit
	hasAcc    bool

	// Proposer state.
	round    int
	ballot   int
	promises map[sim.ProcID]Promise
	accepts  map[sim.ProcID]bool
	phase    int // 0 idle, 1 preparing, 2 accepting
	propV    sim.Bit
	maxSeenB int

	outbox []sim.Message
}

var _ sim.Process = (*Proc)(nil)

// New constructs a Paxos processor.
func New(id sim.ProcID, p Params, input sim.Bit) (*Proc, error) {
	if p.N <= 0 {
		return nil, fmt.Errorf("paxos: n = %d", p.N)
	}
	proc := &Proc{id: id, n: p.N, input: input, promisedB: -1, acceptedB: -1, maxSeenB: -1}
	for _, prop := range p.Proposers {
		if prop == id {
			proc.proposer = true
		}
	}
	if proc.proposer {
		proc.startRound(1)
	}
	return proc, nil
}

// NewFactory returns a sim.Config-compatible constructor. Like the other
// factories it validates eagerly, so a bad configuration fails at wiring
// time rather than mid-trial inside the first process constructor.
func NewFactory(p Params) func(sim.ProcID, sim.Bit) sim.Process {
	if p.N <= 0 {
		panic(fmt.Sprintf("paxos: invalid parameters n=%d (need n > 0)", p.N))
	}
	return func(id sim.ProcID, input sim.Bit) sim.Process {
		proc, err := New(id, p, input)
		if err != nil {
			panic("paxos: " + err.Error()) // unreachable: n validated above
		}
		return proc
	}
}

// ID implements sim.Process.
func (p *Proc) ID() sim.ProcID { return p.id }

// Input implements sim.Process.
func (p *Proc) Input() sim.Bit { return p.input }

// Output implements sim.Process.
func (p *Proc) Output() (sim.Bit, bool) { return p.out, p.decided }

// PromisedBallot exposes the acceptor's promise (full-information
// schedulers use it to time dueling deliveries).
func (p *Proc) PromisedBallot() int { return p.promisedB }

// Ballot returns the proposer's current ballot, or -1 for non-proposers.
func (p *Proc) Ballot() int {
	if !p.proposer {
		return -1
	}
	return p.ballot
}

func (p *Proc) quorum() int { return p.n/2 + 1 }

// startRound begins phase 1 with ballot round*n + id. The per-round quorum
// maps are cleared in place rather than reallocated, so dueling-proposer
// retries (and recycled trials) reuse their buckets.
func (p *Proc) startRound(round int) {
	p.round = round
	p.ballot = round*p.n + int(p.id)
	if p.promises == nil {
		p.promises = make(map[sim.ProcID]Promise, p.n)
		p.accepts = make(map[sim.ProcID]bool, p.n)
	} else {
		clear(p.promises)
		clear(p.accepts)
	}
	p.phase = 1
	p.broadcast(Prepare{B: p.ballot})
}

func (p *Proc) broadcast(payload any) {
	for q := 0; q < p.n; q++ {
		p.outbox = append(p.outbox, sim.Message{From: p.id, To: sim.ProcID(q), Payload: payload})
	}
}

func (p *Proc) sendTo(q sim.ProcID, payload any) {
	p.outbox = append(p.outbox, sim.Message{From: p.id, To: q, Payload: payload})
}

// Send implements sim.Process. The returned slice is valid only until the
// next Deliver/Reset (the outbox capacity is recycled), per the sim.Process
// contract.
func (p *Proc) Send() []sim.Message {
	out := p.outbox
	p.outbox = p.outbox[:0]
	return out
}

// Deliver implements sim.Process.
func (p *Proc) Deliver(m sim.Message, _ sim.RandSource) {
	switch msg := m.Payload.(type) {
	case Prepare:
		p.trackBallot(msg.B)
		if msg.B > p.promisedB {
			p.promisedB = msg.B
			p.sendTo(m.From, Promise{B: msg.B, AcceptedB: p.acceptedB, AcceptedV: p.acceptedV, Has: p.hasAcc})
		} else {
			p.sendTo(m.From, Nack{B: msg.B, Promised: p.promisedB})
		}
	case Accept:
		p.trackBallot(msg.B)
		if msg.B >= p.promisedB {
			p.promisedB = msg.B
			p.acceptedB = msg.B
			p.acceptedV = msg.V
			p.hasAcc = true
			p.sendTo(m.From, Accepted{B: msg.B, V: msg.V})
		} else {
			p.sendTo(m.From, Nack{B: msg.B, Promised: p.promisedB})
		}
	case Promise:
		p.onPromise(m.From, msg)
	case Accepted:
		p.onAccepted(m.From, msg)
	case Nack:
		p.onNack(msg)
	case Decided:
		if !p.decided {
			p.out, p.decided = msg.V, true
		}
	}
}

func (p *Proc) trackBallot(b int) {
	if b > p.maxSeenB {
		p.maxSeenB = b
	}
}

func (p *Proc) onPromise(from sim.ProcID, msg Promise) {
	if !p.proposer || p.phase != 1 || msg.B != p.ballot {
		return
	}
	p.promises[from] = msg
	if len(p.promises) < p.quorum() {
		return
	}
	// Choose the value of the highest accepted ballot among the quorum, or
	// the proposer's own input.
	v := p.input
	bestB := -1
	for _, pr := range p.promises {
		if pr.Has && pr.AcceptedB > bestB {
			bestB = pr.AcceptedB
			v = pr.AcceptedV
		}
	}
	p.propV = v
	p.phase = 2
	p.broadcast(Accept{B: p.ballot, V: v})
}

func (p *Proc) onAccepted(from sim.ProcID, msg Accepted) {
	if !p.proposer || p.phase != 2 || msg.B != p.ballot {
		return
	}
	p.accepts[from] = true
	if len(p.accepts) < p.quorum() {
		return
	}
	// Chosen.
	if !p.decided {
		p.out, p.decided = p.propV, true
	}
	p.phase = 0
	p.broadcast(Decided{V: p.propV})
}

func (p *Proc) onNack(msg Nack) {
	if !p.proposer || p.phase == 0 || msg.B != p.ballot {
		return
	}
	p.trackBallot(msg.Promised)
	// Retry with a ballot above everything seen.
	nextRound := p.maxSeenB/p.n + 1
	if nextRound <= p.round {
		nextRound = p.round + 1
	}
	p.startRound(nextRound)
}

// Recycle implements sim.Recycler: it rewinds the processor to the state
// New would produce for the given input, keeping the quorum maps and outbox
// capacity. The proposer role persists — a processor is only ever recycled
// into a trial with the same proposer set.
func (p *Proc) Recycle(input sim.Bit) {
	p.input = input
	p.out, p.decided = 0, false
	p.promisedB = -1
	p.acceptedB = -1
	p.acceptedV = 0
	p.hasAcc = false
	p.round = 0
	p.ballot = 0
	if p.promises != nil {
		clear(p.promises)
		clear(p.accepts)
	}
	p.phase = 0
	p.propV = 0
	p.maxSeenB = -1
	p.outbox = p.outbox[:0]
	if p.proposer {
		p.startRound(1)
	}
}

// Reset implements sim.Process. Paxos acceptor state must be durable for
// safety; a reset erases it, and the paper's model is exactly the one where
// such erasure is adversarial. Like Ben-Or, Paxos is not reset-tolerant;
// the processor restarts with empty state (safety may then be violated,
// which experiments demonstrate as a contrast to the core algorithm).
func (p *Proc) Reset() {
	out, decided := p.out, p.decided
	proposer := p.proposer
	fresh, err := New(p.id, Params{N: p.n}, p.input)
	if err != nil {
		return // unreachable: n was validated at construction
	}
	*p = *fresh
	p.proposer = proposer
	p.out, p.decided = out, decided
	if p.proposer {
		p.startRound(1)
	}
}

// Snapshot implements sim.Process.
func (p *Proc) Snapshot() string {
	var b strings.Builder
	b.WriteString("promised=")
	b.WriteString(strconv.Itoa(p.promisedB))
	b.WriteString(" accepted=")
	if p.hasAcc {
		b.WriteString(strconv.Itoa(p.acceptedB))
		b.WriteByte('/')
		b.WriteByte('0' + byte(p.acceptedV))
	} else {
		b.WriteString("none")
	}
	b.WriteString(" out=")
	if p.decided {
		b.WriteByte('0' + byte(p.out))
	} else {
		b.WriteByte('_')
	}
	return b.String()
}
