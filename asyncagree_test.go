package asyncagree

import (
	"testing"
	"testing/quick"
)

func TestAllAlgorithmsUnanimousDecide(t *testing.T) {
	cases := []struct {
		alg  Algorithm
		n, t int
		maxW int
	}{
		{AlgorithmCore, 12, 1, 10},
		{AlgorithmBenOr, 9, 2, 10},
		{AlgorithmBracha, 7, 2, 200},
		{AlgorithmCommittee, 27, 3, 3000},
		{AlgorithmPaxos, 5, 2, 200},
	}
	for _, c := range cases {
		t.Run(string(c.alg), func(t *testing.T) {
			res, err := Run(Config{
				Algorithm: c.alg, N: c.n, T: c.t,
				Inputs: UnanimousInputs(c.n, 1), Seed: 7,
			}, FullDelivery(), c.maxW)
			if err != nil {
				t.Fatal(err)
			}
			if !res.AllDecided || res.Decision != 1 || !res.Agreement || !res.Validity {
				t.Fatalf("%+v", res)
			}
		})
	}
}

func TestNewValidatesParameters(t *testing.T) {
	cases := []Config{
		{Algorithm: AlgorithmCore, N: 12, T: 2, Inputs: SplitInputs(12)},   // t >= n/6
		{Algorithm: AlgorithmBenOr, N: 4, T: 2, Inputs: SplitInputs(4)},    // t >= n/2
		{Algorithm: AlgorithmBracha, N: 6, T: 2, Inputs: SplitInputs(6)},   // n <= 3t
		{Algorithm: Algorithm("nope"), N: 4, T: 1, Inputs: SplitInputs(4)}, // unknown
	}
	for _, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
}

func TestCustomThresholds(t *testing.T) {
	th := Thresholds{T1: 20, T2: 19, T3: 17}
	cfg := Config{
		Algorithm: AlgorithmCore, N: 24, T: 2,
		Inputs: UnanimousInputs(24, 0), Seed: 1,
		CoreThresholds: &th,
	}
	res, err := Run(cfg, FullDelivery(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDecided || res.Decision != 0 {
		t.Fatalf("%+v", res)
	}
	bad := Thresholds{T1: 23, T2: 19, T3: 17} // T1 > n-2t
	cfg.CoreThresholds = &bad
	if _, err := New(cfg); err == nil {
		t.Fatal("invalid custom thresholds accepted")
	}
}

func TestSplitVoteAdversaryStalls(t *testing.T) {
	cfg := Config{Algorithm: AlgorithmCore, N: 24, T: 3, Inputs: SplitInputs(24), Seed: 3}
	adv, err := SplitVoteAdversary(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, adv, 25)
	if err != nil {
		t.Fatal(err)
	}
	if res.AllDecided {
		t.Fatalf("decided within 25 windows under split-vote: %+v", res)
	}
	if !res.Agreement || !res.Validity {
		t.Fatalf("safety violated: %+v", res)
	}
}

func TestSplitVoteAdversaryUnsupported(t *testing.T) {
	if _, err := SplitVoteAdversary(Config{Algorithm: AlgorithmPaxos, N: 5, T: 2}); err == nil {
		t.Fatal("unsupported algorithm accepted")
	}
}

func TestResetStormOnCore(t *testing.T) {
	cfg := Config{Algorithm: AlgorithmCore, N: 18, T: 2, Inputs: UnanimousInputs(18, 1), Seed: 5}
	res, err := Run(cfg, ResetStorm(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDecided || res.Decision != 1 {
		t.Fatalf("%+v", res)
	}
}

func TestSilenceAdversary(t *testing.T) {
	cfg := Config{Algorithm: AlgorithmCore, N: 12, T: 1, Inputs: UnanimousInputs(12, 0), Seed: 2}
	adv, err := Silence(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, adv, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDecided || res.Decision != 0 {
		t.Fatalf("%+v", res)
	}
}

func TestSilenceValidatesAtConstruction(t *testing.T) {
	cfg := Config{Algorithm: AlgorithmCore, N: 12, T: 1, Inputs: UnanimousInputs(12, 0), Seed: 2}
	if _, err := Silence(cfg, 3, 4); err == nil {
		t.Fatal("silent set larger than t accepted")
	}
	if _, err := Silence(cfg, 99); err == nil {
		t.Fatal("out-of-range silent processor accepted")
	}
}

func TestNewAdversaryRegistryNames(t *testing.T) {
	cfg := Config{Algorithm: AlgorithmCore, N: 12, T: 1, Inputs: SplitInputs(12), Seed: 4}
	for _, name := range Adversaries() {
		adv, err := NewAdversary(name, cfg)
		if err != nil {
			t.Fatalf("NewAdversary(%q): %v", name, err)
		}
		res, err := Run(cfg, adv, 2000)
		if err != nil {
			t.Fatalf("run under %q: %v", name, err)
		}
		if !res.Agreement || !res.Validity {
			t.Fatalf("safety violated under %q: %+v", name, res)
		}
	}
	if _, err := NewAdversary("nope", cfg); err == nil {
		t.Fatal("unknown adversary accepted")
	}
}

func TestPatternInputs(t *testing.T) {
	for _, name := range InputPatterns() {
		in, err := PatternInputs(name, 10, 3)
		if err != nil || len(in) != 10 {
			t.Fatalf("PatternInputs(%q) = %v, %v", name, in, err)
		}
	}
	if _, err := PatternInputs("nope", 10, 3); err == nil {
		t.Fatal("unknown pattern accepted")
	}
}

func TestFacadeSweep(t *testing.T) {
	res, err := Sweep(Matrix{
		Algorithms:  []string{"core", "benor"},
		Adversaries: []string{"full"},
		Schedulers:  []string{"adversary"},
		Sizes:       []SweepSize{{N: 12, T: 1}},
		Inputs:      []string{"ones"},
		Seeds:       []uint64{1, 2},
		MaxWindows:  2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 || res.TrialCount != 4 {
		t.Fatalf("unexpected sweep shape: %+v", res)
	}
	for _, c := range res.Cells {
		if c.Decided != c.Trials || c.AgreeViol != 0 || c.ValidViol != 0 {
			t.Fatalf("cell %+v did not decide cleanly", c)
		}
	}
}

// TestSchedulerFacade drives every registered delivery scheduler through
// the facade: build, compose with the benign adversary, run, and hold the
// safety invariants.
func TestSchedulerFacade(t *testing.T) {
	cfg := Config{Algorithm: AlgorithmCore, N: 12, T: 1, Inputs: SplitInputs(12), Seed: 4}
	for _, name := range Schedulers() {
		sch, err := NewScheduler(name, cfg)
		if err != nil {
			t.Fatalf("NewScheduler(%q): %v", name, err)
		}
		adv, err := NewAdversary("full", cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(cfg, Schedule(adv, sch), 200000)
		if err != nil {
			t.Fatalf("run under scheduler %q: %v", name, err)
		}
		if !res.Agreement || !res.Validity || !res.AllDecided {
			t.Fatalf("scheduler %q: %+v", name, res)
		}
	}
	if _, err := NewScheduler("nope", cfg); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
}

func TestStepModeFacade(t *testing.T) {
	s, err := New(Config{
		Algorithm: AlgorithmPaxos, N: 5, T: 2,
		Inputs: SplitInputs(5), Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunSteps(Lockstep(), 20000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDecided || !res.Agreement {
		t.Fatalf("%+v", res)
	}
}

func TestDuelingPaxosLivelocks(t *testing.T) {
	s, err := New(Config{
		Algorithm: AlgorithmPaxos, N: 5, T: 2,
		Inputs: SplitInputs(5), Seed: 9,
		Proposers: []ProcID{0, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunSteps(DuelingPaxos(), 50000); err != nil {
		t.Fatal(err)
	}
	if s.DecidedCount() != 0 {
		t.Fatal("dueling schedule allowed a decision")
	}
}

func TestInputHelpers(t *testing.T) {
	u := UnanimousInputs(4, 1)
	for _, v := range u {
		if v != 1 {
			t.Fatal("UnanimousInputs wrong")
		}
	}
	s := SplitInputs(4)
	if s[0] != 0 || s[1] != 1 || s[2] != 0 || s[3] != 1 {
		t.Fatal("SplitInputs wrong")
	}
}

func TestAgreementAcrossAlgorithmsProperty(t *testing.T) {
	// Safety holds for every algorithm under the benign adversary for any
	// input pattern and seed.
	check := func(seed uint64, pattern uint8, algPick uint8) bool {
		algs := []struct {
			alg  Algorithm
			n, t int
			maxW int
		}{
			{AlgorithmCore, 12, 1, 3000},
			{AlgorithmBenOr, 9, 2, 3000},
			{AlgorithmBracha, 7, 2, 20000},
		}
		c := algs[int(algPick)%len(algs)]
		inputs := make([]Bit, c.n)
		for i := range inputs {
			inputs[i] = Bit((pattern >> (i % 8)) & 1)
		}
		res, err := Run(Config{Algorithm: c.alg, N: c.n, T: c.t, Inputs: inputs, Seed: seed},
			FullDelivery(), c.maxW)
		if err != nil {
			return false
		}
		return res.Agreement && res.Validity && res.AllDecided
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 45}); err != nil {
		t.Fatal(err)
	}
}

func TestAlgorithmsList(t *testing.T) {
	if len(Algorithms()) != 5 {
		t.Fatalf("Algorithms() = %v", Algorithms())
	}
}
