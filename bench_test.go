package asyncagree

// Benchmark harness: one benchmark per experiment in DESIGN.md §5 (the
// paper has no numbered tables/figures; each theorem or in-text claim has an
// experiment ID E1..E15), plus substrate micro-benchmarks. Regenerate the
// EXPERIMENTS.md tables with `go run ./cmd/experiments -scale full`.

import (
	"strconv"
	"testing"

	"asyncagree/internal/adversary"
	"asyncagree/internal/benchcases"
	"asyncagree/internal/experiments"
	"asyncagree/internal/rng"
	"asyncagree/internal/talagrand"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	exp, err := experiments.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := exp.Run(experiments.ScaleQuick)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Pass {
			b.Fatalf("%s failed the paper claim", id)
		}
	}
}

func BenchmarkE1Feasibility(b *testing.B)      { benchExperiment(b, "E1") }
func BenchmarkE2ExponentialTime(b *testing.B)  { benchExperiment(b, "E2") }
func BenchmarkE3Thresholds(b *testing.B)       { benchExperiment(b, "E3") }
func BenchmarkE4Talagrand(b *testing.B)        { benchExperiment(b, "E4") }
func BenchmarkE5Separation(b *testing.B)       { benchExperiment(b, "E5") }
func BenchmarkE6Interpolation(b *testing.B)    { benchExperiment(b, "E6") }
func BenchmarkE7StallProbability(b *testing.B) { benchExperiment(b, "E7") }
func BenchmarkE8CrashChains(b *testing.B)      { benchExperiment(b, "E8") }
func BenchmarkE9Unanimous(b *testing.B)        { benchExperiment(b, "E9") }
func BenchmarkE10Committee(b *testing.B)       { benchExperiment(b, "E10") }
func BenchmarkE11Paxos(b *testing.B)           { benchExperiment(b, "E11") }
func BenchmarkE12NoConflict(b *testing.B)      { benchExperiment(b, "E12") }
func BenchmarkE13Z1Separation(b *testing.B)    { benchExperiment(b, "E13") }
func BenchmarkE14SchedCurves(b *testing.B)     { benchExperiment(b, "E14") }
func BenchmarkE15ScalingCurves(b *testing.B)   { benchExperiment(b, "E15") }

// --- Substrate micro-benchmarks -----------------------------------------

// BenchmarkWindowThroughput measures acceptable windows per second for the
// core algorithm under full delivery (the simulator's hot loop). The body is
// shared with cmd/bench via internal/benchcases so BENCH_baseline.json and
// this benchmark cannot drift apart.
func BenchmarkWindowThroughput(b *testing.B) {
	for _, n := range []int{12, 24, 48, 1024} {
		b.Run(benchcases.SizeLabel(n), benchcases.WindowThroughput(n))
	}
}

// BenchmarkWindowThroughputColumnar pins the columnar vote-tally kernel by
// name (the case fails if the columnar gate does not engage), and
// BenchmarkWindowThroughputMessage keeps the legacy message-at-a-time path
// measured for comparison. Both bodies are shared with cmd/bench.
func BenchmarkWindowThroughputColumnar(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(benchcases.SizeLabel(n), benchcases.WindowThroughputColumnar(n))
	}
}

func BenchmarkWindowThroughputMessage(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(benchcases.SizeLabel(n), benchcases.WindowThroughputMessage(n))
	}
}

// BenchmarkWindowThroughputSharded measures the same hot loop with the
// sharded window core engaged (worker counts 2 and 4). Output is
// byte-identical to the serial case; only wall-clock differs — on a
// multi-core machine the sharded path should win decisively at n >= 256.
func BenchmarkWindowThroughputSharded(b *testing.B) {
	for _, n := range []int{256, 1024} {
		for _, w := range []int{2, 4} {
			b.Run(benchcases.SizeLabel(n)+"/w="+strconv.Itoa(w),
				benchcases.WindowThroughputSharded(n, w))
		}
	}
}

// BenchmarkSplitVoteWindow measures the adversary's per-window planning
// cost.
func BenchmarkSplitVoteWindow(b *testing.B) {
	for _, n := range []int{24, 48} {
		b.Run(benchcases.SizeLabel(n), benchcases.SplitVoteWindow(n))
	}
}

// BenchmarkBrachaWindow measures windows of the RBC-based protocol (about
// an order of magnitude more traffic per window than core). The body is
// shared with cmd/bench via internal/benchcases, so the case is tracked in
// BENCH_baseline.json too.
func BenchmarkBrachaWindow(b *testing.B) {
	b.Run(benchcases.SizeLabel(13), benchcases.BrachaWindow(13))
}

// BenchmarkPaxosDecision measures full solo-proposer Paxos decisions. The
// body is shared with cmd/bench via internal/benchcases.
func BenchmarkPaxosDecision(b *testing.B) {
	b.Run(benchcases.SizeLabel(5), benchcases.PaxosDecision(5))
}

// BenchmarkTalagrandExact measures exact product-measure computation.
func BenchmarkTalagrandExact(b *testing.B) {
	s := talagrand.UniformBits(16)
	set := talagrand.HammingWeightAtMost(6)
	for i := 0; i < b.N; i++ {
		if _, err := s.Measure(set); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTalagrandMC measures Monte-Carlo product-measure estimation.
func BenchmarkTalagrandMC(b *testing.B) {
	s := talagrand.UniformBits(64)
	set := talagrand.HammingWeightAtMost(24)
	r := rng.New(1)
	for i := 0; i < b.N; i++ {
		_ = s.MeasureMC(set, 1000, r)
	}
}

// BenchmarkBufferOps measures raw message buffer throughput.
func BenchmarkBufferOps(b *testing.B) {
	benchcases.BufferOps()(b)
}

// BenchmarkSweepThroughput measures the scenario sweep engine end to end
// (expansion, parallel trial fan-out, aggregation). The body is shared with
// cmd/bench via internal/benchcases.
func BenchmarkSweepThroughput(b *testing.B) {
	benchcases.SweepThroughput()(b)
}

// BenchmarkSweepMemory tracks the streaming pipeline's bytes-retained
// behavior over a trial-heavy single-cell sweep. The body is shared with
// cmd/bench via internal/benchcases.
func BenchmarkSweepMemory(b *testing.B) {
	b.Run("trials=4096", benchcases.SweepMemory(4096))
}

// BenchmarkRandomWindows measures the chaos adversary's planning cost.
func BenchmarkRandomWindows(b *testing.B) {
	cfg := Config{Algorithm: AlgorithmCore, N: 24, T: 3, Inputs: SplitInputs(24), Seed: 1}
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	adv := adversary.NewRandomWindows(7, 0.5, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.ApplyWindowWith(adv); err != nil {
			b.Fatal(err)
		}
	}
}
