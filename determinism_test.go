package asyncagree

import (
	"fmt"
	"testing"
)

// TestExecutionsAreReplayable verifies the repository's core reproducibility
// guarantee: the same Config and adversary produce bit-identical executions.
func TestExecutionsAreReplayable(t *testing.T) {
	cases := []Config{
		{Algorithm: AlgorithmCore, N: 18, T: 2, Inputs: SplitInputs(18), Seed: 11},
		{Algorithm: AlgorithmBenOr, N: 9, T: 2, Inputs: SplitInputs(9), Seed: 11},
		{Algorithm: AlgorithmBracha, N: 7, T: 2, Inputs: SplitInputs(7), Seed: 11},
	}
	for _, cfg := range cases {
		cfg := cfg
		t.Run(string(cfg.Algorithm), func(t *testing.T) {
			run := func() (RunResult, []string, error) {
				s, err := New(cfg)
				if err != nil {
					return RunResult{}, nil, err
				}
				adv := RandomAdversary(99, 0.4, cfg.T)
				res, err := s.RunWindows(adv, 4000)
				return res, s.ConfigurationSnapshot(), err
			}
			resA, snapA, errA := run()
			resB, snapB, errB := run()
			if errA != nil || errB != nil {
				t.Fatalf("errors: %v, %v", errA, errB)
			}
			if resA != resB {
				t.Fatalf("results diverged:\n%+v\n%+v", resA, resB)
			}
			for i := range snapA {
				if snapA[i] != snapB[i] {
					t.Fatalf("processor %d state diverged:\n%q\n%q", i, snapA[i], snapB[i])
				}
			}
		})
	}
}

// TestSeedChangesExecution guards against accidentally ignoring the seed.
func TestSeedChangesExecution(t *testing.T) {
	outcomes := map[string]bool{}
	for seed := uint64(1); seed <= 8; seed++ {
		res, err := Run(Config{
			Algorithm: AlgorithmCore, N: 12, T: 1,
			Inputs: SplitInputs(12), Seed: seed,
		}, FullDelivery(), 100000)
		if err != nil {
			t.Fatal(err)
		}
		outcomes[fmt.Sprintf("%d/%d", res.Windows, res.Decision)] = true
	}
	if len(outcomes) < 2 {
		t.Fatalf("8 seeds produced %d distinct outcomes; randomness not flowing", len(outcomes))
	}
}

// TestT2AblationSpeedsDecision reproduces the paper's parenthetical remark
// in the proof of Theorem 4: "Having a smaller value of t allows one to set
// T2 smaller than T1, which will lead to improvement in running time."
// With T2 lowered from n-2t toward (n/2)+1, the per-round decision
// probability rises, so mean windows-to-decision drops.
func TestT2AblationSpeedsDecision(t *testing.T) {
	const n, tt, trials = 24, 2, 12
	mean := func(th Thresholds) float64 {
		total := 0
		for seed := uint64(1); seed <= trials; seed++ {
			res, err := Run(Config{
				Algorithm: AlgorithmCore, N: n, T: tt,
				Inputs: SplitInputs(n), Seed: seed,
				CoreThresholds: &th,
			}, FullDelivery(), 2000000)
			if err != nil {
				t.Fatal(err)
			}
			if !res.AllDecided {
				t.Fatalf("no decision for thresholds %+v seed %d", th, seed)
			}
			total += res.Windows
		}
		return float64(total) / trials
	}
	strict := Thresholds{T1: n - 2*tt, T2: n - 2*tt, T3: n - 3*tt} // T2 = T1 = 20
	relaxed := Thresholds{T1: n - 2*tt, T2: n - 3*tt + tt, T3: n - 3*tt}
	// relaxed: T2 = T3 + t = 20 - 6 + 2 + ... compute: T3 = 18, T2 = 20? n=24, tt=2:
	// T1 = 20, T3 = 18, minimum legal T2 = T3 + t = 20. Equal again — use a
	// larger gap instead: t=2 gives no slack. Use custom T3 just above n/2.
	relaxed = Thresholds{T1: 20, T2: 15, T3: 13} // T3 = 13 > 12 = n/2, T2 = T3 + 2
	if err := relaxed.Validate(n, tt); err != nil {
		t.Fatal(err)
	}
	mStrict := mean(strict)
	mRelaxed := mean(relaxed)
	if mRelaxed >= mStrict {
		t.Fatalf("relaxed thresholds did not speed up decisions: strict %.1f vs relaxed %.1f windows",
			mStrict, mRelaxed)
	}
	t.Logf("ablation: strict T2=%d -> %.1f windows; relaxed T2=%d -> %.1f windows",
		strict.T2, mStrict, relaxed.T2, mRelaxed)
}
