package main

import "testing"

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-id", "E3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-id", "E99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunUnknownScale(t *testing.T) {
	if err := run([]string{"-scale", "nope"}); err == nil {
		t.Fatal("unknown scale accepted")
	}
}
