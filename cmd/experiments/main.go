// Command experiments regenerates the reproduction tables of EXPERIMENTS.md:
// one experiment per theorem or in-text quantitative claim of the paper
// (the paper has no numbered tables/figures; see DESIGN.md §5 for the
// index).
//
// Usage:
//
//	experiments                 # run all experiments at quick scale
//	experiments -scale full     # the EXPERIMENTS.md configuration (slow)
//	experiments -id E2          # run one experiment
//	experiments -parallel 4     # run up to 4 experiments concurrently
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"asyncagree/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		id        = fs.String("id", "", "run only this experiment (e.g. E2); empty = all")
		scaleName = fs.String("scale", "quick", "quick | full")
		parallel  = fs.Int("parallel", 1, "experiments to run concurrently")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	scale := experiments.ScaleQuick
	if *scaleName == "full" {
		scale = experiments.ScaleFull
	} else if *scaleName != "quick" {
		return fmt.Errorf("unknown scale %q", *scaleName)
	}

	var exps []experiments.Experiment
	if *id != "" {
		e, err := experiments.Get(*id)
		if err != nil {
			return err
		}
		exps = []experiments.Experiment{e}
	} else {
		exps = experiments.All()
	}

	type outcome struct {
		exp     experiments.Experiment
		res     experiments.Result
		err     error
		elapsed time.Duration
	}
	outcomes := make([]outcome, len(exps))

	workers := *parallel
	if workers < 1 {
		workers = 1
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, e := range exps {
		wg.Add(1)
		go func(i int, e experiments.Experiment) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			res, err := e.Run(scale)
			outcomes[i] = outcome{exp: e, res: res, err: err, elapsed: time.Since(start)}
		}(i, e)
	}
	wg.Wait()

	failed := 0
	for _, o := range outcomes {
		fmt.Printf("== %s: %s (%.1fs)\n\n", o.exp.ID, o.exp.Title, o.elapsed.Seconds())
		if o.err != nil {
			fmt.Printf("ERROR: %v\n\n", o.err)
			failed++
			continue
		}
		fmt.Println(o.res.Table.String())
		for _, n := range o.res.Notes {
			fmt.Println("  " + n)
		}
		fmt.Println()
		if !o.res.Pass {
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) failed", failed)
	}
	return nil
}
