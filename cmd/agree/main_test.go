package main

import "testing"

func TestRunCoreSplitVote(t *testing.T) {
	err := run([]string{
		"-alg", "core", "-n", "12", "-t", "1",
		"-inputs", "split", "-adversary", "splitvote",
		"-seed", "3", "-max-windows", "200000",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunBrachaFull(t *testing.T) {
	err := run([]string{
		"-alg", "bracha", "-n", "7", "-t", "2",
		"-inputs", "ones", "-adversary", "full", "-max-windows", "500",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunSilenceAdversary(t *testing.T) {
	err := run([]string{
		"-alg", "core", "-n", "12", "-t", "1",
		"-inputs", "zeros", "-adversary", "silence", "-max-windows", "100",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunLaggardScheduler(t *testing.T) {
	err := run([]string{
		"-alg", "core", "-n", "12", "-t", "1",
		"-inputs", "split", "-adversary", "storm", "-sched", "laggard",
		"-max-windows", "200000",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-alg", "nope", "-n", "8", "-t", "1"},
		{"-inputs", "nope"},
		{"-adversary", "nope"},
		{"-sched", "nope"},
		{"-alg", "core", "-n", "12", "-t", "3"}, // t >= n/6
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}
