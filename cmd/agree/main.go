// Command agree runs a single agreement execution with a chosen algorithm,
// adversary, and seed, and prints the outcome (optionally with a full step
// trace).
//
// Usage:
//
//	agree -alg core -n 24 -t 3 -inputs split -adversary splitvote -seed 1 -max-windows 100000
//	agree -alg bracha -n 7 -t 2 -inputs ones -adversary random -trace
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"asyncagree"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "agree:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("agree", flag.ContinueOnError)
	var (
		alg        = fs.String("alg", "core", "algorithm: core | benor | bracha | committee | paxos")
		n          = fs.Int("n", 24, "number of processors")
		t          = fs.Int("t", 3, "fault budget t")
		inputs     = fs.String("inputs", "split", "input pattern: split | zeros | ones")
		advName    = fs.String("adversary", "full", "adversary: full | random | storm | splitvote | silence")
		seed       = fs.Uint64("seed", 1, "random seed (same seed + same flags = same execution)")
		maxWindows = fs.Int("max-windows", 100000, "window budget")
		trace      = fs.Bool("trace", false, "print every simulator event")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var in []asyncagree.Bit
	switch *inputs {
	case "split":
		in = asyncagree.SplitInputs(*n)
	case "zeros":
		in = asyncagree.UnanimousInputs(*n, 0)
	case "ones":
		in = asyncagree.UnanimousInputs(*n, 1)
	default:
		return fmt.Errorf("unknown input pattern %q", *inputs)
	}

	cfg := asyncagree.Config{
		Algorithm: asyncagree.Algorithm(*alg),
		N:         *n, T: *t,
		Inputs: in,
		Seed:   *seed,
	}
	sys, err := asyncagree.New(cfg)
	if err != nil {
		return err
	}

	var adv asyncagree.WindowAdversary
	switch *advName {
	case "full":
		adv = asyncagree.FullDelivery()
	case "random":
		adv = asyncagree.RandomAdversary(*seed+1, 0.5, *t)
	case "storm":
		adv = asyncagree.ResetStorm()
	case "splitvote":
		adv, err = asyncagree.SplitVoteAdversary(cfg)
		if err != nil {
			return err
		}
	case "silence":
		var silent []asyncagree.ProcID
		for i := 0; i < *t; i++ {
			silent = append(silent, asyncagree.ProcID(i))
		}
		adv = asyncagree.Silence(silent...)
	default:
		return fmt.Errorf("unknown adversary %q", *advName)
	}

	if *trace {
		installTracer(sys)
	}

	res, err := sys.RunWindows(adv, *maxWindows)
	if err != nil {
		return err
	}

	fmt.Printf("algorithm        %s (n=%d, t=%d, inputs=%s, adversary=%s, seed=%d)\n",
		*alg, *n, *t, *inputs, *advName, *seed)
	fmt.Printf("windows          %d\n", res.Windows)
	if res.FirstDecision >= 0 {
		fmt.Printf("first decision   window %d (value %d)\n", res.FirstDecision, res.Decision)
	} else {
		fmt.Printf("first decision   none within budget\n")
	}
	fmt.Printf("all decided      %v (%d/%d)\n", res.AllDecided, sys.DecidedCount(), *n)
	fmt.Printf("agreement        %v\n", res.Agreement)
	fmt.Printf("validity         %v\n", res.Validity)
	fmt.Printf("max chain depth  %d\n", res.MaxChainDepth)
	if !res.Agreement || !res.Validity {
		return errors.New("safety violated (this should be impossible for the core algorithm)")
	}
	return nil
}

func installTracer(sys *asyncagree.System) {
	sys.OnEvent = func(ev asyncagree.Event) {
		switch ev.Kind {
		case asyncagree.EvWindow:
			fmt.Printf("-- window %d complete --\n", ev.Window)
		case asyncagree.EvSend:
			fmt.Printf("w%04d send    %d -> %d  %v\n", ev.Window, ev.Msg.From, ev.Msg.To, ev.Msg.Payload)
		case asyncagree.EvDeliver:
			fmt.Printf("w%04d deliver %d -> %d  %v\n", ev.Window, ev.Msg.From, ev.Msg.To, ev.Msg.Payload)
		case asyncagree.EvReset:
			fmt.Printf("w%04d RESET   processor %d\n", ev.Window, ev.Proc)
		case asyncagree.EvCrash:
			fmt.Printf("w%04d CRASH   processor %d\n", ev.Window, ev.Proc)
		case asyncagree.EvDecide:
			fmt.Printf("w%04d DECIDE  processor %d -> %d\n", ev.Window, ev.Proc, ev.Value)
		}
	}
}
