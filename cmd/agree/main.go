// Command agree runs a single agreement execution with a chosen algorithm,
// adversary, delivery scheduler, and seed, and prints the outcome
// (optionally with a full step trace). Algorithms, adversaries, schedulers,
// and input patterns are resolved through the shared scenario registry, so
// every registered name works here without CLI changes; `agree -list`
// prints the live inventory.
//
// Usage:
//
//	agree -alg core -n 24 -t 3 -inputs split -adversary splitvote -seed 1 -max-windows 100000
//	agree -alg bracha -n 7 -t 2 -inputs ones -adversary subsets -trace
//	agree -alg core -n 24 -t 3 -adversary storm -sched laggard
//	agree -list
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"asyncagree"
	"asyncagree/internal/registry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "agree:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	algNames := make([]string, 0, 5)
	for _, a := range asyncagree.Algorithms() {
		algNames = append(algNames, string(a))
	}
	fs := flag.NewFlagSet("agree", flag.ContinueOnError)
	var (
		alg        = fs.String("alg", "core", "algorithm: "+strings.Join(algNames, " | "))
		n          = fs.Int("n", 24, "number of processors")
		t          = fs.Int("t", 3, "fault budget t")
		inputs     = fs.String("inputs", "split", "input pattern: "+strings.Join(asyncagree.InputPatterns(), " | "))
		advName    = fs.String("adversary", "full", "adversary: "+strings.Join(asyncagree.Adversaries(), " | "))
		schedName  = fs.String("sched", "adversary", "delivery scheduler: "+strings.Join(asyncagree.Schedulers(), " | "))
		seed       = fs.Uint64("seed", 1, "random seed (same seed + same flags = same execution)")
		maxWindows = fs.Int("max-windows", 100000, "window budget")
		shardW     = fs.Int("shard-workers", 1, "intra-trial parallelism: goroutines sharding each window's delivery (1 = serial; output is identical at any setting)")
		columnar   = fs.Bool("columnar", true, "columnar vote-tally fast path for algorithms that support it (output is identical either way)")
		trace      = fs.Bool("trace", false, "print every simulator event")
		list       = fs.Bool("list", false, "print the registered algorithms, adversaries, schedulers, and input patterns")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		registry.WriteInventory(os.Stdout)
		return nil
	}

	in, err := asyncagree.PatternInputs(*inputs, *n, *seed)
	if err != nil {
		return err
	}

	if *shardW < 1 {
		return fmt.Errorf("shard-workers must be >= 1, got %d", *shardW)
	}
	cfg := asyncagree.Config{
		Algorithm: asyncagree.Algorithm(*alg),
		N:         *n, T: *t,
		Inputs:          in,
		Seed:            *seed,
		ShardWorkers:    *shardW,
		DisableColumnar: !*columnar,
	}
	sys, err := asyncagree.New(cfg)
	if err != nil {
		return err
	}
	adv, err := asyncagree.NewAdversary(*advName, cfg)
	if err != nil {
		return err
	}
	sch, err := asyncagree.NewScheduler(*schedName, cfg)
	if err != nil {
		return err
	}
	// Explicit single runs may construct pairings the sweep matrix skips
	// (a sender-overriding scheduler nullifying the split-vote adversary's
	// whole strategy, a lossy discipline against an algorithm that needs
	// full delivery) — allowed for experimentation, but say so rather than
	// letting the output header imply the standard claims cover the run.
	ok, err := registry.SchedulerCompatible(*schedName, *advName, *alg,
		registry.Params{N: *n, T: *t})
	if err != nil {
		return err
	}
	if !ok {
		fmt.Fprintf(os.Stderr,
			"agree: note: the sweep matrix would skip scheduler %q with adversary %q and algorithm %q (adversary- or algorithm-trait mismatch); running anyway\n",
			*schedName, *advName, *alg)
	}
	adv = asyncagree.Schedule(adv, sch)

	if *trace {
		installTracer(sys)
	}

	res, err := sys.RunWindows(adv, *maxWindows)
	if err != nil {
		return err
	}

	fmt.Printf("algorithm        %s (n=%d, t=%d, inputs=%s, adversary=%s, sched=%s, seed=%d)\n",
		*alg, *n, *t, *inputs, *advName, *schedName, *seed)
	fmt.Printf("windows          %d\n", res.Windows)
	if res.FirstDecision >= 0 {
		fmt.Printf("first decision   window %d (value %d)\n", res.FirstDecision, res.Decision)
	} else {
		fmt.Printf("first decision   none within budget\n")
	}
	fmt.Printf("all decided      %v (%d/%d)\n", res.AllDecided, sys.DecidedCount(), *n)
	fmt.Printf("agreement        %v\n", res.Agreement)
	fmt.Printf("validity         %v\n", res.Validity)
	fmt.Printf("max chain depth  %d\n", res.MaxChainDepth)
	if !res.Agreement || !res.Validity {
		return errors.New("safety violated (this should be impossible for the core algorithm)")
	}
	return nil
}

func installTracer(sys *asyncagree.System) {
	sys.OnEvent = func(ev asyncagree.Event) {
		switch ev.Kind {
		case asyncagree.EvWindow:
			fmt.Printf("-- window %d complete --\n", ev.Window)
		case asyncagree.EvSend:
			fmt.Printf("w%04d send    %d -> %d  %v\n", ev.Window, ev.Msg.From, ev.Msg.To, ev.Msg.Payload)
		case asyncagree.EvDeliver:
			fmt.Printf("w%04d deliver %d -> %d  %v\n", ev.Window, ev.Msg.From, ev.Msg.To, ev.Msg.Payload)
		case asyncagree.EvReset:
			fmt.Printf("w%04d RESET   processor %d\n", ev.Window, ev.Proc)
		case asyncagree.EvCrash:
			fmt.Printf("w%04d CRASH   processor %d\n", ev.Window, ev.Proc)
		case asyncagree.EvDecide:
			fmt.Printf("w%04d DECIDE  processor %d -> %d\n", ev.Window, ev.Proc, ev.Value)
		}
	}
}
